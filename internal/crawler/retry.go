package crawler

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// RetryConfig controls per-request retries with exponential backoff.
// The zero value means a single attempt per request (no retries), which
// preserves the historical crawler behavior; live crawls should enable
// retries so transient network failures are not recorded as missing
// pages.
type RetryConfig struct {
	// MaxAttempts is the total number of tries per request, including
	// the first (default 1; 4–6 is sensible for live crawls).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt multiplies it by Multiplier, capped at MaxDelay. Zero
	// disables backoff sleeps (retries fire immediately), which keeps
	// synthetic-web tests fast and deterministic.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 5s).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter spreads each backoff uniformly within ±Jitter fraction of
	// its nominal value (default 0.2; negative disables). The jitter is
	// a pure function of (Seed, domain, path, attempt), so crawls are
	// reproducible.
	Jitter float64
	// Seed drives the deterministic jitter.
	Seed int64
}

func (r RetryConfig) withDefaults() RetryConfig {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 1
	}
	if r.Multiplier <= 0 {
		r.Multiplier = 2
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 5 * time.Second
	}
	if r.Jitter == 0 {
		r.Jitter = 0.2
	} else if r.Jitter < 0 {
		r.Jitter = 0
	}
	return r
}

// backoff returns the sleep before attempt+1 (attempt counts completed
// tries, so the first retry passes attempt=1).
func (r RetryConfig) backoff(domain, path string, attempt int) time.Duration {
	if r.BaseDelay <= 0 {
		return 0
	}
	d := float64(r.BaseDelay) * math.Pow(r.Multiplier, float64(attempt-1))
	if d > float64(r.MaxDelay) {
		d = float64(r.MaxDelay)
	}
	if r.Jitter > 0 {
		u := hashDraw(r.Seed, "backoff", domain, path, fmt.Sprint(attempt))
		d *= 1 + r.Jitter*(2*u-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// hashDraw is a deterministic uniform draw in [0,1) keyed by the seed
// and the given strings, independent of goroutine scheduling.
func hashDraw(seed int64, parts ...string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", seed)
	for _, p := range parts {
		h.Write([]byte{'|'})
		h.Write([]byte(p))
	}
	return rand.New(rand.NewSource(int64(h.Sum64()))).Float64()
}

// permanenter marks errors that must not be retried. Any error in the
// Unwrap chain exposing Permanent() bool participates, so fetchers in
// other packages (e.g. webgen's unknown-page errors) can classify their
// failures without importing this package.
type permanenter interface{ Permanent() bool }

type permanentError struct{ err error }

func (e *permanentError) Error() string   { return e.err.Error() }
func (e *permanentError) Unwrap() error   { return e.err }
func (e *permanentError) Permanent() bool { return true }

// Permanent marks err as a hard failure the crawler must not retry
// (e.g. HTTP 404). A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// IsPermanent reports whether err (or anything it wraps) is marked
// permanent. Unmarked errors are treated as transient and retried when
// a retry budget is configured.
func IsPermanent(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if p, ok := e.(permanenter); ok {
			return p.Permanent()
		}
	}
	return false
}

// ErrFetchTimeout is the (transient) error recorded when a fetch
// attempt exceeds Config.FetchTimeout.
var ErrFetchTimeout = errors.New("crawler: fetch attempt timed out")

// sleepCtx sleeps for d or until ctx is cancelled, returning ctx's
// error in the latter case. It is the interruptible replacement for
// every politeness and backoff time.Sleep in the crawl path.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isContextError reports whether err is (or wraps) a context
// cancellation or deadline error.
func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// fetchAttempt runs one Fetch, bounding it by timeout when positive and
// by ctx always. Fetchers implementing CtxFetcher receive the bounded
// context directly, so a cancelled crawl aborts the underlying I/O; a
// plain Fetcher keeps running in its goroutine until it returns (the
// interface carries no context), but its result is discarded.
//
// A per-attempt timeout surfaces as the transient ErrFetchTimeout (and
// is retried); a cancellation of ctx itself surfaces as ctx's error.
func fetchAttempt(ctx context.Context, f Fetcher, domain, path string, timeout time.Duration) (string, error) {
	attemptCtx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		attemptCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	if cf, ok := f.(CtxFetcher); ok {
		html, err := cf.FetchCtx(attemptCtx, domain, path)
		if isContextError(err) {
			if ctx.Err() != nil {
				return "", ctx.Err()
			}
			return "", fmt.Errorf("%w: %s%s after %v", ErrFetchTimeout, domain, path, timeout)
		}
		return html, err
	}

	// Without a per-attempt timeout a plain Fetcher runs inline: the
	// crawl's cancel latency is then bounded by one fetch attempt, and
	// the hot synthetic-web path pays no per-fetch goroutine. Set
	// Config.FetchTimeout to bound attempts against fetchers that can
	// hang.
	if timeout <= 0 {
		return f.Fetch(domain, path)
	}
	type result struct {
		html string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		html, err := f.Fetch(domain, path)
		ch <- result{html, err}
	}()
	select {
	case r := <-ch:
		return r.html, r.err
	case <-attemptCtx.Done():
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		return "", fmt.Errorf("%w: %s%s after %v", ErrFetchTimeout, domain, path, timeout)
	}
}
