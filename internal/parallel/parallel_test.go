package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 123
		counts := make([]int64, n)
		For(n, workers, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndTinyN(t *testing.T) {
	For(0, 4, func(i int) { t.Fatalf("f called for n=0 (i=%d)", i) })
	ran := false
	For(1, 8, func(i int) { ran = true })
	if !ran {
		t.Fatal("f not called for n=1")
	}
}

func TestForBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	For(64, 3, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent workers, want <= 3", p)
	}
}

func TestMapErrOrdersResults(t *testing.T) {
	out, err := MapErr(50, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	_, err := MapErr(20, 8, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errLow
		case 17:
			return 0, errHigh
		}
		return i, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errLow)
	}
}

func TestMapErrMatchesSequential(t *testing.T) {
	// The parallel engine must be a pure reordering of execution: the
	// assembled results are identical at any worker count.
	f := func(i int) (string, error) { return fmt.Sprintf("item-%d", i*7%13), nil }
	seq, err := MapErr(40, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MapErr(40, runtime.GOMAXPROCS(0)*2, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %q != parallel %q", i, seq[i], par[i])
		}
	}
}

func TestForPropagatesLowestPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if r != "boom-2" {
			t.Fatalf("recovered %v, want lowest-index panic boom-2", r)
		}
	}()
	For(16, 4, func(i int) {
		if i == 2 || i == 9 {
			panic(fmt.Sprintf("boom-%d", i))
		}
	})
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	SetDefault(3)
	defer SetDefault(0)
	if got := Workers(0); got != 3 {
		t.Fatalf("Workers(0) with default 3 = %d", got)
	}
	SetDefault(0)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestForGrainCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		for _, grain := range []int{0, 1, 3, 50, 1000} {
			n := 137
			counts := make([]int64, n)
			ForGrain(n, workers, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad chunk [%d,%d)", lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d grain=%d: index %d ran %d times", workers, grain, i, c)
				}
			}
		}
	}
}

func TestForGrainChunkLayoutIndependentOfWorkers(t *testing.T) {
	// With an explicit grain the chunk boundaries must depend only on
	// (n, grain): per-chunk scratch state then sees identical index
	// ranges at every worker count.
	collect := func(workers int) map[int]int {
		boundaries := make(map[int]int)
		var mu sync.Mutex
		ForGrain(100, workers, 7, func(lo, hi int) {
			mu.Lock()
			boundaries[lo] = hi
			mu.Unlock()
		})
		return boundaries
	}
	a, b := collect(1), collect(8)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for lo, hi := range a {
		if b[lo] != hi {
			t.Fatalf("chunk [%d,%d) at workers=1 became [%d,%d) at workers=8", lo, hi, lo, b[lo])
		}
	}
}

func TestForGrainZeroN(t *testing.T) {
	ForGrain(0, 4, 8, func(lo, hi int) { t.Fatal("f called for n=0") })
}

func TestMapErrGrainOrdersResultsAndErrors(t *testing.T) {
	out, err := MapErrGrain(50, 8, 4, func(i int) (int, error) { return i * 3, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}

	errLow := errors.New("low")
	errHigh := errors.New("high")
	_, err = MapErrGrain(40, 8, 3, func(i int) (int, error) {
		switch i {
		case 5:
			return 0, errLow
		case 31:
			return 0, errHigh
		}
		return i, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errLow)
	}
}

func TestForGrainPropagatesLowestChunkPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if r != "boom-3" {
			t.Fatalf("recovered %v, want boom-3", r)
		}
	}()
	ForGrain(32, 4, 2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 3 || i == 17 {
				panic(fmt.Sprintf("boom-%d", i))
			}
		}
	})
}
