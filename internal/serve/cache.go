package serve

import (
	"container/list"
	"sync"
	"time"
)

// verdictCache is the TTL + LRU verdict cache of the serving layer.
// Keys are "modelFingerprint|domain" (see verdictKey), so a hot model
// reload naturally invalidates every verdict of the previous model
// without a flush — old entries simply stop being addressable and age
// out of the LRU. The design mirrors internal/featcache (bounded entry
// count, front-of-list = most recently used) with per-entry expiry on
// top; singleflight lives one layer up in flightGroup, because the
// serving path must distinguish a cache hit from a deduplicated crawl.
type verdictCache struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	now     func() time.Time
	order   *list.List
	entries map[string]*list.Element

	hits, misses, expiries, evictions uint64
}

type cacheEntry struct {
	key    string
	v      DomainVerdict
	stored time.Time
}

// newVerdictCache builds a cache bounded to max entries whose verdicts
// expire ttl after insertion. now is the clock (injectable for TTL
// tests).
func newVerdictCache(max int, ttl time.Duration, now func() time.Time) *verdictCache {
	if now == nil {
		now = time.Now
	}
	return &verdictCache{
		max:     max,
		ttl:     ttl,
		now:     now,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the fresh verdict cached under key. An expired entry is
// removed and counts as a miss (recorded in expiries as well).
func (c *verdictCache) get(key string) (DomainVerdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return DomainVerdict{}, false
	}
	e := el.Value.(*cacheEntry)
	if c.now().Sub(e.stored) >= c.ttl {
		c.order.Remove(el)
		delete(c.entries, key)
		c.expiries++
		c.misses++
		return DomainVerdict{}, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return e.v, true
}

// put stores a verdict under key, evicting the least recently used
// entry beyond the bound. Storing under an existing key refreshes both
// the verdict and its TTL.
func (c *verdictCache) put(key string, v DomainVerdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.v, e.stored = v, c.now()
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, v: v, stored: c.now()})
	c.entries[key] = el
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *verdictCache) stats() (hits, misses, expiries, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.expiries, c.evictions
}
