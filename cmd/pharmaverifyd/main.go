// Command pharmaverifyd is the online verification daemon: it loads a
// trained model (from `pharmaverify train`) and serves on-demand
// pharmacy verification over HTTP — crawl the domain, preprocess,
// classify and rank while the caller waits.
//
// Endpoints:
//
//	POST /v1/verify   verify one domain or a batch (JSON body)
//	GET  /healthz     liveness + build info
//	GET  /readyz      readiness + served model fingerprint
//	GET  /metrics     Prometheus text exposition
//
// With -pprof-addr set, the net/http/pprof handlers are additionally
// served on that (separate) listener; profiling is off by default.
//
// With -reverify set, a background continuous-verification pipeline
// (internal/reverify) sweeps the known-domain corpus through the same
// serving pipeline — without taking admission slots from live traffic —
// scores vocabulary and link drift against the model's training sketch,
// and past -drift-retrain-threshold arms the -shadow-model candidate to
// double-assess traffic; -shadow-auto-promote then hot-swaps it in once
// its verdict-flip rate clears the gate. Sweep progress journals to
// -reverify-checkpoint for exact crash resume.
//
// Signals:
//
//	SIGHUP            hot-reload the model file (atomic swap; in-flight
//	                  requests finish on the model they started with)
//	SIGINT, SIGTERM   graceful shutdown: stop admitting, drain in-flight
//	                  requests, exit 0
//
// Example session against a synthetic world:
//
//	pharmaverify generate -seed 7 -legit 12 -illegit 36 -out world.json
//	pharmaverify train -in world.json -out model.json
//	pharmaverifyd -model model.json -world-seed 7 -world-legit 12 -world-illegit 36 &
//	curl -s -d '{"domain":"some-pharmacy.com"}' localhost:8080/v1/verify
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pharmaverify/internal/buildinfo"
	"pharmaverify/internal/checkpoint"
	"pharmaverify/internal/core"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/parallel"
	"pharmaverify/internal/reverify"
	"pharmaverify/internal/serve"
	"pharmaverify/internal/webgen"
)

// reverifyOpts carries the continuous-verification flags into run.
type reverifyOpts struct {
	enabled        bool
	corpusFile     string
	checkpointDir  string
	interval       time.Duration
	rate           float64
	threshold      float64
	minObs         int
	shadowModel    string
	shadowDeferred bool
	minAssess      uint64
	maxFlipRate    float64
	autoPromote    bool
}

func main() {
	var (
		modelPath = flag.String("model", "", "trained model file (required; from `pharmaverify train`). SIGHUP re-reads it.")
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrently served requests (0 = PHARMAVERIFY_WORKERS, then GOMAXPROCS)")
		batchWrk  = flag.Int("batch-workers", 4, "per-request fan-out of a batch's domains (crawl concurrency <= workers * batch-workers)")
		queue     = flag.Int("queue", 64, "requests allowed to wait for a worker before shedding with 429")
		cacheSize = flag.Int("cache", 1024, "verdict cache entries")
		cacheTTL  = flag.Duration("cache-ttl", 15*time.Minute, "verdict freshness window")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-request deadline; client-requested timeouts are capped at twice this")
		drain     = flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight requests")

		crawlPages    = flag.Int("crawl-pages", 50, "page cap of one on-demand crawl")
		crawlAttempts = flag.Int("crawl-attempts", 150, "total fetch-attempt budget of one on-demand crawl (0 = unbounded)")
		crawlRetries  = flag.Int("crawl-retries", 2, "fetch attempts per page")
		crawlTimeout  = flag.Duration("crawl-fetch-timeout", 5*time.Second, "timeout of one fetch attempt")
		crawlDelay    = flag.Duration("crawl-delay", 0, "politeness delay before every fetch (set ~200ms for live crawls)")
		crawlBreaker  = flag.Int("crawl-failure-budget", 20, "consecutive lost pages before abandoning a domain (0 = off)")

		graphMaxNodes   = flag.Int("graph-max-nodes", 100_000, "live link-graph node bound beyond the model's training graph")
		graphMaxOut     = flag.Int("graph-max-out", 200, "outbound endpoints folded per crawl")
		graphDirty      = flag.Int("graph-refresh-dirty", 16, "graph-changing folds that trigger a TrustRank recompute (1 = every change)")
		graphRefresh    = flag.Duration("graph-refresh-interval", 30*time.Second, "background TrustRank refresh tick bounding score staleness (0 = request-driven only)")
		graphJitterSeed = flag.Int64("graph-jitter-seed", 0, "seed of the ±20% jitter on every refresh tick, desynchronizing fleet-wide refreshes (0 = derive from the clock)")
		registryFile    = flag.String("registry-file", "", "registry evidence backend: file of \"domain legitimate|illegitimate\" lines (empty = registry source abstains)")

		sourceTimeout   = flag.Duration("source-timeout", 2*time.Second, "per-evidence-source assessment deadline (negative = unbounded)")
		sourceConc      = flag.Int("source-concurrency", 8, "per-source bulkhead: concurrent assessments allowed per evidence source")
		breakerWindow   = flag.Int("breaker-window", 16, "rolling outcome window of each source's circuit breaker")
		breakerFailures = flag.Int("breaker-failures", 8, "failures within the window that open a source's breaker")
		breakerCooldown = flag.Duration("breaker-cooldown", 10*time.Second, "how long an open breaker fast-fails before half-open probing")
		breakerProbes   = flag.Int("breaker-probes", 2, "consecutive half-open probe successes that close a breaker")
		minEvidence     = flag.Int("min-evidence", 1, "evidence quorum: sources that must vote for a live verdict (below it, stale fallback)")
		maxStale        = flag.Duration("max-stale", time.Hour, "stale-serve budget: how far past its TTL an expired verdict may be served, marked, when live assessment fails (negative = never serve stale)")

		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty = profiling disabled")

		reverifyOn    = flag.Bool("reverify", false, "run the continuous re-verification pipeline in the background")
		revCorpus     = flag.String("reverify-corpus", "", "seed the sweep corpus from this file (one domain per line; the corpus also grows from served traffic)")
		revCheckpoint = flag.String("reverify-checkpoint", "", "journal sweep progress under this directory for exact crash resume (empty = restart sweeps from scratch)")
		revInterval   = flag.Duration("reverify-interval", time.Hour, "per-domain politeness bound between re-verifications (0 = none)")
		revRate       = flag.Float64("reverify-rate", 1, "global sweep crawl budget in re-verifications per second (<= 0 = unpaced)")
		driftThresh   = flag.Float64("drift-retrain-threshold", 0.35, "drift score (term or link total-variation distance from the training sketch) that triggers a retrain; negative disables, 0 fires every sweep")
		driftMinObs   = flag.Int("drift-min-observations", 25, "re-verified domains required before drift scores can trigger")
		shadowModel   = flag.String("shadow-model", "", "candidate model file to shadow-deploy: it double-assesses live traffic without affecting verdicts")
		shadowDefer   = flag.Bool("shadow-deferred", false, "do not arm -shadow-model at startup; the drift trigger loads and arms it when re-verification detects drift")
		shadowMinA    = flag.Uint64("shadow-min-assessments", 16, "double-assessed verdicts required before the promotion gate is evaluated")
		shadowMaxFlip = flag.Float64("shadow-max-flip-rate", 0.1, "highest shadow verdict-flip rate that still promotes")
		shadowAuto    = flag.Bool("shadow-auto-promote", true, "let the pipeline promote (or demote) the shadow through the hot-reload path; off = measure only")

		worldSeed    = flag.Int64("world-seed", 0, "serve against a synthetic webgen world with this seed instead of live HTTP (tests, smoke)")
		worldSnap    = flag.Int("world-snapshot", 1, "synthetic world crawl epoch")
		worldLegit   = flag.Int("world-legit", 167, "synthetic world legitimate site count")
		worldIllegit = flag.Int("world-illegit", 1292, "synthetic world illegitimate site count")

		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("pharmaverifyd"))
		return
	}
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "pharmaverifyd: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	var registry serve.RegistryLookup
	if *registryFile != "" {
		reg, err := loadRegistry(*registryFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pharmaverifyd:", err)
			os.Exit(2)
		}
		logf("registry backend: %d domains from %s", reg.Len(), *registryFile)
		registry = reg
	}
	if err := run(*modelPath, *addr, serve.Config{
		Crawl: crawler.Config{
			MaxPages:      *crawlPages,
			AttemptBudget: *crawlAttempts,
			Retry:         crawler.RetryConfig{MaxAttempts: *crawlRetries},
			FetchTimeout:  *crawlTimeout,
			Delay:         *crawlDelay,
			FailureBudget: *crawlBreaker,
		},
		Workers:              *workers,
		BatchWorkers:         *batchWrk,
		QueueDepth:           *queue,
		CacheSize:            *cacheSize,
		CacheTTL:             *cacheTTL,
		DefaultTimeout:       *timeout,
		GraphMaxNodes:        *graphMaxNodes,
		GraphMaxOut:          *graphMaxOut,
		GraphDirtyThreshold:  *graphDirty,
		GraphRefreshInterval: *graphRefresh,
		JitterSeed:           *graphJitterSeed,
		Registry:             registry,
		SourceTimeout:        *sourceTimeout,
		SourceConcurrency:    *sourceConc,
		BreakerWindow:        *breakerWindow,
		BreakerFailures:      *breakerFailures,
		BreakerCooldown:      *breakerCooldown,
		BreakerProbes:        *breakerProbes,
		MinEvidence:          *minEvidence,
		MaxStale:             *maxStale,
	}, *worldSeed, *worldSnap, *worldLegit, *worldIllegit, *drain, *pprofAddr, reverifyOpts{
		enabled:        *reverifyOn,
		corpusFile:     *revCorpus,
		checkpointDir:  *revCheckpoint,
		interval:       *revInterval,
		rate:           *revRate,
		threshold:      *driftThresh,
		minObs:         *driftMinObs,
		shadowModel:    *shadowModel,
		shadowDeferred: *shadowDefer,
		minAssess:      *shadowMinA,
		maxFlipRate:    *shadowMaxFlip,
		autoPromote:    *shadowAuto,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "pharmaverifyd:", err)
		os.Exit(1)
	}
}

// servePprof exposes the net/http/pprof handlers on their own listener,
// never on the service mux: profiling stays opt-in (off unless
// -pprof-addr is set) and unreachable from the serving port.
func servePprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logf("pprof listening on %s (profiles at /debug/pprof/)", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			logf("pprof listener failed: %v", err)
		}
	}()
	return nil
}

func loadRegistry(path string) (*serve.StaticRegistry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load registry: %w", err)
	}
	defer f.Close()
	reg, err := serve.ParseRegistry(f)
	if err != nil {
		return nil, fmt.Errorf("load registry %s: %w", path, err)
	}
	return reg, nil
}

func loadModel(path string) (*core.Verifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadVerifier(f)
}

// loadCorpusFile reads one domain per line (blank lines and #-comments
// ignored).
func loadCorpusFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load corpus: %w", err)
	}
	var domains []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		domains = append(domains, line)
	}
	return domains, nil
}

// startReverify seeds the corpus, arms any non-deferred shadow model and
// launches the continuous-verification pipeline. The returned stop
// cancels the sweep loop and waits for it to exit.
func startReverify(srv *serve.Server, o reverifyOpts) (stop func(), err error) {
	if o.shadowModel != "" && !o.shadowDeferred {
		cand, err := loadModel(o.shadowModel)
		if err != nil {
			return nil, fmt.Errorf("load shadow model: %w", err)
		}
		if err := srv.SetShadow(cand); err != nil {
			return nil, fmt.Errorf("arm shadow model: %w", err)
		}
		logf("shadow model %.12s armed from %s", cand.Fingerprint(), o.shadowModel)
	}
	if !o.enabled {
		return func() {}, nil
	}

	var store *checkpoint.Store
	if o.checkpointDir != "" {
		store, err = checkpoint.Open(o.checkpointDir)
		if err != nil {
			return nil, fmt.Errorf("open reverify checkpoint: %w", err)
		}
	}
	if o.corpusFile != "" {
		domains, err := loadCorpusFile(o.corpusFile)
		if err != nil {
			return nil, err
		}
		logf("reverify corpus: %d domains admitted from %s", srv.AddCorpusDomains(domains), o.corpusFile)
	}

	cfg := reverify.Config{
		Checkpoint: store,
		Interval:   o.interval,
		Rate:       o.rate,
		Drift:      reverify.DriftConfig{RetrainThreshold: o.threshold, MinObservations: o.minObs},
		Promotion: reverify.PromotionConfig{
			MinAssessments: o.minAssess,
			MaxFlipRate:    o.maxFlipRate,
			Auto:           o.autoPromote,
		},
		Logf: logf,
	}
	if o.shadowModel != "" {
		// The retrain hook re-reads the candidate file at trigger time, so
		// an operator can drop a freshly trained model in place while the
		// daemon runs.
		cfg.Retrain = func(context.Context) error {
			cand, err := loadModel(o.shadowModel)
			if err != nil {
				return fmt.Errorf("load shadow model: %w", err)
			}
			if err := srv.SetShadow(cand); err != nil {
				return fmt.Errorf("arm shadow model: %w", err)
			}
			logf("reverify: drift retrain armed shadow model %.12s from %s", cand.Fingerprint(), o.shadowModel)
			return nil
		}
	}

	pipe := reverify.New(srv, cfg)
	srv.RegisterMetrics(pipe.WriteMetrics)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := pipe.Run(ctx); err != nil && ctx.Err() == nil {
			logf("reverify pipeline stopped: %v", err)
		}
	}()
	logf("reverify pipeline running (interval %v, rate %.2f/s, drift threshold %.3f)",
		o.interval, o.rate, o.threshold)
	return func() {
		cancel()
		<-done
	}, nil
}

func run(modelPath, addr string, cfg serve.Config, worldSeed int64, worldSnap, worldLegit, worldIllegit int, drain time.Duration, pprofAddr string, rev reverifyOpts) error {
	if cfg.Workers > 0 {
		parallel.SetDefault(cfg.Workers)
	}
	if pprofAddr != "" {
		if err := servePprof(pprofAddr); err != nil {
			return err
		}
	}

	model, err := loadModel(modelPath)
	if err != nil {
		return fmt.Errorf("load model: %w", err)
	}

	if worldSeed > 0 {
		cfg.Fetcher = webgen.Generate(webgen.Config{
			Seed: worldSeed, Snapshot: worldSnap,
			NumLegit: worldLegit, NumIllegit: worldIllegit,
		})
		logf("serving a synthetic world (seed %d, %d+%d sites)", worldSeed, worldLegit, worldIllegit)
	} else {
		cfg.Fetcher = &crawler.HTTPFetcher{UserAgent: "pharmaverify"}
	}

	srv, err := serve.New(model, cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	stopReverify, err := startReverify(srv, rev)
	if err != nil {
		return err
	}
	defer stopReverify()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logf("%s listening on %s, model %.12s (%s)",
		buildinfo.String("pharmaverifyd"), ln.Addr(), srv.ModelFingerprint(), modelPath)

	// SIGHUP hot-reloads the model file; SIGINT/SIGTERM begin the
	// graceful drain. A failed reload keeps the old model serving — a
	// bad deploy must never take a healthy daemon down.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	term := make(chan os.Signal, 1)
	signal.Notify(term, os.Interrupt, syscall.SIGTERM)

	for {
		select {
		case err := <-serveErr:
			return fmt.Errorf("listener failed: %w", err)
		case <-hup:
			next, err := loadModel(modelPath)
			if err != nil {
				srv.RecordReloadFailure()
				logf("SIGHUP reload failed, keeping model %.12s: %v", srv.ModelFingerprint(), err)
				continue
			}
			old := srv.ModelFingerprint()
			srv.SwapModel(next)
			logf("SIGHUP reload: model %.12s -> %.12s", old, srv.ModelFingerprint())
		case sig := <-term:
			logf("%v: draining (grace %v)", sig, drain)
			srv.SetDraining(true)
			ctx, cancel := context.WithTimeout(context.Background(), drain)
			defer cancel()
			if err := httpSrv.Shutdown(ctx); err != nil {
				return fmt.Errorf("drain incomplete: %w", err)
			}
			logf("drained cleanly, exiting")
			return nil
		}
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pharmaverifyd: %s %s\n",
		time.Now().UTC().Format(time.RFC3339), fmt.Sprintf(format, args...))
}
