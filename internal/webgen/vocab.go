package webgen

// Vocabulary pools for synthetic pharmacy-site text. The pools encode
// the signals documented in the paper: illegitimate storefronts
// over-represent terms like "viagra", "cialis" and discount language
// (§6.3.1), while legitimate pharmacies carry broader health content,
// verification seals and store-presence features (Mavlanova &
// Benbunan-Fich, cited as [23]).

// commonWords is shared filler used by both classes: generic commerce
// and health vocabulary plus frequent English words that survive
// stop-word removal.
var commonWords = []string{
	"medication", "medications", "medicine", "medicines", "dosage", "dose",
	"tablet", "tablets", "capsule", "capsules", "pill", "pills",
	"pharmacy", "pharmacies", "drug", "drugs", "treatment", "therapy",
	"order", "orders", "shipping", "delivery", "shipment", "cart",
	"checkout", "payment", "price", "prices", "product", "products",
	"customer", "customers", "account", "email", "phone", "address",
	"search", "home", "page", "website", "online", "store", "shop",
	"buy", "purchase", "available", "quantity", "brand", "generic",
	"quality", "safe", "safety", "effective", "information", "details",
	"read", "more", "view", "all", "new", "best", "top", "popular",
	"contact", "help", "support", "service", "services", "faq",
	"about", "policy", "terms", "conditions", "privacy", "copyright",
	"health", "healthcare", "medical", "doctor", "doctors", "patient",
	"patients", "care", "advice", "questions", "answers", "guide",
	"daily", "weekly", "free", "fast", "easy", "secure", "trusted",
	"today", "now", "here", "please", "welcome", "thank", "you",
	"pain", "relief", "allergy", "cold", "flu", "fever", "headache",
	"skin", "heart", "blood", "pressure", "diabetes", "cholesterol",
	"vitamins", "supplements", "first", "aid", "baby", "personal",
}

// drugNames are generic pharmaceutical names both classes sell.
var drugNames = []string{
	"amoxicillin", "lisinopril", "metformin", "atorvastatin", "omeprazole",
	"amlodipine", "metoprolol", "albuterol", "gabapentin", "losartan",
	"hydrochlorothiazide", "sertraline", "simvastatin", "levothyroxine",
	"azithromycin", "ibuprofen", "acetaminophen", "naproxen", "aspirin",
	"prednisone", "tramadol", "trazodone", "citalopram", "fluoxetine",
	"montelukast", "pantoprazole", "escitalopram", "rosuvastatin",
	"bupropion", "furosemide", "clopidogrel", "tamsulosin", "warfarin",
	"cetirizine", "loratadine", "ranitidine", "doxycycline", "cephalexin",
}

// legitWords mark legitimate pharmacies: regulation, verification
// seals, store presence, broad health content, insurance and refills.
var legitWords = []string{
	"prescription", "prescriptions", "prescriber", "physician",
	"licensed", "license", "pharmacist", "pharmacists", "verified",
	"verification", "accredited", "accreditation", "vipps", "nabp",
	"fda", "approved", "regulation", "regulations", "compliance",
	"insurance", "medicare", "medicaid", "copay", "coverage",
	"refill", "refills", "transfer", "consultation", "counseling",
	"immunization", "immunizations", "vaccine", "vaccines", "flu",
	"wellness", "clinic", "clinics", "locations", "location", "hours",
	"locator", "community", "hospital", "professional", "board",
	"certified", "certification", "state", "federal", "requirements",
	"genuine", "authentic", "manufacturer", "authorized", "dispensing",
	"monograph", "interactions", "side", "effects", "warnings",
	"screening", "management", "chronic", "condition", "symptoms",
	"nutrition", "fitness", "smoking", "cessation", "blood",
	"glucose", "monitor", "testing", "records", "confidential",
	"hipaa", "rights", "notice", "practices", "career", "careers",
	"investors", "press", "news", "blog", "newsletter", "mobile",
	"app", "rewards", "loyalty", "savings", "program", "returns",
}

// illegitWords mark illegitimate pharmacies: lifestyle drugs,
// no-prescription language, aggressive discounting and anonymity.
var illegitWords = []string{
	"viagra", "cialis", "levitra", "kamagra", "sildenafil", "tadalafil",
	"vardenafil", "priligy", "dapoxetine", "propecia", "finasteride",
	"clomid", "nolvadex", "accutane", "soma", "ultram", "xanax",
	"valium", "ambien", "phentermine", "adipex", "tramadol",
	"cheap", "cheapest", "discount", "discounts", "lowest", "bargain",
	"bonus", "extra", "sale", "offer", "offers", "deal", "deals",
	"special", "promo", "coupon", "savings", "wholesale",
	"rx", "norx", "prescriptionfree", "needed", "required", "without",
	"overnight", "express", "worldwide", "international", "anonymous",
	"discreet", "packaging", "unmarked", "guarantee", "guaranteed",
	"moneyback", "refund", "visa", "mastercard", "amex", "echeck",
	"bitcoin", "western", "union", "wire",
	"erectile", "dysfunction", "impotence", "enhancement", "stamina",
	"performance", "libido", "weight", "loss", "slimming", "diet",
	"steroids", "anabolic", "hgh", "testosterone", "antibiotics",
	"pfizer", "soft", "tabs", "jelly", "super", "active", "professional",
	"trial", "pack", "samples", "reorder", "vip", "membership",
}

// legitSiteNames and illegitSiteNames seed generated domain names.
var legitSiteNames = []string{
	"caremark", "healthbridge", "medplus", "wellspring", "goodhealth",
	"cornerstone", "familycare", "truscript", "medtrust", "carepoint",
	"healthfirst", "pharmacare", "wellcare", "homepharm", "citydrug",
	"villagepharmacy", "lakeside", "riverside", "parkview", "suncare",
}

var illegitSiteNames = []string{
	"cheappills", "rxexpress", "pillsdirect", "medsbargain", "fastrx",
	"discountmeds", "pharmadeal", "bluepillshop", "edstore", "rxdepot",
	"genericworld", "pillmart", "megapharm", "quickmeds", "tabsonline",
	"bestpricerx", "noscriptmeds", "globalpills", "supermeds", "drugbay",
}

// legitEndpoints are the external sites legitimate pharmacies link to,
// with per-site linking probabilities calibrated so that the top-10
// most-linked list reproduces Table 11 (left column).
var legitEndpoints = []weightedEndpoint{
	{"facebook.com", 0.94},
	{"twitter.com", 0.87},
	{"fda.gov", 0.80},
	{"google.com", 0.73},
	{"youtube.com", 0.66},
	{"nih.gov", 0.59},
	{"adobe.com", 0.52},
	{"cdc.gov", 0.45},
	{"doubleclick.net", 0.38},
	{"nabp.net", 0.31},
	{"medlineplus.gov", 0.20},
	{"healthfinder.gov", 0.16},
	{"medicalnewstoday.com", 0.13},
	{"who.int", 0.10},
	{"instagram.com", 0.08},
	{"pinterest.com", 0.06},
}

// illegitEndpoints reproduce the right column of Table 11. Note that
// rxwinners.com and euro-med-store.com are themselves illegitimate
// pharmacy endpoints, as the paper observes.
var illegitEndpoints = []weightedEndpoint{
	{"wikipedia.org", 0.78},
	{"wordpress.org", 0.72},
	{"drugs.com", 0.66},
	{"securebilling-page.com", 0.60},
	{"rxwinners.com", 0.54},
	{"google.com", 0.48},
	{"providesupport.com", 0.42},
	{"euro-med-store.com", 0.36},
	{"statcounter.com", 0.30},
	{"cipla.com", 0.24},
	{"blogspot.com", 0.18},
	{"paymentgate-secure.net", 0.14},
	{"livechatinc.com", 0.10},
	{"canadapharmacyreviews.net", 0.06},
}

// isolatedEndpoints is the long-tail name pool used by network-isolated
// sites (legitimate outliers that sell new prescriptions through their
// own niche channels); each generated link is further suffixed with the
// site name so isolated sites never share endpoints.
var isolatedEndpoints = []string{
	"local-supplier", "county-health", "smalltown-news",
	"privatelabel-meds", "family-clinic", "regional-wholesale",
	"neighborhood-guide", "main-street-biz",
}

type weightedEndpoint struct {
	Domain string
	P      float64
}
