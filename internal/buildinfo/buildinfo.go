// Package buildinfo identifies a pharmaverify binary: the release
// version injected at link time plus whatever the Go toolchain embeds
// (go version, VCS revision). All three executables expose it — the
// CLIs via -version, the daemon additionally in /healthz — so an
// operator can always tell which build produced a verdict.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the release version, "dev" unless injected at link time:
//
//	go build -ldflags "-X pharmaverify/internal/buildinfo.Version=v1.2.3" ./...
var Version = "dev"

// Build describes one binary.
type Build struct {
	// Version is the linker-injected release version ("dev" otherwise).
	Version string `json:"version"`
	// GoVersion is the toolchain that compiled the binary.
	GoVersion string `json:"goVersion"`
	// Revision is the VCS commit the binary was built from, when the
	// toolchain embedded it (builds from a checkout; absent for plain
	// `go run` of exported sources).
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
}

// Info collects the build description of the running binary.
func Info() Build {
	b := Build{Version: Version, GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				b.Revision = s.Value
			case "vcs.modified":
				b.Dirty = s.Value == "true"
			}
		}
	}
	return b
}

// String formats the build info as the conventional one-line -version
// output for the named binary.
func String(binary string) string {
	b := Info()
	s := fmt.Sprintf("%s %s (%s", binary, b.Version, b.GoVersion)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += ", rev " + rev
		if b.Dirty {
			s += "-dirty"
		}
	}
	return s + ")"
}
