package core

import (
	"reflect"
	"runtime"
	"testing"

	"pharmaverify/internal/eval"
)

// TestTextCVParallelDeterministic pins the tentpole guarantee on the
// real pipeline: both text representations produce identical CVResults
// at Workers=1 and at many workers, including the SMOTE configuration
// whose sampler consumes the shared master RNG stream.
func TestTextCVParallelDeterministic(t *testing.T) {
	snap := testSnapshot(t, 1)
	many := runtime.GOMAXPROCS(0)
	if many < 4 {
		many = 4
	}
	cases := []TextConfig{
		{Representation: TFIDF, Classifier: SVM, Terms: 250, Seed: 11},
		{Representation: TFIDF, Classifier: J48, Sampling: SMOTE, Terms: 100, Seed: 11},
		{Representation: NGramGraphs, Classifier: NB, Terms: 100, Seed: 11},
	}
	for _, cfg := range cases {
		seqCfg, parCfg := cfg, cfg
		seqCfg.Workers = 1
		parCfg.Workers = many
		seq, err := TextCV(snap, seqCfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := TextCV(snap, parCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s/%s/%s: CVResult differs between Workers=1 and Workers=%d",
				cfg.Representation, cfg.Classifier, cfg.Sampling, many)
		}
	}
}

// TestEnsembleCVParallelDeterministic covers the parallel-library leg:
// concurrent member training and concurrent folds must reproduce the
// sequential ensemble results exactly.
func TestEnsembleCVParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble CV is slow")
	}
	snap := testSnapshot(t, 1)
	run := func(workers int) eval.CVResult {
		res, err := EnsembleCV(snap, EnsembleConfig{Terms: 100, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("EnsembleCV differs between Workers=1 and Workers=8")
	}
}

// TestFeatureCacheDistinctSnapshots is the regression test for the
// pointer-keyed memo bug: two snapshots with different contents must
// never share a cached feature artifact, while regenerating the same
// content must hit the same entry.
func TestFeatureCacheDistinctSnapshots(t *testing.T) {
	snapA := testSnapshot(t, 1)
	snapB := testSnapshot(t, 2)
	if snapA.ContentHash() == snapB.ContentHash() {
		t.Fatal("distinct snapshots share a content hash")
	}

	ResetFeatureCache()
	cfg := TextConfig{Classifier: SVM, Terms: 100, Seed: 3}
	dsA := TFIDFDataset(snapA, cfg)
	dsB := TFIDFDataset(snapB, cfg)
	if dsA == dsB {
		t.Fatal("distinct snapshots share one cached dataset")
	}
	if reflect.DeepEqual(dsA.X, dsB.X) {
		t.Fatal("distinct snapshots produced identical feature vectors")
	}

	// Same content → same entry (pointer-identical memo hit).
	if again := TFIDFDataset(snapA, cfg); again != dsA {
		t.Error("same snapshot missed the cache")
	}
	ngA := nggFoldFeatures(snapA, 100, 3, 3, 0)
	ngB := nggFoldFeatures(snapB, 100, 3, 3, 0)
	if ngA == ngB {
		t.Fatal("distinct snapshots share one cached NGG fold set")
	}
	if hits, misses, _ := FeatureCacheStats(); hits == 0 || misses == 0 {
		t.Errorf("cache stats implausible: hits=%d misses=%d", hits, misses)
	}
}
