package ngram

import (
	"math"
	"strings"
	"testing"
)

func TestFromTextSmall(t *testing.T) {
	// "abcde" with n=2, win=1: grams ab,bc,cd,de; edges ab→bc, bc→cd, cd→de.
	g := FromText("abcde", 2, 1)
	if g.Size() != 3 {
		t.Fatalf("Size = %d, want 3", g.Size())
	}
	for _, e := range []Edge{{"ab", "bc"}, {"bc", "cd"}, {"cd", "de"}} {
		if g.Weight(e) != 1 {
			t.Errorf("weight(%v) = %v, want 1", e, g.Weight(e))
		}
	}
}

func TestFromTextWindow(t *testing.T) {
	// win=2 adds second-neighbor edges.
	g := FromText("abcde", 2, 2)
	if g.Weight(Edge{"ab", "cd"}) != 1 {
		t.Errorf("second-neighbor edge missing")
	}
	if g.Size() != 5 {
		t.Errorf("Size = %d, want 5", g.Size())
	}
}

func TestFromTextRepetitionIncreasesWeight(t *testing.T) {
	g := FromText(strings.Repeat("abab", 5), 2, 1)
	if g.Weight(Edge{"ab", "ba"}) < 2 {
		t.Errorf("repeated co-occurrence weight = %v", g.Weight(Edge{"ab", "ba"}))
	}
}

func TestFromTextShorterThanN(t *testing.T) {
	g := FromText("ab", 4, 4)
	if g.Size() != 0 {
		t.Errorf("short text must give empty graph")
	}
}

func TestFromDocumentDefaults(t *testing.T) {
	g := FromDocument("online pharmacy store")
	if g.Size() == 0 {
		t.Error("default graph empty")
	}
}

func TestIdenticalGraphSimilarities(t *testing.T) {
	g := FromDocument("buy viagra online without prescription cheap cialis")
	if cs := ContainmentSimilarity(g, g); math.Abs(cs-1) > 1e-12 {
		t.Errorf("CS(g,g) = %v", cs)
	}
	if ss := SizeSimilarity(g, g); math.Abs(ss-1) > 1e-12 {
		t.Errorf("SS(g,g) = %v", ss)
	}
	if vs := ValueSimilarity(g, g); math.Abs(vs-1) > 1e-12 {
		t.Errorf("VS(g,g) = %v", vs)
	}
	if nvs := NormalizedValueSimilarity(g, g); math.Abs(nvs-1) > 1e-12 {
		t.Errorf("NVS(g,g) = %v", nvs)
	}
}

func TestDisjointGraphSimilarities(t *testing.T) {
	a := FromDocument("aaaaaaaabbbbbbb")
	b := FromDocument("xxxxxxxxyyyyyyy")
	if cs := ContainmentSimilarity(a, b); cs != 0 {
		t.Errorf("CS disjoint = %v", cs)
	}
	if vs := ValueSimilarity(a, b); vs != 0 {
		t.Errorf("VS disjoint = %v", vs)
	}
}

func TestEmptyGraphSimilarities(t *testing.T) {
	e := New()
	g := FromDocument("some medical content here")
	if ContainmentSimilarity(e, g) != 0 || SizeSimilarity(e, g) != 0 ||
		ValueSimilarity(e, g) != 0 || NormalizedValueSimilarity(e, g) != 0 {
		t.Error("similarities with empty graph must be 0")
	}
}

func TestSimilaritiesSymmetryProperties(t *testing.T) {
	a := FromDocument("legitimate pharmacy with health information and prescriptions")
	b := FromDocument("cheap viagra cialis no prescription required order now")
	// SS is symmetric.
	if SizeSimilarity(a, b) != SizeSimilarity(b, a) {
		t.Error("SS asymmetric")
	}
	// CS numerator direction differs but the μ sum over shared edges is
	// symmetric, and so is the min denominator → CS symmetric too.
	if math.Abs(ContainmentSimilarity(a, b)-ContainmentSimilarity(b, a)) > 1e-12 {
		t.Error("CS asymmetric")
	}
	// All similarities within [0,1].
	for name, v := range map[string]float64{
		"CS":  ContainmentSimilarity(a, b),
		"SS":  SizeSimilarity(a, b),
		"VS":  ValueSimilarity(a, b),
		"NVS": NormalizedValueSimilarity(a, b),
	} {
		if v < 0 || v > 1+1e-12 {
			t.Errorf("%s = %v out of [0,1]", name, v)
		}
	}
}

func TestVSBoundedByCS(t *testing.T) {
	// Each VS term is ≤ 1 and only counted on shared edges, and the VS
	// denominator (max) ≥ CS denominator (min): VS ≤ CS.
	a := FromDocument("pharmacy store health products medical advice")
	b := FromDocument("pharmacy store cheap pills discount offers")
	if ValueSimilarity(a, b) > ContainmentSimilarity(a, b)+1e-12 {
		t.Errorf("VS %v > CS %v", ValueSimilarity(a, b), ContainmentSimilarity(a, b))
	}
}

func TestMergeRunningAverage(t *testing.T) {
	a := FromText("abc", 2, 1) // edge ab→bc weight 1
	b := FromText("abcabc", 2, 1)
	class := New()
	class.Merge(a)
	if class.Weight(Edge{"ab", "bc"}) != 1 {
		t.Errorf("after first merge w = %v", class.Weight(Edge{"ab", "bc"}))
	}
	class.Merge(b)
	// Running average of weights 1 and b's weight for ab→bc.
	wb := b.Weight(Edge{"ab", "bc"})
	want := (1 + wb) / 2
	if got := class.Weight(Edge{"ab", "bc"}); math.Abs(got-want) > 1e-12 {
		t.Errorf("after second merge w = %v, want %v", got, want)
	}
}

func TestMergeDecaysAbsentEdges(t *testing.T) {
	a := FromText("abc", 2, 1) // ab→bc
	c := FromText("xyz", 2, 1) // xy→yz
	class := New()
	class.Merge(a)
	class.Merge(c)
	if got := class.Weight(Edge{"ab", "bc"}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("absent edge decay: %v, want 0.5", got)
	}
}

func TestMergeAllOrderIndependentSize(t *testing.T) {
	docs := []*Graph{
		FromDocument("alpha beta gamma"),
		FromDocument("beta gamma delta"),
		FromDocument("gamma delta epsilon"),
	}
	g := MergeAll(docs)
	if g.Size() == 0 {
		t.Fatal("empty class graph")
	}
	// Every edge present in at least one doc must appear (weights > 0
	// after only 3 merges; decay cannot eliminate them).
	for _, d := range docs {
		for _, e := range d.Edges(0) {
			if !g.Contains(e) {
				t.Fatalf("class graph lost edge %v", e)
			}
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := FromDocument("clone me please")
	c := g.Clone()
	c.Merge(FromDocument("different content entirely"))
	if c.Size() == g.Size() && c.merged == g.merged {
		t.Error("Clone shares state")
	}
}

func TestFeaturesShape(t *testing.T) {
	legit := FromDocument("health pharmacy prescriptions fda approved medication guide")
	illegit := FromDocument("cheap viagra cialis no prescription discount order")
	doc := FromDocument("buy cheap viagra online today")
	f := Features(doc, legit, illegit)
	if len(f) != 8 || len(FeatureNames) != 8 {
		t.Fatalf("feature length %d", len(f))
	}
	// The doc resembles the illegitimate class more: CS_illegit > CS_legit.
	if f[4] <= f[0] {
		t.Errorf("CS_illegit %v should exceed CS_legit %v", f[4], f[0])
	}
}

func TestTextRankOrdering(t *testing.T) {
	legitDocs := []*Graph{
		FromDocument("pharmacy health insurance prescriptions refill fda information"),
		FromDocument("patient health services prescription medication pharmacy care"),
	}
	illegitDocs := []*Graph{
		FromDocument("cheap viagra cialis no prescription needed order now discount"),
		FromDocument("viagra discount cheap pills no prescription fast shipping"),
	}
	legitClass := MergeAll(legitDocs)
	illegitClass := MergeAll(illegitDocs)

	legitTest := FromDocument("pharmacy health prescription refill care information")
	illegitTest := FromDocument("cheap viagra no prescription discount order")
	rl := TextRank(legitTest, legitClass, illegitClass)
	ri := TextRank(illegitTest, legitClass, illegitClass)
	if rl <= ri {
		t.Errorf("TextRank(legit)=%v must exceed TextRank(illegit)=%v", rl, ri)
	}
	// Range: each of the 8 summands is in [0,1].
	if rl < 0 || rl > 8 || ri < 0 || ri > 8 {
		t.Errorf("TextRank out of [0,8]: %v %v", rl, ri)
	}
}

func TestEdgesSortedByWeight(t *testing.T) {
	g := FromText(strings.Repeat("abab", 10)+"xyz", 2, 1)
	es := g.Edges(3)
	if len(es) != 3 {
		t.Fatalf("len = %d", len(es))
	}
	if g.Weight(es[0]) < g.Weight(es[1]) || g.Weight(es[1]) < g.Weight(es[2]) {
		t.Error("Edges not sorted by weight")
	}
	if g.MaxWeight() != g.Weight(es[0]) {
		t.Error("MaxWeight mismatch")
	}
}

func TestUnicodeText(t *testing.T) {
	g := FromText("ωμέγα φαρμακείο", 4, 4)
	if g.Size() == 0 {
		t.Error("unicode text produced empty graph")
	}
}

func BenchmarkFromDocument(b *testing.B) {
	text := strings.Repeat("online pharmacy prescription medication health store ", 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromDocument(text)
	}
}

func BenchmarkCompare(b *testing.B) {
	text := strings.Repeat("online pharmacy prescription medication health ", 50)
	doc := FromDocument(text)
	class := MergeAll([]*Graph{doc, FromDocument(strings.Repeat("cheap viagra discount pills ", 50))})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(doc, class)
	}
}
