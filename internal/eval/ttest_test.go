package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestPairedTTestIdenticalSeries(t *testing.T) {
	a := []float64{0.9, 0.91, 0.92}
	res, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.MeanDiff != 0 {
		t.Errorf("identical series: %+v", res)
	}
}

func TestPairedTTestConstantShift(t *testing.T) {
	a := []float64{0.9, 0.8, 0.7}
	b := []float64{0.8, 0.7, 0.6}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// The differences are constant up to float rounding, so the test
	// statistic is enormous and the p-value vanishes.
	if res.P > 1e-6 || res.T < 100 {
		t.Errorf("constant positive shift: %+v", res)
	}
}

func TestPairedTTestKnownValue(t *testing.T) {
	// diffs = {1, 2, 3}: mean 2, sd 1, n 3 → t = 2/(1/√3) = 3.4641,
	// df 2 → two-sided p ≈ 0.0742.
	a := []float64{2, 4, 6}
	b := []float64{1, 2, 3}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.T-3.4641016) > 1e-6 {
		t.Errorf("t = %v", res.T)
	}
	if math.Abs(res.P-0.0742) > 0.002 {
		t.Errorf("p = %v, want ≈0.0742", res.P)
	}
	if res.DF != 2 {
		t.Errorf("df = %d", res.DF)
	}
}

func TestPairedTTestSymmetric(t *testing.T) {
	a := []float64{0.95, 0.97, 0.96, 0.99}
	b := []float64{0.91, 0.93, 0.95, 0.92}
	ab, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := PairedTTest(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab.T+ba.T) > 1e-12 || math.Abs(ab.P-ba.P) > 1e-12 {
		t.Errorf("asymmetric: %+v vs %+v", ab, ba)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1}); err != ErrTTestInput {
		t.Errorf("short input: %v", err)
	}
	if _, err := PairedTTest([]float64{1, 2}, []float64{1}); err != ErrTTestInput {
		t.Errorf("mismatched input: %v", err)
	}
}

func TestStudentTailCDFKnownValues(t *testing.T) {
	// Classic table values: P(T > t) one-sided.
	cases := []struct{ tv, df, want float64 }{
		{0, 5, 0.5},
		{1.0, 1, 0.25},         // t(1): P(T>1) = 0.25
		{2.015, 5, 0.05},       // t(5) 95th percentile
		{2.571, 5, 0.025},      // t(5) 97.5th percentile
		{1.96, 1e6, 0.0249979}, // ≈ normal
	}
	for _, c := range cases {
		if got := studentTailCDF(c.tv, c.df); math.Abs(got-c.want) > 2e-3 {
			t.Errorf("tail(t=%v, df=%v) = %v, want %v", c.tv, c.df, got, c.want)
		}
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a, b := 0.5+rng.Float64()*5, 0.5+rng.Float64()*5
		x := rng.Float64()
		lhs := regIncBeta(a, b, x)
		rhs := 1 - regIncBeta(b, a, 1-x)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("symmetry violated at a=%v b=%v x=%v: %v vs %v", a, b, x, lhs, rhs)
		}
		if lhs < 0 || lhs > 1 {
			t.Fatalf("I_x out of [0,1]: %v", lhs)
		}
	}
	// Monotonicity in x.
	prev := 0.0
	for x := 0.0; x <= 1.0; x += 0.05 {
		v := regIncBeta(1.5, 2.5, x)
		if v+1e-12 < prev {
			t.Fatalf("not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestCompareFolds(t *testing.T) {
	mk := func(accs ...float64) CVResult {
		var r CVResult
		for _, a := range accs {
			total := 100
			tp := int(a * float64(total))
			r.Folds = append(r.Folds, FoldResult{Confusion: Confusion{TP: tp, FN: total - tp}})
		}
		return r
	}
	a := mk(0.9, 0.92, 0.94)
	b := mk(0.8, 0.82, 0.84)
	res, err := CompareFolds(a, b, MetricLegitRecall)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDiff <= 0 {
		t.Errorf("mean diff = %v", res.MeanDiff)
	}
	if _, err := CompareFolds(a, CVResult{}, MetricLegitRecall); err == nil {
		t.Error("mismatched folds accepted")
	}
}
