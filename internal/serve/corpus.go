package serve

import (
	"sort"
	"sync"
)

// corpusStore is the known-domain corpus: every domain the deployment
// has ever successfully assessed, plus whatever the operator seeded
// (the model's training domains, a corpus file). The continuous
// re-verification scheduler sweeps it oldest-verdict-first; the serving
// path grows it as live traffic discovers new domains. Bounded so an
// abusive client enumerating throwaway domains cannot grow it without
// limit — once full, new names are dropped (the sweep still covers
// everything admitted before saturation).
type corpusStore struct {
	mu  sync.Mutex
	max int
	set map[string]struct{}
}

func newCorpusStore(max int) *corpusStore {
	return &corpusStore{max: max, set: make(map[string]struct{})}
}

// add records one normalized domain. It reports whether the domain is
// in the corpus afterwards (false only when the store is saturated and
// the domain was not already a member).
func (c *corpusStore) add(domain string) bool {
	if domain == "" {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.set[domain]; ok {
		return true
	}
	if len(c.set) >= c.max {
		return false
	}
	c.set[domain] = struct{}{}
	return true
}

func (c *corpusStore) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.set)
}

// domains returns the corpus sorted — the scheduler's sweep order (and
// journal layout) must be a pure function of the corpus contents, never
// of map iteration order.
func (c *corpusStore) domains() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.set))
	for d := range c.set {
		out = append(out, d)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// AddCorpusDomains seeds the known-domain corpus (normalizing each name
// exactly like a verify request would) and returns how many of the
// given domains are corpus members afterwards. The daemon seeds it at
// startup from a corpus file or the model's training domains; the
// serving path then grows it organically from successfully assessed
// live traffic.
func (s *Server) AddCorpusDomains(domains []string) int {
	n := 0
	for _, d := range domains {
		if s.corpus.add(normalizeDomain(d)) {
			n++
		}
	}
	return n
}

// Corpus returns the known-domain corpus in sorted order — the
// re-verification scheduler's stable sweep universe.
func (s *Server) Corpus() []string { return s.corpus.domains() }

// CorpusSize reports the current corpus membership count.
func (s *Server) CorpusSize() int { return s.corpus.len() }
