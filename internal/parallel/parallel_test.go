package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 123
		counts := make([]int64, n)
		For(n, workers, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndTinyN(t *testing.T) {
	For(0, 4, func(i int) { t.Fatalf("f called for n=0 (i=%d)", i) })
	ran := false
	For(1, 8, func(i int) { ran = true })
	if !ran {
		t.Fatal("f not called for n=1")
	}
}

func TestForBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	For(64, 3, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent workers, want <= 3", p)
	}
}

func TestMapErrOrdersResults(t *testing.T) {
	out, err := MapErr(50, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	_, err := MapErr(20, 8, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errLow
		case 17:
			return 0, errHigh
		}
		return i, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errLow)
	}
}

func TestMapErrMatchesSequential(t *testing.T) {
	// The parallel engine must be a pure reordering of execution: the
	// assembled results are identical at any worker count.
	f := func(i int) (string, error) { return fmt.Sprintf("item-%d", i*7%13), nil }
	seq, err := MapErr(40, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MapErr(40, runtime.GOMAXPROCS(0)*2, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %q != parallel %q", i, seq[i], par[i])
		}
	}
}

func TestForPropagatesLowestPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if r != "boom-2" {
			t.Fatalf("recovered %v, want lowest-index panic boom-2", r)
		}
	}()
	For(16, 4, func(i int) {
		if i == 2 || i == 9 {
			panic(fmt.Sprintf("boom-%d", i))
		}
	})
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	SetDefault(3)
	defer SetDefault(0)
	if got := Workers(0); got != 3 {
		t.Fatalf("Workers(0) with default 3 = %d", got)
	}
	SetDefault(0)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}
