package core

import (
	"fmt"
	"math/rand"
	"strings"

	"pharmaverify/internal/dataset"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/featcache"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/ngram"
	"pharmaverify/internal/parallel"
	"pharmaverify/internal/vectorize"
)

// TextConfig parameterizes a text-classification experiment (§6.3.1).
type TextConfig struct {
	// Representation: TFIDF (default) or NGramGraphs.
	Representation Representation
	// Classifier is the learner abbreviation (default SVM).
	Classifier ClassifierKind
	// Sampling rebalances the training folds (default NoSampling).
	Sampling SamplingKind
	// Terms is the summary subsample size; 0 means "All".
	Terms int
	// Folds is the cross-validation fold count (default 3, the paper's
	// protocol).
	Folds int
	// Seed drives subsampling, fold assignment and learners.
	Seed int64
	// Workers bounds fold-level concurrency (0 = process default,
	// 1 = sequential). Results are identical at every worker count.
	Workers int
}

func (c TextConfig) withDefaults() TextConfig {
	if c.Representation == "" {
		c.Representation = TFIDF
	}
	if c.Classifier == "" {
		c.Classifier = SVM
	}
	if c.Sampling == "" {
		c.Sampling = NoSampling
	}
	if c.Folds == 0 {
		c.Folds = 3
	}
	return c
}

// featureCache memoizes the expensive derived feature artifacts —
// TF-IDF corpora/datasets and per-fold N-Gram-Graph feature datasets —
// across classifiers and tables. Keys embed the snapshot's content
// hash, so distinct snapshots can never alias an entry (the historical
// `%p`-keyed memo could, after the GC reused a snapshot's address).
// The bound covers a full table sweep (5 term sizes × 2 snapshots ×
// a few artifact kinds) with room to spare.
var featureCache = featcache.New(128)

// ResetFeatureCache drops every memoized feature artifact. The
// benchmark harness calls it between measured runs so each leg pays
// the full, cold-cache cost.
func ResetFeatureCache() { featureCache.Purge() }

// FeatureCacheStats reports hit/miss/eviction counts of the shared
// feature cache since the last reset.
func FeatureCacheStats() (hits, misses, evictions uint64) {
	return featureCache.Stats()
}

// textCorpus memoizes the tokenized, subsampled corpus (and its
// vocabulary) for a snapshot/terms/seed combination — the vocabulary
// build is shared by every classifier and both weighting schemes.
func textCorpus(snap *dataset.Snapshot, terms int, seed int64) *vectorize.Corpus {
	key := fmt.Sprintf("corpus|%s|%d|%d", snap.ContentHash(), terms, seed)
	v, _ := featureCache.DoScoped(featcache.ScopeServing, key, func() (any, error) {
		docs := snap.SubsampledTerms(terms, seed)
		return vectorize.NewCorpus(docs, snap.Labels(), snap.Domains()), nil
	})
	return v.(*vectorize.Corpus)
}

// TFIDFDataset vectorizes a snapshot with the Term Vector model:
// raw counts for the multinomial Naïve Bayes classifier, L2-normalized
// TF-IDF for everything else, over terms subsampled to cfg.Terms.
//
// The returned dataset is memoized in the shared content-keyed feature
// cache and may be handed to several callers concurrently: treat it as
// read-only (Subset views are fine; do not Add to it or rewrite its
// vectors).
func TFIDFDataset(snap *dataset.Snapshot, cfg TextConfig) *ml.Dataset {
	cfg = cfg.withDefaults()
	w := vectorize.WeightTFIDF
	if cfg.Classifier == NBM {
		w = vectorize.WeightCounts
	}
	key := fmt.Sprintf("tv|%s|%d|%d|%d", snap.ContentHash(), cfg.Terms, cfg.Seed, w)
	v, _ := featureCache.DoScoped(featcache.ScopeServing, key, func() (any, error) {
		return textCorpus(snap, cfg.Terms, cfg.Seed).Dataset(w), nil
	})
	return v.(*ml.Dataset)
}

// TextCV runs the paper's 3-fold cross-validated text classification
// and returns the per-fold results. Folds are trained and scored
// concurrently (cfg.Workers bounds the pool); results are bit-identical
// to a sequential run at any worker count.
func TextCV(snap *dataset.Snapshot, cfg TextConfig) (eval.CVResult, error) {
	cfg = cfg.withDefaults()
	switch cfg.Representation {
	case TFIDF:
		return tfidfCV(snap, cfg)
	case NGramGraphs:
		return nggCV(snap, cfg)
	default:
		return eval.CVResult{}, fmt.Errorf("core: unknown representation %q", cfg.Representation)
	}
}

func tfidfCV(snap *dataset.Snapshot, cfg TextConfig) (eval.CVResult, error) {
	ds := TFIDFDataset(snap, cfg)
	smp, err := Sampler(cfg.Sampling)
	if err != nil {
		return eval.CVResult{}, err
	}
	trainer := func() ml.Classifier {
		clf, err := NewClassifier(cfg.Classifier, cfg.Seed)
		if err != nil {
			panic(err) // kind validated below before first use
		}
		return clf
	}
	if _, err := NewClassifier(cfg.Classifier, cfg.Seed); err != nil {
		return eval.CVResult{}, err
	}
	// The fold plane — stratified splits plus the (sampled) per-fold
	// training sets — depends only on the dataset, fold count, seed and
	// sampling, not on the classifier, so every classifier evaluated on
	// the same term-vector view shares one prepared set. Sampler draws
	// happen once, at plane-build time, keeping the master RNG stream
	// identical to the sequential protocol.
	w := vectorize.WeightTFIDF
	if cfg.Classifier == NBM {
		w = vectorize.WeightCounts
	}
	foldsKey := fmt.Sprintf("folds|%s|%d|%d|%d|%d|%s", snap.ContentHash(), cfg.Terms, cfg.Seed, w, cfg.Folds, cfg.Sampling)
	v, _ := featureCache.DoScoped(featcache.ScopeTraining, foldsKey, func() (any, error) {
		_, inputs, err := eval.PrepareFoldsCtx(nil, ds, cfg.Folds, cfg.Seed, smp)
		return inputs, err
	})
	return eval.CrossValidateOpts(ds, cfg.Folds, cfg.Seed, trainer, smp, eval.CVOptions{
		Workers:  cfg.Workers,
		Prepared: v.([]eval.FoldInput),
	})
}

// nggDocuments renders each pharmacy's (subsampled) terms back into a
// single string for n-gram graph construction.
func nggDocuments(snap *dataset.Snapshot, terms int, seed int64) []string {
	sub := snap.SubsampledTerms(terms, seed)
	docs := make([]string, len(sub))
	for i, ts := range sub {
		docs[i] = strings.Join(ts, " ")
	}
	return docs
}

// nggDocGrain is the number of documents one worker takes per dispatch
// in the fine-grained N-Gram-Graph passes (featurization, text ranks).
// One document costs tens of microseconds, so ~16 per chunk makes the
// chunk body a few hundred microseconds — large against the goroutine
// handoff, small enough to keep the tail balanced on uneven documents.
const nggDocGrain = 16

// NGGFeatureDataset builds the 8-feature similarity dataset of Figure 2
// for the given document texts, using class graphs merged from the
// instances listed in classIdx (typically a random half of the training
// fold, following the paper's protocol).
//
// This is the standalone (per-call graph construction) path. The
// training pipeline itself goes through the shared trainingPlane
// (featplane.go), which prebuilds every document graph once and hands
// bit-identical feature rows to all folds; this function remains the
// reference the plane is pinned against and the entry point for
// callers without a snapshot (ad-hoc document sets).
func NGGFeatureDataset(docs []string, labels []int, names []string, classIdx []int) *ml.Dataset {
	legitClass, illegitClass := nggClassGraphs(docs, labels, classIdx)

	// Feature pass: document graphs are built, compared and discarded
	// one at a time per worker, so memory stays bounded by the two
	// class graphs plus one document graph per CPU regardless of corpus
	// size.
	ds := &ml.Dataset{Dim: 8}
	feats := make([][]float64, len(docs))
	// Grain-aware fan-out: per-document featurization is fine-grained
	// (tens of microseconds), so documents are handed out in contiguous
	// chunks rather than one index per dispatch — the goroutine handoff
	// amortizes across the chunk and each worker's pooled builder scratch
	// stays hot for a whole run of documents.
	parallel.ForGrain(len(docs), 0, nggDocGrain, func(lo, hi int) {
		// Pooled single-pass kernel: one traversal of the document graph
		// computes all eight similarities, with the graph's scratch
		// (maps, buffers) reused across the worker's documents.
		for i := lo; i < hi; i++ {
			feats[i] = ngram.DocFeatures(nil, docs[i], legitClass, illegitClass)
		}
	})
	for i, f := range feats {
		name := ""
		if names != nil {
			name = names[i]
		}
		ds.Add(ml.NewVector(f), labels[i], name)
	}
	return ds
}

// nggClassGraphs builds the per-class merged graphs from the instances
// listed in classIdx, streaming one document graph at a time.
func nggClassGraphs(docs []string, labels []int, classIdx []int) (legit, illegit *ngram.Graph) {
	legit, illegit = ngram.New(), ngram.New()
	for _, i := range classIdx {
		g := ngram.FromDocument(docs[i])
		if labels[i] == ml.Legitimate {
			legit.Merge(g)
		} else {
			illegit.Merge(g)
		}
	}
	return legit, illegit
}

// nggFoldData caches the per-fold N-Gram-Graph feature datasets, which
// are identical for every classifier evaluated at the same (snapshot,
// terms, folds, seed) — the expensive graph construction then runs once
// per configuration rather than once per classifier. Concurrent
// classifiers hitting the same configuration share one build
// (singleflight), so a parallel table sweep never duplicates it.
type nggFoldData struct {
	folds eval.Folds
	ds    []*ml.Dataset
}

func nggFoldFeatures(snap *dataset.Snapshot, terms, foldCount int, seed int64, workers int) *nggFoldData {
	key := fmt.Sprintf("ngg|%s|%d|%d|%d", snap.ContentHash(), terms, foldCount, seed)
	v, _ := featureCache.DoScoped(featcache.ScopeTraining, key, func() (any, error) {
		plane := trainingPlaneFor(snap, terms, seed)
		labels := plane.Labels
		labelDS := &ml.Dataset{Dim: 1, X: make([]ml.Vector, len(labels)), Y: labels}
		folds := eval.StratifiedKFold(labelDS, foldCount, seed)
		rng := rand.New(rand.NewSource(seed + 17))

		// Pre-draw the per-fold class-graph halves in fold order so the
		// master RNG stream matches the sequential protocol; the matrix
		// builds themselves read only the shared plane, so the folds fan
		// out per the autotuned grain plan.
		halves := make([][]int, len(folds))
		for f := range folds {
			trainIdx, _ := folds.TrainTest(f)
			// Random half of the training instances builds the class graphs.
			perm := rng.Perm(len(trainIdx))
			half := make([]int, 0, len(trainIdx)/2)
			for _, p := range perm[:len(trainIdx)/2] {
				half = append(half, trainIdx[p])
			}
			halves[f] = half
		}
		plan := parallel.PlanGrainFor("ngg-folds", parallel.Workers(workers), len(folds), len(plane.Docs))
		plane.acquire()
		defer plane.release()
		data := &nggFoldData{folds: folds, ds: make([]*ml.Dataset, len(folds))}
		parallel.For(len(folds), plan.FoldWorkers, func(f int) {
			data.ds[f] = plane.featureDataset(halves[f], plan.DocWorkers, plan.DocGrain)
		})
		return data, nil
	})
	return v.(*nggFoldData)
}

// nggCV cross-validates the N-Gram-Graph pipeline: per fold, the class
// graphs are merged from a random half of the training instances and
// every instance is represented by its 8 similarities to the two class
// graphs; the classifier is trained on the training-fold features.
// The paper does not use sampling with this representation. Folds are
// trained and scored concurrently on the shared per-fold feature
// datasets.
func nggCV(snap *dataset.Snapshot, cfg TextConfig) (eval.CVResult, error) {
	if _, err := NewClassifier(cfg.Classifier, cfg.Seed); err != nil {
		return eval.CVResult{}, err
	}
	labels := snap.Labels()
	data := nggFoldFeatures(snap, cfg.Terms, cfg.Folds, cfg.Seed, cfg.Workers)
	folds := data.folds

	frs, err := parallel.MapErr(len(folds), cfg.Workers, func(f int) (eval.FoldResult, error) {
		trainIdx, testIdx := folds.TrainTest(f)
		ds := data.ds[f]

		clf, err := NewClassifier(cfg.Classifier, cfg.Seed)
		if err != nil {
			return eval.FoldResult{}, err
		}
		if err := clf.Fit(ds.Subset(trainIdx)); err != nil {
			return eval.FoldResult{}, err
		}
		fr := eval.FoldResult{TestIndex: testIdx}
		for _, i := range testIdx {
			p := clf.Prob(ds.X[i])
			fr.Scores = append(fr.Scores, p)
			fr.Labels = append(fr.Labels, labels[i])
			fr.Confusion.Observe(labels[i], ml.PredictFromProb(p))
		}
		fr.AUC = eval.AUC(fr.Scores, fr.Labels)
		return fr, nil
	})
	if err != nil {
		return eval.CVResult{}, err
	}
	return eval.CVResult{Folds: frs}, nil
}
