package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pharmaverify/internal/core"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/webgen"
)

// testWorld builds one small synthetic world plus a verifier trained on
// its snapshot, shared across the test binary (training is the slow
// part).
var (
	worldOnce sync.Once
	world     *webgen.World
	snap      *dataset.Snapshot
	verifier  *core.Verifier
)

func testVerifier(t testing.TB) (*webgen.World, *dataset.Snapshot, *core.Verifier) {
	t.Helper()
	worldOnce.Do(func() {
		world = webgen.Generate(webgen.Config{Seed: 11, NumLegit: 12, NumIllegit: 36, NetworkSize: 12})
		var err error
		snap, err = dataset.Build("serve-test", world, world.Domains(), world.Labels(), crawler.Config{}, 8)
		if err != nil {
			panic(err)
		}
		verifier, err = core.Train(snap, core.Options{Classifier: core.NBM, Seed: 11})
		if err != nil {
			panic(err)
		}
	})
	if verifier == nil {
		t.Fatal("test verifier unavailable")
	}
	return world, snap, verifier
}

// pickDomain returns a domain of the requested class.
func pickDomain(t testing.TB, legit bool) string {
	t.Helper()
	w, _, _ := testVerifier(t)
	want := ml.Illegitimate
	if legit {
		want = ml.Legitimate
	}
	for d, label := range w.Labels() {
		if label == want {
			return d
		}
	}
	t.Fatal("no domain of requested class")
	return ""
}

// countingFetcher counts root-page fetches per domain — one per crawl,
// so it measures how many crawls each domain cost.
type countingFetcher struct {
	inner crawler.Fetcher
	mu    sync.Mutex
	roots map[string]int
}

func newCountingFetcher(inner crawler.Fetcher) *countingFetcher {
	return &countingFetcher{inner: inner, roots: make(map[string]int)}
}

func (c *countingFetcher) Fetch(domain, path string) (string, error) {
	if path == "/" {
		c.mu.Lock()
		c.roots[domain]++
		c.mu.Unlock()
	}
	return c.inner.Fetch(domain, path)
}

func (c *countingFetcher) rootFetches(domain string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roots[domain]
}

// gatedFetcher blocks every fetch until released, signalling arrival.
type gatedFetcher struct {
	inner   crawler.Fetcher
	started chan string   // receives the domain of each arriving crawl fetch
	release chan struct{} // closed (or fed) to let fetches proceed
}

func (g *gatedFetcher) Fetch(domain, path string) (string, error) {
	select {
	case g.started <- domain:
	default:
	}
	<-g.release
	return g.inner.Fetch(domain, path)
}

// fakeClock is an injectable, advanceable clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	_, _, v := testVerifier(t)
	s, err := New(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postVerify(t testing.TB, url string, req VerifyRequest) (int, VerifyResponse, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr VerifyResponse
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &vr); err != nil {
			t.Fatalf("bad response body %q: %v", data, err)
		}
	}
	return resp.StatusCode, vr, resp.Header
}

func TestVerifyEndToEnd(t *testing.T) {
	w, snapshot, v := testVerifier(t)
	_, ts := newTestServer(t, Config{Fetcher: w, Workers: 4})

	domain := pickDomain(t, true)
	code, resp, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain})
	if code != http.StatusOK {
		t.Fatalf("verify returned %d", code)
	}
	if resp.Model != v.Fingerprint() {
		t.Errorf("response model %q, want served fingerprint %q", resp.Model, v.Fingerprint())
	}
	if len(resp.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(resp.Results))
	}
	got := resp.Results[0]
	if got.Domain != domain || got.Error != "" {
		t.Fatalf("unexpected verdict %+v", got)
	}
	if got.Pages == 0 || got.Crawl == nil || got.Crawl.Successes == 0 {
		t.Errorf("verdict missing crawl telemetry: %+v", got)
	}

	// The on-demand pipeline must agree exactly with the offline one:
	// the same domain assessed from the training snapshot's entry.
	for _, p := range snapshot.Pharmacies {
		if p.Domain != domain {
			continue
		}
		want := v.Assess([]dataset.Pharmacy{p})[0]
		if got.Legitimate != want.Legitimate || got.Rank != want.Rank || got.TextProb != want.TextProb {
			t.Errorf("online verdict %+v disagrees with offline assessment %+v", got, want)
		}
	}
}

func TestVerifyBatchRanked(t *testing.T) {
	w, _, _ := testVerifier(t)
	_, ts := newTestServer(t, Config{Fetcher: w, Workers: 4})

	legit, illegit := pickDomain(t, true), pickDomain(t, false)
	code, resp, _ := postVerify(t, ts.URL, VerifyRequest{Domains: []string{illegit, legit}})
	if code != http.StatusOK {
		t.Fatalf("verify returned %d", code)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	if len(resp.Ranking) != 2 {
		t.Fatalf("ranking %v, want both domains", resp.Ranking)
	}
	// Results keep request order; ranking orders by decreasing score.
	byDomain := map[string]DomainVerdict{}
	for _, r := range resp.Results {
		byDomain[r.Domain] = r
	}
	if byDomain[resp.Ranking[0]].Rank < byDomain[resp.Ranking[1]].Rank {
		t.Errorf("ranking %v not in decreasing rank order", resp.Ranking)
	}
}

func TestVerifyRejectsBadRequests(t *testing.T) {
	w, _, _ := testVerifier(t)
	_, ts := newTestServer(t, Config{Fetcher: w, MaxBatch: 2})

	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"garbage", `{nope`, http.StatusBadRequest},
		{"batch too large", `{"domains":["a.com","b.com","c.com"]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/v1/verify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/verify = %d, want 405", resp.StatusCode)
	}
}

// TestSingleflightDedup is the acceptance-criteria witness: 64
// concurrent requests for the same uncached domain must trigger exactly
// one crawl. Run under -race in CI.
func TestSingleflightDedup(t *testing.T) {
	w, _, _ := testVerifier(t)
	counting := newCountingFetcher(w)
	_, ts := newTestServer(t, Config{Fetcher: counting, Workers: 8, QueueDepth: 128})

	domain := pickDomain(t, false)
	const n = 64
	var (
		wg       sync.WaitGroup
		failures atomic.Int32
	)
	verdicts := make([]VerifyResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], verdicts[i], _ = postVerify(t, ts.URL, VerifyRequest{Domain: domain})
			if codes[i] != http.StatusOK {
				failures.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d of %d concurrent requests failed (codes %v)", failures.Load(), n, codes)
	}
	if got := counting.rootFetches(domain); got != 1 {
		t.Fatalf("%d concurrent requests cost %d crawls, want exactly 1", n, got)
	}
	// Every response carries the same verdict.
	first := verdicts[0].Results[0]
	for i, vr := range verdicts {
		r := vr.Results[0]
		if r.Legitimate != first.Legitimate || r.Rank != first.Rank {
			t.Fatalf("request %d got a different verdict: %+v vs %+v", i, r, first)
		}
	}
}

// TestBatchDeadlineFillsSkippedDomains: when the per-request deadline
// fires mid-batch, the domains the fan-out never dispatched must come
// back as explicit per-domain errors — never as zero-value verdicts
// that read like real "illegitimate" rulings for an empty domain.
func TestBatchDeadlineFillsSkippedDomains(t *testing.T) {
	w, _, _ := testVerifier(t)
	gate := &gatedFetcher{inner: w, started: make(chan string, 8), release: make(chan struct{})}
	_, ts := newTestServer(t, Config{Fetcher: gate, Workers: 2, BatchWorkers: 1})

	// BatchWorkers=1 runs the batch sequentially: the first domain's
	// crawl hangs at the gate until the 50 ms deadline fires, so the
	// remaining two are never dispatched.
	domains := []string{pickDomain(t, true), "b.example", "c.example"}
	code, vr, _ := postVerify(t, ts.URL, VerifyRequest{Domains: domains, TimeoutMs: 50})
	close(gate.release) // let the detached crawl finish

	if code != http.StatusOK {
		t.Fatalf("batch returned %d, want 200 with per-domain errors", code)
	}
	if len(vr.Results) != len(domains) {
		t.Fatalf("got %d results, want %d", len(vr.Results), len(domains))
	}
	for i, r := range vr.Results {
		if r.Domain != domains[i] {
			t.Errorf("result %d domain %q, want %q (zero-value verdict leaked)", i, r.Domain, domains[i])
		}
		if r.Error == "" {
			t.Errorf("result %d (%s) has no error after the deadline fired: %+v", i, domains[i], r)
		}
	}
	if len(vr.Ranking) != 0 {
		t.Errorf("ranking %v includes unassessed domains", vr.Ranking)
	}
}

// TestFollowerSurvivesImpatientLeader: the singleflight crawl runs on a
// context detached from the leader's request, so a leader with a tiny
// deadline times out alone while a follower with budget left still gets
// the verdict from the shared crawl.
func TestFollowerSurvivesImpatientLeader(t *testing.T) {
	w, _, _ := testVerifier(t)
	gate := &gatedFetcher{inner: w, started: make(chan string, 8), release: make(chan struct{})}
	_, ts := newTestServer(t, Config{Fetcher: gate, Workers: 2})

	domain := pickDomain(t, true)
	leaderc := make(chan VerifyResponse, 1)
	go func() {
		_, vr, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain, TimeoutMs: 50})
		leaderc <- vr
	}()
	select {
	case <-gate.started:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the fetcher")
	}

	// The leader gives up at its deadline while its crawl is still gated.
	lr := <-leaderc
	if len(lr.Results) != 1 || lr.Results[0].Error == "" {
		t.Fatalf("leader should have timed out, got %+v", lr.Results)
	}

	// A follower with the default (generous) budget joins the same
	// flight — the entry stays registered while the crawl is gated —
	// and must receive the real verdict once the crawl completes.
	followc := make(chan VerifyResponse, 1)
	go func() {
		_, vr, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain})
		followc <- vr
	}()
	time.Sleep(50 * time.Millisecond) // let the follower join the flight
	close(gate.release)
	fr := <-followc
	if len(fr.Results) != 1 || fr.Results[0].Error != "" {
		t.Fatalf("follower failed despite remaining budget: %+v", fr.Results)
	}
	if fr.Results[0].Pages == 0 {
		t.Errorf("follower verdict missing crawl results: %+v", fr.Results[0])
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	w, _, _ := testVerifier(t)
	counting := newCountingFetcher(w)
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	s, ts := newTestServer(t, Config{
		Fetcher: counting, Workers: 2, CacheTTL: time.Minute, now: clock.now,
	})

	domain := pickDomain(t, true)
	if code, vr, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain}); code != 200 || vr.Results[0].Cached {
		t.Fatalf("first lookup: code %d cached %v, want fresh 200", code, vr.Results[0].Cached)
	}
	if code, vr, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain}); code != 200 || !vr.Results[0].Cached {
		t.Fatalf("second lookup within TTL: code %d cached %v, want cache hit", code, vr.Results[0].Cached)
	}
	if got := counting.rootFetches(domain); got != 1 {
		t.Fatalf("cache hit still crawled: %d crawls", got)
	}

	clock.advance(2 * time.Minute)
	if code, vr, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain}); code != 200 || vr.Results[0].Cached {
		t.Fatalf("post-TTL lookup: code %d cached %v, want fresh re-crawl", code, vr.Results[0].Cached)
	}
	if got := counting.rootFetches(domain); got != 2 {
		t.Fatalf("expired entry not re-crawled: %d crawls, want 2", got)
	}
	if _, _, expiries, _ := s.cache.stats(); expiries != 1 {
		t.Errorf("expiries = %d, want 1", expiries)
	}
}

func TestRefreshBypassesCache(t *testing.T) {
	w, _, _ := testVerifier(t)
	counting := newCountingFetcher(w)
	_, ts := newTestServer(t, Config{Fetcher: counting, Workers: 2})

	domain := pickDomain(t, true)
	postVerify(t, ts.URL, VerifyRequest{Domain: domain})
	code, vr, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain, Refresh: true})
	if code != 200 || vr.Results[0].Cached {
		t.Fatalf("refresh lookup: code %d cached %v, want fresh", code, vr.Results[0].Cached)
	}
	if got := counting.rootFetches(domain); got != 2 {
		t.Fatalf("refresh did not re-crawl: %d crawls, want 2", got)
	}
}

func TestQueueFullSheds429(t *testing.T) {
	w, _, _ := testVerifier(t)
	gate := &gatedFetcher{inner: w, started: make(chan string, 8), release: make(chan struct{})}
	_, ts := newTestServer(t, Config{Fetcher: gate, Workers: 1, QueueDepth: -1})

	domain := pickDomain(t, false)
	errc := make(chan error, 1)
	go func() {
		code, _, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain})
		if code != http.StatusOK {
			errc <- fmt.Errorf("gated request finished with %d", code)
			return
		}
		errc <- nil
	}()
	// Wait until the first request holds the only worker slot (its
	// crawl reached the fetcher).
	select {
	case <-gate.started:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the fetcher")
	}

	code, _, hdr := postVerify(t, ts.URL, VerifyRequest{Domain: "other.example"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("overload request got %d, want 429", code)
	}
	// The hint is derived from the request-duration mean, floored at 1 s
	// — always a positive integer number of seconds.
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("429 Retry-After = %q, want an integer >= 1", hdr.Get("Retry-After"))
	}

	close(gate.release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestGracefulDrain(t *testing.T) {
	w, _, v := testVerifier(t)
	gate := &gatedFetcher{inner: w, started: make(chan string, 8), release: make(chan struct{})}
	s, err := New(v, Config{Fetcher: gate, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := httptest.NewServer(s.Handler())
	// Not using t.Cleanup(Close): the test closes it via the drain path.

	domain := pickDomain(t, true)
	type result struct {
		code int
		resp VerifyResponse
	}
	resc := make(chan result, 1)
	go func() {
		code, resp, _ := postVerify(t, httpSrv.URL, VerifyRequest{Domain: domain})
		resc <- result{code, resp}
	}()
	select {
	case <-gate.started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached the fetcher")
	}

	// Begin draining: readiness flips, new verify traffic is rejected…
	s.SetDraining(true)
	if resp, err := http.Get(httpSrv.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining /readyz = %d, want 503", resp.StatusCode)
		}
	}
	if code, _, _ := postVerify(t, httpSrv.URL, VerifyRequest{Domain: "other.example"}); code != http.StatusServiceUnavailable {
		t.Errorf("verify while draining = %d, want 503", code)
	}

	// …while the admitted request survives the drain and completes.
	drained := make(chan struct{})
	go func() {
		httpSrv.Config.Shutdown(context.Background())
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Shutdown returned while a request was still in flight")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate.release)
	r := <-resc
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain, want 200", r.code)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the last request drained")
	}
	httpSrv.Close()
}

func TestSwapModelHotReload(t *testing.T) {
	w, snapshot, v := testVerifier(t)
	gate := &gatedFetcher{inner: w, started: make(chan string, 8), release: make(chan struct{})}
	s, ts := newTestServer(t, Config{Fetcher: gate, Workers: 2})

	fpOld := v.Fingerprint()
	if got := s.ModelFingerprint(); got != fpOld {
		t.Fatalf("initial fingerprint %q, want %q", got, fpOld)
	}

	// Admit a request on the old model and hold its crawl at the gate.
	domain := pickDomain(t, true)
	type result struct {
		code int
		resp VerifyResponse
	}
	resc := make(chan result, 1)
	go func() {
		code, resp, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain})
		resc <- result{code, resp}
	}()
	select {
	case <-gate.started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached the fetcher")
	}

	// Reload: a differently configured model has a different identity.
	v2, err := core.Train(snapshot, core.Options{Classifier: core.NBM, Terms: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Fingerprint() == fpOld {
		t.Fatal("test needs two distinct models")
	}
	s.SwapModel(v2)
	if got := s.ModelFingerprint(); got != v2.Fingerprint() {
		t.Errorf("fingerprint after swap = %q, want %q", got, v2.Fingerprint())
	}

	// The in-flight request completes on the model it was admitted
	// under — a reload never drops or corrupts admitted work.
	close(gate.release)
	r := <-resc
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request failed with %d across reload", r.code)
	}
	if r.resp.Model != fpOld {
		t.Errorf("in-flight request served by model %q, want the pre-reload %q", r.resp.Model, fpOld)
	}

	// New requests are served by — and cached under — the new model.
	code, resp, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain})
	if code != http.StatusOK || resp.Model != v2.Fingerprint() {
		t.Errorf("post-reload request: code %d model %q, want 200 on %q", code, resp.Model, v2.Fingerprint())
	}
	if resp.Results[0].Cached {
		t.Error("post-reload request served the old model's cached verdict")
	}
}

func TestHealthzReadyz(t *testing.T) {
	w, _, v := testVerifier(t)
	_, ts := newTestServer(t, Config{Fetcher: w})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Model  string `json:"model"`
		Build  struct {
			Version   string `json:"version"`
			GoVersion string `json:"goVersion"`
		} `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Model != v.Fingerprint() || health.Build.Version == "" {
		t.Errorf("unexpected /healthz payload: %+v", health)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status  string `json:"status"`
		Model   string `json:"model"`
		Sources []struct {
			Name    string `json:"name"`
			Healthy bool   `json:"healthy"`
		} `json:"sources"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready.Status != "ready" || ready.Model != v.Fingerprint() {
		t.Errorf("unexpected /readyz payload: %+v", ready)
	}
	// The evidence backends report health on readiness, in fusion order.
	if len(ready.Sources) != 3 {
		t.Fatalf("/readyz lists %d sources, want 3: %+v", len(ready.Sources), ready.Sources)
	}
	for i, want := range []string{"text", "network", "registry"} {
		if ready.Sources[i].Name != want || !ready.Sources[i].Healthy {
			t.Errorf("source %d = %+v, want healthy %q", i, ready.Sources[i], want)
		}
	}
}

func TestRequestDomainsNormalization(t *testing.T) {
	w, _, v := testVerifier(t)
	s, err := New(v, Config{Fetcher: w})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.requestDomains(VerifyRequest{Domains: []string{
		"HTTPS://WWW.Example.COM/checkout?x=1", "example.com:443", "example.com", " other.net ",
	}})
	if err != nil {
		t.Fatal(err)
	}
	// A :port variant normalizes to the same domain (one crawl, one
	// cache key), so "example.com:443" dedupes against "example.com".
	want := []string{"example.com", "other.net"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("requestDomains = %v, want %v", got, want)
	}
}

func TestStripPort(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"example.com", "example.com"},
		{"example.com:8443", "example.com"},
		{"example.com:", "example.com"},
		{"example.com:http", "example.com:http"}, // not a port: kept
		{"[::1]:8443", "[::1]"},                  // bracketed IPv6 + port
		{"[2001:db8::1]", "[2001:db8::1]"},
		{"::1", "::1"}, // bare IPv6 literal survives
		{"2001:db8::443", "2001:db8::443"},
	} {
		if got := stripPort(tc.in); got != tc.want {
			t.Errorf("stripPort(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestConfigCrawlDefaultsMergeFieldwise: customizing one crawl-budget
// field must keep the serving defaults of the rest — the old code
// replaced the whole struct only when MaxPages, AttemptBudget and
// Retry.MaxAttempts were all zero, silently reverting a partly
// customized budget to the crawler's batch-scale defaults.
func TestConfigCrawlDefaultsMergeFieldwise(t *testing.T) {
	cfg := Config{Crawl: crawler.Config{FetchTimeout: 123 * time.Millisecond}}.withDefaults()
	if cfg.Crawl.FetchTimeout != 123*time.Millisecond {
		t.Errorf("customized FetchTimeout overwritten: %v", cfg.Crawl.FetchTimeout)
	}
	if cfg.Crawl.MaxPages != 50 || cfg.Crawl.AttemptBudget != 150 ||
		cfg.Crawl.Retry.MaxAttempts != 2 || cfg.Crawl.FailureBudget != 20 {
		t.Errorf("one customized field discarded the other serving defaults: %+v", cfg.Crawl)
	}

	// Explicit negatives disable a budget (the crawler treats
	// non-positive as unbounded/off) and must survive defaulting.
	cfg = Config{Crawl: crawler.Config{MaxPages: 7, AttemptBudget: -1}}.withDefaults()
	if cfg.Crawl.MaxPages != 7 || cfg.Crawl.AttemptBudget != -1 {
		t.Errorf("explicit values overwritten: %+v", cfg.Crawl)
	}
	if cfg.Crawl.Retry.MaxAttempts != 2 {
		t.Errorf("unset retry not defaulted alongside set fields: %+v", cfg.Crawl.Retry)
	}
}

func TestRetryAfterDerivedFromRequestMean(t *testing.T) {
	w, _, v := testVerifier(t)
	s, err := New(v, Config{Fetcher: w})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	if got := s.retryAfterSecs(); got != 1 {
		t.Errorf("cold server Retry-After = %d, want the 1 s floor", got)
	}
	s.met.requestSecs.observe(0.05)
	if got := s.retryAfterSecs(); got != 1 {
		t.Errorf("sub-second mean Retry-After = %d, want the 1 s floor", got)
	}
	s.met.requestSecs.observe(8.95) // mean now (0.05+8.95)/2 = 4.5 s
	if got := s.retryAfterSecs(); got != 5 {
		t.Errorf("Retry-After = %d, want ceil(4.5 s mean) = 5", got)
	}
}

// limitedFetcher passes the first allow fetches through and blocks the
// rest until release is closed; blocked is closed when the first fetch
// hits the gate.
type limitedFetcher struct {
	inner   crawler.Fetcher
	allow   atomic.Int32
	n       atomic.Int32
	once    sync.Once
	blocked chan struct{}
	release chan struct{}
}

func (l *limitedFetcher) Fetch(domain, path string) (string, error) {
	if l.n.Add(1) > l.allow.Load() {
		l.once.Do(func() { close(l.blocked) })
		<-l.release
	}
	return l.inner.Fetch(domain, path)
}

// multiPageDomain returns a domain whose site has at least three pages,
// so a crawl can be interrupted with the root collected and the
// frontier still pending.
func multiPageDomain(t *testing.T) string {
	t.Helper()
	_, snapshot, _ := testVerifier(t)
	for _, p := range snapshot.Pharmacies {
		if p.Pages >= 3 {
			return p.Domain
		}
	}
	t.Fatal("test world has no multi-page site")
	return ""
}

// TestPartialCrawlServesDegradedVerdict: a crawl interrupted by the
// serving deadline after collecting pages must yield a verdict over the
// partial snapshot (marked Partial, never cached) instead of the
// pre-fix behavior of discarding the pages and failing the domain.
func TestPartialCrawlServesDegradedVerdict(t *testing.T) {
	w, _, v := testVerifier(t)
	domain := multiPageDomain(t)

	lf := &limitedFetcher{inner: w, blocked: make(chan struct{}), release: make(chan struct{})}
	lf.allow.Store(2) // robots.txt + the root page, then the gate closes
	s, err := New(v, Config{Fetcher: lf, MaxTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// The flight's detached context expires at MaxTimeout while the
	// crawl is gated; the caller itself has unlimited budget and gets
	// the degraded verdict.
	got := s.verifyDomain(context.Background(), s.model.Load(), domain, false)
	if got.Error != "" {
		t.Fatalf("interrupted crawl failed the domain instead of degrading: %+v", got)
	}
	if !got.Partial {
		t.Fatalf("verdict over an interrupted crawl not marked partial: %+v", got)
	}
	if got.Pages == 0 || len(got.Sources) == 0 {
		t.Fatalf("partial verdict missing pages or source contributions: %+v", got)
	}
	if got.Crawl == nil || got.Crawl.Cancels == 0 {
		t.Errorf("partial verdict's crawl telemetry does not record the interruption: %+v", got.Crawl)
	}
	if keys, counts := partialOutcomes(s); keys == 0 || counts == 0 {
		t.Error("partial outcome not counted in the domains metric")
	}

	// A partial verdict must not be cached: with the gate open the next
	// request re-crawls in full and only that complete verdict sticks.
	lf.allow.Store(1 << 30)
	close(lf.release)
	second := s.verifyDomain(context.Background(), s.model.Load(), domain, false)
	if second.Cached {
		t.Fatal("partial verdict was served from the cache")
	}
	if second.Partial || second.Error != "" {
		t.Fatalf("unimpeded re-crawl still degraded: %+v", second)
	}
	if third := s.verifyDomain(context.Background(), s.model.Load(), domain, false); !third.Cached {
		t.Error("complete verdict not cached")
	}
}

// partialOutcomes reports whether the "partial" outcome was counted.
func partialOutcomes(s *Server) (present int, count uint64) {
	keys, counts := s.met.domains.snapshot()
	for i, k := range keys {
		if k == "partial" {
			return 1, counts[i]
		}
	}
	return 0, 0
}

// TestInterruptedCrawlWithNoPagesErrors: an interruption before any
// page was collected is still an error — and the error wraps the real
// cancellation cause instead of formatting a nil ctx.Err().
func TestInterruptedCrawlWithNoPagesErrors(t *testing.T) {
	w, _, v := testVerifier(t)
	domain := pickDomain(t, true)
	gate := &gatedFetcher{inner: w, started: make(chan string, 8), release: make(chan struct{})}
	s, err := New(v, Config{Fetcher: gate})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.assessObs(ctx, s.model.Load(), domain)
		errc <- err
	}()
	select {
	case <-gate.started: // robots.txt is gated: zero pages collected
	case <-time.After(5 * time.Second):
		t.Fatal("crawl never reached the fetcher")
	}
	cancel()
	aerr := <-errc
	close(gate.release)

	if aerr == nil {
		t.Fatal("zero-page interrupted crawl produced no error")
	}
	if !errors.Is(aerr, context.Canceled) {
		t.Errorf("error %v does not wrap the cancellation cause", aerr)
	}
	if !strings.Contains(aerr.Error(), "interrupted") {
		t.Errorf("error %q does not say the crawl was interrupted", aerr)
	}
	if strings.Contains(aerr.Error(), "%!w") {
		t.Errorf("error %q formatted a nil wrap target", aerr)
	}
}

// assertMatchesOffline pins one served fused verdict against the
// offline pipeline's assessment of the same observation.
func assertMatchesOffline(t *testing.T, got DomainVerdict, want core.Assessment) {
	t.Helper()
	if got.Legitimate != want.Legitimate || got.TextProb != want.TextProb ||
		got.TrustScore != want.TrustScore || got.NetworkProb != want.NetworkProb ||
		got.Rank != want.Rank {
		t.Errorf("online verdict %+v disagrees with offline assessment %+v", got, want)
	}
	// The response itemizes exactly the contributing backends, with the
	// probabilities the fused fields report.
	if len(got.Sources) != 2 || got.Sources[0].Name != "text" || got.Sources[1].Name != "network" ||
		got.Sources[0].Prob != got.TextProb || got.Sources[1].Prob != got.NetworkProb {
		t.Errorf("sources %+v don't itemize the text+network fusion", got.Sources)
	}
}

// TestFusedVerdictMatchesOfflinePipeline: with the dirty threshold at 1
// (recompute after every graph change), serving verdicts are
// bit-identical to the offline ensemble over the same crawl set — the
// staleness contract's convergence guarantee.
func TestFusedVerdictMatchesOfflinePipeline(t *testing.T) {
	w, snapshot, v := testVerifier(t)
	_, ts := newTestServer(t, Config{Fetcher: w, Workers: 2, GraphDirtyThreshold: 1})

	byDomain := map[string]dataset.Pharmacy{}
	for _, p := range snapshot.Pharmacies {
		byDomain[p.Domain] = p
	}
	d1, d2 := pickDomain(t, true), pickDomain(t, false)

	// First domain: the offline equivalent is a batch of one.
	code, resp, _ := postVerify(t, ts.URL, VerifyRequest{Domain: d1})
	if code != http.StatusOK || resp.Results[0].Error != "" {
		t.Fatalf("verify %s: code %d, %+v", d1, code, resp.Results)
	}
	assertMatchesOffline(t, resp.Results[0], v.Assess([]dataset.Pharmacy{byDomain[d1]})[0])

	// Second domain: the live graph now holds both crawls, so the
	// offline equivalent is the two-domain batch.
	code, resp, _ = postVerify(t, ts.URL, VerifyRequest{Domain: d2})
	if code != http.StatusOK || resp.Results[0].Error != "" {
		t.Fatalf("verify %s: code %d, %+v", d2, code, resp.Results)
	}
	assertMatchesOffline(t, resp.Results[0], v.Assess([]dataset.Pharmacy{byDomain[d1], byDomain[d2]})[1])
}

// TestRegistryEvidenceJoinsFusion: a configured registry backend votes
// into the fusion and its contribution is itemized; the decision is the
// equal-weight average over every recorded vote.
func TestRegistryEvidenceJoinsFusion(t *testing.T) {
	w, _, _ := testVerifier(t)
	domain := pickDomain(t, false)
	_, ts := newTestServer(t, Config{
		Fetcher:  w,
		Registry: NewStaticRegistry(map[string]bool{domain: true}),
	})

	code, resp, _ := postVerify(t, ts.URL, VerifyRequest{Domain: domain})
	if code != http.StatusOK || resp.Results[0].Error != "" {
		t.Fatalf("verify: code %d, %+v", code, resp.Results)
	}
	got := resp.Results[0]
	if len(got.Sources) != 3 || got.Sources[2].Name != "registry" || got.Sources[2].Prob != 1 {
		t.Fatalf("sources %+v, want text+network plus a registry vote of 1", got.Sources)
	}
	var sum float64
	for _, c := range got.Sources {
		sum += c.Prob
	}
	if want := sum/float64(len(got.Sources)) >= 0.5; got.Legitimate != want {
		t.Errorf("Legitimate = %v, want the fused average rule (%v) over %+v", got.Legitimate, want, got.Sources)
	}

	// An unregistered domain keeps the two-source fusion.
	other := pickDomain(t, true)
	if other != domain {
		_, resp, _ = postVerify(t, ts.URL, VerifyRequest{Domain: other})
		if len(resp.Results[0].Sources) != 2 {
			t.Errorf("unregistered domain fused %+v, want text+network only", resp.Results[0].Sources)
		}
	}
}

// TestConcurrentServingFoldsAndRefreshes hammers the serving path with
// concurrent re-crawls (Refresh bypasses the cache, so every request
// folds into the live graph) while the dirty threshold of 1 and a fast
// background tick force TrustRank recomputes to race the folds. It
// exists to run under -race.
func TestConcurrentServingFoldsAndRefreshes(t *testing.T) {
	w, _, _ := testVerifier(t)
	s, ts := newTestServer(t, Config{
		Fetcher: w, Workers: 8, QueueDepth: 1024,
		GraphDirtyThreshold: 1, GraphRefreshInterval: time.Millisecond,
	})

	var domains []string
	for d := range w.Labels() {
		domains = append(domains, d)
		if len(domains) == 6 {
			break
		}
	}
	var (
		wg  sync.WaitGroup
		bad atomic.Int32
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				d := domains[(g+i)%len(domains)]
				code, vr, _ := postVerify(t, ts.URL, VerifyRequest{Domain: d, Refresh: true})
				if code != http.StatusOK || len(vr.Results) != 1 || vr.Results[0].Error != "" {
					bad.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() > 0 {
		t.Fatalf("%d of 32 concurrent refresh requests failed", bad.Load())
	}
	if s.graph.snap.Load() == nil {
		t.Fatal("no score snapshot after concurrent serving")
	}
	if s.met.graphRefreshes.value() == 0 {
		t.Error("no TrustRank refreshes despite a dirty threshold of 1")
	}
	// Concurrent same-domain refreshes share a flight, so the fold count
	// is between the domain count and the request count.
	if st := s.graph.live.Stats(); st.Folds < uint64(len(domains)) {
		t.Errorf("folds = %d, want at least one per domain (%d)", st.Folds, len(domains))
	}
}
