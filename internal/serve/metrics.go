package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The serving metrics are rendered in the Prometheus text exposition
// format with no external dependencies: three tiny primitives (counter,
// labeled counter, histogram) plus a renderer. Every instrument is
// lock-free on the observe path — plain counters and histogram buckets
// are single atomic adds, the float sum a CAS loop, and label families
// a sync.Map read — so concurrent requests never serialize on a metrics
// mutex. Renders read the atomics without a global lock: a snapshot
// taken mid-observation may be off by in-flight increments (a render
// racing observe can momentarily show count ahead of sum or vice
// versa), which is the standard Prometheus client trade for a
// contention-free hot path; each individual value is never torn.

// counter is a monotonically increasing uint64.
type counter struct{ n atomic.Uint64 }

func (c *counter) inc()          { c.n.Add(1) }
func (c *counter) add(d uint64)  { c.n.Add(d) }
func (c *counter) value() uint64 { return c.n.Load() }

// labelCounter is a counter family over the values of one label.
// Label slots are created on first use via LoadOrStore; after that an
// inc is one sync.Map read plus one atomic add.
type labelCounter struct {
	vals sync.Map // string -> *counter
}

func (l *labelCounter) inc(label string) {
	if c, ok := l.vals.Load(label); ok {
		c.(*counter).inc()
		return
	}
	c, _ := l.vals.LoadOrStore(label, &counter{})
	c.(*counter).inc()
}

// snapshot returns the label values in sorted order with their counts,
// so the rendered exposition is deterministic.
func (l *labelCounter) snapshot() ([]string, []uint64) {
	keys := make([]string, 0, 8)
	l.vals.Range(func(k, _ any) bool {
		keys = append(keys, k.(string))
		return true
	})
	sort.Strings(keys)
	counts := make([]uint64, len(keys))
	for i, k := range keys {
		c, _ := l.vals.Load(k)
		counts[i] = c.(*counter).value()
	}
	return keys, counts
}

// histogram is a fixed-bucket Prometheus histogram. Buckets and the
// observation count are atomic adds; the float sum is an atomic CAS
// loop over its bit pattern (uncontended in practice — the loop retries
// only when two observations land on the same histogram in the same
// instant).
type histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit; read-only
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
	n       atomic.Uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.n.Add(1)
}

func (h *histogram) sum() float64        { return math.Float64frombits(h.sumBits.Load()) }
func (h *histogram) count() uint64       { return h.n.Load() }
func (h *histogram) bucket(i int) uint64 { return h.counts[i].Load() }

// mean returns the running mean of all observations (0 before the
// first). The 429 Retry-After hint is derived from it: the typical
// service time is the soonest a retry could plausibly be served.
func (h *histogram) mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return h.sum() / float64(n)
}

// histogramVec is a histogram family over the values of one label
// (per-evidence-source latency). Label values are created on first
// observation, so pluggable sources need no registration.
type histogramVec struct {
	bounds []float64
	m      sync.Map // string -> *histogram
}

func newHistogramVec(bounds []float64) *histogramVec {
	return &histogramVec{bounds: bounds}
}

// with returns the histogram for one label value, creating it on first
// use.
func (v *histogramVec) with(label string) *histogram {
	if h, ok := v.m.Load(label); ok {
		return h.(*histogram)
	}
	h, _ := v.m.LoadOrStore(label, newHistogram(v.bounds))
	return h.(*histogram)
}

// snapshot returns the label values in sorted order with their
// histograms, for deterministic rendering.
func (v *histogramVec) snapshot() ([]string, []*histogram) {
	keys := make([]string, 0, 8)
	v.m.Range(func(k, _ any) bool {
		keys = append(keys, k.(string))
		return true
	})
	sort.Strings(keys)
	hs := make([]*histogram, len(keys))
	for i, k := range keys {
		h, _ := v.m.Load(k)
		hs[i] = h.(*histogram)
	}
	return keys, hs
}

// durationBuckets covers 1 ms … 60 s, the plausible range of one
// on-demand crawl-and-classify request.
var durationBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// metrics is the daemon's instrument set. Gauges (queue depth, cache
// size, hit ratio) are not stored here — they are read from the live
// components at render time, which keeps them impossible to desync.
type metrics struct {
	requests     *labelCounter // code: HTTP status of /v1/verify responses
	domains      *labelCounter // outcome: cache_hit | crawled | deduped | partial | error
	verdicts     *labelCounter // verdict: legitimate | illegitimate
	queueReject  counter
	modelReloads counter
	// Evidence fusion: per-source assessment latency, fused
	// contributions and degraded (errored) assessments by source, and
	// the link-graph TrustRank refresh cost.
	sourceSecs     *histogramVec // source: text | network | registry
	sourceContribs *labelCounter // source
	sourceErrors   *labelCounter // source
	graphRefreshes counter
	refreshSecs    *histogram
	// Resilience: breaker lifecycle transitions ("source|state" keys,
	// rendered as two labels), requests fast-failed by an open breaker,
	// assessments shed by a full bulkhead or cut off by the per-source
	// deadline, verdicts that failed the evidence quorum, and failed
	// model hot-reload attempts (the reload itself only logs).
	breakerTransitions *labelCounter // "source|state"
	breakerRejects     *labelCounter // source
	sourceSheds        *labelCounter // source
	sourceTimeouts     *labelCounter // source
	quorumFailures     counter
	modelReloadFails   counter
	// Shadow deployment: fresh observations double-assessed by the
	// candidate model, fused-verdict flips, per-source class
	// disagreements, and the promotion/demotion lifecycle. Cumulative
	// across candidates — the per-candidate gate counters live on the
	// shadowState itself.
	shadowAssessments   counter
	shadowFlips         counter
	shadowDisagreements *labelCounter // source
	shadowPromotions    counter
	shadowDemotions     counter
	// Per-stage latency of the on-demand pipeline: crawl → preprocess
	// (summarize, stop-word removal, link extraction) → per-source
	// assessment (sourceSecs). requestSecs covers the whole request.
	crawlSecs      *histogram
	preprocessSecs *histogram
	requestSecs    *histogram
}

func newMetrics() *metrics {
	return &metrics{
		requests:            &labelCounter{},
		domains:             &labelCounter{},
		verdicts:            &labelCounter{},
		sourceSecs:          newHistogramVec(durationBuckets),
		sourceContribs:      &labelCounter{},
		sourceErrors:        &labelCounter{},
		breakerTransitions:  &labelCounter{},
		shadowDisagreements: &labelCounter{},
		breakerRejects:      &labelCounter{},
		sourceSheds:         &labelCounter{},
		sourceTimeouts:      &labelCounter{},
		refreshSecs:         newHistogram(durationBuckets),
		crawlSecs:           newHistogram(durationBuckets),
		preprocessSecs:      newHistogram(durationBuckets),
		requestSecs:         newHistogram(durationBuckets),
	}
}

// writeCounter renders one unlabeled counter (or gauge, by type).
func writeMetric(w io.Writer, name, help, typ string, value string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, value)
}

func writeLabelCounter(w io.Writer, name, help, label string, lc *labelCounter) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	keys, counts := lc.snapshot()
	for i, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, counts[i])
	}
}

// writeLabel2Counter renders a labelCounter whose keys are
// "value1|value2" composites as a two-label family (the breaker
// transition counter: source and target state).
func writeLabel2Counter(w io.Writer, name, help, label1, label2 string, lc *labelCounter) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	keys, counts := lc.snapshot()
	for i, k := range keys {
		v1, v2, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "%s{%s=%q,%s=%q} %d\n", name, label1, v1, label2, v2, counts[i])
	}
}

// writeLabelGauge renders one gauge family from explicit label/value
// pairs read off live components at render time (breaker states).
func writeLabelGauge(w io.Writer, name, help, label string, labels []string, values []float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	for i, l := range labels {
		fmt.Fprintf(w, "%s{%s=%q} %s\n", name, label, l, formatFloat(values[i]))
	}
}

func writeHistogram(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	writeHistogramSeries(w, name, "", h)
}

// writeHistogramVec renders one histogram family with a label per
// series (HELP/TYPE once, then every label's buckets).
func writeHistogramVec(w io.Writer, name, help, label string, v *histogramVec) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	keys, hs := v.snapshot()
	for i, k := range keys {
		writeHistogramSeries(w, name, fmt.Sprintf("%s=%q,", label, k), hs[i])
	}
}

// writeHistogramSeries renders one series' buckets/sum/count;
// labelPrefix is empty or `label="value",` to splice before le.
func writeHistogramSeries(w io.Writer, name, labelPrefix string, h *histogram) {
	bounds := h.bounds
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	sum, n := h.sum(), h.count()

	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labelPrefix, formatFloat(b), cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix, cum)
	if labelPrefix == "" {
		fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(sum), name, n)
	} else {
		lbl := "{" + strings.TrimSuffix(labelPrefix, ",") + "}"
		fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", name, lbl, formatFloat(sum), name, lbl, n)
	}
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
