package serve

import (
	"fmt"
	"testing"
	"time"
)

func TestVerdictCacheLRUEviction(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	c := newVerdictCache(2, time.Hour, 0, clock.now)
	c.put("a", DomainVerdict{Domain: "a"})
	c.put("b", DomainVerdict{Domain: "b"})
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", DomainVerdict{Domain: "c"})
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction past the bound")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("new entry missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	if _, _, _, evictions := c.stats(); evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
}

func TestVerdictCacheTTL(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	c := newVerdictCache(10, time.Minute, 0, clock.now)
	c.put("k", DomainVerdict{Domain: "k", Rank: 1})
	clock.advance(59 * time.Second)
	if _, ok := c.get("k"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	clock.advance(2 * time.Second)
	if _, ok := c.get("k"); ok {
		t.Fatal("entry survived past its TTL")
	}
	hits, misses, expiries, _ := c.stats()
	if hits != 1 || misses != 1 || expiries != 1 {
		t.Errorf("stats = %d/%d/%d, want 1 hit, 1 miss, 1 expiry", hits, misses, expiries)
	}
	// Re-put refreshes the TTL from the current time.
	c.put("k", DomainVerdict{Domain: "k", Rank: 2})
	clock.advance(59 * time.Second)
	v, ok := c.get("k")
	if !ok || v.Rank != 2 {
		t.Errorf("refreshed entry: ok=%v rank=%v, want fresh rank 2", ok, v.Rank)
	}
}

func TestVerdictCachePutRefreshesExisting(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	c := newVerdictCache(10, time.Minute, 0, clock.now)
	c.put("k", DomainVerdict{Rank: 1})
	clock.advance(50 * time.Second)
	c.put("k", DomainVerdict{Rank: 2})
	clock.advance(50 * time.Second) // 100 s after first put, 50 s after second
	v, ok := c.get("k")
	if !ok || v.Rank != 2 {
		t.Errorf("ok=%v rank=%v, want the refreshed verdict to still be live", ok, v.Rank)
	}
	if c.len() != 1 {
		t.Errorf("len = %d after re-put, want 1", c.len())
	}
}

func TestVerdictCacheConcurrent(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	c := newVerdictCache(32, time.Hour, 0, clock.now)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%64)
				if i%3 == 0 {
					c.put(key, DomainVerdict{Domain: key})
				} else {
					c.get(key)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.len() > 32 {
		t.Errorf("len = %d exceeds the bound", c.len())
	}
}
