package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/ml/ensemble"
	"pharmaverify/internal/textproc"
	"pharmaverify/internal/trust"
)

// flightGroup deduplicates concurrent work for the same key: the first
// caller becomes the leader and starts fn, every concurrent caller for
// the same key blocks until fn finishes and shares its result. In the
// serving path the key is verdictKey(fingerprint, domain), so a burst
// of requests for one uncached domain costs exactly one crawl.
//
// fn runs on its own context — detached from the leader's request,
// bounded only by the server's maximum timeout — so an impatient
// leader (short deadline, dropped connection) cannot abort a crawl
// that patient followers are still waiting on. Every caller, leader
// included, waits under its own ctx and gives up individually.
type flightGroup struct {
	maxTimeout time.Duration

	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	v    DomainVerdict
	err  error
}

func newFlightGroup(maxTimeout time.Duration) *flightGroup {
	return &flightGroup{maxTimeout: maxTimeout, calls: make(map[string]*flightCall)}
}

// do runs fn under key, deduplicating concurrent calls. shared reports
// whether this caller joined a flight another caller started. A caller
// whose ctx expires stops waiting and returns ctx's error; the flight
// itself keeps running (and caching its result) for whoever remains.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (DomainVerdict, error)) (v DomainVerdict, shared bool, err error) {
	g.mu.Lock()
	c, ok := g.calls[key]
	if !ok {
		c = &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()
		go func() {
			// Keep the leader's values (trace metadata) but not its
			// cancellation; the server's MaxTimeout is the only bound.
			runCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), g.maxTimeout)
			defer cancel()
			c.v, c.err = fn(runCtx)
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
	} else {
		g.mu.Unlock()
	}

	select {
	case <-c.done:
		return c.v, ok, c.err
	case <-ctx.Done():
		return DomainVerdict{}, ok, ctx.Err()
	}
}

// verdictKey is the cache and singleflight key: model identity plus
// domain. Keying on the fingerprint keeps cached verdicts consistent
// with fresh ones across hot reloads — a new model can never be served
// a predecessor's verdict.
func verdictKey(fingerprint, domain string) string {
	return fingerprint + "|" + domain
}

// verifyDomain produces the verdict for one domain under one model
// slot: verdict cache first, then singleflight-deduplicated on-demand
// assessment. Errors are returned inside the verdict (Error field) so a
// batch request reports per-domain failures without failing wholesale.
func (s *Server) verifyDomain(ctx context.Context, slot *modelSlot, domain string, refresh bool) DomainVerdict {
	key := verdictKey(slot.fingerprint, domain)
	if !refresh {
		if v, ok := s.cache.get(key); ok {
			s.met.domains.inc("cache_hit")
			v.Cached = true
			return v
		}
	}
	v, shared, err := s.flight.do(ctx, key, func(ctx context.Context) (DomainVerdict, error) {
		v, _, err := s.assessObs(ctx, slot, domain)
		if err == nil && !v.Partial {
			// Cache successful, complete verdicts only — a transient
			// crawl failure must not stick for a whole TTL, and a
			// partial-crawl verdict must not shadow the full crawl a
			// later request could collect. A refresh=true assessment
			// also lands here, replacing any cached verdict: later cached
			// reads are never staler than the freshest one served.
			s.cache.put(key, v)
		}
		return v, err
	})
	switch {
	case err != nil:
		// Live assessment failed (crawl got nothing, quorum unmet, or
		// the caller's deadline fired while waiting on the flight). The
		// degradation policy: an expired verdict within the stale-serve
		// budget answers — marked — rather than erroring; honesty over
		// availability only when even the stale fallback is exhausted.
		if sv, stale, ok := s.cache.getStale(key); ok {
			if stale {
				s.met.domains.inc("stale")
			} else {
				s.met.domains.inc("cache_hit")
			}
			sv.Cached = true
			sv.Stale = stale
			return sv
		}
		s.met.domains.inc("error")
		return DomainVerdict{Domain: domain, Error: err.Error()}
	case shared:
		s.met.domains.inc("deduped")
	default:
		s.met.domains.inc("crawled")
	}
	return v
}

// Observation is the crawled, preprocessed evidence behind one fresh
// verdict: the same dataset.Pharmacy the evidence sources voted on,
// plus the verdict it produced. The re-verification pipeline consumes
// it — the drift monitor folds the terms and outbound endpoints into
// its streaming frequency counters.
type Observation struct {
	Domain   string
	Terms    []string
	Outbound []string
	Pages    int
	Verdict  DomainVerdict
}

// Reverify runs the full serving pipeline — crawl, preprocess, evidence
// fusion, shadow double-assessment — for one corpus domain on behalf of
// the background re-verification scheduler, and refreshes the verdict
// cache so live traffic benefits from the sweep. It deliberately does
// NOT pass through admission control: background sweeps must never
// occupy the worker slots live /v1/verify traffic is admitted on (the
// crawl-rate budget lives in the scheduler instead). The live model at
// call time judges the domain, exactly as a live request would be.
func (s *Server) Reverify(ctx context.Context, domain string) (Observation, error) {
	domain = normalizeDomain(domain)
	if domain == "" {
		return Observation{}, errors.New("serve: empty domain")
	}
	slot := s.model.Load()
	v, p, err := s.assessObs(ctx, slot, domain)
	if err != nil {
		return Observation{}, err
	}
	if !v.Partial {
		s.cache.put(verdictKey(slot.fingerprint, domain), v)
	}
	return Observation{Domain: domain, Terms: p.Terms, Outbound: p.Outbound, Pages: p.Pages, Verdict: v}, nil
}

// assessObs runs the on-demand pipeline for one domain: crawl (bounded
// by the flight's detached context and the server's crawl budget),
// preprocess (summarize + stop-word removal, exactly the training-time
// pipeline), then fuse the ordered evidence backends over the
// observation. On success it also feeds the cross-cutting consumers of
// a fresh observation: the shadow candidate double-assesses it and the
// domain joins the re-verification corpus. The verdict is
// self-contained — it owns a clone of its crawl telemetry — so it can
// be cached and returned to many requests safely. The observation
// (second return) shares the crawl's term/endpoint slices; callers must
// treat it as read-only.
func (s *Server) assessObs(ctx context.Context, slot *modelSlot, domain string) (DomainVerdict, dataset.Pharmacy, error) {
	start := time.Now()
	r := crawler.CrawlCtx(ctx, s.fetch, domain, s.cfg.Crawl)
	s.met.crawlSecs.observe(time.Since(start).Seconds())
	// Fold this request's telemetry into the process-wide counters
	// (race-safe: Aggregator copies, the verdict gets its own clone).
	s.agg.Add(r.Stats)

	// A crawl interrupted mid-deadline degrades to the pages collected
	// so far instead of discarding them; only a crawl that got nothing
	// at all is an error. ctx.Err() can be nil here — the cancel may
	// have come from the flight's detached MaxTimeout context rather
	// than this one — so it is never wrapped blindly.
	partial := r.Stats.Cancels != 0
	if len(r.Pages) == 0 {
		if partial {
			if cause := ctx.Err(); cause != nil {
				return DomainVerdict{}, dataset.Pharmacy{}, fmt.Errorf("crawl of %s interrupted: %w", domain, cause)
			}
			return DomainVerdict{}, dataset.Pharmacy{}, fmt.Errorf("crawl of %s interrupted before any page was collected", domain)
		}
		return DomainVerdict{}, dataset.Pharmacy{}, fmt.Errorf("no pages crawled for %s (%d attempts, %d failed)",
			domain, r.Stats.Attempts, r.Stats.Failures)
	}
	if partial {
		s.met.domains.inc("partial")
	}

	preStart := time.Now()
	summary := textproc.Summarize(r.Text())
	p := dataset.Pharmacy{
		Domain:   domain,
		Terms:    s.pre.Terms(summary),
		Outbound: trust.OutboundEndpoints(r.External, domain),
		Pages:    len(r.Pages),
	}
	s.met.preprocessSecs.observe(time.Since(preStart).Seconds())

	v, err := s.fuse(ctx, slot, p)
	if err != nil {
		return DomainVerdict{}, dataset.Pharmacy{}, err
	}
	v.Partial = partial
	v.Pages = len(r.Pages)
	v.Crawl = r.Stats.Clone()

	// A fresh verdict feeds the continuous-verification loop: the shadow
	// candidate silently re-judges the same observation (live traffic and
	// background sweeps both exercise the promotion gate), and the domain
	// becomes part of the corpus future sweeps revisit.
	if st := s.shadow.Load(); st != nil {
		s.shadowAssess(st, p, &v)
	}
	s.corpus.add(domain)
	return v, p, nil
}

// fuse runs the ordered evidence backends (text, network, registry)
// over one crawled observation and fuses their votes through the
// ensemble machinery's equal-weight averaging — with only the text and
// network sources contributing this is bit-identical to the offline
// pipeline's (textProb+networkProb)/2 decision rule. A source that
// abstains (errNoEvidence) or fails — including one tripped by its
// breaker, shed by its bulkhead, or cut off by its deadline — drops
// out; the verdict records exactly which sources contributed. Fusion
// proceeds only when at least MinEvidence sources contributed;
// otherwise the caller falls back to a stale cached verdict.
func (s *Server) fuse(ctx context.Context, slot *modelSlot, p dataset.Pharmacy) (DomainVerdict, error) {
	// Fusion is the final, bounded stage: once a crawl has paid for an
	// observation, the sources get to vote even when the caller's
	// deadline fired mid-crawl (the partial-degradation path) — each
	// assessment is individually bounded by the per-source deadline, so
	// detaching here trades at most len(sources)×SourceTimeout for a
	// verdict instead of discarding the collected pages. With the
	// per-source deadline explicitly disabled, the request context
	// stays the only bound.
	if s.cfg.SourceTimeout > 0 {
		ctx = context.WithoutCancel(ctx)
	}
	v := DomainVerdict{Domain: p.Domain}
	probs := make([]float64, 0, len(s.sources))
	for _, src := range s.sources {
		name := src.Name()
		t0 := time.Now()
		ev, err := src.Assess(ctx, slot.v, p)
		s.met.sourceSecs.with(name).observe(time.Since(t0).Seconds())
		if errors.Is(err, errNoEvidence) {
			continue
		}
		if err != nil {
			// One failing backend degrades the verdict to the remaining
			// sources rather than failing the domain. Breaker and
			// bulkhead rejections were already counted by the guard
			// under their own names — don't double-book them as errors.
			if !errors.Is(err, errSourceOpen) && !errors.Is(err, errSourceSaturated) {
				s.met.sourceErrors.inc(name)
			}
			continue
		}
		s.met.sourceContribs.inc(name)
		v.Sources = append(v.Sources, SourceContribution{Name: name, Prob: ev.Prob})
		probs = append(probs, ev.Prob)
		if name == "text" {
			v.TextProb = ev.Prob
		}
		if ev.HasTrustScore {
			v.TrustScore = ev.TrustScore
			v.NetworkProb = ev.Prob
		}
	}
	if len(probs) < s.cfg.MinEvidence {
		s.met.quorumFailures.inc()
		return DomainVerdict{}, fmt.Errorf("%w: %d of %d required sources voted for %s",
			errInsufficientEvidence, len(probs), s.cfg.MinEvidence, p.Domain)
	}
	// Equal-weight selection over every contributing source — the same
	// averaging the offline ensemble applies to its selected bag.
	sel := make([]int, len(probs))
	for i := range sel {
		sel[i] = i
	}
	fused := ensemble.AverageSelected(sel, probs)
	v.Legitimate = fused >= 0.5
	// Rank keeps the paper's OPR semantics: textRank + networkRank.
	v.Rank = v.TextProb + v.TrustScore
	if v.Legitimate {
		s.met.verdicts.inc("legitimate")
	} else {
		s.met.verdicts.inc("illegitimate")
	}
	return v, nil
}
