package vectorize

import (
	"math"
	"slices"

	"pharmaverify/internal/ml"
)

// Vectorizer converts documents to sparse vectors against a frozen
// vocabulary using reusable scratch buffers: per-document work and
// allocation are O(distinct document terms) — two short slices for the
// resulting vector — instead of a fresh map plus per-term IDF
// recomputation. The IDF vector is precomputed once at construction
// (via Vocabulary.IDFVector).
//
// Output vectors are bit-for-bit identical to Vocabulary.Counts and
// Vocabulary.TFIDF: counts accumulate the same unit increments, and
// TF-IDF weights and the L2 norm are computed in the same ascending
// feature-index order.
//
// A Vectorizer is not safe for concurrent use; give each goroutine its
// own (they are cheap after the vocabulary-sized buffers are built) or
// pool them, as core.Verifier does on the serving path. The vocabulary
// may keep growing between calls — the scratch resizes lazily — but
// never during one.
type Vectorizer struct {
	vocab *Vocabulary
	idf   []float64
	// cnt accumulates term frequencies for the current document;
	// gen[i] == cur marks cnt[i] as belonging to this document, so
	// resetting between documents is one counter bump, not an O(vocab)
	// wipe.
	cnt     []float64
	gen     []uint64
	cur     uint64
	touched []int32 // distinct in-vocabulary indices of the current document
}

// NewVectorizer builds a Vectorizer over the vocabulary.
func NewVectorizer(v *Vocabulary) *Vectorizer {
	z := &Vectorizer{vocab: v}
	z.resync()
	return z
}

// resync grows the scratch to the vocabulary's current size (a no-op
// once the vocabulary is frozen) and refreshes the IDF view.
func (z *Vectorizer) resync() {
	if n := z.vocab.Size(); len(z.cnt) < n {
		z.cnt = make([]float64, n)
		z.gen = make([]uint64, n)
		z.cur = 0
	}
	z.idf = z.vocab.IDFVector()
}

// gather folds the document's terms into the scratch counters and
// returns the distinct touched indices in ascending order. The slice
// aliases the Vectorizer's scratch — valid until the next call.
func (z *Vectorizer) gather(terms []string) []int32 {
	z.resync()
	z.cur++
	z.touched = z.touched[:0]
	for _, t := range terms {
		i, ok := z.vocab.index[t]
		if !ok {
			continue
		}
		if z.gen[i] != z.cur {
			z.gen[i] = z.cur
			z.cnt[i] = 0
			z.touched = append(z.touched, int32(i))
		}
		z.cnt[i]++
	}
	slices.Sort(z.touched) // ascending, no closure allocation
	return z.touched
}

// Counts vectorizes a document as raw term counts, identically to
// Vocabulary.Counts.
func (z *Vectorizer) Counts(terms []string) ml.Vector {
	tl := z.gather(terms)
	v := ml.Vector{Ind: make([]int32, len(tl)), Val: make([]float64, len(tl))}
	for k, i := range tl {
		v.Ind[k] = i
		v.Val[k] = z.cnt[i]
	}
	return v
}

// TFIDF vectorizes a document with L2-normalized TF-IDF weights,
// identically to Vocabulary.TFIDF: weights and norm accumulate in
// ascending feature-index order, so the rounding matches bit for bit.
func (z *Vectorizer) TFIDF(terms []string) ml.Vector {
	tl := z.gather(terms)
	v := ml.Vector{Ind: make([]int32, len(tl)), Val: make([]float64, len(tl))}
	var norm float64
	for k, i := range tl {
		w := z.cnt[i] * z.idf[i]
		v.Ind[k] = i
		v.Val[k] = w
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for k := range v.Val {
			v.Val[k] /= norm
		}
	}
	return v
}

// Vector applies the given weighting, dispatching like Corpus.Dataset.
func (z *Vectorizer) Vector(terms []string, w Weighting) ml.Vector {
	if w == WeightCounts {
		return z.Counts(terms)
	}
	return z.TFIDF(terms)
}
