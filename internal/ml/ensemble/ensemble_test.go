package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/ml/bayes"
	"pharmaverify/internal/ml/svm"
	"pharmaverify/internal/ml/tree"
)

// noisyDataset: feature 0 separates the classes; features 1-2 are noise.
func noisyDataset(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{Dim: 3}
	for i := 0; i < n; i++ {
		y := 0
		if i%5 == 0 { // imbalanced, like the pharmacy data
			y = 1
		}
		mu := -0.8
		if y == ml.Legitimate {
			mu = 0.8
		}
		ds.Add(ml.NewVector([]float64{
			mu + rng.NormFloat64()*0.6,
			rng.NormFloat64(),
			rng.NormFloat64(),
		}), y, "")
	}
	return ds
}

func library() []Factory {
	return []Factory{
		{Name: "NB", New: func() ml.Classifier { return bayes.NewGaussian() }},
		{Name: "SVM", New: func() ml.Classifier { return svm.NewLinear() }},
		{Name: "J48", New: func() ml.Classifier { return tree.NewC45() }},
	}
}

func TestSelectionBeatsRandom(t *testing.T) {
	train := noisyDataset(600, 1)
	test := noisyDataset(300, 2)
	sel := New(library()...)
	sel.Seed = 3
	if err := sel.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i, x := range test.X {
		scores[i] = sel.Prob(x)
	}
	if auc := eval.AUC(scores, test.Y); auc < 0.85 {
		t.Errorf("ensemble AUC = %v", auc)
	}
}

func TestSelectionAtLeastAsGoodAsWorstSingle(t *testing.T) {
	train := noisyDataset(600, 4)
	test := noisyDataset(300, 5)

	var worst float64 = 1
	for _, f := range library() {
		clf := f.New()
		if err := clf.Fit(train); err != nil {
			t.Fatal(err)
		}
		scores := make([]float64, test.Len())
		for i, x := range test.X {
			scores[i] = clf.Prob(x)
		}
		if auc := eval.AUC(scores, test.Y); auc < worst {
			worst = auc
		}
	}

	sel := New(library()...)
	sel.Seed = 6
	if err := sel.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, test.Len())
	for i, x := range test.X {
		scores[i] = sel.Prob(x)
	}
	if auc := eval.AUC(scores, test.Y); auc < worst-0.05 {
		t.Errorf("ensemble AUC %v clearly below worst single %v", auc, worst)
	}
}

func TestSelectionSelectsSomething(t *testing.T) {
	sel := New(library()...)
	if err := sel.Fit(noisyDataset(300, 7)); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range sel.Selected() {
		total += c
	}
	if total == 0 {
		t.Error("no models selected")
	}
}

func TestSelectionWithReplacement(t *testing.T) {
	// A strong model should be selectable multiple times.
	sel := New(library()...)
	sel.MaxRounds = 10
	sel.Seed = 8
	if err := sel.Fit(noisyDataset(500, 9)); err != nil {
		t.Fatal(err)
	}
	for _, c := range sel.Selected() {
		if c > 1 {
			return // found a repeat: replacement works
		}
	}
	// Not an error per se (greedy may stop early), but the selected
	// multiset must still be non-empty.
	if len(sel.Selected()) == 0 {
		t.Error("empty selection")
	}
}

func TestSelectionErrors(t *testing.T) {
	if err := New().Fit(noisyDataset(100, 10)); err != ErrEmptyLibrary {
		t.Errorf("empty library: %v", err)
	}
	if err := New(library()...).Fit(&ml.Dataset{Dim: 1}); err != ml.ErrEmptyDataset {
		t.Errorf("empty dataset: %v", err)
	}
}

func TestSelectionUnfittedNeutral(t *testing.T) {
	sel := New(library()...)
	if p := sel.Prob(ml.NewVector([]float64{1})); p != 0.5 {
		t.Errorf("unfitted Prob = %v", p)
	}
}

func TestSelectionDeterministic(t *testing.T) {
	ds := noisyDataset(400, 11)
	a, b := New(library()...), New(library()...)
	a.Seed, b.Seed = 5, 5
	if err := a.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(ds); err != nil {
		t.Fatal(err)
	}
	x := ml.NewVector([]float64{0.5, 0, 0})
	if a.Prob(x) != b.Prob(x) {
		t.Error("same seed, different ensembles")
	}
}

func TestSelectionCustomMetric(t *testing.T) {
	sel := New(library()...)
	sel.Metric = func(scores []float64, labels []int) float64 {
		var c eval.Confusion
		for i, s := range scores {
			c.Observe(labels[i], ml.PredictFromProb(s))
		}
		return c.Accuracy()
	}
	if err := sel.Fit(noisyDataset(300, 12)); err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected()) == 0 {
		t.Error("no selection with custom metric")
	}
}

func TestBaggedSelection(t *testing.T) {
	train := noisyDataset(500, 20)
	test := noisyDataset(250, 21)
	sel := New(library()...)
	sel.Bags = 5
	sel.BagFraction = 0.67
	sel.Seed = 4
	if err := sel.Fit(train); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range sel.Selected() {
		total += c
	}
	if total == 0 {
		t.Fatal("bagged selection chose nothing")
	}
	scores := make([]float64, test.Len())
	for i, x := range test.X {
		scores[i] = sel.Prob(x)
	}
	if auc := eval.AUC(scores, test.Y); auc < 0.85 {
		t.Errorf("bagged ensemble AUC = %v", auc)
	}
}

func TestBaggedSelectionDeterministic(t *testing.T) {
	ds := noisyDataset(300, 22)
	mk := func() *Selection {
		s := New(library()...)
		s.Bags = 3
		s.Seed = 9
		return s
	}
	a, b := mk(), mk()
	if err := a.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(ds); err != nil {
		t.Fatal(err)
	}
	x := ml.NewVector([]float64{0.3, 0, 0})
	if a.Prob(x) != b.Prob(x) {
		t.Error("bagged selection not deterministic")
	}
}

func TestSelectionNamePredictAverage(t *testing.T) {
	sel := New(library()...)
	if sel.Name() != "EnsembleSelection" {
		t.Error("Name wrong")
	}
	ds := noisyDataset(300, 23)
	if err := sel.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X[:20] {
		if sel.Predict(x) != ml.PredictFromProb(sel.Prob(x)) {
			t.Fatal("Predict inconsistent with Prob")
		}
	}
	// AverageSelected with empty selection is neutral.
	if AverageSelected(nil, []float64{0.9}) != 0.5 {
		t.Error("empty selection must be neutral")
	}
	if got := AverageSelected([]int{0, 0, 1}, []float64{0.6, 0.9}); math.Abs(got-(0.6+0.6+0.9)/3) > 1e-12 {
		t.Errorf("AverageSelected = %v", got)
	}
}

func TestSelectGreedyEmpty(t *testing.T) {
	if SelectGreedy(nil, nil, 2, 5, nil) != nil {
		t.Error("empty library must select nothing")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a, b := library(), library()
	Shuffle(a, 42)
	Shuffle(b, 42)
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("Shuffle not deterministic")
		}
	}
}

// TestSelectGreedyMatchesReference is the kernel's bit-identity
// property: on randomized probability tables, labels, library sizes and
// round budgets, the kernelized SelectGreedy must pick the exact
// sequence the pre-kernel reference picks, under the default AUC metric
// and a custom one.
func TestSelectGreedyMatchesReference(t *testing.T) {
	meanDiff := func(scores []float64, labels []int) float64 {
		var pos, neg, np, nn float64
		for i, s := range scores {
			if labels[i] == ml.Legitimate {
				pos += s
				np++
			} else {
				neg += s
				nn++
			}
		}
		return pos/math.Max(np, 1) - neg/math.Max(nn, 1)
	}
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		models := 2 + rng.Intn(9)
		n := 10 + rng.Intn(60)
		probs := make([][]float64, models)
		for m := range probs {
			probs[m] = make([]float64, n)
			for i := range probs[m] {
				probs[m][i] = rng.Float64()
			}
		}
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(2)
		}
		initTop := 1 + rng.Intn(3)
		rounds := 1 + rng.Intn(25)
		metric := eval.AUC
		if trial%2 == 1 {
			metric = meanDiff
		}
		got := SelectGreedy(probs, labels, initTop, rounds, metric)
		want := SelectGreedyReference(probs, labels, initTop, rounds, metric)
		if len(got) != len(want) {
			t.Fatalf("trial %d: selected %d models, reference %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: selection[%d] = %d, reference %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSelectGreedyAllocs pins the kernel's allocation profile: with an
// allocation-free metric, a whole selection run costs a small constant
// number of allocations (index/score tables, sum/avg/cand scratch and
// the selected slice) — independent of rounds and library size.
func TestSelectGreedyAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const models, n = 12, 96
	probs := make([][]float64, models)
	for m := range probs {
		probs[m] = make([]float64, n)
		for i := range probs[m] {
			probs[m][i] = rng.Float64()
		}
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(2)
	}
	sum := func(scores []float64, labels []int) float64 {
		var s float64
		for i, v := range scores {
			if labels[i] == ml.Legitimate {
				s += v
			}
		}
		return s
	}
	allocs := testing.AllocsPerRun(20, func() {
		SelectGreedy(probs, labels, 2, 20, sum)
	})
	if allocs > 8 {
		t.Errorf("SelectGreedy costs %.1f allocs, want <= 8", allocs)
	}
}
