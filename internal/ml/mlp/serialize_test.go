package mlp

import (
	"encoding/json"
	"testing"
)

func TestNetworkSerializeRoundTrip(t *testing.T) {
	ds := xorDataset(200, 80)
	net := New()
	net.Hidden = 6
	net.Epochs = 100
	net.Seed = 5
	if err := net.Fit(ds); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(net)
	if err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		if net.Prob(x) != restored.Prob(x) {
			t.Fatal("outputs changed after round trip")
		}
	}
}

func TestNetworkMarshalUnfitted(t *testing.T) {
	if _, err := json.Marshal(New()); err == nil {
		t.Error("unfitted marshal must fail")
	}
}

func TestNetworkUnmarshalBadShapes(t *testing.T) {
	cases := []string{
		`{"dim":2,"hidden":2,"w1":[[1,2]],"b1":[0,0],"w2":[1,1],"mean":[0,0],"scale":[1,1]}`, // w1 rows
		`{"dim":2,"hidden":1,"w1":[[1]],"b1":[0],"w2":[1],"mean":[0,0],"scale":[1,1]}`,       // w1 cols
		`{"dim":2,"hidden":1,"w1":[[1,2]],"b1":[0],"w2":[1],"mean":[0],"scale":[1,1]}`,       // scaler
	}
	for i, bad := range cases {
		if err := json.Unmarshal([]byte(bad), New()); err == nil {
			t.Errorf("case %d: malformed state accepted", i)
		}
	}
}
