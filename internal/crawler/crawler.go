// Package crawler implements the site crawler used to collect pharmacy
// content, standing in for the crawler4j setup of the paper: each
// domain is crawled breadth-first without a depth limit but with a cap
// of 200 pages (the paper's configuration), collecting per-page visible
// text and both internal and external links.
//
// The crawler is generic over a Fetcher, so it runs against the
// synthetic web of internal/webgen in experiments and against live HTTP
// (HTTPFetcher) when pointed at the real internet.
//
// # Resilience
//
// Real crawls fail in transient ways. Config.Retry enables per-request
// retries with exponential backoff and deterministic jitter;
// Config.FetchTimeout bounds each attempt; Config.FailureBudget is a
// per-domain circuit breaker that abandons a domain after N consecutive
// lost pages and degrades gracefully to whatever was collected. Errors
// marked with Permanent (HTTP 4xx, webgen's unknown pages) are never
// retried. Every crawl reports its telemetry in Result.Stats, and the
// FaultInjector wrapper provides a seeded flaky-world harness for
// exercising all of this deterministically.
//
// # Cancellation
//
// CrawlCtx and CrawlAllCtx are the context-aware entry points: a
// cancelled or expired context stops the crawl promptly — politeness
// delays and backoff sleeps select on ctx.Done(), workers stop claiming
// frontier work, and in-flight fetches are abandoned (fetchers that
// implement CtxFetcher are cancelled; plain Fetchers have their result
// discarded). An interrupted domain returns the pages collected so far
// with Stats.Cancels set, so callers can tell a degraded partial crawl
// from a complete one.
package crawler

import (
	"context"
	"errors"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"pharmaverify/internal/htmlx"
	"pharmaverify/internal/parallel"
)

// DefaultMaxPages is the per-domain page cap from the paper.
const DefaultMaxPages = 200

// Fetcher retrieves one page of a domain. Implementations must be safe
// for concurrent use. Errors marked via Permanent (or exposing a
// Permanent() bool method) are treated as hard failures and never
// retried; all other errors count as transient.
type Fetcher interface {
	Fetch(domain, path string) (html string, err error)
}

// FetcherFunc adapts a function to the Fetcher interface.
type FetcherFunc func(domain, path string) (string, error)

// Fetch calls f.
func (f FetcherFunc) Fetch(domain, path string) (string, error) { return f(domain, path) }

// CtxFetcher is the optional context-aware extension of Fetcher. When a
// fetcher implements it, CrawlCtx passes its context (bounded by
// Config.FetchTimeout) into every fetch so a cancelled crawl aborts the
// underlying I/O instead of merely discarding its result. HTTPFetcher
// implements it.
type CtxFetcher interface {
	Fetcher
	FetchCtx(ctx context.Context, domain, path string) (html string, err error)
}

// Config controls a crawl.
type Config struct {
	// MaxPages caps pages collected per domain (default 200). The
	// crawler never starts more fetches than can still fit under the
	// cap, so fetch attempts stay within MaxPages × Retry.MaxAttempts.
	MaxPages int
	// Workers is the number of concurrent fetches per domain
	// (default 4).
	Workers int
	// UserAgent identifies the crawler to robots.txt policies
	// (default "pharmaverify").
	UserAgent string
	// IgnoreRobots disables robots.txt processing. By default the
	// crawler fetches /robots.txt first and honors Disallow rules, as
	// crawler4j does.
	IgnoreRobots bool
	// Delay inserts a politeness pause before every fetch attempt,
	// including the robots.txt request (crawler4j's politenessDelay).
	// Zero means no delay — appropriate for the synthetic web; set
	// ~200ms+ for live crawls.
	Delay time.Duration
	// Retry enables per-request retries with exponential backoff; the
	// zero value means a single attempt per request.
	Retry RetryConfig
	// FetchTimeout bounds one fetch attempt (0 = unbounded). Timed-out
	// attempts count as transient failures and are retried under the
	// Retry budget.
	FetchTimeout time.Duration
	// FailureBudget is the per-domain circuit breaker: after this many
	// consecutive pages are lost (retries exhausted or permanent
	// errors), the crawl of the domain stops and returns the pages
	// collected so far with Stats.BreakerTrips set. 0 disables the
	// breaker.
	FailureBudget int
	// AttemptBudget caps the total page-fetch attempts of one crawl
	// (0 = no cap). It is enforced at page-claim time — one attempt slot
	// is reserved per in-flight page, and once recorded attempts plus
	// reservations reach the budget no further pages are claimed. Pages
	// already in flight still finish their remaining retries, so the
	// hard ceiling is AttemptBudget + Workers×(Retry.MaxAttempts−1)
	// attempts. The serving path uses this to bound the worst-case work
	// a single on-demand verification can cost, independently of how
	// link-rich the site turns out to be.
	AttemptBudget int
}

func (c Config) withDefaults() Config {
	if c.MaxPages == 0 {
		c.MaxPages = DefaultMaxPages
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.UserAgent == "" {
		c.UserAgent = "pharmaverify"
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// Page is one crawled page.
type Page struct {
	Path  string
	Title string
	Text  string
	Links []string
}

// Result is the outcome of crawling one domain.
type Result struct {
	Domain string
	// Pages is sorted by path for deterministic downstream processing.
	Pages []Page
	// External holds the raw external link URLs found anywhere on the
	// site, deduplicated, sorted.
	External []string
	// Fetched and Failed count page fetch attempts (including
	// retries): Fetched mirrors Stats.Attempts and Failed mirrors
	// Stats.Failures.
	Fetched, Failed int
	// Stats is the full crawl telemetry for this domain.
	Stats Stats
}

// Text returns the merged text of all pages (the summarization input).
func (r Result) Text() []string {
	out := make([]string, len(r.Pages))
	for i, p := range r.Pages {
		out[i] = p.Text
	}
	return out
}

// Crawl fetches one domain breadth-first starting from "/". Unless
// Config.IgnoreRobots is set, /robots.txt is consulted first and
// disallowed paths are skipped. A missing robots.txt (permanent error)
// allows all; a robots.txt that stays unreachable through the retry
// budget also allows all but is recorded in Stats.RobotsUnreachable.
func Crawl(f Fetcher, domain string, cfg Config) Result {
	return CrawlCtx(context.Background(), f, domain, cfg)
}

// CrawlCtx is Crawl with cooperative cancellation: when ctx is
// cancelled or its deadline expires, politeness and backoff sleeps are
// interrupted, no further pages are claimed, and the pages collected so
// far are returned with Stats.Cancels set (unless the crawl had already
// finished naturally). The cancel-to-return latency is bounded by one
// in-flight fetch attempt — never by a backoff sleep.
func CrawlCtx(ctx context.Context, f Fetcher, domain string, cfg Config) Result {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}

	var (
		mu sync.Mutex
		st Stats
	)

	// fetchRetry runs the full politeness + timeout + retry loop for
	// one path. Counters are recorded under mu; robots.txt traffic goes
	// to the dedicated robots counters so page attempts stay comparable
	// to MaxPages. Attempts abandoned because ctx was cancelled are not
	// recorded at all: they are artifacts of the interruption, and the
	// domain will be recrawled from scratch on resume.
	fetchRetry := func(p string, robots bool) (html string, err error) {
		for attempt := 1; ; attempt++ {
			if cfg.Delay > 0 {
				if err := sleepCtx(ctx, cfg.Delay); err != nil {
					return "", err
				}
			}
			html, err = fetchAttempt(ctx, f, domain, p, cfg.FetchTimeout)
			if ctx.Err() != nil && isContextError(err) {
				return "", ctx.Err()
			}

			mu.Lock()
			if robots {
				st.RobotsAttempts++
				if err != nil {
					st.RobotsFailures++
				}
			} else {
				st.Attempts++
				if attempt > 1 {
					st.Retries++
				}
				if err == nil {
					st.Successes++
					st.Bytes += int64(len(html))
				} else {
					st.Failures++
				}
			}
			if errors.Is(err, ErrFetchTimeout) {
				st.Timeouts++
			}
			mu.Unlock()

			if err == nil || IsPermanent(err) || attempt >= cfg.Retry.MaxAttempts {
				return html, err
			}
			if d := cfg.Retry.backoff(domain, p, attempt); d > 0 {
				// A mid-backoff cancel returns within one timer tick
				// instead of sleeping out the full (possibly multi-
				// second) backoff.
				if err := sleepCtx(ctx, d); err != nil {
					return "", err
				}
			}
		}
	}

	var robots *Robots
	if !cfg.IgnoreRobots {
		body, err := fetchRetry("/robots.txt", true)
		if ctx.Err() != nil && isContextError(err) {
			st.Cancels = 1
			return Result{Domain: domain, Stats: st}
		}
		switch {
		case err == nil:
			robots = ParseRobots(body)
		case !IsPermanent(err):
			// Still failing transiently after the whole retry budget:
			// proceed as allow-all but say so, instead of silently
			// conflating an unreachable robots.txt with a missing one.
			st.RobotsUnreachable = true
		}
	}
	allowed := func(path string) bool {
		return robots.Allowed(cfg.UserAgent, path)
	}
	if !allowed("/") {
		return Result{Domain: domain, Stats: st}
	}

	var (
		seen        = map[string]bool{"/": true}
		frontier    = []string{"/"}
		inFlight    int
		pages       []Page
		external    = map[string]bool{}
		consecutive int // consecutive lost pages, for the breaker
		tripped     bool
		canceled    bool
		aborted     int // fetches abandoned because ctx was cancelled
		cond        = sync.NewCond(&mu)
	)

	// A context that is already dead must not race the watcher: without
	// this check a worker could claim and fetch a page before the
	// watcher goroutine ever runs.
	if ctx.Err() != nil {
		canceled = true
	}

	// The watcher wakes every worker blocked in cond.Wait when the
	// context is cancelled; stopWatch releases it once the crawl ends so
	// no goroutine outlives CrawlCtx.
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			mu.Lock()
			canceled = true
			cond.Broadcast()
			mu.Unlock()
		case <-stopWatch:
		}
	}()

	worker := func() {
		for {
			mu.Lock()
			for {
				if tripped || canceled {
					mu.Unlock()
					return
				}
				// Claim work only while a page slot is free: the
				// in-flight reservation guarantees the crawl never
				// fetches (or retries) pages that could not be kept,
				// and that len(pages) never exceeds MaxPages. The
				// attempt budget reserves one attempt per in-flight
				// page the same way.
				if len(frontier) > 0 && len(pages)+inFlight < cfg.MaxPages &&
					(cfg.AttemptBudget <= 0 || st.Attempts+inFlight < cfg.AttemptBudget) {
					break
				}
				if inFlight == 0 {
					// Nothing running: the frontier is empty or the cap
					// is reached for good.
					mu.Unlock()
					return
				}
				cond.Wait()
			}
			path := frontier[0]
			frontier = frontier[1:]
			inFlight++
			mu.Unlock()

			html, err := fetchRetry(path, false)

			mu.Lock()
			inFlight--
			if ctx.Err() != nil && isContextError(err) {
				// The attempt was cut off by cancellation, not by the
				// site: the page is neither failed nor lost, the whole
				// domain is simply incomplete.
				aborted++
				cond.Broadcast()
				mu.Unlock()
				continue
			}
			if err != nil {
				st.PagesFailed++
				consecutive++
				if cfg.FailureBudget > 0 && consecutive >= cfg.FailureBudget && !tripped {
					tripped = true
					st.BreakerTrips++
				}
				cond.Broadcast()
				mu.Unlock()
				continue
			}
			consecutive = 0
			pg := htmlx.Parse(html)
			pages = append(pages, Page{Path: path, Title: pg.Title, Text: pg.Text, Links: pg.Links})
			for _, link := range pg.Links {
				if ip, ok := internalPath(link, path, domain); ok {
					if !allowed(ip) {
						continue
					}
					if !seen[ip] && len(seen) < 4*cfg.MaxPages {
						seen[ip] = true
						frontier = append(frontier, ip)
					}
				} else if isExternal(link) {
					external[link] = true
				}
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	close(stopWatch)

	// A cancel that raced the natural end of the crawl (empty frontier,
	// nothing aborted, cap not the reason we stopped early) does not
	// make the result partial. ctx.Err() is consulted directly — the
	// workers may have drained through an aborted fetch before the
	// watcher goroutine ever marked canceled — and mu is held because
	// the watcher can still be writing the flag.
	mu.Lock()
	if (canceled || ctx.Err() != nil) && len(pages) < cfg.MaxPages && (len(frontier) > 0 || aborted > 0) {
		st.Cancels = 1
	}
	mu.Unlock()

	sort.Slice(pages, func(i, j int) bool { return pages[i].Path < pages[j].Path })
	ext := make([]string, 0, len(external))
	for l := range external {
		ext = append(ext, l)
	}
	sort.Strings(ext)
	return Result{
		Domain:   domain,
		Pages:    pages,
		External: ext,
		Fetched:  st.Attempts,
		Failed:   st.Failures,
		Stats:    st,
	}
}

// CrawlAll crawls many domains concurrently (workers controls the
// number of simultaneous domain crawls; <= 0 uses the shared worker
// default — parallel.SetDefault / PHARMAVERIFY_WORKERS, then
// GOMAXPROCS) and returns results keyed by domain. Aggregate the
// per-domain telemetry with AggregateStats.
func CrawlAll(f Fetcher, domains []string, cfg Config, workers int) map[string]Result {
	results, _ := CrawlAllCtx(context.Background(), f, domains, cfg, workers)
	return results
}

// CrawlAllCtx is CrawlAll with cooperative cancellation. The domain
// fan-out runs through the shared parallel engine, so it honors the
// process-wide worker default. On cancellation no new domains are
// started; domains already crawling return partial results with
// Stats.Cancels set, unstarted domains are absent from the map, and
// ctx's error is returned alongside whatever completed.
func CrawlAllCtx(ctx context.Context, f Fetcher, domains []string, cfg Config, workers int) (map[string]Result, error) {
	slots := make([]Result, len(domains))
	started := make([]bool, len(domains))
	err := parallel.ForCtx(ctx, len(domains), workers, func(i int) {
		started[i] = true
		slots[i] = CrawlCtx(ctx, f, domains[i], cfg)
	})
	results := make(map[string]Result, len(domains))
	for i, r := range slots {
		if started[i] {
			results[r.Domain] = r
		}
	}
	return results, err
}

// internalPath resolves a link found on the page at base against the
// crawled domain. It accepts site-relative paths ("/x"), page-relative
// references ("page2", "../up") resolved against the referring page's
// directory, and absolute URLs whose host is the domain or its www
// alias, and returns the normalized path.
func internalPath(link, base, domain string) (string, bool) {
	switch {
	case link == "" || strings.HasPrefix(link, "#") ||
		strings.HasPrefix(link, "mailto:") || strings.HasPrefix(link, "javascript:") ||
		strings.HasPrefix(link, "tel:"):
		return "", false
	case strings.HasPrefix(link, "//"):
		link = "http:" + link
	}
	if i := strings.Index(link, "://"); i >= 0 {
		rest := link[i+3:]
		var host, path string
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			host, path = rest[:j], rest[j:]
		} else {
			host, path = rest, "/"
		}
		if k := strings.IndexByte(host, ':'); k >= 0 {
			host = host[:k]
		}
		host = strings.ToLower(host)
		if host == domain || host == "www."+domain {
			return splitFragment(path), true
		}
		return "", false
	}
	if strings.HasPrefix(link, "/") {
		return splitFragment(link), true
	}
	// Page-relative reference: resolve against the referring page's
	// directory, so "page2" on /docs/a yields /docs/page2 (not /page2).
	dir := "/"
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		dir = base[:i+1]
	}
	return splitFragment(path.Clean(dir + splitFragment(link))), true
}

func splitFragment(p string) string {
	if i := strings.IndexByte(p, '#'); i >= 0 {
		p = p[:i]
	}
	if p == "" {
		p = "/"
	}
	return p
}

// isExternal reports whether a link points at another host.
func isExternal(link string) bool {
	return strings.Contains(link, "://") || strings.HasPrefix(link, "//")
}
