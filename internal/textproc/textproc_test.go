package textproc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Buy Cialis ONLINE, no prescription!")
	want := []string{"buy", "cialis", "online", "no", "prescription"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDropsSingleChars(t *testing.T) {
	got := Tokenize("a b cd e fg")
	want := []string{"cd", "fg"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeKeepsDigitsAndAlnum(t *testing.T) {
	got := Tokenize("vitamin B12 100mg")
	want := []string{"vitamin", "b12", "100mg"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeContractions(t *testing.T) {
	got := Tokenize("don't it's")
	want := []string{"don't", "it's"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeTrailingApostropheTrimmed(t *testing.T) {
	got := Tokenize("patients' rights")
	want := []string{"patients", "rights"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Naïve Café")
	want := []string{"naïve", "café"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestPreprocessorRemovesStopWords(t *testing.T) {
	p := NewPreprocessor()
	got := p.Terms("the pharmacy is in the city and it sells drugs")
	for _, tok := range got {
		if StopWords()[tok] {
			t.Errorf("stop word %q survived", tok)
		}
	}
	found := false
	for _, tok := range got {
		if tok == "pharmacy" {
			found = true
		}
	}
	if !found {
		t.Errorf("content word dropped: %v", got)
	}
}

func TestPreprocessorNoStemming(t *testing.T) {
	p := NewPreprocessor()
	got := p.Terms("prescriptions prescription prescribing")
	want := []string{"prescriptions", "prescription", "prescribing"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stemming applied? %v", got)
	}
}

func TestPreprocessorExtraStopWords(t *testing.T) {
	p := NewPreprocessor("pharmacy")
	got := p.Terms("great pharmacy deals")
	want := []string{"great", "deals"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestPreprocessorZeroValue(t *testing.T) {
	var p Preprocessor
	got := p.Terms("the medicine")
	if !reflect.DeepEqual(got, []string{"medicine"}) {
		t.Errorf("zero-value preprocessor: %v", got)
	}
}

func TestSummarize(t *testing.T) {
	got := Summarize([]string{"page one", "page two", "page three"})
	if got != "page one page two page three" {
		t.Errorf("Summarize = %q", got)
	}
	if Summarize(nil) != "" {
		t.Error("empty summarize")
	}
}

func TestSubsampleSize(t *testing.T) {
	terms := make([]string, 100)
	for i := range terms {
		terms[i] = string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	rng := rand.New(rand.NewSource(1))
	got := Subsample(terms, 30, rng)
	if len(got) != 30 {
		t.Errorf("len = %d", len(got))
	}
	// No duplicates of positions: all sampled terms exist in the source
	// multiset (they must form a sub-multiset).
	src := map[string]int{}
	for _, s := range terms {
		src[s]++
	}
	cnt := map[string]int{}
	for _, s := range got {
		cnt[s]++
		if cnt[s] > src[s] {
			t.Errorf("term %q sampled more often than present", s)
		}
	}
}

func TestSubsampleAllWhenKZeroOrLarge(t *testing.T) {
	terms := []string{"x1", "y1", "z1"}
	rng := rand.New(rand.NewSource(2))
	if got := Subsample(terms, 0, rng); !reflect.DeepEqual(got, terms) {
		t.Errorf("k=0 should return all: %v", got)
	}
	if got := Subsample(terms, 10, rng); !reflect.DeepEqual(got, terms) {
		t.Errorf("k>len should return all: %v", got)
	}
}

func TestSubsampleDeterministic(t *testing.T) {
	terms := make([]string, 50)
	for i := range terms {
		terms[i] = SizeLabel(i + 10)
	}
	a := Subsample(terms, 10, rand.New(rand.NewSource(3)))
	b := Subsample(terms, 10, rand.New(rand.NewSource(3)))
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed, different subsample")
	}
}

func TestSizeLabel(t *testing.T) {
	if SizeLabel(0) != "All" || SizeLabel(100) != "100" || SizeLabel(2000) != "2000" {
		t.Error("SizeLabel wrong")
	}
}

func TestSubsampleSizesMatchPaper(t *testing.T) {
	want := []int{100, 250, 1000, 2000, 0}
	if !reflect.DeepEqual(SubsampleSizes, want) {
		t.Errorf("SubsampleSizes = %v", SubsampleSizes)
	}
}

func TestStopWordsCopy(t *testing.T) {
	a := StopWords()
	a["pharmacy"] = true
	if StopWords()["pharmacy"] {
		t.Error("StopWords returns shared state")
	}
	// Spot-check canonical members.
	for _, w := range []string{"the", "and", "of", "with"} {
		if !StopWords()[w] {
			t.Errorf("missing stop word %q", w)
		}
	}
	words := make([]string, 0)
	for w := range StopWords() {
		words = append(words, w)
	}
	sort.Strings(words)
	if len(words) != 33 {
		t.Errorf("stop list has %d words, want 33 (Lucene list)", len(words))
	}
}
