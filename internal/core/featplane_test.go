package core

import (
	"math/rand"
	"reflect"
	"testing"

	"pharmaverify/internal/featcache"
	"pharmaverify/internal/ngram"
)

// TestPlaneFeatureDatasetMatchesNaive is the bit-identity property of
// the shared training plane: for randomized class-index halves and
// worker counts, the plane's feature matrix must equal the standalone
// NGGFeatureDataset exactly, vector by vector.
func TestPlaneFeatureDatasetMatchesNaive(t *testing.T) {
	snap := testSnapshot(t, 1)
	docs := nggDocuments(snap, 100, 9)
	labels := snap.Labels()
	names := snap.Domains()

	plane := trainingPlaneFor(snap, 100, 9)
	plane.acquire()
	defer plane.release()

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4; trial++ {
		perm := rng.Perm(len(docs))
		classIdx := perm[:len(docs)/2]
		want := NGGFeatureDataset(docs, labels, names, classIdx)
		for _, workers := range []int{1, 2, 4} {
			got := plane.featureDataset(classIdx, workers, 1+trial*7)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers %d: plane dataset differs from NGGFeatureDataset", trial, workers)
			}
		}
	}
}

// TestPlaneTextRanksMatchNaive pins the ranking path the same way:
// prebuilt-graph TextRank against the pooled DocTextRank reference.
func TestPlaneTextRanksMatchNaive(t *testing.T) {
	snap := testSnapshot(t, 1)
	docs := nggDocuments(snap, 100, 9)
	labels := snap.Labels()

	plane := trainingPlaneFor(snap, 100, 9)
	plane.acquire()
	defer plane.release()

	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(len(docs))
	half := perm[:len(docs)/2]
	legit, illegit := nggClassGraphs(docs, labels, half)
	want := make([]float64, len(docs))
	for i := range docs {
		want[i] = ngram.DocTextRank(docs[i], legit, illegit) / 8
	}
	for _, workers := range []int{1, 3} {
		got := plane.textRanks(half, workers, 4)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers %d: plane text ranks differ from DocTextRank reference", workers)
		}
	}
}

// TestPlaneGenerationStamps pins the lifetime contract: nested acquires
// share one build epoch (no silent rebuild mid-run), and a full
// release/re-acquire cycle starts a new stamped epoch.
func TestPlaneGenerationStamps(t *testing.T) {
	snap := testSnapshot(t, 1)
	plane := trainingPlaneFor(snap, 100, 42)

	g1 := plane.acquire()
	g2 := plane.acquire()
	if g1 != g2 {
		t.Fatalf("nested acquire rebuilt the plane: gen %d then %d", g1, g2)
	}
	plane.release()
	if g3 := plane.acquire(); g3 != g1 {
		t.Fatalf("graphs dropped while still held: gen %d then %d", g1, g3)
	}
	plane.release()
	plane.release()

	g4 := plane.acquire()
	defer plane.release()
	if g4 == g1 {
		t.Fatal("full release did not end the build epoch")
	}
}

// TestPlaneScopedCacheStats checks that training-plane traffic lands on
// the training scope counters and the TF-IDF artifacts on the serving
// scope, with both scopes always present in the exported map.
func TestPlaneScopedCacheStats(t *testing.T) {
	snap := testSnapshot(t, 1)
	ResetFeatureCache()

	stats := FeatureCacheScopeStats()
	for _, scope := range []string{featcache.ScopeTraining, featcache.ScopeServing} {
		if st, ok := stats[scope]; !ok || st.Hits != 0 || st.Misses != 0 {
			t.Fatalf("scope %q not zeroed after reset: %+v (present=%v)", scope, st, ok)
		}
	}

	trainingPlaneFor(snap, 100, 7)                                       // miss
	trainingPlaneFor(snap, 100, 7)                                       // hit
	TFIDFDataset(snap, TextConfig{Classifier: SVM, Terms: 100, Seed: 7}) // 2 misses (corpus + dataset)

	stats = FeatureCacheScopeStats()
	if st := stats[featcache.ScopeTraining]; st.Misses != 1 || st.Hits != 1 {
		t.Errorf("training scope = %+v, want 1 hit / 1 miss", st)
	}
	if st := stats[featcache.ScopeServing]; st.Misses != 2 || st.Hits != 0 {
		t.Errorf("serving scope = %+v, want 0 hits / 2 misses", st)
	}
}

// TestPlaneFeaturePassAllocs pins the per-document cost of the plane's
// feature pass: with graphs prebuilt, one document costs exactly the
// row slice and its vector wrapper — no graph construction allocations.
func TestPlaneFeaturePassAllocs(t *testing.T) {
	snap := testSnapshot(t, 1)
	plane := trainingPlaneFor(snap, 100, 3)
	plane.acquire()
	defer plane.release()
	legit, illegit := plane.classGraphs([]int{0, 1, 2, 3, 4, 5, 6, 7})

	var row []float64
	allocs := testing.AllocsPerRun(50, func() {
		row = ngram.Features(plane.graphs[9], legit, illegit)
	})
	if row == nil {
		t.Fatal("no features produced")
	}
	// One allocation: the 8-float row itself.
	if allocs > 1 {
		t.Errorf("plane feature row costs %.1f allocs, want <= 1", allocs)
	}
}
