// Package vectorize implements the Term Vector representation model of
// the paper (§4.1.1): a vocabulary built from the training documents and
// TF-IDF weighting of term occurrences, producing the sparse vectors
// consumed by the classifiers.
package vectorize

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"pharmaverify/internal/ml"
	"pharmaverify/internal/parallel"
)

// Vocabulary maps terms to contiguous feature indices and carries the
// document frequencies needed for IDF weighting.
type Vocabulary struct {
	index map[string]int
	terms []string
	df    []int // document frequency per term
	docs  int   // number of documents seen

	// seenGen/gen implement the per-document "term already counted"
	// check without allocating a fresh set for every document:
	// seenGen[i] == gen means term i was seen in the current document.
	// Bumping gen invalidates the whole slice in O(1).
	seenGen []int
	gen     int

	// idfMu guards the memoized IDF vector. The cache key is (docs,
	// term count): AddDocument always bumps docs, so any mutation
	// invalidates it.
	idfMu    sync.Mutex
	idfCache []float64
	idfDocs  int
}

// BuildVocabulary constructs a vocabulary over the given tokenized
// documents. Every distinct term becomes a feature; document
// frequencies are recorded for IDF.
func BuildVocabulary(docs [][]string) *Vocabulary {
	v := &Vocabulary{index: make(map[string]int)}
	for _, doc := range docs {
		v.AddDocument(doc)
	}
	return v
}

// AddDocument folds one more document into the vocabulary.
func (v *Vocabulary) AddDocument(terms []string) {
	v.docs++
	v.gen++
	for _, t := range terms {
		i, ok := v.index[t]
		if !ok {
			i = len(v.terms)
			v.index[t] = i
			v.terms = append(v.terms, t)
			v.df = append(v.df, 0)
			v.seenGen = append(v.seenGen, 0)
		}
		if v.seenGen[i] != v.gen {
			v.df[i]++
			v.seenGen[i] = v.gen
		}
	}
}

// Size reports the number of distinct terms.
func (v *Vocabulary) Size() int { return len(v.terms) }

// Docs reports the number of documents folded in.
func (v *Vocabulary) Docs() int { return v.docs }

// Index returns the feature index of a term, or -1 if out of vocabulary.
func (v *Vocabulary) Index(term string) int {
	if i, ok := v.index[term]; ok {
		return i
	}
	return -1
}

// Term returns the term at feature index i.
func (v *Vocabulary) Term(i int) string { return v.terms[i] }

// IDF returns the smoothed inverse document frequency of feature i:
// log((1+N)/(1+df)) + 1, which stays positive for terms present in
// every document and is defined for unseen-in-training terms.
func (v *Vocabulary) IDF(i int) float64 {
	return math.Log(float64(1+v.docs)/float64(1+v.df[i])) + 1
}

// IDFVector returns the full IDF vector of a fitted vocabulary,
// computed once and memoized: the per-term math.Log otherwise paid on
// every vectorization of every request is paid once per vocabulary.
// The returned slice is shared — callers must treat it as read-only.
// Folding more documents in invalidates the cache.
func (v *Vocabulary) IDFVector() []float64 {
	v.idfMu.Lock()
	defer v.idfMu.Unlock()
	if v.idfCache != nil && v.idfDocs == v.docs && len(v.idfCache) == len(v.df) {
		return v.idfCache
	}
	idf := make([]float64, len(v.df))
	for i := range idf {
		idf[i] = v.IDF(i)
	}
	v.idfCache, v.idfDocs = idf, v.docs
	return idf
}

// TermCounts computes the raw term-frequency map of a document,
// skipping out-of-vocabulary terms.
func (v *Vocabulary) TermCounts(terms []string) map[int]float64 {
	m := make(map[int]float64)
	for _, t := range terms {
		if i, ok := v.index[t]; ok {
			m[i]++
		}
	}
	return m
}

// Counts vectorizes a document as raw term counts (the representation
// the multinomial Naïve Bayes model expects).
func (v *Vocabulary) Counts(terms []string) ml.Vector {
	return ml.FromMap(v.TermCounts(terms))
}

// TFIDF vectorizes a document with TF-IDF weights, L2-normalized (the
// standard variant used for SVMs and trees on text).
//
// The norm is accumulated in ascending feature-index order — summing
// over the counts map's randomized iteration order, as this function
// historically did, changes the rounding of the norm between runs and
// thus the last bits of every weight. The fixed order keeps the vector
// bit-for-bit reproducible and lets the scratch-buffer Vectorizer
// (sparse.go) match it exactly.
func (v *Vocabulary) TFIDF(terms []string) ml.Vector {
	vec := ml.FromMap(v.TermCounts(terms))
	var norm float64
	for k, i := range vec.Ind {
		w := vec.Val[k] * v.IDF(int(i))
		vec.Val[k] = w
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for k := range vec.Val {
			vec.Val[k] /= norm
		}
	}
	return vec
}

// vocabularyState is the JSON wire form of a Vocabulary.
type vocabularyState struct {
	Terms []string `json:"terms"`
	DF    []int    `json:"df"`
	Docs  int      `json:"docs"`
}

// MarshalJSON serializes the vocabulary (terms in index order, document
// frequencies and the corpus size).
func (v *Vocabulary) MarshalJSON() ([]byte, error) {
	return json.Marshal(vocabularyState{Terms: v.terms, DF: v.df, Docs: v.docs})
}

// UnmarshalJSON restores a vocabulary persisted with MarshalJSON.
func (v *Vocabulary) UnmarshalJSON(data []byte) error {
	var s vocabularyState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("vectorize: decode vocabulary: %w", err)
	}
	if len(s.Terms) != len(s.DF) {
		return fmt.Errorf("vectorize: vocabulary has %d terms but %d frequencies", len(s.Terms), len(s.DF))
	}
	v.terms = s.Terms
	v.df = s.DF
	v.docs = s.Docs
	// Fresh generation state so a restored vocabulary can keep folding
	// in documents.
	v.seenGen = make([]int, len(s.Terms))
	v.gen = 0
	v.idfMu.Lock()
	v.idfCache, v.idfDocs = nil, 0
	v.idfMu.Unlock()
	v.index = make(map[string]int, len(s.Terms))
	for i, t := range s.Terms {
		if _, dup := v.index[t]; dup {
			return fmt.Errorf("vectorize: duplicate term %q in vocabulary state", t)
		}
		v.index[t] = i
	}
	return nil
}

// TopTermsByDF returns up to k terms with the highest document
// frequency, in decreasing order (ties broken alphabetically) — used
// for corpus inspection and the paper-style most-frequent-term analysis.
func (v *Vocabulary) TopTermsByDF(k int) []string {
	idx := make([]int, len(v.terms))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if v.df[idx[a]] != v.df[idx[b]] {
			return v.df[idx[a]] > v.df[idx[b]]
		}
		return v.terms[idx[a]] < v.terms[idx[b]]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = v.terms[idx[i]]
	}
	return out
}

// Corpus pairs a vocabulary with the documents used to build it and
// offers one-call dataset construction.
type Corpus struct {
	Vocab *Vocabulary
	Docs  [][]string
	Names []string
	Y     []int
}

// NewCorpus builds a corpus (and vocabulary) from parallel slices of
// tokenized documents, labels and names.
func NewCorpus(docs [][]string, y []int, names []string) *Corpus {
	return &Corpus{Vocab: BuildVocabulary(docs), Docs: docs, Names: names, Y: y}
}

// Weighting selects the vectorization applied by Dataset.
type Weighting int

const (
	// WeightTFIDF produces L2-normalized TF-IDF vectors.
	WeightTFIDF Weighting = iota
	// WeightCounts produces raw term-count vectors.
	WeightCounts
)

// datasetGrain is the number of documents one worker vectorizes per
// dispatch in Corpus.Dataset: single-document vectorization is a few
// microseconds, so chunks keep the fan-out overhead amortized and each
// worker's Vectorizer scratch hot.
const datasetGrain = 32

// Dataset vectorizes all corpus documents into an ml.Dataset. Documents
// are vectorized concurrently in chunks, one Vectorizer (scratch
// buffers) per chunk, and appended to the dataset serially in document
// order — each document's vector depends only on the shared read-only
// vocabulary, so the result is bit-identical to the sequential
// one-Vectorizer loop (and to calling Vocabulary.Counts/TFIDF per
// document) at any worker count.
func (c *Corpus) Dataset(w Weighting) *ml.Dataset {
	vecs := make([]ml.Vector, len(c.Docs))
	parallel.ForGrain(len(c.Docs), 0, datasetGrain, func(lo, hi int) {
		z := NewVectorizer(c.Vocab)
		for i := lo; i < hi; i++ {
			vecs[i] = z.Vector(c.Docs[i], w)
		}
	})
	ds := &ml.Dataset{Dim: c.Vocab.Size()}
	for i, v := range vecs {
		name := ""
		if i < len(c.Names) {
			name = c.Names[i]
		}
		ds.Add(v, c.Y[i], name)
	}
	return ds
}
