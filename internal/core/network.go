package core

import (
	"fmt"

	"pharmaverify/internal/dataset"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/trust"
)

// NetworkVariant selects the link-analysis algorithm.
type NetworkVariant string

const (
	// TrustRankUndirected runs TrustRank on the symmetrized link graph
	// (the pipeline default; see internal/trust for the rationale).
	TrustRankUndirected NetworkVariant = "TrustRank"
	// TrustRankDirected runs TrustRank strictly along outbound links.
	TrustRankDirected NetworkVariant = "TrustRank-directed"
	// AntiTrust seeds distrust at known-illegitimate pharmacies and
	// propagates it backwards (Krishnan & Raj), negated so that higher
	// still means more legitimate.
	AntiTrust NetworkVariant = "Anti-TrustRank"
	// PageRankBaseline uses unseeded PageRank scores.
	PageRankBaseline NetworkVariant = "PageRank"
)

// NetworkConfig parameterizes the network-classification experiment
// (§6.3.2).
type NetworkConfig struct {
	// Variant selects the algorithm (default TrustRankUndirected).
	Variant NetworkVariant
	// Classifier is the base learner (default NB, as in the paper).
	Classifier ClassifierKind
	// Folds (default 3) and Seed as elsewhere.
	Folds int
	Seed  int64
	// Trust tunes the underlying power iteration.
	Trust trust.Config
	// IncludeAuxiliary adds the snapshot's auxiliary non-pharmacy sites
	// (health portals, review directories) to the link graph, so their
	// inbound links to pharmacies participate in trust propagation —
	// the paper's future-work extension (a).
	IncludeAuxiliary bool
}

func (c NetworkConfig) withDefaults() NetworkConfig {
	if c.Variant == "" {
		c.Variant = TrustRankUndirected
	}
	if c.Classifier == "" {
		c.Classifier = NB
	}
	if c.Folds == 0 {
		c.Folds = 3
	}
	return c
}

// NetworkScores computes the per-pharmacy trust scores for a snapshot
// given the seed pharmacies (domain → oracle value; for TrustRank the
// known legitimate pharmacies at 1). Scores are aligned with
// snap.Pharmacies.
func NetworkScores(snap *dataset.Snapshot, seeds map[string]float64, cfg NetworkConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	outbound := snap.Outbound()
	if cfg.IncludeAuxiliary {
		// snap.Outbound() is shared (and memoized) snapshot state: merge
		// the auxiliary endpoints into a copy so repeated calls — e.g.
		// one per CV fold — never see a graph polluted by a previous
		// call. Unioning also keeps a pharmacy's own links if an
		// auxiliary crawl reuses its domain.
		merged := make(map[string][]string, len(outbound)+len(snap.Aux))
		for d, eps := range outbound {
			merged[d] = eps
		}
		for d, eps := range snap.AuxOutbound() {
			if own, ok := merged[d]; ok {
				merged[d] = append(append([]string(nil), own...), eps...)
			} else {
				merged[d] = eps
			}
		}
		outbound = merged
	}
	g := trust.BuildGraph(outbound)

	var values []float64
	var sg *trust.Graph
	switch cfg.Variant {
	case TrustRankUndirected:
		sg = g.Undirected()
		values = trust.TrustRank(sg, seeds, cfg.Trust)
	case TrustRankDirected:
		sg = g
		values = trust.TrustRank(sg, seeds, cfg.Trust)
	case AntiTrust:
		sg = g.Undirected()
		values = trust.AntiTrustRank(sg, seeds, cfg.Trust)
		for i := range values {
			values[i] = 1 - values[i] // higher = more legitimate
		}
	case PageRankBaseline:
		sg = g
		values = trust.PageRank(sg, cfg.Trust)
		normalizeToUnit(values)
	default:
		return nil, fmt.Errorf("core: unknown network variant %q", cfg.Variant)
	}

	scores := trust.NewScores(sg, values)
	out := make([]float64, snap.Len())
	for i, p := range snap.Pharmacies {
		out[i] = scores.Of(p.Domain)
	}
	return out, nil
}

func normalizeToUnit(v []float64) {
	var m float64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	if m > 0 {
		for i := range v {
			v[i] /= m
		}
	}
}

// NetworkCV runs the cross-validated network classification of §6.3.2:
// per fold, TrustRank is seeded with the *training* legitimate
// pharmacies (the initial seed P0), and a Naïve Bayes classifier is
// trained on the resulting scores.
func NetworkCV(snap *dataset.Snapshot, cfg NetworkConfig) (eval.CVResult, error) {
	cfg = cfg.withDefaults()
	labels := snap.Labels()
	labelDS := &ml.Dataset{Dim: 1, X: make([]ml.Vector, len(labels)), Y: labels}
	folds := eval.StratifiedKFold(labelDS, cfg.Folds, cfg.Seed)

	var res eval.CVResult
	for f := range folds {
		trainIdx, testIdx := folds.TrainTest(f)
		seeds := seedMap(snap, trainIdx, cfg.Variant)
		scores, err := NetworkScores(snap, seeds, cfg)
		if err != nil {
			return eval.CVResult{}, err
		}
		ds := scoreDataset(scores, labels, snap.Domains())

		clf, err := NewClassifier(cfg.Classifier, cfg.Seed)
		if err != nil {
			return eval.CVResult{}, err
		}
		if err := clf.Fit(ds.Subset(trainIdx)); err != nil {
			return eval.CVResult{}, err
		}
		fr := eval.FoldResult{TestIndex: testIdx}
		for _, i := range testIdx {
			p := clf.Prob(ds.X[i])
			fr.Scores = append(fr.Scores, p)
			fr.Labels = append(fr.Labels, labels[i])
			fr.Confusion.Observe(labels[i], ml.PredictFromProb(p))
		}
		fr.AUC = eval.AUC(fr.Scores, fr.Labels)
		res.Folds = append(res.Folds, fr)
	}
	return res, nil
}

// seedMap builds the TrustRank initialization from the training fold:
// legitimate training pharmacies get value 1 (or, for Anti-TrustRank,
// the illegitimate training pharmacies do).
func seedMap(snap *dataset.Snapshot, trainIdx []int, variant NetworkVariant) map[string]float64 {
	seeds := make(map[string]float64)
	for _, i := range trainIdx {
		p := snap.Pharmacies[i]
		switch variant {
		case AntiTrust:
			if p.Label == ml.Illegitimate {
				seeds[p.Domain] = 1
			}
		default:
			if p.Label == ml.Legitimate {
				seeds[p.Domain] = 1
			}
		}
	}
	return seeds
}

// scoreDataset wraps 1-D trust scores as an ml.Dataset.
func scoreDataset(scores []float64, labels []int, names []string) *ml.Dataset {
	ds := &ml.Dataset{Dim: 1}
	for i, s := range scores {
		name := ""
		if names != nil {
			name = names[i]
		}
		ds.Add(ml.NewVector([]float64{s}), labels[i], name)
	}
	return ds
}
