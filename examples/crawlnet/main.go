// Crawlnet: crawl the synthetic pharmacy web, build the Algorithm-1
// link graph, run TrustRank, and inspect the network structure — the
// most-linked endpoints per class (the paper's Table 11) and how trust
// separates the classes.
//
//	go run ./examples/crawlnet
package main

import (
	"fmt"
	"log"
	"sort"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/trust"
	"pharmaverify/internal/webgen"
)

func main() {
	world := webgen.Generate(webgen.Config{
		Seed: 11, NumLegit: 25, NumIllegit: 150, NetworkSize: 30,
	})

	// Crawl one site "by hand" to show what the crawler sees.
	domain := world.Domains()[0]
	res := crawler.Crawl(world, domain, crawler.Config{})
	fmt.Printf("crawl of %s: %d pages, %d external links\n", domain, len(res.Pages), len(res.External))
	for _, p := range res.Pages[:3] {
		fmt.Printf("  %-14s %q\n", p.Path, p.Title)
	}

	// The same crawl over a hostile network: 30% of fetch attempts fail
	// transiently (seeded, so perfectly reproducible). With retries and
	// backoff enabled the crawler recovers the identical page set, and
	// the telemetry shows what it cost.
	flaky := crawler.NewFaultInjector(world, crawler.FaultConfig{Seed: 11, TransientRate: 0.3})
	faulty := crawler.Crawl(flaky, domain, crawler.Config{
		Retry:         crawler.RetryConfig{MaxAttempts: 6, Seed: 11},
		FailureBudget: 10,
	})
	fmt.Printf("same crawl at 30%% transient faults: %d pages (clean crawl found %d)\n",
		len(faulty.Pages), len(res.Pages))
	st := faulty.Stats
	fmt.Printf("  telemetry: %d attempts, %d retries, %d failed attempts, %d pages lost, %d breaker trips\n",
		st.Attempts, st.Retries, st.Failures, st.PagesFailed, st.BreakerTrips)

	// Full dataset build: all domains crawled concurrently.
	snap, err := dataset.Build("crawlnet", world, world.Domains(), world.Labels(), crawler.Config{}, 16)
	if err != nil {
		log.Fatal(err)
	}

	// Table-11 style analysis: most linked-to endpoints per class.
	legitOut, illegitOut := map[string][]string{}, map[string][]string{}
	for _, p := range snap.Pharmacies {
		if p.Label == ml.Legitimate {
			legitOut[p.Domain] = p.Outbound
		} else {
			illegitOut[p.Domain] = p.Outbound
		}
	}
	fmt.Println("\nmost linked by legitimate pharmacies:   ", trust.TopLinked(legitOut, 5))
	fmt.Println("most linked by illegitimate pharmacies: ", trust.TopLinked(illegitOut, 5))

	// Build the link graph (Algorithm 1) and run TrustRank seeded with
	// the legitimate pharmacies.
	g := trust.BuildGraph(snap.Outbound())
	fmt.Printf("\nlink graph: %d nodes, %d edges\n", g.Len(), g.Edges())

	seeds := map[string]float64{}
	for _, p := range snap.Pharmacies {
		if p.Label == ml.Legitimate {
			seeds[p.Domain] = 1
		}
	}
	scores := trust.NewScores(g.Undirected(), trust.TrustRank(g.Undirected(), seeds, trust.Config{}))

	// How well does raw trust separate the classes?
	var legitScores, illegitScores []float64
	for _, p := range snap.Pharmacies {
		if p.Label == ml.Legitimate {
			legitScores = append(legitScores, scores.Of(p.Domain))
		} else {
			illegitScores = append(illegitScores, scores.Of(p.Domain))
		}
	}
	fmt.Printf("median TrustRank: legitimate %.4f vs illegitimate %.4f\n",
		median(legitScores), median(illegitScores))

	// The affiliate structure is visible in the graph: hubs have large
	// in-degree from their member storefronts.
	type deg struct {
		domain string
		in     int
	}
	var hubs []deg
	for _, d := range world.HubDomains() {
		if id := g.ID(d); id >= 0 {
			hubs = append(hubs, deg{d, g.InDegree(id)})
		}
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i].in > hubs[j].in })
	fmt.Println("\naffiliate network hubs by in-degree:")
	for i, h := range hubs {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-42s %d inbound affiliate links\n", h.domain, h.in)
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
