// Package featcache provides the bounded, content-keyed feature cache
// shared by the evaluation pipeline. It memoizes expensive derived
// artifacts (N-Gram-Graph fold features, TF-IDF vocabularies and
// datasets) under keys derived from a hash of the input snapshot's
// *contents* plus the experiment configuration.
//
// Content keys fix a subtle aliasing bug of pointer-formatted keys
// (`fmt.Sprintf("%p", snap)`): a garbage-collected snapshot's address
// can be reused by a different snapshot, silently serving another
// dataset's features. Hashing the contents makes the key collision-free
// for distinct inputs and additionally lets logically identical
// snapshots share entries.
//
// The cache is safe for concurrent use and deduplicates concurrent
// builds of the same key (singleflight): when several goroutines ask
// for a missing entry at once, exactly one executes the build function
// and the rest block until the value is ready.
//
// Internally the cache is lock-striped: keys hash to one of several
// independent shards, each with its own mutex, LRU list and entry map.
// Concurrent CV folds and serving requests touching different keys
// therefore contend on different locks instead of serializing on one
// global mutex; only the (rare) build itself ever blocks other callers
// of the same key. Eviction is LRU *per shard* with the total entry
// bound divided across shards — a global property (the total never
// exceeds the bound) with a local recency order, the standard trade of
// striped LRU caches.
package featcache

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// defaultShards is the stripe count used by New. 16 shards keep
// contention negligible for the worker counts the evaluation pipeline
// runs at (folds × classifiers, typically well under 64 concurrent
// builders) while costing only 16 small header structs.
const defaultShards = 16

// Cache is a bounded, lock-striped LRU cache with singleflight builds.
// The zero value is not usable; construct with New or NewSharded.
type Cache struct {
	shards []*shard
}

// Well-known scopes used by the evaluation and serving pipelines. The
// scope mechanism is generic (any string works); these two names are
// shared so that /metrics, the bench harness and the core package agree
// on what they call the same counters.
const (
	// ScopeTraining tags the shared training-plane artifacts: the
	// per-corpus document-graph plane and the per-fold feature matrices
	// every ensemble member reads. Hits here are the shared-matrix
	// reuse the training kernels exist to create.
	ScopeTraining = "training"
	// ScopeServing tags corpus-level artifacts reachable from serving
	// boxes (vocabulary corpora, TF-IDF datasets): table sweeps and the
	// daemon's in-process retrain path hit these.
	ScopeServing = "serving"
)

// CacheStats is one scope's hit/miss counters.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// shard is one stripe: an independent LRU map under its own mutex.
type shard struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions uint64
	// scopes splits hits/misses by the caller-declared scope of each
	// DoScoped call, so training-plane reuse is distinguishable from
	// serving-path traffic. Unscoped Do calls count under "".
	scopes map[string]*CacheStats
}

// scopeStats returns the shard's counter slot for a scope, creating it
// on first use. Caller holds s.mu.
func (s *shard) scopeStats(scope string) *CacheStats {
	if s.scopes == nil {
		s.scopes = make(map[string]*CacheStats)
	}
	st := s.scopes[scope]
	if st == nil {
		st = &CacheStats{}
		s.scopes[scope] = st
	}
	return st
}

// entry is one cache slot. The once gate makes concurrent builders of
// the same key cooperate: the first caller runs the build, the rest
// block on once.Do until val/err are set.
type entry struct {
	key  string
	once sync.Once
	val  any
	err  error
}

// New returns a cache bounded to max entries total (values beyond the
// bound are evicted least-recently-used first within their shard),
// striped over min(16, max) shards. max <= 0 panics: an unbounded
// feature cache would pin every snapshot's features in memory for the
// life of the process.
func New(max int) *Cache {
	return NewSharded(max, defaultShards)
}

// NewSharded is New with an explicit stripe count; shards is clamped to
// [1, max] so every shard can hold at least one entry. The total bound
// max is divided across shards as evenly as possible (the first
// max%shards shards hold one extra entry). shards == 1 gives the exact
// global-LRU semantics of the historical single-lock cache.
func NewSharded(max, shards int) *Cache {
	if max <= 0 {
		panic("featcache: max must be positive")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > max {
		shards = max
	}
	c := &Cache{shards: make([]*shard, shards)}
	base, extra := max/shards, max%shards
	for i := range c.shards {
		m := base
		if i < extra {
			m++
		}
		c.shards[i] = &shard{
			max:     m,
			order:   list.New(),
			entries: make(map[string]*list.Element),
		}
	}
	return c
}

// shardFor hashes a key to its stripe (FNV-1a, 64-bit).
func (c *Cache) shardFor(key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h%uint64(len(c.shards))]
}

// Shards reports the stripe count (for tests and capacity accounting).
func (c *Cache) Shards() int { return len(c.shards) }

// Do returns the value cached under key, building it with build on
// first use. Concurrent calls with the same key share a single build.
// Errors are cached alongside values (builds are assumed deterministic,
// so retrying an identical failing build would fail identically) —
// with one exception: errors that wrap context.Canceled or
// context.DeadlineExceeded are never cached. A cancelled fold's build
// failure says nothing about the key itself, so the placeholder entry
// is evicted and the next caller rebuilds. Goroutines already waiting
// on the poisoned flight still observe the cancellation error (they
// shared that flight's fate); only later callers retry.
//
// The returned value is shared between all callers of the key: treat
// it as read-only.
func (c *Cache) Do(key string, build func() (any, error)) (any, error) {
	return c.DoScoped("", key, build)
}

// DoScoped is Do with the hit/miss attributed to a named scope (see
// ScopeTraining / ScopeServing), so callers sharing one cache can tell
// whose entries are being reused. The scope is an accounting label
// only: it does not partition the key space, and two callers using the
// same key under different scopes share one entry (the first builder's
// scope takes the miss, later scopes take hits).
func (c *Cache) DoScoped(scope, key string, build func() (any, error)) (any, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	sc := s.scopeStats(scope)
	el, ok := s.entries[key]
	if ok {
		s.order.MoveToFront(el)
		s.hits++
		sc.Hits++
	} else {
		s.misses++
		sc.Misses++
		el = s.order.PushFront(&entry{key: key})
		s.entries[key] = el
		for s.order.Len() > s.max {
			oldest := s.order.Back()
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*entry).key)
			s.evictions++
		}
	}
	e := el.Value.(*entry)
	s.mu.Unlock()

	// Outside the lock: a slow build must not serialize unrelated keys.
	// Evicted entries stay valid for goroutines already holding them.
	e.once.Do(func() { e.val, e.err = build() })
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		// Drop the poisoned placeholder so a later retry rebuilds. Only
		// remove the element if the map still points at it — the key may
		// have been evicted and re-entered by a fresh (healthy) flight.
		s.mu.Lock()
		if cur, ok := s.entries[key]; ok && cur == el {
			s.order.Remove(el)
			delete(s.entries, key)
		}
		s.mu.Unlock()
	}
	return e.val, e.err
}

// Len reports the number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Contains reports whether key currently has an entry, without
// touching recency or stats.
func (c *Cache) Contains(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Purge drops every entry (used by the benchmark harness to measure
// cold-cache runs) and resets the stats counters.
func (c *Cache) Purge() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.order.Init()
		s.entries = make(map[string]*list.Element)
		s.hits, s.misses, s.evictions = 0, 0, 0
		s.scopes = nil
		s.mu.Unlock()
	}
}

// Stats reports cumulative hit/miss/eviction counts since the last
// Purge, aggregated across shards. The three numbers are summed shard
// by shard without a global lock, so under concurrent traffic they form
// a near-point-in-time aggregate, not an atomic snapshot.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	for _, s := range c.shards {
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		evictions += s.evictions
		s.mu.Unlock()
	}
	return hits, misses, evictions
}

// ScopeStats reports the cumulative hit/miss counters of one scope
// since the last Purge, aggregated across shards (same near-point-in-
// time caveat as Stats).
func (c *Cache) ScopeStats(scope string) CacheStats {
	var out CacheStats
	for _, s := range c.shards {
		s.mu.Lock()
		if st := s.scopes[scope]; st != nil {
			out.Hits += st.Hits
			out.Misses += st.Misses
		}
		s.mu.Unlock()
	}
	return out
}

// StatsByScope reports every scope's hit/miss counters since the last
// Purge. Unscoped Do traffic appears under the "" key when present.
func (c *Cache) StatsByScope() map[string]CacheStats {
	out := make(map[string]CacheStats)
	for _, s := range c.shards {
		s.mu.Lock()
		for scope, st := range s.scopes {
			agg := out[scope]
			agg.Hits += st.Hits
			agg.Misses += st.Misses
			out[scope] = agg
		}
		s.mu.Unlock()
	}
	return out
}
