// Package tree implements the C4.5 decision-tree learner (Weka's "J48")
// used by the paper on both TF-IDF and N-Gram-Graph features.
//
// The implementation follows Quinlan's C4.5 for continuous attributes:
// binary splits at midpoints between consecutive distinct values, chosen
// by gain ratio with the MDL threshold-count correction, and pessimistic
// error-based pruning with the standard confidence factor CF=0.25
// (subtree replacement). Training data is stored column-sparse so that
// split search on high-dimensional TF-IDF vectors stays tractable.
package tree

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"pharmaverify/internal/ml"
)

// C45 is a binary-class C4.5 decision tree.
type C45 struct {
	// MinLeaf is the minimum number of instances per leaf (default 2,
	// Weka's -M 2).
	MinLeaf int
	// MaxDepth bounds tree depth (0 means unlimited).
	MaxDepth int
	// CF is the pruning confidence factor (default 0.25 when 0; set
	// negative to disable pruning).
	CF float64

	root *node
	dim  int
}

// NewC45 returns a J48-style tree with Weka's default parameters.
func NewC45() *C45 { return &C45{MinLeaf: 2, CF: 0.25} }

// Name implements ml.Named with the paper's abbreviation.
func (t *C45) Name() string { return "J48" }

type node struct {
	// Internal nodes.
	feature   int
	threshold float64 // value <= threshold goes left
	left      *node
	right     *node
	// All nodes.
	counts [2]int // training class distribution
	leaf   bool
}

func (n *node) total() int { return n.counts[0] + n.counts[1] }

func (n *node) majority() int {
	if n.counts[ml.Legitimate] > n.counts[ml.Illegitimate] {
		return ml.Legitimate
	}
	return ml.Illegitimate
}

func (n *node) errors() int { return n.total() - n.counts[n.majority()] }

// column is one feature's non-zero entries in CSC form.
type column struct {
	rows []int32
	vals []float64
}

type builder struct {
	cols    []column
	labels  []int
	minLeaf int
	maxDep  int
	// member marks which rows belong to the node being split, using a
	// generation counter to avoid clearing between nodes.
	member []int
	gen    int
}

// Fit grows and prunes the tree.
func (t *C45) Fit(ds *ml.Dataset) error {
	if ds.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	if ds.CountClass(0) == 0 || ds.CountClass(1) == 0 {
		return ml.ErrOneClass
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	t.dim = ds.Dim

	b := &builder{
		cols:    make([]column, ds.Dim),
		labels:  ds.Y,
		minLeaf: minLeaf,
		maxDep:  t.MaxDepth,
		member:  make([]int, ds.Len()),
	}
	for i, x := range ds.X {
		for k, f := range x.Ind {
			c := &b.cols[f]
			c.rows = append(c.rows, int32(i))
			c.vals = append(c.vals, x.Val[k])
		}
	}

	rows := make([]int, ds.Len())
	for i := range rows {
		rows[i] = i
	}
	t.root = b.build(rows, 0)

	cf := t.CF
	if cf == 0 {
		cf = 0.25
	}
	if cf > 0 {
		prune(t.root, cf)
	}
	return nil
}

func (b *builder) build(rows []int, depth int) *node {
	n := &node{}
	for _, r := range rows {
		n.counts[b.labels[r]]++
	}
	if n.counts[0] == 0 || n.counts[1] == 0 ||
		len(rows) < 2*b.minLeaf ||
		(b.maxDep > 0 && depth >= b.maxDep) {
		n.leaf = true
		return n
	}

	feat, thr, ok := b.bestSplit(rows, n.counts)
	if !ok {
		n.leaf = true
		return n
	}

	var left, right []int
	for _, r := range rows {
		if b.valueAt(feat, r) <= thr {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < b.minLeaf || len(right) < b.minLeaf {
		n.leaf = true
		return n
	}
	n.feature = feat
	n.threshold = thr
	n.left = b.build(left, depth+1)
	n.right = b.build(right, depth+1)
	return n
}

// valueAt fetches the (possibly zero) value of feature f for row r by
// binary search in the CSC column.
func (b *builder) valueAt(f, r int) float64 {
	c := &b.cols[f]
	k := sort.Search(len(c.rows), func(i int) bool { return c.rows[i] >= int32(r) })
	if k < len(c.rows) && c.rows[k] == int32(r) {
		return c.vals[k]
	}
	return 0
}

type valLabel struct {
	v float64
	y int
}

// bestSplit searches all features for the split with the highest gain
// ratio (subject to positive MDL-corrected information gain).
func (b *builder) bestSplit(rows []int, counts [2]int) (feat int, thr float64, ok bool) {
	total := len(rows)
	parentH := entropy(counts[0], counts[1])

	// Mark membership for this node.
	b.gen++
	for _, r := range rows {
		b.member[r] = b.gen
	}

	bestRatio := -1.0
	scratch := make([]valLabel, 0, total)

	for f := range b.cols {
		col := &b.cols[f]
		if len(col.rows) == 0 {
			continue // all-zero column cannot split
		}
		scratch = scratch[:0]
		var nzCount [2]int
		for k, r := range col.rows {
			if b.member[r] == b.gen {
				scratch = append(scratch, valLabel{col.vals[k], b.labels[r]})
				nzCount[b.labels[r]]++
			}
		}
		zeroCounts := [2]int{counts[0] - nzCount[0], counts[1] - nzCount[1]}
		nZeros := zeroCounts[0] + zeroCounts[1]
		if len(scratch) == 0 {
			continue
		}
		// Insert the implicit zero block (if any rows have value 0).
		if nZeros > 0 {
			// Represent zeros as a single aggregated pseudo-entry; the
			// sweep below handles aggregated blocks via counts.
			scratch = append(scratch, valLabel{0, -1}) // sentinel, expanded in sweep
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i].v < scratch[j].v })

		_, r, th, found := sweepSplits(scratch, zeroCounts, counts, parentH, total, b.minLeaf)
		if found && r > bestRatio {
			bestRatio = r
			feat = f
			thr = th
			ok = true
		}
	}
	return feat, thr, ok
}

// sweepSplits scans sorted (value,label) pairs, where a pair with label
// -1 is the aggregated block of zero-valued instances with class counts
// zeroCounts. It returns the best (gain, gainRatio, threshold).
func sweepSplits(sorted []valLabel, zeroCounts, counts [2]int, parentH float64, total, minLeaf int) (bestGain, bestRatio, bestThr float64, ok bool) {
	var left [2]int
	distinct := countDistinct(sorted)
	if distinct < 2 {
		return 0, 0, 0, false
	}
	// MDL correction for evaluating distinct-1 candidate thresholds.
	penalty := math.Log2(float64(distinct-1)) / float64(total)

	bestGain, bestRatio = -1, -1
	i := 0
	for i < len(sorted) {
		// Consume the block of equal values.
		v := sorted[i].v
		for i < len(sorted) && sorted[i].v == v {
			if sorted[i].y == -1 {
				left[0] += zeroCounts[0]
				left[1] += zeroCounts[1]
			} else {
				left[sorted[i].y]++
			}
			i++
		}
		if i >= len(sorted) {
			break // no split after the last block
		}
		nL := left[0] + left[1]
		nR := total - nL
		if nL < minLeaf || nR < minLeaf {
			continue
		}
		right := [2]int{counts[0] - left[0], counts[1] - left[1]}
		hl := entropy(left[0], left[1])
		hr := entropy(right[0], right[1])
		pL := float64(nL) / float64(total)
		gain := parentH - pL*hl - (1-pL)*hr - penalty
		if gain <= 1e-12 {
			continue
		}
		splitInfo := binaryEntropy(pL)
		if splitInfo <= 1e-12 {
			continue
		}
		ratio := gain / splitInfo
		if ratio > bestRatio {
			bestRatio = ratio
			bestGain = gain
			bestThr = (v + sorted[i].v) / 2
			ok = true
		}
	}
	return bestGain, bestRatio, bestThr, ok
}

func countDistinct(sorted []valLabel) int {
	d := 0
	for i := 0; i < len(sorted); i++ {
		if i == 0 || sorted[i].v != sorted[i-1].v {
			d++
		}
	}
	return d
}

func entropy(a, b int) float64 {
	n := a + b
	if n == 0 || a == 0 || b == 0 {
		return 0
	}
	return binaryEntropy(float64(a) / float64(n))
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// prune applies C4.5 pessimistic subtree replacement bottom-up and
// returns the estimated error of the (possibly replaced) subtree.
func prune(n *node, cf float64) float64 {
	if n.leaf {
		return pessimisticErrors(float64(n.total()), float64(n.errors()), cf)
	}
	subtreeErr := prune(n.left, cf) + prune(n.right, cf)
	leafErr := pessimisticErrors(float64(n.total()), float64(n.errors()), cf)
	if leafErr <= subtreeErr+0.1 {
		n.leaf = true
		n.left, n.right = nil, nil
		return leafErr
	}
	return subtreeErr
}

// pessimisticErrors returns e plus the pessimistic correction addErrs
// (Weka's Stats.addErrs): the upper confidence bound on the number of
// misclassifications among n instances with e observed errors.
func pessimisticErrors(n, e, cf float64) float64 {
	return e + addErrs(n, e, cf)
}

func addErrs(n, e, cf float64) float64 {
	if cf > 0.5 {
		cf = 0.5
	}
	if n <= 0 {
		return 0
	}
	if e < 1 {
		base := n * (1 - math.Pow(cf, 1/n))
		if e == 0 {
			return base
		}
		return base + e*(addErrs(n, 1, cf)-base)
	}
	if e+0.5 >= n {
		return math.Max(n-e, 0)
	}
	z := normalQuantile(1 - cf)
	f := (e + 0.5) / n
	r := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return r*n - e
}

// normalQuantile is the inverse standard-normal CDF (Acklam's rational
// approximation; |relative error| < 1.15e-9 on (0,1)).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("tree: quantile out of range")
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Prob returns the Laplace-smoothed legitimate fraction of the leaf
// reached by x.
func (t *C45) Prob(x ml.Vector) float64 {
	if t.root == nil {
		return 0.5
	}
	n := t.root
	for !n.leaf {
		if x.At(n.feature) <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return (float64(n.counts[ml.Legitimate]) + 1) / (float64(n.total()) + 2)
}

// Predict returns the majority class of the reached leaf.
func (t *C45) Predict(x ml.Vector) int {
	if t.root == nil {
		return ml.Illegitimate
	}
	n := t.root
	for !n.leaf {
		if x.At(n.feature) <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.majority()
}

// String renders the fitted tree in Weka's J48 text style, with
// attribute names supplied by name (nil falls back to "a<i>"):
//
//	a1 <= 0.5: illegitimate (120/3)
//	a1 > 0.5
//	|   a0 <= 1.2: legitimate (40)
//	...
func (t *C45) String() string { return t.Render(nil) }

// Render is String with a feature-name lookup (e.g. vocabulary terms).
func (t *C45) Render(name func(feature int) string) string {
	if t.root == nil {
		return "C45(unfitted)"
	}
	if name == nil {
		name = func(f int) string { return "a" + strconv.Itoa(f) }
	}
	var b strings.Builder
	renderNode(&b, t.root, name, 0)
	return b.String()
}

func renderNode(b *strings.Builder, n *node, name func(int) string, depth int) {
	indent := strings.Repeat("|   ", depth)
	if n.leaf {
		fmt.Fprintf(b, "%s: %s (%d", indent, ml.ClassName(n.majority()), n.total())
		if e := n.errors(); e > 0 {
			fmt.Fprintf(b, "/%d", e)
		}
		b.WriteString(")\n")
		return
	}
	fmt.Fprintf(b, "%s%s <= %.4g\n", indent, name(n.feature), n.threshold)
	renderNode(b, n.left, name, depth+1)
	fmt.Fprintf(b, "%s%s > %.4g\n", indent, name(n.feature), n.threshold)
	renderNode(b, n.right, name, depth+1)
}

// Size reports the number of nodes in the fitted tree (0 if unfitted).
func (t *C45) Size() int { return count(t.root) }

// Depth reports the depth of the fitted tree (a lone leaf has depth 1).
func (t *C45) Depth() int { return depth(t.root) }

func count(n *node) int {
	if n == nil {
		return 0
	}
	return 1 + count(n.left) + count(n.right)
}

func depth(n *node) int {
	if n == nil {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if r > l {
		l = r
	}
	return 1 + l
}

var (
	_ ml.Classifier = (*C45)(nil)
	_ ml.Named      = (*C45)(nil)
)
