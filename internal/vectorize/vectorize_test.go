package vectorize

import (
	"math"
	"reflect"
	"testing"

	"pharmaverify/internal/ml"
)

func docs() [][]string {
	return [][]string{
		{"viagra", "cialis", "cheap", "viagra"},
		{"pharmacy", "prescription", "health"},
		{"viagra", "pharmacy"},
	}
}

func TestVocabularyIndexing(t *testing.T) {
	v := BuildVocabulary(docs())
	if v.Size() != 6 {
		t.Fatalf("Size = %d, want 6", v.Size())
	}
	if v.Docs() != 3 {
		t.Errorf("Docs = %d", v.Docs())
	}
	i := v.Index("viagra")
	if i < 0 || v.Term(i) != "viagra" {
		t.Errorf("round trip failed: %d", i)
	}
	if v.Index("unknown") != -1 {
		t.Error("unknown term must be -1")
	}
}

func TestDocumentFrequency(t *testing.T) {
	v := BuildVocabulary(docs())
	// "viagra" appears in docs 0 and 2 (twice in doc 0, counted once).
	if df := v.df[v.Index("viagra")]; df != 2 {
		t.Errorf("df(viagra) = %d, want 2", df)
	}
	if df := v.df[v.Index("health")]; df != 1 {
		t.Errorf("df(health) = %d, want 1", df)
	}
}

func TestIDFOrdering(t *testing.T) {
	v := BuildVocabulary(docs())
	rare := v.IDF(v.Index("health"))   // df 1
	common := v.IDF(v.Index("viagra")) // df 2
	if rare <= common {
		t.Errorf("IDF(rare)=%v must exceed IDF(common)=%v", rare, common)
	}
	if common <= 0 {
		t.Errorf("IDF must stay positive, got %v", common)
	}
}

func TestCountsVector(t *testing.T) {
	v := BuildVocabulary(docs())
	x := v.Counts([]string{"viagra", "viagra", "health", "zzz"})
	if got := x.At(v.Index("viagra")); got != 2 {
		t.Errorf("count(viagra) = %v", got)
	}
	if got := x.At(v.Index("health")); got != 1 {
		t.Errorf("count(health) = %v", got)
	}
}

func TestTFIDFNormalized(t *testing.T) {
	v := BuildVocabulary(docs())
	x := v.TFIDF([]string{"viagra", "cheap", "pharmacy"})
	if n := ml.Norm2(x); math.Abs(n-1) > 1e-9 {
		t.Errorf("L2 norm = %v, want 1", math.Sqrt(n))
	}
}

func TestTFIDFEmptyDoc(t *testing.T) {
	v := BuildVocabulary(docs())
	x := v.TFIDF([]string{"zzz"}) // fully out-of-vocabulary
	if x.Len() != 0 {
		t.Errorf("OOV doc must vectorize to zero vector, got %v", x)
	}
}

func TestTFIDFWeightsRareTermsHigher(t *testing.T) {
	v := BuildVocabulary(docs())
	x := v.TFIDF([]string{"viagra", "health"})
	if x.At(v.Index("health")) <= x.At(v.Index("viagra")) {
		t.Error("rare term should outweigh common term at equal tf")
	}
}

func TestTopTermsByDF(t *testing.T) {
	v := BuildVocabulary(docs())
	top := v.TopTermsByDF(2)
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	// df: viagra=2, pharmacy=2, rest=1. Alphabetical tie-break.
	want := []string{"pharmacy", "viagra"}
	if !reflect.DeepEqual(top, want) {
		t.Errorf("top = %v, want %v", top, want)
	}
	if got := v.TopTermsByDF(100); len(got) != v.Size() {
		t.Errorf("k beyond size: %d", len(got))
	}
}

func TestCorpusDataset(t *testing.T) {
	c := NewCorpus(docs(), []int{ml.Illegitimate, ml.Legitimate, ml.Illegitimate}, []string{"a", "b", "c"})
	ds := c.Dataset(WeightTFIDF)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 || ds.Dim != 6 {
		t.Errorf("ds %d×%d", ds.Len(), ds.Dim)
	}
	if ds.Names[1] != "b" || ds.Y[1] != ml.Legitimate {
		t.Error("names/labels lost")
	}

	counts := c.Dataset(WeightCounts)
	if got := counts.X[0].At(c.Vocab.Index("viagra")); got != 2 {
		t.Errorf("counts dataset wrong: %v", got)
	}
}

func TestAddDocumentIncremental(t *testing.T) {
	v := BuildVocabulary(nil)
	v.AddDocument([]string{"alpha", "beta"})
	v.AddDocument([]string{"beta", "gamma"})
	if v.Size() != 3 || v.Docs() != 2 {
		t.Errorf("size=%d docs=%d", v.Size(), v.Docs())
	}
	if v.df[v.Index("beta")] != 2 {
		t.Error("incremental df wrong")
	}
}
