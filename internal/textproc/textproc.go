// Package textproc implements the paper's text preprocessing (§4.1):
// tokenization, Lucene-style stop-word removal without stemming, the
// summarization step that merges all crawled pages of a pharmacy into a
// single document, and the random term subsampling (100/250/1000/2000
// terms) used throughout the experiments.
package textproc

import (
	"math/rand"
	"strings"
	"unicode"
)

// Tokenize lower-cases the text and splits it into terms on any
// non-letter/non-digit rune, mirroring Lucene's StandardTokenizer for
// plain English content. Single-character terms are dropped.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 1 {
			tokens = append(tokens, b.String())
		}
		b.Reset()
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'': // keep possessives/contractions joined ("don't")
			if b.Len() > 0 {
				b.WriteRune(r)
			}
		default:
			flush()
		}
	}
	flush()
	// Trim trailing apostrophes left by the contraction rule.
	for i, t := range tokens {
		tokens[i] = strings.TrimRight(t, "'")
	}
	return tokens
}

// Preprocessor applies tokenization and stop-word removal. The zero
// value uses the default Lucene stop-word list; no stemming is applied,
// matching the paper (technical terms and trademarks survive intact).
type Preprocessor struct {
	stop map[string]bool
}

// NewPreprocessor builds a Preprocessor with the default stop words plus
// any extra words supplied.
func NewPreprocessor(extraStopWords ...string) *Preprocessor {
	stop := StopWords()
	for _, w := range extraStopWords {
		stop[strings.ToLower(w)] = true
	}
	return &Preprocessor{stop: stop}
}

// Terms tokenizes text and removes stop words.
func (p *Preprocessor) Terms(text string) []string {
	stop := p.stop
	if stop == nil {
		stop = StopWords()
	}
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if !stop[t] {
			out = append(out, t)
		}
	}
	return out
}

// Summarize merges the text content of all crawled pages of one
// pharmacy into a single summary document, the paper's summarization
// step. Pages are separated by a single space.
func Summarize(pages []string) string {
	return strings.Join(pages, " ")
}

// Subsample returns a random subset of k terms of the document (without
// replacement, preserving multiplicity semantics: positions are chosen
// uniformly). When k <= 0 or k >= len(terms) the original slice is
// returned unchanged, corresponding to the paper's "All" column.
func Subsample(terms []string, k int, rng *rand.Rand) []string {
	if k <= 0 || k >= len(terms) {
		return terms
	}
	idx := rng.Perm(len(terms))[:k]
	out := make([]string, k)
	for i, j := range idx {
		out[i] = terms[j]
	}
	return out
}

// SubsampleSizes are the term-subset sizes swept in the paper's
// experiments; 0 denotes "All".
var SubsampleSizes = []int{100, 250, 1000, 2000, 0}

// SizeLabel formats a subsample size the way the paper's tables do.
func SizeLabel(k int) string {
	if k == 0 {
		return "All"
	}
	return itoa(k)
}

func itoa(k int) string {
	if k == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = byte('0' + k%10)
		k /= 10
	}
	return string(buf[i:])
}
