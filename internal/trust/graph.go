// Package trust implements the network-analysis half of the paper
// (§4.2): the link-graph construction of Algorithm 1 (pharmacy →
// outbound second-level-domain endpoints), the TrustRank algorithm of
// Gyöngyi et al. seeded with known-legitimate pharmacies, and the
// Anti-TrustRank and PageRank variants used as baselines and for the
// future-work extensions.
package trust

import (
	"sort"
	"strings"
)

// Graph is a directed graph over domain names.
type Graph struct {
	ids   map[string]int
	names []string
	out   [][]int32
	in    [][]int32
	edges int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{ids: make(map[string]int)}
}

// Node interns a domain name and returns its id.
func (g *Graph) Node(name string) int {
	if id, ok := g.ids[name]; ok {
		return id
	}
	id := len(g.names)
	g.ids[name] = id
	g.names = append(g.names, name)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge adds a directed edge src → dst (parallel edges are kept: a
// pharmacy linking to fda.gov from many pages weighs more).
func (g *Graph) AddEdge(src, dst string) {
	s, d := g.Node(src), g.Node(dst)
	g.out[s] = append(g.out[s], int32(d))
	g.in[d] = append(g.in[d], int32(s))
	g.edges++
}

// Len reports the number of nodes; Edges the number of edges.
func (g *Graph) Len() int   { return len(g.names) }
func (g *Graph) Edges() int { return g.edges }

// Name returns the domain of node id.
func (g *Graph) Name(id int) string { return g.names[id] }

// ID returns the node id of a domain, or -1 when absent.
func (g *Graph) ID(name string) int {
	if id, ok := g.ids[name]; ok {
		return id
	}
	return -1
}

// OutDegree returns the out-degree of a node.
func (g *Graph) OutDegree(id int) int { return len(g.out[id]) }

// InDegree returns the in-degree of a node.
func (g *Graph) InDegree(id int) int { return len(g.in[id]) }

// Reverse returns a new graph with every edge direction flipped
// (used by Anti-TrustRank, which propagates distrust backwards).
func (g *Graph) Reverse() *Graph {
	r := NewGraph()
	for _, n := range g.names {
		r.Node(n)
	}
	for s, outs := range g.out {
		for _, d := range outs {
			r.AddEdge(g.names[d], g.names[s])
		}
	}
	return r
}

// Undirected returns a new graph where every edge also exists in the
// opposite direction. The verification pipeline runs TrustRank on this
// symmetrized graph so that trust placed on hub endpoints (fda.gov,
// facebook.com) flows back to the pharmacies that link to them — the
// "approximate isolation" signal of Section 3.1.
func (g *Graph) Undirected() *Graph {
	u := NewGraph()
	for _, n := range g.names {
		u.Node(n)
	}
	for s, outs := range g.out {
		for _, d := range outs {
			u.AddEdge(g.names[s], g.names[d])
			u.AddEdge(g.names[d], g.names[s])
		}
	}
	return u
}

// TopLinked returns up to k endpoint domains sorted by how many of the
// given source domains link to them (each source counted once per
// endpoint), reproducing the analysis of Table 11.
func TopLinked(outbound map[string][]string, k int) []string {
	counts := make(map[string]int)
	for _, targets := range outbound {
		seen := make(map[string]bool, len(targets))
		for _, t := range targets {
			if !seen[t] {
				counts[t]++
				seen[t] = true
			}
		}
	}
	domains := make([]string, 0, len(counts))
	for d := range counts {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool {
		if counts[domains[i]] != counts[domains[j]] {
			return counts[domains[i]] > counts[domains[j]]
		}
		return domains[i] < domains[j]
	})
	if k > 0 && k < len(domains) {
		domains = domains[:k]
	}
	return domains
}

// secondLevelCCTLDs lists country-code registries that allocate names
// under a generic second level ("example.co.uk"), for which the
// registrable domain is three labels long.
var secondLevelCCTLDs = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true,
	"com.au": true, "net.au": true, "org.au": true,
	"co.jp": true, "or.jp": true, "ne.jp": true,
	"com.br": true, "com.cn": true, "com.mx": true, "co.in": true,
	"co.nz": true, "co.za": true, "com.sg": true, "com.tr": true,
}

// Endpoint implements the paper's endpoint() function: it extracts the
// second-level (registrable) domain from a raw URL, e.g.
// "http://www.medicalnewstoday.com/articles/238663.php" →
// "medicalnewstoday.com". It reports ok=false for unparsable or
// schemeless-relative inputs.
func Endpoint(rawURL string) (string, bool) {
	s := rawURL
	// Strip scheme.
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	} else if strings.HasPrefix(s, "//") {
		s = s[2:]
	} else if strings.HasPrefix(s, "/") || strings.HasPrefix(s, "#") || strings.HasPrefix(s, "?") {
		return "", false // relative URL: no host
	} else if strings.HasPrefix(s, "mailto:") || strings.HasPrefix(s, "javascript:") || strings.HasPrefix(s, "tel:") {
		return "", false
	}
	// Host ends at first '/', '?', '#'.
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	// Drop credentials and port.
	if i := strings.LastIndexByte(s, '@'); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i]
	}
	s = strings.ToLower(strings.TrimSuffix(s, "."))
	if s == "" || strings.ContainsAny(s, " \t") {
		return "", false
	}
	labels := strings.Split(s, ".")
	if len(labels) < 2 {
		return "", false
	}
	for _, l := range labels {
		if l == "" {
			return "", false
		}
	}
	last2 := strings.Join(labels[len(labels)-2:], ".")
	if len(labels) >= 3 && secondLevelCCTLDs[last2] {
		return strings.Join(labels[len(labels)-3:], "."), true
	}
	return last2, true
}

// OutboundEndpoints maps raw outbound links to their endpoint domains,
// dropping links that resolve back to ownDomain and duplicates
// (preserving first-seen order) — the outboundLinks()+endpoint()
// composition of Algorithm 1.
func OutboundEndpoints(links []string, ownDomain string) []string {
	own := strings.ToLower(ownDomain)
	var out []string
	seen := make(map[string]bool)
	for _, l := range links {
		ep, ok := Endpoint(l)
		if !ok || ep == own || seen[ep] {
			continue
		}
		seen[ep] = true
		out = append(out, ep)
	}
	return out
}

// BuildGraph implements Algorithm 1 (GRAPH-CREATION): given the set of
// pharmacies with their outbound endpoint domains, it creates one node
// per pharmacy and per endpoint, with a directed edge for every
// outbound link.
func BuildGraph(outbound map[string][]string) *Graph {
	g := NewGraph()
	// Deterministic construction order.
	domains := make([]string, 0, len(outbound))
	for d := range outbound {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		g.Node(d)
		for _, ep := range outbound[d] {
			g.AddEdge(d, ep)
		}
	}
	return g
}
