// Package bench hosts the experiment runners that regenerate every
// table and figure of the paper's evaluation (Section 6). The same
// runners back the testing.B benchmarks in the repository root and the
// cmd/experiments binary, so `go test -bench` and the CLI print the
// same rows.
//
// Experiments run at a configurable Scale: FullScale reproduces the
// paper's dataset sizes (Table 1), SmallScale is a fast sanity setting
// used by default in benchmarks and tests.
package bench

import (
	"context"
	"fmt"
	"sync"

	"pharmaverify/internal/core"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/featcache"
	"pharmaverify/internal/webgen"
)

// Scale sizes the synthetic datasets.
type Scale struct {
	Name string
	// Dataset 1 class sizes.
	Legit1, Illegit1 int
	// Dataset 2 class sizes (same legitimate domains, fresh
	// illegitimate ones).
	Legit2, Illegit2 int
	// NetworkSize is the affiliate-network size.
	NetworkSize int
	// Seed drives everything.
	Seed int64
	// TermSizes is the subsample sweep (0 = "All").
	TermSizes []int
}

// FullScale reproduces the paper's Table 1 exactly: 167 + 1292
// pharmacies in Dataset 1 and 167 + 1275 in Dataset 2.
var FullScale = Scale{
	Name:   "full",
	Legit1: 167, Illegit1: 1292,
	Legit2: 167, Illegit2: 1275,
	NetworkSize: 50,
	Seed:        20180326, // EDBT 2018 opening day
	TermSizes:   []int{100, 250, 1000, 2000, 0},
}

// SmallScale is a reduced setting (same class imbalance) for quick
// runs; shapes still hold, absolute numbers are noisier.
var SmallScale = Scale{
	Name:   "small",
	Legit1: 36, Illegit1: 280,
	Legit2: 36, Illegit2: 264,
	NetworkSize: 40,
	Seed:        20180326,
	TermSizes:   []int{100, 250, 1000},
}

// Env carries the generated snapshots and memoized experiment results.
// The result caches deduplicate concurrent computations of the same
// cell (singleflight), so the parallel table sweeps never run one
// configuration twice.
type Env struct {
	Scale Scale
	// World1/World2 are the synthetic webs; Snap1/Snap2 the crawled,
	// preprocessed datasets.
	World1, World2 *webgen.World
	Snap1, Snap2   *dataset.Snapshot

	results *featcache.Cache
}

// resultCacheSize bounds an Env's memoized CV results: every text cell
// of the sweep (2 representations × 5 classifiers × 3 samplings ×
// 5 term sizes), the network variants and the drift cells fit with
// ample headroom.
const resultCacheSize = 512

var (
	envMu    sync.Mutex
	envCache = map[string]*Env{}
)

// NewEnv generates (or returns the cached) environment for a scale.
func NewEnv(s Scale) (*Env, error) {
	return NewEnvCtx(context.Background(), s)
}

// NewEnvCtx is NewEnv with cooperative cancellation of the snapshot
// builds, the expensive phase of environment construction. A cancelled
// build returns ctx's error and caches nothing.
func NewEnvCtx(ctx context.Context, s Scale) (*Env, error) {
	key := fmt.Sprintf("%s-%d", s.Name, s.Seed)
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envCache[key]; ok {
		return e, nil
	}

	w1 := webgen.Generate(webgen.Config{
		Seed: s.Seed, Snapshot: 1,
		NumLegit: s.Legit1, NumIllegit: s.Illegit1,
		NetworkSize: s.NetworkSize,
	})
	w2 := webgen.Generate(webgen.Config{
		Seed: s.Seed, Snapshot: 2,
		NumLegit: s.Legit2, NumIllegit: s.Illegit2,
		IllegitOffset: s.Illegit1,
		NetworkSize:   s.NetworkSize,
	})
	// Auxiliary non-pharmacy directories for the future-work (a)
	// ablation: health portals and review sites that link to
	// pharmacies. They do not affect the base experiments.
	dirs := w1.GenerateDirectories(1+s.Legit1/8, 1+s.Illegit1/60)
	auxDomains := w1.AttachDirectories(dirs)

	snap1, err := dataset.BuildCtx(ctx, "Dataset 1", w1, w1.Domains(), w1.Labels(),
		dataset.BuildOptions{Crawl: crawler.Config{}, Workers: 16, Aux: auxDomains})
	if err != nil {
		return nil, err
	}
	snap2, err := dataset.BuildCtx(ctx, "Dataset 2", w2, w2.Domains(), w2.Labels(),
		dataset.BuildOptions{Crawl: crawler.Config{}, Workers: 16})
	if err != nil {
		return nil, err
	}
	e := &Env{
		Scale:  s,
		World1: w1, World2: w2,
		Snap1: snap1, Snap2: snap2,
		results: featcache.New(resultCacheSize),
	}
	envCache[key] = e
	return e, nil
}

// Fresh returns an Env sharing this environment's generated worlds and
// snapshots but with empty result caches — benchmarks use it so every
// iteration measures real work instead of a cache hit.
func (e *Env) Fresh() *Env {
	return &Env{
		Scale:  e.Scale,
		World1: e.World1, World2: e.World2,
		Snap1: e.Snap1, Snap2: e.Snap2,
		results: featcache.New(resultCacheSize),
	}
}

// cvResult memoizes one CV computation under key with singleflight
// semantics.
func (e *Env) cvResult(key string, run func() (eval.CVResult, error)) (eval.CVResult, error) {
	v, err := e.results.Do(key, func() (any, error) {
		r, err := run()
		if err != nil {
			return nil, err
		}
		return r, nil
	})
	if err != nil {
		return eval.CVResult{}, err
	}
	return v.(eval.CVResult), nil
}

// TextResult memoizes core.TextCV runs on Dataset 1.
func (e *Env) TextResult(rep core.Representation, clf core.ClassifierKind, smp core.SamplingKind, terms int) (eval.CVResult, error) {
	key := fmt.Sprintf("t|%s|%s|%s|%d", rep, clf, smp, terms)
	return e.cvResult(key, func() (eval.CVResult, error) {
		return core.TextCV(e.Snap1, core.TextConfig{
			Representation: rep, Classifier: clf, Sampling: smp,
			Terms: terms, Seed: e.Scale.Seed,
		})
	})
}

// NetworkResult memoizes core.NetworkCV runs on Dataset 1.
func (e *Env) NetworkResult(variant core.NetworkVariant) (eval.CVResult, error) {
	return e.cvResult("n|"+string(variant), func() (eval.CVResult, error) {
		return core.NetworkCV(e.Snap1, core.NetworkConfig{
			Variant: variant, Seed: e.Scale.Seed,
		})
	})
}
