package bench

import (
	"strings"
	"testing"
	"time"
)

func TestWorkerMatrix(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{3, []int{1, 2, 3}},
		{8, []int{1, 2, 8}},
	}
	for _, tc := range cases {
		got := workerMatrix(tc.max)
		if len(got) != len(tc.want) {
			t.Errorf("workerMatrix(%d) = %v, want %v", tc.max, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("workerMatrix(%d) = %v, want %v", tc.max, got, tc.want)
				break
			}
		}
	}
}

// scalingEntry fabricates a heavy entry with the given efficiency on
// the widest leg.
func scalingEntry(id string, workers int, eff float64) BenchEntry {
	seq := 3 * int64(time.Second)
	speedup := eff * float64(workers)
	return BenchEntry{
		ID:    id,
		Heavy: true,
		Legs: []BenchLeg{
			{Workers: 1, NS: seq, Speedup: 1, Efficiency: 1, Identical: true},
			{Workers: workers, NS: int64(float64(seq) / speedup), Speedup: speedup, Efficiency: eff, Identical: true},
		},
		SequentialNS: seq,
		Speedup:      speedup,
		Identical:    true,
	}
}

func multiCoreReport(entries ...BenchEntry) *BenchReport {
	return &BenchReport{
		Workers:      4,
		WorkerMatrix: []int{1, 2, 4},
		GoMaxProcs:   4,
		Entries:      entries,
	}
}

func TestCheckParallelEfficiencyPasses(t *testing.T) {
	rep := multiCoreReport(
		scalingEntry("7", 4, 0.80),
		scalingEntry("8", 4, 0.40),
		// Light entries are exempt however badly they scale.
		BenchEntry{ID: "1", Heavy: false, Identical: true,
			Legs: []BenchLeg{{Workers: 1, Speedup: 1, Efficiency: 1, Identical: true},
				{Workers: 4, Speedup: 0.9, Efficiency: 0.225, Identical: true}}},
	)
	if err := CheckParallelEfficiency(rep, 0.35); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
}

func TestCheckParallelEfficiencyFailsBelowFloor(t *testing.T) {
	rep := multiCoreReport(scalingEntry("7", 4, 0.80), scalingEntry("8", 4, 0.20))
	err := CheckParallelEfficiency(rep, 0.35)
	if err == nil || !strings.Contains(err.Error(), "efficiency") {
		t.Fatalf("err = %v, want efficiency failure", err)
	}
	if !strings.Contains(err.Error(), "entry 8") {
		t.Fatalf("err = %v, want the failing entry named", err)
	}
}

func TestCheckParallelEfficiencyDefaultFloor(t *testing.T) {
	rep := multiCoreReport(scalingEntry("7", 4, DefaultEfficiencyFloor-0.05))
	if err := CheckParallelEfficiency(rep, 0); err == nil {
		t.Fatal("non-positive floor must fall back to the default, not disable the gate")
	}
	rep2 := multiCoreReport(scalingEntry("7", 4, DefaultEfficiencyFloor+0.05))
	if err := CheckParallelEfficiency(rep2, 0); err != nil {
		t.Fatalf("entry above the default floor rejected: %v", err)
	}
}

func TestCheckParallelEfficiencySkipsSingleCore(t *testing.T) {
	// A report recorded with GOMAXPROCS=1 measures goroutine switching,
	// not scaling: the gate must pass it through untouched.
	rep := multiCoreReport(scalingEntry("7", 4, 0.10))
	rep.GoMaxProcs = 1
	if err := CheckParallelEfficiency(rep, 0.35); err != nil {
		t.Fatalf("gomaxprocs=1 report not skipped: %v", err)
	}
	rep = multiCoreReport(scalingEntry("7", 1, 0.10))
	rep.Workers = 1
	if err := CheckParallelEfficiency(rep, 0.35); err != nil {
		t.Fatalf("workers=1 report not skipped: %v", err)
	}
}

func TestCheckParallelEfficiencyRejectsNonIdentical(t *testing.T) {
	bad := scalingEntry("7", 4, 0.80)
	bad.Identical = false
	err := CheckParallelEfficiency(multiCoreReport(bad), 0.35)
	if err == nil || !strings.Contains(err.Error(), "identical") {
		t.Fatalf("err = %v, want byte-identity failure", err)
	}
}

func TestCheckParallelEfficiencyRejectsPreMatrixReports(t *testing.T) {
	legless := BenchEntry{ID: "7", Heavy: true, Identical: true, SequentialNS: 2e9}
	err := CheckParallelEfficiency(multiCoreReport(legless), 0.35)
	if err == nil || !strings.Contains(err.Error(), "legs") {
		t.Fatalf("err = %v, want pre-matrix rejection", err)
	}
}

func TestCheckParallelEfficiencyNeedsHeavyEntries(t *testing.T) {
	light := scalingEntry("1", 4, 0.9)
	light.Heavy = false
	err := CheckParallelEfficiency(multiCoreReport(light), 0.35)
	if err == nil || !strings.Contains(err.Error(), "heavy") {
		t.Fatalf("err = %v, want no-heavy-entries failure", err)
	}
}
