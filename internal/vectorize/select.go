package vectorize

import (
	"math"
	"sort"

	"pharmaverify/internal/ml"
)

// InformationGain computes, for every feature of a binary-labeled
// corpus, the information gain of the feature's presence/absence
// indicator with respect to the class — the classic text feature-
// selection criterion (Chakrabarti et al., cited by the paper). Feature
// values are reduced to presence (non-zero) for the computation, which
// matches term-occurrence semantics.
func InformationGain(ds *ml.Dataset) []float64 {
	n := ds.Len()
	gains := make([]float64, ds.Dim)
	if n == 0 {
		return gains
	}
	var pos int
	for _, y := range ds.Y {
		if y == ml.Legitimate {
			pos++
		}
	}
	classH := binEntropy(float64(pos) / float64(n))

	// present[f][c] counts instances of class c containing feature f.
	presentPos := make([]int, ds.Dim)
	presentAll := make([]int, ds.Dim)
	for i, x := range ds.X {
		for _, f := range x.Ind {
			presentAll[f]++
			if ds.Y[i] == ml.Legitimate {
				presentPos[f]++
			}
		}
	}
	for f := 0; f < ds.Dim; f++ {
		pa := presentAll[f]
		if pa == 0 || pa == n {
			continue // constant indicator: zero gain
		}
		pp := presentPos[f]
		ap := pos - pp
		aa := n - pa
		hPresent := entropy2(pp, pa-pp)
		hAbsent := entropy2(ap, aa-ap)
		cond := (float64(pa)*hPresent + float64(aa)*hAbsent) / float64(n)
		if g := classH - cond; g > 0 {
			gains[f] = g
		}
	}
	return gains
}

// TopFeaturesByGain returns the indices of the k features with the
// highest information gain, in decreasing-gain order (stable index
// tie-break).
func TopFeaturesByGain(ds *ml.Dataset, k int) []int {
	gains := InformationGain(ds)
	idx := make([]int, len(gains))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return gains[idx[a]] > gains[idx[b]] })
	if k > 0 && k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

// Project restricts every instance of a dataset to the given feature
// subset, remapping them to a compact 0..len(features)-1 space. It
// returns the projected dataset and the old→new index map.
func Project(ds *ml.Dataset, features []int) (*ml.Dataset, map[int]int) {
	remap := make(map[int]int, len(features))
	sorted := append([]int(nil), features...)
	sort.Ints(sorted)
	for newIdx, old := range sorted {
		remap[old] = newIdx
	}
	out := &ml.Dataset{Dim: len(sorted)}
	for i, x := range ds.X {
		m := make(map[int]float64)
		for k, f := range x.Ind {
			if nf, ok := remap[int(f)]; ok {
				m[nf] = x.Val[k]
			}
		}
		name := ""
		if i < len(ds.Names) {
			name = ds.Names[i]
		}
		out.Add(ml.FromMap(m), ds.Y[i], name)
	}
	return out, remap
}

func binEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

func entropy2(a, b int) float64 {
	if a+b == 0 {
		return 0
	}
	return binEntropy(float64(a) / float64(a+b))
}
