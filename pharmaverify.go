// Package pharmaverify is an automated system for internet pharmacy
// verification, reproducing Cordioli & Palpanas (EDBT 2018).
//
// The system solves two problems over a set of online pharmacies with a
// labeled subset:
//
//   - OPC, classification: decide whether a pharmacy is legitimate or
//     illegitimate, from the text of its crawled pages (TF-IDF term
//     vectors or character N-Gram Graphs fed to Naïve Bayes, SVM, C4.5
//     or MLP classifiers) and from its position in the web link graph
//     (TrustRank scores);
//   - OPR, ranking: order pharmacies by a legitimacy score
//     rank(p) = textRank(p) + networkRank(p), so human reviewers can
//     prioritize their work.
//
// # Quick start
//
//	world := pharmaverify.GenerateWorld(pharmaverify.WorldConfig{Seed: 1})
//	snap, err := pharmaverify.BuildSnapshot("crawl", world, world.Domains(), world.Labels())
//	// handle err
//	v, err := pharmaverify.Train(snap, pharmaverify.Options{})
//	// handle err
//	for _, a := range v.Assess(snap.Pharmacies) {
//	    fmt.Println(a.Domain, a.Legitimate, a.Rank)
//	}
//
// The synthetic world generator substitutes for the proprietary labeled
// crawls used in the paper; pointing the crawler at live HTTP instead
// only requires a different Fetcher. See DESIGN.md for the full system
// inventory and EXPERIMENTS.md for the reproduced evaluation.
package pharmaverify

import (
	"context"
	"io"

	"pharmaverify/internal/checkpoint"
	"pharmaverify/internal/core"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/webgen"
)

// Re-exported core types: the verification system.
type (
	// Verifier is a trained pharmacy-verification system (text model +
	// TrustRank network model).
	Verifier = core.Verifier
	// Options configures training.
	Options = core.Options
	// Assessment is the verdict for one pharmacy: OPC decision,
	// component scores and the OPR rank.
	Assessment = core.Assessment
	// ClassifierKind selects a learner (NBM, NB, SVM, J48, MLP).
	ClassifierKind = core.ClassifierKind
	// SamplingKind selects training-set rebalancing (NO, SUB, SMOTE).
	SamplingKind = core.SamplingKind
)

// Classifier kinds, with the paper's abbreviations.
const (
	NBM = core.NBM
	NB  = core.NB
	SVM = core.SVM
	J48 = core.J48
	MLP = core.MLP
)

// Sampling kinds.
const (
	NoSampling  = core.NoSampling
	Subsampling = core.Subsampling
	SMOTE       = core.SMOTE
)

// Re-exported data types.
type (
	// Snapshot is a labeled crawl of many pharmacies at one time.
	Snapshot = dataset.Snapshot
	// Pharmacy is one crawled, preprocessed pharmacy website.
	Pharmacy = dataset.Pharmacy
	// World is a generated synthetic pharmacy web (see internal/webgen).
	World = webgen.World
	// WorldConfig configures synthetic-web generation.
	WorldConfig = webgen.Config
	// Fetcher abstracts page retrieval; World implements it, and
	// crawler.HTTPFetcher provides a live-HTTP implementation.
	Fetcher = crawler.Fetcher
	// CrawlConfig bounds per-domain crawls (200 pages by default, as in
	// the paper) and configures the resilience machinery: retry budget,
	// backoff, fetch timeout and the per-domain failure budget.
	CrawlConfig = crawler.Config
	// RetryConfig controls per-request retries with exponential backoff
	// and deterministic jitter.
	RetryConfig = crawler.RetryConfig
	// CrawlStats is the crawl telemetry of a snapshot build (attempts,
	// retries, failures, breaker trips, bytes); see Snapshot.CrawlStats
	// and Verifier.TrainingCrawlStats.
	CrawlStats = crawler.Stats
	// FaultConfig seeds the deterministic fault-injection fetcher.
	FaultConfig = crawler.FaultConfig
	// FaultInjector wraps any Fetcher with seeded transient/permanent
	// failures and latency spikes, for resilience testing.
	FaultInjector = crawler.FaultInjector
	// BuildOptions configures a snapshot build: crawl bounds,
	// parallelism, auxiliary domains and an optional checkpoint store
	// for crash-safe resume.
	BuildOptions = dataset.BuildOptions
	// CheckpointStore journals completed units of work (domain crawls,
	// CV folds) with atomic writes and checksummed records, so an
	// interrupted run resumes from the last finished unit. Corrupt
	// entries are quarantined and recomputed, never trusted.
	CheckpointStore = checkpoint.Store
)

// OpenCheckpoint opens (creating if needed) a checkpoint store rooted
// at dir. Pass it in BuildOptions.Checkpoint to make snapshot builds
// resumable.
func OpenCheckpoint(dir string) (*CheckpointStore, error) {
	return checkpoint.Open(dir)
}

// NewFaultInjector wraps a fetcher with deterministic fault injection.
func NewFaultInjector(inner Fetcher, cfg FaultConfig) *FaultInjector {
	return crawler.NewFaultInjector(inner, cfg)
}

// Train builds a Verifier from a labeled snapshot.
func Train(snap *Snapshot, opts Options) (*Verifier, error) {
	return core.Train(snap, opts)
}

// TrainCtx is Train with cooperative cancellation, checked between the
// training stages. A cancelled training returns ctx's error and no
// verifier.
func TrainCtx(ctx context.Context, snap *Snapshot, opts Options) (*Verifier, error) {
	return core.TrainCtx(ctx, snap, opts)
}

// LoadVerifier restores a verifier persisted with (*Verifier).Save, so
// a model trained on reviewed ground truth can be shipped and applied
// to fresh crawls without re-training.
func LoadVerifier(r io.Reader) (*Verifier, error) {
	return core.LoadVerifier(r)
}

// RankAssessments sorts assessments by decreasing legitimacy (the OPR
// totally ordered set).
func RankAssessments(as []Assessment) []Assessment {
	return core.RankAssessments(as)
}

// GenerateWorld builds a deterministic synthetic pharmacy web.
func GenerateWorld(cfg WorldConfig) *World { return webgen.Generate(cfg) }

// Dataset1 and Dataset2 return the paper's dataset shapes (Table 1):
// 167 legitimate + 1292 illegitimate pharmacies, and the six-months-
// later snapshot with the same legitimate domains and 1275 fresh
// illegitimate ones.
func Dataset1(seed int64) WorldConfig { return webgen.Dataset1Config(seed) }
func Dataset2(seed int64) WorldConfig { return webgen.Dataset2Config(seed) }

// BuildSnapshot crawls the given domains through a fetcher (a World or
// a live-HTTP fetcher), preprocesses the text and extracts the link
// endpoints. labels maps every domain to 1 (legitimate) or 0.
func BuildSnapshot(name string, f Fetcher, domains []string, labels map[string]int) (*Snapshot, error) {
	return dataset.Build(name, f, domains, labels, crawler.Config{}, 16)
}

// BuildSnapshotWithConfig is BuildSnapshot with explicit crawl bounds
// and parallelism.
func BuildSnapshotWithConfig(name string, f Fetcher, domains []string, labels map[string]int, cfg CrawlConfig, parallel int) (*Snapshot, error) {
	return dataset.Build(name, f, domains, labels, cfg, parallel)
}

// BuildSnapshotWithAux additionally crawls auxiliary non-pharmacy
// domains (directories, portals) whose links into the pharmacy set can
// feed the network analysis — the paper's future-work extension (a).
func BuildSnapshotWithAux(name string, f Fetcher, domains []string, labels map[string]int, auxDomains []string) (*Snapshot, error) {
	return dataset.BuildWithAux(name, f, domains, labels, auxDomains, crawler.Config{}, 16)
}

// BuildSnapshotCtx is the fully-featured snapshot build: cooperative
// cancellation, graceful degradation and optional checkpointed resume.
// When ctx is cancelled or its deadline expires mid-build, it returns
// the partial snapshot assembled from the completed domains (shortfall
// in CrawlStats.DomainsMissing) together with ctx's error; with
// BuildOptions.Checkpoint set, a rerun with the same inputs resumes
// from the completed domains and produces a byte-identical snapshot.
func BuildSnapshotCtx(ctx context.Context, name string, f Fetcher, domains []string, labels map[string]int, opts BuildOptions) (*Snapshot, error) {
	return dataset.BuildCtx(ctx, name, f, domains, labels, opts)
}
