package mlp

import (
	"encoding/json"
	"fmt"
)

// networkState is the JSON wire form of a trained Network.
type networkState struct {
	Dim    int         `json:"dim"`
	Hidden int         `json:"hidden"`
	W1     [][]float64 `json:"w1"`
	B1     []float64   `json:"b1"`
	W2     []float64   `json:"w2"`
	B2     float64     `json:"b2"`
	Mean   []float64   `json:"mean"`
	Scale  []float64   `json:"scale"`
}

// MarshalJSON serializes a fitted network (weights and the feature
// standardization parameters).
func (n *Network) MarshalJSON() ([]byte, error) {
	if !n.fitted {
		return nil, fmt.Errorf("mlp: cannot marshal unfitted Network")
	}
	return json.Marshal(networkState{
		Dim:    n.dim,
		Hidden: n.hidden,
		W1:     n.w1,
		B1:     n.b1,
		W2:     n.w2,
		B2:     n.b2,
		Mean:   n.mean,
		Scale:  n.scale,
	})
}

// UnmarshalJSON restores a network persisted with MarshalJSON.
func (n *Network) UnmarshalJSON(data []byte) error {
	var s networkState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("mlp: decode Network: %w", err)
	}
	if len(s.W1) != s.Hidden || len(s.B1) != s.Hidden || len(s.W2) != s.Hidden {
		return fmt.Errorf("mlp: state layer sizes inconsistent")
	}
	for _, row := range s.W1 {
		if len(row) != s.Dim {
			return fmt.Errorf("mlp: state weight row has %d entries for dim %d", len(row), s.Dim)
		}
	}
	if len(s.Mean) != s.Dim || len(s.Scale) != s.Dim {
		return fmt.Errorf("mlp: state scaler size mismatch")
	}
	n.dim = s.Dim
	n.hidden = s.Hidden
	n.w1 = s.W1
	n.b1 = s.B1
	n.w2 = s.W2
	n.b2 = s.B2
	n.mean = s.Mean
	n.scale = s.Scale
	n.fitted = true
	return nil
}
