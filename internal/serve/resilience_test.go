package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pharmaverify/internal/core"
	"pharmaverify/internal/dataset"
)

// transitionLog collects breaker state changes for schedule assertions.
type transitionLog struct {
	mu sync.Mutex
	ts []breakerState
}

func (l *transitionLog) record(to breakerState) {
	l.mu.Lock()
	l.ts = append(l.ts, to)
	l.mu.Unlock()
}

func (l *transitionLog) states() []breakerState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]breakerState(nil), l.ts...)
}

func assertTransitions(t *testing.T, log *transitionLog, want ...breakerState) {
	t.Helper()
	got := log.states()
	if len(got) != len(want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d is %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestBreakerLifecycleDeterministic pins the full closed → open →
// half-open → closed schedule on an injected clock: every transition
// happens at an exactly predictable record/allow call.
func TestBreakerLifecycleDeterministic(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	log := &transitionLog{}
	b := newBreaker(4, 2, 10*time.Second, 2, clock.now, log.record)

	// Closed: successes keep it closed, the first failure is tolerated.
	for i := 0; i < 4; i++ {
		if ok, probe := b.allow(); !ok || probe {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.record(false, false)
	}
	b.record(true, false)
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after 1 failure in window = %v, want closed", got)
	}

	// The second failure within the window opens it.
	b.record(true, false)
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("state after 2 failures = %v, want open", got)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	clock.advance(9 * time.Second)
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker admitted a request 1s before cooldown lapse")
	}

	// Cooldown lapsed: the next request is the half-open probe; a second
	// concurrent request is still fast-failed while the probe is out.
	clock.advance(time.Second)
	ok, probe := b.allow()
	if !ok || !probe {
		t.Fatalf("post-cooldown allow = (%v, %v), want a probe", ok, probe)
	}
	if got := b.currentState(); got != breakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Two consecutive probe successes close it; one is not enough.
	b.record(false, true)
	if got := b.currentState(); got != breakerHalfOpen {
		t.Fatalf("state after 1 of 2 probes = %v, want half-open", got)
	}
	ok, probe = b.allow()
	if !ok || !probe {
		t.Fatal("half-open breaker denied the second probe")
	}
	b.record(false, true)
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after %d probe successes = %v, want closed", 2, got)
	}
	assertTransitions(t, log, breakerOpen, breakerHalfOpen, breakerClosed)

	// Recovery wiped the outage's failure history: one fresh failure
	// must not instantly reopen.
	if ok, probe := b.allow(); !ok || probe {
		t.Fatal("recovered breaker not serving normally")
	}
	b.record(true, false)
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after 1 failure post-recovery = %v, want closed", got)
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe restarts the
// cooldown from the probe's failure time.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	log := &transitionLog{}
	b := newBreaker(4, 1, 10*time.Second, 1, clock.now, log.record)

	b.record(true, false) // opens (threshold 1)
	clock.advance(10 * time.Second)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("cooldown lapse did not admit a probe")
	}
	b.record(true, true) // probe failed: reopen
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("reopened breaker admitted a request with no new cooldown")
	}
	clock.advance(10 * time.Second)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("second cooldown lapse did not admit a probe")
	}
	b.record(false, true)
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	assertTransitions(t, log, breakerOpen, breakerHalfOpen, breakerOpen, breakerHalfOpen, breakerClosed)
}

// TestBreakerWindowSlides: outcomes leaving the rolling window stop
// counting — interleaved failures below the in-window threshold never
// open the breaker, while the same total delivered consecutively does.
func TestBreakerWindowSlides(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	b := newBreaker(4, 3, time.Second, 1, clock.now, nil)

	// F S F S F S F S …: never more than 2 failures inside any 4-wide
	// window, so 8 total failures leave it closed.
	for i := 0; i < 16; i++ {
		b.record(i%2 == 0, false)
		if got := b.currentState(); got != breakerClosed {
			t.Fatalf("interleaved failures opened the breaker at outcome %d", i)
		}
	}
	// Flush the window clean, then three consecutive failures land
	// inside one window: open.
	for i := 0; i < 4; i++ {
		b.record(false, false)
	}
	b.record(true, false)
	b.record(true, false)
	if got := b.currentState(); got != breakerClosed {
		t.Fatal("breaker opened one failure early")
	}
	b.record(true, false)
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("3 consecutive failures left the breaker %v, want open", b.currentState())
	}
}

// TestBreakerCancelIsNeutral: a cancelled call (client went away)
// releases a probe slot without voting either way.
func TestBreakerCancelIsNeutral(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	b := newBreaker(4, 1, 10*time.Second, 1, clock.now, nil)
	b.record(true, false) // open
	clock.advance(10 * time.Second)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("no probe admitted after cooldown")
	}
	b.cancel(true) // the probe's caller disconnected: no verdict
	if got := b.currentState(); got != breakerHalfOpen {
		t.Fatalf("state after cancelled probe = %v, want half-open", got)
	}
	// The slot is free again for the next probe.
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("cancelled probe did not release the half-open slot")
	}
	b.record(false, true)
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBulkheadShedsBeyondCap(t *testing.T) {
	bh := newBulkhead(2)
	if !bh.tryAcquire() || !bh.tryAcquire() {
		t.Fatal("bulkhead denied slots under its cap")
	}
	if bh.tryAcquire() {
		t.Fatal("bulkhead admitted a third caller over a cap of 2")
	}
	if got := bh.inFlight(); got != 2 {
		t.Fatalf("inFlight = %d, want 2", got)
	}
	bh.release()
	if !bh.tryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

// scriptedSource is a fully controllable EvidenceSource for resilience
// tests: its behaviour is switched per phase, and hangs block on a
// test-owned gate (or the assessment context) so the timing of every
// failure is the test's to choose.
type scriptedSource struct {
	name string

	mu   sync.Mutex
	mode string  // "ok" | "abstain" | "err" | "hang" | "hang-ctx"
	prob float64 // the vote in "ok" mode

	gate  chan struct{} // releases "hang" mode assessments
	calls int
}

func newScriptedSource(name, mode string, prob float64) *scriptedSource {
	return &scriptedSource{name: name, mode: mode, prob: prob, gate: make(chan struct{})}
}

func (s *scriptedSource) setMode(mode string) {
	s.mu.Lock()
	s.mode = mode
	s.mu.Unlock()
}

func (s *scriptedSource) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *scriptedSource) Name() string  { return s.name }
func (s *scriptedSource) Healthy() bool { return true }

func (s *scriptedSource) Assess(ctx context.Context, _ *core.Verifier, _ dataset.Pharmacy) (Evidence, error) {
	s.mu.Lock()
	mode, prob := s.mode, s.prob
	s.calls++
	s.mu.Unlock()
	switch mode {
	case "ok":
		return Evidence{Prob: prob}, nil
	case "abstain":
		return Evidence{}, errNoEvidence
	case "err":
		return Evidence{}, errors.New("scripted backend failure")
	case "hang": // only the test's gate releases it — never the deadline
		<-s.gate
		return Evidence{}, errors.New("scripted hang released")
	default: // "hang-ctx": blocks until the assessment context ends
		<-ctx.Done()
		return Evidence{}, ctx.Err()
	}
}

// guardCfg is a minimal Config for direct guardedSource construction.
func guardCfg(clock *fakeClock) Config {
	return Config{
		SourceTimeout:     25 * time.Millisecond,
		SourceConcurrency: 1,
		BreakerWindow:     4,
		BreakerFailures:   1,
		BreakerCooldown:   10 * time.Second,
		BreakerProbes:     1,
		now:               clock.now,
	}
}

// TestGuardedSourceTimeoutTripsBreaker: an assessment that outlives the
// per-source deadline fails the caller promptly, counts as a timeout
// and a breaker failure, and keeps its bulkhead slot occupied until the
// source actually returns.
func TestGuardedSourceTimeoutTripsBreaker(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	src := newScriptedSource("scripted", "hang", 0)
	met := newMetrics()
	g := newGuardedSource(src, guardCfg(clock), met)

	_, err := g.Assess(context.Background(), nil, dataset.Pharmacy{Domain: "d"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung assessment returned %v, want a deadline error", err)
	}
	if got := labelCount(met.sourceTimeouts, "scripted"); got != 1 {
		t.Errorf("timeout counter = %d, want 1", got)
	}
	if got := g.BreakerState(); got != "open" {
		t.Errorf("breaker after timeout = %q, want open (threshold 1)", got)
	}
	if g.Healthy() {
		t.Error("tripped source still reports healthy")
	}
	// The abandoned assessment still owns the bulkhead slot: the hung
	// backend, not the daemon, pays for its own slowness.
	if got := g.bh.inFlight(); got != 1 {
		t.Errorf("bulkhead inFlight = %d while the source hangs, want 1", got)
	}
	close(src.gate)
	waitFor(t, func() bool { return g.bh.inFlight() == 0 }, "bulkhead slot released after the source returned")
}

// TestGuardedSourceShedsWhenSaturated: with every bulkhead slot stuck
// behind a hung backend, further assessments shed immediately (no
// queueing) and the shed counts as a breaker failure.
func TestGuardedSourceShedsWhenSaturated(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	src := newScriptedSource("scripted", "hang", 0)
	met := newMetrics()
	cfg := guardCfg(clock)
	cfg.SourceTimeout = time.Hour // nothing times out; saturation is the signal
	g := newGuardedSource(src, cfg, met)

	started := make(chan struct{})
	go func() {
		close(started)
		g.Assess(context.Background(), nil, dataset.Pharmacy{Domain: "d"})
	}()
	<-started
	waitFor(t, func() bool { return g.bh.inFlight() == 1 }, "first assessment occupies the only slot")

	_, err := g.Assess(context.Background(), nil, dataset.Pharmacy{Domain: "d"})
	if !errors.Is(err, errSourceSaturated) {
		t.Fatalf("saturated source returned %v, want errSourceSaturated", err)
	}
	if got := labelCount(met.sourceSheds, "scripted"); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	if got := g.BreakerState(); got != "open" {
		t.Errorf("breaker after shed = %q, want open (saturation is a failure)", got)
	}
	if _, err := g.Assess(context.Background(), nil, dataset.Pharmacy{Domain: "d"}); !errors.Is(err, errSourceOpen) {
		t.Fatalf("open breaker returned %v, want errSourceOpen", err)
	}
	if got := labelCount(met.breakerRejects, "scripted"); got != 1 {
		t.Errorf("breaker rejection counter = %d, want 1", got)
	}
	close(src.gate)
	waitFor(t, func() bool { return g.bh.inFlight() == 0 }, "bulkhead drained")
}

// TestGuardedSourceAbstentionIsHealthy: errNoEvidence is a healthy
// answer — even with the failure threshold at 1, repeated abstention
// never trips the breaker.
func TestGuardedSourceAbstentionIsHealthy(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	src := newScriptedSource("scripted", "abstain", 0)
	g := newGuardedSource(src, guardCfg(clock), newMetrics())
	for i := 0; i < 10; i++ {
		if _, err := g.Assess(context.Background(), nil, dataset.Pharmacy{Domain: "d"}); !errors.Is(err, errNoEvidence) {
			t.Fatalf("abstaining source returned %v", err)
		}
	}
	if got := g.BreakerState(); got != "closed" {
		t.Errorf("breaker after 10 abstentions = %q, want closed", got)
	}
}

// TestGuardedSourceParentCancelIsNeutral: the caller disconnecting
// mid-assessment gives the source no vote — a healthy backend must not
// trip because its clients are impatient.
func TestGuardedSourceParentCancelIsNeutral(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	src := newScriptedSource("scripted", "hang-ctx", 0)
	cfg := guardCfg(clock)
	cfg.SourceTimeout = time.Hour
	g := newGuardedSource(src, cfg, newMetrics())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Assess(ctx, nil, dataset.Pharmacy{Domain: "d"})
		done <- err
	}()
	waitFor(t, func() bool { return src.callCount() == 1 }, "assessment reached the source")
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled assessment returned %v, want context.Canceled", err)
	}
	if got := g.BreakerState(); got != "closed" {
		t.Errorf("breaker after client cancel = %q, want closed (threshold 1)", got)
	}
	waitFor(t, func() bool { return g.bh.inFlight() == 0 }, "bulkhead drained after cancel")
}

// labelCount reads one label's count off a labelCounter.
func labelCount(lc *labelCounter, label string) uint64 {
	keys, counts := lc.snapshot()
	for i, k := range keys {
		if k == label {
			return counts[i]
		}
	}
	return 0
}

// waitFor polls cond for up to 5s — for conditions that become true
// as background goroutines unwind.
func waitFor(t testing.TB, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for: %s", what)
}

// TestConfigResilienceDefaults pins the defaulting and clamping of the
// resilience knobs.
func TestConfigResilienceDefaults(t *testing.T) {
	c := Config{Fetcher: nil}.withDefaults()
	if c.SourceTimeout != 2*time.Second || c.SourceConcurrency != 8 ||
		c.BreakerWindow != 16 || c.BreakerFailures != 8 ||
		c.BreakerCooldown != 10*time.Second || c.BreakerProbes != 2 ||
		c.MinEvidence != 1 || c.MaxStale != time.Hour {
		t.Errorf("unexpected resilience defaults: %+v", c)
	}
	clamped := Config{BreakerWindow: 4, BreakerFailures: 9}.withDefaults()
	if clamped.BreakerFailures != 4 {
		t.Errorf("BreakerFailures = %d, want clamped to the window (4)", clamped.BreakerFailures)
	}
	off := Config{MaxStale: -1}.withDefaults()
	if off.MaxStale != 0 {
		t.Errorf("negative MaxStale = %v, want disabled (0)", off.MaxStale)
	}
}

// TestJitterIntervalBounds: every drawn tick interval stays within
// ±20% of the nominal period, and the same seed reproduces the same
// schedule (satellite: seeded refresh jitter).
func TestJitterIntervalBounds(t *testing.T) {
	draw := func(seed int64, n int) []time.Duration {
		rng := newJitterRNG(seed)
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = jitterInterval(rng, time.Second)
		}
		return out
	}
	a, b := draw(42, 500), draw(42, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 800*time.Millisecond || a[i] >= 1200*time.Millisecond {
			t.Fatalf("draw %d = %v, outside [0.8s, 1.2s)", i, a[i])
		}
	}
	c := draw(43, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jitter schedules")
	}
}

// TestBreakerStateStrings pins the /readyz and /metrics vocabulary.
func TestBreakerStateStrings(t *testing.T) {
	if breakerClosed.String() != "closed" || breakerHalfOpen.String() != "half-open" || breakerOpen.String() != "open" {
		t.Errorf("unexpected breaker state names: %v %v %v", breakerClosed, breakerHalfOpen, breakerOpen)
	}
	if !strings.Contains(errInsufficientEvidence.Error(), "insufficient evidence") {
		t.Errorf("quorum error text %q lost its meaning", errInsufficientEvidence)
	}
}
