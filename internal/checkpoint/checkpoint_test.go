package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openT(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Logf = t.Logf
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t)
	payload := []byte(`{"domain":"pharma1.example","pages":42}`)
	if err := s.Put("crawl", "pharma1.example", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("crawl", "pharma1.example")
	if err != nil || !ok {
		t.Fatalf("Get = ok=%v err=%v, want hit", ok, err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round-trip mismatch: %q", got)
	}
	if _, ok, _ := s.Get("crawl", "other.example"); ok {
		t.Fatal("Get of unknown key reported a hit")
	}
	if _, ok, _ := s.Get("fold", "pharma1.example"); ok {
		t.Fatal("kinds are not namespaced: fold Get hit a crawl record")
	}
}

func TestPutOverwrites(t *testing.T) {
	s := openT(t)
	for i := 0; i < 3; i++ {
		if err := s.Put("crawl", "d", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, _ := s.Get("crawl", "d")
	if !ok || string(got) != "v2" {
		t.Fatalf("Get after overwrites = %q ok=%v, want v2", got, ok)
	}
	if n := s.Count("crawl"); n != 1 {
		t.Fatalf("Count = %d, want 1 (overwrite must replace, not accumulate)", n)
	}
}

// recordFile returns the single .ckpt file of a kind.
func recordFile(t *testing.T, s *Store, kind string) string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(s.Dir(), kind))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			return filepath.Join(s.Dir(), kind, e.Name())
		}
	}
	t.Fatalf("no record file for kind %q", kind)
	return ""
}

func TestBitFlipQuarantine(t *testing.T) {
	s := openT(t)
	if err := s.Put("crawl", "dom", []byte("the payload bytes")); err != nil {
		t.Fatal(err)
	}
	p := recordFile(t, s, "crawl")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the payload region.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, ok, err := s.Get("crawl", "dom")
	if err != nil {
		t.Fatalf("corrupt record must be a miss, not an error: %v", err)
	}
	if ok {
		t.Fatalf("bit-flipped record still returned payload %q", got)
	}
	if s.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", s.Quarantined())
	}
	if _, err := os.Stat(p + ".quarantined"); err != nil {
		t.Fatalf("corrupt file was not renamed aside: %v", err)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still in place: %v", err)
	}

	// The unit is recomputable: a fresh Put lands and reads back.
	if err := s.Put("crawl", "dom", []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ = s.Get("crawl", "dom")
	if !ok || string(got) != "recomputed" {
		t.Fatalf("recomputed record = %q ok=%v", got, ok)
	}
}

func TestTruncationQuarantine(t *testing.T) {
	s := openT(t)
	if err := s.Put("fold", "cv-seed1-fold2", []byte(strings.Repeat("x", 1000))); err != nil {
		t.Fatal(err)
	}
	p := recordFile(t, s, "fold")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point must be detected, including cutting into
	// the header, the key, the payload and the checksum.
	for _, keep := range []int{0, 3, len(magic) + 4, len(data) / 3, len(data) - 40, len(data) - 1} {
		if err := os.WriteFile(p, data[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := s.Get("fold", "cv-seed1-fold2"); ok || err != nil {
			t.Fatalf("truncation to %d bytes: ok=%v err=%v, want quiet miss", keep, ok, err)
		}
		os.Remove(p + ".quarantined")
	}
}

func TestJSONHelpers(t *testing.T) {
	s := openT(t)
	type unit struct {
		Name  string
		Score float64
	}
	if err := s.PutJSON("fold", "k", unit{Name: "f1", Score: 0.93}); err != nil {
		t.Fatal(err)
	}
	var got unit
	ok, err := s.GetJSON("fold", "k", &got)
	if err != nil || !ok || got != (unit{Name: "f1", Score: 0.93}) {
		t.Fatalf("GetJSON = %+v ok=%v err=%v", got, ok, err)
	}

	// A record whose bytes verify but whose payload is not the expected
	// JSON is quarantined too.
	if err := s.Put("fold", "bad", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	ok, err = s.GetJSON("fold", "bad", &got)
	if ok || err != nil {
		t.Fatalf("GetJSON on non-JSON payload: ok=%v err=%v, want quiet miss", ok, err)
	}
	if s.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", s.Quarantined())
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := openT(t)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("domain-%d.example", i)
			if err := s.Put("crawl", key, []byte(key)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := s.Count("crawl"); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("domain-%d.example", i)
		got, ok, err := s.Get("crawl", key)
		if err != nil || !ok || string(got) != key {
			t.Fatalf("Get(%q) = %q ok=%v err=%v", key, got, ok, err)
		}
	}
}

func TestStrayTempFilesIgnored(t *testing.T) {
	s := openT(t)
	if err := s.Put("crawl", "d", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Put: a stray temp file in the kind dir.
	stray := filepath.Join(s.Dir(), "crawl", ".tmp-123456")
	if err := os.WriteFile(stray, []byte("half a reco"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("crawl", "d"); !ok || err != nil {
		t.Fatalf("stray temp file broke Get: ok=%v err=%v", ok, err)
	}
	if n := s.Count("crawl"); n != 1 {
		t.Fatalf("Count counted the temp file: %d", n)
	}
}
