package ml

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewVectorDropsZeros(t *testing.T) {
	v := NewVector([]float64{0, 1.5, 0, -2, 0})
	if !reflect.DeepEqual(v.Ind, []int32{1, 3}) {
		t.Errorf("Ind = %v", v.Ind)
	}
	if !reflect.DeepEqual(v.Val, []float64{1.5, -2}) {
		t.Errorf("Val = %v", v.Val)
	}
}

func TestFromMapSorted(t *testing.T) {
	v := FromMap(map[int]float64{5: 2, 1: 3, 9: -1, 4: 0})
	if !reflect.DeepEqual(v.Ind, []int32{1, 5, 9}) {
		t.Errorf("Ind = %v", v.Ind)
	}
}

func TestAt(t *testing.T) {
	v := NewVector([]float64{0, 7, 0, 9})
	if v.At(1) != 7 || v.At(3) != 9 || v.At(0) != 0 || v.At(100) != 0 {
		t.Errorf("At mismatch: %v", v)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	d := []float64{0, 1, 0, 0, 2.5, -3}
	got := NewVector(d).Dense(len(d))
	if !reflect.DeepEqual(got, d) {
		t.Errorf("Dense = %v, want %v", got, d)
	}
}

func TestDot(t *testing.T) {
	a := NewVector([]float64{1, 2, 0, 3})
	b := NewVector([]float64{0, 4, 5, 6})
	if got := Dot(a, b); got != 2*4+3*6 {
		t.Errorf("Dot = %v", got)
	}
}

func TestDotDense(t *testing.T) {
	a := NewVector([]float64{1, 2, 0, 3})
	w := []float64{10, 20, 30} // index 3 out of range of w
	if got := DotDense(a, w); got != 1*10+2*20 {
		t.Errorf("DotDense = %v", got)
	}
}

func TestSquaredDistance(t *testing.T) {
	a := NewVector([]float64{1, 0, 2})
	b := NewVector([]float64{0, 3, 2})
	if got := SquaredDistance(a, b); got != 1+9 {
		t.Errorf("SquaredDistance = %v", got)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := NewVector([]float64{1, 0, 4})
	b := NewVector([]float64{0, 2, 8})
	if d := SquaredDistance(Lerp(a, b, 0), a); d > 1e-12 {
		t.Errorf("Lerp(·,·,0) != a (d=%v)", d)
	}
	if d := SquaredDistance(Lerp(a, b, 1), b); d > 1e-12 {
		t.Errorf("Lerp(·,·,1) != b (d=%v)", d)
	}
	mid := Lerp(a, b, 0.5)
	if got := mid.At(2); math.Abs(got-6) > 1e-12 {
		t.Errorf("midpoint At(2) = %v, want 6", got)
	}
}

func TestScale(t *testing.T) {
	v := NewVector([]float64{1, -2})
	s := Scale(v, 3)
	if s.At(0) != 3 || s.At(1) != -6 {
		t.Errorf("Scale = %v", s)
	}
	if v.At(0) != 1 {
		t.Error("Scale mutated input")
	}
}

func TestDatasetSubsetAndCount(t *testing.T) {
	d := &Dataset{Dim: 2}
	d.Add(NewVector([]float64{1, 0}), Legitimate, "a")
	d.Add(NewVector([]float64{0, 1}), Illegitimate, "b")
	d.Add(NewVector([]float64{1, 1}), Illegitimate, "c")
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 || s.Y[0] != Illegitimate || s.Names[1] != "a" {
		t.Errorf("Subset wrong: %+v", s)
	}
	if d.CountClass(Illegitimate) != 2 || d.CountClass(Legitimate) != 1 {
		t.Error("CountClass wrong")
	}
}

func TestValidate(t *testing.T) {
	good := &Dataset{Dim: 3}
	good.Add(NewVector([]float64{1, 0, 2}), Legitimate, "")
	if err := good.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}

	bad := &Dataset{Dim: 1}
	bad.Add(Vector{Ind: []int32{0, 0}, Val: []float64{1, 2}}, Legitimate, "")
	if err := bad.Validate(); err == nil {
		t.Error("duplicate index accepted")
	}

	oob := &Dataset{Dim: 1}
	oob.Add(Vector{Ind: []int32{5}, Val: []float64{1}}, Legitimate, "")
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range index accepted")
	}

	badLabel := &Dataset{Dim: 1}
	badLabel.Add(Vector{}, 7, "")
	if err := badLabel.Validate(); err == nil {
		t.Error("label 7 accepted")
	}
}

func TestClassName(t *testing.T) {
	if ClassName(Legitimate) != "legitimate" || ClassName(Illegitimate) != "illegitimate" {
		t.Error("ClassName wrong")
	}
}

func TestPredictFromProb(t *testing.T) {
	if PredictFromProb(0.5) != Legitimate || PredictFromProb(0.49) != Illegitimate {
		t.Error("threshold wrong")
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if Sigmoid(40) <= 0.999 || Sigmoid(-40) >= 0.001 {
		t.Error("Sigmoid saturation wrong")
	}
	// Symmetry: s(-z) = 1 - s(z).
	for _, z := range []float64{-3, -0.5, 0.1, 2, 10} {
		if d := math.Abs(Sigmoid(-z) - (1 - Sigmoid(z))); d > 1e-12 {
			t.Errorf("asymmetric at %v (d=%v)", z, d)
		}
	}
}

// Property: Dot(a,b) computed sparsely equals the dense inner product.
func TestDotMatchesDenseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		dim := 1 + rng.Intn(30)
		da, db := make([]float64, dim), make([]float64, dim)
		for i := range da {
			if rng.Intn(2) == 0 {
				da[i] = rng.NormFloat64()
			}
			if rng.Intn(2) == 0 {
				db[i] = rng.NormFloat64()
			}
		}
		want := 0.0
		for i := range da {
			want += da[i] * db[i]
		}
		got := Dot(NewVector(da), NewVector(db))
		return math.Abs(got-want) < 1e-9
	}
	for i := 0; i < 300; i++ {
		if !f() {
			t.Fatal("sparse dot != dense dot")
		}
	}
}

// Property: SquaredDistance(a,b) == Norm2(a) + Norm2(b) - 2*Dot(a,b).
func TestDistanceIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gen := func() Vector {
		dim := 1 + rng.Intn(20)
		d := make([]float64, dim)
		for i := range d {
			if rng.Intn(2) == 0 {
				d[i] = rng.NormFloat64()
			}
		}
		return NewVector(d)
	}
	for i := 0; i < 300; i++ {
		a, b := gen(), gen()
		lhs := SquaredDistance(a, b)
		rhs := Norm2(a) + Norm2(b) - 2*Dot(a, b)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("identity violated: %v vs %v", lhs, rhs)
		}
	}
}

// Property (testing/quick): Dense→NewVector→Dense is the identity for
// vectors without NaN.
func TestSparseDenseRoundTripQuick(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		got := NewVector(vals).Dense(len(vals))
		return reflect.DeepEqual(got, append([]float64{}, vals...)) || len(vals) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
