package reverify

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"pharmaverify/internal/core"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/serve"
	"pharmaverify/internal/webgen"
)

// TestPipelineOverLiveServer runs one sweep against a real serve.Server
// over a synthetic world: corpus domains get re-verified through the
// actual crawl→fuse pipeline, their verdicts land in the cache, and the
// pipeline's gauges render on the server's own /metrics endpoint.
func TestPipelineOverLiveServer(t *testing.T) {
	world := webgen.Generate(webgen.Config{Seed: 11, NumLegit: 6, NumIllegit: 12, NetworkSize: 8})
	snap, err := dataset.Build("reverify-test", world, world.Domains(), world.Labels(), crawler.Config{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Train(snap, core.Options{Classifier: core.NBM, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(model, serve.Config{Fetcher: world})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	seed := world.Domains()[:4]
	if n := srv.AddCorpusDomains(seed); n != len(seed) {
		t.Fatalf("seeded %d corpus domains, want %d", n, len(seed))
	}

	p := New(srv, Config{MaxSweeps: 1, Logf: t.Logf})
	srv.RegisterMetrics(p.WriteMetrics)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.Sweeps() != 1 {
		t.Fatalf("Sweeps = %d, want 1", p.Sweeps())
	}
	if got := p.met.domainsOK.Load(); got != uint64(len(seed)) {
		t.Fatalf("re-verified %d domains, want %d", got, len(seed))
	}
	if term, _, n, ok := p.drift.scores(); !ok || n != len(seed) {
		t.Fatalf("drift window: n=%d ok=%v (term %v)", n, ok, term)
	}

	// The sweep's verdicts serve live traffic: /metrics shows the drift
	// gauges (via the RegisterMetrics hook) and the corpus gauge.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"pharmaverify_drift_term_score",
		"pharmaverify_drift_link_score",
		"pharmaverify_reverify_sweeps_total 1",
		"pharmaverify_corpus_domains 4",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// sweepDrift trains a model on the before world, sweeps the given world
// through a live server, and returns the resulting drift scores.
func sweepDrift(t *testing.T, trainWorld, liveWorld *webgen.World) (term, link float64) {
	t.Helper()
	snap, err := dataset.Build("drift-test", trainWorld, trainWorld.Domains(), trainWorld.Labels(), crawler.Config{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Train(snap, core.Options{Classifier: core.NBM, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(model, serve.Config{Fetcher: liveWorld})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.AddCorpusDomains(liveWorld.Domains())

	p := New(srv, Config{MaxSweeps: 1, Logf: t.Logf})
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	term, link, _, ok := p.drift.scores()
	if !ok {
		t.Fatal("drift baseline missing")
	}
	return term, link
}

// TestDriftScoresRiseOnDriftedWorld closes the loop between webgen's
// epoch-drift knobs and the drift monitor: sweeping a DriftedPair's
// after world (vocabulary restyled, link farms churned) must score
// measurably more term and link drift than re-sweeping the training
// epoch itself.
func TestDriftScoresRiseOnDriftedWorld(t *testing.T) {
	before, after := webgen.DriftedPair(webgen.Config{
		Seed: 11, NumLegit: 6, NumIllegit: 12, NetworkSize: 6,
		VocabShift: 0.8, LinkChurn: 0.8, BurstFraction: 0.5,
	})
	baseTerm, baseLink := sweepDrift(t, before, before)
	driftTerm, driftLink := sweepDrift(t, before, after)
	if driftTerm <= baseTerm {
		t.Fatalf("term drift did not rise: base %.4f, drifted %.4f", baseTerm, driftTerm)
	}
	if driftLink <= baseLink+0.05 {
		t.Fatalf("link drift did not rise: base %.4f, drifted %.4f", baseLink, driftLink)
	}
}
