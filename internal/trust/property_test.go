package trust

import (
	"math"
	"math/rand"
	"testing"
)

func randomGraph(rng *rand.Rand, nodes, edges int) *Graph {
	g := NewGraph()
	names := make([]string, nodes)
	for i := range names {
		names[i] = "n" + itoa(i)
		g.Node(names[i])
	}
	for i := 0; i < edges; i++ {
		g.AddEdge(names[rng.Intn(nodes)], names[rng.Intn(nodes)])
	}
	return g
}

// Property: PageRank is a probability distribution (non-negative,
// sums to 1) on any graph.
func TestPageRankDistributionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 2+rng.Intn(30), rng.Intn(80))
		r := PageRank(g, Config{})
		var sum float64
		for _, v := range r {
			if v < 0 {
				t.Fatalf("negative rank %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("ranks sum to %v", sum)
		}
	}
}

// Property: TrustRank scores are in [0,1] after max-normalization, and
// at least one node scores exactly 1.
func TestTrustRankNormalizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(80))
		seeds := map[string]float64{}
		for i := 0; i < 1+rng.Intn(3); i++ {
			seeds["n"+itoa(rng.Intn(n))] = 1
		}
		r := TrustRank(g, seeds, Config{})
		var max float64
		for _, v := range r {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("score %v out of [0,1]", v)
			}
			if v > max {
				max = v
			}
		}
		if math.Abs(max-1) > 1e-9 {
			t.Fatalf("max score %v, want 1", max)
		}
	}
}

// Property: Reverse is an involution on degrees — Reverse(Reverse(g))
// has the same in/out degrees as g.
func TestReverseInvolutionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 2+rng.Intn(20), rng.Intn(60))
		rr := g.Reverse().Reverse()
		if rr.Len() != g.Len() || rr.Edges() != g.Edges() {
			t.Fatal("node/edge counts changed")
		}
		for id := 0; id < g.Len(); id++ {
			name := g.Name(id)
			rid := rr.ID(name)
			if g.OutDegree(id) != rr.OutDegree(rid) || g.InDegree(id) != rr.InDegree(rid) {
				t.Fatalf("degrees changed for %s", name)
			}
		}
	}
}

// Property: in the undirected graph every node has equal in- and
// out-degree.
func TestUndirectedSymmetricDegreesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 2+rng.Intn(20), rng.Intn(60))
		u := g.Undirected()
		for id := 0; id < u.Len(); id++ {
			if u.OutDegree(id) != u.InDegree(id) {
				t.Fatalf("asymmetric degrees at %s", u.Name(id))
			}
		}
	}
}

// Property: adding trust seeds never decreases a seed's own score
// relative to an unseeded (PageRank) run's ordering — seeds always end
// up at the top of the normalized ranking.
func TestSeedsRankHighProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(20)
		g := randomGraph(rng, n, n*2)
		seed := "n" + itoa(rng.Intn(n))
		r := TrustRank(g, map[string]float64{seed: 1}, Config{})
		s := NewScores(g, r)
		// The seed holds the (1-α) teleport share; only nodes that
		// accumulate flow from it can rival it. It must stay above the
		// median.
		below := 0
		for id := 0; id < g.Len(); id++ {
			if r[id] < s.Of(seed) {
				below++
			}
		}
		if below < n/2-1 {
			t.Fatalf("seed %s below median: only %d/%d nodes below it", seed, below, n)
		}
	}
}

// Property: Endpoint never returns a string with scheme, slash, or
// whitespace, for arbitrary byte-string inputs.
func TestEndpointOutputCleanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	alphabet := []byte("abc.:/?#@ \t%&=+h")
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(30)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		ep, ok := Endpoint(string(buf))
		if !ok {
			continue
		}
		for _, c := range ep {
			switch c {
			case '/', ':', '?', '#', ' ', '\t', '@':
				t.Fatalf("Endpoint(%q) = %q contains %q", buf, ep, c)
			}
		}
	}
}
