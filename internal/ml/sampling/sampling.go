// Package sampling implements the class-rebalancing techniques the paper
// evaluates for the strongly imbalanced pharmacy datasets (12%
// legitimate vs 88% illegitimate): random undersampling of the majority
// class ("SUB"), random oversampling with replacement, and SMOTE
// synthetic minority oversampling (Chawla et al., JAIR 2002).
//
// All functions leave the input dataset untouched and return a new one;
// they are designed to plug into eval.CrossValidate as Samplers so that
// rebalancing only ever touches the training split.
package sampling

import (
	"math/rand"
	"sort"

	"pharmaverify/internal/ml"
)

// minorityMajority identifies the minority and majority classes of ds.
func minorityMajority(ds *ml.Dataset) (minority, majority int) {
	if ds.CountClass(ml.Legitimate) <= ds.CountClass(ml.Illegitimate) {
		return ml.Legitimate, ml.Illegitimate
	}
	return ml.Illegitimate, ml.Legitimate
}

func classIndices(ds *ml.Dataset, y int) []int {
	var idx []int
	for i, l := range ds.Y {
		if l == y {
			idx = append(idx, i)
		}
	}
	return idx
}

// Undersample randomly removes majority-class instances until both
// classes have the same size (the paper's "SUB" / Weka SpreadSubsample
// with distribution 1.0).
func Undersample(ds *ml.Dataset, rng *rand.Rand) *ml.Dataset {
	minC, majC := minorityMajority(ds)
	minIdx := classIndices(ds, minC)
	majIdx := classIndices(ds, majC)
	if len(minIdx) == 0 || len(majIdx) == 0 {
		return ds.Subset(allIndices(ds))
	}
	rng.Shuffle(len(majIdx), func(i, j int) { majIdx[i], majIdx[j] = majIdx[j], majIdx[i] })
	keep := append(append([]int{}, minIdx...), majIdx[:len(minIdx)]...)
	sort.Ints(keep)
	return ds.Subset(keep)
}

// Oversample duplicates random minority-class instances with
// replacement ("data space" oversampling) until both classes have the
// same size.
func Oversample(ds *ml.Dataset, rng *rand.Rand) *ml.Dataset {
	minC, majC := minorityMajority(ds)
	minIdx := classIndices(ds, minC)
	majIdx := classIndices(ds, majC)
	out := ds.Subset(allIndices(ds))
	if len(minIdx) == 0 {
		return out
	}
	for i := len(minIdx); i < len(majIdx); i++ {
		src := minIdx[rng.Intn(len(minIdx))]
		name := ""
		if src < len(ds.Names) {
			name = ds.Names[src]
		}
		out.Add(ds.X[src], minC, name)
	}
	return out
}

// SMOTEConfig configures the SMOTE oversampler.
type SMOTEConfig struct {
	// K is the number of nearest neighbors considered (default 5).
	K int
	// Percent is the amount of oversampling in percent of the minority
	// size (e.g. 200 doubles it twice). When 0, SMOTE balances the two
	// classes exactly.
	Percent int
}

// SMOTE generates synthetic minority-class examples by interpolating
// between each minority instance and its k nearest minority neighbors,
// operating in feature space as described by Chawla et al. The returned
// dataset contains all original instances plus the synthetic ones
// (named "smote:<n>").
func SMOTE(ds *ml.Dataset, rng *rand.Rand, cfg SMOTEConfig) *ml.Dataset {
	k := cfg.K
	if k <= 0 {
		k = 5
	}
	minC, majC := minorityMajority(ds)
	minIdx := classIndices(ds, minC)
	majIdx := classIndices(ds, majC)
	out := ds.Subset(allIndices(ds))
	if len(minIdx) < 2 {
		return out
	}

	need := cfg.Percent * len(minIdx) / 100
	if cfg.Percent == 0 {
		need = len(majIdx) - len(minIdx)
	}
	if need <= 0 {
		return out
	}
	if k >= len(minIdx) {
		k = len(minIdx) - 1
	}

	neigh := nearestNeighbors(ds, minIdx, k)
	for s := 0; s < need; s++ {
		i := s % len(minIdx)
		src := minIdx[i]
		nn := neigh[i][rng.Intn(len(neigh[i]))]
		t := rng.Float64()
		synth := ml.Lerp(ds.X[src], ds.X[nn], t)
		out.Add(synth, minC, "smote")
	}
	return out
}

// nearestNeighbors returns, for each position i in idx, the dataset
// indices of the k nearest other members of idx under Euclidean
// distance.
func nearestNeighbors(ds *ml.Dataset, idx []int, k int) [][]int {
	type distIdx struct {
		d float64
		j int
	}
	out := make([][]int, len(idx))
	for i, a := range idx {
		cands := make([]distIdx, 0, len(idx)-1)
		for _, b := range idx {
			if a == b {
				continue
			}
			cands = append(cands, distIdx{ml.SquaredDistance(ds.X[a], ds.X[b]), b})
		}
		sort.Slice(cands, func(x, y int) bool {
			if cands[x].d != cands[y].d {
				return cands[x].d < cands[y].d
			}
			return cands[x].j < cands[y].j
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		nn := make([]int, len(cands))
		for j, c := range cands {
			nn[j] = c.j
		}
		out[i] = nn
	}
	return out
}

func allIndices(ds *ml.Dataset) []int {
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Samplers keyed by the abbreviations used in the paper's tables.
// "NO" is the natural distribution (nil sampler).
var (
	// SUB is the undersampling Sampler.
	SUB = func(ds *ml.Dataset, rng *rand.Rand) *ml.Dataset { return Undersample(ds, rng) }
	// SMOTEBalanced is the SMOTE Sampler that balances the two classes.
	SMOTEBalanced = func(ds *ml.Dataset, rng *rand.Rand) *ml.Dataset {
		return SMOTE(ds, rng, SMOTEConfig{K: 5})
	}
)
