package eval_test

import (
	"fmt"

	"pharmaverify/internal/eval"
)

func ExampleAUC() {
	// Scores for two legitimate (label 1) and two illegitimate (label 0)
	// pharmacies; one ranking violation.
	scores := []float64{0.9, 0.3, 0.5, 0.1}
	labels := []int{1, 1, 0, 0}
	fmt.Printf("%.2f\n", eval.AUC(scores, labels))
	// Output: 0.75
}

func ExamplePairwiseOrderedness() {
	// A perfect legitimacy ranking has no (legitimate, illegitimate)
	// pair out of order.
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	fmt.Printf("%.3f\n", eval.PairwiseOrderedness(scores, labels))
	// Output: 1.000
}

func ExampleConfusion() {
	var c eval.Confusion
	c.Observe(1, 1) // legitimate classified legitimate
	c.Observe(1, 0) // legitimate missed
	c.Observe(0, 0) // illegitimate caught
	c.Observe(0, 0)
	fmt.Printf("accuracy %.2f, legit recall %.2f\n", c.Accuracy(), c.RecallLegitimate())
	// Output: accuracy 0.75, legit recall 0.50
}
