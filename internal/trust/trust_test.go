package trust

import (
	"math"
	"reflect"
	"testing"
)

func TestEndpoint(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"http://www.medicalnewstoday.com/articles/238663.php", "medicalnewstoday.com", true},
		{"http://www.fda.gov/forconsumers/consumerupdates/ucm149202.htm", "fda.gov", true},
		{"https://twitter.com/acme", "twitter.com", true},
		{"//cdn.example.com/x.js", "example.com", true},
		{"http://shop.example.co.uk/buy", "example.co.uk", true},
		{"http://example.com:8080/x", "example.com", true},
		{"http://usr:pwd" + "\u0040" + "example.com/", "example.com", true},
		{"HTTP://WWW.EXAMPLE.COM", "example.com", true},
		{"/relative/path", "", false},
		{"#anchor", "", false},
		{"mailto:[email protected]", "", false},
		{"javascript:void(0)", "", false},
		{"localhost", "", false},
		{"", "", false},
		{"ftp://files.archive.org/pub", "archive.org", true},
		{"http://example.com.", "example.com", true},
	}
	for _, c := range cases {
		got, ok := Endpoint(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("Endpoint(%q) = %q,%v want %q,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestOutboundEndpoints(t *testing.T) {
	links := []string{
		"http://www.fda.gov/a",
		"http://fda.gov/b",         // duplicate endpoint
		"https://pharma.example/c", // own domain
		"/internal/page",           // relative
		"http://twitter.com/x",
	}
	got := OutboundEndpoints(links, "pharma.example")
	want := []string{"fda.gov", "twitter.com"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("OutboundEndpoints = %v, want %v", got, want)
	}
}

func TestBuildGraphAlgorithm1(t *testing.T) {
	g := BuildGraph(map[string][]string{
		"legit.example":   {"fda.gov", "twitter.com"},
		"illegit.example": {"wikipedia.org"},
	})
	if g.Len() != 5 {
		t.Errorf("nodes = %d, want 5", g.Len())
	}
	if g.Edges() != 3 {
		t.Errorf("edges = %d, want 3", g.Edges())
	}
	if g.OutDegree(g.ID("legit.example")) != 2 {
		t.Error("out-degree wrong")
	}
	if g.InDegree(g.ID("fda.gov")) != 1 {
		t.Error("in-degree wrong")
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	r := PageRank(g, Config{})
	for i := 1; i < 3; i++ {
		if math.Abs(r[i]-r[0]) > 1e-6 {
			t.Errorf("cycle ranks differ: %v", r)
		}
	}
	var sum float64
	for _, v := range r {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v", sum)
	}
}

func TestPageRankPrefersHighInDegree(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "hub")
	g.AddEdge("b", "hub")
	g.AddEdge("c", "hub")
	g.AddEdge("hub", "a")
	r := PageRank(g, Config{})
	hub := g.ID("hub")
	for _, n := range []string{"b", "c"} {
		if r[g.ID(n)] >= r[hub] {
			t.Errorf("hub rank %v not above %s rank %v", r[hub], n, r[g.ID(n)])
		}
	}
}

func TestTrustRankPropagation(t *testing.T) {
	// seed → good → goodchild; bad is disconnected from the seed.
	g := NewGraph()
	g.AddEdge("seed", "good")
	g.AddEdge("good", "goodchild")
	g.AddEdge("bad", "badhub")
	r := TrustRank(g, map[string]float64{"seed": 1}, Config{})
	s := NewScores(g, r)
	if s.Of("good") <= s.Of("bad") {
		t.Errorf("good %v must out-rank bad %v", s.Of("good"), s.Of("bad"))
	}
	if s.Of("goodchild") <= s.Of("badhub") {
		t.Errorf("goodchild %v must out-rank badhub %v", s.Of("goodchild"), s.Of("badhub"))
	}
	if s.Of("seed") != 1 {
		t.Errorf("max-normalized seed = %v, want 1", s.Of("seed"))
	}
}

func TestTrustRankDecaysWithDistance(t *testing.T) {
	g := NewGraph()
	g.AddEdge("seed", "d1")
	g.AddEdge("d1", "d2")
	g.AddEdge("d2", "d3")
	r := TrustRank(g, map[string]float64{"seed": 1}, Config{})
	s := NewScores(g, r)
	if !(s.Of("d1") > s.Of("d2") && s.Of("d2") > s.Of("d3")) {
		t.Errorf("trust must decay with distance: %v %v %v", s.Of("d1"), s.Of("d2"), s.Of("d3"))
	}
}

func TestTrustRankApproximateIsolation(t *testing.T) {
	// Figure 3 scenario: good cluster and bad cluster with one good→bad
	// leak; bad nodes must still end up with much less trust.
	g := NewGraph()
	g.AddEdge("g1", "g2")
	g.AddEdge("g2", "g3")
	g.AddEdge("g3", "g1")
	g.AddEdge("b1", "b2")
	g.AddEdge("b2", "b3")
	g.AddEdge("b3", "b1")
	g.AddEdge("g3", "b1") // single leak
	r := TrustRank(g, map[string]float64{"g1": 1, "g2": 1}, Config{})
	s := NewScores(g, r)
	if s.Of("b2") >= s.Of("g3") {
		t.Errorf("bad cluster b2=%v should trail good g3=%v", s.Of("b2"), s.Of("g3"))
	}
}

func TestTrustRankEmptySeedFallsBackToPageRank(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b")
	r := TrustRank(g, nil, Config{})
	if len(r) != 2 {
		t.Fatal("wrong length")
	}
	for _, v := range r {
		if v <= 0 {
			t.Error("fallback ranks must be positive")
		}
	}
}

func TestAntiTrustRankFlowsBackwards(t *testing.T) {
	// affiliate → hub. Seeding distrust at the hub must reach the
	// affiliate (it links TO a bad page), not the other way around.
	g := NewGraph()
	g.AddEdge("affiliate", "hub")
	g.AddEdge("innocent", "fda.gov")
	r := AntiTrustRank(g, map[string]float64{"hub": 1}, Config{})
	s := NewScores(g, r)
	if s.Of("affiliate") <= s.Of("innocent") {
		t.Errorf("affiliate distrust %v must exceed innocent %v", s.Of("affiliate"), s.Of("innocent"))
	}
}

func TestUndirectedFlowsBothWays(t *testing.T) {
	g := NewGraph()
	g.AddEdge("legitseed", "fda.gov")
	g.AddEdge("newpharm", "fda.gov")
	g.AddEdge("shady", "spamhub.biz")

	directed := TrustRank(g, map[string]float64{"legitseed": 1}, Config{})
	sd := NewScores(g, directed)
	// On the directed graph a test pharmacy that links to fda.gov gets
	// nothing back.
	if sd.Of("newpharm") != 0 {
		t.Errorf("directed: newpharm = %v, want 0", sd.Of("newpharm"))
	}

	u := g.Undirected()
	r := TrustRank(u, map[string]float64{"legitseed": 1}, Config{})
	su := NewScores(u, r)
	if su.Of("newpharm") <= su.Of("shady") {
		t.Errorf("undirected: newpharm %v must out-rank shady %v", su.Of("newpharm"), su.Of("shady"))
	}
}

func TestReverse(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b")
	r := g.Reverse()
	if r.OutDegree(r.ID("b")) != 1 || r.OutDegree(r.ID("a")) != 0 {
		t.Error("Reverse wrong")
	}
}

func TestTopLinked(t *testing.T) {
	outbound := map[string][]string{
		"p1": {"fda.gov", "twitter.com", "fda.gov"}, // fda counted once per source
		"p2": {"fda.gov"},
		"p3": {"twitter.com", "wikipedia.org"},
	}
	got := TopLinked(outbound, 2)
	want := []string{"fda.gov", "twitter.com"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopLinked = %v, want %v", got, want)
	}
}

func TestScoresUnknownDomain(t *testing.T) {
	g := NewGraph()
	g.Node("a")
	s := NewScores(g, []float64{0.7})
	if s.Of("missing") != 0 {
		t.Error("unknown domain must score 0")
	}
}

func TestGraphDeterministicIDs(t *testing.T) {
	a := BuildGraph(map[string][]string{"z.com": {"x.org"}, "a.com": {"x.org"}})
	b := BuildGraph(map[string][]string{"a.com": {"x.org"}, "z.com": {"x.org"}})
	if a.ID("a.com") != b.ID("a.com") || a.ID("x.org") != b.ID("x.org") {
		t.Error("BuildGraph not deterministic across map order")
	}
}

func BenchmarkTrustRank(b *testing.B) {
	g := NewGraph()
	for i := 0; i < 2000; i++ {
		src := "pharm" + itoa(i)
		g.AddEdge(src, "hub"+itoa(i%20))
		g.AddEdge(src, "common.example")
	}
	seeds := map[string]float64{}
	for i := 0; i < 100; i++ {
		seeds["pharm"+itoa(i)] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrustRank(g, seeds, Config{})
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
