package eval

import (
	"math"
	"math/rand"
	"testing"
)

// Property: AUC is invariant under strictly monotone transformations of
// the scores (it is a rank statistic).
func TestAUCMonotoneInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(60)
		scores := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Intn(2)
		}
		a := AUC(scores, labels)
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(s/3) + 7 // strictly increasing
		}
		b := AUC(transformed, labels)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("AUC not rank-invariant: %v vs %v", a, b)
		}
	}
}

// Property: AUC(scores) + AUC(-scores) = 1 when there are no ties.
func TestAUCComplementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(60)
		scores := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			scores[i] = rng.Float64() // ties almost surely absent
			labels[i] = rng.Intn(2)
		}
		neg := make([]float64, n)
		for i, s := range scores {
			neg[i] = -s
		}
		hasPos, hasNeg := false, false
		for _, y := range labels {
			if y == 1 {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			continue
		}
		if s := AUC(scores, labels) + AUC(neg, labels); math.Abs(s-1) > 1e-9 {
			t.Fatalf("AUC complement = %v", s)
		}
	}
}

// Property: pairord is invariant under strictly monotone score
// transformations, like AUC.
func TestPairordMonotoneInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(40)
		scores := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			scores[i] = math.Round(rng.NormFloat64()*4) / 4 // include ties
			labels[i] = rng.Intn(2)
		}
		a := PairwiseOrderedness(scores, labels)
		tr := make([]float64, n)
		for i, s := range scores {
			tr[i] = 3*s + 100
		}
		b := PairwiseOrderedness(tr, labels)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("pairord not rank-invariant: %v vs %v", a, b)
		}
	}
}

// Property: without ties, pairord equals AUC (both count the same
// concordant pairs).
func TestPairordEqualsAUCWithoutTiesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(60)
		scores := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = rng.Intn(2)
		}
		hasPos, hasNeg := false, false
		for _, y := range labels {
			if y == 1 {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			continue
		}
		a, p := AUC(scores, labels), PairwiseOrderedness(scores, labels)
		if math.Abs(a-p) > 1e-9 {
			t.Fatalf("pairord %v != AUC %v without ties", p, a)
		}
	}
}

// Property: stratified folds partition the index set exactly, for any
// class balance and k.
func TestStratifiedKFoldPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 50; trial++ {
		n := 6 + rng.Intn(100)
		k := 2 + rng.Intn(4)
		ds := imbalancedDataset(n, 1+rng.Intn(n-1), rng.Int63())
		folds := StratifiedKFold(ds, k, rng.Int63())
		seen := make([]bool, n)
		count := 0
		for _, fold := range folds {
			for _, i := range fold {
				if seen[i] {
					t.Fatal("index in two folds")
				}
				seen[i] = true
				count++
			}
		}
		if count != n {
			t.Fatalf("folds cover %d of %d", count, n)
		}
	}
}

// Property: the confusion matrix's per-class recalls weighted by class
// prevalence reconstruct overall accuracy.
func TestConfusionAccuracyDecompositionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 100; trial++ {
		var c Confusion
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			c.Observe(rng.Intn(2), rng.Intn(2))
		}
		pos := c.TP + c.FN
		neg := c.TN + c.FP
		want := (c.RecallLegitimate()*float64(pos) + c.RecallIllegitimate()*float64(neg)) / float64(pos+neg)
		if math.Abs(want-c.Accuracy()) > 1e-9 {
			t.Fatalf("decomposition %v != accuracy %v", want, c.Accuracy())
		}
	}
}
