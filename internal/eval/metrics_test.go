package eval

import (
	"math"
	"math/rand"
	"testing"

	"pharmaverify/internal/ml"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Observe(ml.Legitimate, ml.Legitimate)     // TP
	c.Observe(ml.Legitimate, ml.Illegitimate)   // FN
	c.Observe(ml.Illegitimate, ml.Legitimate)   // FP
	c.Observe(ml.Illegitimate, ml.Illegitimate) // TN
	c.Observe(ml.Illegitimate, ml.Illegitimate) // TN
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("counts wrong: %+v", c)
	}
	if got := c.Accuracy(); math.Abs(got-3.0/5.0) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.PrecisionLegitimate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PrecisionLegitimate = %v", got)
	}
	if got := c.RecallLegitimate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RecallLegitimate = %v", got)
	}
	if got := c.PrecisionIllegitimate(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("PrecisionIllegitimate = %v", got)
	}
	if got := c.RecallIllegitimate(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("RecallIllegitimate = %v", got)
	}
}

func TestConfusionEmpty(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.PrecisionLegitimate() != 0 || c.F1Legitimate() != 0 {
		t.Error("empty confusion must report zeros, not NaN")
	}
}

func TestAUCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	if got := AUC(scores, labels); got != 1 {
		t.Errorf("AUC = %v, want 1", got)
	}
}

func TestAUCInverted(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{1, 1, 0, 0}
	if got := AUC(scores, labels); got != 0 {
		t.Errorf("AUC = %v, want 0", got)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	if got := AUC(scores, labels); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("AUC with all ties = %v, want 0.5", got)
	}
}

func TestAUCSingleClass(t *testing.T) {
	if got := AUC([]float64{0.1, 0.9}, []int{0, 0}); got != 0.5 {
		t.Errorf("single-class AUC = %v, want 0.5", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// One violation among 2x2 = 4 pairs: AUC = 3/4 ... construct:
	// pos scores {0.9, 0.3}, neg scores {0.5, 0.1}.
	// pairs: (0.9>0.5) ok, (0.9>0.1) ok, (0.3<0.5) violation, (0.3>0.1) ok.
	got := AUC([]float64{0.9, 0.3, 0.5, 0.1}, []int{1, 1, 0, 0})
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
}

func TestAUCAgreesWithCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 30 + rng.Intn(50)
		scores := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*10) / 10 // force ties
			labels[i] = rng.Intn(2)
		}
		a := AUC(scores, labels)
		b := AUCFromCurve(ROC(scores, labels))
		// With midrank ties both formulations agree.
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("rank AUC %v != trapezoid AUC %v", a, b)
		}
	}
}

func TestROCEndpoints(t *testing.T) {
	curve := ROC([]float64{0.9, 0.1}, []int{1, 0})
	first, last := curve[0], curve[len(curve)-1]
	if first.TPR != 0 || first.FPR != 0 {
		t.Errorf("curve must start at origin: %+v", first)
	}
	if last.TPR != 1 || last.FPR != 1 {
		t.Errorf("curve must end at (1,1): %+v", last)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(std-2.138089935299395) > 1e-9 {
		t.Errorf("std = %v", std)
	}
}

func TestConfidenceInterval95(t *testing.T) {
	if ci := ConfidenceInterval95([]float64{0.5, 0.5, 0.5}); ci != 0 {
		t.Errorf("constant folds must have zero CI, got %v", ci)
	}
	ci := ConfidenceInterval95([]float64{0.90, 0.92, 0.94})
	if ci <= 0 || ci > 0.05 {
		t.Errorf("CI = %v out of plausible range", ci)
	}
}

func TestPairwiseOrderednessPerfect(t *testing.T) {
	got := PairwiseOrderedness([]float64{0.9, 0.8, 0.2, 0.1}, []int{1, 1, 0, 0})
	if got != 1 {
		t.Errorf("pairord = %v, want 1", got)
	}
}

func TestPairwiseOrderednessWorst(t *testing.T) {
	got := PairwiseOrderedness([]float64{0.1, 0.9}, []int{1, 0})
	if got != 0 {
		t.Errorf("pairord = %v, want 0", got)
	}
}

func TestPairwiseOrderednessTiesAreViolations(t *testing.T) {
	// Equal score between a legit and an illegit instance counts as a
	// violation per the paper's I(p,q) definition.
	got := PairwiseOrderedness([]float64{0.5, 0.5}, []int{1, 0})
	if got != 0 {
		t.Errorf("pairord with tie = %v, want 0", got)
	}
}

func TestPairwiseOrderednessMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(40)
		scores := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*8) / 8
			labels[i] = rng.Intn(2)
		}
		want := bruteForcePairord(scores, labels)
		got := PairwiseOrderedness(scores, labels)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("pairord = %v, brute force = %v (scores=%v labels=%v)", got, want, scores, labels)
		}
	}
}

func bruteForcePairord(scores []float64, labels []int) float64 {
	var total, viol float64
	for i := range scores {
		for j := range scores {
			if i == j || labels[i] == labels[j] {
				continue
			}
			// Count unordered pairs once.
			if i > j {
				continue
			}
			total++
			p, q := i, j
			// I(p,q)=1 iff rank(p)>=rank(q) and O(p)<O(q), or vice versa.
			if scores[p] >= scores[q] && labels[p] < labels[q] {
				viol++
			} else if scores[p] <= scores[q] && labels[p] > labels[q] {
				viol++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return (total - viol) / total
}

func TestPairwiseOrderednessSingleClass(t *testing.T) {
	if got := PairwiseOrderedness([]float64{0.3, 0.7}, []int{0, 0}); got != 1 {
		t.Errorf("single-class pairord = %v, want 1", got)
	}
}
