package featcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesPerKey(t *testing.T) {
	c := New(8)
	builds := 0
	get := func(key string) any {
		v, err := c.Do(key, func() (any, error) {
			builds++
			return "value-" + key, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := get("a"); v != "value-a" {
		t.Fatalf("got %v", v)
	}
	if v := get("a"); v != "value-a" {
		t.Fatalf("got %v", v)
	}
	if v := get("b"); v != "value-b" {
		t.Fatalf("got %v", v)
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2 (one per distinct key)", builds)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2", hits, misses)
	}
}

func TestSingleflight(t *testing.T) {
	c := New(4)
	var builds atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]any, 32)
	for g := 0; g < len(results); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			v, err := c.Do("shared", func() (any, error) {
				builds.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	close(start)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1 (singleflight)", n)
	}
	for g, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d got %v", g, v)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Do(fmt.Sprintf("k%d", i), func() (any, error) { return i, nil })
	}
	// Touch k0 so k1 becomes the LRU victim.
	c.Do("k0", func() (any, error) { t.Fatal("k0 rebuilt"); return nil, nil })
	c.Do("k3", func() (any, error) { return 3, nil })
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if c.Contains("k1") {
		t.Fatal("k1 not evicted (LRU order violated)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if !c.Contains(k) {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestErrorsAreCached(t *testing.T) {
	c := New(2)
	boom := errors.New("boom")
	builds := 0
	for i := 0; i < 2; i++ {
		_, err := c.Do("bad", func() (any, error) {
			builds++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if builds != 1 {
		t.Fatalf("failing build ran %d times, want 1", builds)
	}
}

func TestPurge(t *testing.T) {
	c := New(4)
	c.Do("a", func() (any, error) { return 1, nil })
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	rebuilt := false
	c.Do("a", func() (any, error) { rebuilt = true; return 2, nil })
	if !rebuilt {
		t.Fatal("entry survived purge")
	}
}

func TestDistinctKeysNeverShareEntries(t *testing.T) {
	// Concurrent mixed-key access: every key must see its own value.
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", i)
				v, err := c.Do(key, func() (any, error) { return key + "!", nil })
				if err != nil {
					t.Error(err)
					return
				}
				if v != key+"!" {
					t.Errorf("key %s served foreign value %v", key, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}
