package ngram_test

import (
	"fmt"

	"pharmaverify/internal/ngram"
)

func ExampleFromText() {
	// Bigrams of "abcde" with a window of 1: each gram links to its
	// immediate predecessor.
	g := ngram.FromText("abcde", 2, 1)
	fmt.Println(g.Size(), "edges")
	fmt.Printf("%.0f\n", g.Weight(ngram.Edge{Src: "ab", Dst: "bc"}))
	// Output:
	// 3 edges
	// 1
}

func ExampleCompare() {
	legitClass := ngram.MergeAll([]*ngram.Graph{
		ngram.FromDocument("licensed pharmacy prescription refill health"),
		ngram.FromDocument("pharmacist consultation insurance prescription"),
	})
	doc := ngram.FromDocument("licensed pharmacy prescription services")
	sim := ngram.Compare(doc, legitClass)
	fmt.Println(sim.CS > 0.2, sim.SS > 0, sim.VS <= sim.CS)
	// Output: true true true
}
