package pharmaverify_test

import (
	"fmt"
	"log"

	"pharmaverify"
)

// Example reproduces the README quick start on a tiny world: generate,
// crawl, train, and rank.
func Example() {
	world := pharmaverify.GenerateWorld(pharmaverify.WorldConfig{
		Seed: 5, NumLegit: 12, NumIllegit: 60, NetworkSize: 20,
	})
	snap, err := pharmaverify.BuildSnapshot("example", world, world.Domains(), world.Labels())
	if err != nil {
		log.Fatal(err)
	}
	v, err := pharmaverify.Train(snap, pharmaverify.Options{Classifier: pharmaverify.SVM, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	ranked := pharmaverify.RankAssessments(v.Assess(snap.Pharmacies))
	top, bottom := ranked[0], ranked[len(ranked)-1]
	fmt.Println(top.Legitimate, bottom.Legitimate)
	// Output: true false
}
