package htmlx

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicDocument(t *testing.T) {
	src := `<html><head><title>Acme Pharmacy</title></head>
<body><h1>Welcome</h1><p>Buy safe medicine with a valid prescription.</p>
<a href="https://www.fda.gov/page">FDA</a>
<a href='http://twitter.com/acme'>Twitter</a></body></html>`
	p := Parse(src)
	if p.Title != "Acme Pharmacy" {
		t.Errorf("Title = %q, want %q", p.Title, "Acme Pharmacy")
	}
	for _, want := range []string{"Welcome", "Buy safe medicine", "FDA", "Twitter"} {
		if !strings.Contains(p.Text, want) {
			t.Errorf("Text %q missing %q", p.Text, want)
		}
	}
	wantLinks := []string{"https://www.fda.gov/page", "http://twitter.com/acme"}
	if !reflect.DeepEqual(p.Links, wantLinks) {
		t.Errorf("Links = %v, want %v", p.Links, wantLinks)
	}
}

func TestParseSkipsScriptAndStyle(t *testing.T) {
	src := `<p>visible</p><script>var hidden = "secret";</script><style>.x{color:red}</style><p>also visible</p>`
	p := Parse(src)
	if strings.Contains(p.Text, "secret") || strings.Contains(p.Text, "color") {
		t.Errorf("script/style content leaked into text: %q", p.Text)
	}
	if !strings.Contains(p.Text, "visible") || !strings.Contains(p.Text, "also visible") {
		t.Errorf("visible text missing: %q", p.Text)
	}
}

func TestParseSkipsComments(t *testing.T) {
	p := Parse(`<p>a</p><!-- hidden <a href="http://x.com">x</a> --><p>b</p>`)
	if strings.Contains(p.Text, "hidden") {
		t.Errorf("comment text leaked: %q", p.Text)
	}
	if len(p.Links) != 0 {
		t.Errorf("links inside comments must be ignored, got %v", p.Links)
	}
}

func TestParseCollapsesWhitespace(t *testing.T) {
	p := Parse("<p>  a \n\n  b\t c  </p>")
	if p.Text != "a b c" {
		t.Errorf("Text = %q, want %q", p.Text, "a b c")
	}
}

func TestParseEntitiesInText(t *testing.T) {
	p := Parse(`<p>Fish &amp; Chips &lt;cheap&gt; &#65;&#x42;</p>`)
	if p.Text != "Fish & Chips <cheap> AB" {
		t.Errorf("Text = %q", p.Text)
	}
}

func TestParseAnchorWithoutHref(t *testing.T) {
	p := Parse(`<a name="top">anchor</a><a href="">empty</a><a href="/x">ok</a>`)
	if !reflect.DeepEqual(p.Links, []string{"/x"}) {
		t.Errorf("Links = %v, want [/x]", p.Links)
	}
}

func TestParseUnterminatedTag(t *testing.T) {
	p := Parse(`<p>ok</p><a href="http://x.com`)
	if !strings.Contains(p.Text, "ok") {
		t.Errorf("text before broken tag lost: %q", p.Text)
	}
}

func TestParseBlockTagsSeparateWords(t *testing.T) {
	p := Parse(`<div>alpha</div><div>beta</div>`)
	if p.Text != "alpha beta" {
		t.Errorf("Text = %q, want %q", p.Text, "alpha beta")
	}
}

func TestParseSelfClosingScript(t *testing.T) {
	p := Parse(`<script src="x.js"/><p>after</p>`)
	if !strings.Contains(p.Text, "after") {
		t.Errorf("self-closing script swallowed document: %q", p.Text)
	}
}

func TestParseCaseInsensitiveTags(t *testing.T) {
	p := Parse(`<A HREF="http://upper.example.com">X</A><SCRIPT>nope</SCRIPT>`)
	if !reflect.DeepEqual(p.Links, []string{"http://upper.example.com"}) {
		t.Errorf("Links = %v", p.Links)
	}
	if strings.Contains(p.Text, "nope") {
		t.Errorf("uppercase SCRIPT content leaked: %q", p.Text)
	}
}

func TestAttrValue(t *testing.T) {
	cases := []struct {
		attrs, name, want string
		ok                bool
	}{
		{`href="a"`, "href", "a", true},
		{`href='a b'`, "href", "a b", true},
		{`href=a`, "href", "a", true},
		{`class="x" href="y"`, "href", "y", true},
		{`HREF="y"`, "href", "y", true},
		{`rel=nofollow`, "href", "", false},
		{`href="a&amp;b"`, "href", "a&b", true},
		{``, "href", "", false},
		{`disabled href="z"`, "href", "z", true},
	}
	for _, c := range cases {
		got, ok := attrValue(c.attrs, c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("attrValue(%q, %q) = %q,%v want %q,%v", c.attrs, c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestDecodeEntitiesNoEntity(t *testing.T) {
	s := "plain text without refs"
	if got := DecodeEntities(s); got != s {
		t.Errorf("DecodeEntities changed plain text: %q", got)
	}
}

func TestDecodeEntitiesUnknownKeptVerbatim(t *testing.T) {
	if got := DecodeEntities("&bogus; &"); got != "&bogus; &" {
		t.Errorf("got %q", got)
	}
}

func TestDecodeEntitiesNumericOverflow(t *testing.T) {
	if got := DecodeEntities("&#99999999;"); got != "&#99999999;" {
		t.Errorf("overflowing numeric ref must be kept, got %q", got)
	}
}

func TestSplitTag(t *testing.T) {
	cases := []struct {
		in, name, attrs string
		closing         bool
	}{
		{"a href=x", "a", "href=x", false},
		{"/div", "div", "", true},
		{"BR/", "br", "", false},
		{"  /  span ", "span", "", true},
	}
	for _, c := range cases {
		name, attrs, closing := splitTag(c.in)
		if name != c.name || closing != c.closing {
			t.Errorf("splitTag(%q) = %q,%q,%v want %q,%q,%v", c.in, name, attrs, closing, c.name, c.attrs, c.closing)
		}
	}
}

// Property: Parse never panics and never returns text containing a '<'
// for any input, well-formed or not.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		p := Parse(s)
		return !strings.Contains(p.Text, "<")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: DecodeEntities is idempotent on entity-free strings and the
// output never contains a decodable named reference we support.
func TestDecodeEntitiesIdempotentOnPlain(t *testing.T) {
	f := func(s string) bool {
		s = strings.ReplaceAll(s, "&", "")
		return DecodeEntities(s) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString(`<div><p>generic cialis viagra no prescription required</p><a href="http://hub.example.com/aff">order now</a></div>`)
	}
	src := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parse(src)
	}
}
