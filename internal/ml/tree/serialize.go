package tree

import (
	"encoding/json"
	"fmt"
)

// nodeState is the JSON wire form of one tree node (recursive).
type nodeState struct {
	Feature   int        `json:"feature,omitempty"`
	Threshold float64    `json:"threshold,omitempty"`
	Counts    [2]int     `json:"counts"`
	Leaf      bool       `json:"leaf"`
	Left      *nodeState `json:"left,omitempty"`
	Right     *nodeState `json:"right,omitempty"`
}

type treeState struct {
	MinLeaf  int        `json:"minLeaf"`
	MaxDepth int        `json:"maxDepth"`
	CF       float64    `json:"cf"`
	Dim      int        `json:"dim"`
	Root     *nodeState `json:"root"`
}

func encodeNode(n *node) *nodeState {
	if n == nil {
		return nil
	}
	return &nodeState{
		Feature:   n.feature,
		Threshold: n.threshold,
		Counts:    n.counts,
		Leaf:      n.leaf,
		Left:      encodeNode(n.left),
		Right:     encodeNode(n.right),
	}
}

func decodeNode(s *nodeState) (*node, error) {
	if s == nil {
		return nil, nil
	}
	n := &node{
		feature:   s.Feature,
		threshold: s.Threshold,
		counts:    s.Counts,
		leaf:      s.Leaf,
	}
	var err error
	if n.left, err = decodeNode(s.Left); err != nil {
		return nil, err
	}
	if n.right, err = decodeNode(s.Right); err != nil {
		return nil, err
	}
	if !n.leaf && (n.left == nil || n.right == nil) {
		return nil, fmt.Errorf("tree: internal node without two children")
	}
	return n, nil
}

// MarshalJSON serializes a fitted tree.
func (t *C45) MarshalJSON() ([]byte, error) {
	if t.root == nil {
		return nil, fmt.Errorf("tree: cannot marshal unfitted C45")
	}
	return json.Marshal(treeState{
		MinLeaf:  t.MinLeaf,
		MaxDepth: t.MaxDepth,
		CF:       t.CF,
		Dim:      t.dim,
		Root:     encodeNode(t.root),
	})
}

// UnmarshalJSON restores a tree persisted with MarshalJSON.
func (t *C45) UnmarshalJSON(data []byte) error {
	var s treeState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("tree: decode C45: %w", err)
	}
	root, err := decodeNode(s.Root)
	if err != nil {
		return err
	}
	if root == nil {
		return fmt.Errorf("tree: state has no root")
	}
	t.MinLeaf = s.MinLeaf
	t.MaxDepth = s.MaxDepth
	t.CF = s.CF
	t.dim = s.Dim
	t.root = root
	return nil
}
