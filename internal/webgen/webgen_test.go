package webgen

import (
	"strings"
	"testing"

	"pharmaverify/internal/htmlx"
)

func smallConfig(seed int64) Config {
	return Config{Seed: seed, Snapshot: 1, NumLegit: 20, NumIllegit: 80, NetworkSize: 20}
}

func TestGenerateCounts(t *testing.T) {
	w := Generate(smallConfig(1))
	st := w.Stats()
	if st.Legit != 20 || st.Illegit != 80 || st.Total != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hubs == 0 {
		t.Error("no affiliate hubs generated")
	}
	if st.Isolated == 0 {
		t.Error("no isolated legitimate sites")
	}
	if st.Pages < 100*6 {
		t.Errorf("pages = %d, too few", st.Pages)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig(7))
	b := Generate(smallConfig(7))
	if len(a.Domains()) != len(b.Domains()) {
		t.Fatal("domain counts differ")
	}
	for _, d := range a.Domains() {
		sa, sb := a.Site(d), b.Site(d)
		if len(sa.Paths) != len(sb.Paths) {
			t.Fatalf("site %s paths differ", d)
		}
		for _, p := range sa.Paths {
			if sa.Pages[p] != sb.Pages[p] {
				t.Fatalf("site %s page %s differs between runs", d, p)
			}
		}
	}
}

func TestSeedChangesContent(t *testing.T) {
	a := Generate(smallConfig(1))
	b := Generate(smallConfig(2))
	d := a.Domains()[0]
	if a.Site(d).Pages["/"] == b.Site(d).Pages["/"] {
		t.Error("different seeds produced identical front pages")
	}
}

func TestFetch(t *testing.T) {
	w := Generate(smallConfig(3))
	d := w.Domains()[0]
	if _, err := w.Fetch(d, "/"); err != nil {
		t.Fatalf("Fetch(%s, /) = %v", d, err)
	}
	if _, err := w.Fetch(d, ""); err != nil {
		t.Errorf("empty path must mean front page: %v", err)
	}
	if _, err := w.Fetch("nosuch.example", "/"); err == nil {
		t.Error("unknown domain must error")
	}
	if _, err := w.Fetch(d, "/nosuch"); err == nil {
		t.Error("unknown path must error")
	}
}

func TestPagesAreParseableHTML(t *testing.T) {
	w := Generate(smallConfig(4))
	for _, d := range w.Domains()[:10] {
		s := w.Site(d)
		for _, p := range s.Paths {
			pg := htmlx.Parse(s.Pages[p])
			if pg.Text == "" {
				t.Fatalf("%s%s has no visible text", d, p)
			}
			if pg.Title == "" {
				t.Fatalf("%s%s has no title", d, p)
			}
		}
	}
}

func TestFrontPageLinksAllPages(t *testing.T) {
	w := Generate(smallConfig(5))
	d := w.Domains()[0]
	s := w.Site(d)
	front := htmlx.Parse(s.Pages["/"])
	linked := map[string]bool{}
	for _, l := range front.Links {
		linked[l] = true
	}
	for _, p := range s.Paths[1:] {
		if !linked[p] {
			t.Errorf("front page misses internal link %s", p)
		}
	}
}

func TestClassTextSignals(t *testing.T) {
	w := Generate(smallConfig(6))
	legitViagra, legitDocs := 0, 0
	illegitViagra, illegitDocs := 0, 0
	for _, d := range w.Domains() {
		s := w.Site(d)
		text := strings.ToLower(s.Summary())
		hasViagra := strings.Contains(text, "viagra") || strings.Contains(text, "cialis")
		if s.Legitimate {
			legitDocs++
			if hasViagra {
				legitViagra++
			}
		} else if !s.Evader {
			illegitDocs++
			if hasViagra {
				illegitViagra++
			}
		}
	}
	if float64(illegitViagra)/float64(illegitDocs) < 0.9 {
		t.Errorf("illegit viagra rate = %d/%d, want ~1", illegitViagra, illegitDocs)
	}
	if float64(legitViagra)/float64(legitDocs) > 0.9 {
		t.Errorf("legit viagra rate = %d/%d, should be visibly lower", legitViagra, legitDocs)
	}
}

func TestLegitSeals(t *testing.T) {
	w := Generate(smallConfig(7))
	for _, d := range w.Domains() {
		s := w.Site(d)
		hasSeal := strings.Contains(s.Pages["/"], "VIPPS")
		if s.Legitimate && !hasSeal {
			t.Errorf("legit site %s missing verification seal", d)
		}
		if !s.Legitimate && hasSeal {
			t.Errorf("illegit site %s displays VIPPS seal", d)
		}
	}
}

func TestNetworkedIllegitLinkHub(t *testing.T) {
	w := Generate(smallConfig(8))
	found := false
	for _, d := range w.Domains() {
		s := w.Site(d)
		if s.Legitimate || s.Hub || s.Evader || s.HubDomain == "" {
			continue
		}
		if !strings.Contains(s.Summary(), s.HubDomain) {
			t.Errorf("networked site %s never links hub %s", d, s.HubDomain)
		}
		found = true
	}
	if !found {
		t.Error("no networked illegitimate sites in world")
	}
}

func TestIsolatedLegitAvoidTrustedEndpoints(t *testing.T) {
	w := Generate(smallConfig(9))
	for _, d := range w.Domains() {
		s := w.Site(d)
		if !s.Legitimate || !s.Isolated {
			continue
		}
		text := s.Summary()
		for _, ep := range []string{"facebook.com", "fda.gov", "twitter.com"} {
			if strings.Contains(text, ep) {
				t.Errorf("isolated site %s links trusted endpoint %s", d, ep)
			}
		}
	}
}

func TestSnapshotsShareLegitDomainsOnly(t *testing.T) {
	w1 := Generate(Config{Seed: 1, Snapshot: 1, NumLegit: 10, NumIllegit: 30, NetworkSize: 10})
	w2 := Generate(Config{Seed: 1, Snapshot: 2, NumLegit: 10, NumIllegit: 25, IllegitOffset: 30, NetworkSize: 10})
	d1 := map[string]bool{}
	for _, d := range w1.Domains() {
		d1[d] = true
	}
	sharedLegit, sharedIllegit := 0, 0
	for _, d := range w2.Domains() {
		if !d1[d] {
			continue
		}
		if w2.Site(d).Legitimate {
			sharedLegit++
		} else {
			sharedIllegit++
		}
	}
	if sharedLegit != 10 {
		t.Errorf("shared legit = %d, want all 10", sharedLegit)
	}
	if sharedIllegit != 0 {
		t.Errorf("shared illegit = %d, want 0 (paper: empty intersection)", sharedIllegit)
	}
}

func TestSnapshotDriftChangesText(t *testing.T) {
	w1 := Generate(Config{Seed: 1, Snapshot: 1, NumLegit: 5, NumIllegit: 5, NetworkSize: 5})
	w2 := Generate(Config{Seed: 1, Snapshot: 2, NumLegit: 5, NumIllegit: 5, IllegitOffset: 0, NetworkSize: 5})
	d := w1.Domains()[0]
	if w1.Site(d).Pages["/"] == w2.Site(d).Pages["/"] {
		t.Error("re-crawled site has byte-identical content")
	}
}

func TestRolesStableAcrossSnapshots(t *testing.T) {
	w1 := Generate(Config{Seed: 3, Snapshot: 1, NumLegit: 20, NumIllegit: 20, NetworkSize: 10})
	w2 := Generate(Config{Seed: 3, Snapshot: 2, NumLegit: 20, NumIllegit: 20, NetworkSize: 10})
	for _, d := range w1.Domains() {
		s1, s2 := w1.Site(d), w2.Site(d)
		if s2 == nil {
			continue
		}
		if s1.Isolated != s2.Isolated || s1.Hub != s2.Hub || s1.Evader != s2.Evader {
			t.Errorf("site %s changed roles between snapshots", d)
		}
	}
}

func TestDataset1Config(t *testing.T) {
	c := Dataset1Config(42).withDefaults()
	if c.NumLegit != 167 || c.NumIllegit != 1292 {
		t.Errorf("Dataset1Config = %+v", c)
	}
	c2 := Dataset2Config(42).withDefaults()
	if c2.NumLegit != 167 || c2.NumIllegit != 1275 || c2.IllegitOffset != 1292 {
		t.Errorf("Dataset2Config = %+v", c2)
	}
}

func TestDomainUniqueness(t *testing.T) {
	w := Generate(smallConfig(10))
	seen := map[string]bool{}
	for _, d := range w.Domains() {
		if seen[d] {
			t.Fatalf("duplicate domain %s", d)
		}
		seen[d] = true
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := smallConfig(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
