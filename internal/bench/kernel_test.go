package bench

import (
	"strings"
	"testing"
	"time"
)

// TestKernelBenchmarksIdentity runs the micro-benchmarks at a short
// benchtime and checks the invariants the regression gate relies on:
// every entry present, byte-identical to its naive reference, and
// non-degenerate measurements.
func TestKernelBenchmarksIdentity(t *testing.T) {
	entries := RunKernelBenchmarks(5 * time.Millisecond)
	want := map[string]bool{"ngg-compare-both": true, "ngg-compare-graphs": true, "tfidf-sparse": true}
	for _, e := range entries {
		if !want[e.ID] {
			t.Errorf("unexpected kernel entry %q", e.ID)
		}
		delete(want, e.ID)
		if !e.Identical {
			t.Errorf("kernel %s: output differs from the naive reference", e.ID)
		}
		if e.NaiveNSOp <= 0 || e.KernelNSOp <= 0 {
			t.Errorf("kernel %s: degenerate timing naive=%v kernel=%v", e.ID, e.NaiveNSOp, e.KernelNSOp)
		}
		if e.Speedup <= 0 {
			t.Errorf("kernel %s: speedup %v", e.ID, e.Speedup)
		}
	}
	for id := range want {
		t.Errorf("kernel entry %q missing", id)
	}
}

// TestKernelMeetsFloors asserts the optimization's acceptance bars on
// this machine: the both-classes Compare path must be at least 2x
// faster and 2x lighter in allocations than the naive baseline.
func TestKernelMeetsFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	entries := RunKernelBenchmarks(50 * time.Millisecond)
	if err := CheckKernelRegression(entries, entries, 1.5); err != nil {
		t.Fatalf("fresh run fails its own regression check: %v", err)
	}
}

func TestCheckKernelRegression(t *testing.T) {
	ok := KernelEntry{ID: "x", Speedup: 4, AllocRatio: 3, KernelAllocsOp: 2, Identical: true}
	base := []KernelEntry{ok}

	if err := CheckKernelRegression([]KernelEntry{ok}, base, 1.5); err != nil {
		t.Fatalf("identical run should pass: %v", err)
	}
	if err := CheckKernelRegression([]KernelEntry{ok}, nil, 1.5); err == nil {
		t.Error("empty baseline should fail")
	}
	if err := CheckKernelRegression(nil, base, 1.5); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing entry should fail, got %v", err)
	}

	slow := ok
	slow.Speedup = 2 // 4/1.5 ≈ 2.67 required
	if err := CheckKernelRegression([]KernelEntry{slow}, base, 1.5); err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("speedup regression should fail, got %v", err)
	}
	within := ok
	within.Speedup = 3 // above 4/1.5
	if err := CheckKernelRegression([]KernelEntry{within}, base, 1.5); err != nil {
		t.Errorf("speedup within tolerance should pass: %v", err)
	}

	diverged := ok
	diverged.Identical = false
	if err := CheckKernelRegression([]KernelEntry{diverged}, base, 1.5); err == nil || !strings.Contains(err.Error(), "identical") {
		t.Errorf("identity break should fail, got %v", err)
	}

	leaky := ok
	leaky.KernelAllocsOp = 10 // baseline 2*1.5+2 = 5 allowed
	if err := CheckKernelRegression([]KernelEntry{leaky}, base, 1.5); err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("alloc growth should fail, got %v", err)
	}

	// Hard floors bind even when the baseline is worse: an entry with a
	// floor of 2.0x cannot pass at 1.5x no matter what the file says.
	floored := KernelEntry{ID: "ngg-compare-both", Speedup: 1.5, AllocRatio: 5, Identical: true}
	weakBase := []KernelEntry{{ID: "ngg-compare-both", Speedup: 1.0, AllocRatio: 5, Identical: true}}
	if err := CheckKernelRegression([]KernelEntry{floored}, weakBase, 1.5); err == nil || !strings.Contains(err.Error(), "floor") {
		t.Errorf("floor violation should fail, got %v", err)
	}
}
