// Package reverify is the continuous re-verification pipeline: the
// background loop that keeps a long-lived serving deployment honest as
// the web underneath it drifts. The paper's model-evolution experiment
// (Dataset 1 vs Dataset 2, six months apart) shows why it must exist —
// illegitimate pharmacies re-style their vocabulary toward legitimate
// language and churn their link farms, so a model frozen at train time
// quietly decays. This package closes the loop online, in four parts:
//
//   - A corpus scheduler sweeps the deployment's known-domain corpus on
//     a priority queue (oldest verdict first), re-crawling each domain
//     through the serving pipeline under a per-domain politeness
//     interval and a global crawl-rate budget — without ever taking
//     admission slots from live traffic.
//   - A drift monitor folds every fresh observation into streaming
//     term- and link-frequency counters and scores their total-
//     variation distance against the model's train-time sketch
//     (core.Sketch); the scores are /metrics gauges and, past a
//     configurable threshold, a retrain trigger.
//   - The retrain trigger arms a shadow deployment: a candidate model
//     silently double-assesses live traffic and sweep observations
//     (serve's shadow path), accumulating verdict-flip counts.
//   - A promotion controller watches the candidate's flip rate and,
//     once enough assessments accumulate, promotes it through the
//     deployment's hot-reload path — or demotes it on regression.
//
// Every completed domain is journaled through internal/checkpoint, so a
// killed daemon resumes its sweep exactly where it stopped: the journal
// a resumed sweep finishes is byte-identical to an uninterrupted one.
package reverify

import (
	"context"
	"log"
	"time"

	"pharmaverify/internal/checkpoint"
	"pharmaverify/internal/core"
	"pharmaverify/internal/serve"
)

// Deployment is the serving surface the pipeline drives. *serve.Server
// satisfies it directly; tests substitute fakes.
type Deployment interface {
	// Reverify runs the full serving pipeline for one corpus domain,
	// bypassing admission control, and refreshes the verdict cache.
	Reverify(ctx context.Context, domain string) (serve.Observation, error)
	// Corpus is the known-domain universe to sweep, sorted.
	Corpus() []string
	// TrainingSketch is the live model's train-time distribution
	// snapshot (nil for models that predate sketches — drift monitoring
	// is then unavailable).
	TrainingSketch() *core.Sketch
	ShadowActive() bool
	// ShadowStats is the current candidate's record: fresh verdicts it
	// double-assessed and how many it flipped.
	ShadowStats() (assessed, flips uint64)
	PromoteShadow() (string, error)
	DemoteShadow()
	ModelFingerprint() string
}

// DriftConfig tunes the drift monitor's retrain trigger.
type DriftConfig struct {
	// RetrainThreshold fires the retrain trigger when either drift score
	// (term or link total-variation distance from the training sketch)
	// reaches it. Negative disables the trigger; 0 fires on every sweep
	// once MinObservations is met (useful to force the retrain path in
	// smoke tests). Not re-defaulted: 0 means 0.
	RetrainThreshold float64
	// MinObservations is how many successfully re-verified domains the
	// streaming counters must hold before the scores are trusted enough
	// to trigger (default 25).
	MinObservations int
}

// PromotionConfig is the shadow promotion gate.
type PromotionConfig struct {
	// MinAssessments is how many fresh verdicts the candidate must
	// double-assess before the gate is evaluated (default 16).
	MinAssessments uint64
	// MaxFlipRate is the highest flips/assessed ratio that still
	// promotes (default 0.1; negative means only a flawless candidate
	// promotes).
	MaxFlipRate float64
	// Auto enables the controller: promote at or under the gate, demote
	// over it. Off, the pipeline only measures and operators act.
	Auto bool
}

// Config configures a Pipeline.
type Config struct {
	// Checkpoint journals sweep progress for exact resume (nil: sweeps
	// restart from scratch after a crash).
	Checkpoint *checkpoint.Store
	// Interval is the per-domain politeness bound: a domain re-verified
	// more recently than this is skipped for the sweep (0 disables).
	// Tracked in memory only — a restarted daemon may re-verify sooner,
	// never later, which errs on the fresh side.
	Interval time.Duration
	// Rate is the global crawl budget in re-verifications per second
	// across the whole sweep (<= 0: unpaced).
	Rate float64
	// MaxSweeps stops Run after this many completed sweeps (0: run until
	// the context ends). Tests and smoke jobs bound their runs with it.
	MaxSweeps int
	// Drift tunes the retrain trigger; Promotion the shadow gate.
	Drift     DriftConfig
	Promotion PromotionConfig
	// Retrain is invoked (synchronously, at most once per sweep) when
	// the drift trigger fires and no shadow is active. The daemon's
	// retrain loads the candidate model file and arms the shadow; nil
	// disables the trigger.
	Retrain func(ctx context.Context) error
	// Logf receives progress lines (default log.Printf).
	Logf func(format string, args ...any)

	// now/sleep are the injectable clock and pacer (tests).
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.Interval < 0 {
		c.Interval = 0
	}
	if c.Drift.MinObservations <= 0 {
		c.Drift.MinObservations = 25
	}
	if c.Promotion.MinAssessments == 0 {
		c.Promotion.MinAssessments = 16
	}
	if c.Promotion.MaxFlipRate == 0 {
		c.Promotion.MaxFlipRate = 0.1
	}
	if c.Promotion.MaxFlipRate < 0 {
		c.Promotion.MaxFlipRate = 0
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.sleep == nil {
		c.sleep = ctxSleep
	}
	return c
}

func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Journal layout. The per-domain payload carries only the sweep number
// — deliberately no timestamps, verdicts or scores — so the journal a
// resumed sweep finishes is byte-identical to an uninterrupted run's
// (verdicts may differ across a restart because the live link graph
// rebuilds; the journal must not).
const (
	kindDomain = "reverify"
	kindMeta   = "reverify-meta"
	metaKey    = "sweep"
)

type sweepRecord struct {
	Sweep uint64 `json:"sweep"`
}

// Pipeline is the continuous re-verification loop. Construct with New,
// then Run on a background goroutine; register WriteMetrics with the
// deployment's /metrics endpoint.
type Pipeline struct {
	dep   Deployment
	cfg   Config
	drift *driftMonitor
	met   pipelineMetrics
	// lastVerified is the in-memory politeness ledger (per-domain time
	// of the most recent re-verification attempt). Only Run's goroutine
	// touches it.
	lastVerified map[string]time.Time
}

// New builds a Pipeline over a deployment. The drift baseline is the
// live model's training sketch at construction time; every promotion
// re-baselines to the promoted model's sketch.
func New(dep Deployment, cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	return &Pipeline{
		dep:          dep,
		cfg:          cfg,
		drift:        newDriftMonitor(dep.TrainingSketch()),
		lastVerified: make(map[string]time.Time),
	}
}

// Run executes sweeps until the context ends (or MaxSweeps completes).
// It is the pipeline's only goroutine: scheduling, drift scoring,
// retrain triggering and the promotion gate all run here, serialized.
// The returned error is the context's when interrupted, or a journal
// I/O failure; a re-verification failure of an individual domain is
// counted and logged, never fatal.
func (p *Pipeline) Run(ctx context.Context) error {
	sweep, err := p.loadSweep()
	if err != nil {
		return err
	}
	for done := 0; ; {
		if err := p.runSweep(ctx, sweep); err != nil {
			return err
		}
		p.met.sweeps.Add(1)
		sweep++
		if err := p.storeSweep(sweep); err != nil {
			return err
		}
		p.maybeRetrain(ctx)
		done++
		if p.cfg.MaxSweeps > 0 && done >= p.cfg.MaxSweeps {
			return nil
		}
		if wait := p.nextDue(); wait > 0 {
			if err := p.cfg.sleep(ctx, wait); err != nil {
				return err
			}
		}
	}
}

// runSweep re-verifies every corpus domain not already journaled as
// done for this sweep, oldest verdict first.
func (p *Pipeline) runSweep(ctx context.Context, sweep uint64) error {
	q := newDomainQueue(p.dep.Corpus(), p.lastVerified)
	for q.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		d := q.pop()
		if p.cfg.Checkpoint != nil {
			var rec sweepRecord
			ok, err := p.cfg.Checkpoint.GetJSON(kindDomain, d, &rec)
			if err != nil {
				return err
			}
			if ok && rec.Sweep >= sweep {
				continue // finished before the restart — resume past it
			}
		}
		crawled := p.processDomain(ctx, d)
		// Journal the step before moving on — regardless of the assess
		// outcome, so a crash right here re-verifies at most this one
		// domain twice and the journal's shape stays a pure function of
		// (corpus, sweep number).
		if p.cfg.Checkpoint != nil {
			if err := p.cfg.Checkpoint.PutJSON(kindDomain, d, sweepRecord{Sweep: sweep}); err != nil {
				return err
			}
		}
		p.maybePromote()
		if crawled && p.cfg.Rate > 0 {
			pause := time.Duration(float64(time.Second) / p.cfg.Rate)
			if err := p.cfg.sleep(ctx, pause); err != nil {
				return err
			}
		}
	}
	return nil
}

// processDomain re-verifies one domain (unless politeness skips it) and
// feeds the drift monitor. It reports whether a crawl actually ran —
// the unit the global rate budget paces.
func (p *Pipeline) processDomain(ctx context.Context, domain string) bool {
	now := p.cfg.now()
	if p.cfg.Interval > 0 {
		if last, ok := p.lastVerified[domain]; ok && now.Sub(last) < p.cfg.Interval {
			p.met.domainsSkipped.Add(1)
			return false
		}
	}
	obs, err := p.dep.Reverify(ctx, domain)
	p.lastVerified[domain] = now
	if err != nil {
		p.met.domainsErr.Add(1)
		p.cfg.Logf("reverify: %s: %v", domain, err)
		return true
	}
	p.met.domainsOK.Add(1)
	p.drift.observe(obs.Terms, obs.Outbound)
	return true
}

// maybeRetrain fires the drift trigger at a sweep boundary: enough
// observations, a drift score at or past the threshold, no candidate
// already shadowing. Retrain failures are logged and retried next
// sweep.
func (p *Pipeline) maybeRetrain(ctx context.Context) {
	th := p.cfg.Drift.RetrainThreshold
	if th < 0 || p.cfg.Retrain == nil || p.dep.ShadowActive() {
		return
	}
	term, link, n, ok := p.drift.scores()
	if !ok || n < p.cfg.Drift.MinObservations {
		return
	}
	if term < th && link < th {
		return
	}
	p.met.retrainTriggers.Add(1)
	p.cfg.Logf("reverify: drift trigger fired (term %.3f, link %.3f over %d observations, threshold %.3f)",
		term, link, n, th)
	if err := p.cfg.Retrain(ctx); err != nil {
		p.cfg.Logf("reverify: retrain failed: %v", err)
	}
}

// maybePromote evaluates the shadow promotion gate: once the candidate
// has double-assessed enough fresh verdicts, a flip rate at or under
// the gate promotes it through the deployment's hot-reload path and
// re-baselines the drift monitor on the promoted model's sketch; a flip
// rate over the gate demotes it (the regression path).
func (p *Pipeline) maybePromote() {
	if !p.cfg.Promotion.Auto || !p.dep.ShadowActive() {
		return
	}
	assessed, flips := p.dep.ShadowStats()
	if assessed < p.cfg.Promotion.MinAssessments {
		return
	}
	rate := float64(flips) / float64(assessed)
	if rate <= p.cfg.Promotion.MaxFlipRate {
		fp, err := p.dep.PromoteShadow()
		if err != nil {
			p.cfg.Logf("reverify: promotion failed: %v", err)
			return
		}
		p.cfg.Logf("reverify: promoted shadow %s (flip rate %.3f over %d assessments)", fp, rate, assessed)
		p.drift.reset(p.dep.TrainingSketch())
		return
	}
	p.dep.DemoteShadow()
	p.cfg.Logf("reverify: demoted shadow (flip rate %.3f over %d assessments exceeds %.3f)",
		rate, assessed, p.cfg.Promotion.MaxFlipRate)
}

// nextDue computes how long until the earliest corpus domain leaves its
// politeness interval — the inter-sweep pause. Without politeness (or
// with an empty corpus) sweeps run back to back only when something is
// due; an empty corpus waits a full interval (floored at a second) so
// the loop never spins hot.
func (p *Pipeline) nextDue() time.Duration {
	if p.cfg.Interval <= 0 {
		return 0
	}
	corpus := p.dep.Corpus()
	if len(corpus) == 0 {
		return p.cfg.Interval
	}
	now := p.cfg.now()
	var soonest time.Duration = -1
	for _, d := range corpus {
		last, ok := p.lastVerified[d]
		if !ok {
			return 0 // a never-verified domain is due immediately
		}
		wait := p.cfg.Interval - now.Sub(last)
		if wait <= 0 {
			return 0
		}
		if soonest < 0 || wait < soonest {
			soonest = wait
		}
	}
	return soonest
}

// loadSweep reads the sweep counter from the journal (1 when absent or
// unjournaled).
func (p *Pipeline) loadSweep() (uint64, error) {
	if p.cfg.Checkpoint == nil {
		return 1, nil
	}
	var rec sweepRecord
	ok, err := p.cfg.Checkpoint.GetJSON(kindMeta, metaKey, &rec)
	if err != nil {
		return 0, err
	}
	if !ok || rec.Sweep == 0 {
		return 1, nil
	}
	return rec.Sweep, nil
}

func (p *Pipeline) storeSweep(sweep uint64) error {
	if p.cfg.Checkpoint == nil {
		return nil
	}
	return p.cfg.Checkpoint.PutJSON(kindMeta, metaKey, sweepRecord{Sweep: sweep})
}
