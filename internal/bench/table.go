package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is one reproduced paper artifact, formatted for the terminal.
type Table struct {
	ID     string // "Table 3", "Figure 2", "Ablation A1", ...
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries free-form commentary printed under the table
	// (shape expectations, substitutions).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// f2 formats a metric the way the paper's tables do (two decimals).
func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// f3 formats with three decimals (Table 15's pairord values).
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// sizeLabel renders a term-subset size ("All" for 0).
func sizeLabel(k int) string {
	if k == 0 {
		return "All"
	}
	return strconv.Itoa(k)
}
