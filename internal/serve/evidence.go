package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"pharmaverify/internal/core"
	"pharmaverify/internal/dataset"
)

// The serving verdict is an ensemble over independent evidence
// backends, mirroring the paper's fused text + network + registry
// design: each source inspects the crawled observation on its own
// terms, votes a P(legitimate), and the votes are averaged through the
// ensemble machinery. A source with nothing to say for a domain
// (errNoEvidence) simply drops out of the fusion — the verdict degrades
// to the remaining sources and the response itemizes exactly who
// contributed, the tiered-lookup shape where every answer records its
// provenance.

// errNoEvidence signals that a source has no opinion on this domain
// (not an error: the verdict is fused from the remaining sources).
var errNoEvidence = errors.New("serve: source has no evidence for this domain")

// Evidence is one source's vote.
type Evidence struct {
	// Prob is the source's P(legitimate).
	Prob float64
	// TrustScore is the raw link-graph score behind a network vote
	// (meaningful only when HasTrustScore).
	TrustScore    float64
	HasTrustScore bool
}

// EvidenceSource is one verdict backend: the text classifier, the
// TrustRank network model over the fleet-wide link graph, or a registry
// lookup. Assess votes on one crawled observation under one model;
// returning errNoEvidence abstains. Healthy reports whether the source
// is currently able to produce evidence (surfaced on /readyz).
// Implementations must be safe for concurrent use.
type EvidenceSource interface {
	Name() string
	Assess(ctx context.Context, model *core.Verifier, p dataset.Pharmacy) (Evidence, error)
	Healthy() bool
}

// SourceContribution is one source's recorded vote in a served verdict.
type SourceContribution struct {
	Name string  `json:"name"`
	Prob float64 `json:"prob"`
}

// textSource votes the text classifier's probability over the crawled
// summary terms — the frozen training vocabulary and model, exactly the
// offline pipeline's text half.
type textSource struct{}

func (textSource) Name() string { return "text" }

func (textSource) Healthy() bool { return true }

func (textSource) Assess(_ context.Context, model *core.Verifier, p dataset.Pharmacy) (Evidence, error) {
	return Evidence{Prob: model.TextProb(p.Terms)}, nil
}

// networkSource folds the crawl's outbound endpoints into the server's
// live link graph and votes the network classifier's probability for
// the domain's incrementally refreshed TrustRank score. It abstains
// when the node budget kept the domain out of the graph entirely.
type networkSource struct{ graph *linkGraph }

func (networkSource) Name() string { return "network" }

// Healthy reports whether the network backend is producing scores: it
// degrades only when crawls have been folded but no score snapshot has
// ever been computed (a refresh path failure).
func (n networkSource) Healthy() bool {
	return n.graph.snap.Load() != nil || n.graph.live.Stats().Folds == 0
}

func (n networkSource) Assess(_ context.Context, model *core.Verifier, p dataset.Pharmacy) (Evidence, error) {
	n.graph.fold(p.Domain, p.Outbound)
	n.graph.refreshIfStale(model, p.Domain)
	ts, known := n.graph.score(p.Domain)
	if !known {
		return Evidence{}, errNoEvidence
	}
	return Evidence{
		Prob:          model.NetworkProbFromTrust(ts),
		TrustScore:    ts,
		HasTrustScore: true,
	}, nil
}

// RegistryLookup answers whether a domain is a known (il)legitimate
// pharmacy in an authoritative registry — NABP/LegitScript in
// production, a static table in tests. known=false abstains.
type RegistryLookup interface {
	Lookup(ctx context.Context, domain string) (legitimate, known bool, err error)
}

// registrySource adapts a RegistryLookup into an evidence source: a
// registry hit votes 1 (legitimate) or 0 (illegitimate) into the
// fusion; an unknown domain abstains. A nil lookup (no registry
// configured) is the permanent abstainer — the source still appears in
// /readyz so operators see the backend is absent, not broken.
type registrySource struct{ lookup RegistryLookup }

func (registrySource) Name() string { return "registry" }

func (registrySource) Healthy() bool { return true }

func (r registrySource) Assess(ctx context.Context, _ *core.Verifier, p dataset.Pharmacy) (Evidence, error) {
	if r.lookup == nil {
		return Evidence{}, errNoEvidence
	}
	legit, known, err := r.lookup.Lookup(ctx, p.Domain)
	if err != nil {
		return Evidence{}, fmt.Errorf("registry lookup of %s: %w", p.Domain, err)
	}
	if !known {
		return Evidence{}, errNoEvidence
	}
	e := Evidence{Prob: 0}
	if legit {
		e.Prob = 1
	}
	return e, nil
}

// StaticRegistry is an in-memory RegistryLookup over a fixed
// domain → legitimacy table — the pluggable registry stub (and the
// -registry-file backend of pharmaverifyd).
type StaticRegistry struct{ verdicts map[string]bool }

// NewStaticRegistry builds a registry from a domain → legitimate map.
func NewStaticRegistry(verdicts map[string]bool) *StaticRegistry {
	m := make(map[string]bool, len(verdicts))
	for d, v := range verdicts {
		m[strings.ToLower(d)] = v
	}
	return &StaticRegistry{verdicts: m}
}

// Lookup implements RegistryLookup.
func (r *StaticRegistry) Lookup(_ context.Context, domain string) (legitimate, known bool, err error) {
	v, ok := r.verdicts[domain]
	return v, ok, nil
}

// Len reports the registered domain count.
func (r *StaticRegistry) Len() int { return len(r.verdicts) }

// ParseRegistry reads the -registry-file format: one "domain status"
// pair per line, status ∈ {legitimate, illegitimate}; blank lines and
// #-comments are ignored.
func ParseRegistry(r io.Reader) (*StaticRegistry, error) {
	verdicts := make(map[string]bool)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("registry line %d: want \"domain legitimate|illegitimate\", got %q", line, text)
		}
		switch strings.ToLower(fields[1]) {
		case "legitimate", "legit":
			verdicts[strings.ToLower(fields[0])] = true
		case "illegitimate", "illegit":
			verdicts[strings.ToLower(fields[0])] = false
		default:
			return nil, fmt.Errorf("registry line %d: unknown status %q", line, fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &StaticRegistry{verdicts: verdicts}, nil
}
