package bayes

import (
	"math"

	"pharmaverify/internal/ml"
)

// Gaussian is the classic Naïve Bayes classifier with per-class,
// per-feature normal densities. The paper uses it (abbreviation "NB")
// on the N-Gram-Graph similarity features and as the base classifier of
// the network (TrustRank) pipeline.
type Gaussian struct {
	// VarSmoothing is added to every variance for numerical stability
	// (a fraction of the largest feature variance, as in scikit-learn's
	// var_smoothing; default 1e-9 when 0).
	VarSmoothing float64

	dim      int
	logPrior [2]float64
	mean     [2][]float64
	variance [2][]float64
	fitted   bool
}

// NewGaussian returns a Gaussian Naïve Bayes classifier.
func NewGaussian() *Gaussian { return &Gaussian{VarSmoothing: 1e-9} }

// Name implements ml.Named with the paper's abbreviation.
func (g *Gaussian) Name() string { return "NB" }

// Fit estimates per-class feature means and variances.
func (g *Gaussian) Fit(ds *ml.Dataset) error {
	if ds.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	g.dim = ds.Dim
	var count [2]float64
	var sum, sumSq [2][]float64
	for c := 0; c < 2; c++ {
		sum[c] = make([]float64, ds.Dim)
		sumSq[c] = make([]float64, ds.Dim)
	}
	for n, x := range ds.X {
		c := ds.Y[n]
		count[c]++
		for k, i := range x.Ind {
			v := x.Val[k]
			sum[c][i] += v
			sumSq[c][i] += v * v
		}
	}
	if count[0] == 0 || count[1] == 0 {
		return ml.ErrOneClass
	}

	smoothing := g.VarSmoothing
	if smoothing == 0 {
		smoothing = 1e-9
	}
	// Scale smoothing by the largest overall variance so that features
	// on different scales are handled uniformly.
	var maxVar float64
	total := count[0] + count[1]
	for t := 0; t < ds.Dim; t++ {
		mu := (sum[0][t] + sum[1][t]) / total
		v := (sumSq[0][t]+sumSq[1][t])/total - mu*mu
		if v > maxVar {
			maxVar = v
		}
	}
	eps := smoothing * maxVar
	if eps <= 0 {
		eps = smoothing
	}

	for c := 0; c < 2; c++ {
		g.logPrior[c] = math.Log(count[c] / total)
		g.mean[c] = make([]float64, ds.Dim)
		g.variance[c] = make([]float64, ds.Dim)
		for t := 0; t < ds.Dim; t++ {
			mu := sum[c][t] / count[c]
			g.mean[c][t] = mu
			v := sumSq[c][t]/count[c] - mu*mu
			if v < 0 {
				v = 0
			}
			g.variance[c][t] = v + eps
		}
	}
	g.fitted = true
	return nil
}

func (g *Gaussian) logPosterior(dense []float64, c int) float64 {
	s := g.logPrior[c]
	for t, v := range dense {
		mu, va := g.mean[c][t], g.variance[c][t]
		d := v - mu
		s += -0.5*math.Log(2*math.Pi*va) - d*d/(2*va)
	}
	return s
}

// Prob returns P(legitimate | x).
func (g *Gaussian) Prob(x ml.Vector) float64 {
	if !g.fitted {
		return 0.5
	}
	dense := x.Dense(g.dim)
	l0 := g.logPosterior(dense, ml.Illegitimate)
	l1 := g.logPosterior(dense, ml.Legitimate)
	return ml.Sigmoid(l1 - l0)
}

// Predict returns the MAP class.
func (g *Gaussian) Predict(x ml.Vector) int { return ml.PredictFromProb(g.Prob(x)) }

var (
	_ ml.Classifier = (*Gaussian)(nil)
	_ ml.Named      = (*Gaussian)(nil)
)
