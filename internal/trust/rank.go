package trust

import (
	"fmt"
	"math"

	"pharmaverify/internal/parallel"
)

// Config parameterizes the rank computations.
//
// Sentinel semantics: the zero value of Damping, MaxIterations and Tol
// means "use the default" — an *explicit* zero is not expressible for
// these fields (zero damping would be pure teleport, zero tolerance
// would disable the convergence check; neither is a configuration the
// pipeline uses). Negative values are rejected with a panic rather
// than silently misbehaving: a negative Tol can never be reached, so
// it would previously burn every MaxIterations iteration on every
// refresh without any indication of the misconfiguration.
type Config struct {
	// Damping is the decay factor α in [0, 1) (default 0.85 when 0).
	Damping float64
	// MaxIterations bounds the power iteration (default 100 when 0).
	MaxIterations int
	// Tol is the L1 convergence threshold (default 1e-9 when 0).
	Tol float64
	// Workers bounds the concurrency of the power iteration
	// (0 = process default via PHARMAVERIFY_WORKERS/GOMAXPROCS,
	// 1 = serial). Scores are bit-identical at every worker count: the
	// parallel path reproduces the serial reference's floating-point
	// accumulation order exactly (see biasedRankParallel).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Damping < 0 || c.Damping >= 1 {
		panic(fmt.Sprintf("trust: Damping %v out of range [0, 1) (0 selects the 0.85 default)", c.Damping))
	}
	if c.MaxIterations < 0 {
		panic(fmt.Sprintf("trust: negative MaxIterations %d (0 selects the default 100)", c.MaxIterations))
	}
	if c.Tol < 0 {
		panic(fmt.Sprintf("trust: negative Tol %v can never converge (0 selects the default 1e-9)", c.Tol))
	}
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 100
	}
	if c.Tol == 0 {
		c.Tol = 1e-9
	}
	return c
}

// PageRank computes the standard PageRank of every node (uniform
// teleport vector) — the unseeded baseline.
func PageRank(g *Graph, cfg Config) []float64 {
	n := g.Len()
	bias := make([]float64, n)
	for i := range bias {
		bias[i] = 1 / float64(n)
	}
	return biasedRank(g, bias, cfg)
}

// TrustRank computes trust scores by propagating from a seed of known
// pages (Gyöngyi et al.). seeds maps node names to their oracle values;
// in the paper's initialization legitimate pharmacies in P0 get 1 and
// everything else 0. Scores are normalized so the maximum is 1 (the
// relative ordering is what the classifier consumes).
func TrustRank(g *Graph, seeds map[string]float64, cfg Config) []float64 {
	n := g.Len()
	bias := make([]float64, n)
	var total float64
	// Accumulate the normalizer in ascending node-id order, not seed-map
	// order: float sums over Go's randomized map iteration made scores
	// differ between runs whenever seed values were not exactly
	// representable sums (integer-valued seeds masked the bug).
	for id := 0; id < n; id++ {
		if v, ok := seeds[g.Name(id)]; ok && v > 0 {
			bias[id] = v
			total += v
		}
	}
	if total == 0 {
		// No usable seed: fall back to uniform (PageRank).
		for i := range bias {
			bias[i] = 1 / float64(n)
		}
	} else {
		for i := range bias {
			bias[i] /= total
		}
	}
	r := biasedRank(g, bias, cfg)
	normalizeMax(r)
	return r
}

// AntiTrustRank propagates *distrust* from known-bad seeds along
// reversed edges (Krishnan & Raj): pages that link to distrusted pages
// become distrusted. Higher scores mean less trustworthy.
func AntiTrustRank(g *Graph, badSeeds map[string]float64, cfg Config) []float64 {
	return TrustRank(g.Reverse(), badSeeds, cfg)
}

// minParallelNodes gates the parallel power iteration: below this node
// count the CSR transpose and fan-out overhead outweigh the win and the
// serial path runs instead. Both paths are bit-identical, so the gate
// is purely a performance choice.
const minParallelNodes = 128

// rankGrain is the contiguous node range handed to one worker per
// dispatch in the parallel phases; ~512 nodes amortize the goroutine
// handoff against the few-nanosecond per-node work.
const rankGrain = 512

// biasedRank runs personalized PageRank with the given teleport vector.
// Dangling mass is redistributed to the bias vector. With cfg.Workers
// resolving above 1 on a large enough graph, the iteration runs on the
// parallel path; scores are bit-identical either way.
func biasedRank(g *Graph, bias []float64, cfg Config) []float64 {
	cfg = cfg.withDefaults()
	n := g.Len()
	if n == 0 {
		return nil
	}
	if w := parallel.Workers(cfg.Workers); w > 1 && n >= minParallelNodes {
		return biasedRankParallel(g, bias, cfg, w)
	}
	return biasedRankSerial(g, bias, cfg)
}

// biasedRankSerial is the single-goroutine reference implementation.
// The parallel path is defined as "bit-identical to this" and the
// property tests pin that equivalence on randomized graphs.
func biasedRankSerial(g *Graph, bias []float64, cfg Config) []float64 {
	n := g.Len()
	rank := make([]float64, n)
	next := make([]float64, n)
	copy(rank, bias)

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			outs := g.out[u]
			if len(outs) == 0 {
				dangling += rank[u]
				continue
			}
			share := rank[u] / float64(len(outs))
			for _, v := range outs {
				next[v] += share
			}
		}
		var delta float64
		for i := 0; i < n; i++ {
			nv := (1-cfg.Damping)*bias[i] + cfg.Damping*(next[i]+dangling*bias[i])
			delta += math.Abs(nv - rank[i])
			rank[i] = nv
		}
		if delta < cfg.Tol {
			break
		}
	}
	return rank
}

// biasedRankParallel distributes the power iteration over workers while
// reproducing biasedRankSerial bit for bit. The serial loop accumulates
// next[v] by scanning sources u in ascending order, so the additions
// landing on any destination v arrive in ascending-source order. The
// parallel path makes that order explicit: it transposes the graph into
// an in-edge CSR whose per-destination source lists are built by the
// same ascending-u scan, then gathers each destination independently —
// the same float additions in the same order, just partitioned by
// destination instead of interleaved. Per-destination gathers share no
// state, so scheduling cannot reorder anything; the only cross-node
// reductions (dangling mass, the L1 delta) are summed serially in
// ascending node order, exactly as the serial loop does.
func biasedRankParallel(g *Graph, bias []float64, cfg Config, workers int) []float64 {
	n := g.Len()

	// Transpose into CSR: counting pass, prefix offsets, then a fill
	// pass scanning u ascending so each destination's source list is
	// ascending in u with parallel edges kept adjacent.
	indeg := make([]int32, n)
	edges := 0
	for u := 0; u < n; u++ {
		for _, v := range g.out[u] {
			indeg[v]++
		}
		edges += len(g.out[u])
	}
	inStart := make([]int, n+1)
	for v := 0; v < n; v++ {
		inStart[v+1] = inStart[v] + int(indeg[v])
	}
	inList := make([]int32, edges)
	fill := make([]int, n)
	copy(fill, inStart[:n])
	for u := 0; u < n; u++ {
		for _, v := range g.out[u] {
			inList[fill[v]] = int32(u)
			fill[v]++
		}
	}
	// Dangling nodes in ascending order: their rank sum must accumulate
	// exactly as the serial scan does.
	var danglingIDs []int32
	for u := 0; u < n; u++ {
		if len(g.out[u]) == 0 {
			danglingIDs = append(danglingIDs, int32(u))
		}
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	share := make([]float64, n)
	diff := make([]float64, n)
	copy(rank, bias)

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		// Per-source share: independent per u, one division each — the
		// identical division the serial loop performs once per source.
		parallel.ForGrain(n, workers, rankGrain, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				if d := len(g.out[u]); d > 0 {
					share[u] = rank[u] / float64(d)
				}
			}
		})
		var dangling float64
		for _, u := range danglingIDs {
			dangling += rank[u]
		}
		// Gather + update fused per destination. rank is only read and
		// next only written within each destination's slot, so chunks
		// are free of cross-talk at any grain or worker count.
		parallel.ForGrain(n, workers, rankGrain, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				var acc float64
				for _, u := range inList[inStart[v]:inStart[v+1]] {
					acc += share[u]
				}
				nv := (1-cfg.Damping)*bias[v] + cfg.Damping*(acc+dangling*bias[v])
				diff[v] = math.Abs(nv - rank[v])
				next[v] = nv
			}
		})
		rank, next = next, rank
		// L1 delta in ascending node order — the serial summation order.
		var delta float64
		for i := 0; i < n; i++ {
			delta += diff[i]
		}
		if delta < cfg.Tol {
			break
		}
	}
	return rank
}

func normalizeMax(r []float64) {
	var m float64
	for _, v := range r {
		if v > m {
			m = v
		}
	}
	if m > 0 {
		for i := range r {
			r[i] /= m
		}
	}
}

// Scores is a convenience wrapper pairing a graph with computed node
// scores for name-based lookup.
type Scores struct {
	g *Graph
	v []float64
}

// NewScores bundles a graph and a score vector.
func NewScores(g *Graph, v []float64) Scores { return Scores{g: g, v: v} }

// Of returns the score of a domain (0 when the domain is not a node).
func (s Scores) Of(domain string) float64 {
	id := s.g.ID(domain)
	if id < 0 {
		return 0
	}
	return s.v[id]
}
