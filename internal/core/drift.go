package core

import (
	"math/rand"

	"pharmaverify/internal/dataset"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/vectorize"
)

// TrainTestAcross fits a text model on one snapshot and evaluates it on
// another — the paper's "Old model with new data" experiment (§6.5.2).
// The vocabulary is built from the training snapshot only; unseen terms
// in the test snapshot are out-of-vocabulary, exactly the staleness the
// experiment probes.
func TrainTestAcross(train, test *dataset.Snapshot, cfg TextConfig) (eval.FoldResult, error) {
	cfg = cfg.withDefaults()
	if _, err := NewClassifier(cfg.Classifier, cfg.Seed); err != nil {
		return eval.FoldResult{}, err
	}

	trainDocs := train.SubsampledTerms(cfg.Terms, cfg.Seed)
	corpus := vectorize.NewCorpus(trainDocs, train.Labels(), train.Domains())
	weighting := vectorize.WeightTFIDF
	if cfg.Classifier == NBM {
		weighting = vectorize.WeightCounts
	}
	trainDS := corpus.Dataset(weighting)

	smp, err := Sampler(cfg.Sampling)
	if err != nil {
		return eval.FoldResult{}, err
	}
	if smp != nil {
		trainDS = smp(trainDS, rand.New(rand.NewSource(cfg.Seed+31)))
	}

	clf, err := NewClassifier(cfg.Classifier, cfg.Seed)
	if err != nil {
		return eval.FoldResult{}, err
	}
	if err := clf.Fit(trainDS); err != nil {
		return eval.FoldResult{}, err
	}

	testDocs := test.SubsampledTerms(cfg.Terms, cfg.Seed+1)
	var fr eval.FoldResult
	z := vectorize.NewVectorizer(corpus.Vocab)
	for i, doc := range testDocs {
		x := z.Vector(doc, weighting)
		y := test.Pharmacies[i].Label
		p := clf.Prob(x)
		fr.Scores = append(fr.Scores, p)
		fr.Labels = append(fr.Labels, y)
		fr.Confusion.Observe(y, ml.PredictFromProb(p))
	}
	fr.AUC = eval.AUC(fr.Scores, fr.Labels)
	return fr, nil
}

// DriftCell identifies one column of Tables 16/17.
type DriftCell string

const (
	// OldOld trains and tests on Dataset 1 (cross-validated).
	OldOld DriftCell = "Old-Old"
	// NewNew trains and tests on Dataset 2 (cross-validated).
	NewNew DriftCell = "New-New"
	// OldNew trains on Dataset 1 and tests on Dataset 2.
	OldNew DriftCell = "Old-New"
)

// DriftResult holds the three columns for one classifier/size setting.
type DriftResult struct {
	AUC            map[DriftCell]float64
	LegitPrecision map[DriftCell]float64
}

// DriftStudy runs the model-evolution-over-time experiment for one
// classifier configuration across both snapshots.
func DriftStudy(old, new *dataset.Snapshot, cfg TextConfig) (DriftResult, error) {
	res := DriftResult{
		AUC:            make(map[DriftCell]float64),
		LegitPrecision: make(map[DriftCell]float64),
	}
	oldCV, err := TextCV(old, cfg)
	if err != nil {
		return res, err
	}
	newCV, err := TextCV(new, cfg)
	if err != nil {
		return res, err
	}
	cross, err := TrainTestAcross(old, new, cfg)
	if err != nil {
		return res, err
	}
	res.AUC[OldOld] = oldCV.Mean(eval.MetricAUC)
	res.AUC[NewNew] = newCV.Mean(eval.MetricAUC)
	res.AUC[OldNew] = cross.AUC
	res.LegitPrecision[OldOld] = oldCV.Mean(eval.MetricLegitPrecision)
	res.LegitPrecision[NewNew] = newCV.Mean(eval.MetricLegitPrecision)
	res.LegitPrecision[OldNew] = cross.Confusion.PrecisionLegitimate()
	return res, nil
}
