package eval

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pharmaverify/internal/ml"
)

func imbalancedDataset(n, nPos int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{Dim: 2}
	for i := 0; i < n; i++ {
		y := ml.Illegitimate
		mu := -1.0
		if i < nPos {
			y = ml.Legitimate
			mu = 1.0
		}
		ds.Add(ml.NewVector([]float64{mu + rng.NormFloat64()*0.3, rng.NormFloat64()}), y, "")
	}
	return ds
}

func TestStratifiedKFoldPreservesDistribution(t *testing.T) {
	ds := imbalancedDataset(300, 36, 1)
	folds := StratifiedKFold(ds, 3, 42)
	if len(folds) != 3 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[int]bool{}
	for f, fold := range folds {
		var pos int
		for _, i := range fold {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
			if ds.Y[i] == ml.Legitimate {
				pos++
			}
		}
		if pos != 12 {
			t.Errorf("fold %d has %d positives, want 12", f, pos)
		}
	}
	if len(seen) != 300 {
		t.Errorf("folds cover %d of 300 instances", len(seen))
	}
}

func TestStratifiedKFoldDeterministic(t *testing.T) {
	ds := imbalancedDataset(100, 20, 2)
	a := StratifiedKFold(ds, 3, 7)
	b := StratifiedKFold(ds, 3, 7)
	for f := range a {
		sort.Ints(a[f])
		sort.Ints(b[f])
		for i := range a[f] {
			if a[f][i] != b[f][i] {
				t.Fatal("same seed produced different folds")
			}
		}
	}
}

func TestTrainTestPartition(t *testing.T) {
	ds := imbalancedDataset(90, 30, 3)
	folds := StratifiedKFold(ds, 3, 1)
	train, test := folds.TrainTest(1)
	if len(train)+len(test) != 90 {
		t.Fatalf("train+test = %d", len(train)+len(test))
	}
	inTest := map[int]bool{}
	for _, i := range test {
		inTest[i] = true
	}
	for _, i := range train {
		if inTest[i] {
			t.Fatal("train and test overlap")
		}
	}
}

// thresholdClassifier predicts legitimate when feature 0 is positive —
// a stand-in learner for CV plumbing tests.
type thresholdClassifier struct{ fitted bool }

func (c *thresholdClassifier) Fit(ds *ml.Dataset) error { c.fitted = true; return nil }
func (c *thresholdClassifier) Prob(x ml.Vector) float64 { return ml.Sigmoid(4 * x.At(0)) }
func (c *thresholdClassifier) Predict(x ml.Vector) int {
	return ml.PredictFromProb(c.Prob(x))
}

func TestCrossValidateSeparableData(t *testing.T) {
	ds := imbalancedDataset(300, 60, 4)
	res, err := CrossValidate(ds, 3, 99, func() ml.Classifier { return &thresholdClassifier{} }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 3 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	if acc := res.Mean(MetricAccuracy); acc < 0.95 {
		t.Errorf("accuracy on separable data = %v", acc)
	}
	if auc := res.Mean(MetricAUC); auc < 0.97 {
		t.Errorf("AUC on separable data = %v", auc)
	}
	pooled := res.Pooled()
	if pooled.Total() != 300 {
		t.Errorf("pooled total = %d, want 300", pooled.Total())
	}
}

func TestCrossValidateAppliesSamplerOnlyToTrain(t *testing.T) {
	ds := imbalancedDataset(120, 20, 5)
	var sampledSizes []int
	sampler := func(d *ml.Dataset, rng *rand.Rand) *ml.Dataset {
		// Fake undersampler that halves the data.
		idx := make([]int, 0, d.Len()/2)
		for i := 0; i < d.Len(); i += 2 {
			idx = append(idx, i)
		}
		out := d.Subset(idx)
		sampledSizes = append(sampledSizes, out.Len())
		return out
	}
	res, err := CrossValidate(ds, 3, 1, func() ml.Classifier { return &thresholdClassifier{} }, sampler)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampledSizes) != 3 {
		t.Fatalf("sampler called %d times", len(sampledSizes))
	}
	// Test folds must still be the natural data: pooled total = all.
	if res.Pooled().Total() != 120 {
		t.Errorf("test instances = %d, want 120", res.Pooled().Total())
	}
}

func TestCVResultCI(t *testing.T) {
	ds := imbalancedDataset(300, 60, 6)
	res, err := CrossValidate(ds, 3, 123, func() ml.Classifier { return &thresholdClassifier{} }, nil)
	if err != nil {
		t.Fatal(err)
	}
	ci := res.CI95(MetricAccuracy)
	if ci < 0 || ci > 0.1 {
		t.Errorf("CI = %v implausible", ci)
	}
	if math.IsNaN(res.PooledAUC()) {
		t.Error("PooledAUC NaN")
	}
}

// TestCrossValidatePreparedFoldsEquivalent pins the fold-plane sharing
// contract: a CV run over externally prepared folds is bit-identical to
// one that draws its own, with and without a stream-consuming sampler,
// and a reused prepared set keeps later runs identical too.
func TestCrossValidatePreparedFoldsEquivalent(t *testing.T) {
	ds := imbalancedDataset(120, 24, 7)
	trainer := func() ml.Classifier { return &thresholdClassifier{} }
	sampler := func(d *ml.Dataset, rng *rand.Rand) *ml.Dataset {
		// Draw from the master stream so stream alignment is exercised.
		idx := rng.Perm(d.Len())[: d.Len()/2+1]
		sort.Ints(idx)
		return d.Subset(idx)
	}
	for _, smp := range []Sampler{nil, sampler} {
		inline, err := CrossValidate(ds, 3, 42, trainer, smp)
		if err != nil {
			t.Fatal(err)
		}
		_, inputs, err := PrepareFoldsCtx(nil, ds, 3, 42, smp)
		if err != nil {
			t.Fatal(err)
		}
		for range 2 { // a prepared set is reusable across runs
			prepared, err := CrossValidateOpts(ds, 3, 42, trainer, smp, CVOptions{Prepared: inputs})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(inline, prepared) {
				t.Fatalf("prepared-folds CV differs from inline pre-draw (sampler=%v)", smp != nil)
			}
		}
	}
	// Mismatched fold counts are rejected, not silently misused.
	if _, err := CrossValidateOpts(ds, 4, 42, trainer, nil, CVOptions{Prepared: make([]FoldInput, 3)}); err == nil {
		t.Fatal("k=4 accepted 3 prepared folds")
	}
}
