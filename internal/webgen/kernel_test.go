package webgen

import (
	"math/rand"
	"testing"

	"pharmaverify/internal/parallel"
)

// worldsEqual compares two worlds site by site, page by page, including
// the unexported endpoint assignments that drive the link graph.
func worldsEqual(t *testing.T, a, b *World) {
	t.Helper()
	ad, bd := a.Domains(), b.Domains()
	if len(ad) != len(bd) {
		t.Fatalf("domain counts differ: %d vs %d", len(ad), len(bd))
	}
	for i, d := range ad {
		if bd[i] != d {
			t.Fatalf("domain[%d] = %q vs %q", i, d, bd[i])
		}
		sa, sb := a.Site(d), b.Site(d)
		if len(sa.Paths) != len(sb.Paths) {
			t.Fatalf("%s: path counts differ: %d vs %d", d, len(sa.Paths), len(sb.Paths))
		}
		for j, p := range sa.Paths {
			if sb.Paths[j] != p {
				t.Fatalf("%s: paths[%d] = %q vs %q", d, j, p, sb.Paths[j])
			}
			if sa.Pages[p] != sb.Pages[p] {
				t.Fatalf("%s%s: page bytes differ", d, p)
			}
		}
		if len(sa.externals) != len(sb.externals) {
			t.Fatalf("%s: external counts differ: %d vs %d", d, len(sa.externals), len(sb.externals))
		}
		for j := range sa.externals {
			if sa.externals[j] != sb.externals[j] {
				t.Fatalf("%s: externals[%d] = %q vs %q", d, j, sa.externals[j], sb.externals[j])
			}
		}
	}
}

// TestGenerateMatchesReference is the generation kernel's bit-identity
// property: across randomized seeds, snapshots, drift knobs and worker
// counts, the pooled parallel Generate must reproduce the historical
// sequential GenerateReference byte for byte — pages, paths and
// endpoint assignments alike.
func TestGenerateMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		cfg := Config{
			Seed:       rng.Int63n(1 << 40),
			Snapshot:   1 + trial%2,
			NumLegit:   4 + rng.Intn(8),
			NumIllegit: 20 + rng.Intn(30),
		}
		if cfg.Snapshot == 2 {
			cfg.VocabShift = rng.Float64() * 0.5
			cfg.LinkChurn = rng.Float64() * 0.3
		}
		if trial == 4 {
			cfg.BurstFraction = 0.3
			cfg.BurstCohortSize = 4
		}
		ref := GenerateReference(cfg)
		for _, workers := range []int{1, 2, 5} {
			prev := parallel.Default()
			parallel.SetDefault(workers)
			got := Generate(cfg)
			parallel.SetDefault(prev)
			worldsEqual(t, ref, got)
		}
	}
}

// TestRenderPageKernelAllocs pins the pooled render kernel's per-page
// cost: with a warm buffer, one page costs the final string plus at
// most the map-insert amortization — not the dozens of Builder/fmt
// intermediates the reference pays.
func TestRenderPageKernelAllocs(t *testing.T) {
	w, order := buildWorld(Config{Seed: 7, Snapshot: 1, NumLegit: 4, NumIllegit: 20}, false)
	s := w.sites[order[0]]
	rb := &renderBuf{page: make([]byte, 0, 1<<14)}
	w.renderSiteFast(s, rb) // warm: buffer grown, paths cached

	allocs := testing.AllocsPerRun(20, func() {
		w.renderSiteFast(s, rb)
	})
	pages := float64(len(s.Paths))
	// One string per page plus the site's fixed costs (rng + draw
	// hashes, path and external-link strings, the Pages map) come to
	// about 5 allocs/page; the Builder+fmt reference pays ~30/page.
	// Budget 6/page so the pin trips on a regression, not on noise.
	if allocs > pages*6 {
		t.Errorf("warm renderSiteFast costs %.1f allocs for %d pages (> %d budget)", allocs, len(s.Paths), int(pages*6))
	}
}
