package featcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesPerKey(t *testing.T) {
	c := New(8)
	builds := 0
	get := func(key string) any {
		v, err := c.Do(key, func() (any, error) {
			builds++
			return "value-" + key, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := get("a"); v != "value-a" {
		t.Fatalf("got %v", v)
	}
	if v := get("a"); v != "value-a" {
		t.Fatalf("got %v", v)
	}
	if v := get("b"); v != "value-b" {
		t.Fatalf("got %v", v)
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2 (one per distinct key)", builds)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2", hits, misses)
	}
}

func TestSingleflight(t *testing.T) {
	c := New(4)
	var builds atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]any, 32)
	for g := 0; g < len(results); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			v, err := c.Do("shared", func() (any, error) {
				builds.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	close(start)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1 (singleflight)", n)
	}
	for g, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d got %v", g, v)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	// A single shard pins the exact global-LRU order of the historical
	// single-lock cache; multi-shard caches keep the same order per
	// shard.
	c := NewSharded(3, 1)
	for i := 0; i < 3; i++ {
		c.Do(fmt.Sprintf("k%d", i), func() (any, error) { return i, nil })
	}
	// Touch k0 so k1 becomes the LRU victim.
	c.Do("k0", func() (any, error) { t.Fatal("k0 rebuilt"); return nil, nil })
	c.Do("k3", func() (any, error) { return 3, nil })
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if c.Contains("k1") {
		t.Fatal("k1 not evicted (LRU order violated)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if !c.Contains(k) {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestErrorsAreCached(t *testing.T) {
	c := New(2)
	boom := errors.New("boom")
	builds := 0
	for i := 0; i < 2; i++ {
		_, err := c.Do("bad", func() (any, error) {
			builds++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if builds != 1 {
		t.Fatalf("failing build ran %d times, want 1", builds)
	}
}

func TestPurge(t *testing.T) {
	c := New(4)
	c.Do("a", func() (any, error) { return 1, nil })
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	rebuilt := false
	c.Do("a", func() (any, error) { rebuilt = true; return 2, nil })
	if !rebuilt {
		t.Fatal("entry survived purge")
	}
}

func TestDistinctKeysNeverShareEntries(t *testing.T) {
	// Concurrent mixed-key access: every key must see its own value.
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", i)
				v, err := c.Do(key, func() (any, error) { return key + "!", nil })
				if err != nil {
					t.Error(err)
					return
				}
				if v != key+"!" {
					t.Errorf("key %s served foreign value %v", key, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestShardedCapacityDistribution(t *testing.T) {
	cases := []struct {
		max, shards, wantShards int
	}{
		{128, 16, 16},
		{3, 16, 3}, // shards clamp to max
		{10, 0, 1}, // non-positive shard count clamps to 1
		{17, 4, 4}, // uneven split: 5+4+4+4
		{1, 16, 1},
	}
	for _, tc := range cases {
		c := NewSharded(tc.max, tc.shards)
		if c.Shards() != tc.wantShards {
			t.Errorf("NewSharded(%d,%d).Shards() = %d, want %d", tc.max, tc.shards, c.Shards(), tc.wantShards)
		}
		total := 0
		for _, s := range c.shards {
			if s.max < 1 {
				t.Errorf("NewSharded(%d,%d): shard capacity %d < 1", tc.max, tc.shards, s.max)
			}
			total += s.max
		}
		if total != tc.max {
			t.Errorf("NewSharded(%d,%d): shard capacities sum to %d, want %d", tc.max, tc.shards, total, tc.max)
		}
	}
}

func TestShardedBoundHolds(t *testing.T) {
	// Overfill a striped cache: the total entry count must never exceed
	// the global bound no matter how the keys hash.
	c := New(32)
	for i := 0; i < 500; i++ {
		c.Do(fmt.Sprintf("key-%d", i), func() (any, error) { return i, nil })
		if n := c.Len(); n > 32 {
			t.Fatalf("cache grew to %d entries, bound is 32", n)
		}
	}
	_, misses, evictions := func() (uint64, uint64, uint64) { return c.Stats() }()
	if misses != 500 {
		t.Errorf("misses = %d, want 500", misses)
	}
	if evictions < 500-32 {
		t.Errorf("evictions = %d, want >= %d", evictions, 500-32)
	}
}

// TestStripedStress hammers a small striped cache from many goroutines
// with mixed hits, misses and evictions across shards, while checking
// that every key only ever serves its own value and that singleflight
// still deduplicates per key. Run with -race.
func TestStripedStress(t *testing.T) {
	c := NewSharded(24, 8)
	const keys = 96 // 4x the bound: constant eviction pressure
	var builds [keys]atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 400; i++ {
				k := (g*31 + i*17) % keys
				key := fmt.Sprintf("key-%d", k)
				v, err := c.Do(key, func() (any, error) {
					builds[k].Add(1)
					return k, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v != k {
					t.Errorf("key %s served foreign value %v", key, v)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if n := c.Len(); n > 24 {
		t.Fatalf("cache holds %d entries, bound is 24", n)
	}
	hits, misses, _ := c.Stats()
	if hits+misses != 16*400 {
		t.Errorf("hits+misses = %d, want %d lookups", hits+misses, 16*400)
	}
}

// TestSingleflightDedupsUnderShardPressure pins the per-key dedup with
// concurrent traffic on *other* keys of the same cache: unrelated
// builds must not break the shared flight.
func TestSingleflightDedupsUnderShardPressure(t *testing.T) {
	// Bound far above the churn-key count: eviction must not reclaim
	// the shared flight's placeholder (an evicted placeholder may
	// legitimately rebuild).
	c := NewSharded(4096, 8)
	var builds atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				v, err := c.Do("shared", func() (any, error) {
					builds.Add(1)
					<-gate // hold the flight open while other keys churn
					return "payload", nil
				})
				if err != nil || v != "payload" {
					t.Errorf("shared flight: %v, %v", v, err)
				}
			} else {
				for i := 0; i < 50; i++ {
					c.Do(fmt.Sprintf("churn-%d-%d", g, i), func() (any, error) { return i, nil })
				}
				if g == 1 {
					close(gate)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("shared build ran %d times, want 1", n)
	}
}

func TestCancellationErrorsAreNotCached(t *testing.T) {
	for _, cancelErr := range []error{
		context.Canceled,
		context.DeadlineExceeded,
		fmt.Errorf("build fold 2: %w", context.Canceled), // wrapped
	} {
		c := New(8)
		builds := 0
		_, err := c.Do("k", func() (any, error) {
			builds++
			return nil, cancelErr
		})
		if !errors.Is(err, cancelErr) {
			t.Fatalf("first call err = %v, want %v", err, cancelErr)
		}
		if c.Contains("k") {
			t.Fatalf("%v: poisoned placeholder survived in the cache", cancelErr)
		}
		// The retry must rebuild — and a successful rebuild sticks.
		v, err := c.Do("k", func() (any, error) {
			builds++
			return "recovered", nil
		})
		if err != nil || v != "recovered" {
			t.Fatalf("retry got %v, %v", v, err)
		}
		if builds != 2 {
			t.Fatalf("%v: build ran %d times, want 2 (cancel then retry)", cancelErr, builds)
		}
		v, _ = c.Do("k", func() (any, error) { t.Fatal("healthy value rebuilt"); return nil, nil })
		if v != "recovered" {
			t.Fatalf("cached value = %v", v)
		}
	}
}

func TestCancellationEvictionLeavesFreshFlightAlone(t *testing.T) {
	// Sequence: flight A for key k starts and gets evicted by LRU churn;
	// a fresh healthy flight B re-enters k; then A finishes with a
	// cancellation error. A's cleanup must not evict B's entry.
	c := NewSharded(2, 1)
	aStarted := make(chan struct{})
	aFinish := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do("k", func() (any, error) {
			close(aStarted)
			<-aFinish
			return nil, context.Canceled
		})
	}()
	<-aStarted
	// Evict k (flight A's placeholder) with churn on the single shard.
	c.Do("x1", func() (any, error) { return 1, nil })
	c.Do("x2", func() (any, error) { return 2, nil })
	if c.Contains("k") {
		t.Fatal("placeholder not evicted by churn")
	}
	// Fresh healthy flight for k.
	if v, _ := c.Do("k", func() (any, error) { return "healthy", nil }); v != "healthy" {
		t.Fatalf("fresh flight got %v", v)
	}
	close(aFinish)
	<-done
	if !c.Contains("k") {
		t.Fatal("cancelled stale flight evicted the fresh healthy entry")
	}
	v, _ := c.Do("k", func() (any, error) { t.Fatal("rebuilt"); return nil, nil })
	if v != "healthy" {
		t.Fatalf("entry = %v, want healthy", v)
	}
}

func TestScopedStatsSeparateTrainingFromServing(t *testing.T) {
	c := New(8)
	build := func(v any) func() (any, error) {
		return func() (any, error) { return v, nil }
	}
	// Training plane: one miss, two reuse hits.
	c.DoScoped(ScopeTraining, "plane|a", build(1))
	c.DoScoped(ScopeTraining, "plane|a", build(1))
	c.DoScoped(ScopeTraining, "plane|a", build(1))
	// Serving path: two distinct artifacts, one reuse.
	c.DoScoped(ScopeServing, "tv|a", build(2))
	c.DoScoped(ScopeServing, "tv|b", build(3))
	c.DoScoped(ScopeServing, "tv|a", build(2))
	// Unscoped traffic lands under "" and must not pollute either scope.
	c.Do("misc", build(4))

	if got := c.ScopeStats(ScopeTraining); got.Hits != 2 || got.Misses != 1 {
		t.Fatalf("training scope = %+v, want 2 hits / 1 miss", got)
	}
	if got := c.ScopeStats(ScopeServing); got.Hits != 1 || got.Misses != 2 {
		t.Fatalf("serving scope = %+v, want 1 hit / 2 misses", got)
	}
	by := c.StatsByScope()
	if got := by[""]; got.Misses != 1 || got.Hits != 0 {
		t.Fatalf("unscoped = %+v, want 0 hits / 1 miss", got)
	}
	// Scope totals must sum to the aggregate counters.
	hits, misses, _ := c.Stats()
	var sh, sm uint64
	for _, st := range by {
		sh += st.Hits
		sm += st.Misses
	}
	if sh != hits || sm != misses {
		t.Fatalf("scope sums (%d,%d) != aggregate (%d,%d)", sh, sm, hits, misses)
	}

	c.Purge()
	if got := c.ScopeStats(ScopeTraining); got != (CacheStats{}) {
		t.Fatalf("training scope after Purge = %+v, want zero", got)
	}
	if len(c.StatsByScope()) != 0 {
		t.Fatal("StatsByScope not reset by Purge")
	}
}

func TestScopedStatsSameKeyAcrossScopesSharesEntry(t *testing.T) {
	c := New(8)
	calls := 0
	b := func() (any, error) { calls++; return "v", nil }
	c.DoScoped(ScopeTraining, "k", b)
	c.DoScoped(ScopeServing, "k", b)
	if calls != 1 {
		t.Fatalf("build ran %d times, want 1 (scopes are labels, not partitions)", calls)
	}
	if got := c.ScopeStats(ScopeTraining); got.Misses != 1 {
		t.Fatalf("first scope = %+v, want the miss", got)
	}
	if got := c.ScopeStats(ScopeServing); got.Hits != 1 {
		t.Fatalf("second scope = %+v, want the hit", got)
	}
}
