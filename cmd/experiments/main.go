// Command experiments regenerates every table and figure of the
// paper's evaluation section on synthetic data.
//
// Usage:
//
//	experiments -all                 # every artifact, small scale
//	experiments -scale full -all     # paper-sized datasets (slow)
//	experiments -table 6             # one table
//	experiments -figure 2            # one figure (same as -table F2)
//	experiments -list                # list available artifacts
//	experiments -workers 4 -all      # cap the evaluation worker pool
//	experiments -bench-json out.json # sequential-vs-parallel benchmark
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pharmaverify/internal/bench"
	"pharmaverify/internal/buildinfo"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/parallel"
	"pharmaverify/internal/prof"
)

func main() {
	var (
		scaleName   = flag.String("scale", "small", "dataset scale: small or full (paper sizes)")
		table       = flag.String("table", "", "regenerate one table/artifact by ID (1,3..17,F1..F3,A1..A4)")
		figure      = flag.String("figure", "", "regenerate one figure by number (1..3)")
		all         = flag.Bool("all", false, "regenerate every artifact")
		list        = flag.Bool("list", false, "list available artifacts")
		format      = flag.String("format", "text", "output format: text or markdown")
		workers     = flag.Int("workers", 0, "worker-pool size for parallel evaluation (0 = GOMAXPROCS; 1 = sequential)")
		timeout     = flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
		benchJSON   = flag.String("bench-json", "", "run the worker-matrix benchmark and write the JSON report to this file ('-' for stdout)")
		kernelCheck = flag.String("bench-kernel-check", "", "re-run the feature-kernel micro-benchmarks and exit non-zero if they regressed against this baseline report (e.g. BENCH_evaluation.json); also gates the baseline's recorded parallel efficiency")
		kernelTol   = flag.Float64("bench-tolerance", 1.5, "tolerance band for -bench-kernel-check: current speedup may be down to baseline/tol")
		effCheck    = flag.String("bench-efficiency-check", "", "check the parallel efficiency of heavy entries in this benchmark report and exit non-zero below the floor (no re-run; reads the report only)")
		effFloor    = flag.Float64("bench-efficiency-floor", 0, "parallel-efficiency floor for the efficiency checks (0 = the built-in default)")
		cpuProf     = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the run to this file")
		memProf     = flag.String("memprofile", "", "write a runtime/pprof heap profile at exit to this file")
		version     = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("experiments"))
		return
	}

	stopCPU, err := prof.StartCPU(*cpuProf)
	if err != nil {
		fatal(err)
	}
	// fatal() exits without unwinding, so profile flushing hangs off it
	// too: a failed or cancelled run still leaves usable profiles.
	flushProfiles = func() {
		if err := stopCPU(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		if err := prof.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}
	defer flushProfiles()

	// SIGINT/SIGTERM cancel the context: dataset builds and artifact
	// regeneration stop at the next boundary instead of running to the
	// bitter end.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *workers > 0 {
		parallel.SetDefault(*workers)
	}

	// The kernel micro-benchmarks run on a fixed synthetic workload and
	// need no dataset Env, so the regression check stays fast enough for
	// a per-commit CI job.
	if *kernelCheck != "" {
		data, err := os.ReadFile(*kernelCheck)
		if err != nil {
			fatal(err)
		}
		var base bench.BenchReport
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("parse baseline %s: %w", *kernelCheck, err))
		}
		cur := append(bench.RunKernelBenchmarks(0), bench.RunTrainingBenchmarks(0)...)
		for _, k := range cur {
			fmt.Printf("%-20s %10.0f ns/op naive %10.0f ns/op kernel (%5.2fx) %7.1f allocs/op naive %5.1f kernel identical=%v\n",
				k.ID, k.NaiveNSOp, k.KernelNSOp, k.Speedup, k.NaiveAllocsOp, k.KernelAllocsOp, k.Identical)
		}
		if err := bench.CheckKernelRegression(cur, append(base.Kernels, base.Training...), *kernelTol); err != nil {
			fatal(err)
		}
		fmt.Printf("kernel regression check passed against %s (tolerance %.2f)\n", *kernelCheck, *kernelTol)
		if err := bench.CheckParallelEfficiency(&base, *effFloor); err != nil {
			fatal(err)
		}
		if base.GoMaxProcs <= 1 || base.Workers <= 1 {
			fmt.Printf("parallel-efficiency check skipped: baseline recorded at gomaxprocs=%d workers=%d (needs a multi-core run)\n",
				base.GoMaxProcs, base.Workers)
		} else {
			fmt.Println("parallel-efficiency check passed on the baseline report")
		}
		return
	}

	// The efficiency check only reads an existing report (typically one a
	// CI bench job just generated on a multi-core runner) — no dataset or
	// re-measurement needed.
	if *effCheck != "" {
		data, err := os.ReadFile(*effCheck)
		if err != nil {
			fatal(err)
		}
		var rep bench.BenchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			fatal(fmt.Errorf("parse report %s: %w", *effCheck, err))
		}
		for _, e := range rep.Entries {
			if !e.Heavy || len(e.Legs) == 0 {
				continue
			}
			last := e.Legs[len(e.Legs)-1]
			fmt.Printf("%-4s %8v sequential, %.2fx at %d workers, efficiency %.2f, identical=%v\n",
				e.ID, time.Duration(e.SequentialNS).Round(time.Millisecond), last.Speedup, last.Workers, last.Efficiency, e.Identical)
		}
		if err := bench.CheckParallelEfficiency(&rep, *effFloor); err != nil {
			fatal(err)
		}
		if rep.GoMaxProcs <= 1 || rep.Workers <= 1 {
			fmt.Printf("parallel-efficiency check skipped: report recorded at gomaxprocs=%d workers=%d (needs a multi-core run)\n",
				rep.GoMaxProcs, rep.Workers)
		} else {
			fmt.Printf("parallel-efficiency check passed for %s\n", *effCheck)
		}
		return
	}

	if *list {
		for _, r := range bench.Runners {
			fmt.Printf("%-4s %s\n", r.ID, r.Desc)
		}
		return
	}

	var scale bench.Scale
	switch *scaleName {
	case "small":
		scale = bench.SmallScale
	case "full":
		scale = bench.FullScale
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want small or full)\n", *scaleName)
		os.Exit(2)
	}

	id := *table
	if *figure != "" {
		id = "F" + *figure
	}
	if id == "" && !*all && *benchJSON == "" {
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("generating synthetic datasets (scale=%s, seed=%d)...\n", scale.Name, scale.Seed)
	start := time.Now()
	env, err := bench.NewEnvCtx(ctx, scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("datasets ready in %v: %s has %d pharmacies, %s has %d\n",
		time.Since(start).Round(time.Millisecond),
		env.Snap1.Name, env.Snap1.Len(), env.Snap2.Name, env.Snap2.Len())
	for _, snap := range []*dataset.Snapshot{env.Snap1, env.Snap2} {
		if st := snap.CrawlStats; st != nil {
			fmt.Printf("crawl telemetry (%s): %d attempts, %d retries, %d failed, %d pages lost, %d breaker trips, %.1f MiB\n",
				snap.Name, st.Attempts, st.Retries, st.Failures, st.PagesFailed, st.BreakerTrips,
				float64(st.Bytes)/(1<<20))
		}
	}
	fmt.Println()

	if *benchJSON != "" {
		var ids []string
		if id != "" {
			ids = strings.Split(id, ",")
		}
		rep, err := bench.RunBenchmark(env, ids, *workers)
		if err != nil {
			fatal(err)
		}
		out := os.Stdout
		if *benchJSON != "-" {
			f, err := os.Create(*benchJSON)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			fatal(err)
		}
		fmt.Printf("benchmark: %d artifacts, worker matrix %v, total %v sequential vs %v parallel (%.2fx, identical=%v)\n",
			len(rep.Entries), rep.WorkerMatrix,
			time.Duration(rep.TotalSequentialNS).Round(time.Millisecond),
			time.Duration(rep.TotalParallelNS).Round(time.Millisecond),
			rep.TotalSpeedup, rep.AllIdentical)
		for _, e := range rep.Entries {
			if !e.Heavy {
				continue
			}
			last := e.Legs[len(e.Legs)-1]
			fmt.Printf("heavy  %-4s %8v sequential, %.2fx at %d workers, efficiency %.2f\n",
				e.ID, time.Duration(e.SequentialNS).Round(time.Millisecond), last.Speedup, last.Workers, last.Efficiency)
		}
		for _, k := range rep.Kernels {
			fmt.Printf("kernel %-18s %.2fx faster, %.1f -> %.1f allocs/op, identical=%v\n",
				k.ID, k.Speedup, k.NaiveAllocsOp, k.KernelAllocsOp, k.Identical)
		}
		for _, k := range rep.Training {
			fmt.Printf("train  %-18s %.2fx faster, %.1f -> %.1f allocs/op, identical=%v\n",
				k.ID, k.Speedup, k.NaiveAllocsOp, k.KernelAllocsOp, k.Identical)
		}
		return
	}

	run := func(r bench.Runner) {
		// Check the context between artifacts: a signal or an expired
		// -timeout stops the sweep at the next clean boundary with the
		// completed tables already printed.
		if err := ctx.Err(); err != nil {
			fatal(fmt.Errorf("stopping before %s: %w", r.ID, err))
		}
		t0 := time.Now()
		tab, err := r.Run(env)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.ID, err))
		}
		if *format == "markdown" {
			_, err = tab.WriteMarkdown(os.Stdout)
		} else {
			_, err = tab.WriteTo(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(%s regenerated in %v)\n\n", tab.ID, time.Since(t0).Round(time.Millisecond))
	}

	if *all {
		for _, r := range bench.Runners {
			run(r)
		}
		return
	}
	r := bench.FindRunner(id)
	if r == nil {
		fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q (use -list)\n", id)
		os.Exit(2)
	}
	run(*r)
}

// flushProfiles stops the CPU profile and writes the heap profile, if
// profiling was requested; set in main once the flags are parsed.
var flushProfiles = func() {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	flushProfiles()
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
