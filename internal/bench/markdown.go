package bench

import (
	"fmt"
	"io"
	"strings"
)

// WriteMarkdown renders the table as GitHub-flavored markdown, used by
// `cmd/experiments -format markdown` to regenerate the EXPERIMENTS.md
// sections.
func (t *Table) WriteMarkdown(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)

	width := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > width {
			width = len(row)
		}
	}
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for i := 0; i < width; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteByte(' ')
			b.WriteString(escapeMarkdownCell(c))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	b.WriteByte('|')
	for i := 0; i < width; i++ {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func escapeMarkdownCell(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	s = strings.ReplaceAll(s, "\n", " ")
	if s == "" {
		return " "
	}
	return s
}
