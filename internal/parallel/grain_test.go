package parallel

import "testing"

func TestPlanGrainFoldLevelWhenFoldsCoverWorkers(t *testing.T) {
	p := PlanGrain(3, 3, 200)
	if p.Level != "fold" || p.FoldWorkers != 3 || p.DocWorkers != 1 {
		t.Fatalf("plan = %v, want fold-level with 3 outer workers", p)
	}
	if p.DocGrain != 200 {
		t.Fatalf("fold-level inner grain = %d, want one maximal chunk (200)", p.DocGrain)
	}
	// Fewer workers than folds: still fold-level, budget respected.
	p = PlanGrain(2, 3, 200)
	if p.Level != "fold" || p.FoldWorkers != 2 {
		t.Fatalf("plan = %v, want fold-level capped at 2 workers", p)
	}
}

func TestPlanGrainDocLevelForSinglePass(t *testing.T) {
	p := PlanGrain(4, 1, 640)
	if p.Level != "doc" || p.DocWorkers != 4 || p.FoldWorkers != 1 {
		t.Fatalf("plan = %v, want doc-level with 4 inner workers", p)
	}
	// 640/(4 chunks × 4 workers) = 40, capped at the 16 ceiling.
	if p.DocGrain != grainCeil {
		t.Fatalf("grain = %d, want the %d ceiling", p.DocGrain, grainCeil)
	}
	// Tiny ranges: grain floors at 1.
	if g := PlanGrain(8, 1, 3).DocGrain; g != 1 {
		t.Fatalf("tiny-range grain = %d, want 1", g)
	}
}

func TestPlanGrainHybridSharesBudget(t *testing.T) {
	p := PlanGrain(8, 3, 300)
	if p.Level != "hybrid" {
		t.Fatalf("plan = %v, want hybrid", p)
	}
	if p.FoldWorkers != 3 || p.DocWorkers != 3 {
		t.Fatalf("plan = %v, want 3 outer × ceil(8/3)=3 inner", p)
	}
	// Total concurrency stays within one fold of the budget.
	if total := p.FoldWorkers * p.DocWorkers; total > 8+3 {
		t.Fatalf("hybrid oversubscribes: %d slots for budget 8", total)
	}
	if p.DocGrain < 1 {
		t.Fatalf("grain = %d, want >= 1", p.DocGrain)
	}
}

func TestPlanGrainForRecordsDecisions(t *testing.T) {
	ResetGrainDecisions()
	PlanGrainFor("test-site", 4, 1, 640)
	got := GrainDecisions()
	want := GrainPlan{Level: "doc", FoldWorkers: 1, DocWorkers: 4, DocGrain: 16}.String()
	if got["test-site"] != want {
		t.Fatalf("recorded %q, want %q", got["test-site"], want)
	}
	if sites := GrainSites(); len(sites) != 1 || sites[0] != "test-site" {
		t.Fatalf("sites = %v", sites)
	}
	// Re-planning the same site overwrites, not appends.
	PlanGrainFor("test-site", 2, 3, 10)
	if len(GrainDecisions()) != 1 {
		t.Fatal("re-plan duplicated the site")
	}
	ResetGrainDecisions()
	if len(GrainDecisions()) != 0 {
		t.Fatal("reset did not clear decisions")
	}
}

func TestPlanGrainDegenerateInputs(t *testing.T) {
	// Zero/negative folds and docs clamp to 1; workers<=0 resolves to
	// the process default, which is at least 1.
	p := PlanGrain(1, 0, 0)
	if p.DocGrain < 1 || p.FoldWorkers < 1 || p.DocWorkers < 1 {
		t.Fatalf("degenerate plan = %v", p)
	}
}
