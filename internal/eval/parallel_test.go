package eval

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"pharmaverify/internal/ml"
)

// jitterOversample is an RNG-hungry sampler: it duplicates minority
// instances with random noise, consuming a data-dependent number of
// draws from the shared master stream. Any deviation from the
// sequential draw order changes the synthetic instances — exactly the
// hazard the pre-draw phase of CrossValidateOpts exists to prevent.
func jitterOversample(ds *ml.Dataset, rng *rand.Rand) *ml.Dataset {
	out := &ml.Dataset{Dim: ds.Dim}
	for i := range ds.X {
		out.Add(ds.X[i], ds.Y[i], ds.Names[i])
	}
	pos, neg := ds.CountClass(ml.Legitimate), ds.CountClass(ml.Illegitimate)
	for pos < neg {
		i := rng.Intn(ds.Len())
		if ds.Y[i] != ml.Legitimate {
			continue
		}
		x := ds.X[i].Dense(ds.Dim)
		for j := range x {
			x[j] += rng.NormFloat64() * 0.05
		}
		out.Add(ml.NewVector(x), ml.Legitimate, "")
		pos++
	}
	return out
}

// meanClassifier is training-data sensitive: its decision boundary is
// the midpoint of the class means on feature 0, so any change to the
// sampled training set shows up in the scores.
type meanClassifier struct{ mid float64 }

func (c *meanClassifier) Fit(ds *ml.Dataset) error {
	var sumPos, sumNeg float64
	var nPos, nNeg int
	for i := range ds.X {
		if ds.Y[i] == ml.Legitimate {
			sumPos += ds.X[i].At(0)
			nPos++
		} else {
			sumNeg += ds.X[i].At(0)
			nNeg++
		}
	}
	c.mid = (sumPos/float64(nPos) + sumNeg/float64(nNeg)) / 2
	return nil
}
func (c *meanClassifier) Prob(x ml.Vector) float64 { return ml.Sigmoid(4 * (x.At(0) - c.mid)) }
func (c *meanClassifier) Predict(x ml.Vector) int  { return ml.PredictFromProb(c.Prob(x)) }

// TestCrossValidateParallelDeterministic pins the engine's core
// guarantee: with an RNG-consuming sampler in play, the CVResult at
// Workers=1 is identical — scores, labels, confusions, AUCs, test
// indices — to the result at many workers.
func TestCrossValidateParallelDeterministic(t *testing.T) {
	ds := imbalancedDataset(240, 40, 5)
	run := func(workers int) CVResult {
		res, err := CrossValidateOpts(ds, 3, 77,
			func() ml.Classifier { return &meanClassifier{} },
			jitterOversample, CVOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, w := range []int{2, 8, runtime.GOMAXPROCS(0)} {
		par := run(w)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("CVResult differs between Workers=1 and Workers=%d", w)
		}
	}
}

// TestCrossValidateParallelError checks that the parallel run surfaces
// the same (lowest-fold) error a sequential loop would.
func TestCrossValidateParallelError(t *testing.T) {
	ds := imbalancedDataset(120, 20, 6)
	calls := 0
	trainer := func() ml.Classifier {
		calls++
		return &failingClassifier{fail: true}
	}
	_, errSeq := CrossValidateOpts(ds, 3, 9, trainer, nil, CVOptions{Workers: 1})
	_, errPar := CrossValidateOpts(ds, 3, 9, trainer, nil, CVOptions{Workers: 4})
	if errSeq == nil || errPar == nil {
		t.Fatal("expected errors from failing classifier")
	}
	if errSeq.Error() != errPar.Error() {
		t.Fatalf("error differs: sequential %q vs parallel %q", errSeq, errPar)
	}
}

type failingClassifier struct{ fail bool }

func (c *failingClassifier) Fit(*ml.Dataset) error { return ml.ErrEmptyDataset }
func (c *failingClassifier) Prob(ml.Vector) float64 {
	return 0.5
}
func (c *failingClassifier) Predict(ml.Vector) int { return 0 }
