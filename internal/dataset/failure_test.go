package dataset

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/ml"
)

// flakyFetcher fails every nth fetch, simulating timeouts and vanished
// pages — routine conditions when crawling illegitimate pharmacies,
// which appear and disappear at a high rate (paper §2.1).
type flakyFetcher struct {
	inner crawler.Fetcher
	n     int32
	count int32
}

func (f *flakyFetcher) Fetch(domain, path string) (string, error) {
	if atomic.AddInt32(&f.count, 1)%f.n == 0 {
		return "", errors.New("simulated timeout")
	}
	return f.inner.Fetch(domain, path)
}

// staticSite serves a small fixed site for any domain.
type staticSite struct{}

func (staticSite) Fetch(domain, path string) (string, error) {
	switch path {
	case "/":
		return `<title>t</title><a href="/a">a</a><a href="/b">b</a><a href="http://ext.example/x">e</a><p>front page words</p>`, nil
	case "/a":
		return `<p>page a healthy content</p>`, nil
	case "/b":
		return `<p>page b more content</p>`, nil
	}
	return "", errors.New("404")
}

func TestBuildSurvivesFlakyFetches(t *testing.T) {
	f := &flakyFetcher{inner: staticSite{}, n: 3}
	domains := []string{"d1.example", "d2.example", "d3.example"}
	labels := map[string]int{"d1.example": 1, "d2.example": 0, "d3.example": 0}
	snap, err := Build("flaky", f, domains, labels, crawler.Config{Workers: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 3 {
		t.Fatalf("len = %d", snap.Len())
	}
	// Some pages failed, but whatever was fetched must be preprocessed.
	totalPages := 0
	for _, p := range snap.Pharmacies {
		totalPages += p.Pages
	}
	if totalPages == 0 {
		t.Error("no pages at all despite partial availability")
	}
}

func TestBuildTotalFetchFailure(t *testing.T) {
	dead := crawler.FetcherFunc(func(domain, path string) (string, error) {
		return "", errors.New("connection refused")
	})
	snap, err := Build("dead", dead, []string{"gone.example"}, map[string]int{"gone.example": 0}, crawler.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := snap.Pharmacies[0]
	if p.Pages != 0 || len(p.Terms) != 0 || len(p.Outbound) != 0 {
		t.Errorf("dead site must produce an empty pharmacy record: %+v", p)
	}
	if p.Label != ml.Illegitimate {
		t.Error("label must survive even with no content")
	}
}

func TestBuildHugePageTruncationFree(t *testing.T) {
	// A pathological page (1 MB of text) must flow through
	// summarization without corruption.
	big := crawler.FetcherFunc(func(domain, path string) (string, error) {
		if path != "/" {
			return "", errors.New("404")
		}
		return "<p>" + strings.Repeat("megapage viagra content ", 40000) + "</p>", nil
	})
	snap, err := Build("big", big, []string{"big.example"}, map[string]int{"big.example": 0}, crawler.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Pharmacies[0].Terms) < 100000 {
		t.Errorf("terms = %d, expected the full page tokenized", len(snap.Pharmacies[0].Terms))
	}
}
