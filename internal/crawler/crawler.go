// Package crawler implements the site crawler used to collect pharmacy
// content, standing in for the crawler4j setup of the paper: each
// domain is crawled breadth-first without a depth limit but with a cap
// of 200 pages (the paper's configuration), collecting per-page visible
// text and both internal and external links.
//
// The crawler is generic over a Fetcher, so it runs against the
// synthetic web of internal/webgen in experiments and against live HTTP
// (HTTPFetcher) when pointed at the real internet.
package crawler

import (
	"sort"
	"strings"
	"sync"
	"time"

	"pharmaverify/internal/htmlx"
)

// DefaultMaxPages is the per-domain page cap from the paper.
const DefaultMaxPages = 200

// Fetcher retrieves one page of a domain. Implementations must be safe
// for concurrent use.
type Fetcher interface {
	Fetch(domain, path string) (html string, err error)
}

// FetcherFunc adapts a function to the Fetcher interface.
type FetcherFunc func(domain, path string) (string, error)

// Fetch calls f.
func (f FetcherFunc) Fetch(domain, path string) (string, error) { return f(domain, path) }

// Config controls a crawl.
type Config struct {
	// MaxPages caps pages fetched per domain (default 200).
	MaxPages int
	// Workers is the number of concurrent fetches per domain
	// (default 4).
	Workers int
	// UserAgent identifies the crawler to robots.txt policies
	// (default "pharmaverify").
	UserAgent string
	// IgnoreRobots disables robots.txt processing. By default the
	// crawler fetches /robots.txt first and honors Disallow rules, as
	// crawler4j does.
	IgnoreRobots bool
	// Delay inserts a politeness pause before every page fetch
	// (crawler4j's politenessDelay). Zero means no delay — appropriate
	// for the synthetic web; set ~200ms+ for live crawls.
	Delay time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxPages == 0 {
		c.MaxPages = DefaultMaxPages
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.UserAgent == "" {
		c.UserAgent = "pharmaverify"
	}
	return c
}

// Page is one crawled page.
type Page struct {
	Path  string
	Title string
	Text  string
	Links []string
}

// Result is the outcome of crawling one domain.
type Result struct {
	Domain string
	// Pages is sorted by path for deterministic downstream processing.
	Pages []Page
	// External holds the raw external link URLs found anywhere on the
	// site, deduplicated, sorted.
	External []string
	// Fetched and Failed count page fetch attempts.
	Fetched, Failed int
}

// Text returns the merged text of all pages (the summarization input).
func (r Result) Text() []string {
	out := make([]string, len(r.Pages))
	for i, p := range r.Pages {
		out[i] = p.Text
	}
	return out
}

// Crawl fetches one domain breadth-first starting from "/". Unless
// Config.IgnoreRobots is set, /robots.txt is consulted first and
// disallowed paths are skipped (a missing robots.txt allows all).
func Crawl(f Fetcher, domain string, cfg Config) Result {
	cfg = cfg.withDefaults()

	var robots *Robots
	if !cfg.IgnoreRobots {
		if body, err := f.Fetch(domain, "/robots.txt"); err == nil {
			robots = ParseRobots(body)
		}
	}
	allowed := func(path string) bool {
		return robots.Allowed(cfg.UserAgent, path)
	}
	if !allowed("/") {
		return Result{Domain: domain}
	}

	var (
		mu       sync.Mutex
		seen     = map[string]bool{"/": true}
		frontier = []string{"/"}
		inFlight int
		pages    []Page
		external = map[string]bool{}
		failed   int
		cond     = sync.NewCond(&mu)
	)

	worker := func() {
		for {
			mu.Lock()
			for len(frontier) == 0 && inFlight > 0 {
				cond.Wait()
			}
			if len(frontier) == 0 || len(pages) >= cfg.MaxPages {
				mu.Unlock()
				return
			}
			path := frontier[0]
			frontier = frontier[1:]
			inFlight++
			mu.Unlock()

			if cfg.Delay > 0 {
				time.Sleep(cfg.Delay)
			}
			html, err := f.Fetch(domain, path)

			mu.Lock()
			inFlight--
			if err != nil {
				failed++
				cond.Broadcast()
				mu.Unlock()
				continue
			}
			if len(pages) >= cfg.MaxPages {
				cond.Broadcast()
				mu.Unlock()
				return
			}
			pg := htmlx.Parse(html)
			pages = append(pages, Page{Path: path, Title: pg.Title, Text: pg.Text, Links: pg.Links})
			for _, link := range pg.Links {
				if ip, ok := internalPath(link, domain); ok {
					if !allowed(ip) {
						continue
					}
					if !seen[ip] && len(seen) < 4*cfg.MaxPages {
						seen[ip] = true
						frontier = append(frontier, ip)
					}
				} else if isExternal(link) {
					external[link] = true
				}
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()

	sort.Slice(pages, func(i, j int) bool { return pages[i].Path < pages[j].Path })
	ext := make([]string, 0, len(external))
	for l := range external {
		ext = append(ext, l)
	}
	sort.Strings(ext)
	return Result{
		Domain:   domain,
		Pages:    pages,
		External: ext,
		Fetched:  len(pages),
		Failed:   failed,
	}
}

// CrawlAll crawls many domains concurrently (parallel controls the
// number of simultaneous domain crawls; 0 means 8) and returns results
// keyed by domain.
func CrawlAll(f Fetcher, domains []string, cfg Config, parallel int) map[string]Result {
	if parallel <= 0 {
		parallel = 8
	}
	results := make(map[string]Result, len(domains))
	var mu sync.Mutex
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for _, d := range domains {
		wg.Add(1)
		go func(domain string) {
			defer wg.Done()
			sem <- struct{}{}
			r := Crawl(f, domain, cfg)
			<-sem
			mu.Lock()
			results[domain] = r
			mu.Unlock()
		}(d)
	}
	wg.Wait()
	return results
}

// internalPath resolves a link against the crawled domain. It accepts
// site-relative paths ("/x"), same-document-relative names ("page2"),
// and absolute URLs whose host is the domain or its www alias, and
// returns the normalized path.
func internalPath(link, domain string) (string, bool) {
	switch {
	case link == "" || strings.HasPrefix(link, "#") ||
		strings.HasPrefix(link, "mailto:") || strings.HasPrefix(link, "javascript:") ||
		strings.HasPrefix(link, "tel:"):
		return "", false
	case strings.HasPrefix(link, "//"):
		link = "http:" + link
	}
	if i := strings.Index(link, "://"); i >= 0 {
		rest := link[i+3:]
		var host, path string
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			host, path = rest[:j], rest[j:]
		} else {
			host, path = rest, "/"
		}
		if k := strings.IndexByte(host, ':'); k >= 0 {
			host = host[:k]
		}
		host = strings.ToLower(host)
		if host == domain || host == "www."+domain {
			return splitFragment(path), true
		}
		return "", false
	}
	if strings.HasPrefix(link, "/") {
		return splitFragment(link), true
	}
	// Bare relative name: resolve against the site root.
	return splitFragment("/" + link), true
}

func splitFragment(p string) string {
	if i := strings.IndexByte(p, '#'); i >= 0 {
		p = p[:i]
	}
	if p == "" {
		p = "/"
	}
	return p
}

// isExternal reports whether a link points at another host.
func isExternal(link string) bool {
	return strings.Contains(link, "://") || strings.HasPrefix(link, "//")
}
