package crawler

import (
	"errors"
	"testing"
	"time"
)

func TestParseRobotsBasic(t *testing.T) {
	r := ParseRobots(`
User-agent: *
Disallow: /admin
Disallow: /private/

User-agent: pharmaverify
Disallow: /checkout
Allow: /checkout/info
`)
	cases := []struct {
		ua, path string
		want     bool
	}{
		{"pharmaverify", "/", true},
		{"pharmaverify", "/checkout", false},
		{"pharmaverify", "/checkout/cart", false},
		{"pharmaverify", "/checkout/info", true}, // longer Allow wins
		{"pharmaverify", "/admin", true},         // specific group overrides *
		{"otherbot", "/admin", false},
		{"otherbot", "/admin/x", false},
		{"otherbot", "/public", true},
	}
	for _, c := range cases {
		if got := r.Allowed(c.ua, c.path); got != c.want {
			t.Errorf("Allowed(%q,%q) = %v, want %v", c.ua, c.path, got, c.want)
		}
	}
}

func TestParseRobotsComments(t *testing.T) {
	r := ParseRobots("User-agent: * # everyone\nDisallow: /x # no x\n")
	if r.Allowed("bot", "/x") {
		t.Error("comment handling broke Disallow")
	}
	if !r.Allowed("bot", "/y") {
		t.Error("comment handling broke Allow-by-default")
	}
}

func TestParseRobotsEmptyDisallow(t *testing.T) {
	r := ParseRobots("User-agent: *\nDisallow:\n")
	if !r.Allowed("bot", "/anything") {
		t.Error("empty Disallow must allow everything")
	}
}

func TestParseRobotsSharedAgentGroup(t *testing.T) {
	r := ParseRobots("User-agent: a\nUser-agent: b\nDisallow: /x\n")
	if r.Allowed("a", "/x") || r.Allowed("b", "/x") {
		t.Error("consecutive User-agent lines must share rules")
	}
}

func TestParseRobotsNilSafe(t *testing.T) {
	var r *Robots
	if !r.Allowed("any", "/path") {
		t.Error("nil Robots must allow all")
	}
}

func TestParseRobotsNoGroups(t *testing.T) {
	r := ParseRobots("# only comments\n")
	if !r.Allowed("bot", "/x") {
		t.Error("empty robots must allow all")
	}
}

func TestParseRobotsRulesBeforeAgent(t *testing.T) {
	r := ParseRobots("Disallow: /secret\n")
	if r.Allowed("bot", "/secret") {
		t.Error("headless rules must apply to all agents")
	}
}

func TestCrawlHonorsRobots(t *testing.T) {
	f := mapFetcher{
		"x.com|/robots.txt": "User-agent: *\nDisallow: /private\n",
		"x.com|/":           `<a href="/public">p</a><a href="/private">s</a><p>.</p>`,
		"x.com|/public":     `<p>open</p>`,
		"x.com|/private":    `<p>secret</p>`,
	}
	r := Crawl(f, "x.com", Config{})
	if len(r.Pages) != 2 {
		t.Fatalf("pages = %d, want 2 (robots must exclude /private)", len(r.Pages))
	}
	for _, p := range r.Pages {
		if p.Path == "/private" {
			t.Error("disallowed path crawled")
		}
	}
}

func TestCrawlRobotsFullBlock(t *testing.T) {
	f := mapFetcher{
		"x.com|/robots.txt": "User-agent: *\nDisallow: /\n",
		"x.com|/":           `<p>content</p>`,
	}
	r := Crawl(f, "x.com", Config{})
	if len(r.Pages) != 0 {
		t.Errorf("fully blocked site crawled %d pages", len(r.Pages))
	}
}

func TestCrawlIgnoreRobots(t *testing.T) {
	f := mapFetcher{
		"x.com|/robots.txt": "User-agent: *\nDisallow: /\n",
		"x.com|/":           `<p>content</p>`,
	}
	r := Crawl(f, "x.com", Config{IgnoreRobots: true})
	if len(r.Pages) != 1 {
		t.Errorf("IgnoreRobots crawl got %d pages", len(r.Pages))
	}
}

func TestCrawlMissingRobotsAllowsAll(t *testing.T) {
	f := FetcherFunc(func(domain, path string) (string, error) {
		if path == "/robots.txt" {
			return "", errors.New("404")
		}
		return `<p>fine</p>`, nil
	})
	r := Crawl(f, "x.com", Config{})
	if len(r.Pages) != 1 || r.Failed != 0 {
		t.Errorf("missing robots.txt must not count as failure: %+v", r)
	}
}

func TestCrawlSpecificAgentGroup(t *testing.T) {
	f := mapFetcher{
		"x.com|/robots.txt": "User-agent: pharmaverify\nDisallow: /only-us\nUser-agent: *\nDisallow: /\n",
		"x.com|/":           `<a href="/only-us">x</a><a href="/open">y</a><p>.</p>`,
		"x.com|/only-us":    `<p>no</p>`,
		"x.com|/open":       `<p>yes</p>`,
	}
	r := Crawl(f, "x.com", Config{UserAgent: "pharmaverify"})
	got := map[string]bool{}
	for _, p := range r.Pages {
		got[p.Path] = true
	}
	if got["/only-us"] {
		t.Error("agent-specific Disallow ignored")
	}
	if !got["/open"] {
		t.Error("agent-specific group must override the * full block")
	}
}

func TestCrawlPolitenessDelay(t *testing.T) {
	f := mapFetcher{
		"x.com|/":  `<a href="/a">a</a><p>.</p>`,
		"x.com|/a": `<p>a</p>`,
	}
	start := time.Now()
	r := Crawl(f, "x.com", Config{Delay: 30 * time.Millisecond, Workers: 1})
	if len(r.Pages) != 2 {
		t.Fatalf("pages = %d", len(r.Pages))
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("two delayed fetches took only %v", elapsed)
	}
}
