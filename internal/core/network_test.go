package core

import (
	"math"
	"testing"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/webgen"
)

// auxSnapshot builds a small snapshot that carries auxiliary directory
// sites, so IncludeAuxiliary actually merges something.
func auxSnapshot(t testing.TB) *dataset.Snapshot {
	t.Helper()
	w := webgen.Generate(webgen.Config{
		Seed: 17, NumLegit: 12, NumIllegit: 48, NetworkSize: 12,
	})
	dirs := w.GenerateDirectories(2, 2)
	auxDomains := w.AttachDirectories(dirs)
	snap, err := dataset.BuildWithAux("aux-test", w, w.Domains(), w.Labels(), auxDomains, crawler.Config{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func trainSeeds(snap *dataset.Snapshot) map[string]float64 {
	seeds := map[string]float64{}
	for _, p := range snap.Pharmacies {
		if p.Label == 1 {
			seeds[p.Domain] = 1
		}
	}
	return seeds
}

// TestNetworkScoresDoesNotMutateSnapshot is the regression test for the
// snapshot-aliasing bug: NetworkScores with IncludeAuxiliary used to
// write auxiliary endpoints straight into the shared map returned by
// snap.Outbound(), so a second call saw a polluted link graph.
func TestNetworkScoresDoesNotMutateSnapshot(t *testing.T) {
	snap := auxSnapshot(t)
	seeds := trainSeeds(snap)
	cfg := NetworkConfig{IncludeAuxiliary: true}

	first, err := NetworkScores(snap, seeds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The shared outbound map must still describe pharmacies only.
	outbound := snap.Outbound()
	if len(outbound) != snap.Len() {
		t.Fatalf("snap.Outbound() grew to %d entries after NetworkScores (want %d)",
			len(outbound), snap.Len())
	}
	for _, a := range snap.Aux {
		if _, ok := outbound[a.Domain]; ok {
			t.Errorf("auxiliary domain %s leaked into snap.Outbound()", a.Domain)
		}
	}

	second, err := NetworkScores(snap, seeds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("score lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if math.Abs(first[i]-second[i]) > 1e-12 {
			t.Fatalf("scores diverge at %d: %g vs %g (snapshot link graph was mutated)",
				i, first[i], second[i])
		}
	}

	// And the aux-free configuration must be unaffected by prior
	// auxiliary runs.
	plain, err := NetworkScores(snap, seeds, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != snap.Len() {
		t.Fatalf("plain scores length %d, want %d", len(plain), snap.Len())
	}
}

func TestNetworkScoresAuxiliaryChangesScores(t *testing.T) {
	// Sanity check that IncludeAuxiliary actually feeds the graph: the
	// isolated legitimate pharmacies listed by health portals should
	// gain trust relative to the base run.
	snap := auxSnapshot(t)
	seeds := trainSeeds(snap)
	base, err := NetworkScores(snap, seeds, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aux, err := NetworkScores(snap, seeds, NetworkConfig{IncludeAuxiliary: true})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range base {
		if math.Abs(base[i]-aux[i]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Error("IncludeAuxiliary had no effect on any score")
	}
}
