package checkpoint

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreGetCorruptRecord feeds mutated record bytes to the decode
// path and to Store.Get: whatever the corruption — truncation, flipped
// bits, hostile length prefixes — a read must either return the
// genuinely valid record or quarantine the file and report a miss that
// a fresh Put recovers from. It must never panic and never return
// garbage as a hit. The re-verification scheduler leans on exactly this
// contract: a damaged journal degrades a resume to re-crawling, never
// to wrong sweep state.
func FuzzStoreGetCorruptRecord(f *testing.F) {
	const kind, key = "reverify", "domain.test"
	valid := encode(key, []byte(`{"sweep":3}`))

	f.Add(valid)
	f.Add(valid[:len(valid)/2])                        // truncated mid-record
	f.Add(valid[:len(valid)-1])                        // missing final checksum byte
	f.Add(valid[:len(magic)+4])                        // truncated key length prefix
	f.Add([]byte{})                                    // empty file
	f.Add([]byte(magic))                               // header only
	f.Add(encode("other.test", []byte(`{"sweep":3}`))) // filename collision: wrong embedded key
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	// Hostile key length claiming more bytes than the record holds.
	hostile := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hostile[len(magic):], 1<<40)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The pure decoder must reject every non-canonical encoding.
		if k, payload, err := decode(data); err == nil {
			if !bytes.Equal(encode(k, payload), data) {
				t.Fatal("decode accepted a non-canonical record")
			}
		}

		// A store reading the bytes as (kind, key)'s record must either
		// hit with the canonical record for that key, or quarantine.
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.Logf = func(string, ...any) {}
		p := s.path(kind, key)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		payload, ok, err := s.Get(kind, key)
		if err != nil {
			t.Fatalf("Get returned an error for corrupt bytes (want quarantine): %v", err)
		}
		if ok {
			if !bytes.Equal(encode(key, payload), data) {
				t.Fatal("Get served a record the canonical encoding disagrees with")
			}
			return
		}
		// Quarantined: the slot must be cleanly rewritable, exactly how a
		// resuming sweep recomputes the unit.
		if s.Quarantined() != 1 {
			t.Fatalf("Quarantined = %d after one corrupt read, want 1", s.Quarantined())
		}
		if err := s.Put(kind, key, []byte("recomputed")); err != nil {
			t.Fatalf("Put after quarantine: %v", err)
		}
		got, ok, err := s.Get(kind, key)
		if err != nil || !ok || !bytes.Equal(got, []byte("recomputed")) {
			t.Fatalf("recomputed unit unreadable after quarantine: %q ok=%v err=%v", got, ok, err)
		}
	})
}
