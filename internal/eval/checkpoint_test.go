package eval

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"pharmaverify/internal/checkpoint"
	"pharmaverify/internal/ml"
)

func openStore(t *testing.T) *checkpoint.Store {
	t.Helper()
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestCrossValidateCheckpointReplay checks that a second run with the
// same inputs and key replays every fold from the journal — no trainer
// call at all — and yields a result identical to the first.
func TestCrossValidateCheckpointReplay(t *testing.T) {
	ds := imbalancedDataset(120, 24, 31)
	store := openStore(t)
	opt := CVOptions{Checkpoint: store, CheckpointKey: "replay/k3/seed7"}

	ref, err := CrossValidateOpts(ds, 3, 7, func() ml.Classifier { return &meanClassifier{} }, nil, opt)
	if err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	counting := func() ml.Classifier {
		calls.Add(1)
		return &meanClassifier{}
	}
	replayed, err := CrossValidateOpts(ds, 3, 7, counting, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("replay trained %d folds, want 0", n)
	}
	if !reflect.DeepEqual(ref, replayed) {
		t.Error("replayed CVResult differs from the original run")
	}
}

// TestCrossValidateCheckpointResume interrupts a CV run after the first
// folds are journaled, then resumes: only the unfinished folds train,
// and the result matches an uninterrupted, checkpoint-free run —
// including with an RNG-consuming sampler, whose pre-draw stream must
// be replayed in full on resume.
func TestCrossValidateCheckpointResume(t *testing.T) {
	ds := imbalancedDataset(150, 30, 32)
	trainer := func() ml.Classifier { return &meanClassifier{} }
	want, err := CrossValidate(ds, 3, 9, trainer, jitterOversample)
	if err != nil {
		t.Fatal(err)
	}

	store := openStore(t)
	opt := CVOptions{Workers: 1, Checkpoint: store, CheckpointKey: "resume/k3/seed9"}

	// Sequential run that cancels itself inside the second fold's
	// training: fold 0 and fold 1 reach the journal, fold 2 is never
	// dispatched.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fits atomic.Int64
	tripwire := func() ml.Classifier {
		if fits.Add(1) == 2 {
			cancel()
		}
		return &meanClassifier{}
	}
	_, err = CrossValidateCtx(ctx, ds, 3, 9, tripwire, jitterOversample, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted CV: err = %v, want context.Canceled", err)
	}
	if done := store.Count("fold"); done != 2 {
		t.Fatalf("journaled %d folds before resume, want 2", done)
	}

	var resumedFits atomic.Int64
	counting := func() ml.Classifier {
		resumedFits.Add(1)
		return &meanClassifier{}
	}
	got, err := CrossValidateOpts(ds, 3, 9, counting, jitterOversample, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := resumedFits.Load(); n != 1 {
		t.Errorf("resume trained %d folds, want only the 1 unfinished one", n)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resumed CVResult differs from an uninterrupted checkpoint-free run")
	}
}

// TestCrossValidateCtxCancelNoCheckpoint pins the plain cancellation
// path: without a store, a cancelled CV surfaces ctx's error.
func TestCrossValidateCtxCancelNoCheckpoint(t *testing.T) {
	ds := imbalancedDataset(90, 18, 33)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CrossValidateCtx(ctx, ds, 3, 5, func() ml.Classifier { return &meanClassifier{} }, nil, CVOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
