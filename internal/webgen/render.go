package webgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// mixture describes the sampling weights over the four word pools.
type mixture struct {
	common, legit, illegit, drugs float64
}

// textMixture returns the word-pool mixture for a site, encoding the
// class signal (and its six-month drift for Snapshot 2, where
// illegitimate sites shift toward legitimate vocabulary to evade
// text-based detection, degrading the legitimate precision of stale
// models as observed in Table 17).
// legitMixture is the regular legitimate word-pool mixture; VocabShift
// interpolates drifted illegitimate sites toward it.
var legitMixture = mixture{common: 0.57, legit: 0.28, illegit: 0.05, drugs: 0.10}

func (w *World) textMixture(s *Site) mixture {
	drift := w.cfg.Snapshot >= 2
	roleID := templateID(s)
	var m mixture
	switch {
	case s.Legitimate && s.Isolated:
		// New-prescription sellers: still legitimate text, slightly more
		// product-heavy.
		m = mixture{common: 0.52, legit: 0.27, illegit: 0.06, drugs: 0.15}
	case s.Legitimate:
		m = legitMixture
	case s.Evader:
		// Imitators blend in: mostly legitimate-looking vocabulary.
		m = mixture{common: 0.50, legit: 0.22, illegit: 0.16, drugs: 0.12}
	case drift:
		// Six months on, illegitimate operators have drifted: all of
		// them blend in somewhat more legitimate vocabulary, and a
		// "cleaned-up" subset imitates legitimate storefront language
		// aggressively. Stale models lose legitimate precision on these
		// (Table 17) while the classes remain separable enough that AUC
		// holds (Table 16).
		if roleDraw(w.cfg.Seed, roleID, "cleaned") < 0.18 {
			m = mixture{common: 0.50, legit: 0.22, illegit: 0.14, drugs: 0.14}
		} else {
			m = mixture{common: 0.44, legit: 0.13, illegit: 0.31, drugs: 0.12}
		}
	default:
		m = mixture{common: 0.43, legit: 0.09, illegit: 0.36, drugs: 0.12}
	}
	if !s.Legitimate && drift && w.cfg.VocabShift > 0 {
		// Epoch-scale restyling: pull the mixture toward legitimate
		// storefront language by the configured fraction.
		f := w.cfg.VocabShift
		m.common += f * (legitMixture.common - m.common)
		m.legit += f * (legitMixture.legit - m.legit)
		m.illegit += f * (legitMixture.illegit - m.illegit)
		m.drugs += f * (legitMixture.drugs - m.drugs)
	}
	// Per-site signal jitter: real storefronts vary in how loudly they
	// carry their class vocabulary. A stable per-site factor scales the
	// class-signal pools (legitimate sites legitimately discuss ED
	// medication; some spam shops barely use spam language), keeping
	// the learned boundaries imperfect as in the paper's numbers.
	jitter := 0.5 + roleDraw(w.cfg.Seed, roleID, "signal")
	if s.Legitimate {
		m.legit *= jitter
		m.common += (1 - jitter) * 0.2
	} else {
		m.illegit *= jitter
		m.common += (1 - jitter) * 0.2
	}
	if m.common < 0.1 {
		m.common = 0.1
	}
	return m
}

func sampleWord(rng *rand.Rand, m mixture) string {
	r := rng.Float64() * (m.common + m.legit + m.illegit + m.drugs)
	switch {
	case r < m.common:
		return commonWords[rng.Intn(len(commonWords))]
	case r < m.common+m.legit:
		return legitWords[rng.Intn(len(legitWords))]
	case r < m.common+m.legit+m.illegit:
		return illegitWords[rng.Intn(len(illegitWords))]
	default:
		return drugNames[rng.Intn(len(drugNames))]
	}
}

// paragraph renders n words as sentence-like chunks.
func paragraph(rng *rand.Rand, m mixture, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			if i%11 == 10 {
				b.WriteString(". ")
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString(sampleWord(rng, m))
	}
	b.WriteByte('.')
	return b.String()
}

// externalLinks decides which well-known endpoints a site links to.
func (w *World) externalLinks(s *Site, rng *rand.Rand) []string {
	var links []string
	add := func(domain string) { links = append(links, "http://www."+domain+"/") }

	switch {
	case s.Isolated && s.Legitimate:
		// Network-isolated legitimate outliers: only site-specific niche
		// endpoints, shared with nobody, so no trust can flow to them.
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			base := strings.SplitN(s.Domain, ".", 2)[0]
			add(fmt.Sprintf("%s-%s.example", isolatedEndpoints[rng.Intn(len(isolatedEndpoints))], base))
		}
	case s.Evader:
		// Evaders imitate the legitimate linking profile, thinly.
		for _, ep := range legitEndpoints {
			if rng.Float64() < ep.P*0.5 {
				add(ep.Domain)
			}
		}
	default:
		// Regular legitimate and illegitimate sites use the exact-count
		// endpoint assignment computed by assignExternals.
		links = append(links, s.externals...)
		if s.HubDomain != "" {
			// Affiliate link to the network hub (counted several times:
			// member sites plaster hub banners on most pages).
			links = append(links, "http://"+s.HubDomain+"/aff?src="+s.Domain)
		}
	}
	return links
}

// templateID is the identity a site's template randomness keys on:
// burst-cohort members share the cohort's identity (one campaign, one
// template), everyone else keys on their own domain.
func templateID(s *Site) string {
	if s.Burst {
		return fmt.Sprintf("burst-cohort|%d", s.BurstCohort)
	}
	return s.Domain
}

// assignExternalsReference is the historical endpoint assignment: the
// per-(site,endpoint) draw recomputed inside the sort comparator —
// every comparison paying two hasher+RNG constructions. Kept verbatim
// as the naive reference assignExternals is pinned against (the draws
// are distinct, so both sorts produce the same unique order).
func (w *World) assignExternalsReference() {
	var legitSites, illegitSites []*Site
	for _, d := range w.domains {
		s := w.sites[d]
		switch {
		case s.Legitimate && !s.Isolated:
			legitSites = append(legitSites, s)
		case !s.Legitimate && !s.Evader:
			illegitSites = append(illegitSites, s)
		}
	}
	assign := func(sites []*Site, ep weightedEndpoint) {
		k := int(ep.P*float64(len(sites)) + 0.5)
		if k <= 0 {
			return
		}
		order := make([]*Site, len(sites))
		copy(order, sites)
		sort.Slice(order, func(i, j int) bool {
			return roleDraw(w.cfg.Seed, order[i].Domain, "ep|"+ep.Domain) <
				roleDraw(w.cfg.Seed, order[j].Domain, "ep|"+ep.Domain)
		})
		if k > len(order) {
			k = len(order)
		}
		for _, s := range order[:k] {
			s.externals = append(s.externals, "http://www."+ep.Domain+"/")
		}
	}
	for _, ep := range legitEndpoints {
		assign(legitSites, ep)
	}
	for _, ep := range illegitEndpoints {
		assign(illegitSites, ep)
	}
	for _, ep := range legitEndpoints[:5] {
		assign(illegitSites, weightedEndpoint{Domain: ep.Domain, P: 0.12})
	}
}

// renderSite generates all pages of a site.
func (w *World) renderSite(s *Site) {
	cfg := w.cfg
	rng := siteRNG(cfg.Seed, cfg.Snapshot, templateID(s), "site")
	m := w.textMixture(s)

	nPages := cfg.MinPages + rng.Intn(cfg.MaxPages-cfg.MinPages+1)
	paths := []string{"/", "/about", "/contact"}
	for i := 0; len(paths) < nPages; i++ {
		if s.Legitimate && i%3 == 2 {
			paths = append(paths, fmt.Sprintf("/health/%d", i))
		} else {
			paths = append(paths, fmt.Sprintf("/products/%d", i))
		}
	}

	externals := w.externalLinks(s, rng)

	s.Pages = make(map[string]string, len(paths))
	s.Paths = append([]string(nil), paths...)
	for pi, path := range paths {
		s.Pages[path] = w.renderPage(s, rng, m, paths, pi, externals)
	}
}

// renderPage produces the HTML of one page.
func (w *World) renderPage(s *Site, rng *rand.Rand, m mixture, paths []string, pi int, externals []string) string {
	cfg := w.cfg
	path := paths[pi]
	var b strings.Builder
	b.Grow(4096)

	title := pageTitle(s, path)
	b.WriteString("<html><head><title>")
	b.WriteString(title)
	b.WriteString("</title></head><body>\n")
	b.WriteString("<h1>" + title + "</h1>\n")

	// Navigation: the front page links to every page; inner pages link
	// home and to the next page so breadth-first crawls reach everything.
	b.WriteString("<div class=\"nav\">\n")
	if path == "/" {
		for _, p := range paths[1:] {
			fmt.Fprintf(&b, "<a href=%q>%s</a>\n", p, strings.Trim(p, "/"))
		}
	} else {
		b.WriteString("<a href=\"/\">home</a>\n")
		fmt.Fprintf(&b, "<a href=%q>next</a>\n", paths[(pi+1)%len(paths)])
	}
	b.WriteString("</div>\n")

	// Trust seals: legitimate pharmacies display verification seals,
	// one of the store-presence signals from the paper's related work.
	if s.Legitimate && (path == "/" || path == "/about") {
		b.WriteString("<div class=\"seal\">VIPPS accredited pharmacy — verified by NABP. Licensed pharmacist consultation available. Valid prescription required.</div>\n")
	}
	if !s.Legitimate && !s.Evader && (path == "/" || strings.HasPrefix(path, "/products")) {
		b.WriteString("<div class=\"banner\">Cheap generic viagra cialis — no prescription needed! Worldwide discreet overnight shipping. Bonus pills with every order.</div>\n")
	}

	// Body paragraphs.
	words := cfg.MinWords + rng.Intn(cfg.MaxWords-cfg.MinWords+1)
	nPar := 2 + rng.Intn(3)
	for i := 0; i < nPar; i++ {
		b.WriteString("<p>")
		b.WriteString(paragraph(rng, m, words/nPar))
		b.WriteString("</p>\n")
	}

	// External links: spread across pages; the front page always gets
	// the first few so even shallow crawls observe them.
	b.WriteString("<div class=\"links\">\n")
	for i, l := range externals {
		onFront := i < 4
		if (path == "/" && onFront) || (!onFront && i%len(paths) == pi) || rng.Float64() < 0.15 {
			fmt.Fprintf(&b, "<a href=%q>partner</a>\n", l)
		}
	}
	b.WriteString("</div>\n")

	fmt.Fprintf(&b, "<div class=\"footer\">&copy; %s</div>\n", s.Domain)
	b.WriteString("</body></html>\n")
	return b.String()
}

func pageTitle(s *Site, path string) string {
	base := strings.SplitN(s.Domain, ".", 2)[0]
	switch {
	case path == "/":
		if s.Legitimate {
			return base + " — your trusted licensed pharmacy"
		}
		return base + " — cheap meds online"
	case path == "/about":
		return "About " + base
	case path == "/contact":
		return "Contact " + base
	case strings.HasPrefix(path, "/health/"):
		return base + " health information"
	default:
		return base + " products"
	}
}

// Summary concatenates the visible-text-bearing HTML of all pages of a
// site (primarily for tests and examples; the crawler pipeline extracts
// text per page with htmlx).
func (s *Site) Summary() string {
	var b strings.Builder
	for _, p := range s.Paths {
		b.WriteString(s.Pages[p])
		b.WriteByte('\n')
	}
	return b.String()
}

// Stats summarizes a generated world (counts per class/role), used by
// the Table 1 reproduction.
type Stats struct {
	Total, Legit, Illegit   int
	Hubs, Isolated, Evaders int
	Pages                   int
}

// Stats computes world statistics.
func (w *World) Stats() Stats {
	var st Stats
	for _, d := range w.domains {
		s := w.sites[d]
		st.Total++
		st.Pages += len(s.Paths)
		if s.Legitimate {
			st.Legit++
		} else {
			st.Illegit++
		}
		if s.Hub {
			st.Hubs++
		}
		if s.Isolated {
			st.Isolated++
		}
		if s.Evader {
			st.Evaders++
		}
	}
	return st
}

// HubDomains lists the affiliate-network hub domains, sorted.
func (w *World) HubDomains() []string {
	var hubs []string
	for _, d := range w.domains {
		if w.sites[d].Hub {
			hubs = append(hubs, d)
		}
	}
	sort.Strings(hubs)
	return hubs
}
