// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the same experiment code as
// `cmd/experiments` (internal/bench runners) on a fresh result cache,
// so reported times reflect real end-to-end experiment cost at the
// benchmark scale.
//
// By default benchmarks run at bench.SmallScale; set
// PHARMAVERIFY_SCALE=full to reproduce the paper's exact dataset sizes
// (167+1292 / 167+1275), which takes substantially longer.
package pharmaverify

import (
	"io"
	"os"
	"testing"

	"pharmaverify/internal/bench"
)

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	scale := bench.SmallScale
	if os.Getenv("PHARMAVERIFY_SCALE") == "full" {
		scale = bench.FullScale
	}
	e, err := bench.NewEnv(scale)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func runTable(b *testing.B, id string) {
	b.Helper()
	e := benchEnv(b)
	r := bench.FindRunner(id)
	if r == nil {
		b.Fatalf("no runner %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := r.Run(e.Fresh())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tab.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Dataset statistics (Table 1).
func BenchmarkTable01Datasets(b *testing.B)      { runTable(b, "1") }
func BenchmarkTable02Abbreviations(b *testing.B) { runTable(b, "2") }

// TF-IDF text classification sweep (Tables 3–6).
func BenchmarkTable03TFIDFAccuracy(b *testing.B) { runTable(b, "3") }
func BenchmarkTable04LegitPR(b *testing.B)       { runTable(b, "4") }
func BenchmarkTable05IllegitPR(b *testing.B)     { runTable(b, "5") }
func BenchmarkTable06AUC(b *testing.B)           { runTable(b, "6") }

// N-Gram-Graph text classification sweep (Tables 7–10).
func BenchmarkTable07NGGAccuracy(b *testing.B)  { runTable(b, "7") }
func BenchmarkTable08NGGLegitPR(b *testing.B)   { runTable(b, "8") }
func BenchmarkTable09NGGIllegitPR(b *testing.B) { runTable(b, "9") }
func BenchmarkTable10NGGAUC(b *testing.B)       { runTable(b, "10") }

// Network analysis (Tables 11–13).
func BenchmarkTable11TopLinked(b *testing.B)  { runTable(b, "11") }
func BenchmarkTable12NetworkAcc(b *testing.B) { runTable(b, "12") }
func BenchmarkTable13NetworkPR(b *testing.B)  { runTable(b, "13") }

// Ensemble selection (Table 14) and ranking (Table 15).
func BenchmarkTable14Ensemble(b *testing.B) { runTable(b, "14") }
func BenchmarkTable15Ranking(b *testing.B)  { runTable(b, "15") }

// Model evolution over time (Tables 16–17).
func BenchmarkTable16DriftAUC(b *testing.B)       { runTable(b, "16") }
func BenchmarkTable17DriftPrecision(b *testing.B) { runTable(b, "17") }

// Figures.
func BenchmarkFigure1Storefronts(b *testing.B) { runTable(b, "F1") }
func BenchmarkFigure2NGGProcess(b *testing.B)  { runTable(b, "F2") }
func BenchmarkFigure3TrustRank(b *testing.B)   { runTable(b, "F3") }

// Ablations called out in DESIGN.md.
func BenchmarkAblationSampling(b *testing.B)      { runTable(b, "A1") }
func BenchmarkAblationCombined(b *testing.B)      { runTable(b, "A2") }
func BenchmarkAblationTrustVariants(b *testing.B) { runTable(b, "A3") }
func BenchmarkAnalysisOutliers(b *testing.B)      { runTable(b, "A4") }
func BenchmarkAblationFeatureSelect(b *testing.B) { runTable(b, "A5") }
func BenchmarkAblationInboundLinks(b *testing.B)  { runTable(b, "A6") }
