// Package checkpoint is the crash-safe unit store behind resumable
// long-running jobs: the snapshot builder journals each completed
// domain crawl and the evaluator each completed CV fold, so a run that
// is killed (SIGTERM, crash, deadline) restarts from the last finished
// unit instead of from zero.
//
// # Guarantees
//
//   - Atomicity: a unit is written to a temp file, fsynced and renamed
//     into place. Readers never observe a half-written record; a crash
//     mid-Put leaves at most a stray temp file that is ignored.
//   - Integrity: every record carries a magic header, length-prefixed
//     key and payload, and a trailing SHA-256 over all preceding bytes.
//     A truncated, bit-flipped or otherwise corrupt file fails
//     verification.
//   - Quarantine, not crash: a corrupt record is renamed aside (same
//     name + ".quarantined"), logged, and reported as a miss, so the
//     caller transparently recomputes the unit and overwrites it. A
//     damaged checkpoint directory can degrade a resume back to a full
//     run, but can never poison results or abort it.
//
// Keys are namespaced by a caller-chosen kind ("crawl", "fold", ...);
// the key itself is stored inside the record and verified on read, so
// filename sanitization can never alias two distinct units.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	magic = "PVCK1\n"
	// maxRecordBytes bounds a single record (512 MiB) so a corrupt
	// length prefix cannot drive a huge allocation.
	maxRecordBytes = 512 << 20
)

// Store is a directory-backed checkpoint store. It is safe for
// concurrent use; distinct units never contend.
type Store struct {
	dir string
	// Logf receives one line per quarantined file (default log.Printf).
	// Set it before the store is shared between goroutines.
	Logf func(format string, args ...any)

	quarantined atomic.Int64

	mu       sync.Mutex
	kindDirs map[string]bool // kinds whose directory exists
}

// Open creates (if needed) and opens a checkpoint directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", dir, err)
	}
	return &Store{dir: dir, kindDirs: make(map[string]bool)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Quarantined reports how many corrupt files this store has renamed
// aside since it was opened.
func (s *Store) Quarantined() int { return int(s.quarantined.Load()) }

func (s *Store) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// path returns the record file for (kind, key): a sanitized, truncated
// key prefix for human eyes plus a key-hash suffix for uniqueness.
func (s *Store) path(kind, key string) string {
	sum := sha256.Sum256([]byte(key))
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, key)
	if len(safe) > 48 {
		safe = safe[:48]
	}
	name := fmt.Sprintf("%s-%s.ckpt", safe, hex.EncodeToString(sum[:8]))
	return filepath.Join(s.dir, kind, name)
}

func (s *Store) ensureKindDir(kind string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kindDirs[kind] {
		return nil
	}
	if err := os.MkdirAll(filepath.Join(s.dir, kind), 0o755); err != nil {
		return fmt.Errorf("checkpoint: create kind dir %q: %w", kind, err)
	}
	s.kindDirs[kind] = true
	return nil
}

// encode builds the record bytes: magic, length-prefixed key and
// payload, SHA-256 trailer.
func encode(key string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(magic) + 16 + len(key) + len(payload) + sha256.Size)
	buf.WriteString(magic)
	var frame [8]byte
	binary.LittleEndian.PutUint64(frame[:], uint64(len(key)))
	buf.Write(frame[:])
	buf.WriteString(key)
	binary.LittleEndian.PutUint64(frame[:], uint64(len(payload)))
	buf.Write(frame[:])
	buf.Write(payload)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes()
}

// decode verifies a record and returns its key and payload.
func decode(data []byte) (key string, payload []byte, err error) {
	rest := data
	if len(rest) < len(magic)+8 || string(rest[:len(magic)]) != magic {
		return "", nil, fmt.Errorf("bad magic or truncated header")
	}
	body := len(data) - sha256.Size
	if body < 0 {
		return "", nil, fmt.Errorf("truncated checksum")
	}
	sum := sha256.Sum256(data[:body])
	if !bytes.Equal(sum[:], data[body:]) {
		return "", nil, fmt.Errorf("checksum mismatch")
	}
	rest = data[len(magic):body]
	keyLen := binary.LittleEndian.Uint64(rest[:8])
	rest = rest[8:]
	if keyLen > uint64(len(rest)) {
		return "", nil, fmt.Errorf("key length %d exceeds record", keyLen)
	}
	key = string(rest[:keyLen])
	rest = rest[keyLen:]
	if len(rest) < 8 {
		return "", nil, fmt.Errorf("truncated payload length")
	}
	payLen := binary.LittleEndian.Uint64(rest[:8])
	rest = rest[8:]
	if payLen != uint64(len(rest)) {
		return "", nil, fmt.Errorf("payload length %d != %d remaining bytes", payLen, len(rest))
	}
	return key, rest, nil
}

// Put atomically stores the unit (kind, key): the record is written to
// a temp file in the same directory, fsynced, and renamed into place.
// An existing record for the key is replaced.
func (s *Store) Put(kind, key string, payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("checkpoint: put %s/%s: payload of %d bytes exceeds the record cap", kind, key, len(payload))
	}
	if err := s.ensureKindDir(kind); err != nil {
		return err
	}
	target := s.path(kind, key)
	tmp, err := os.CreateTemp(filepath.Dir(target), ".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: put %s/%s: %w", kind, key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(encode(key, payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: put %s/%s: %w", kind, key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: put %s/%s: sync: %w", kind, key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: put %s/%s: %w", kind, key, err)
	}
	if err := os.Rename(tmp.Name(), target); err != nil {
		return fmt.Errorf("checkpoint: put %s/%s: %w", kind, key, err)
	}
	return nil
}

// Get retrieves the unit (kind, key). A missing unit returns
// (nil, false, nil). A corrupt or truncated record — or one whose
// embedded key does not match, i.e. a filename collision — is
// quarantined (renamed to <file>.quarantined), logged, and reported as
// a miss so the caller recomputes it; it never fails the run.
func (s *Store) Get(kind, key string) ([]byte, bool, error) {
	p := s.path(kind, key)
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: get %s/%s: %w", kind, key, err)
	}
	if len(data) > maxRecordBytes {
		s.quarantine(p, kind, key, fmt.Errorf("record of %d bytes exceeds the cap", len(data)))
		return nil, false, nil
	}
	gotKey, payload, derr := decode(data)
	if derr != nil {
		s.quarantine(p, kind, key, derr)
		return nil, false, nil
	}
	if gotKey != key {
		s.quarantine(p, kind, key, fmt.Errorf("embedded key %q does not match", gotKey))
		return nil, false, nil
	}
	return payload, true, nil
}

func (s *Store) quarantine(path, kind, key string, cause error) {
	s.quarantined.Add(1)
	qpath := path + ".quarantined"
	if err := os.Rename(path, qpath); err != nil {
		// Renaming aside failed (e.g. read-only dir): fall back to
		// deleting so the bad record cannot shadow the recomputed unit.
		os.Remove(path)
		qpath = "(removed)"
	}
	s.logf("checkpoint: quarantined corrupt record %s/%s (%v) -> %s; the unit will be recomputed", kind, key, cause, qpath)
}

// PutJSON stores v as a JSON payload.
func (s *Store) PutJSON(kind, key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal %s/%s: %w", kind, key, err)
	}
	return s.Put(kind, key, data)
}

// GetJSON retrieves the unit and unmarshals its JSON payload into v. A
// payload that fails to unmarshal is treated like a corrupt record:
// quarantined and reported as a miss.
func (s *Store) GetJSON(kind, key string, v any) (bool, error) {
	data, ok, err := s.Get(kind, key)
	if err != nil || !ok {
		return false, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		s.quarantine(s.path(kind, key), kind, key, fmt.Errorf("json: %w", err))
		return false, nil
	}
	return true, nil
}

// Count reports how many (non-quarantined) records exist for a kind.
func (s *Store) Count(kind string) int {
	entries, err := os.ReadDir(filepath.Join(s.dir, kind))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			n++
		}
	}
	return n
}
