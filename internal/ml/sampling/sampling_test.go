package sampling

import (
	"math"
	"math/rand"
	"testing"

	"pharmaverify/internal/ml"
)

func imbalanced(nMin, nMaj int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{Dim: 3}
	for i := 0; i < nMin; i++ {
		ds.Add(ml.NewVector([]float64{1 + rng.NormFloat64()*0.1, rng.Float64(), 0}), ml.Legitimate, "L")
	}
	for i := 0; i < nMaj; i++ {
		ds.Add(ml.NewVector([]float64{-1 + rng.NormFloat64()*0.1, rng.Float64(), 0}), ml.Illegitimate, "I")
	}
	return ds
}

func TestUndersampleBalances(t *testing.T) {
	ds := imbalanced(20, 160, 1)
	out := Undersample(ds, rand.New(rand.NewSource(2)))
	if out.CountClass(ml.Legitimate) != 20 || out.CountClass(ml.Illegitimate) != 20 {
		t.Errorf("counts = %d/%d, want 20/20",
			out.CountClass(ml.Legitimate), out.CountClass(ml.Illegitimate))
	}
	if ds.Len() != 180 {
		t.Error("input mutated")
	}
}

func TestUndersampleKeepsAllMinority(t *testing.T) {
	ds := imbalanced(10, 50, 3)
	out := Undersample(ds, rand.New(rand.NewSource(4)))
	for i, y := range out.Y {
		if y == ml.Legitimate && out.Names[i] != "L" {
			t.Fatal("minority instance corrupted")
		}
	}
	if out.CountClass(ml.Legitimate) != 10 {
		t.Error("minority instances dropped")
	}
}

func TestOversampleBalances(t *testing.T) {
	ds := imbalanced(15, 90, 5)
	out := Oversample(ds, rand.New(rand.NewSource(6)))
	if out.CountClass(ml.Legitimate) != 90 || out.CountClass(ml.Illegitimate) != 90 {
		t.Errorf("counts = %d/%d, want 90/90",
			out.CountClass(ml.Legitimate), out.CountClass(ml.Illegitimate))
	}
	// Duplicates must be exact copies of existing minority vectors.
	for i, y := range out.Y {
		if y != ml.Legitimate {
			continue
		}
		found := false
		for j := 0; j < 15; j++ {
			if ml.SquaredDistance(out.X[i], ds.X[j]) == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("oversampled instance is not a copy")
		}
	}
}

func TestSMOTEBalancesByDefault(t *testing.T) {
	ds := imbalanced(20, 100, 7)
	out := SMOTE(ds, rand.New(rand.NewSource(8)), SMOTEConfig{K: 5})
	if out.CountClass(ml.Legitimate) != 100 {
		t.Errorf("minority count = %d, want 100", out.CountClass(ml.Legitimate))
	}
	if out.Len() != 200 {
		t.Errorf("total = %d, want 120 originals + 80 synthetics = 200", out.Len())
	}
}

func TestSMOTESyntheticInsideConvexHull(t *testing.T) {
	// All minority points have feature0 near +1, so synthetics must too:
	// interpolation cannot escape the segment endpoints.
	ds := imbalanced(20, 60, 9)
	out := SMOTE(ds, rand.New(rand.NewSource(10)), SMOTEConfig{K: 3})
	for i, name := range out.Names {
		if name != "smote" {
			continue
		}
		v := out.X[i].At(0)
		if v < 0.5 || v > 1.5 {
			t.Fatalf("synthetic feature0 = %v escapes minority region", v)
		}
		if out.Y[i] != ml.Legitimate {
			t.Fatal("synthetic has wrong class")
		}
	}
}

func TestSMOTEPercent(t *testing.T) {
	ds := imbalanced(10, 100, 11)
	out := SMOTE(ds, rand.New(rand.NewSource(12)), SMOTEConfig{K: 3, Percent: 200})
	if got := out.CountClass(ml.Legitimate); got != 30 {
		t.Errorf("minority = %d, want 10 + 200%% = 30", got)
	}
}

func TestSMOTETooFewMinority(t *testing.T) {
	ds := imbalanced(1, 10, 13)
	out := SMOTE(ds, rand.New(rand.NewSource(14)), SMOTEConfig{})
	if out.Len() != ds.Len() {
		t.Error("SMOTE with one minority instance must be a no-op")
	}
}

func TestSMOTEKCappedAtMinoritySize(t *testing.T) {
	ds := imbalanced(3, 30, 15)
	// K=10 > 2 available neighbors: must not panic.
	out := SMOTE(ds, rand.New(rand.NewSource(16)), SMOTEConfig{K: 10})
	if out.CountClass(ml.Legitimate) != 30 {
		t.Errorf("minority = %d", out.CountClass(ml.Legitimate))
	}
}

func TestNearestNeighborsOrdering(t *testing.T) {
	ds := &ml.Dataset{Dim: 1}
	for _, v := range []float64{0, 1, 3, 10} {
		ds.Add(ml.NewVector([]float64{v}), ml.Legitimate, "")
	}
	nn := nearestNeighbors(ds, []int{0, 1, 2, 3}, 2)
	// Neighbors of instance 0 (value 0): 1 (d=1) then 2 (d=9).
	if nn[0][0] != 1 || nn[0][1] != 2 {
		t.Errorf("neighbors of 0 = %v", nn[0])
	}
	// Neighbors of instance 3 (value 10): 2 (d=49) then 1 (d=81).
	if nn[3][0] != 2 || nn[3][1] != 1 {
		t.Errorf("neighbors of 3 = %v", nn[3])
	}
}

func TestUndersampleDeterministic(t *testing.T) {
	ds := imbalanced(10, 80, 17)
	a := Undersample(ds, rand.New(rand.NewSource(5)))
	b := Undersample(ds, rand.New(rand.NewSource(5)))
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic size")
	}
	for i := range a.X {
		if math.Abs(a.X[i].At(0)-b.X[i].At(0)) > 0 {
			t.Fatal("same seed, different sample")
		}
	}
}

func TestMinorityMajorityFlipped(t *testing.T) {
	// When legitimate is the majority, undersampling must shrink it.
	rng := rand.New(rand.NewSource(18))
	ds := &ml.Dataset{Dim: 1}
	for i := 0; i < 50; i++ {
		ds.Add(ml.NewVector([]float64{rng.Float64()}), ml.Legitimate, "")
	}
	for i := 0; i < 5; i++ {
		ds.Add(ml.NewVector([]float64{rng.Float64()}), ml.Illegitimate, "")
	}
	out := Undersample(ds, rng)
	if out.CountClass(ml.Legitimate) != 5 || out.CountClass(ml.Illegitimate) != 5 {
		t.Errorf("counts = %d/%d", out.CountClass(ml.Legitimate), out.CountClass(ml.Illegitimate))
	}
}
