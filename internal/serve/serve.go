// Package serve implements the online verification service: a
// long-lived HTTP server that answers "is this pharmacy legitimate?"
// for a URL a user is looking at *right now*, by running the full
// on-demand pipeline — crawl the domain, preprocess the text, fuse the
// evidence backends over the observation, rank the batch — while the
// user waits. It is the consumer-facing deployment shape the batch
// pipeline feeds: train offline, snapshot the model, serve it here.
//
// Production shape:
//
//   - Evidence fusion: the verdict is an ensemble over ordered
//     EvidenceSource backends — the text classifier, the TrustRank
//     network model over an incrementally maintained fleet-wide link
//     graph, and a pluggable registry lookup — with every response
//     itemizing the sources that contributed. The link graph is
//     bounded and folded from every on-demand crawl; scores refresh on
//     a dirty threshold, on cold domains, and on a background tick —
//     never per request.
//   - Admission control: a bounded worker pool plus a bounded wait
//     queue; beyond that, requests are shed with 429 + Retry-After so
//     overload degrades into fast rejections, not unbounded latency.
//   - Result caching: a TTL + LRU verdict cache keyed by (model
//     fingerprint, domain); a model reload implicitly invalidates the
//     previous model's verdicts.
//   - Singleflight: concurrent requests for the same uncached domain
//     share one crawl. The crawl runs detached from any single caller's
//     deadline (bounded by MaxTimeout), so an impatient leader cannot
//     fail patient followers.
//   - Per-request deadlines derived from the client's requested timeout
//     capped by the server's maximum.
//   - Hot model reload: SwapModel atomically replaces the verifier;
//     in-flight requests finish on the model they started with.
//   - Observability: /metrics in Prometheus text format (zero deps),
//     /healthz (liveness + build info), /readyz (readiness + model
//     identity).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pharmaverify/internal/buildinfo"
	"pharmaverify/internal/core"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/parallel"
	"pharmaverify/internal/textproc"
)

// Config configures a Server.
type Config struct {
	// Fetcher retrieves pages for on-demand crawls (required): a live
	// crawler.HTTPFetcher in production, a webgen.World or any other
	// deterministic Fetcher in tests.
	Fetcher crawler.Fetcher
	// Crawl is the per-request crawl budget template. Unset (zero)
	// fields are defaulted field-by-field to a serving-appropriate
	// budget: MaxPages 50, AttemptBudget 150, 2 fetch attempts per
	// page, 5 s fetch timeout, failure budget 20 — far tighter than the
	// batch pipeline's paper-scale crawl, because a user is waiting.
	// Customizing one field never discards the defaults of the rest; to
	// explicitly disable a budget, set it negative (the crawler treats
	// non-positive AttemptBudget/FailureBudget as unbounded/off).
	Crawl crawler.Config
	// Workers bounds concurrently served verify requests (<= 0: the
	// shared parallel default — PHARMAVERIFY_WORKERS / SetDefault, then
	// GOMAXPROCS).
	Workers int
	// BatchWorkers bounds the fan-out of one batch request's domains
	// (default 4). Keeping it separate from — and much smaller than —
	// Workers bounds total crawl concurrency at Workers × BatchWorkers;
	// fanning batches out under Workers itself would square it.
	BatchWorkers int
	// QueueDepth bounds requests waiting for a worker slot beyond the
	// Workers in service (default 64; negative: no waiting, shed
	// immediately).
	QueueDepth int
	// CacheSize bounds the verdict cache (entries, default 1024).
	CacheSize int
	// CacheTTL is how long a verdict stays fresh (default 15 min).
	CacheTTL time.Duration
	// DefaultTimeout is the per-request deadline when the client does
	// not ask for one (default 30 s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default
	// 2×DefaultTimeout). The effective per-request deadline is
	// min(client timeout, MaxTimeout), never more.
	MaxTimeout time.Duration
	// MaxBatch bounds the domains of one request (default 64).
	MaxBatch int

	// GraphMaxNodes bounds the distinct domains of the live link graph
	// beyond the model's training graph (default 100 000); once
	// saturated, new names are dropped and the network source abstains
	// for domains it could not admit.
	GraphMaxNodes int
	// GraphMaxOut caps the outbound endpoints folded per crawl
	// (default 200).
	GraphMaxOut int
	// GraphDirtyThreshold is the number of graph-changing folds that
	// triggers a TrustRank recompute (default 16; 1 recomputes after
	// every change). A served domain missing from the current score
	// snapshot always forces a refresh regardless of the threshold.
	GraphDirtyThreshold int
	// GraphRefreshInterval is the background refresh tick bounding
	// score staleness under sparse traffic (0 = request-driven
	// refreshes only). Servers with a tick must be Closed.
	GraphRefreshInterval time.Duration
	// Registry is the optional registry-lookup evidence backend; nil
	// leaves the registry source permanently abstaining.
	Registry RegistryLookup

	// SourceTimeout bounds one evidence-source assessment (default 2 s;
	// negative = unbounded). A source that blows its deadline is
	// recorded as a breaker failure and the verdict degrades to the
	// remaining sources.
	SourceTimeout time.Duration
	// SourceConcurrency is the per-source bulkhead: at most this many
	// assessments of one source run at once (default 8). Beyond it,
	// calls shed immediately — one hung backend occupies its own slots,
	// never the daemon's worker pool.
	SourceConcurrency int
	// BreakerWindow is the rolling outcome window of each source's
	// circuit breaker (default 16 assessments).
	BreakerWindow int
	// BreakerFailures is the failure count within the window that opens
	// the breaker (default 8; clamped to BreakerWindow).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker fast-fails before
	// admitting half-open probes (default 10 s), measured on the
	// injectable clock.
	BreakerCooldown time.Duration
	// BreakerProbes is the consecutive half-open successes that close
	// the breaker again (default 2).
	BreakerProbes int
	// MinEvidence is the fusion quorum: a live verdict needs at least
	// this many contributing sources (default 1). Below it, the request
	// falls back to a stale cached verdict (or errors).
	MinEvidence int
	// MaxStale is the stale-serve budget: when live assessment fails
	// entirely, the cache may serve an expired verdict up to this long
	// past its TTL, marked `"stale":true` (default 1 h; negative
	// disables stale serving).
	MaxStale time.Duration
	// JitterSeed seeds the ±20% jitter applied to every background
	// graph-refresh tick so fleet-wide refreshes desynchronize
	// (0 = derived from the wall clock at startup).
	JitterSeed int64

	// CorpusMaxDomains bounds the known-domain corpus the continuous
	// re-verification scheduler sweeps (default 100 000). Once full, new
	// domains are not recorded; existing members keep being re-verified.
	CorpusMaxDomains int

	// now is the clock, injectable for cache-TTL and breaker tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	// The crawl budget merges field-by-field: a caller setting just
	// FetchTimeout must not silently lose the rest of the serving
	// budget (and fall back to the crawler's 200-page, unbudgeted
	// defaults).
	if c.Crawl.MaxPages == 0 {
		c.Crawl.MaxPages = 50
	}
	if c.Crawl.AttemptBudget == 0 {
		c.Crawl.AttemptBudget = 150
	}
	if c.Crawl.Retry.MaxAttempts == 0 {
		c.Crawl.Retry.MaxAttempts = 2
	}
	if c.Crawl.FetchTimeout == 0 {
		c.Crawl.FetchTimeout = 5 * time.Second
	}
	if c.Crawl.FailureBudget == 0 {
		c.Crawl.FailureBudget = 20
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 15 * time.Minute
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * c.DefaultTimeout
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.GraphMaxNodes <= 0 {
		c.GraphMaxNodes = 100_000
	}
	if c.GraphMaxOut <= 0 {
		c.GraphMaxOut = 200
	}
	if c.GraphDirtyThreshold <= 0 {
		c.GraphDirtyThreshold = 16
	}
	if c.SourceTimeout == 0 {
		c.SourceTimeout = 2 * time.Second
	}
	if c.SourceConcurrency <= 0 {
		c.SourceConcurrency = 8
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 16
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 8
	}
	if c.BreakerFailures > c.BreakerWindow {
		c.BreakerFailures = c.BreakerWindow
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 2
	}
	if c.MinEvidence <= 0 {
		c.MinEvidence = 1
	}
	if c.MaxStale == 0 {
		c.MaxStale = time.Hour
	}
	if c.MaxStale < 0 {
		c.MaxStale = 0
	}
	if c.CorpusMaxDomains <= 0 {
		c.CorpusMaxDomains = 100_000
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// modelSlot is one loaded model: the verifier plus its precomputed
// identity. Requests capture the whole slot once at admission, so a
// concurrent SwapModel never mixes one model's verdicts with another's
// fingerprint.
type modelSlot struct {
	v           *core.Verifier
	fingerprint string
	loaded      time.Time
}

// Server is the verification service. Construct with New, mount
// Handler on an http.Server, swap models with SwapModel, and flip
// SetDraining before shutting the listener down.
type Server struct {
	cfg     Config
	fetch   crawler.Fetcher
	pre     *textproc.Preprocessor
	model   atomic.Pointer[modelSlot]
	shadow  atomic.Pointer[shadowState]
	cache   *verdictCache
	flight  *flightGroup
	adm     *admission
	met     *metrics
	agg     *crawler.Aggregator
	graph   *linkGraph
	corpus  *corpusStore
	sources []*guardedSource
	start   time.Time

	// extraMetrics are render hooks registered by companion subsystems
	// (the re-verification pipeline) so their gauges appear on this
	// server's /metrics endpoint.
	extraMu      sync.Mutex
	extraMetrics []func(io.Writer)

	stopc     chan struct{}
	closeOnce sync.Once
	draining  atomic.Bool
}

// New builds a Server around an initial trained model.
func New(model *core.Verifier, cfg Config) (*Server, error) {
	if model == nil {
		return nil, errors.New("serve: nil model")
	}
	if cfg.Fetcher == nil {
		return nil, errors.New("serve: Config.Fetcher is required")
	}
	cfg = cfg.withDefaults()
	met := newMetrics()
	graph := newLinkGraph(cfg, met)
	s := &Server{
		cfg:    cfg,
		fetch:  cfg.Fetcher,
		pre:    textproc.NewPreprocessor(),
		cache:  newVerdictCache(cfg.CacheSize, cfg.CacheTTL, cfg.MaxStale, cfg.now),
		flight: newFlightGroup(cfg.MaxTimeout),
		adm:    newAdmission(parallel.Workers(cfg.Workers), cfg.QueueDepth),
		met:    met,
		agg:    &crawler.Aggregator{},
		graph:  graph,
		corpus: newCorpusStore(cfg.CorpusMaxDomains),
		// The ordered evidence backends of a fused verdict, each behind
		// its own breaker + bulkhead + deadline guard. Order is
		// presentation only — every contributing source carries equal
		// weight in the fusion.
		sources: []*guardedSource{
			newGuardedSource(textSource{}, cfg, met),
			newGuardedSource(networkSource{graph: graph}, cfg, met),
			newGuardedSource(registrySource{lookup: cfg.Registry}, cfg, met),
		},
		stopc: make(chan struct{}),
		start: cfg.now(),
	}
	s.model.Store(&modelSlot{v: model, fingerprint: model.Fingerprint(), loaded: cfg.now()})
	if cfg.GraphRefreshInterval > 0 {
		go s.refreshLoop(cfg.GraphRefreshInterval)
	}
	return s, nil
}

// refreshLoop bounds link-graph score staleness under sparse traffic:
// request-driven refreshes fire on dirtiness or cold domains, the tick
// catches whatever dirtiness accumulated below the threshold. Each
// tick interval is jittered ±20% from a seeded stream so a fleet of
// daemons started together never synchronizes its refresh spikes.
func (s *Server) refreshLoop(every time.Duration) {
	seed := s.cfg.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := newJitterRNG(seed)
	t := time.NewTimer(jitterInterval(rng, every))
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-t.C:
			s.graph.refreshIfStale(s.model.Load().v, "")
			t.Reset(jitterInterval(rng, every))
		}
	}
}

// newJitterRNG builds the seeded stream behind the refresh jitter.
func newJitterRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// jitterInterval draws one tick interval in [0.8, 1.2)×every from the
// seeded stream.
func jitterInterval(rng *rand.Rand, every time.Duration) time.Duration {
	return time.Duration(float64(every) * (0.8 + 0.4*rng.Float64()))
}

// Close stops the background link-graph refresher (when
// GraphRefreshInterval is set). It is idempotent and does not affect
// in-flight requests — HTTP shutdown remains the listener's job.
func (s *Server) Close() { s.closeOnce.Do(func() { close(s.stopc) }) }

// SwapModel atomically replaces the served model (the SIGHUP hot-reload
// path). In-flight requests keep the slot they captured at admission;
// new requests see the new model immediately. The verdict cache needs
// no flush — its keys embed the fingerprint.
func (s *Server) SwapModel(v *core.Verifier) {
	s.model.Store(&modelSlot{v: v, fingerprint: v.Fingerprint(), loaded: s.cfg.now()})
	s.met.modelReloads.inc()
}

// ModelFingerprint reports the identity of the currently served model.
func (s *Server) ModelFingerprint() string { return s.model.Load().fingerprint }

// TrainingSketch returns the live model's training-corpus distribution
// snapshot (nil for models persisted before sketches existed) — the
// baseline the drift monitor compares fresh crawls against.
func (s *Server) TrainingSketch() *core.Sketch { return s.model.Load().v.TrainingSketch() }

// RegisterMetrics adds a render hook to /metrics. Companion subsystems
// (the continuous re-verification pipeline) register their own gauges
// and counters here so operators scrape one endpoint. Hooks run at the
// end of every /metrics render, in registration order.
func (s *Server) RegisterMetrics(fn func(io.Writer)) {
	if fn == nil {
		return
	}
	s.extraMu.Lock()
	s.extraMetrics = append(s.extraMetrics, fn)
	s.extraMu.Unlock()
}

// RecordReloadFailure counts one failed model hot-reload attempt (the
// daemon keeps serving the old model; the failure was previously only
// visible in the logs).
func (s *Server) RecordReloadFailure() { s.met.modelReloadFails.inc() }

// SetDraining flips the readiness state. While draining, /readyz
// returns 503 (load balancers stop routing) and new verify requests are
// rejected with 503; requests already admitted run to completion —
// http.Server.Shutdown provides the actual wait.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// CrawlStats returns a copy of the process-wide crawl telemetry
// aggregated over every on-demand crawl served so far, plus the crawl
// count.
func (s *Server) CrawlStats() (crawler.Stats, int) { return s.agg.Snapshot() }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/verify", s.handleVerify)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// VerifyRequest is the body of POST /v1/verify. Exactly one of Domain
// (single lookup) or Domains (batch) must be set.
type VerifyRequest struct {
	Domain  string   `json:"domain,omitempty"`
	Domains []string `json:"domains,omitempty"`
	// TimeoutMs is the client's time budget; the server caps it at its
	// configured maximum. 0 means the server default.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// Refresh bypasses the verdict cache (the verdict still refreshes
	// the cache afterwards).
	Refresh bool `json:"refresh,omitempty"`
}

// DomainVerdict is the verdict for one domain.
type DomainVerdict struct {
	Domain     string `json:"domain"`
	Legitimate bool   `json:"legitimate"`
	// Rank is the OPR legitimacy score (textProb + trustScore).
	Rank        float64 `json:"rank"`
	TextProb    float64 `json:"textProb"`
	TrustScore  float64 `json:"trustScore"`
	NetworkProb float64 `json:"networkProb"`
	// Pages is the number of pages the on-demand crawl collected.
	Pages int `json:"pages"`
	// Sources itemizes the evidence backends that contributed to this
	// verdict, in assessment order, with each one's P(legitimate) vote.
	Sources []SourceContribution `json:"sources,omitempty"`
	// Partial reports that the crawl was interrupted by the serving
	// deadline after collecting some pages: the verdict covers only the
	// collected snapshot and was not cached, so a later request re-crawls.
	Partial bool `json:"partial,omitempty"`
	// Stale reports that live assessment failed and this verdict is an
	// expired cache entry served under the stale-serve budget — honest
	// degradation instead of an error while the backends recover.
	Stale bool `json:"stale,omitempty"`
	// Cached reports that the verdict was served from the cache; Crawl
	// is then the telemetry of the original crawl.
	Cached bool           `json:"cached"`
	Crawl  *crawler.Stats `json:"crawl,omitempty"`
	// Error is set when this domain could not be assessed (the rest of
	// a batch is unaffected).
	Error string `json:"error,omitempty"`
}

// VerifyResponse is the body of a successful POST /v1/verify.
type VerifyResponse struct {
	// Model is the fingerprint of the model that produced the verdicts.
	Model   string          `json:"model"`
	Results []DomainVerdict `json:"results"`
	// Ranking lists the successfully assessed domains most-legitimate
	// first (the paper's OPR ordering over the request's batch).
	Ranking []string `json:"ranking,omitempty"`
}

// errorBody is the JSON error envelope of non-200 responses.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.now()
	code := http.StatusOK
	defer func() {
		s.met.requests.inc(fmt.Sprint(code))
		s.met.requestSecs.observe(s.cfg.now().Sub(start).Seconds())
	}()

	if r.Method != http.MethodPost {
		code = http.StatusMethodNotAllowed
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, code, errorBody{Error: "use POST"})
		return
	}
	if s.draining.Load() {
		code = http.StatusServiceUnavailable
		writeJSON(w, code, errorBody{Error: "server is draining"})
		return
	}

	var req VerifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		code = http.StatusBadRequest
		writeJSON(w, code, errorBody{Error: "malformed request: " + err.Error()})
		return
	}
	domains, err := s.requestDomains(req)
	if err != nil {
		code = http.StatusBadRequest
		writeJSON(w, code, errorBody{Error: err.Error()})
		return
	}

	// Admission: claim a worker slot or join the bounded queue. A full
	// queue is the backpressure signal — reject immediately with a
	// retry hint sized to the typical service time.
	if err := s.adm.acquire(r.Context()); err != nil {
		if errors.Is(err, errQueueFull) {
			s.met.queueReject.inc()
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
			writeJSON(w, code, errorBody{Error: "admission queue full, retry later"})
			return
		}
		code = statusForCtxErr(err)
		writeJSON(w, code, errorBody{Error: err.Error()})
		return
	}
	defer s.adm.release()

	// Per-request deadline: the client's budget capped by the server's,
	// layered on the connection context so a disconnect still cancels
	// the crawl.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// One model slot for the whole request: every domain of a batch is
	// judged by the same model even if a reload lands mid-request.
	slot := s.model.Load()

	// The fan-out is bounded by BatchWorkers, not Workers: this request
	// already holds one of the Workers admission slots, so using Workers
	// again here would let crawl concurrency reach Workers².
	verdicts := make([]DomainVerdict, len(domains))
	ctxErr := parallel.ForCtx(ctx, len(domains), s.cfg.BatchWorkers, func(i int) {
		verdicts[i] = s.verifyDomain(ctx, slot, domains[i], req.Refresh)
	})
	if ctxErr != nil {
		// The deadline (or a client disconnect) fired mid-batch: ForCtx
		// skipped the not-yet-dispatched indices, leaving zero-value
		// verdicts. Mark them as errors explicitly — a blank verdict
		// must never read as a real "illegitimate" ruling.
		for i := range verdicts {
			if verdicts[i].Domain == "" {
				s.met.domains.inc("error")
				verdicts[i] = DomainVerdict{Domain: domains[i], Error: "not assessed: " + ctxErr.Error()}
			}
		}
	}

	resp := VerifyResponse{Model: slot.fingerprint, Results: verdicts}
	if len(domains) > 1 {
		resp.Ranking = rankDomains(verdicts)
	}
	writeJSON(w, code, resp)
}

// retryAfterSecs sizes the 429 Retry-After hint to the typical service
// time: the running mean of the request-duration histogram, rounded
// up, floored at 1 s (the floor also covers a cold server with no
// completed requests yet).
func (s *Server) retryAfterSecs() int {
	if m := s.met.requestSecs.mean(); m > 1 {
		return int(math.Ceil(m))
	}
	return 1
}

// requestDomains validates and normalizes the request's domain list.
func (s *Server) requestDomains(req VerifyRequest) ([]string, error) {
	var domains []string
	if req.Domain != "" {
		domains = append(domains, req.Domain)
	}
	domains = append(domains, req.Domains...)
	if len(domains) == 0 {
		return nil, errors.New(`provide "domain" or "domains"`)
	}
	if len(domains) > s.cfg.MaxBatch {
		return nil, fmt.Errorf("batch of %d exceeds the maximum of %d", len(domains), s.cfg.MaxBatch)
	}
	seen := make(map[string]bool, len(domains))
	out := domains[:0]
	for _, d := range domains {
		d = normalizeDomain(d)
		if d == "" {
			return nil, errors.New("empty domain in request")
		}
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out, nil
}

// normalizeDomain canonicalizes one domain name the way the verify
// endpoint does — lowercase, scheme/www./path stripped, port removed —
// so cache keys, corpus membership and re-verification sweeps all agree
// on a domain's identity.
func normalizeDomain(d string) string {
	d = strings.ToLower(strings.TrimSpace(d))
	d = strings.TrimPrefix(d, "http://")
	d = strings.TrimPrefix(d, "https://")
	d = strings.TrimPrefix(d, "www.")
	if i := strings.IndexByte(d, '/'); i >= 0 {
		d = d[:i]
	}
	return stripPort(d)
}

// stripPort removes a trailing :port from a normalized host so
// "pharmacy.example:8443" and "pharmacy.example" share one
// cache/singleflight key (and cost one crawl). IPv6 literals survive:
// "[::1]:8443" → "[::1]", and a bare "::1" (multiple colons, no
// brackets) is left untouched. A suffix that is not a port (non-digit)
// is kept — it is part of whatever the caller sent.
func stripPort(d string) string {
	if strings.HasPrefix(d, "[") {
		if i := strings.IndexByte(d, ']'); i >= 0 {
			return d[:i+1]
		}
		return d
	}
	i := strings.LastIndexByte(d, ':')
	if i < 0 || strings.IndexByte(d, ':') != i {
		return d // no colon, or an unbracketed IPv6 literal
	}
	for _, c := range d[i+1:] {
		if c < '0' || c > '9' {
			return d
		}
	}
	return d[:i]
}

// rankDomains orders the batch's successful verdicts through
// core.RankAssessments — the same total order the offline OPR pipeline
// produces.
func rankDomains(verdicts []DomainVerdict) []string {
	as := make([]core.Assessment, 0, len(verdicts))
	for _, v := range verdicts {
		if v.Error != "" {
			continue
		}
		as = append(as, core.Assessment{Domain: v.Domain, Rank: v.Rank})
	}
	ranked := core.RankAssessments(as)
	out := make([]string, len(ranked))
	for i, a := range ranked {
		out[i] = a.Domain
	}
	return out
}

func statusForCtxErr(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusServiceUnavailable
}

// handleHealthz is the liveness probe: the process is up. It also
// reports build info and uptime, so `curl /healthz` identifies the
// running binary.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	slot := s.model.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"build":         buildinfo.Info(),
		"model":         slot.fingerprint,
		"uptimeSeconds": int64(s.cfg.now().Sub(s.start).Seconds()),
	})
}

// handleReadyz is the readiness probe: 200 with the served model's
// identity and per-source evidence health while accepting traffic, 503
// once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	slot := s.model.Load()
	sources := make([]map[string]any, len(s.sources))
	for i, src := range s.sources {
		sources[i] = map[string]any{
			"name":    src.Name(),
			"healthy": src.Healthy(),
			"breaker": src.BreakerState(),
		}
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":  "draining",
			"model":   slot.fingerprint,
			"sources": sources,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ready",
		"model":   slot.fingerprint,
		"sources": sources,
	})
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	writeLabelCounter(w, "pharmaverify_requests_total",
		"Verify requests by HTTP status code.", "code", s.met.requests)
	writeLabelCounter(w, "pharmaverify_domains_total",
		"Domain verifications by outcome.", "outcome", s.met.domains)
	writeLabelCounter(w, "pharmaverify_verdicts_total",
		"Fresh verdicts by class.", "verdict", s.met.verdicts)
	writeLabelCounter(w, "pharmaverify_source_contributions_total",
		"Evidence contributions fused into verdicts, by source.", "source", s.met.sourceContribs)
	writeLabelCounter(w, "pharmaverify_source_errors_total",
		"Evidence-source failures (the verdict degraded to the remaining sources).", "source", s.met.sourceErrors)

	// Resilience: per-source breaker state (0 closed, 1 half-open,
	// 2 open), lifecycle transitions, and the shed/fast-fail/timeout
	// counters of the degradation path.
	names := make([]string, len(s.sources))
	states := make([]float64, len(s.sources))
	for i, src := range s.sources {
		names[i] = src.Name()
		states[i] = float64(src.brk.currentState())
	}
	writeLabelGauge(w, "pharmaverify_source_breaker_state",
		"Circuit-breaker state per evidence source (0 closed, 1 half-open, 2 open).", "source", names, states)
	writeLabel2Counter(w, "pharmaverify_source_breaker_transitions_total",
		"Circuit-breaker lifecycle transitions by source and target state.", "source", "state", s.met.breakerTransitions)
	writeLabelCounter(w, "pharmaverify_source_breaker_rejections_total",
		"Assessments fast-failed because the source's breaker was open.", "source", s.met.breakerRejects)
	writeLabelCounter(w, "pharmaverify_source_shed_total",
		"Assessments shed because the source's bulkhead was saturated.", "source", s.met.sourceSheds)
	writeLabelCounter(w, "pharmaverify_source_timeouts_total",
		"Assessments cut off by the per-source deadline.", "source", s.met.sourceTimeouts)
	writeMetric(w, "pharmaverify_quorum_failures_total",
		"Verdicts abandoned because fewer sources voted than the evidence quorum requires.", "counter", fmt.Sprint(s.met.quorumFailures.value()))
	writeMetric(w, "pharmaverify_stale_verdicts_total",
		"Expired cache entries served as marked stale fallbacks after live assessment failed.", "counter", fmt.Sprint(s.cache.staleServed()))

	ls := s.graph.live.Stats()
	writeMetric(w, "pharmaverify_linkgraph_folds_total", "Crawl observations folded into the live link graph.", "counter", fmt.Sprint(ls.Folds))
	writeMetric(w, "pharmaverify_linkgraph_dropped_names_total", "Domain names rejected by the link-graph node bound.", "counter", fmt.Sprint(ls.DroppedNames))
	writeMetric(w, "pharmaverify_linkgraph_dropped_endpoints_total", "Outbound endpoints cut by the per-domain cap.", "counter", fmt.Sprint(ls.DroppedEndpoints))
	writeMetric(w, "pharmaverify_linkgraph_dirty", "Graph-changing folds not yet reflected in the served TrustRank scores.", "gauge", fmt.Sprint(s.graph.dirty()))
	writeMetric(w, "pharmaverify_linkgraph_refreshes_total", "TrustRank score recomputes since start.", "counter", fmt.Sprint(s.met.graphRefreshes.value()))
	if snap := s.graph.snap.Load(); snap != nil {
		writeMetric(w, "pharmaverify_linkgraph_nodes", "Nodes of the fused (training + live) graph behind the served scores.", "gauge", fmt.Sprint(snap.nodes))
		writeMetric(w, "pharmaverify_linkgraph_edges", "Edges of the fused graph behind the served scores.", "gauge", fmt.Sprint(snap.edges))
	}

	hits, misses, expiries, evictions := s.cache.stats()
	writeMetric(w, "pharmaverify_cache_hits_total", "Verdict cache hits.", "counter", fmt.Sprint(hits))
	writeMetric(w, "pharmaverify_cache_misses_total", "Verdict cache misses (including expiries).", "counter", fmt.Sprint(misses))
	writeMetric(w, "pharmaverify_cache_expiries_total", "Verdict cache TTL expiries.", "counter", fmt.Sprint(expiries))
	writeMetric(w, "pharmaverify_cache_evictions_total", "Verdict cache LRU evictions.", "counter", fmt.Sprint(evictions))
	writeMetric(w, "pharmaverify_cache_entries", "Current verdict cache entries.", "gauge", fmt.Sprint(s.cache.len()))
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	writeMetric(w, "pharmaverify_cache_hit_ratio", "Verdict cache hit ratio since start.", "gauge", formatFloat(ratio))

	// Shared feature cache, split by scope: "training" counts plane
	// reuse across ensemble members and folds, "serving" counts
	// per-request feature memoization. Scopes render in sorted order
	// for a stable exposition.
	fcStats := core.FeatureCacheScopeStats()
	fcScopes := make([]string, 0, len(fcStats))
	for scope := range fcStats {
		fcScopes = append(fcScopes, scope)
	}
	sort.Strings(fcScopes)
	fmt.Fprintf(w, "# HELP pharmaverify_featcache_hits_total Shared feature cache hits by accounting scope.\n# TYPE pharmaverify_featcache_hits_total counter\n")
	for _, scope := range fcScopes {
		fmt.Fprintf(w, "pharmaverify_featcache_hits_total{scope=%q} %d\n", scope, fcStats[scope].Hits)
	}
	fmt.Fprintf(w, "# HELP pharmaverify_featcache_misses_total Shared feature cache misses by accounting scope.\n# TYPE pharmaverify_featcache_misses_total counter\n")
	for _, scope := range fcScopes {
		fmt.Fprintf(w, "pharmaverify_featcache_misses_total{scope=%q} %d\n", scope, fcStats[scope].Misses)
	}

	// Shadow deployment: candidate-model double-assessment and the
	// promotion lifecycle (cumulative across candidates), plus the
	// known-domain corpus the re-verification scheduler sweeps.
	shadowActive := 0
	if s.ShadowActive() {
		shadowActive = 1
	}
	writeMetric(w, "pharmaverify_shadow_active", "Whether a shadow candidate model is loaded (0/1).", "gauge", fmt.Sprint(shadowActive))
	writeMetric(w, "pharmaverify_shadow_assessments_total", "Fresh verdicts double-assessed by a shadow candidate.", "counter", fmt.Sprint(s.met.shadowAssessments.value()))
	writeMetric(w, "pharmaverify_shadow_flips_total", "Shadow assessments whose fused verdict flipped the live class.", "counter", fmt.Sprint(s.met.shadowFlips.value()))
	writeLabelCounter(w, "pharmaverify_shadow_disagreements_total",
		"Per-source class disagreements between the shadow and live models.", "source", s.met.shadowDisagreements)
	writeMetric(w, "pharmaverify_shadow_promotions_total", "Shadow candidates promoted to the live model.", "counter", fmt.Sprint(s.met.shadowPromotions.value()))
	writeMetric(w, "pharmaverify_shadow_demotions_total", "Shadow candidates dropped without promotion.", "counter", fmt.Sprint(s.met.shadowDemotions.value()))
	writeMetric(w, "pharmaverify_corpus_domains", "Domains in the known-domain re-verification corpus.", "gauge", fmt.Sprint(s.corpus.len()))

	writeMetric(w, "pharmaverify_queue_depth", "Requests waiting for a worker slot.", "gauge", fmt.Sprint(s.adm.queued()))
	writeMetric(w, "pharmaverify_inflight_requests", "Requests holding a worker slot.", "gauge", fmt.Sprint(s.adm.inService()))
	writeMetric(w, "pharmaverify_queue_rejections_total", "Requests shed because the admission queue was full.", "counter", fmt.Sprint(s.met.queueReject.value()))
	writeMetric(w, "pharmaverify_model_reloads_total", "Hot model reloads since start.", "counter", fmt.Sprint(s.met.modelReloads.value()))
	writeMetric(w, "pharmaverify_model_reload_failures_total", "Failed model hot-reload attempts (the previous model kept serving).", "counter", fmt.Sprint(s.met.modelReloadFails.value()))

	st, crawls := s.agg.Snapshot()
	writeMetric(w, "pharmaverify_crawls_total", "On-demand domain crawls.", "counter", fmt.Sprint(crawls))
	writeMetric(w, "pharmaverify_crawl_attempts_total", "Page fetch attempts across all crawls.", "counter", fmt.Sprint(st.Attempts))
	writeMetric(w, "pharmaverify_crawl_retries_total", "Page fetch retries across all crawls.", "counter", fmt.Sprint(st.Retries))
	writeMetric(w, "pharmaverify_crawl_failures_total", "Failed page fetch attempts.", "counter", fmt.Sprint(st.Failures))
	writeMetric(w, "pharmaverify_crawl_pages_failed_total", "Pages lost for good.", "counter", fmt.Sprint(st.PagesFailed))
	writeMetric(w, "pharmaverify_crawl_timeouts_total", "Fetch attempts cut off by the fetch timeout.", "counter", fmt.Sprint(st.Timeouts))
	writeMetric(w, "pharmaverify_crawl_breaker_trips_total", "Domains abandoned by the failure-budget breaker.", "counter", fmt.Sprint(st.BreakerTrips))
	writeMetric(w, "pharmaverify_crawl_bytes_total", "HTML bytes fetched.", "counter", fmt.Sprint(st.Bytes))

	writeHistogram(w, "pharmaverify_crawl_duration_seconds", "Wall time of one on-demand crawl.", s.met.crawlSecs)
	writeHistogram(w, "pharmaverify_preprocess_duration_seconds", "Wall time of summarize + stop-word removal + link extraction for one domain.", s.met.preprocessSecs)
	writeHistogramVec(w, "pharmaverify_source_duration_seconds", "Wall time of one evidence-source assessment.", "source", s.met.sourceSecs)
	writeHistogram(w, "pharmaverify_linkgraph_refresh_duration_seconds", "Wall time of one TrustRank score recompute.", s.met.refreshSecs)
	writeHistogram(w, "pharmaverify_request_duration_seconds", "Wall time of one verify request.", s.met.requestSecs)

	s.extraMu.Lock()
	hooks := make([]func(io.Writer), len(s.extraMetrics))
	copy(hooks, s.extraMetrics)
	s.extraMu.Unlock()
	for _, fn := range hooks {
		fn(w)
	}
}
