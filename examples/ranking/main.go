// Ranking walkthrough: reproduce the paper's Online Pharmacy Ranking
// (Problem 2) with cross-validation, report the pairwise-orderedness
// quality measure for several text models, and run the §6.4 outlier
// analysis — which illegitimate pharmacies fool the system, and which
// legitimate pharmacies look suspicious?
//
//	go run ./examples/ranking
package main

import (
	"fmt"
	"log"

	"pharmaverify/internal/core"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/webgen"
)

func main() {
	world := webgen.Generate(webgen.Config{
		Seed: 7, NumLegit: 30, NumIllegit: 170, NetworkSize: 34,
	})
	snap, err := dataset.Build("ranking-demo", world, world.Domains(), world.Labels(), crawler.Config{}, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d pharmacies\n\n", snap.Len())

	// Compare the ranking quality of different textRank sources, like
	// the paper's Table 15.
	cases := []struct {
		name string
		cfg  core.RankConfig
	}{
		{"TF-IDF NBM", core.RankConfig{Classifier: core.NBM, Terms: 500, Seed: 1}},
		{"TF-IDF SVM (hard 0/1 textRank)", core.RankConfig{Classifier: core.SVM, Terms: 500, Seed: 1}},
		{"TF-IDF J48 + SMOTE", core.RankConfig{Classifier: core.J48, Sampling: core.SMOTE, Terms: 500, Seed: 1}},
		{"N-Gram Graphs (Equation 3)", core.RankConfig{Representation: core.NGramGraphs, Terms: 500, Seed: 1}},
	}

	var best core.RankResult
	bestName := ""
	for _, c := range cases {
		res, err := core.RankCV(snap, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s pairwise orderedness = %.4f\n", c.name, res.PairwiseOrderedness)
		if res.PairwiseOrderedness > best.PairwiseOrderedness {
			best, bestName = res, c.name
		}
	}

	// Outlier analysis on the best ranking (paper §6.4): the domain
	// experts found that illegitimate outliers are generally not part
	// of affiliate networks, and legitimate outliers are the pharmacies
	// that sell new prescriptions instead of refills.
	fmt.Printf("\noutlier analysis on the %s ranking:\n", bestName)
	illegitHigh, legitLow := core.Outliers(best.Ranking, 5)

	fmt.Println("\nillegitimate pharmacies ranked suspiciously high:")
	for _, r := range illegitHigh {
		s := world.Site(r.Domain)
		tag := "networked affiliate"
		if s != nil && s.Evader {
			tag = "evader — no affiliate network (matches the paper's expert finding)"
		} else if s != nil && s.Hub {
			tag = "network hub"
		}
		fmt.Printf("  %-42s score=%.3f  %s\n", r.Domain, r.Score, tag)
	}

	fmt.Println("\nlegitimate pharmacies ranked suspiciously low:")
	for _, r := range legitLow {
		s := world.Site(r.Domain)
		tag := "regular"
		if s != nil && s.Isolated {
			tag = "isolated new-prescription seller (matches the paper's expert finding)"
		}
		fmt.Printf("  %-42s score=%.3f  %s\n", r.Domain, r.Score, tag)
	}
}
