// Package ml defines the shared machine-learning contracts used by every
// classifier in the pharmacy-verification pipeline: sparse feature
// vectors, labeled datasets, and the Classifier interface implemented by
// the Naïve Bayes, SVM, C4.5, MLP and ensemble learners.
//
// Labels follow the paper's convention: the positive class (1) is
// "legitimate", the negative class (0) is "illegitimate".
package ml

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Class labels. The paper calls legitimate the "positive" class.
const (
	Illegitimate = 0
	Legitimate   = 1
)

// ClassName returns the paper's name for a label.
func ClassName(y int) string {
	if y == Legitimate {
		return "legitimate"
	}
	return "illegitimate"
}

// Vector is a sparse feature vector: parallel slices of strictly
// increasing feature indices and their values. The zero Vector is the
// zero vector.
type Vector struct {
	Ind []int32
	Val []float64
}

// NewVector builds a sparse vector from a dense slice, dropping zeros.
func NewVector(dense []float64) Vector {
	var v Vector
	for i, x := range dense {
		if x != 0 {
			v.Ind = append(v.Ind, int32(i))
			v.Val = append(v.Val, x)
		}
	}
	return v
}

// FromMap builds a sorted sparse vector from an index→value map.
func FromMap(m map[int]float64) Vector {
	idx := make([]int, 0, len(m))
	for i := range m {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	v := Vector{
		Ind: make([]int32, 0, len(idx)),
		Val: make([]float64, 0, len(idx)),
	}
	for _, i := range idx {
		if m[i] != 0 {
			v.Ind = append(v.Ind, int32(i))
			v.Val = append(v.Val, m[i])
		}
	}
	return v
}

// Len reports the number of stored (non-zero) entries.
func (v Vector) Len() int { return len(v.Ind) }

// At returns the value at feature index i (0 when absent).
func (v Vector) At(i int) float64 {
	k := sort.Search(len(v.Ind), func(j int) bool { return v.Ind[j] >= int32(i) })
	if k < len(v.Ind) && v.Ind[k] == int32(i) {
		return v.Val[k]
	}
	return 0
}

// Dense expands the vector into a dense slice of length dim.
func (v Vector) Dense(dim int) []float64 {
	d := make([]float64, dim)
	for k, i := range v.Ind {
		if int(i) < dim {
			d[i] = v.Val[k]
		}
	}
	return d
}

// Dot computes the inner product of two sparse vectors.
func Dot(a, b Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Ind) && j < len(b.Ind) {
		switch {
		case a.Ind[i] == b.Ind[j]:
			s += a.Val[i] * b.Val[j]
			i++
			j++
		case a.Ind[i] < b.Ind[j]:
			i++
		default:
			j++
		}
	}
	return s
}

// DotDense computes the inner product of a sparse vector with a dense
// weight slice. Indices beyond len(w) contribute nothing.
func DotDense(v Vector, w []float64) float64 {
	var s float64
	for k, i := range v.Ind {
		if int(i) < len(w) {
			s += v.Val[k] * w[i]
		}
	}
	return s
}

// Norm2 returns the squared Euclidean norm of v.
func Norm2(v Vector) float64 {
	var s float64
	for _, x := range v.Val {
		s += x * x
	}
	return s
}

// SquaredDistance returns ||a-b||².
func SquaredDistance(a, b Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Ind) || j < len(b.Ind) {
		switch {
		case j >= len(b.Ind) || (i < len(a.Ind) && a.Ind[i] < b.Ind[j]):
			s += a.Val[i] * a.Val[i]
			i++
		case i >= len(a.Ind) || b.Ind[j] < a.Ind[i]:
			s += b.Val[j] * b.Val[j]
			j++
		default:
			d := a.Val[i] - b.Val[j]
			s += d * d
			i++
			j++
		}
	}
	return s
}

// Scale returns v multiplied by a scalar, as a new vector.
func Scale(v Vector, c float64) Vector {
	out := Vector{Ind: append([]int32(nil), v.Ind...), Val: make([]float64, len(v.Val))}
	for i, x := range v.Val {
		out.Val[i] = x * c
	}
	return out
}

// Lerp returns a + t*(b-a) as a sparse vector (used by SMOTE). The
// inputs' index lists are already sorted, so the result is assembled by
// a linear merge — no per-call map or re-sort on this hot path.
func Lerp(a, b Vector, t float64) Vector {
	v := Vector{
		Ind: make([]int32, 0, a.Len()+b.Len()),
		Val: make([]float64, 0, a.Len()+b.Len()),
	}
	push := func(ind int32, val float64) {
		if val != 0 {
			v.Ind = append(v.Ind, ind)
			v.Val = append(v.Val, val)
		}
	}
	i, j := 0, 0
	for i < len(a.Ind) && j < len(b.Ind) {
		switch {
		case a.Ind[i] < b.Ind[j]:
			push(a.Ind[i], (1-t)*a.Val[i])
			i++
		case a.Ind[i] > b.Ind[j]:
			push(b.Ind[j], t*b.Val[j])
			j++
		default:
			push(a.Ind[i], (1-t)*a.Val[i]+t*b.Val[j])
			i++
			j++
		}
	}
	for ; i < len(a.Ind); i++ {
		push(a.Ind[i], (1-t)*a.Val[i])
	}
	for ; j < len(b.Ind); j++ {
		push(b.Ind[j], t*b.Val[j])
	}
	return v
}

// Dataset is a labeled collection of sparse instances.
type Dataset struct {
	// Dim is the feature-space dimensionality; all vector indices are
	// < Dim.
	Dim int
	// X holds the feature vectors, Y the parallel class labels
	// (Illegitimate or Legitimate), and Names optional instance
	// identifiers (pharmacy domains). Names may be nil.
	X     []Vector
	Y     []int
	Names []string
}

// Len reports the number of instances.
func (d *Dataset) Len() int { return len(d.X) }

// Add appends one instance. name may be empty.
func (d *Dataset) Add(x Vector, y int, name string) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
	d.Names = append(d.Names, name)
}

// Subset returns a new dataset view containing the given instance
// indices. Vectors are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{Dim: d.Dim}
	for _, i := range idx {
		var name string
		if i < len(d.Names) {
			name = d.Names[i]
		}
		s.Add(d.X[i], d.Y[i], name)
	}
	return s
}

// CountClass returns the number of instances with label y.
func (d *Dataset) CountClass(y int) int {
	n := 0
	for _, l := range d.Y {
		if l == y {
			n++
		}
	}
	return n
}

// Validate checks internal consistency: parallel slice lengths, labels
// in {0,1}, and feature indices within Dim and strictly increasing.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d vectors but %d labels", len(d.X), len(d.Y))
	}
	if d.Names != nil && len(d.Names) != len(d.X) {
		return fmt.Errorf("ml: %d vectors but %d names", len(d.X), len(d.Names))
	}
	for n, x := range d.X {
		if len(x.Ind) != len(x.Val) {
			return fmt.Errorf("ml: instance %d has %d indices but %d values", n, len(x.Ind), len(x.Val))
		}
		prev := int32(-1)
		for _, i := range x.Ind {
			if i <= prev {
				return fmt.Errorf("ml: instance %d has non-increasing index %d", n, i)
			}
			if int(i) >= d.Dim {
				return fmt.Errorf("ml: instance %d index %d out of range (dim %d)", n, i, d.Dim)
			}
			prev = i
		}
		if d.Y[n] != Illegitimate && d.Y[n] != Legitimate {
			return fmt.Errorf("ml: instance %d has label %d", n, d.Y[n])
		}
	}
	return nil
}

// ErrEmptyDataset is returned by classifiers asked to fit zero instances.
var ErrEmptyDataset = errors.New("ml: empty dataset")

// ErrOneClass is returned by classifiers that require both classes to be
// present in the training data.
var ErrOneClass = errors.New("ml: training data contains a single class")

// Classifier is the contract every learner in this repository satisfies.
//
// Fit trains the model from scratch on the dataset (repeated calls
// re-train). Prob returns the estimated probability that the instance is
// legitimate (the positive class); for learners without a probabilistic
// model this is a deterministic monotone mapping of the decision score.
// Predict returns the hard label, which must equal Prob(x) >= 0.5.
type Classifier interface {
	Fit(ds *Dataset) error
	Prob(x Vector) float64
	Predict(x Vector) int
}

// Named is implemented by classifiers that expose the abbreviation used
// in the paper's tables (NBM, NB, SVM, J48, MLP, ...).
type Named interface {
	Name() string
}

// PredictFromProb is a helper for implementing Predict from Prob.
func PredictFromProb(p float64) int {
	if p >= 0.5 {
		return Legitimate
	}
	return Illegitimate
}

// Sigmoid is the logistic function, used by score-based learners to
// expose a probability-like monotone output.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}
