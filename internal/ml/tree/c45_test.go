package tree

import (
	"math"
	"math/rand"
	"testing"

	"pharmaverify/internal/ml"
)

// andDataset labels an instance legitimate iff both features exceed 0.5
// — a conjunction that requires a depth-2 tree (a single linear split on
// either feature cannot express it) while still giving C4.5 positive
// information gain at the root.
func andDataset(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{Dim: 2}
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		y := ml.Illegitimate
		if a > 0.5 && b > 0.5 {
			y = ml.Legitimate
		}
		ds.Add(ml.NewVector([]float64{a, b}), y, "")
	}
	return ds
}

func trainAcc(clf ml.Classifier, ds *ml.Dataset) float64 {
	correct := 0
	for i, x := range ds.X {
		if clf.Predict(x) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func TestC45LearnsConjunction(t *testing.T) {
	// The AND concept is non-linear in a single split: the tree must use
	// at least two levels and should fit it almost perfectly.
	ds := andDataset(400, 1)
	clf := NewC45()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := trainAcc(clf, ds); acc < 0.95 {
		t.Errorf("AND accuracy = %v", acc)
	}
	if clf.Depth() < 3 {
		t.Errorf("AND needs two internal levels (depth >= 3), got %d", clf.Depth())
	}
}

func TestC45AxisAlignedSplit(t *testing.T) {
	ds := &ml.Dataset{Dim: 3}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		v := rng.Float64()
		y := ml.Illegitimate
		if v > 0.6 {
			y = ml.Legitimate
		}
		ds.Add(ml.NewVector([]float64{rng.NormFloat64(), v, rng.NormFloat64()}), y, "")
	}
	clf := NewC45()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := trainAcc(clf, ds); acc < 0.98 {
		t.Errorf("threshold accuracy = %v", acc)
	}
	if clf.root.feature != 1 {
		t.Errorf("root split on feature %d, want 1", clf.root.feature)
	}
	if clf.root.threshold < 0.5 || clf.root.threshold > 0.7 {
		t.Errorf("root threshold = %v, want ~0.6", clf.root.threshold)
	}
}

func TestC45SparseZeroHandling(t *testing.T) {
	// Class determined by whether a sparse indicator feature is present
	// (zero vs non-zero) — the implicit-zero block must be split correctly.
	ds := &ml.Dataset{Dim: 50}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		m := map[int]float64{}
		y := i % 2
		if y == ml.Legitimate {
			m[7] = 1 + rng.Float64()
		}
		m[rng.Intn(50)] = rng.Float64() * 0.1
		ds.Add(ml.FromMap(m), y, "")
	}
	clf := NewC45()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := trainAcc(clf, ds); acc < 0.97 {
		t.Errorf("sparse accuracy = %v", acc)
	}
}

func TestC45PruningShrinksNoisyTree(t *testing.T) {
	// Pure-noise labels: the pruned tree should collapse near the root.
	ds := &ml.Dataset{Dim: 4}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		v := make([]float64, 4)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		ds.Add(ml.NewVector(v), rng.Intn(2), "")
	}
	unpruned := &C45{MinLeaf: 2, CF: -1}
	if err := unpruned.Fit(ds); err != nil {
		t.Fatal(err)
	}
	pruned := NewC45()
	if err := pruned.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if pruned.Size() > unpruned.Size() {
		t.Errorf("pruned size %d > unpruned %d", pruned.Size(), unpruned.Size())
	}
}

func TestC45MinLeafRespected(t *testing.T) {
	ds := andDataset(100, 5)
	clf := &C45{MinLeaf: 30, CF: -1}
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	var check func(n *node)
	check = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf && n.total() < 30 && n != clf.root {
			// A leaf can only be smaller than MinLeaf if it is the root.
			t.Errorf("leaf with %d < 30 instances", n.total())
		}
		check(n.left)
		check(n.right)
	}
	check(clf.root)
}

func TestC45MaxDepth(t *testing.T) {
	ds := andDataset(400, 6)
	clf := &C45{MinLeaf: 2, MaxDepth: 1, CF: -1}
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if d := clf.Depth(); d > 2 {
		t.Errorf("depth = %d with MaxDepth=1", d)
	}
}

func TestC45ProbLaplace(t *testing.T) {
	ds := andDataset(200, 7)
	clf := NewC45()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		p := clf.Prob(x)
		if p <= 0 || p >= 1 {
			t.Fatalf("Laplace prob must be in (0,1), got %v", p)
		}
	}
}

func TestC45PredictConsistentWithProbMajority(t *testing.T) {
	ds := andDataset(200, 8)
	clf := NewC45()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		// With Laplace smoothing, prob >= 0.5 iff legit count >= illegit.
		// Majority breaks the tie toward illegitimate; accept either on
		// exact ties, otherwise they must agree.
		p := clf.Prob(x)
		if math.Abs(p-0.5) < 1e-12 {
			continue
		}
		if ml.PredictFromProb(p) != clf.Predict(x) {
			t.Fatalf("Predict disagrees with Prob %v", p)
		}
	}
}

func TestC45Errors(t *testing.T) {
	if err := NewC45().Fit(&ml.Dataset{Dim: 1}); err != ml.ErrEmptyDataset {
		t.Errorf("empty: %v", err)
	}
	one := &ml.Dataset{Dim: 1}
	one.Add(ml.NewVector([]float64{1}), ml.Legitimate, "")
	if err := NewC45().Fit(one); err != ml.ErrOneClass {
		t.Errorf("one class: %v", err)
	}
}

func TestC45UnfittedDefaults(t *testing.T) {
	clf := NewC45()
	if clf.Prob(ml.Vector{}) != 0.5 || clf.Predict(ml.Vector{}) != ml.Illegitimate {
		t.Error("unfitted defaults wrong")
	}
	if clf.Size() != 0 || clf.Depth() != 0 {
		t.Error("unfitted size/depth wrong")
	}
}

func TestAddErrs(t *testing.T) {
	// addErrs must be positive for imperfect confidence and shrink as n
	// grows (relative to n).
	small := addErrs(10, 2, 0.25)
	if small <= 0 {
		t.Errorf("addErrs(10,2,0.25) = %v, want > 0", small)
	}
	big := addErrs(1000, 200, 0.25)
	if big/1000 >= small/10 {
		t.Errorf("relative correction must shrink with n: %v vs %v", big/1000, small/10)
	}
	// Zero observed errors still get a positive correction.
	if z := addErrs(20, 0, 0.25); z <= 0 {
		t.Errorf("addErrs(20,0,0.25) = %v", z)
	}
	// cf capped at 0.5.
	if addErrs(50, 5, 0.9) != addErrs(50, 5, 0.5) {
		t.Error("cf not capped at 0.5")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.75, 0.6744897501960817},
		{0.975, 1.959963984540054},
		{0.01, -2.326347874040841},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("normalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestEntropy(t *testing.T) {
	if e := entropy(5, 5); math.Abs(e-1) > 1e-12 {
		t.Errorf("entropy(5,5) = %v, want 1", e)
	}
	if e := entropy(10, 0); e != 0 {
		t.Errorf("entropy(10,0) = %v, want 0", e)
	}
}

// Property: for random datasets the tree never panics and training
// accuracy is at least the majority-class rate.
func TestC45AtLeastMajorityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(100)
		dim := 1 + rng.Intn(6)
		ds := &ml.Dataset{Dim: dim}
		for i := 0; i < n; i++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			ds.Add(ml.NewVector(v), rng.Intn(2), "")
		}
		if ds.CountClass(0) == 0 || ds.CountClass(1) == 0 {
			continue
		}
		clf := NewC45()
		if err := clf.Fit(ds); err != nil {
			t.Fatal(err)
		}
		maj := ds.CountClass(0)
		if c1 := ds.CountClass(1); c1 > maj {
			maj = c1
		}
		if acc := trainAcc(clf, ds); acc < float64(maj)/float64(n)-1e-9 {
			t.Fatalf("training accuracy %v below majority rate %v", acc, float64(maj)/float64(n))
		}
	}
}

func BenchmarkC45FitSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	ds := &ml.Dataset{Dim: 500}
	for i := 0; i < 400; i++ {
		m := map[int]float64{}
		for k := 0; k < 25; k++ {
			m[rng.Intn(500)] = rng.Float64()
		}
		if i%2 == ml.Legitimate {
			m[3] = 2
		}
		ds.Add(ml.FromMap(m), i%2, "")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := NewC45()
		if err := clf.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}
