package crawler

// Stats is the crawl telemetry for one domain (or, aggregated, for a
// whole snapshot build). The page-fetch counters reconcile exactly:
//
//	Attempts = Successes + Failures
//	Retries  = Attempts − (pages tried at least once)
//
// Robots.txt traffic is tracked separately so the page counters stay
// comparable to MaxPages.
type Stats struct {
	// Attempts counts page fetch attempts, including retries.
	Attempts int `json:"attempts"`
	// Retries counts attempts beyond the first per page.
	Retries int `json:"retries"`
	// Successes counts attempts that returned a document.
	Successes int `json:"successes"`
	// Failures counts attempts that returned an error.
	Failures int `json:"failures"`
	// PagesFailed counts pages lost for good: a permanent error or an
	// exhausted retry budget.
	PagesFailed int `json:"pagesFailed"`
	// Timeouts counts attempts cut off by Config.FetchTimeout.
	Timeouts int `json:"timeouts"`
	// Bytes sums the HTML bytes of successful fetches.
	Bytes int64 `json:"bytes"`
	// BreakerTrips is 1 when this domain's failure budget was exhausted
	// and the crawl degraded to the pages collected so far (aggregated:
	// the number of domains that tripped).
	BreakerTrips int `json:"breakerTrips"`
	// Cancels is 1 when this domain's crawl was interrupted by context
	// cancellation or deadline expiry before finishing, degrading to the
	// pages collected so far (aggregated: the number of interrupted
	// domains). Interrupted domains are excluded from snapshots and
	// checkpoints so a resumed run recomputes them from scratch.
	Cancels int `json:"cancels,omitempty"`
	// DomainsMissing is only set on aggregated stats: the number of
	// planned domains that a cancelled snapshot build could not finish
	// (interrupted mid-crawl or never started) — the shortfall of a
	// partial snapshot.
	DomainsMissing int `json:"domainsMissing,omitempty"`
	// RobotsAttempts and RobotsFailures count /robots.txt traffic.
	RobotsAttempts int `json:"robotsAttempts"`
	RobotsFailures int `json:"robotsFailures"`
	// RobotsUnreachable records that /robots.txt kept failing
	// transiently even after retries, so the crawl proceeded as if the
	// file were absent (allow-all). A permanent 404 does NOT set this —
	// a missing robots.txt legitimately allows everything.
	RobotsUnreachable bool `json:"robotsUnreachable,omitempty"`
}

// Add accumulates another domain's stats into s.
func (s *Stats) Add(o Stats) {
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.Successes += o.Successes
	s.Failures += o.Failures
	s.PagesFailed += o.PagesFailed
	s.Timeouts += o.Timeouts
	s.Bytes += o.Bytes
	s.BreakerTrips += o.BreakerTrips
	s.Cancels += o.Cancels
	s.DomainsMissing += o.DomainsMissing
	s.RobotsAttempts += o.RobotsAttempts
	s.RobotsFailures += o.RobotsFailures
	s.RobotsUnreachable = s.RobotsUnreachable || o.RobotsUnreachable
}

// AggregateStats sums the telemetry of a CrawlAll result set.
func AggregateStats(results map[string]Result) Stats {
	var total Stats
	for _, r := range results {
		total.Add(r.Stats)
	}
	return total
}
