package crawler

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"pharmaverify/internal/webgen"
)

// waitGoroutines waits for the goroutine count to drop back to at most
// want, failing with a full stack dump if it doesn't: any goroutine the
// crawl leaks (a worker stuck in cond.Wait, a watcher never released)
// is still alive seconds after CrawlCtx returned.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d alive, want <= %d\n%s", runtime.NumGoroutine(), want, buf[:n])
}

// TestCancelMidBackoffLatency is the acceptance test for cancellation
// latency: with every fetch failing transiently and a 30-second backoff
// between attempts, a cancel issued mid-backoff must return the crawl
// within one timer tick — not after sleeping out the backoff.
func TestCancelMidBackoffLatency(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 3, NumLegit: 2, NumIllegit: 2, NetworkSize: 2})
	fi := NewFaultInjector(w, FaultConfig{Seed: 11, TransientRate: 1}) // every attempt fails
	cfg := Config{
		IgnoreRobots: true,
		Workers:      2,
		Retry: RetryConfig{
			MaxAttempts: 100,
			BaseDelay:   30 * time.Second,
			MaxDelay:    30 * time.Second,
			Jitter:      -1,
		},
	}

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(50*time.Millisecond, cancel)

	start := time.Now()
	r := CrawlCtx(ctx, fi, w.Domains()[0], cfg)
	elapsed := time.Since(start)

	// The workers were asleep in a 30s backoff when the cancel fired;
	// anything close to the backoff duration means the sleep was not
	// interrupted. The 3s bound is three orders of magnitude slack for
	// a loaded CI machine.
	if elapsed > 3*time.Second {
		t.Fatalf("CrawlCtx took %v to honor a cancel issued at 50ms (backoff is 30s)", elapsed)
	}
	if r.Stats.Cancels != 1 {
		t.Errorf("Stats.Cancels = %d, want 1 for an interrupted crawl", r.Stats.Cancels)
	}
	if len(r.Pages) != 0 {
		t.Errorf("got %d pages from an all-failing fetcher", len(r.Pages))
	}
	waitGoroutines(t, baseline)
}

func TestCrawlCtxPrecanceled(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 5, NumLegit: 2, NumIllegit: 2, NetworkSize: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := CrawlCtx(ctx, w, w.Domains()[0], Config{})
	if r.Stats.Cancels != 1 {
		t.Errorf("Stats.Cancels = %d, want 1", r.Stats.Cancels)
	}
	if len(r.Pages) != 0 {
		t.Errorf("pre-cancelled crawl collected %d pages", len(r.Pages))
	}
}

// TestCrawlCtxDeadlinePartial checks graceful degradation under a
// deadline: the crawl stops early, keeps the pages collected so far and
// marks the result as interrupted.
func TestCrawlCtxDeadlinePartial(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 7, NumLegit: 2, NumIllegit: 2, NetworkSize: 2})
	domain := w.Domains()[0]
	full := Crawl(w, domain, Config{IgnoreRobots: true})
	if len(full.Pages) < 3 {
		t.Fatalf("synthetic site too small (%d pages) for a partial-crawl test", len(full.Pages))
	}

	slow := FetcherFunc(func(d, p string) (string, error) {
		time.Sleep(5 * time.Millisecond)
		return w.Fetch(d, p)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	r := CrawlCtx(ctx, slow, domain, Config{IgnoreRobots: true, Workers: 2})
	if r.Stats.Cancels != 1 {
		t.Errorf("Stats.Cancels = %d, want 1 after deadline expiry", r.Stats.Cancels)
	}
	if len(r.Pages) >= len(full.Pages) {
		t.Errorf("deadline-bounded crawl got all %d pages; expected a partial result", len(full.Pages))
	}
}

// TestCrawlAllCtxCancel checks the fan-out contract: on cancel the
// started domains return partial results marked with Stats.Cancels,
// unstarted domains are absent, and ctx's error is surfaced.
func TestCrawlAllCtxCancel(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 9, NumLegit: 3, NumIllegit: 5, NetworkSize: 3})
	domains := w.Domains()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Every fetch blocks until the context dies, so the first wave of
	// domains is in flight when the cancel arrives and no domain can
	// ever complete.
	blocked := FetcherFunc(func(d, p string) (string, error) {
		<-ctx.Done()
		return "", ctx.Err()
	})
	time.AfterFunc(50*time.Millisecond, cancel)
	results, err := CrawlAllCtx(ctx, blocked, domains, Config{IgnoreRobots: true}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) == 0 || len(results) >= len(domains) {
		t.Fatalf("%d of %d domains present; want only the started wave", len(results), len(domains))
	}
	for d, r := range results {
		if r.Stats.Cancels != 1 {
			t.Errorf("%s: Stats.Cancels = %d, want 1", d, r.Stats.Cancels)
		}
	}
	waitGoroutines(t, baseline)
}
