package reverify

import (
	"math"
	"sort"
	"sync"

	"pharmaverify/internal/core"
)

// driftMonitor folds re-verified observations into streaming term- and
// link-frequency counters and scores them against the live model's
// train-time sketch. The score per distribution is the total-variation
// distance over the sketch's kept keys plus an implicit "other" bucket
// (mass outside the kept keys): 0 means the fresh crawls look exactly
// like the training corpus, 1 means nothing overlaps. Observations
// accumulate across sweeps until a promotion re-baselines the monitor —
// the window deliberately spans sweeps, because paper-scale drift
// (vocabulary restyling, link-farm churn) emerges over months of
// corpus, not one pass.
type driftMonitor struct {
	mu         sync.Mutex
	base       *core.Sketch
	termCounts map[string]int
	termTotal  int
	linkCounts map[string]int
	linkTotal  int
	// observations counts domains folded in, the trigger's evidence bar.
	observations int
}

func newDriftMonitor(base *core.Sketch) *driftMonitor {
	m := &driftMonitor{}
	m.reset(base)
	return m
}

// reset re-baselines the monitor on a (newly promoted) model's sketch
// and clears the streaming counters — fresh model, fresh drift window.
func (m *driftMonitor) reset(base *core.Sketch) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.base = base
	m.termCounts = make(map[string]int)
	m.linkCounts = make(map[string]int)
	m.termTotal, m.linkTotal, m.observations = 0, 0, 0
}

// observe folds one re-verified domain's terms and outbound endpoints
// into the streaming counters.
func (m *driftMonitor) observe(terms, outbound []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range terms {
		m.termCounts[t]++
	}
	m.termTotal += len(terms)
	for _, ep := range outbound {
		m.linkCounts[ep]++
	}
	m.linkTotal += len(outbound)
	m.observations++
}

// scores computes the current term and link drift and the observation
// count. ok is false when no baseline exists (a model persisted before
// sketches) — drift is then unmeasurable, not zero.
func (m *driftMonitor) scores() (term, link float64, observations int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.base == nil {
		return 0, 0, m.observations, false
	}
	return tvDistance(m.base.Terms, m.termCounts, m.termTotal),
		tvDistance(m.base.Links, m.linkCounts, m.linkTotal),
		m.observations, true
}

// tvDistance is the total-variation distance between the sketch's kept
// distribution and the observed one, both extended with an "other"
// bucket for the mass outside the kept keys. Iteration is over sorted
// keys so the float sum — and therefore the exported gauge — is bitwise
// deterministic.
func tvDistance(base map[string]float64, counts map[string]int, total int) float64 {
	if total == 0 || len(base) == 0 {
		return 0
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	baseMass, obsMass, sum := 0.0, 0.0, 0.0
	for _, k := range keys {
		pk := base[k]
		qk := float64(counts[k]) / float64(total)
		sum += math.Abs(pk - qk)
		baseMass += pk
		obsMass += qk
	}
	pOther := 1 - baseMass
	if pOther < 0 {
		pOther = 0
	}
	qOther := 1 - obsMass
	if qOther < 0 {
		qOther = 0
	}
	sum += math.Abs(pOther - qOther)
	return sum / 2
}
