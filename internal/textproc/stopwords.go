package textproc

// luceneStopWords is the classic English stop-word list shipped with
// Apache Lucene's StandardAnalyzer (the paper preprocesses documents
// with Lucene 3.4.0 stop-word removal and no stemming).
var luceneStopWords = []string{
	"a", "an", "and", "are", "as", "at", "be", "but", "by",
	"for", "if", "in", "into", "is", "it",
	"no", "not", "of", "on", "or", "such",
	"that", "the", "their", "then", "there", "these",
	"they", "this", "to", "was", "will", "with",
}

// StopWords returns the default stop-word set (a fresh copy each call so
// that callers can extend it safely).
func StopWords() map[string]bool {
	m := make(map[string]bool, len(luceneStopWords))
	for _, w := range luceneStopWords {
		m[w] = true
	}
	return m
}
