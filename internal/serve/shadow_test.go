package serve

import (
	"context"
	"testing"
	"time"

	"pharmaverify/internal/core"
	"pharmaverify/internal/dataset"
)

// candidateVerifier trains a second model on the shared test snapshot
// with different options, so its fingerprint differs from the live
// test verifier's.
func candidateVerifier(t testing.TB) *core.Verifier {
	t.Helper()
	_, snap, live := testVerifier(t)
	cand, err := core.Train(snap, core.Options{Classifier: core.NBM, Terms: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if cand.Fingerprint() == live.Fingerprint() {
		t.Fatal("candidate model is not distinguishable from the live one")
	}
	return cand
}

func TestSetShadowRejectsNilAndIdentical(t *testing.T) {
	_, _, v := testVerifier(t)
	w, _, _ := testVerifier(t)
	s, err := New(v, Config{Fetcher: w})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	if err := s.SetShadow(nil); err == nil {
		t.Fatal("SetShadow(nil) accepted")
	}
	if err := s.SetShadow(v); err != ErrShadowIdentical {
		t.Fatalf("SetShadow(live model) = %v, want ErrShadowIdentical", err)
	}
	if s.ShadowActive() {
		t.Fatal("rejected candidates must not activate the shadow")
	}
	if _, err := s.PromoteShadow(); err != ErrNoShadow {
		t.Fatalf("PromoteShadow with no candidate = %v, want ErrNoShadow", err)
	}
}

// TestShadowPromotionMatchesManualReload pins the acceptance criterion:
// promoting a shadow is bit-identical to a manual SIGHUP reload of the
// same model — the served fingerprint after either path is the model
// file's own fingerprint.
func TestShadowPromotionMatchesManualReload(t *testing.T) {
	w, _, v := testVerifier(t)
	cand := candidateVerifier(t)

	promoted, err := New(v, Config{Fetcher: w})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(promoted.Close)
	reloaded, err := New(v, Config{Fetcher: w})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reloaded.Close)

	if err := promoted.SetShadow(cand); err != nil {
		t.Fatal(err)
	}
	fp, err := promoted.PromoteShadow()
	if err != nil {
		t.Fatal(err)
	}
	reloaded.SwapModel(cand) // the SIGHUP path, by hand

	if fp != cand.Fingerprint() {
		t.Fatalf("PromoteShadow returned %s, want the candidate's fingerprint %s", fp, cand.Fingerprint())
	}
	if promoted.ModelFingerprint() != reloaded.ModelFingerprint() {
		t.Fatalf("promotion served %s, manual reload served %s — the paths diverged",
			promoted.ModelFingerprint(), reloaded.ModelFingerprint())
	}
	if promoted.ShadowActive() {
		t.Fatal("shadow slot not cleared after promotion")
	}
	if n := promoted.met.shadowPromotions.value(); n != 1 {
		t.Fatalf("shadowPromotions = %d, want 1", n)
	}
	// Both servers now agree with a third doing SwapModel: the promoted
	// model's sketch is the new drift baseline.
	if promoted.TrainingSketch() == nil {
		t.Fatal("promoted model lost its training sketch")
	}
}

func TestDemoteShadowDropsCandidate(t *testing.T) {
	w, _, v := testVerifier(t)
	s, err := New(v, Config{Fetcher: w})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	s.DemoteShadow() // no candidate: a no-op, not a counted demotion
	if n := s.met.shadowDemotions.value(); n != 0 {
		t.Fatalf("demotions after no-op = %d, want 0", n)
	}
	if err := s.SetShadow(candidateVerifier(t)); err != nil {
		t.Fatal(err)
	}
	live := s.ModelFingerprint()
	s.DemoteShadow()
	if s.ShadowActive() {
		t.Fatal("candidate survived demotion")
	}
	if s.ModelFingerprint() != live {
		t.Fatal("demotion changed the live model")
	}
	if n := s.met.shadowDemotions.value(); n != 1 {
		t.Fatalf("demotions = %d, want 1", n)
	}
}

// TestShadowAssessFlipAndDisagreementCounting drives shadowAssess with
// fabricated live verdicts, so the flip/disagreement bookkeeping is
// checked without depending on two models actually disagreeing.
func TestShadowAssessFlipAndDisagreementCounting(t *testing.T) {
	w, _, v := testVerifier(t)
	s, err := New(v, Config{Fetcher: w})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	st := &shadowState{slot: &modelSlot{v: v, fingerprint: v.Fingerprint()}}

	// Model-independent evidence only: the shadow votes identically, so
	// a live verdict consistent with the vote must not flip…
	p := dataset.Pharmacy{Domain: "x.test"}
	agree := &DomainVerdict{Domain: "x.test", Legitimate: true,
		Sources: []SourceContribution{{Name: "registry", Prob: 0.9}}}
	s.shadowAssess(st, p, agree)
	if a, f := st.assessed.Load(), st.flips.Load(); a != 1 || f != 0 {
		t.Fatalf("after agreeing verdict: assessed=%d flips=%d, want 1, 0", a, f)
	}

	// …and a live class contradicting the fused shadow vote must.
	flip := &DomainVerdict{Domain: "x.test", Legitimate: false,
		Sources: []SourceContribution{{Name: "registry", Prob: 0.9}}}
	s.shadowAssess(st, p, flip)
	if a, f := st.assessed.Load(), st.flips.Load(); a != 2 || f != 1 {
		t.Fatalf("after contradicting verdict: assessed=%d flips=%d, want 2, 1", a, f)
	}

	// A live text vote on the wrong side of the shadow's own text prob
	// books a per-source disagreement.
	terms := []string{"pharmacy", "licensed"}
	shadowProb := v.TextProb(terms)
	liveProb := 0.9
	if shadowProb >= 0.5 {
		liveProb = 0.1
	}
	tv := &DomainVerdict{Domain: "x.test", Legitimate: liveProb >= 0.5,
		Sources: []SourceContribution{{Name: "text", Prob: liveProb}}}
	s.shadowAssess(st, dataset.Pharmacy{Domain: "x.test", Terms: terms}, tv)
	keys, counts := s.met.shadowDisagreements.snapshot()
	found := false
	for i, k := range keys {
		if k == "text" && counts[i] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("text disagreement not counted: %v %v", keys, counts)
	}

	// A verdict with no contributing sources is not an assessment.
	s.shadowAssess(st, p, &DomainVerdict{Domain: "x.test"})
	if a := st.assessed.Load(); a != 3 {
		t.Fatalf("sourceless verdict counted as an assessment: %d", a)
	}
}

// TestReverifyBypassesAdmission pins the acceptance criterion that the
// background sweep never takes admission slots from live traffic: with
// a single worker and a re-verification crawl parked mid-flight, the
// admission pool is untouched and a live request is still admitted.
func TestReverifyBypassesAdmission(t *testing.T) {
	w, _, v := testVerifier(t)
	bgDomain := pickDomain(t, true)
	liveDomain := pickDomain(t, false)
	gate := &gatedFetcher{inner: w, started: make(chan string, 16), release: make(chan struct{})}
	s, err := New(v, Config{Fetcher: gate, Workers: 1, QueueDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	obsc := make(chan error, 1)
	go func() {
		_, err := s.Reverify(context.Background(), bgDomain)
		obsc <- err
	}()
	select {
	case <-gate.started: // the background crawl is in flight
	case <-time.After(5 * time.Second):
		t.Fatal("background re-verification never reached the fetcher")
	}
	if n := s.adm.inService(); n != 0 {
		t.Fatalf("background sweep occupies %d admission slot(s)", n)
	}

	// The lone worker slot is free: a live request is admitted and its
	// crawl starts while the sweep is still parked.
	livec := make(chan error, 1)
	go func() {
		livec <- s.adm.acquire(context.Background())
	}()
	select {
	case err := <-livec:
		if err != nil {
			t.Fatalf("live admission failed during background sweep: %v", err)
		}
		s.adm.release()
	case <-time.After(5 * time.Second):
		t.Fatal("live request starved by the background sweep")
	}

	close(gate.release)
	if err := <-obsc; err != nil {
		t.Fatalf("background re-verification failed: %v", err)
	}
	_ = liveDomain
}

// TestReverifyRefreshesCacheAndCorpus: a background sweep's verdict is
// what the next live request serves (a cache hit, no second crawl), and
// the swept domain is a corpus member.
func TestReverifyRefreshesCacheAndCorpus(t *testing.T) {
	w, _, v := testVerifier(t)
	domain := pickDomain(t, true)
	cf := newCountingFetcher(w)
	s, err := New(v, Config{Fetcher: cf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	obs, err := s.Reverify(context.Background(), domain)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Domain != domain || obs.Pages == 0 || len(obs.Terms) == 0 {
		t.Fatalf("implausible observation: %+v", obs)
	}
	if obs.Verdict.Error != "" {
		t.Fatalf("verdict error: %s", obs.Verdict.Error)
	}
	if got := s.Corpus(); len(got) != 1 || got[0] != domain {
		t.Fatalf("corpus after sweep = %v, want [%s]", got, domain)
	}

	lv := s.verifyDomain(context.Background(), s.model.Load(), domain, false)
	if !lv.Cached {
		t.Fatal("live request after a sweep re-crawled instead of hitting the refreshed cache")
	}
	if lv.Legitimate != obs.Verdict.Legitimate {
		t.Fatal("cached verdict disagrees with the sweep's")
	}
	if n := cf.rootFetches(domain); n != 1 {
		t.Fatalf("domain crawled %d times, want exactly the sweep's one", n)
	}
}

func TestAddCorpusDomainsNormalizesAndBounds(t *testing.T) {
	w, _, v := testVerifier(t)
	s, err := New(v, Config{Fetcher: w, CorpusMaxDomains: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	n := s.AddCorpusDomains([]string{"HTTPS://WWW.A.test/checkout", "a.test", "b.test:8443", "c.test", ""})
	if n != 3 { // a.test (twice, deduped), b.test; c.test dropped at the cap
		t.Fatalf("AddCorpusDomains admitted %d, want 3", n)
	}
	if got := s.Corpus(); len(got) != 2 || got[0] != "a.test" || got[1] != "b.test" {
		t.Fatalf("corpus = %v, want [a.test b.test]", got)
	}
	if s.CorpusSize() != 2 {
		t.Fatalf("CorpusSize = %d, want 2", s.CorpusSize())
	}
}
