package trust

import "sync"

// LiveConfig bounds an incrementally maintained link graph.
type LiveConfig struct {
	// MaxNodes bounds the distinct domain names (sources and endpoints)
	// the graph admits (default 100 000). Once the bound is reached, new
	// names are dropped and counted in LiveStats.DroppedNames; edges
	// between already-admitted names are still recorded, so a saturated
	// graph keeps refining what it already knows instead of growing.
	MaxNodes int
	// MaxOutPerDomain caps the endpoints kept per fold (default 200); a
	// link farm spraying thousands of outbound domains cannot flood the
	// node budget from one crawl.
	MaxOutPerDomain int
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.MaxNodes <= 0 {
		c.MaxNodes = 100_000
	}
	if c.MaxOutPerDomain <= 0 {
		c.MaxOutPerDomain = 200
	}
	return c
}

// LiveStats is a point-in-time snapshot of a LiveGraph's accounting.
type LiveStats struct {
	// Nodes and Edges describe the current live graph.
	Nodes, Edges int
	// Folds counts Fold calls; Version counts the folds that actually
	// changed the edge set (re-observing identical endpoints is free).
	Folds, Version uint64
	// DroppedNames counts names rejected by the MaxNodes bound;
	// DroppedEndpoints counts endpoints cut by MaxOutPerDomain.
	DroppedNames, DroppedEndpoints uint64
}

// LiveGraph is a bounded, mutex-protected link graph maintained
// incrementally from serving crawls: every on-demand crawl folds its
// outbound endpoints in, and consumers snapshot the accumulated
// structure to recompute TrustRank without rebuilding per request. It
// is safe for concurrent use.
//
// Unlike Graph (an immutable id-interned structure built once by
// BuildGraph), LiveGraph stores adjacency as domain → endpoint lists so
// a re-crawled domain replaces its edge set in place. Fold never
// mutates a previously installed endpoint slice, so SnapshotOutbound
// can hand out a shallow copy that stays valid while folds continue.
type LiveGraph struct {
	cfg LiveConfig

	mu    sync.Mutex
	out   map[string][]string
	names map[string]struct{}
	edges int
	stats LiveStats
}

// NewLiveGraph returns an empty bounded live graph.
func NewLiveGraph(cfg LiveConfig) *LiveGraph {
	return &LiveGraph{
		cfg:   cfg.withDefaults(),
		out:   make(map[string][]string),
		names: make(map[string]struct{}),
	}
}

// admit interns a name within the node budget, reporting whether the
// name is (now) part of the graph. Callers hold l.mu.
func (l *LiveGraph) admit(name string) bool {
	if _, ok := l.names[name]; ok {
		return true
	}
	if len(l.names) >= l.cfg.MaxNodes {
		l.stats.DroppedNames++
		return false
	}
	l.names[name] = struct{}{}
	return true
}

// Fold records a crawl observation: domain links to endpoints. A
// repeated fold replaces the domain's previous endpoint set (the
// freshest crawl wins). It reports whether the domain itself was
// admitted into the graph — false only when the node budget is
// exhausted and the domain was never seen before, in which case the
// caller should degrade to its other evidence sources.
func (l *LiveGraph) Fold(domain string, endpoints []string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Folds++
	if !l.admit(domain) {
		return false
	}
	kept := make([]string, 0, len(endpoints))
	seen := make(map[string]struct{}, len(endpoints))
	for _, ep := range endpoints {
		if ep == domain {
			continue
		}
		if _, dup := seen[ep]; dup {
			continue
		}
		if len(kept) >= l.cfg.MaxOutPerDomain {
			l.stats.DroppedEndpoints++
			continue
		}
		if !l.admit(ep) {
			continue
		}
		seen[ep] = struct{}{}
		kept = append(kept, ep)
	}
	if equalStrings(l.out[domain], kept) {
		return true
	}
	l.edges += len(kept) - len(l.out[domain])
	l.out[domain] = kept
	l.stats.Version++
	return true
}

// Contains reports whether name has been admitted (as a source or an
// endpoint).
func (l *LiveGraph) Contains(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.names[name]
	return ok
}

// Version returns the number of graph-changing folds so far; consumers
// compare it with the version captured at their last recompute to
// measure dirtiness.
func (l *LiveGraph) Version() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats.Version
}

// Stats returns a copy of the graph's accounting.
func (l *LiveGraph) Stats() LiveStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Nodes = len(l.names)
	st.Edges = l.edges
	return st
}

// SnapshotOutbound returns a shallow copy of the adjacency (the
// endpoint slices are shared but never mutated after installation) plus
// the version it corresponds to, for an atomic dirty-tracking
// recompute.
func (l *LiveGraph) SnapshotOutbound() (map[string][]string, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cp := make(map[string][]string, len(l.out))
	for d, eps := range l.out {
		cp[d] = eps
	}
	return cp, l.stats.Version
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
