// Package htmlx implements a small, dependency-free HTML scanner used to
// extract visible text and hyperlinks from crawled pharmacy pages.
//
// The package intentionally does not build a DOM: the verification
// pipeline only needs (a) the visible text of a page for the text models
// and (b) the anchor targets for the link graph (Algorithm 1 in the
// paper). A single forward pass with a small state machine covers both,
// is allocation-light, and tolerates the malformed markup that is common
// on illegitimate storefronts.
package htmlx

import (
	"strings"
)

// Page is the parsed form of one HTML document.
type Page struct {
	// Title is the contents of the first <title> element, if any.
	Title string
	// Text is the visible text with tags stripped, script/style bodies
	// removed, entities decoded, and runs of whitespace collapsed.
	Text string
	// Links are the raw href values of <a> elements, in document order.
	Links []string
}

// Parse scans an HTML document and returns its visible text and links.
func Parse(src string) Page {
	var (
		text  strings.Builder
		title strings.Builder
		links []string
	)
	text.Grow(len(src) / 2)

	i := 0
	n := len(src)
	skipUntil := "" // closing tag that ends a raw-text element (script/style)
	inTitle := false

	flushSpace := func(b *strings.Builder) {
		if l := b.Len(); l > 0 && b.String()[l-1] != ' ' {
			b.WriteByte(' ')
		}
	}

	for i < n {
		c := src[i]
		if c != '<' {
			// Text content.
			j := strings.IndexByte(src[i:], '<')
			var chunk string
			if j < 0 {
				chunk = src[i:]
				i = n
			} else {
				chunk = src[i : i+j]
				i += j
			}
			if skipUntil != "" {
				continue
			}
			decoded := DecodeEntities(chunk)
			if inTitle {
				appendCollapsed(&title, decoded)
			}
			appendCollapsed(&text, decoded)
			continue
		}

		// A tag, comment, or declaration starts here.
		if strings.HasPrefix(src[i:], "<!--") {
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		tagEnd := strings.IndexByte(src[i:], '>')
		if tagEnd < 0 {
			break
		}
		tag := src[i+1 : i+tagEnd]
		i += tagEnd + 1

		name, attrs, closing := splitTag(tag)
		if skipUntil != "" {
			if closing && name == skipUntil {
				skipUntil = ""
			}
			continue
		}
		switch name {
		case "script", "style", "noscript":
			if !closing && !strings.HasSuffix(tag, "/") {
				skipUntil = name
			}
		case "title":
			inTitle = !closing
		case "a":
			if !closing {
				if href, ok := attrValue(attrs, "href"); ok && href != "" {
					links = append(links, href)
				}
			}
		case "br", "p", "div", "li", "tr", "td", "th", "h1", "h2", "h3", "h4", "h5", "h6":
			flushSpace(&text)
		}
	}

	return Page{
		Title: strings.TrimSpace(title.String()),
		Text:  strings.TrimSpace(text.String()),
		Links: links,
	}
}

// appendCollapsed writes s to b, collapsing any whitespace run into a
// single space and avoiding duplicated separators across chunks.
func appendCollapsed(b *strings.Builder, s string) {
	for _, f := range strings.Fields(s) {
		if b.Len() > 0 {
			if str := b.String(); str[len(str)-1] != ' ' {
				b.WriteByte(' ')
			}
		}
		b.WriteString(f)
	}
	if len(s) > 0 {
		last := s[len(s)-1]
		if last == ' ' || last == '\n' || last == '\t' || last == '\r' {
			if l := b.Len(); l > 0 && b.String()[l-1] != ' ' {
				b.WriteByte(' ')
			}
		}
	}
}

// splitTag separates a raw tag body ("a href=x", "/div") into the
// lower-case element name, its attribute substring, and whether it is a
// closing tag.
func splitTag(tag string) (name, attrs string, closing bool) {
	tag = strings.TrimSpace(tag)
	if strings.HasPrefix(tag, "/") {
		closing = true
		tag = strings.TrimSpace(tag[1:])
	}
	sp := strings.IndexAny(tag, " \t\r\n")
	if sp < 0 {
		name = tag
	} else {
		name = tag[:sp]
		attrs = tag[sp+1:]
	}
	name = strings.TrimSuffix(strings.ToLower(name), "/")
	return name, attrs, closing
}

// attrValue extracts the value of the named attribute from a tag's
// attribute substring. Values may be double-quoted, single-quoted, or
// bare. Attribute names are matched case-insensitively.
func attrValue(attrs, name string) (string, bool) {
	i := 0
	n := len(attrs)
	for i < n {
		// Skip whitespace.
		for i < n && isSpace(attrs[i]) {
			i++
		}
		start := i
		for i < n && attrs[i] != '=' && !isSpace(attrs[i]) {
			i++
		}
		key := attrs[start:i]
		for i < n && isSpace(attrs[i]) {
			i++
		}
		var val string
		if i < n && attrs[i] == '=' {
			i++
			for i < n && isSpace(attrs[i]) {
				i++
			}
			if i < n && (attrs[i] == '"' || attrs[i] == '\'') {
				q := attrs[i]
				i++
				vstart := i
				for i < n && attrs[i] != q {
					i++
				}
				val = attrs[vstart:i]
				if i < n {
					i++
				}
			} else {
				vstart := i
				for i < n && !isSpace(attrs[i]) {
					i++
				}
				val = attrs[vstart:i]
			}
		}
		if strings.EqualFold(key, name) {
			return DecodeEntities(val), true
		}
	}
	return "", false
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// entities maps the named character references that occur in generated
// and real-world storefront pages. Numeric references are handled
// separately by DecodeEntities.
var entities = map[string]string{
	"amp":    "&",
	"lt":     "<",
	"gt":     ">",
	"quot":   `"`,
	"apos":   "'",
	"nbsp":   " ",
	"copy":   "©",
	"reg":    "®",
	"trade":  "™",
	"mdash":  "—",
	"ndash":  "–",
	"hellip": "…",
	"middot": "·",
	"bull":   "•",
}

// DecodeEntities replaces named and numeric HTML character references in
// s with their literal characters. Unknown references are kept verbatim.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	i := amp
	for i < len(s) {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 12 {
			b.WriteByte(c)
			i++
			continue
		}
		ref := s[i+1 : i+semi]
		if rep, ok := entities[ref]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		if r, ok := decodeNumericRef(ref); ok {
			b.WriteRune(r)
			i += semi + 1
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func decodeNumericRef(ref string) (rune, bool) {
	if len(ref) < 2 || ref[0] != '#' {
		return 0, false
	}
	body := ref[1:]
	base := 10
	if body[0] == 'x' || body[0] == 'X' {
		base = 16
		body = body[1:]
		if body == "" {
			return 0, false
		}
	}
	var v int64
	for i := 0; i < len(body); i++ {
		d := digitVal(body[i])
		if d < 0 || d >= base {
			return 0, false
		}
		v = v*int64(base) + int64(d)
		if v > 0x10FFFF {
			return 0, false
		}
	}
	return rune(v), true
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
