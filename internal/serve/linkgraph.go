package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"pharmaverify/internal/core"
	"pharmaverify/internal/trust"
)

// linkGraph is the serving layer's network-evidence backend state: a
// bounded trust.LiveGraph fed by every on-demand crawl's outbound
// endpoints, plus an incrementally refreshed TrustRank score snapshot
// over the union of the model's training link structure and the live
// graph. Scores are recomputed when enough graph-changing folds have
// accumulated (dirtyThreshold), when a served domain is missing from
// the current snapshot (a cold domain must not be scored 0 against a
// stale graph), when the model changes (seeds and training links are
// per-model), or on the server's background refresh tick — never
// unconditionally per request.
type linkGraph struct {
	live           *trust.LiveGraph
	dirtyThreshold uint64
	met            *metrics

	// refreshMu serializes recomputes; snap is the lock-free read path.
	refreshMu sync.Mutex
	snap      atomic.Pointer[trustSnapshot]
}

// trustSnapshot is one immutable TrustRank computation: every node of
// the fused (training ∪ live) graph mapped to its score, tagged with
// the model fingerprint and live-graph version it was computed from.
type trustSnapshot struct {
	fp      string
	version uint64
	scores  map[string]float64
	nodes   int
	edges   int
}

func newLinkGraph(cfg Config, met *metrics) *linkGraph {
	return &linkGraph{
		live: trust.NewLiveGraph(trust.LiveConfig{
			MaxNodes:        cfg.GraphMaxNodes,
			MaxOutPerDomain: cfg.GraphMaxOut,
		}),
		dirtyThreshold: uint64(cfg.GraphDirtyThreshold),
		met:            met,
	}
}

// fold records one crawl's outbound endpoints; it reports whether the
// domain is part of the live graph (false once the node budget is
// exhausted — the network source then degrades for this domain).
func (g *linkGraph) fold(domain string, endpoints []string) bool {
	return g.live.Fold(domain, endpoints)
}

// score returns the served TrustRank score of a domain and whether the
// current snapshot knows it at all.
func (g *linkGraph) score(domain string) (float64, bool) {
	snap := g.snap.Load()
	if snap == nil {
		return 0, false
	}
	s, ok := snap.scores[domain]
	return s, ok
}

// stale decides whether the snapshot must be recomputed before serving
// domain (empty domain: only model/dirtiness staleness, the background
// tick's view).
func (g *linkGraph) stale(v *core.Verifier, domain string) bool {
	snap := g.snap.Load()
	if snap == nil {
		return true
	}
	if snap.fp != v.Fingerprint() {
		return true
	}
	if g.live.Version()-snap.version >= g.dirtyThreshold {
		return true
	}
	if domain != "" {
		// A miss forces a refresh only for domains the live graph
		// actually admitted; a domain dropped by the node bound would
		// otherwise trigger a futile recompute on every request.
		if _, ok := snap.scores[domain]; !ok && g.live.Contains(domain) {
			return true
		}
	}
	return false
}

// refreshIfStale recomputes the score snapshot when stale. Concurrent
// callers serialize on refreshMu and re-check under the lock, so a
// burst of folds costs one recompute, not one per caller.
func (g *linkGraph) refreshIfStale(v *core.Verifier, domain string) {
	if !g.stale(v, domain) {
		return
	}
	g.refreshMu.Lock()
	defer g.refreshMu.Unlock()
	if !g.stale(v, domain) {
		return
	}
	g.refresh(v)
}

// refresh rebuilds the fused graph and recomputes TrustRank — exactly
// the offline pipeline's construction (training outbound links, with
// freshly crawled domains replacing their training entry, symmetrized
// unless the model was trained directed), so online scores converge to
// the offline ones whenever the live graph matches what the offline
// batch would have seen. Callers hold refreshMu.
func (g *linkGraph) refresh(v *core.Verifier) {
	start := time.Now()
	liveOut, version := g.live.SnapshotOutbound()
	train := v.TrainingOutbound()
	merged := make(map[string][]string, len(train)+len(liveOut))
	for d, eps := range train {
		merged[d] = eps
	}
	for d, eps := range liveOut {
		merged[d] = eps
	}
	built := trust.BuildGraph(merged)
	opts := v.Options().Network
	sg := built
	if opts.Variant != core.TrustRankDirected {
		sg = built.Undirected()
	}
	// opts.Trust.Workers is normally 0, which resolves to the process
	// default — so on multi-core hosts the refresh runs the parallel
	// power iteration automatically (bit-identical to serial; the
	// refresh already never runs on the request path).
	values := trust.TrustRank(sg, v.Seeds(), opts.Trust)
	scores := make(map[string]float64, sg.Len())
	for id := 0; id < sg.Len(); id++ {
		scores[sg.Name(id)] = values[id]
	}
	g.snap.Store(&trustSnapshot{
		fp:      v.Fingerprint(),
		version: version,
		scores:  scores,
		nodes:   built.Len(),
		edges:   built.Edges(),
	})
	g.met.graphRefreshes.inc()
	g.met.refreshSecs.observe(time.Since(start).Seconds())
}

// dirty reports the graph-changing folds not yet reflected in the
// served snapshot (for /metrics).
func (g *linkGraph) dirty() uint64 {
	snap := g.snap.Load()
	if snap == nil {
		return g.live.Version()
	}
	return g.live.Version() - snap.version
}
