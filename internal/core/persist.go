package core

import (
	"encoding/json"
	"fmt"
	"io"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/ml/bayes"
	"pharmaverify/internal/ml/mlp"
	"pharmaverify/internal/ml/svm"
	"pharmaverify/internal/ml/tree"
	"pharmaverify/internal/vectorize"
)

// verifierState is the JSON wire form of a trained Verifier: the frozen
// vocabulary, the text and network models, and the training link
// structure needed to score new pharmacies.
type verifierState struct {
	Options       Options             `json:"options"`
	Vocabulary    json.RawMessage     `json:"vocabulary"`
	Weighting     int                 `json:"weighting"`
	TextKind      ClassifierKind      `json:"textKind"`
	Text          json.RawMessage     `json:"text"`
	Network       json.RawMessage     `json:"network"` // Gaussian NB
	TrainOutbound map[string][]string `json:"trainOutbound"`
	Seeds         map[string]float64  `json:"seeds"`
	// TrainCrawl is the training snapshot's crawl telemetry (optional;
	// absent in models saved by older versions).
	TrainCrawl *crawler.Stats `json:"trainCrawl,omitempty"`
}

// Save serializes the trained verifier as JSON, so a model trained once
// on reviewed ground truth can be shipped to reviewers and applied to
// fresh crawls without re-training.
func (v *Verifier) Save(w io.Writer) error {
	vocab, err := json.Marshal(v.vocab)
	if err != nil {
		return fmt.Errorf("core: marshal vocabulary: %w", err)
	}
	text, err := marshalClassifier(v.text)
	if err != nil {
		return fmt.Errorf("core: marshal text model: %w", err)
	}
	network, err := marshalClassifier(v.netClf)
	if err != nil {
		return fmt.Errorf("core: marshal network model: %w", err)
	}
	return json.NewEncoder(w).Encode(verifierState{
		Options:       v.opts,
		Vocabulary:    vocab,
		Weighting:     int(v.weightng),
		TextKind:      v.opts.Classifier,
		Text:          text,
		Network:       network,
		TrainOutbound: v.trainOutbound,
		Seeds:         v.seeds,
		TrainCrawl:    v.trainCrawl,
	})
}

// LoadVerifier restores a verifier persisted with Save.
func LoadVerifier(r io.Reader) (*Verifier, error) {
	var s verifierState
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decode verifier: %w", err)
	}
	vocab := &vectorize.Vocabulary{}
	if err := json.Unmarshal(s.Vocabulary, vocab); err != nil {
		return nil, err
	}
	text, err := unmarshalClassifier(s.TextKind, s.Text)
	if err != nil {
		return nil, fmt.Errorf("core: restore text model: %w", err)
	}
	network, err := unmarshalClassifier(NB, s.Network)
	if err != nil {
		return nil, fmt.Errorf("core: restore network model: %w", err)
	}
	return &Verifier{
		opts:          s.Options,
		vocab:         vocab,
		weightng:      vectorize.Weighting(s.Weighting),
		text:          text,
		netClf:        network,
		trainOutbound: s.TrainOutbound,
		seeds:         s.Seeds,
		trainCrawl:    s.TrainCrawl,
	}, nil
}

func marshalClassifier(c ml.Classifier) (json.RawMessage, error) {
	m, ok := c.(json.Marshaler)
	if !ok {
		return nil, fmt.Errorf("classifier %T does not support serialization", c)
	}
	return m.MarshalJSON()
}

func unmarshalClassifier(kind ClassifierKind, data json.RawMessage) (ml.Classifier, error) {
	var c ml.Classifier
	switch kind {
	case NBM:
		c = bayes.NewMultinomial()
	case NB:
		c = bayes.NewGaussian()
	case SVM:
		c = svm.NewLinear()
	case J48:
		c = tree.NewC45()
	case MLP:
		c = mlp.New()
	default:
		return nil, fmt.Errorf("unknown classifier kind %q", kind)
	}
	u, ok := c.(json.Unmarshaler)
	if !ok {
		return nil, fmt.Errorf("classifier %T does not support deserialization", c)
	}
	if err := u.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return c, nil
}
