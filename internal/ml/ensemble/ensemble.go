// Package ensemble implements "Ensemble Selection from Libraries of
// Models" (Caruana et al., ICML 2004), the method the paper uses to
// combine its text and network classifiers (Section 6.3.3).
//
// The learner fits every model in a library on a training portion,
// then greedily selects models *with replacement* that maximize a
// hillclimb metric on a held-out portion; the final predictor averages
// the probability outputs of the selected bag. Sorted initialization
// (seeding the bag with the best few models) reduces overfitting of the
// greedy search, as recommended in the original paper.
package ensemble

import (
	"context"
	"errors"
	"math/rand"
	"sort"

	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/parallel"
)

// Factory creates one untrained library model.
type Factory struct {
	Name string
	New  func() ml.Classifier
}

// Selection is the ensemble-selection meta-classifier.
type Selection struct {
	// Library lists the candidate model factories.
	Library []Factory
	// HillclimbFraction of the training data is held out for the greedy
	// selection (default 1/3 when 0).
	HillclimbFraction float64
	// MaxRounds bounds the number of greedy additions (default 20).
	MaxRounds int
	// InitTopN seeds the bag with the N best single models (default 2).
	InitTopN int
	// Metric scores candidate bags on the hillclimb set (default AUC).
	Metric func(scores []float64, labels []int) float64
	// Bags enables bagged ensemble selection (Caruana et al. §2.3):
	// the greedy selection runs Bags times, each over a random subset
	// of the library, and the selected multisets are unioned. Bagging
	// reduces the variance of hillclimb overfitting with small
	// validation sets. 0 or 1 disables bagging.
	Bags int
	// BagFraction is the share of the library available to each bag
	// (default 0.5).
	BagFraction float64
	// Seed controls the train/hillclimb split and bagging.
	Seed int64
	// Workers bounds the concurrency of library training (0 = process
	// default, 1 = sequential). The selected models are identical at
	// every worker count: each library model trains independently on
	// the shared build split, and the greedy selection runs after all
	// of them finish.
	Workers int

	models   []ml.Classifier
	selected []int // indices into models, with multiplicity
	fitted   bool
}

// New returns an ensemble selector over the given library with the
// defaults from the paper's setup ("standard parameters").
func New(library ...Factory) *Selection {
	return &Selection{Library: library}
}

// Name implements ml.Named.
func (s *Selection) Name() string { return "EnsembleSelection" }

// ErrEmptyLibrary is returned when Fit is called with no library models.
var ErrEmptyLibrary = errors.New("ensemble: empty model library")

// Fit trains the library and runs greedy forward selection.
func (s *Selection) Fit(ds *ml.Dataset) error {
	return s.FitCtx(context.Background(), ds)
}

// FitCtx is Fit with cooperative cancellation: library training stops
// dispatching models once ctx is cancelled (in-flight fits drain) and
// the greedy selection is skipped, leaving the selection unfitted and
// returning ctx's error.
func (s *Selection) FitCtx(ctx context.Context, ds *ml.Dataset) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(s.Library) == 0 {
		return ErrEmptyLibrary
	}
	if ds.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	frac := s.HillclimbFraction
	if frac == 0 {
		frac = 1.0 / 3.0
	}
	maxRounds := s.MaxRounds
	if maxRounds == 0 {
		maxRounds = 20
	}
	initTop := s.InitTopN
	if initTop == 0 {
		initTop = 2
	}
	metric := s.Metric
	if metric == nil {
		metric = eval.AUC
	}

	// Stratified split into build and hillclimb sets.
	k := int(1 / frac)
	if k < 2 {
		k = 2
	}
	folds := eval.StratifiedKFold(ds, k, s.Seed)
	buildIdx, hillIdx := folds.TrainTest(0)
	build := ds.Subset(buildIdx)
	hill := ds.Subset(hillIdx)
	if build.CountClass(0) == 0 || build.CountClass(1) == 0 {
		return ml.ErrOneClass
	}

	// Train the library concurrently: models are independent given the
	// shared (read-only) build split, and hillclimb probabilities are
	// collected per model, so results match the sequential loop
	// exactly.
	type trained struct {
		clf   ml.Classifier
		probs []float64
	}
	lib, err := parallel.MapErrCtx(ctx, len(s.Library), s.Workers, func(m int) (trained, error) {
		clf := s.Library[m].New()
		if err := clf.Fit(build); err != nil {
			return trained{}, err
		}
		p := make([]float64, hill.Len())
		for i, x := range hill.X {
			p[i] = clf.Prob(x)
		}
		return trained{clf: clf, probs: p}, nil
	})
	if err != nil {
		return err
	}
	s.models = make([]ml.Classifier, len(s.Library))
	probs := make([][]float64, len(s.Library)) // model × hillclimb instance
	for m, t := range lib {
		s.models[m] = t.clf
		probs[m] = t.probs
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	if s.Bags > 1 {
		s.selected = selectBagged(probs, hill.Y, initTop, maxRounds, metric, s.Bags, s.BagFraction, s.Seed)
	} else {
		s.selected = SelectGreedy(probs, hill.Y, initTop, maxRounds, metric)
	}
	s.fitted = true
	return nil
}

// selectBagged runs greedy selection over random library subsets and
// unions the selections (with multiplicity).
func selectBagged(probs [][]float64, labels []int, initTop, maxRounds int, metric func([]float64, []int) float64, bags int, frac float64, seed int64) []int {
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	rng := rand.New(rand.NewSource(seed + 999))
	n := len(probs)
	size := int(float64(n)*frac + 0.5)
	if size < 1 {
		size = 1
	}
	var selected []int
	for b := 0; b < bags; b++ {
		perm := rng.Perm(n)[:size]
		sub := make([][]float64, size)
		for i, m := range perm {
			sub[i] = probs[m]
		}
		top := initTop
		if top > size {
			top = size
		}
		for _, local := range SelectGreedy(sub, labels, top, maxRounds, metric) {
			selected = append(selected, perm[local])
		}
	}
	return selected
}

func bagMetric(sum []float64, n int, labels []int, metric func([]float64, []int) float64) float64 {
	avg := make([]float64, len(sum))
	for i, v := range sum {
		avg[i] = v / float64(n)
	}
	return metric(avg, labels)
}

// bagMetricInto is bagMetric with caller-owned scratch: the averaged
// scores land in avg (len(sum)) and the divisions are element-by-element
// like bagMetric's, so the metric sees bit-identical inputs without a
// fresh allocation per candidate bag.
func bagMetricInto(avg, sum []float64, n int, labels []int, metric func([]float64, []int) float64) float64 {
	for i, v := range sum {
		avg[i] = v / float64(n)
	}
	return metric(avg, labels)
}

// Prob averages the probability outputs of the selected bag (models
// count with their selection multiplicity).
func (s *Selection) Prob(x ml.Vector) float64 {
	if !s.fitted || len(s.selected) == 0 {
		return 0.5
	}
	var sum float64
	for _, m := range s.selected {
		sum += s.models[m].Prob(x)
	}
	return sum / float64(len(s.selected))
}

// Predict thresholds Prob at 0.5.
func (s *Selection) Predict(x ml.Vector) int { return ml.PredictFromProb(s.Prob(x)) }

// Selected reports how many times each library model was chosen, keyed
// by factory name.
func (s *Selection) Selected() map[string]int {
	out := make(map[string]int)
	for _, m := range s.selected {
		out[s.Library[m].Name]++
	}
	return out
}

// SelectionOrder returns the factory names of the selected models in
// the order the greedy search picked them (with multiplicity) — the
// sequence the determinism tests pin down across worker counts.
func (s *Selection) SelectionOrder() []string {
	out := make([]string, len(s.selected))
	for i, m := range s.selected {
		out[i] = s.Library[m].Name
	}
	return out
}

// SelectGreedy runs the sorted-initialization + greedy-forward-selection
// core of ensemble selection on precomputed model outputs: probs[m][i]
// is model m's legitimate probability for hillclimb instance i. It
// returns the selected model indices with multiplicity. This low-level
// entry point lets callers ensemble heterogeneous models (e.g. text
// classifiers and the TrustRank network model) whose feature spaces
// differ, as in the paper's Section 6.3.3.
//
// This is the kernelized selection: single-model metric values are
// computed once (not once per sort comparison) and every candidate-bag
// evaluation reuses one averaging scratch, so a selection run costs
// O(library) metric calls for the init plus one per candidate, and a
// constant number of allocations regardless of rounds. The chosen
// sequence is bit-identical to SelectGreedyReference: the sort reads a
// table of the same metric values, and the scratch holds the same
// element-by-element averages the reference computed into fresh slices.
// The metric must treat its argument as read-only and not retain it
// across calls (every repository metric qualifies).
func SelectGreedy(probs [][]float64, labels []int, initTopN, maxRounds int, metric func([]float64, []int) float64) []int {
	if len(probs) == 0 {
		return nil
	}
	if metric == nil {
		metric = eval.AUC
	}
	if initTopN <= 0 {
		initTopN = 2
	}
	if maxRounds <= 0 {
		maxRounds = 20
	}
	n := len(labels)

	single := make([]int, len(probs))
	singleScore := make([]float64, len(probs))
	for m := range probs {
		single[m] = m
		singleScore[m] = metric(probs[m], labels)
	}
	sort.SliceStable(single, func(a, b int) bool {
		return singleScore[single[a]] > singleScore[single[b]]
	})
	if initTopN > len(single) {
		initTopN = len(single)
	}
	selected := make([]int, 0, initTopN+maxRounds) // final size known up front
	selected = append(selected, single[:initTopN]...)

	sum := make([]float64, n)
	for _, m := range selected {
		for i := 0; i < n; i++ {
			sum[i] += probs[m][i]
		}
	}
	avg := make([]float64, n) // shared averaging scratch
	current := bagMetricInto(avg, sum, len(selected), labels, metric)
	cand := make([]float64, n)
	for round := 0; round < maxRounds; round++ {
		best, bestScore := -1, current
		for m := range probs {
			for i := 0; i < n; i++ {
				cand[i] = sum[i] + probs[m][i]
			}
			if sc := bagMetricInto(avg, cand, len(selected)+1, labels, metric); sc > bestScore {
				best, bestScore = m, sc
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		for i := 0; i < n; i++ {
			sum[i] += probs[best][i]
		}
		current = bestScore
	}
	return selected
}

// SelectGreedyReference is the pre-kernel implementation of SelectGreedy,
// kept verbatim as the naive reference: the sort re-evaluates the metric
// inside its comparator and every candidate bag averages into a fresh
// slice. The property tests and the training benchmarks pin SelectGreedy
// against it — same selections, strictly fewer metric calls and
// allocations.
func SelectGreedyReference(probs [][]float64, labels []int, initTopN, maxRounds int, metric func([]float64, []int) float64) []int {
	if len(probs) == 0 {
		return nil
	}
	if metric == nil {
		metric = eval.AUC
	}
	if initTopN <= 0 {
		initTopN = 2
	}
	if maxRounds <= 0 {
		maxRounds = 20
	}
	n := len(labels)

	single := make([]int, len(probs))
	for i := range single {
		single[i] = i
	}
	sort.SliceStable(single, func(a, b int) bool {
		return metric(probs[single[a]], labels) > metric(probs[single[b]], labels)
	})
	if initTopN > len(single) {
		initTopN = len(single)
	}
	selected := append([]int{}, single[:initTopN]...)

	sum := make([]float64, n)
	for _, m := range selected {
		for i := 0; i < n; i++ {
			sum[i] += probs[m][i]
		}
	}
	current := bagMetric(sum, len(selected), labels, metric)
	cand := make([]float64, n)
	for round := 0; round < maxRounds; round++ {
		best, bestScore := -1, current
		for m := range probs {
			for i := 0; i < n; i++ {
				cand[i] = sum[i] + probs[m][i]
			}
			if sc := bagMetric(cand, len(selected)+1, labels, metric); sc > bestScore {
				best, bestScore = m, sc
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		for i := 0; i < n; i++ {
			sum[i] += probs[best][i]
		}
		current = bestScore
	}
	return selected
}

// AverageSelected averages the outputs of the selected models (with
// multiplicity) for one instance's model outputs.
func AverageSelected(selected []int, modelProbs []float64) float64 {
	if len(selected) == 0 {
		return 0.5
	}
	var sum float64
	for _, m := range selected {
		sum += modelProbs[m]
	}
	return sum / float64(len(selected))
}

// Shuffle is a tiny deterministic helper used by tests and benchmarks to
// build reproducible library orders.
func Shuffle(fs []Factory, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(fs), func(i, j int) { fs[i], fs[j] = fs[j], fs[i] })
}

var (
	_ ml.Classifier = (*Selection)(nil)
	_ ml.Named      = (*Selection)(nil)
)
