package bench

import (
	"fmt"

	"pharmaverify/internal/core"
	"pharmaverify/internal/eval"
)

// AblationA1 sweeps the sampling techniques per classifier (the study
// behind the paper's "for each classifier we present only the sampling
// technique that performed best").
func AblationA1(e *Env) (*Table, error) {
	terms := pickTerms(e, 1000)
	t := &Table{
		ID:     "Ablation A1",
		Title:  "Sampling technique × classifier (TF-IDF, AUC / legit recall)",
		Header: []string{"clf", "smp", "AUC", "legit recall", "accuracy"},
		Notes: []string{
			"paper: sampling choice barely moves NBM and SVM; J48 improves substantially with SMOTE",
		},
	}
	for _, clf := range []core.ClassifierKind{core.NBM, core.SVM, core.J48} {
		for _, smp := range []core.SamplingKind{core.NoSampling, core.Subsampling, core.SMOTE} {
			res, err := e.TextResult(core.TFIDF, clf, smp, terms)
			if err != nil {
				return nil, err
			}
			t.AddRow(string(clf), string(smp),
				f2(res.Mean(eval.MetricAUC)),
				f2(res.Mean(eval.MetricLegitRecall)),
				f2(res.Mean(eval.MetricAccuracy)))
		}
	}
	return t, nil
}

// AblationA2 compares the paper's ensemble against the future-work
// alternative of feeding a single classifier the combined text+network
// features (§7b).
func AblationA2(e *Env) (*Table, error) {
	terms := pickTerms(e, 1000)
	t := &Table{
		ID:     "Ablation A2",
		Title:  "Ensemble selection vs combined text+network features",
		Header: []string{"approach", "Acc.", "AUC", "legit recall"},
	}
	ens, err := core.EnsembleCV(e.Snap1, core.EnsembleConfig{Terms: terms, Seed: e.Scale.Seed})
	if err != nil {
		return nil, err
	}
	t.AddRow("Ensemble Selection",
		f2(ens.Mean(eval.MetricAccuracy)), f2(ens.Mean(eval.MetricAUC)), f2(ens.Mean(eval.MetricLegitRecall)))

	for _, clf := range []core.ClassifierKind{core.SVM, core.J48} {
		comb, err := core.CombinedFeaturesCV(e.Snap1, clf, terms, 3, e.Scale.Seed, core.NetworkConfig{})
		if err != nil {
			return nil, err
		}
		t.AddRow("Combined features ("+string(clf)+")",
			f2(comb.Mean(eval.MetricAccuracy)), f2(comb.Mean(eval.MetricAUC)), f2(comb.Mean(eval.MetricLegitRecall)))
	}
	return t, nil
}

// AblationA3 compares the trust-propagation variants (TrustRank as
// used, strictly-directed TrustRank, Anti-TrustRank from illegitimate
// seeds, and unseeded PageRank).
func AblationA3(e *Env) (*Table, error) {
	t := &Table{
		ID:     "Ablation A3",
		Title:  "Link-analysis variants (scores → NB classifier)",
		Header: []string{"variant", "Acc.", "AUC", "legit recall", "illegit recall"},
		Notes: []string{
			"directed TrustRank starves pharmacies of trust (out-links only); PageRank has no supervision — both should trail the symmetrized TrustRank",
		},
	}
	for _, v := range []core.NetworkVariant{
		core.TrustRankUndirected, core.TrustRankDirected,
		core.AntiTrust, core.PageRankBaseline,
	} {
		res, err := e.NetworkResult(v)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(v),
			f2(res.Mean(eval.MetricAccuracy)),
			f2(res.Mean(eval.MetricAUC)),
			f2(res.Mean(eval.MetricLegitRecall)),
			f2(res.Mean(eval.MetricIllegitRecall)))
	}
	return t, nil
}

// AblationA5 compares the paper's random term subsampling against
// information-gain feature selection at equal feature budgets — an
// extension of the "richer input" direction in the paper's future work.
func AblationA5(e *Env) (*Table, error) {
	t := &Table{
		ID:     "Ablation A5",
		Title:  "Random term subsampling vs information-gain feature selection (SVM)",
		Header: []string{"k", "random subsample AUC", "IG selection AUC", "random acc", "IG acc"},
		Notes: []string{
			"IG selection concentrates on the class-indicative terms; at small budgets it should match or beat random subsampling",
		},
	}
	for _, k := range []int{100, 250} {
		if !containsInt(e.Scale.TermSizes, k) {
			continue
		}
		random, err := e.TextResult(core.TFIDF, core.SVM, core.NoSampling, k)
		if err != nil {
			return nil, err
		}
		ig, err := core.FeatureSelectionCV(e.Snap1, core.SVM, k, 3, e.Scale.Seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(sizeLabel(k),
			f2(random.Mean(eval.MetricAUC)), f2(ig.Mean(eval.MetricAUC)),
			f2(random.Mean(eval.MetricAccuracy)), f2(ig.Mean(eval.MetricAccuracy)))
	}
	return t, nil
}

// AblationA6 evaluates the paper's future-work extension (a): adding
// non-pharmacy websites that point TO pharmacies (health portals and
// review directories) to the link graph before running TrustRank. The
// inbound edges rescue the isolated legitimate pharmacies that the
// base network analysis misses, lifting legitimate recall.
func AblationA6(e *Env) (*Table, error) {
	base, err := e.NetworkResult(core.TrustRankUndirected)
	if err != nil {
		return nil, err
	}
	rich, err := core.NetworkCV(e.Snap1, core.NetworkConfig{
		Seed: e.Scale.Seed, IncludeAuxiliary: true,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A6",
		Title:  "Network analysis with inbound directory links (future work a)",
		Header: []string{"graph", "Acc.", "AUC", "legit recall", "legit precision"},
		Notes: []string{
			fmt.Sprintf("auxiliary sites in graph: %d health portals / review directories", len(e.Snap1.Aux)),
			"expected: inbound links lift legitimate recall over the base pharmacy-only graph",
		},
	}
	add := func(name string, r eval.CVResult) {
		t.AddRow(name,
			f2(r.Mean(eval.MetricAccuracy)),
			f2(r.Mean(eval.MetricAUC)),
			f2(r.Mean(eval.MetricLegitRecall)),
			f2(r.Mean(eval.MetricLegitPrecision)))
	}
	add("pharmacies only (paper §4.2)", base)
	add("+ inbound directories", rich)
	return t, nil
}

// Runner produces one table/figure by name.
type Runner struct {
	ID   string
	Desc string
	Run  func(*Env) (*Table, error)
}

// Runners lists every reproducible artifact in presentation order.
var Runners = []Runner{
	{"1", "Table 1 — dataset statistics", Table1},
	{"2", "Table 2 — abbreviations legend", Table2},
	{"3", "Table 3 — TF-IDF overall accuracy", Table3},
	{"4", "Table 4 — TF-IDF legitimate recall/precision", Table4},
	{"5", "Table 5 — TF-IDF illegitimate recall/precision", Table5},
	{"6", "Table 6 — TF-IDF AUC-ROC", Table6},
	{"7", "Table 7 — N-Gram-Graph accuracy", Table7},
	{"8", "Table 8 — N-Gram-Graph legitimate recall/precision", Table8},
	{"9", "Table 9 — N-Gram-Graph illegitimate recall/precision", Table9},
	{"10", "Table 10 — N-Gram-Graph AUC-ROC", Table10},
	{"11", "Table 11 — top-10 linked-to websites", Table11},
	{"12", "Table 12 — network accuracy/AUC", Table12},
	{"13", "Table 13 — network precision/recall", Table13},
	{"14", "Table 14 — ensemble classification", Table14},
	{"15", "Table 15 — ranking pairwise orderedness", Table15},
	{"16", "Table 16 — model over time, AUC", Table16},
	{"17", "Table 17 — model over time, legitimate precision", Table17},
	{"F1", "Figure 1 — two storefronts", Figure1},
	{"F2", "Figure 2 — N-gram-graph process trace", Figure2},
	{"F3", "Figure 3 — TrustRank propagation", func(*Env) (*Table, error) { return Figure3() }},
	{"A1", "Ablation — sampling × classifier", AblationA1},
	{"A2", "Ablation — ensemble vs combined features", AblationA2},
	{"A3", "Ablation — link-analysis variants", AblationA3},
	{"A4", "Analysis — ranking outliers (§6.4)", AblationA4},
	{"A5", "Ablation — random subsampling vs information gain", AblationA5},
	{"A6", "Ablation — inbound directory links (future work a)", AblationA6},
}

// FindRunner returns the runner with the given ID, or nil.
func FindRunner(id string) *Runner {
	for i := range Runners {
		if Runners[i].ID == id {
			return &Runners[i]
		}
	}
	return nil
}
