// Package webgen generates a deterministic synthetic web of online
// pharmacies. It substitutes for the proprietary PharmaVerComp crawls
// used in the paper (see DESIGN.md): sites carry the same textual and
// link-structure signals the paper documents for legitimate and
// illegitimate pharmacies, so the downstream classifiers and rankers
// exercise the same code paths and reproduce the published result
// shapes.
//
// Everything is a pure function of (Config.Seed, Config.Snapshot,
// domain): re-generating a world yields byte-identical pages.
package webgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"pharmaverify/internal/parallel"
)

// Config controls world generation.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Snapshot selects the crawl epoch: 1 for Dataset 1, 2 for the
	// re-crawl six months later (Dataset 2). Snapshot 2 re-generates
	// the same legitimate domains with fresh text and drifts the
	// illegitimate text distribution toward legitimate vocabulary.
	Snapshot int
	// NumLegit and NumIllegit size the two classes (Table 1: 167/1292
	// for Dataset 1, 167/1275 for Dataset 2).
	NumLegit, NumIllegit int
	// IllegitOffset shifts illegitimate domain indices so snapshots
	// have disjoint illegitimate domains, as in the paper.
	IllegitOffset int
	// MinPages/MaxPages bound the page count per site (default 6/18).
	MinPages, MaxPages int
	// MinWords/MaxWords bound the words per page (default 60/130).
	MinWords, MaxWords int
	// NetworkSize is the number of illegitimate sites per affiliate
	// network, each anchored on a hub pharmacy (default 50).
	NetworkSize int
	// IsolatedLegitFraction is the share of legitimate pharmacies with
	// no links into the trusted web (the paper's poorly-ranked
	// "new prescription" outliers; default 0.25).
	IsolatedLegitFraction float64
	// EvaderFraction is the share of illegitimate pharmacies that
	// avoid affiliate networks and imitate legitimate sites (the
	// paper's illegitimate ranking outliers; default 0.02).
	EvaderFraction float64

	// VocabShift pulls the illegitimate text mixture toward the
	// legitimate one for Snapshot >= 2 worlds (0 disables, 1 makes the
	// mixtures coincide). It models epoch-scale vocabulary restyling
	// beyond the built-in Snapshot-2 drift, giving drift monitors a
	// continuously tunable knob.
	VocabShift float64
	// LinkChurn is the per-link probability (Snapshot >= 2 only) that
	// a site's pre-assigned well-known endpoint is replaced by a fresh
	// relay domain that did not exist at train time, churning the
	// outbound-link distribution (0 disables).
	LinkChurn float64
	// BurstFraction is the share of networked illegitimate sites that
	// belong to burst-registered cohorts: groups registered together in
	// one campaign that share a page template, one endpoint set and one
	// hub (0 disables). Membership is drawn per snapshot, so cohorts
	// model registrations within a crawl epoch.
	BurstFraction float64
	// BurstCohortSize is how many sites share one burst cohort
	// (default 8).
	BurstCohortSize int
}

func (c Config) withDefaults() Config {
	if c.Snapshot == 0 {
		c.Snapshot = 1
	}
	if c.NumLegit == 0 {
		c.NumLegit = 167
	}
	if c.NumIllegit == 0 {
		c.NumIllegit = 1292
	}
	if c.MinPages == 0 {
		c.MinPages = 6
	}
	if c.MaxPages == 0 {
		c.MaxPages = 18
	}
	if c.MinWords == 0 {
		c.MinWords = 60
	}
	if c.MaxWords == 0 {
		c.MaxWords = 130
	}
	if c.NetworkSize == 0 {
		c.NetworkSize = 50
	}
	if c.IsolatedLegitFraction == 0 {
		c.IsolatedLegitFraction = 0.25
	}
	if c.EvaderFraction == 0 {
		c.EvaderFraction = 0.02
	}
	if c.BurstCohortSize == 0 {
		c.BurstCohortSize = 8
	}
	return c
}

// Dataset1Config returns the paper's Dataset 1 shape (167 legitimate,
// 1292 illegitimate pharmacies).
func Dataset1Config(seed int64) Config {
	return Config{Seed: seed, Snapshot: 1, NumLegit: 167, NumIllegit: 1292}
}

// Dataset2Config returns Dataset 2: the same 167 legitimate domains
// re-crawled six months later plus 1275 fresh illegitimate domains
// (disjoint from Dataset 1's, via the offset).
func Dataset2Config(seed int64) Config {
	return Config{Seed: seed, Snapshot: 2, NumLegit: 167, NumIllegit: 1275, IllegitOffset: 1292}
}

// Site is one generated pharmacy website.
type Site struct {
	Domain     string
	Legitimate bool
	// Hub marks the anchor pharmacy of an illegitimate affiliate
	// network; HubDomain is the hub a networked member links to.
	Hub       bool
	HubDomain string
	// Isolated marks sites with no links into the well-known web
	// (legitimate "new prescription" outliers).
	Isolated bool
	// Evader marks illegitimate sites that imitate legitimate ones in
	// both text and links.
	Evader bool
	// Burst marks members of a burst-registered cohort (see
	// Config.BurstFraction); BurstCohort numbers the cohort and is
	// meaningful only when Burst is set.
	Burst       bool
	BurstCohort int
	// Pages maps URL paths to HTML documents; Paths preserves a
	// deterministic order with "/" first.
	Pages map[string]string
	Paths []string

	// externals holds the pre-assigned well-known endpoint links
	// (see assignExternals).
	externals []string
}

// World is a generated set of pharmacy sites. It implements the
// crawler's Fetcher contract via the Fetch method.
type World struct {
	cfg     Config
	sites   map[string]*Site
	domains []string
}

// Generate builds the world for a configuration. Sites render through
// the pooled byte-buffer kernel on the process worker pool (render.go
// keeps the serial reference; see GenerateReference) — the output is
// byte-identical either way, pinned by the package tests.
func Generate(cfg Config) *World {
	w, order := buildWorld(cfg, false)
	plan := parallel.PlanGrainFor("webgen-render", 0, 1, len(order))
	parallel.ForGrain(len(order), plan.DocWorkers, plan.DocGrain, func(lo, hi int) {
		rb := renderBufPool.Get().(*renderBuf)
		for i := lo; i < hi; i++ {
			w.renderSiteFast(w.sites[order[i]], rb)
		}
		renderBufPool.Put(rb)
	})
	return w
}

// GenerateReference is Generate through the historical sequential
// paths: comparator-driven endpoint assignment and the
// strings.Builder + fmt renderer, one site at a time. It exists as the
// naive reference the generation kernels are pinned against in tests
// and the training benchmarks; production callers want Generate.
func GenerateReference(cfg Config) *World {
	w, order := buildWorld(cfg, true)
	for _, d := range order {
		w.renderSite(w.sites[d])
	}
	return w
}

// buildWorld runs every generation phase except page rendering: site
// plans, role assignment, hub attachment, external-endpoint assignment
// and churn. It returns the world plus the site rendering order (plan
// order: legitimate then illegitimate). Rendering is a pure per-site
// function of the returned state, which is what lets Generate fan it
// out. reference selects the historical endpoint-assignment sort (see
// assignExternalsReference).
func buildWorld(cfg Config, reference bool) (*World, []string) {
	cfg = cfg.withDefaults()
	w := &World{cfg: cfg, sites: make(map[string]*Site)}

	type plan struct {
		domain string
		legit  bool
		index  int
	}
	var plans []plan
	for i := 0; i < cfg.NumLegit; i++ {
		plans = append(plans, plan{legitDomain(i), true, i})
	}
	for i := 0; i < cfg.NumIllegit; i++ {
		plans = append(plans, plan{illegitDomain(i + cfg.IllegitOffset), false, i + cfg.IllegitOffset})
	}

	// First pass: create sites and assign roles (hub domains must exist
	// before members can link to them).
	var hubs []string
	for _, p := range plans {
		s := &Site{Domain: p.domain, Legitimate: p.legit}
		if p.legit {
			s.Isolated = roleDraw(cfg.Seed, p.domain, "isolated") < cfg.IsolatedLegitFraction
		} else {
			s.Evader = roleDraw(cfg.Seed, p.domain, "evader") < cfg.EvaderFraction
			s.Hub = !s.Evader && p.index%cfg.NetworkSize == 0
			if s.Hub {
				hubs = append(hubs, p.domain)
			}
			if cfg.BurstFraction > 0 && !s.Evader && !s.Hub {
				// Burst membership keys on the snapshot: cohorts are
				// campaign registrations within one crawl epoch.
				s.Burst = roleDraw(cfg.Seed, p.domain, fmt.Sprintf("burst|%d", cfg.Snapshot)) < cfg.BurstFraction
			}
		}
		w.sites[p.domain] = s
		w.domains = append(w.domains, p.domain)
	}
	sort.Strings(w.domains)

	// Group burst sites (in sorted-domain order, so cohorts are
	// deterministic) into cohorts led by their first member.
	var burst []*Site
	for _, d := range w.domains {
		if s := w.sites[d]; s.Burst {
			burst = append(burst, s)
		}
	}
	for i, s := range burst {
		s.BurstCohort = i / cfg.BurstCohortSize
	}

	// Second pass: attach networked members to hubs and assign the
	// well-known external endpoints with exact per-endpoint counts
	// (so the Table-11 ordering is structural, not sampling luck).
	for _, p := range plans {
		s := w.sites[p.domain]
		if !s.Legitimate && !s.Hub && !s.Evader && len(hubs) > 0 {
			s.HubDomain = hubs[(p.index/cfg.NetworkSize)%len(hubs)]
		}
	}
	// Burst cohorts register through one campaign: every member links
	// the leader's hub.
	for i, s := range burst {
		s.HubDomain = burst[(i/cfg.BurstCohortSize)*cfg.BurstCohortSize].HubDomain
	}
	if reference {
		w.assignExternalsReference()
	} else {
		w.assignExternals()
	}
	if cfg.LinkChurn > 0 && cfg.Snapshot >= 2 {
		w.churnExternals()
	}
	// Members share the leader's endpoint set exactly (one template,
	// one link farm).
	for i, s := range burst {
		leader := burst[(i/cfg.BurstCohortSize)*cfg.BurstCohortSize]
		s.externals = append([]string(nil), leader.externals...)
	}
	order := make([]string, len(plans))
	for i, p := range plans {
		order[i] = p.domain
	}
	return w, order
}

// churnExternals models link-farm churn between crawl epochs: each
// pre-assigned endpoint link is replaced, with probability
// cfg.LinkChurn, by a relay domain that did not exist at train time.
// The replacement stream is a pure function of (seed, snapshot,
// domain), so churned worlds regenerate byte-identically.
func (w *World) churnExternals() {
	for _, d := range w.domains {
		s := w.sites[d]
		if len(s.externals) == 0 {
			continue
		}
		rng := siteRNG(w.cfg.Seed, w.cfg.Snapshot, d, "churn")
		for i := range s.externals {
			if rng.Float64() < w.cfg.LinkChurn {
				s.externals[i] = fmt.Sprintf("http://www.relay%d-gateway.example/", rng.Intn(12))
			}
		}
	}
}

// DriftedPair generates a Dataset-1 → Dataset-2-shaped pair of worlds
// from one configuration: before is cfg pinned to Snapshot 1 with all
// drift knobs off (the training epoch), after re-crawls the same
// legitimate domains at Snapshot 2 with a disjoint illegitimate
// population and cfg's VocabShift / LinkChurn / BurstFraction applied.
// Both worlds are pure functions of cfg, so tests get a reproducible
// train-then-drift scenario from one seed.
func DriftedPair(cfg Config) (before, after *World) {
	base := cfg.withDefaults()
	b := base
	b.Snapshot = 1
	b.VocabShift, b.LinkChurn, b.BurstFraction = 0, 0, 0
	a := base
	a.Snapshot = 2
	a.IllegitOffset = base.IllegitOffset + base.NumIllegit
	return Generate(b), Generate(a)
}

// assignExternals distributes the weighted well-known endpoints over the
// sites of each class with exact counts: endpoint e with probability P
// is linked by round(P·n) of the n eligible sites, selected by a
// deterministic per-(site,endpoint) hash order. This keeps the expected
// distributions of the paper's Table 11 while eliminating binomial rank
// swaps between adjacent endpoints.
func (w *World) assignExternals() {
	var legitSites, illegitSites []*Site
	for _, d := range w.domains {
		s := w.sites[d]
		switch {
		case s.Legitimate && !s.Isolated:
			legitSites = append(legitSites, s)
		case !s.Legitimate && !s.Evader:
			illegitSites = append(illegitSites, s)
		}
	}
	// Kernelized selection: the per-(site,endpoint) hash draw is a pure
	// function, so it is computed once per site into a key table instead
	// of twice per sort comparison (where each roleDraw call paid a
	// hasher, a formatted write and a freshly seeded RNG). The draws are
	// distinct in practice, so sorting by the table yields the exact
	// order the comparator-driven reference sort produces; the reference
	// lives in assignExternalsReference and the package tests pin full
	// worlds byte-identical across both paths.
	var order []*Site
	var keys []float64
	assign := func(sites []*Site, ep weightedEndpoint) {
		k := int(ep.P*float64(len(sites)) + 0.5)
		if k <= 0 {
			return
		}
		order = append(order[:0], sites...)
		keys = keys[:0]
		role := "ep|" + ep.Domain
		for _, s := range sites {
			keys = append(keys, roleDraw(w.cfg.Seed, s.Domain, role))
		}
		sort.Sort(&siteKeySort{sites: order, keys: keys})
		if k > len(order) {
			k = len(order)
		}
		for _, s := range order[:k] {
			s.externals = append(s.externals, "http://www."+ep.Domain+"/")
		}
	}
	for _, ep := range legitEndpoints {
		assign(legitSites, ep)
	}
	for _, ep := range illegitEndpoints {
		assign(illegitSites, ep)
	}
	// Illegitimate storefronts sprinkle links to popular trusted sites
	// (social buttons, analytics) so the network signal stays noisy.
	for _, ep := range legitEndpoints[:5] {
		assign(illegitSites, weightedEndpoint{Domain: ep.Domain, P: 0.12})
	}
}

// siteKeySort orders sites by their precomputed draw keys, swapping
// both slices in lockstep (see assignExternals).
type siteKeySort struct {
	sites []*Site
	keys  []float64
}

func (s *siteKeySort) Len() int           { return len(s.sites) }
func (s *siteKeySort) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *siteKeySort) Swap(i, j int) {
	s.sites[i], s.sites[j] = s.sites[j], s.sites[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// Domains returns all site domains in sorted order.
func (w *World) Domains() []string { return append([]string(nil), w.domains...) }

// Site returns the site for a domain, or nil.
func (w *World) Site(domain string) *Site { return w.sites[domain] }

// notFoundError marks unknown domains/pages as permanent failures (via
// the Permanent() contract of internal/crawler), so a retrying crawler
// does not burn its retry budget on pages that can never exist.
type notFoundError struct{ msg string }

func (e *notFoundError) Error() string   { return e.msg }
func (e *notFoundError) Permanent() bool { return true }

// Fetch returns the HTML of a page, satisfying the crawler Fetcher
// contract. Unknown domains or paths yield a permanent error.
func (w *World) Fetch(domain, path string) (string, error) {
	s, ok := w.sites[domain]
	if !ok {
		return "", &notFoundError{msg: fmt.Sprintf("webgen: unknown domain %q", domain)}
	}
	if path == "" {
		path = "/"
	}
	html, ok := s.Pages[path]
	if !ok {
		return "", &notFoundError{msg: fmt.Sprintf("webgen: %s has no page %q", domain, path)}
	}
	return html, nil
}

// Labels returns pharmacy domain → class (1 legitimate, 0
// illegitimate). Attached auxiliary sites (directories) carry no label
// and are excluded.
func (w *World) Labels() map[string]int {
	m := make(map[string]int, len(w.domains))
	for _, d := range w.domains {
		if w.sites[d].Legitimate {
			m[d] = 1
		} else {
			m[d] = 0
		}
	}
	return m
}

func legitDomain(i int) string {
	return fmt.Sprintf("%s%d-pharmacy.com", legitSiteNames[i%len(legitSiteNames)], i)
}

var illegitTLDs = []string{".com", ".net", ".biz", ".info", ".ru", ".su", ".in"}

func illegitDomain(i int) string {
	name := illegitSiteNames[i%len(illegitSiteNames)]
	return fmt.Sprintf("%s%d%s", name, i, illegitTLDs[i%len(illegitTLDs)])
}

// siteRNG derives a deterministic random stream for one site in one
// snapshot.
func siteRNG(seed int64, snapshot int, domain, salt string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%s", seed, snapshot, domain, salt)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// roleDraw is a snapshot-independent uniform draw in [0,1) for stable
// role assignment (roles must not flip between snapshots).
func roleDraw(seed int64, domain, role string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|role|%s|%s", seed, domain, role)
	return rand.New(rand.NewSource(int64(h.Sum64()))).Float64()
}
