package crawler

import (
	"strings"
)

// Robots is a parsed robots.txt policy for one domain, covering the
// subset of the de-facto standard that matters for a verification
// crawler: User-agent groups, Disallow and Allow prefix rules, with
// longest-match precedence (Google's documented tie-breaking).
//
// crawler4j — the crawler the paper used — honors robots.txt; Crawl
// does the same when the Fetcher serves a /robots.txt document.
type Robots struct {
	groups []robotsGroup
}

type robotsGroup struct {
	agents []string // lower-case, "*" for wildcard
	rules  []robotsRule
}

type robotsRule struct {
	allow  bool
	prefix string
}

// ParseRobots parses a robots.txt body. Unknown directives are ignored.
func ParseRobots(body string) *Robots {
	r := &Robots{}
	var cur *robotsGroup
	agentsOpen := false // consecutive User-agent lines share a group
	for _, line := range strings.Split(body, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		field := strings.ToLower(strings.TrimSpace(line[:colon]))
		value := strings.TrimSpace(line[colon+1:])
		switch field {
		case "user-agent":
			if !agentsOpen {
				r.groups = append(r.groups, robotsGroup{})
				cur = &r.groups[len(r.groups)-1]
				agentsOpen = true
			}
			cur.agents = append(cur.agents, strings.ToLower(value))
		case "disallow", "allow":
			if cur == nil {
				// Rules before any User-agent line apply to everyone.
				r.groups = append(r.groups, robotsGroup{agents: []string{"*"}})
				cur = &r.groups[len(r.groups)-1]
			}
			agentsOpen = false
			cur.rules = append(cur.rules, robotsRule{
				allow:  field == "allow",
				prefix: value,
			})
		default:
			agentsOpen = false
		}
	}
	return r
}

// Allowed reports whether the user agent may fetch the path. An empty
// Disallow value allows everything; the longest matching rule wins,
// with Allow preferred on equal length.
func (r *Robots) Allowed(userAgent, path string) bool {
	if r == nil {
		return true
	}
	group := r.match(userAgent)
	if group == nil {
		return true
	}
	bestLen := -1
	allowed := true
	for _, rule := range group.rules {
		if rule.prefix == "" {
			if !rule.allow && bestLen < 0 {
				// "Disallow:" with empty value means allow all; it only
				// matters when nothing else matched.
				continue
			}
			continue
		}
		if !strings.HasPrefix(path, rule.prefix) {
			continue
		}
		l := len(rule.prefix)
		if l > bestLen || (l == bestLen && rule.allow && !allowed) {
			bestLen = l
			allowed = rule.allow
		}
	}
	return allowed
}

// match finds the most specific group for a user agent: an exact or
// substring agent match beats the "*" group.
func (r *Robots) match(userAgent string) *robotsGroup {
	ua := strings.ToLower(userAgent)
	var wildcard *robotsGroup
	var best *robotsGroup
	bestLen := 0
	for i := range r.groups {
		g := &r.groups[i]
		for _, a := range g.agents {
			switch {
			case a == "*":
				if wildcard == nil {
					wildcard = g
				}
			case strings.Contains(ua, a) && len(a) > bestLen:
				best = g
				bestLen = len(a)
			}
		}
	}
	if best != nil {
		return best
	}
	return wildcard
}
