package reverify

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
)

// pipelineMetrics are the pipeline's own instruments, rendered onto the
// deployment's /metrics endpoint through serve's RegisterMetrics hook.
type pipelineMetrics struct {
	sweeps          atomic.Uint64
	domainsOK       atomic.Uint64
	domainsErr      atomic.Uint64
	domainsSkipped  atomic.Uint64
	retrainTriggers atomic.Uint64
}

// Sweeps reports completed sweeps (tests and smoke probes poll it).
func (p *Pipeline) Sweeps() uint64 { return p.met.sweeps.Load() }

// RetrainTriggers reports how often the drift trigger has fired.
func (p *Pipeline) RetrainTriggers() uint64 { return p.met.retrainTriggers.Load() }

// WriteMetrics renders the pipeline's gauges and counters in the
// Prometheus text exposition format — the same zero-dependency style as
// the serving metrics. Register it with serve.Server.RegisterMetrics so
// the whole continuous-verification loop is scraped off one endpoint.
func (p *Pipeline) WriteMetrics(w io.Writer) {
	term, link, observations, ok := p.drift.scores()
	gauge(w, "pharmaverify_drift_term_score",
		"Total-variation distance between re-verified term frequencies and the training sketch.", term)
	gauge(w, "pharmaverify_drift_link_score",
		"Total-variation distance between re-verified outbound-link frequencies and the training sketch.", link)
	gaugeInt(w, "pharmaverify_drift_observations",
		"Re-verified domains folded into the drift window since the last re-baseline.", uint64(observations))
	baseline := uint64(0)
	if ok {
		baseline = 1
	}
	gaugeInt(w, "pharmaverify_drift_baseline_available",
		"Whether the live model carries a training sketch to measure drift against (0/1).", baseline)
	counterMetric(w, "pharmaverify_retrain_triggers_total",
		"Drift-threshold crossings that invoked the retrain hook.", p.met.retrainTriggers.Load())
	counterMetric(w, "pharmaverify_reverify_sweeps_total",
		"Completed re-verification sweeps over the corpus.", p.met.sweeps.Load())
	fmt.Fprintf(w, "# HELP pharmaverify_reverify_domains_total Re-verification attempts by outcome.\n# TYPE pharmaverify_reverify_domains_total counter\n")
	fmt.Fprintf(w, "pharmaverify_reverify_domains_total{outcome=\"ok\"} %d\n", p.met.domainsOK.Load())
	fmt.Fprintf(w, "pharmaverify_reverify_domains_total{outcome=\"error\"} %d\n", p.met.domainsErr.Load())
	fmt.Fprintf(w, "pharmaverify_reverify_domains_total{outcome=\"skipped\"} %d\n", p.met.domainsSkipped.Load())
}

func gauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
}

func gaugeInt(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

func counterMetric(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}
