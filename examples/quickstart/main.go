// Quickstart: generate a synthetic pharmacy web, crawl it into a
// labeled snapshot, train a verifier, and classify + rank the
// pharmacies — the whole pipeline in one screen of code.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pharmaverify"
)

func main() {
	// 1. A deterministic synthetic web of 20 legitimate and 100
	//    illegitimate pharmacies (stand-in for a real crawl; swap the
	//    fetcher for crawler.HTTPFetcher to go live).
	world := pharmaverify.GenerateWorld(pharmaverify.WorldConfig{
		Seed:     42,
		NumLegit: 20, NumIllegit: 100,
		NetworkSize: 25,
	})

	// 2. Crawl every domain (≤200 pages each), merge and preprocess
	//    the text, extract outbound link endpoints.
	snap, err := pharmaverify.BuildSnapshot("quickstart", world, world.Domains(), world.Labels())
	if err != nil {
		log.Fatal(err)
	}
	legit, illegit := snap.Counts()
	fmt.Printf("crawled %d pharmacies (%d legitimate, %d illegitimate)\n\n", snap.Len(), legit, illegit)

	// 3. Train the verification system: an SVM text model over TF-IDF
	//    term vectors plus a TrustRank network model.
	verifier, err := pharmaverify.Train(snap, pharmaverify.Options{
		Classifier: pharmaverify.SVM,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Assess every pharmacy: OPC verdict + OPR rank.
	assessments := verifier.Assess(snap.Pharmacies)
	correct := 0
	for i, a := range assessments {
		if a.Legitimate == (snap.Pharmacies[i].Label == 1) {
			correct++
		}
	}
	fmt.Printf("classification accuracy on the crawl: %.1f%%\n\n", 100*float64(correct)/float64(len(assessments)))

	// 5. The ranking puts legitimate pharmacies on top so human
	//    reviewers can start from the suspicious end.
	ranked := pharmaverify.RankAssessments(assessments)
	fmt.Println("most legitimate:")
	for _, a := range ranked[:5] {
		fmt.Printf("  %-42s rank=%.3f (text=%.3f, trust=%.3f)\n", a.Domain, a.Rank, a.TextProb, a.TrustScore)
	}
	fmt.Println("least legitimate:")
	for _, a := range ranked[len(ranked)-5:] {
		fmt.Printf("  %-42s rank=%.3f (text=%.3f, trust=%.3f)\n", a.Domain, a.Rank, a.TextProb, a.TrustScore)
	}
}
