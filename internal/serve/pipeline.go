package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/textproc"
	"pharmaverify/internal/trust"
)

// flightGroup deduplicates concurrent work for the same key: the first
// caller becomes the leader and runs fn, every concurrent caller for
// the same key blocks until the leader finishes and shares its result.
// In the serving path the key is verdictKey(fingerprint, domain), so a
// burst of requests for one uncached domain costs exactly one crawl.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	v    DomainVerdict
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn under key, deduplicating concurrent calls. shared reports
// whether the result came from another caller's execution. A follower
// whose ctx expires stops waiting and returns ctx's error; the leader
// itself is never interrupted by a follower's deadline.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (DomainVerdict, error)) (v DomainVerdict, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.v, true, c.err
		case <-ctx.Done():
			return DomainVerdict{}, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.v, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.v, false, c.err
}

// verdictKey is the cache and singleflight key: model identity plus
// domain. Keying on the fingerprint keeps cached verdicts consistent
// with fresh ones across hot reloads — a new model can never be served
// a predecessor's verdict.
func verdictKey(fingerprint, domain string) string {
	return fingerprint + "|" + domain
}

// verifyDomain produces the verdict for one domain under one model
// slot: verdict cache first, then singleflight-deduplicated on-demand
// assessment. Errors are returned inside the verdict (Error field) so a
// batch request reports per-domain failures without failing wholesale.
func (s *Server) verifyDomain(ctx context.Context, slot *modelSlot, domain string, refresh bool) DomainVerdict {
	key := verdictKey(slot.fingerprint, domain)
	if !refresh {
		if v, ok := s.cache.get(key); ok {
			s.met.domains.inc("cache_hit")
			v.Cached = true
			return v
		}
	}
	v, shared, err := s.flight.do(ctx, key, func() (DomainVerdict, error) {
		v, err := s.assess(ctx, slot, domain)
		if err == nil {
			// Cache successful verdicts only — a transient crawl failure
			// must not stick for a whole TTL. A refresh=true assessment
			// also lands here, replacing any cached verdict: later cached
			// reads are never staler than the freshest one served.
			s.cache.put(key, v)
		}
		return v, err
	})
	switch {
	case err != nil:
		s.met.domains.inc("error")
		return DomainVerdict{Domain: domain, Error: err.Error()}
	case shared:
		s.met.domains.inc("deduped")
	default:
		s.met.domains.inc("crawled")
	}
	return v
}

// assess runs the on-demand pipeline for one domain: crawl (bounded by
// the per-request context and the server's crawl budget), preprocess
// (summarize + stop-word removal, exactly the training-time pipeline),
// then Verifier.Assess against the slot's model. The verdict is
// self-contained — it owns a clone of its crawl telemetry — so it can
// be cached and returned to many requests safely.
func (s *Server) assess(ctx context.Context, slot *modelSlot, domain string) (DomainVerdict, error) {
	start := time.Now()
	r := crawler.CrawlCtx(ctx, s.fetch, domain, s.cfg.Crawl)
	s.met.crawlSecs.observe(time.Since(start).Seconds())
	// Fold this request's telemetry into the process-wide counters
	// (race-safe: Aggregator copies, the verdict gets its own clone).
	s.agg.Add(r.Stats)

	if r.Stats.Cancels != 0 {
		return DomainVerdict{}, fmt.Errorf("crawl of %s interrupted: %w", domain, ctx.Err())
	}
	if len(r.Pages) == 0 {
		return DomainVerdict{}, fmt.Errorf("no pages crawled for %s (%d attempts, %d failed)",
			domain, r.Stats.Attempts, r.Stats.Failures)
	}

	summary := textproc.Summarize(r.Text())
	p := dataset.Pharmacy{
		Domain:   domain,
		Terms:    s.pre.Terms(summary),
		Outbound: trust.OutboundEndpoints(r.External, domain),
		Pages:    len(r.Pages),
	}
	a := slot.v.Assess([]dataset.Pharmacy{p})[0]

	if a.Legitimate {
		s.met.verdicts.inc("legitimate")
	} else {
		s.met.verdicts.inc("illegitimate")
	}
	return DomainVerdict{
		Domain:      a.Domain,
		Legitimate:  a.Legitimate,
		Rank:        a.Rank,
		TextProb:    a.TextProb,
		TrustScore:  a.TrustScore,
		NetworkProb: a.NetworkProb,
		Pages:       len(r.Pages),
		Crawl:       r.Stats.Clone(),
	}, nil
}
