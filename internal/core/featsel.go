package core

import (
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/vectorize"
)

// FeatureSelectionCV is an extension beyond the paper's random term
// subsampling: instead of keeping k random terms of each summary, it
// keeps the k vocabulary features with the highest information gain
// (computed on each fold's training split only, so no test leakage)
// and trains the classifier on the projected TF-IDF vectors.
//
// The ablation bench compares it against random subsampling at equal k.
func FeatureSelectionCV(snap *dataset.Snapshot, clf ClassifierKind, k, folds int, seed int64) (eval.CVResult, error) {
	if folds == 0 {
		folds = 3
	}
	if _, err := NewClassifier(clf, seed); err != nil {
		return eval.CVResult{}, err
	}
	// Full-vocabulary representation (no random subsampling).
	full := TFIDFDataset(snap, TextConfig{Classifier: clf, Terms: 0, Seed: seed})
	labels := snap.Labels()

	labelDS := &ml.Dataset{Dim: 1, X: make([]ml.Vector, len(labels)), Y: labels}
	kf := eval.StratifiedKFold(labelDS, folds, seed)

	var res eval.CVResult
	for f := range kf {
		trainIdx, testIdx := kf.TrainTest(f)
		train := full.Subset(trainIdx)
		features := vectorize.TopFeaturesByGain(train, k)
		proj, _ := vectorize.Project(full, features)

		c, err := NewClassifier(clf, seed)
		if err != nil {
			return eval.CVResult{}, err
		}
		if err := c.Fit(proj.Subset(trainIdx)); err != nil {
			return eval.CVResult{}, err
		}
		fr := eval.FoldResult{TestIndex: testIdx}
		for _, i := range testIdx {
			p := c.Prob(proj.X[i])
			fr.Scores = append(fr.Scores, p)
			fr.Labels = append(fr.Labels, labels[i])
			fr.Confusion.Observe(labels[i], ml.PredictFromProb(p))
		}
		fr.AUC = eval.AUC(fr.Scores, fr.Labels)
		res.Folds = append(res.Folds, fr)
	}
	return res, nil
}
