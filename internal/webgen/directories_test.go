package webgen

import (
	"strings"
	"testing"

	"pharmaverify/internal/htmlx"
)

func TestGenerateDirectoriesKindsAndListings(t *testing.T) {
	w := Generate(smallConfig(30))
	dirs := w.GenerateDirectories(3, 2)
	if len(dirs) != 5 {
		t.Fatalf("dirs = %d", len(dirs))
	}
	portals, reviews := 0, 0
	for _, d := range dirs {
		if len(d.Listed) == 0 {
			t.Errorf("%s lists nothing", d.Domain)
		}
		switch d.Kind {
		case HealthPortal:
			portals++
			for _, p := range d.Listed {
				s := w.Site(p)
				if s == nil || !s.Legitimate {
					t.Errorf("portal %s lists non-legitimate %s", d.Domain, p)
				}
			}
		case ReviewDirectory:
			reviews++
			illegit := 0
			for _, p := range d.Listed {
				if s := w.Site(p); s != nil && !s.Legitimate {
					illegit++
				}
			}
			if illegit == 0 {
				t.Errorf("review site %s lists no illegitimate pharmacies", d.Domain)
			}
		}
	}
	if portals != 3 || reviews != 2 {
		t.Errorf("portals=%d reviews=%d", portals, reviews)
	}
}

func TestDirectoriesIncludeIsolatedLegit(t *testing.T) {
	w := Generate(smallConfig(31))
	var isolated []string
	for _, d := range w.Domains() {
		if s := w.Site(d); s.Legitimate && s.Isolated {
			isolated = append(isolated, d)
		}
	}
	if len(isolated) == 0 {
		t.Skip("no isolated sites at this seed")
	}
	dirs := w.GenerateDirectories(5, 0)
	listed := map[string]bool{}
	for _, d := range dirs {
		for _, p := range d.Listed {
			listed[p] = true
		}
	}
	found := 0
	for _, iso := range isolated {
		if listed[iso] {
			found++
		}
	}
	if found == 0 {
		t.Error("no isolated legitimate pharmacy listed by any portal")
	}
}

func TestDirectoryPagesLinkListedPharmacies(t *testing.T) {
	w := Generate(smallConfig(32))
	dirs := w.GenerateDirectories(1, 1)
	for _, d := range dirs {
		var all []string
		for _, path := range d.Paths {
			pg := htmlx.Parse(d.Pages[path])
			all = append(all, pg.Links...)
		}
		joined := strings.Join(all, " ")
		for _, p := range d.Listed {
			if !strings.Contains(joined, p) {
				t.Errorf("%s never links listed pharmacy %s", d.Domain, p)
			}
		}
	}
}

func TestAttachDirectoriesFetchable(t *testing.T) {
	w := Generate(smallConfig(33))
	before := len(w.Domains())
	dirs := w.GenerateDirectories(2, 1)
	domains := w.AttachDirectories(dirs)
	if len(domains) != 3 {
		t.Fatalf("attached %d", len(domains))
	}
	for _, d := range domains {
		if _, err := w.Fetch(d, "/"); err != nil {
			t.Errorf("Fetch(%s) = %v", d, err)
		}
	}
	// Pharmacy domain list must be unchanged: directories are not
	// labeled instances.
	if len(w.Domains()) != before {
		t.Error("AttachDirectories changed the pharmacy domain list")
	}
	if _, ok := w.Labels()[domains[0]]; ok {
		t.Error("directory received a class label")
	}
}

func TestDirectoriesDeterministic(t *testing.T) {
	a := Generate(smallConfig(34)).GenerateDirectories(2, 2)
	b := Generate(smallConfig(34)).GenerateDirectories(2, 2)
	for i := range a {
		if a[i].Domain != b[i].Domain || len(a[i].Listed) != len(b[i].Listed) {
			t.Fatal("directories not deterministic")
		}
		for j := range a[i].Listed {
			if a[i].Listed[j] != b[i].Listed[j] {
				t.Fatal("listings differ across runs")
			}
		}
	}
}
