package bayes

import (
	"math"
	"math/rand"
	"testing"

	"pharmaverify/internal/ml"
)

// wordCountDataset builds a tiny text-like corpus: class 1 documents use
// terms {0,1} heavily, class 0 documents use terms {2,3}.
func wordCountDataset(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{Dim: 4}
	for i := 0; i < n; i++ {
		counts := make([]float64, 4)
		y := i % 2
		base := 0
		if y == ml.Illegitimate {
			base = 2
		}
		for w := 0; w < 20; w++ {
			if rng.Float64() < 0.85 {
				counts[base+rng.Intn(2)]++
			} else {
				counts[rng.Intn(4)]++
			}
		}
		ds.Add(ml.NewVector(counts), y, "")
	}
	return ds
}

func TestMultinomialSeparatesClasses(t *testing.T) {
	ds := wordCountDataset(200, 1)
	clf := NewMultinomial()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range ds.X {
		if clf.Predict(x) == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.95 {
		t.Errorf("training accuracy = %v", acc)
	}
}

func TestMultinomialProbRange(t *testing.T) {
	ds := wordCountDataset(100, 2)
	clf := NewMultinomial()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		p := clf.Prob(x)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("Prob out of range: %v", p)
		}
	}
}

func TestMultinomialPredictConsistentWithProb(t *testing.T) {
	ds := wordCountDataset(100, 3)
	clf := NewMultinomial()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		if clf.Predict(x) != ml.PredictFromProb(clf.Prob(x)) {
			t.Fatal("Predict inconsistent with Prob")
		}
	}
}

func TestMultinomialErrors(t *testing.T) {
	if err := NewMultinomial().Fit(&ml.Dataset{Dim: 2}); err != ml.ErrEmptyDataset {
		t.Errorf("empty: %v", err)
	}
	one := &ml.Dataset{Dim: 2}
	one.Add(ml.NewVector([]float64{1, 0}), ml.Legitimate, "")
	if err := NewMultinomial().Fit(one); err != ml.ErrOneClass {
		t.Errorf("one class: %v", err)
	}
}

func TestMultinomialUnfittedNeutral(t *testing.T) {
	clf := NewMultinomial()
	if p := clf.Prob(ml.NewVector([]float64{1})); p != 0.5 {
		t.Errorf("unfitted Prob = %v", p)
	}
}

func TestMultinomialUnseenTermIgnored(t *testing.T) {
	ds := wordCountDataset(100, 4)
	clf := NewMultinomial()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// An instance with an index beyond the training dim must not panic.
	x := ml.Vector{Ind: []int32{0, 99}, Val: []float64{3, 5}}
	p := clf.Prob(x)
	if math.IsNaN(p) {
		t.Error("NaN prob on unseen term")
	}
}

func TestMultinomialSmoothingHandlesZeroCounts(t *testing.T) {
	// Term 3 never appears in class 1; a test doc containing it must
	// still get a finite probability.
	ds := &ml.Dataset{Dim: 4}
	ds.Add(ml.NewVector([]float64{5, 0, 0, 0}), ml.Legitimate, "")
	ds.Add(ml.NewVector([]float64{4, 1, 0, 0}), ml.Legitimate, "")
	ds.Add(ml.NewVector([]float64{0, 0, 5, 2}), ml.Illegitimate, "")
	ds.Add(ml.NewVector([]float64{0, 0, 4, 3}), ml.Illegitimate, "")
	clf := NewMultinomial()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	p := clf.Prob(ml.NewVector([]float64{2, 0, 0, 4}))
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("prob = %v", p)
	}
}

func TestMultinomialRefitResets(t *testing.T) {
	a := wordCountDataset(100, 5)
	clf := NewMultinomial()
	if err := clf.Fit(a); err != nil {
		t.Fatal(err)
	}
	// Re-fit with labels flipped; predictions must flip too.
	b := &ml.Dataset{Dim: a.Dim}
	for i, x := range a.X {
		b.Add(x, 1-a.Y[i], "")
	}
	if err := clf.Fit(b); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range b.X {
		if clf.Predict(x) == b.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(b.Len()); acc < 0.95 {
		t.Errorf("refit accuracy = %v", acc)
	}
}

func gaussianDataset(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{Dim: 3}
	for i := 0; i < n; i++ {
		y := i % 2
		mu := -1.0
		if y == ml.Legitimate {
			mu = 1.0
		}
		ds.Add(ml.NewVector([]float64{
			mu + rng.NormFloat64()*0.4,
			-mu + rng.NormFloat64()*0.4,
			rng.NormFloat64(), // noise feature
		}), y, "")
	}
	return ds
}

func TestGaussianSeparatesClasses(t *testing.T) {
	ds := gaussianDataset(400, 10)
	clf := NewGaussian()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range ds.X {
		if clf.Predict(x) == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.95 {
		t.Errorf("training accuracy = %v", acc)
	}
}

func TestGaussianConstantFeature(t *testing.T) {
	// A zero-variance feature must not produce NaN/Inf.
	ds := &ml.Dataset{Dim: 2}
	ds.Add(ml.NewVector([]float64{1, 0.5}), ml.Legitimate, "")
	ds.Add(ml.NewVector([]float64{1, 0.4}), ml.Legitimate, "")
	ds.Add(ml.NewVector([]float64{1, -0.5}), ml.Illegitimate, "")
	ds.Add(ml.NewVector([]float64{1, -0.6}), ml.Illegitimate, "")
	clf := NewGaussian()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	p := clf.Prob(ml.NewVector([]float64{1, 0.45}))
	if math.IsNaN(p) || p < 0.5 {
		t.Errorf("prob = %v, want >= 0.5", p)
	}
}

func TestGaussianPriorsMatter(t *testing.T) {
	// Both classes share the same empirical mean and variance, so at the
	// shared mean the likelihoods are equal and the larger prior (the
	// illegitimate class, 3:1) must win.
	ds := &ml.Dataset{Dim: 1}
	for rep := 0; rep < 3; rep++ {
		for _, v := range []float64{-1, 0, 1} {
			ds.Add(ml.NewVector([]float64{v}), ml.Illegitimate, "")
		}
	}
	for _, v := range []float64{-1, 0, 1} {
		ds.Add(ml.NewVector([]float64{v}), ml.Legitimate, "")
	}
	clf := NewGaussian()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if p := clf.Prob(ml.NewVector([]float64{0})); p >= 0.5 {
		t.Errorf("prior ignored: p = %v", p)
	}
}

func TestGaussianErrors(t *testing.T) {
	if err := NewGaussian().Fit(&ml.Dataset{Dim: 1}); err != ml.ErrEmptyDataset {
		t.Errorf("empty: %v", err)
	}
	one := &ml.Dataset{Dim: 1}
	one.Add(ml.NewVector([]float64{1}), ml.Illegitimate, "")
	if err := NewGaussian().Fit(one); err != ml.ErrOneClass {
		t.Errorf("one class: %v", err)
	}
}

func TestGaussianUnfittedNeutral(t *testing.T) {
	if p := NewGaussian().Prob(ml.NewVector([]float64{1})); p != 0.5 {
		t.Errorf("unfitted Prob = %v", p)
	}
}

func TestNames(t *testing.T) {
	if NewMultinomial().Name() != "NBM" || NewGaussian().Name() != "NB" {
		t.Error("paper abbreviations wrong")
	}
}

func BenchmarkMultinomialFit(b *testing.B) {
	ds := wordCountDataset(1000, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := NewMultinomial()
		if err := clf.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGaussianPredict(b *testing.B) {
	ds := gaussianDataset(1000, 42)
	clf := NewGaussian()
	if err := clf.Fit(ds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Predict(ds.X[i%ds.Len()])
	}
}
