package serve

import (
	"context"
	"errors"
	"strings"
	"testing"

	"pharmaverify/internal/dataset"
)

func TestParseRegistry(t *testing.T) {
	reg, err := ParseRegistry(strings.NewReader(`
# seed registry
Pharmacy-One.example  legitimate
rogue.example         illegitimate

shop.example          legit
scam.example          ILLEGIT
`))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 4 {
		t.Fatalf("parsed %d domains, want 4", reg.Len())
	}
	for domain, want := range map[string]bool{
		"pharmacy-one.example": true, // keys are lowercased
		"rogue.example":        false,
		"shop.example":         true,
		"scam.example":         false,
	} {
		legit, known, err := reg.Lookup(context.Background(), domain)
		if err != nil || !known || legit != want {
			t.Errorf("Lookup(%s) = (%v, %v, %v), want (%v, true, nil)", domain, legit, known, err, want)
		}
	}
	if _, known, _ := reg.Lookup(context.Background(), "unknown.example"); known {
		t.Error("unknown domain reported as known")
	}
}

func TestParseRegistryRejectsMalformedLines(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"three fields", "a.example legitimate extra"},
		{"one field", "a.example"},
		{"bad status", "a.example dubious"},
	} {
		if _, err := ParseRegistry(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ParseRegistry accepted %q", tc.name, tc.in)
		}
	}
}

func TestRegistrySourceSemantics(t *testing.T) {
	p := dataset.Pharmacy{Domain: "a.example"}

	// No registry configured: the source is a permanent abstainer.
	if _, err := (registrySource{}).Assess(context.Background(), nil, p); !errors.Is(err, errNoEvidence) {
		t.Errorf("nil lookup: err = %v, want errNoEvidence", err)
	}

	src := registrySource{lookup: NewStaticRegistry(map[string]bool{
		"a.example": true,
		"b.example": false,
	})}
	ev, err := src.Assess(context.Background(), nil, p)
	if err != nil || ev.Prob != 1 {
		t.Errorf("registered-legitimate: (%+v, %v), want Prob=1", ev, err)
	}
	if ev.HasTrustScore {
		t.Error("registry evidence claims a trust score")
	}
	ev, err = src.Assess(context.Background(), nil, dataset.Pharmacy{Domain: "b.example"})
	if err != nil || ev.Prob != 0 {
		t.Errorf("registered-illegitimate: (%+v, %v), want Prob=0", ev, err)
	}
	if _, err = src.Assess(context.Background(), nil, dataset.Pharmacy{Domain: "c.example"}); !errors.Is(err, errNoEvidence) {
		t.Errorf("unregistered domain: err = %v, want errNoEvidence", err)
	}
}

// failingLookup simulates a registry backend outage.
type failingLookup struct{}

func (failingLookup) Lookup(context.Context, string) (bool, bool, error) {
	return false, false, errors.New("registry unreachable")
}

func TestRegistrySourceSurfacesLookupErrors(t *testing.T) {
	src := registrySource{lookup: failingLookup{}}
	_, err := src.Assess(context.Background(), nil, dataset.Pharmacy{Domain: "a.example"})
	if err == nil || errors.Is(err, errNoEvidence) {
		t.Fatalf("lookup failure reported as %v, want a real error (fusion degrades, metrics count it)", err)
	}
}
