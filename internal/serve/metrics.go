package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// The serving metrics are rendered in the Prometheus text exposition
// format with no external dependencies: three tiny primitives (counter,
// labeled counter, histogram) plus a renderer. Everything is cheap
// enough to sit on the request hot path — counters are a single atomic
// add, histograms one short critical section.

// counter is a monotonically increasing uint64.
type counter struct{ n atomic.Uint64 }

func (c *counter) inc()          { c.n.Add(1) }
func (c *counter) add(d uint64)  { c.n.Add(d) }
func (c *counter) value() uint64 { return c.n.Load() }

// labelCounter is a counter family over the values of one label.
type labelCounter struct {
	mu   sync.Mutex
	vals map[string]uint64
}

func (l *labelCounter) inc(label string) {
	l.mu.Lock()
	if l.vals == nil {
		l.vals = make(map[string]uint64)
	}
	l.vals[label]++
	l.mu.Unlock()
}

// snapshot returns the label values in sorted order with their counts,
// so the rendered exposition is deterministic.
func (l *labelCounter) snapshot() ([]string, []uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.vals))
	for k := range l.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counts := make([]uint64, len(keys))
	for i, k := range keys {
		counts[i] = l.vals[k]
	}
	return keys, counts
}

// histogram is a fixed-bucket Prometheus histogram.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []uint64  // len(bounds)+1, last = +Inf bucket
	sum    float64
	n      uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// durationBuckets covers 1 ms … 60 s, the plausible range of one
// on-demand crawl-and-classify request.
var durationBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// metrics is the daemon's instrument set. Gauges (queue depth, cache
// size, hit ratio) are not stored here — they are read from the live
// components at render time, which keeps them impossible to desync.
type metrics struct {
	requests     *labelCounter // code: HTTP status of /v1/verify responses
	domains      *labelCounter // outcome: cache_hit | crawled | deduped | error
	verdicts     *labelCounter // verdict: legitimate | illegitimate
	queueReject  counter
	modelReloads counter
	// Per-stage latency of the on-demand pipeline: crawl → preprocess
	// (summarize, stop-word removal, link extraction) → featurize
	// (trust graph + sparse vectorization) → classify (model
	// probabilities). requestSecs covers the whole request.
	crawlSecs      *histogram
	preprocessSecs *histogram
	featurizeSecs  *histogram
	classifySecs   *histogram
	requestSecs    *histogram
}

func newMetrics() *metrics {
	return &metrics{
		requests:       &labelCounter{},
		domains:        &labelCounter{},
		verdicts:       &labelCounter{},
		crawlSecs:      newHistogram(durationBuckets),
		preprocessSecs: newHistogram(durationBuckets),
		featurizeSecs:  newHistogram(durationBuckets),
		classifySecs:   newHistogram(durationBuckets),
		requestSecs:    newHistogram(durationBuckets),
	}
}

// writeCounter renders one unlabeled counter (or gauge, by type).
func writeMetric(w io.Writer, name, help, typ string, value string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, value)
}

func writeLabelCounter(w io.Writer, name, help, label string, lc *labelCounter) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	keys, counts := lc.snapshot()
	for i, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, counts[i])
	}
}

func writeHistogram(w io.Writer, name, help string, h *histogram) {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(sum))
	fmt.Fprintf(w, "%s_count %d\n", name, n)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
