package crawler

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig parameterizes deterministic fault injection. Every
// decision is a pure function of (Seed, domain, path, attempt number),
// so a faulty crawl is exactly reproducible: two injectors with the
// same configuration fail the same attempts in the same way regardless
// of worker scheduling.
type FaultConfig struct {
	// Seed drives all fault decisions.
	Seed int64
	// TransientRate is the per-attempt probability of a retryable
	// failure (e.g. 0.3 for the 30%-flaky synthetic web).
	TransientRate float64
	// PermanentRate is the per-page probability that a (domain, path)
	// is permanently broken: every attempt fails with a Permanent error.
	PermanentRate float64
	// MaxTransientPerPage caps the consecutive injected transient
	// failures for one page (0 = uncapped). Setting it below the
	// crawler's retry budget guarantees eventual recovery.
	MaxTransientPerPage int
	// LatencySpike, when positive, adds that much latency to SpikeRate
	// of the attempts (deterministically chosen).
	LatencySpike time.Duration
	// SpikeRate is the per-attempt probability of a latency spike.
	SpikeRate float64
}

// FaultStats counts what the injector actually did.
type FaultStats struct {
	Attempts  int64
	Transient int64
	Permanent int64
	Spikes    int64
}

// FaultInjector wraps a Fetcher with seeded transient/permanent
// failures and latency spikes — the flaky-world harness used by tests
// and examples to exercise the crawler's retry, backoff and circuit-
// breaker machinery.
type FaultInjector struct {
	inner Fetcher
	cfg   FaultConfig

	mu       sync.Mutex
	attempts map[string]int // per domain|path attempt counter

	attemptsN, transientN, permanentN, spikesN atomic.Int64
}

// NewFaultInjector wraps inner with the given fault model.
func NewFaultInjector(inner Fetcher, cfg FaultConfig) *FaultInjector {
	return &FaultInjector{inner: inner, cfg: cfg, attempts: make(map[string]int)}
}

// Fetch implements Fetcher, injecting faults ahead of the wrapped
// fetcher.
func (fi *FaultInjector) Fetch(domain, path string) (string, error) {
	key := domain + "|" + path
	fi.mu.Lock()
	n := fi.attempts[key] // 0-based attempt index for this page
	fi.attempts[key] = n + 1
	fi.mu.Unlock()
	fi.attemptsN.Add(1)

	attempt := fmt.Sprint(n)
	if fi.cfg.LatencySpike > 0 && fi.cfg.SpikeRate > 0 &&
		hashDraw(fi.cfg.Seed, "spike", key, attempt) < fi.cfg.SpikeRate {
		fi.spikesN.Add(1)
		time.Sleep(fi.cfg.LatencySpike)
	}
	if fi.cfg.PermanentRate > 0 && hashDraw(fi.cfg.Seed, "permanent", key) < fi.cfg.PermanentRate {
		fi.permanentN.Add(1)
		return "", Permanent(fmt.Errorf("fault: %s%s is permanently broken", domain, path))
	}
	if fi.cfg.TransientRate > 0 &&
		(fi.cfg.MaxTransientPerPage == 0 || n < fi.cfg.MaxTransientPerPage) &&
		hashDraw(fi.cfg.Seed, "transient", key, attempt) < fi.cfg.TransientRate {
		fi.transientN.Add(1)
		return "", fmt.Errorf("fault: transient failure for %s%s (attempt %d)", domain, path, n+1)
	}
	return fi.inner.Fetch(domain, path)
}

// Stats returns a snapshot of the injected-fault counters.
func (fi *FaultInjector) Stats() FaultStats {
	return FaultStats{
		Attempts:  fi.attemptsN.Load(),
		Transient: fi.transientN.Load(),
		Permanent: fi.permanentN.Load(),
		Spikes:    fi.spikesN.Load(),
	}
}

var _ Fetcher = (*FaultInjector)(nil)
