package crawler

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"pharmaverify/internal/webgen"
)

// faultWorld builds a small synthetic web shared by the fault tests.
func faultWorld() *webgen.World {
	return webgen.Generate(webgen.Config{Seed: 7, NumLegit: 4, NumIllegit: 8, NetworkSize: 4})
}

func TestFaultInjectorDeterministic(t *testing.T) {
	w := faultWorld()
	cfg := FaultConfig{Seed: 99, TransientRate: 0.3}
	d := w.Domains()[0]
	probe := func() []bool {
		fi := NewFaultInjector(w, cfg)
		var outcomes []bool
		for attempt := 0; attempt < 4; attempt++ {
			for _, p := range w.Site(d).Paths {
				_, err := fi.Fetch(d, p)
				outcomes = append(outcomes, err == nil)
			}
		}
		return outcomes
	}
	if a, b := probe(), probe(); !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different fault patterns")
	}
	diff := NewFaultInjector(w, FaultConfig{Seed: 100, TransientRate: 0.3})
	same := true
	fi := NewFaultInjector(w, cfg)
	for _, p := range w.Site(d).Paths {
		_, e1 := fi.Fetch(d, p)
		_, e2 := diff.Fetch(d, p)
		if (e1 == nil) != (e2 == nil) {
			same = false
		}
	}
	if same {
		t.Log("different seeds happened to agree on this small sample (not fatal)")
	}
}

// TestCrawlRecoversFromTransientFaults is the acceptance test of the
// resilient crawl engine: with seeded 30% transient fetch failures and
// retries enabled, the crawl recovers ≥99% of what a clean crawl
// yields, stays within the retry budget, and keeps its counters
// reconciled.
func TestCrawlRecoversFromTransientFaults(t *testing.T) {
	w := faultWorld()
	const maxAttempts = 6
	cleanPages, faultyPages := 0, 0
	for _, d := range w.Domains() {
		clean := Crawl(w, d, Config{})
		flaky := NewFaultInjector(w, FaultConfig{Seed: 99, TransientRate: 0.3})
		faulty := Crawl(flaky, d, Config{
			Retry: RetryConfig{MaxAttempts: maxAttempts, BaseDelay: time.Microsecond, Seed: 99},
		})

		cleanSet := map[string]bool{}
		for _, p := range clean.Pages {
			cleanSet[p.Path] = true
		}
		for _, p := range faulty.Pages {
			if !cleanSet[p.Path] {
				t.Errorf("%s: faulty crawl found %s, absent from clean crawl", d, p.Path)
			}
		}
		cleanPages += len(clean.Pages)
		faultyPages += len(faulty.Pages)

		st := faulty.Stats
		if st.Attempts != st.Successes+st.Failures {
			t.Errorf("%s: attempts(%d) != successes(%d)+failures(%d)", d, st.Attempts, st.Successes, st.Failures)
		}
		if faulty.Fetched != st.Attempts || faulty.Failed != st.Failures {
			t.Errorf("%s: Result counters diverge from Stats: %+v vs fetched=%d failed=%d",
				d, st, faulty.Fetched, faulty.Failed)
		}
		if cap := DefaultMaxPages * maxAttempts; st.Attempts > cap {
			t.Errorf("%s: %d attempts exceed MaxPages×MaxAttempts = %d", d, st.Attempts, cap)
		}
		if st.Retries == 0 {
			t.Errorf("%s: no retries recorded under 30%% transient faults", d)
		}
	}
	if float64(faultyPages) < 0.99*float64(cleanPages) {
		t.Errorf("recovered %d/%d pages (<99%%) under 30%% transient faults", faultyPages, cleanPages)
	}
}

func TestCrawlRecoveryDeterministicUnderFaults(t *testing.T) {
	w := faultWorld()
	d := w.Domains()[1]
	run := func() Result {
		flaky := NewFaultInjector(w, FaultConfig{Seed: 5, TransientRate: 0.3})
		return Crawl(flaky, d, Config{Workers: 8, Retry: RetryConfig{MaxAttempts: 6}})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Pages, b.Pages) || !reflect.DeepEqual(a.External, b.External) {
		t.Error("faulty crawl output is not reproducible for a fixed fault seed")
	}
}

func TestCrawlPermanentFaultsDegradeGracefully(t *testing.T) {
	w := faultWorld()
	d := w.Domains()[2]
	flaky := NewFaultInjector(w, FaultConfig{Seed: 3, PermanentRate: 0.2})
	r := Crawl(flaky, d, Config{Retry: RetryConfig{MaxAttempts: 4}})
	st := flaky.Stats()
	if st.Permanent > 0 && r.Stats.Retries != 0 {
		t.Errorf("permanently broken pages were retried: %+v", r.Stats)
	}
	if len(r.Pages) == 0 {
		t.Error("crawl collected nothing despite most pages being healthy")
	}
	if r.Stats.PagesFailed == 0 && st.Permanent > 0 {
		t.Errorf("injected %d permanent faults but PagesFailed = 0", st.Permanent)
	}
}

func TestCrawlAllAggregateStats(t *testing.T) {
	w := faultWorld()
	flaky := NewFaultInjector(w, FaultConfig{Seed: 42, TransientRate: 0.3})
	results := CrawlAll(flaky, w.Domains(), Config{Retry: RetryConfig{MaxAttempts: 6}}, 4)
	total := AggregateStats(results)
	if total.Attempts != total.Successes+total.Failures {
		t.Errorf("aggregate stats do not reconcile: %+v", total)
	}
	inj := flaky.Stats()
	if int64(total.Attempts+total.RobotsAttempts) != inj.Attempts {
		t.Errorf("crawler counted %d attempts (pages+robots), injector saw %d",
			total.Attempts+total.RobotsAttempts, inj.Attempts)
	}
	if total.Retries == 0 || total.Bytes == 0 {
		t.Errorf("aggregate telemetry looks empty: %+v", total)
	}
}

// TestFaultInjectorLatencySpikesDeterministic: with SpikeRate 1 every
// attempt pays the injected latency, and two injectors with the same
// seed spike the same attempts.
func TestFaultInjectorLatencySpikesDeterministic(t *testing.T) {
	w := faultWorld()
	d := w.Domains()[0]
	fi := NewFaultInjector(w, FaultConfig{Seed: 5, LatencySpike: 5 * time.Millisecond, SpikeRate: 1})
	start := time.Now()
	if _, err := fi.Fetch(d, "/"); err != nil {
		t.Fatalf("spiked fetch failed: %v", err)
	}
	if took := time.Since(start); took < 5*time.Millisecond {
		t.Errorf("fetch took %v, spike of 5ms not applied", took)
	}
	if got := fi.Stats().Spikes; got != 1 {
		t.Errorf("Spikes = %d, want 1", got)
	}

	// Partial rate: the set of spiked attempts is a pure function of the
	// seed, independent of injector instance.
	spikedBy := func(seed int64) []bool {
		in := NewFaultInjector(w, FaultConfig{Seed: seed, LatencySpike: time.Microsecond, SpikeRate: 0.4})
		var pattern []bool
		for _, p := range w.Site(d).Paths {
			before := in.Stats().Spikes
			in.Fetch(d, p)
			pattern = append(pattern, in.Stats().Spikes > before)
		}
		return pattern
	}
	if a, b := spikedBy(77), spikedBy(77); !reflect.DeepEqual(a, b) {
		t.Error("same seed spiked different attempts")
	}
}

// TestFaultInjectorLatencySpikeCancellable: an expiring context cuts an
// injected latency spike short — the attempt fails with the context
// error instead of sleeping through the spike.
func TestFaultInjectorLatencySpikeCancellable(t *testing.T) {
	w := faultWorld()
	d := w.Domains()[0]
	fi := NewFaultInjector(w, FaultConfig{Seed: 5, LatencySpike: time.Minute, SpikeRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fi.FetchCtx(ctx, d, "/")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the context deadline", err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Errorf("cancelled spike still slept %v", took)
	}
}

// TestFaultInjectorUnboundedHang: with HangFor zero a hung FetchCtx
// blocks until its context is cancelled — the pathological peer that
// neither answers nor closes — and then returns promptly with the
// context error. A context-free Fetch never receives unbounded hangs
// (it would block forever).
func TestFaultInjectorUnboundedHang(t *testing.T) {
	w := faultWorld()
	d := w.Domains()[0]
	fi := NewFaultInjector(w, FaultConfig{Seed: 5, HangRate: 1})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := fi.FetchCtx(ctx, d, "/")
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hung fetch returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("hung fetch returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled hang never returned")
	}
	if got := fi.Stats().Hangs; got != 1 {
		t.Errorf("Hangs = %d, want 1", got)
	}

	// The context-free path skips unbounded hangs entirely.
	if _, err := fi.Fetch(d, "/"); err != nil {
		t.Errorf("context-free fetch under HangFor=0 failed: %v", err)
	}
	if got := fi.Stats().Hangs; got != 1 {
		t.Errorf("Hangs = %d after context-free fetch, want still 1", got)
	}
}

// TestFaultInjectorBoundedHang: with HangFor set, a hang resolves on
// its own after that long — as a transient failure on the context-free
// path, so the retry machinery treats a slow-dying connection exactly
// like any other flaky attempt.
func TestFaultInjectorBoundedHang(t *testing.T) {
	w := faultWorld()
	d := w.Domains()[0]
	fi := NewFaultInjector(w, FaultConfig{Seed: 5, HangRate: 1, HangFor: 5 * time.Millisecond})
	start := time.Now()
	_, err := fi.Fetch(d, "/")
	if err == nil {
		t.Fatal("bounded hang did not fail the attempt")
	}
	if IsPermanent(err) {
		t.Errorf("bounded hang classified permanent: %v", err)
	}
	if took := time.Since(start); took < 5*time.Millisecond {
		t.Errorf("hang resolved after %v, want >= HangFor", took)
	}
	if got := fi.Stats().Hangs; got != 1 {
		t.Errorf("Hangs = %d, want 1", got)
	}
}
