package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/ml/bayes"
	"pharmaverify/internal/ml/mlp"
	"pharmaverify/internal/ml/svm"
	"pharmaverify/internal/ml/tree"
	"pharmaverify/internal/vectorize"
)

// verifierState is the JSON wire form of a trained Verifier: the frozen
// vocabulary, the text and network models, and the training link
// structure needed to score new pharmacies.
type verifierState struct {
	Options       Options             `json:"options"`
	Vocabulary    json.RawMessage     `json:"vocabulary"`
	Weighting     int                 `json:"weighting"`
	TextKind      ClassifierKind      `json:"textKind"`
	Text          json.RawMessage     `json:"text"`
	Network       json.RawMessage     `json:"network"` // Gaussian NB
	TrainOutbound map[string][]string `json:"trainOutbound"`
	Seeds         map[string]float64  `json:"seeds"`
	// TrainCrawl is the training snapshot's crawl telemetry (optional;
	// absent in models saved by older versions).
	TrainCrawl *crawler.Stats `json:"trainCrawl,omitempty"`
	// TrainSketch is the training corpus's term/link distribution
	// snapshot, the drift-monitoring baseline (optional; absent in
	// models saved by older versions).
	TrainSketch *Sketch `json:"trainSketch,omitempty"`
}

// Save serializes the trained verifier as JSON, so a model trained once
// on reviewed ground truth can be shipped to reviewers and applied to
// fresh crawls without re-training.
func (v *Verifier) Save(w io.Writer) error {
	vocab, err := json.Marshal(v.vocab)
	if err != nil {
		return fmt.Errorf("core: marshal vocabulary: %w", err)
	}
	text, err := marshalClassifier(v.text)
	if err != nil {
		return fmt.Errorf("core: marshal text model: %w", err)
	}
	network, err := marshalClassifier(v.netClf)
	if err != nil {
		return fmt.Errorf("core: marshal network model: %w", err)
	}
	return json.NewEncoder(w).Encode(verifierState{
		Options:       v.opts,
		Vocabulary:    vocab,
		Weighting:     int(v.weightng),
		TextKind:      v.opts.Classifier,
		Text:          text,
		Network:       network,
		TrainOutbound: v.trainOutbound,
		Seeds:         v.seeds,
		TrainCrawl:    v.trainCrawl,
		TrainSketch:   v.sketch,
	})
}

// LoadVerifier restores a verifier persisted with Save.
//
// Model files travel between machines (trained once, shipped to
// reviewers), so corruption is an expected input, not a programming
// error: truncated or bit-flipped files yield a descriptive error
// naming the failing field and, for malformed JSON, the byte offset —
// never a panic and never a silently half-restored model.
func LoadVerifier(r io.Reader) (*Verifier, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: read verifier: %w", err)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("core: decode verifier: empty input (truncated model file?)")
	}
	var s verifierState
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, decodeError("verifier", err, len(data))
	}
	if s.TextKind == "" {
		return nil, fmt.Errorf(`core: decode verifier: missing field "textKind" (truncated or foreign file?)`)
	}
	if len(s.Vocabulary) == 0 {
		return nil, fmt.Errorf(`core: decode verifier: missing field "vocabulary"`)
	}
	if len(s.Text) == 0 {
		return nil, fmt.Errorf(`core: decode verifier: missing field "text" (the %s text model)`, s.TextKind)
	}
	if len(s.Network) == 0 {
		return nil, fmt.Errorf(`core: decode verifier: missing field "network" (the trust-score model)`)
	}
	vocab := &vectorize.Vocabulary{}
	if err := json.Unmarshal(s.Vocabulary, vocab); err != nil {
		return nil, decodeError(`field "vocabulary"`, err, len(data))
	}
	text, err := unmarshalClassifier(s.TextKind, s.Text)
	if err != nil {
		return nil, fmt.Errorf(`core: restore field "text" (%s model): %w`, s.TextKind, err)
	}
	network, err := unmarshalClassifier(NB, s.Network)
	if err != nil {
		return nil, fmt.Errorf(`core: restore field "network": %w`, err)
	}
	sum := sha256.Sum256(data)
	return &Verifier{
		opts:          s.Options,
		vocab:         vocab,
		weightng:      vectorize.Weighting(s.Weighting),
		text:          text,
		netClf:        network,
		trainOutbound: s.TrainOutbound,
		seeds:         s.Seeds,
		trainCrawl:    s.TrainCrawl,
		sketch:        s.TrainSketch,
		// The model's identity is the digest of its persisted bytes —
		// exactly what a fresh Save of this verifier would write again
		// (save→load→save is byte-idempotent, see persist tests).
		fp: hex.EncodeToString(sum[:]),
	}, nil
}

// fingerprint digests a verifier's persisted form: the SHA-256 of the
// exact bytes Save writes. Train uses it to stamp a new model's
// identity without touching disk.
func fingerprint(v *Verifier) (string, error) {
	h := sha256.New()
	if err := v.Save(h); err != nil {
		return "", fmt.Errorf("core: fingerprint model: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// decodeError turns encoding/json's errors into operator-facing ones
// that name what failed and where (byte offset), and calls out the
// classic truncation signature explicitly.
func decodeError(what string, err error, size int) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		if int(syn.Offset) >= size {
			return fmt.Errorf("core: decode %s: %v at byte %d of %d — the file appears truncated", what, err, syn.Offset, size)
		}
		return fmt.Errorf("core: decode %s: %v at byte %d of %d", what, err, syn.Offset, size)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		field := typ.Field
		if field == "" {
			field = "(top level)"
		}
		return fmt.Errorf("core: decode %s: field %q holds JSON %s, want %s (byte %d)", what, field, typ.Value, typ.Type, typ.Offset)
	}
	return fmt.Errorf("core: decode %s: %w", what, err)
}

func marshalClassifier(c ml.Classifier) (json.RawMessage, error) {
	m, ok := c.(json.Marshaler)
	if !ok {
		return nil, fmt.Errorf("classifier %T does not support serialization", c)
	}
	return m.MarshalJSON()
}

func unmarshalClassifier(kind ClassifierKind, data json.RawMessage) (ml.Classifier, error) {
	var c ml.Classifier
	switch kind {
	case NBM:
		c = bayes.NewMultinomial()
	case NB:
		c = bayes.NewGaussian()
	case SVM:
		c = svm.NewLinear()
	case J48:
		c = tree.NewC45()
	case MLP:
		c = mlp.New()
	default:
		return nil, fmt.Errorf("unknown classifier kind %q", kind)
	}
	u, ok := c.(json.Unmarshaler)
	if !ok {
		return nil, fmt.Errorf("classifier %T does not support deserialization", c)
	}
	if err := u.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return c, nil
}
