package ngram

import (
	"math/rand"
	"strings"
	"testing"
)

// randomText builds a pharmacy-ish random document.
func randomText(rng *rand.Rand, words int) string {
	pool := []string{"viagra", "health", "pharmacy", "cheap", "order",
		"prescription", "pills", "online", "store", "discount", "fda"}
	var b strings.Builder
	for i := 0; i < words; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(pool[rng.Intn(len(pool))])
	}
	return b.String()
}

// Property: all four similarities stay within [0,1] for arbitrary
// document pairs, and self-similarity is exactly 1 for non-empty graphs.
func TestSimilaritiesBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		a := FromDocument(randomText(rng, 2+rng.Intn(60)))
		b := FromDocument(randomText(rng, 2+rng.Intn(60)))
		for name, v := range map[string]float64{
			"CS":  ContainmentSimilarity(a, b),
			"SS":  SizeSimilarity(a, b),
			"VS":  ValueSimilarity(a, b),
			"NVS": NormalizedValueSimilarity(a, b),
		} {
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("%s = %v out of range", name, v)
			}
		}
	}
}

// Property: merging k copies of the same document leaves the weights of
// that document unchanged (running average of identical values).
func TestMergeIdempotentOnIdenticalDocsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		doc := FromDocument(randomText(rng, 5+rng.Intn(40)))
		if doc.Size() == 0 {
			continue
		}
		class := New()
		k := 2 + rng.Intn(5)
		for i := 0; i < k; i++ {
			class.Merge(doc)
		}
		if class.Size() != doc.Size() {
			t.Fatalf("size changed: %d vs %d", class.Size(), doc.Size())
		}
		for _, e := range doc.Edges(10) {
			got, want := class.Weight(e), doc.Weight(e)
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("weight drifted: %v vs %v", got, want)
			}
		}
	}
}

// Property: the class graph built from a set of documents contains
// every edge of every document (no decay can reach zero in finitely
// many merges).
func TestMergeAllCoversAllEdgesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		var docs []*Graph
		for i := 0; i < 2+rng.Intn(6); i++ {
			docs = append(docs, FromDocument(randomText(rng, 5+rng.Intn(30))))
		}
		class := MergeAll(docs)
		for di, d := range docs {
			for _, e := range d.Edges(0) {
				if !class.Contains(e) {
					t.Fatalf("doc %d edge %v missing from class graph", di, e)
				}
			}
		}
	}
}

// Property: a document is more similar (VS) to a class graph built
// from documents drawn from the same vocabulary than to one from a
// disjoint vocabulary.
func TestClassDiscriminationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	greek := func(words int) string {
		pool := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
		var b strings.Builder
		for i := 0; i < words; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(pool[rng.Intn(len(pool))])
		}
		return b.String()
	}
	for trial := 0; trial < 20; trial++ {
		var same, other []*Graph
		for i := 0; i < 5; i++ {
			same = append(same, FromDocument(randomText(rng, 40)))
			other = append(other, FromDocument(greek(40)))
		}
		sameClass := MergeAll(same)
		otherClass := MergeAll(other)
		probe := FromDocument(randomText(rng, 40))
		if ValueSimilarity(probe, sameClass) <= ValueSimilarity(probe, otherClass) {
			t.Fatalf("probe closer to disjoint-vocabulary class")
		}
	}
}

// Property: total edge weight of FromText equals the number of
// (position, predecessor) pairs: Σ_{i=1..n-1} min(i, win).
func TestFromTextTotalWeightProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		win := 1 + rng.Intn(6)
		text := randomText(rng, 1+rng.Intn(20))
		g := FromText(text, n, win)
		runes := []rune(text)
		grams := len(runes) - n + 1
		if grams < 1 {
			if g.Size() != 0 {
				t.Fatal("short text must give empty graph")
			}
			continue
		}
		want := 0.0
		for i := 1; i < grams; i++ {
			w := i
			if w > win {
				w = win
			}
			want += float64(w)
		}
		var got float64
		for _, e := range g.Edges(0) {
			got += g.Weight(e)
		}
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("total weight %v, want %v (n=%d win=%d)", got, want, n, win)
		}
	}
}
