package crawler

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"pharmaverify/internal/webgen"
)

// mapFetcher serves pages from a map keyed by domain|path.
type mapFetcher map[string]string

func (m mapFetcher) Fetch(domain, path string) (string, error) {
	if html, ok := m[domain+"|"+path]; ok {
		return html, nil
	}
	return "", errors.New("404")
}

func TestCrawlFollowsInternalLinks(t *testing.T) {
	f := mapFetcher{
		"x.com|/":  `<a href="/a">a</a><a href="/b">b</a><p>root</p>`,
		"x.com|/a": `<a href="/c">c</a><p>page a</p>`,
		"x.com|/b": `<p>page b</p>`,
		"x.com|/c": `<p>page c</p><a href="http://other.com/x">ext</a>`,
	}
	r := Crawl(f, "x.com", Config{})
	if len(r.Pages) != 4 {
		t.Fatalf("pages = %d, want 4", len(r.Pages))
	}
	if r.Pages[0].Path != "/" { // sorted: "/", "/a", "/b", "/c"
		t.Errorf("pages not sorted: %v", r.Pages[0].Path)
	}
	if !reflect.DeepEqual(r.External, []string{"http://other.com/x"}) {
		t.Errorf("External = %v", r.External)
	}
	if r.Fetched != 4 || r.Failed != 0 {
		t.Errorf("counters: %d fetched, %d failed", r.Fetched, r.Failed)
	}
}

func TestCrawlMaxPages(t *testing.T) {
	// A chain of 50 pages with a cap of 10.
	f := mapFetcher{}
	for i := 0; i < 50; i++ {
		f[fmt.Sprintf("x.com|/p%d", i)] = fmt.Sprintf(`<a href="/p%d">next</a><p>n</p>`, i+1)
	}
	f["x.com|/"] = `<a href="/p0">start</a>`
	r := Crawl(f, "x.com", Config{MaxPages: 10})
	if len(r.Pages) > 10 {
		t.Errorf("crawled %d pages, cap 10", len(r.Pages))
	}
}

func TestCrawlHandlesFetchErrors(t *testing.T) {
	f := mapFetcher{
		"x.com|/": `<a href="/missing">gone</a><p>root</p>`,
	}
	r := Crawl(f, "x.com", Config{})
	if r.Failed != 1 || r.Fetched != 1 {
		t.Errorf("fetched=%d failed=%d", r.Fetched, r.Failed)
	}
}

func TestCrawlDeduplicatesPaths(t *testing.T) {
	calls := int32(0)
	f := FetcherFunc(func(domain, path string) (string, error) {
		if path == "/robots.txt" {
			return "", errors.New("404")
		}
		atomic.AddInt32(&calls, 1)
		return `<a href="/">home</a><a href="/">again</a><p>x</p>`, nil
	})
	r := Crawl(f, "x.com", Config{})
	if len(r.Pages) != 1 {
		t.Errorf("pages = %d", len(r.Pages))
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Errorf("fetch called %d times for one unique path", calls)
	}
}

func TestCrawlAbsoluteInternalAndWWW(t *testing.T) {
	f := mapFetcher{
		"x.com|/":  `<a href="http://x.com/a">a</a><a href="http://www.x.com/b">b</a><p>.</p>`,
		"x.com|/a": `<p>a</p>`,
		"x.com|/b": `<p>b</p>`,
	}
	r := Crawl(f, "x.com", Config{})
	if len(r.Pages) != 3 {
		t.Errorf("pages = %d, want 3 (absolute internal links followed)", len(r.Pages))
	}
	if len(r.External) != 0 {
		t.Errorf("own-domain absolute links recorded as external: %v", r.External)
	}
}

func TestCrawlFragmentsAndSchemesIgnored(t *testing.T) {
	f := mapFetcher{
		"x.com|/":  `<a href="#top">top</a><a href="mailto:[email protected]">m</a><a href="/a#frag">a</a><p>.</p>`,
		"x.com|/a": `<p>a</p>`,
	}
	r := Crawl(f, "x.com", Config{})
	if len(r.Pages) != 2 {
		t.Errorf("pages = %d, want 2", len(r.Pages))
	}
}

func TestInternalPath(t *testing.T) {
	cases := []struct {
		link, domain, want string
		ok                 bool
	}{
		{"/about", "x.com", "/about", true},
		{"about", "x.com", "/about", true},
		{"http://x.com/a", "x.com", "/a", true},
		{"http://www.x.com/a", "x.com", "/a", true},
		{"http://x.com", "x.com", "/", true},
		{"http://x.com:8080/a", "x.com", "/a", true},
		{"http://other.com/a", "x.com", "", false},
		{"//x.com/a", "x.com", "/a", true},
		{"#frag", "x.com", "", false},
		{"", "x.com", "", false},
	}
	for _, c := range cases {
		got, ok := internalPath(c.link, c.domain)
		if got != c.want || ok != c.ok {
			t.Errorf("internalPath(%q,%q) = %q,%v want %q,%v", c.link, c.domain, got, ok, c.want, c.ok)
		}
	}
}

func TestCrawlSyntheticWorld(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 1, NumLegit: 3, NumIllegit: 6, NetworkSize: 3})
	d := w.Domains()[0]
	r := Crawl(w, d, Config{})
	if len(r.Pages) != len(w.Site(d).Paths) {
		t.Errorf("crawled %d pages, site has %d", len(r.Pages), len(w.Site(d).Paths))
	}
	if len(r.External) == 0 {
		t.Error("no external links found on synthetic site")
	}
	for _, p := range r.Pages {
		if p.Text == "" {
			t.Errorf("page %s has no text", p.Path)
		}
	}
}

func TestCrawlAll(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 2, NumLegit: 4, NumIllegit: 8, NetworkSize: 4})
	domains := w.Domains()
	results := CrawlAll(w, domains, Config{}, 4)
	if len(results) != len(domains) {
		t.Fatalf("results = %d, want %d", len(results), len(domains))
	}
	for _, d := range domains {
		if results[d].Fetched == 0 {
			t.Errorf("domain %s: nothing fetched", d)
		}
	}
}

func TestCrawlDeterministicAcrossWorkerCounts(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 3, NumLegit: 2, NumIllegit: 4, NetworkSize: 2})
	d := w.Domains()[0]
	a := Crawl(w, d, Config{Workers: 1})
	b := Crawl(w, d, Config{Workers: 8})
	if !reflect.DeepEqual(a.Pages, b.Pages) || !reflect.DeepEqual(a.External, b.External) {
		t.Error("crawl output depends on worker count")
	}
}

func TestHTTPFetcher(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			fmt.Fprint(w, `<title>srv</title><a href="/a">a</a>`)
		case "/a":
			fmt.Fprint(w, `<p>page a</p>`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	domain := strings.TrimPrefix(srv.URL, "http://")

	h := &HTTPFetcher{}
	html, err := h.Fetch(domain, "/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "srv") {
		t.Errorf("body = %q", html)
	}
	if _, err := h.Fetch(domain, "/missing"); err == nil {
		t.Error("404 must be an error")
	}

	r := Crawl(h, domain, Config{MaxPages: 5})
	if len(r.Pages) != 2 {
		t.Errorf("HTTP crawl pages = %d, want 2", len(r.Pages))
	}
}

func BenchmarkCrawlSite(b *testing.B) {
	w := webgen.Generate(webgen.Config{Seed: 42, NumLegit: 1, NumIllegit: 1, NetworkSize: 1, MinPages: 18, MaxPages: 18})
	d := w.Domains()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Crawl(w, d, Config{})
	}
}
