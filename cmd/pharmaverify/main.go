// Command pharmaverify is the command-line interface to the
// internet-pharmacy verification system.
//
// Subcommands:
//
//	generate   generate a synthetic pharmacy web and save its crawled,
//	           labeled snapshot as JSON
//	classify   train on a labeled snapshot and classify another
//	rank       train on a labeled snapshot and print the legitimacy
//	           ranking of another (Problem 2, OPR)
//	stats      print dataset statistics for a snapshot
//
// Example session:
//
//	pharmaverify generate -seed 1 -out dataset1.json
//	pharmaverify generate -seed 1 -snapshot 2 -out dataset2.json
//	pharmaverify classify -train dataset1.json -test dataset2.json
//	pharmaverify rank -train dataset1.json -test dataset2.json -top 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"pharmaverify/internal/arff"
	"pharmaverify/internal/core"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/parallel"
	"pharmaverify/internal/vectorize"
	"pharmaverify/internal/webgen"
)

func main() {
	args := os.Args[1:]
	// Global -workers flag (before the subcommand): bounds the
	// evaluation worker pool. Results do not depend on the value.
	if len(args) >= 2 && args[0] == "-workers" {
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "pharmaverify: -workers wants a positive integer, got %q\n", args[1])
			os.Exit(2)
		}
		parallel.SetDefault(n)
		args = args[2:]
	}
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "generate":
		err = cmdGenerate(args[1:])
	case "classify":
		err = cmdClassify(args[1:])
	case "rank":
		err = cmdRank(args[1:])
	case "stats":
		err = cmdStats(args[1:])
	case "export":
		err = cmdExport(args[1:])
	case "train":
		err = cmdTrain(args[1:])
	case "inspect":
		err = cmdInspect(args[1:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pharmaverify: unknown subcommand %q\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pharmaverify:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pharmaverify [-workers N] <generate|classify|rank|stats> [flags]
  generate  -seed N -snapshot 1|2 -legit N -illegit N -out FILE
            [-retries N] [-failure-budget N] [-flaky RATE]   (resilient-crawl knobs)
  train     -in FILE -out MODEL.json [-classifier SVM] [-terms N]
  classify  -train FILE | -model MODEL.json, -test FILE [-classifier SVM] [-terms N]
  rank      -train FILE -test FILE [-top N]
  stats     -in FILE
  inspect   -model MODEL.json [-top N]   (most indicative terms per class)
  export    -in FILE -out FILE.arff [-terms N] [-counts]   (Weka interop)`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "generation seed")
	snapshot := fs.Int("snapshot", 1, "crawl epoch: 1 (Dataset 1) or 2 (six months later)")
	legit := fs.Int("legit", 167, "number of legitimate pharmacies")
	illegit := fs.Int("illegit", 1292, "number of illegitimate pharmacies")
	offset := fs.Int("offset", 0, "illegitimate domain offset (use Dataset 1's -illegit for disjoint Dataset 2)")
	retries := fs.Int("retries", 1, "fetch attempts per page (retry budget)")
	budget := fs.Int("failure-budget", 0, "per-domain circuit breaker: consecutive lost pages before giving up (0 = off)")
	flaky := fs.Float64("flaky", 0, "inject seeded transient fetch failures at this rate (exercise the resilient crawl path)")
	out := fs.String("out", "", "output snapshot file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := webgen.Config{
		Seed: *seed, Snapshot: *snapshot,
		NumLegit: *legit, NumIllegit: *illegit,
		IllegitOffset: *offset,
	}
	if *snapshot == 2 && *offset == 0 {
		cfg.IllegitOffset = *illegit
	}
	world := webgen.Generate(cfg)
	var fetcher crawler.Fetcher = world
	if *flaky > 0 {
		fetcher = crawler.NewFaultInjector(world, crawler.FaultConfig{Seed: *seed, TransientRate: *flaky})
	}
	crawlCfg := crawler.Config{
		Retry:         crawler.RetryConfig{MaxAttempts: *retries, Seed: *seed},
		FailureBudget: *budget,
	}
	name := fmt.Sprintf("snapshot-%d-seed-%d", *snapshot, *seed)
	snap, err := dataset.Build(name, fetcher, world.Domains(), world.Labels(), crawlCfg, 16)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := snap.Save(w); err != nil {
		return err
	}
	l, i := snap.Counts()
	fmt.Fprintf(os.Stderr, "wrote %s: %d pharmacies (%d legitimate, %d illegitimate)\n",
		name, snap.Len(), l, i)
	printCrawlStats(snap.CrawlStats)
	return nil
}

// printCrawlStats reports crawl telemetry on stderr.
func printCrawlStats(st *crawler.Stats) {
	if st == nil {
		return
	}
	fmt.Fprintf(os.Stderr,
		"crawl: %d attempts (%d retries), %d ok / %d failed, %d pages lost, %d breaker trips, %.1f KiB\n",
		st.Attempts, st.Retries, st.Successes, st.Failures, st.PagesFailed, st.BreakerTrips,
		float64(st.Bytes)/1024)
	if st.RobotsUnreachable {
		fmt.Fprintln(os.Stderr, "crawl: warning: robots.txt unreachable for at least one domain (proceeded as allow-all)")
	}
}

func loadSnapshot(path string) (*dataset.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.Load(f)
}

// cmdTrain trains a verifier on a labeled snapshot and persists it.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	in := fs.String("in", "", "labeled training snapshot (JSON)")
	out := fs.String("out", "", "output model file (default stdout)")
	clf := fs.String("classifier", "SVM", "text classifier: NBM, NB, SVM, J48, MLP")
	terms := fs.Int("terms", 0, "term subsample size (0 = all)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("train: -in is required")
	}
	snap, err := loadSnapshot(*in)
	if err != nil {
		return err
	}
	v, err := core.Train(snap, core.Options{
		Classifier: core.ClassifierKind(*clf), Terms: *terms, Seed: *seed,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := v.Save(w); err != nil {
		return err
	}
	l, i := snap.Counts()
	fmt.Fprintf(os.Stderr, "trained %s verifier on %d pharmacies (%d legit / %d illegit)\n",
		*clf, snap.Len(), l, i)
	printCrawlStats(v.TrainingCrawlStats())
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	trainPath := fs.String("train", "", "labeled training snapshot (JSON)")
	modelPath := fs.String("model", "", "pre-trained model file (alternative to -train)")
	testPath := fs.String("test", "", "snapshot to classify (JSON)")
	clf := fs.String("classifier", "SVM", "text classifier: NBM, NB, SVM, J48, MLP")
	terms := fs.Int("terms", 0, "term subsample size (0 = all)")
	seed := fs.Int64("seed", 1, "random seed")
	verbose := fs.Bool("v", false, "print every verdict")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*trainPath == "" && *modelPath == "") || *testPath == "" {
		return fmt.Errorf("classify: -test and one of -train/-model are required")
	}

	test, err := loadSnapshot(*testPath)
	if err != nil {
		return err
	}
	var v *core.Verifier
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		v, err = core.LoadVerifier(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		train, err := loadSnapshot(*trainPath)
		if err != nil {
			return err
		}
		v, err = core.Train(train, core.Options{
			Classifier: core.ClassifierKind(*clf), Terms: *terms, Seed: *seed,
		})
		if err != nil {
			return err
		}
	}
	as := v.Assess(test.Pharmacies)

	var conf eval.Confusion
	for i, a := range as {
		pred := ml.Illegitimate
		if a.Legitimate {
			pred = ml.Legitimate
		}
		conf.Observe(test.Pharmacies[i].Label, pred)
		if *verbose {
			fmt.Printf("%-40s verdict=%-12s textProb=%.3f trust=%.3f\n",
				a.Domain, ml.ClassName(pred), a.TextProb, a.TrustScore)
		}
	}
	fmt.Printf("classified %d pharmacies with %s\n", len(as), *clf)
	fmt.Printf("accuracy=%.3f legitPrecision=%.3f legitRecall=%.3f illegitPrecision=%.3f illegitRecall=%.3f\n",
		conf.Accuracy(), conf.PrecisionLegitimate(), conf.RecallLegitimate(),
		conf.PrecisionIllegitimate(), conf.RecallIllegitimate())
	return nil
}

func cmdRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	trainPath := fs.String("train", "", "labeled training snapshot (JSON)")
	testPath := fs.String("test", "", "snapshot to rank (JSON)")
	top := fs.Int("top", 10, "entries to print from each end of the ranking")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trainPath == "" || *testPath == "" {
		return fmt.Errorf("rank: -train and -test are required")
	}

	train, err := loadSnapshot(*trainPath)
	if err != nil {
		return err
	}
	test, err := loadSnapshot(*testPath)
	if err != nil {
		return err
	}
	v, err := core.Train(train, core.Options{Classifier: core.NBM, Seed: *seed})
	if err != nil {
		return err
	}
	ranked := core.RankAssessments(v.Assess(test.Pharmacies))

	scores := make([]float64, len(ranked))
	labels := make([]int, len(ranked))
	byDomain := map[string]int{}
	for _, p := range test.Pharmacies {
		byDomain[p.Domain] = p.Label
	}
	for i, a := range ranked {
		scores[i] = a.Rank
		labels[i] = byDomain[a.Domain]
	}
	fmt.Printf("ranked %d pharmacies; pairwise orderedness vs labels: %.4f\n",
		len(ranked), eval.PairwiseOrderedness(scores, labels))

	fmt.Println("\nmost legitimate:")
	for i := 0; i < *top && i < len(ranked); i++ {
		a := ranked[i]
		fmt.Printf("%3d. %-40s rank=%.4f (%s)\n", i+1, a.Domain, a.Rank, ml.ClassName(byDomain[a.Domain]))
	}
	fmt.Println("\nleast legitimate:")
	for i := len(ranked) - *top; i < len(ranked); i++ {
		if i < 0 {
			continue
		}
		a := ranked[i]
		fmt.Printf("%3d. %-40s rank=%.4f (%s)\n", i+1, a.Domain, a.Rank, ml.ClassName(byDomain[a.Domain]))
	}
	return nil
}

// cmdInspect prints the terms a trained model finds most indicative of
// each class — the reviewer-facing explanation of what the verifier
// learned (the paper's §6.3.1 term analysis, automated).
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained model file (from `pharmaverify train`)")
	top := fs.Int("top", 15, "terms per class")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("inspect: -model is required")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	v, err := core.LoadVerifier(f)
	if err != nil {
		return err
	}
	legit, illegit := v.IndicativeTerms(*top)
	if legit == nil {
		return fmt.Errorf("inspect: the model's text classifier has no linear term weights (use NBM or SVM)")
	}
	fmt.Println("terms indicative of LEGITIMATE pharmacies:")
	for _, w := range legit {
		fmt.Println("  " + w)
	}
	fmt.Println("terms indicative of ILLEGITIMATE pharmacies:")
	for _, w := range illegit {
		fmt.Println("  " + w)
	}
	return nil
}

// cmdExport writes a snapshot's TF-IDF (or raw-count) feature matrix as
// a sparse Weka ARFF file, so the experiments can be replayed inside
// Weka — the toolchain the paper used.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file (JSON)")
	out := fs.String("out", "", "output ARFF file (default stdout)")
	terms := fs.Int("terms", 0, "term subsample size (0 = all)")
	counts := fs.Bool("counts", false, "raw term counts instead of TF-IDF")
	seed := fs.Int64("seed", 1, "subsampling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("export: -in is required")
	}
	snap, err := loadSnapshot(*in)
	if err != nil {
		return err
	}

	docs := snap.SubsampledTerms(*terms, *seed)
	corpus := vectorize.NewCorpus(docs, snap.Labels(), snap.Domains())
	weighting := vectorize.WeightTFIDF
	if *counts {
		weighting = vectorize.WeightCounts
	}
	ds := corpus.Dataset(weighting)
	names := make([]string, corpus.Vocab.Size())
	for i := range names {
		names[i] = corpus.Vocab.Term(i)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := arff.Write(w, snap.Name, ds, names); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exported %d instances × %d attributes\n", ds.Len(), ds.Dim)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file (JSON)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("stats: -in is required")
	}
	snap, err := loadSnapshot(*in)
	if err != nil {
		return err
	}
	l, i := snap.Counts()
	var terms, pages, endpoints int
	for _, p := range snap.Pharmacies {
		terms += len(p.Terms)
		pages += p.Pages
		endpoints += len(p.Outbound)
	}
	fmt.Printf("snapshot %q: %d pharmacies (%d legitimate / %d illegitimate)\n", snap.Name, snap.Len(), l, i)
	if n := snap.Len(); n > 0 {
		fmt.Printf("avg pages/site: %.1f  avg terms/summary: %.0f  avg outbound endpoints/site: %.1f\n",
			float64(pages)/float64(n), float64(terms)/float64(n), float64(endpoints)/float64(n))
	}
	if st := snap.CrawlStats; st != nil {
		fmt.Printf("crawl telemetry: %d attempts (%d retries), %d ok / %d failed, %d pages lost, %d breaker trips, %.1f KiB fetched\n",
			st.Attempts, st.Retries, st.Successes, st.Failures, st.PagesFailed, st.BreakerTrips,
			float64(st.Bytes)/1024)
	}
	return nil
}
