package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"pharmaverify/internal/core"
	"pharmaverify/internal/featcache"
	"pharmaverify/internal/parallel"
)

// benchEpoch anchors the monotonic clock reads.
var benchEpoch = time.Now()

func monotonicNS() int64 { return int64(time.Since(benchEpoch)) }

// BenchLeg is one measured run of a runner at a fixed worker count.
type BenchLeg struct {
	Workers int   `json:"workers"`
	NS      int64 `json:"ns"`
	// Allocs / Bytes are runtime.MemStats Mallocs / TotalAlloc deltas.
	// Process-wide, so background allocation adds noise; the harness
	// runs legs back-to-back in one goroutine to keep them comparable.
	Allocs uint64 `json:"allocs"`
	Bytes  uint64 `json:"bytes"`
	// Speedup is the 1-worker leg's NS divided by this leg's NS.
	Speedup float64 `json:"speedup"`
	// Efficiency is Speedup divided by Workers: 1.0 is perfect linear
	// scaling, values near 1/Workers mean the extra cores bought
	// nothing. Only meaningful when GOMAXPROCS allows the workers to
	// actually run in parallel.
	Efficiency float64 `json:"efficiency"`
	// Identical is true when this leg's rendered table bytes equal the
	// 1-worker leg's exactly.
	Identical bool `json:"identical"`
	// Grain records the partitioning the grain autotuner chose at each
	// named call site during this leg (e.g. "ensemble-cv": "hybrid
	// fold×3·doc×2·g16"), so the efficiency gate's failures can be
	// traced to a bad fold-vs-document split.
	Grain map[string]string `json:"grain,omitempty"`
	// Cache holds the shared feature cache's per-scope hit/miss
	// counters accumulated over this leg (the cache is purged before
	// each leg), so training-plane reuse is visible next to the timing
	// it explains.
	Cache map[string]featcache.CacheStats `json:"cache,omitempty"`
}

// heavyThresholdNS classifies entries for the parallel-efficiency gate:
// entries whose sequential leg runs at least this long (1 s) are
// dominated by the fan-out work the gate is meant to watch; sub-second
// entries are dominated by fixed setup cost and scale poorly no matter
// how healthy the worker pool is.
const heavyThresholdNS = int64(time.Second)

// BenchEntry records the worker-scaling measurement of one artifact
// runner: one leg per worker count in the report's matrix.
type BenchEntry struct {
	ID   string `json:"id"`
	Desc string `json:"desc"`
	// Legs holds one measurement per worker count, ascending; Legs[0]
	// is always the 1-worker sequential baseline.
	Legs []BenchLeg `json:"legs"`
	// Heavy marks entries whose sequential leg reached heavyThresholdNS;
	// only heavy entries are judged by the parallel-efficiency gate.
	Heavy bool `json:"heavy"`
	// SequentialNS / ParallelNS mirror the first and last legs'
	// wall-clock times (back-compat with pre-matrix reports and the
	// rendered table).
	SequentialNS int64 `json:"sequential_ns"`
	ParallelNS   int64 `json:"parallel_ns"`
	// SequentialAllocs / ParallelAllocs are heap allocation counts
	// (runtime.MemStats.Mallocs deltas) for the first and last legs.
	SequentialAllocs uint64 `json:"sequential_allocs"`
	ParallelAllocs   uint64 `json:"parallel_allocs"`
	// SequentialBytes / ParallelBytes are TotalAlloc deltas.
	SequentialBytes uint64 `json:"sequential_bytes"`
	ParallelBytes   uint64 `json:"parallel_bytes"`
	// Speedup is SequentialNS / ParallelNS.
	Speedup float64 `json:"speedup"`
	// Identical is the determinism check: true when every leg's rendered
	// table bytes equal the sequential leg's exactly.
	Identical bool `json:"identical"`
}

// BenchReport is the machine-readable benchmark artifact emitted by
// `experiments -bench-json` (BENCH_evaluation.json).
type BenchReport struct {
	Scale   string `json:"scale"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"`
	// WorkerMatrix lists the worker counts each entry was measured at,
	// ascending; it always starts with 1 and ends with Workers.
	WorkerMatrix []int        `json:"worker_matrix"`
	// NumCPU and GoMaxProcs record the host core topology the run saw
	// (runtime.NumCPU vs the effective GOMAXPROCS); MultiCore derives
	// from them so a single-core artifact is self-describing — its
	// efficiency legs measure goroutine switching, not scaling, and
	// the efficiency gate skips it.
	NumCPU     int          `json:"num_cpu"`
	GoMaxProcs int          `json:"gomaxprocs"`
	MultiCore  bool         `json:"multi_core"`
	GoVersion  string       `json:"go_version"`
	Entries    []BenchEntry `json:"entries"`
	// Kernels are the single-pass feature-kernel micro-benchmarks
	// (naive reference vs optimized path); see kernel.go.
	Kernels []KernelEntry `json:"kernels"`
	// Training are the training-path kernel micro-benchmarks
	// (ensemble selection, webgen generation); see training.go.
	Training []KernelEntry `json:"training"`
	// Totals across all measured entries.
	TotalSequentialNS int64   `json:"total_sequential_ns"`
	TotalParallelNS   int64   `json:"total_parallel_ns"`
	TotalSpeedup      float64 `json:"total_speedup"`
	// AllIdentical is true when every entry's parallel output matched
	// its sequential output byte for byte.
	AllIdentical bool `json:"all_identical"`
}

// nowNS is the monotonic clock used by the harness; a variable so tests
// can stub it.
var nowNS = monotonicNS

// benchLeg runs one runner once with the given process-wide default
// worker count on a fresh result cache, returning the rendered table
// bytes, wall time, and allocation deltas.
func benchLeg(base *Env, r Runner, workers int) (out []byte, leg BenchLeg, err error) {
	// Fresh caches so the leg measures real work, not memo hits; the
	// shared feature cache is cleared too since both legs would
	// otherwise reuse each other's featurizations.
	e := base.Fresh()
	core.ResetFeatureCache()
	parallel.ResetGrainDecisions()

	prev := parallel.Default()
	parallel.SetDefault(workers)
	defer parallel.SetDefault(prev)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := nowNS()
	tab, err := r.Run(e)
	ns := nowNS() - start
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, BenchLeg{}, fmt.Errorf("%s: %w", r.ID, err)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		return nil, BenchLeg{}, err
	}
	leg = BenchLeg{
		Workers: workers,
		NS:      ns,
		Allocs:  after.Mallocs - before.Mallocs,
		Bytes:   after.TotalAlloc - before.TotalAlloc,
		Grain:   parallel.GrainDecisions(),
		Cache:   core.FeatureCacheScopeStats(),
	}
	return buf.Bytes(), leg, nil
}

// workerMatrix builds the ascending, deduplicated list of worker
// counts to measure: always 1 (the baseline), an intermediate point at
// 2 when max allows one, and max itself. Three points are enough to
// tell "scales" from "flat" from "degrades" without tripling the run.
func workerMatrix(max int) []int {
	m := []int{1}
	if max > 2 {
		m = append(m, 2)
	}
	if max > 1 {
		m = append(m, max)
	}
	return m
}

// RunBenchmark measures every listed runner at each worker count in
// workerMatrix(workers) — 1 is the sequential baseline — and reports
// wall time, allocations, speedup, per-leg parallel efficiency, and
// whether every leg's rendered output is byte-identical to the
// baseline's, plus the feature-kernel micro-benchmarks (kernel.go).
// ids selects runner IDs; nil means every runner in the registry.
// workers <= 0 uses the machine's CPU count for the widest leg, so the
// recorded numbers reflect an actually-parallel run even under a
// capped GOMAXPROCS.
func RunBenchmark(e *Env, ids []string, workers int) (*BenchReport, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var runners []Runner
	if ids == nil {
		runners = Runners
	} else {
		for _, id := range ids {
			r := FindRunner(id)
			if r == nil {
				return nil, fmt.Errorf("bench: unknown artifact %q", id)
			}
			runners = append(runners, *r)
		}
	}

	matrix := workerMatrix(workers)
	rep := &BenchReport{
		Scale:        e.Scale.Name,
		Seed:         e.Scale.Seed,
		Workers:      workers,
		WorkerMatrix: matrix,
		NumCPU:       runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		MultiCore:    runtime.NumCPU() > 1 && runtime.GOMAXPROCS(0) > 1,
		GoVersion:    runtime.Version(),
		AllIdentical: true,
	}
	for _, r := range runners {
		entry := BenchEntry{ID: r.ID, Desc: r.Desc, Identical: true}
		var baseOut []byte
		for _, w := range matrix {
			out, leg, err := benchLeg(e, r, w)
			if err != nil {
				return nil, err
			}
			if w == 1 {
				baseOut = out
				leg.Speedup, leg.Efficiency, leg.Identical = 1, 1, true
			} else {
				if leg.NS > 0 {
					leg.Speedup = float64(entry.Legs[0].NS) / float64(leg.NS)
					leg.Efficiency = leg.Speedup / float64(w)
				}
				leg.Identical = bytes.Equal(baseOut, out)
			}
			if !leg.Identical {
				entry.Identical = false
			}
			entry.Legs = append(entry.Legs, leg)
		}
		first, last := entry.Legs[0], entry.Legs[len(entry.Legs)-1]
		entry.Heavy = first.NS >= heavyThresholdNS
		entry.SequentialNS, entry.SequentialAllocs, entry.SequentialBytes = first.NS, first.Allocs, first.Bytes
		entry.ParallelNS, entry.ParallelAllocs, entry.ParallelBytes = last.NS, last.Allocs, last.Bytes
		entry.Speedup = last.Speedup
		rep.Entries = append(rep.Entries, entry)
		rep.TotalSequentialNS += first.NS
		rep.TotalParallelNS += last.NS
		if !entry.Identical {
			rep.AllIdentical = false
		}
	}
	if rep.TotalParallelNS > 0 {
		rep.TotalSpeedup = float64(rep.TotalSequentialNS) / float64(rep.TotalParallelNS)
	}
	rep.Kernels = RunKernelBenchmarks(DefaultKernelBenchtime)
	rep.Training = RunTrainingBenchmarks(DefaultKernelBenchtime)
	for _, k := range append(append([]KernelEntry(nil), rep.Kernels...), rep.Training...) {
		if !k.Identical {
			rep.AllIdentical = false
		}
	}
	return rep, nil
}

// DefaultEfficiencyFloor is the parallel-efficiency minimum enforced by
// CheckParallelEfficiency when the caller passes a non-positive floor.
// 0.35 means the widest leg must convert at least 35% of its extra
// workers into speedup on heavy entries — e.g. >= 1.4x at 4 workers —
// lax enough for hyperthreaded CI runners, strict enough to catch an
// accidentally serialized pipeline (efficiency 1/N: 0.25 at 4 workers,
// less on wider machines).
const DefaultEfficiencyFloor = 0.35

// CheckParallelEfficiency gates multi-core scaling: every heavy entry
// (sequential leg >= 1 s) must keep the parallel efficiency of its
// widest leg at or above floor, and every leg must have stayed
// byte-identical to the sequential baseline. Reports recorded with
// GOMAXPROCS=1 or a 1-worker matrix are skipped with a nil error —
// worker counts beyond the scheduler's parallelism measure goroutine
// switching, not scaling — so single-core dev machines can still run
// the harness; CI provides the multi-core enforcement run.
func CheckParallelEfficiency(rep *BenchReport, floor float64) error {
	if floor <= 0 {
		floor = DefaultEfficiencyFloor
	}
	if rep.GoMaxProcs <= 1 || rep.Workers <= 1 {
		return nil
	}
	heavy := 0
	for _, e := range rep.Entries {
		if len(e.Legs) == 0 {
			return fmt.Errorf("bench: entry %s has no legs (pre-matrix report? regenerate with `experiments -bench-json`)", e.ID)
		}
		if !e.Identical {
			return fmt.Errorf("bench: entry %s: parallel output no longer byte-identical to the sequential baseline", e.ID)
		}
		if !e.Heavy {
			continue
		}
		heavy++
		last := e.Legs[len(e.Legs)-1]
		if last.Efficiency < floor {
			return fmt.Errorf("bench: entry %s: parallel efficiency %.2f at %d workers below the %.2f floor (speedup %.2fx)",
				e.ID, last.Efficiency, last.Workers, floor, last.Speedup)
		}
	}
	if heavy == 0 {
		return fmt.Errorf("bench: no heavy entries (sequential leg >= %v) to judge — run at a scale with multi-second entries", time.Duration(heavyThresholdNS))
	}
	return nil
}

// WriteJSON emits the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
