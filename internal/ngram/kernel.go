package ngram

import "sync"

// This file is the hot-path kernel of the n-gram-graph feature
// extraction: a single traversal of the document graph's edge order
// computes the Containment, Size, Value and Normalized Value
// similarities against one or both class graphs at once, with one map
// lookup per class per edge. The standalone similarity functions in
// graph.go remain the reference implementation; the kernel is
// bit-for-bit identical to them (see TestKernelMatchesNaive), because
// it performs the same floating-point operations in the same order:
//
//   - CS counts shared edges — an integer, so traversal order is
//     irrelevant to the result.
//   - VS sums min/max weight ratios over the *document's* deterministic
//     edge-insertion order, exactly like ValueSimilarity(doc, class).
//   - SS is a pure function of the two sizes.
//   - NVS divides the already-computed VS by the already-computed SS
//     instead of recomputing both from scratch.
//
// The pooled document builder below additionally removes the per-call
// allocations of graph construction on serving and feature-extraction
// paths: the rune buffer, the gram-id buffer, the edge map and the edge
// order slice are all reused across documents, and the gram side table
// (only needed by the public Edge-based API) is skipped entirely.

// classAccum is the per-class accumulator of the single-pass kernel.
type classAccum struct {
	shared int     // edges of doc present in the class graph (CS numerator)
	vsum   float64 // Σ min/max weight ratio over shared edges (VS numerator)
}

// finish assembles the four measures from the accumulated pass exactly
// as the reference functions would.
func (a classAccum) finish(docSize, classSize int) Similarity {
	if docSize == 0 || classSize == 0 {
		return Similarity{}
	}
	var s Similarity
	s.CS = float64(a.shared) / float64(min(docSize, classSize))
	s.SS = float64(min(docSize, classSize)) / float64(max(docSize, classSize))
	s.VS = a.vsum / float64(max(docSize, classSize))
	if s.SS != 0 {
		s.NVS = s.VS / s.SS
	}
	return s
}

// accumulate folds one document edge into the accumulator. wi is the
// document-side true weight (already scaled); wj the class-side raw
// weight, scaled here — the same expressions, in the same order, as
// ValueSimilarity.
func (a *classAccum) accumulate(wi, wj, classScale float64) {
	a.shared++
	lo, hi := wi, wj*classScale
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 0 {
		a.vsum += lo / hi
	}
}

// CompareBoth computes the four similarities of doc against two class
// graphs in a single traversal of doc's edges: one lookup into each
// class graph's edge map per document edge. It is bit-for-bit identical
// to Compare(doc, legit), Compare(doc, illegit) computed separately.
func CompareBoth(doc, legit, illegit *Graph) (Similarity, Similarity) {
	docSize := doc.Size()
	wantL := docSize > 0 && legit.Size() > 0
	wantI := docSize > 0 && illegit.Size() > 0
	var accL, accI classAccum
	if wantL || wantI {
		for _, e := range doc.order {
			wi := doc.w[e] * doc.scale
			if wantL {
				if wj, ok := legit.w[e]; ok {
					accL.accumulate(wi, wj, legit.scale)
				}
			}
			if wantI {
				if wj, ok := illegit.w[e]; ok {
					accI.accumulate(wi, wj, illegit.scale)
				}
			}
		}
	}
	return accL.finish(docSize, legit.Size()), accI.finish(docSize, illegit.Size())
}

// compareOne is the single-class single-pass kernel backing Compare.
func compareOne(doc, class *Graph) Similarity {
	docSize := doc.Size()
	if docSize == 0 || class.Size() == 0 {
		return Similarity{}
	}
	var acc classAccum
	for _, e := range doc.order {
		if wj, ok := class.w[e]; ok {
			acc.accumulate(doc.w[e]*doc.scale, wj, class.scale)
		}
	}
	return acc.finish(docSize, class.Size())
}

// Builder constructs document graphs with reusable scratch: the rune
// and gram-id buffers and the graph's edge map and order slice survive
// across builds, so a warm builder allocates nothing for a document no
// larger than the largest it has seen. The graph returned by Doc is
// owned by the builder — it is valid only until the next Doc call and
// must not be retained, merged into a class graph, or shared across
// goroutines. It carries no gram side table, so its Edges method
// reports empty gram strings; every similarity computation is
// unaffected (they read only the edge map, order and sizes).
type Builder struct {
	runes []rune
	ids   []gramID
	g     Graph
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	b := &Builder{}
	b.g.w = make(map[packedEdge]float64)
	b.g.scale = 1
	return b
}

// Doc builds the n-gram graph of text with the paper's default
// parameters into the builder's reusable graph. The edge map, edge
// order, weights and sizes are identical to FromDocument's.
func (b *Builder) Doc(text string) *Graph { return b.Build(text, DefaultN, DefaultWindow) }

// Build is Doc with explicit rank and window parameters.
func (b *Builder) Build(text string, n, win int) *Graph {
	if n <= 0 {
		n = DefaultN
	}
	if win <= 0 {
		win = DefaultWindow
	}
	g := &b.g
	clear(g.w)
	g.order = g.order[:0]
	g.scale = 1
	g.merged = 0

	b.runes = b.runes[:0]
	for _, r := range text {
		b.runes = append(b.runes, r)
	}
	if len(b.runes) < n {
		return g
	}
	count := len(b.runes) - n + 1
	if cap(b.ids) < count {
		b.ids = make([]gramID, count)
	}
	ids := b.ids[:count]
	for i := 0; i < count; i++ {
		ids[i] = hashRunes(b.runes[i : i+n])
	}
	for i := 1; i < count; i++ {
		lo := i - win
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			e := packedEdge{ids[j], ids[i]}
			if _, ok := g.w[e]; !ok {
				g.order = append(g.order, e)
			}
			g.w[e]++
		}
	}
	return g
}

// builderPool shares warm builders across the feature-extraction and
// serving paths. Builders hold only scratch state, never results, so
// pooling them is safe at any concurrency.
var builderPool = sync.Pool{New: func() any { return NewBuilder() }}

// DocFeatures computes the 8-feature similarity vector of one document
// text against both class graphs using pooled scratch, appending into
// out[:0] (pass nil to allocate). It is the allocation-free equivalent
// of Features(FromDocument(text), legit, illegit).
func DocFeatures(out []float64, text string, legit, illegit *Graph) []float64 {
	b := builderPool.Get().(*Builder)
	g := b.Doc(text)
	a, c := CompareBoth(g, legit, illegit)
	builderPool.Put(b)
	return append(out[:0],
		a.CS, a.SS, a.VS, a.NVS,
		c.CS, c.SS, c.VS, c.NVS)
}

// DocTextRank computes the Equation-3 ranking score of one document
// text against both class graphs using pooled scratch — the
// allocation-free equivalent of TextRank(FromDocument(text), ...).
func DocTextRank(text string, legit, illegit *Graph) float64 {
	b := builderPool.Get().(*Builder)
	g := b.Doc(text)
	a, c := CompareBoth(g, legit, illegit)
	builderPool.Put(b)
	return a.CS + (1 - c.CS) +
		a.SS + (1 - c.SS) +
		a.VS + (1 - c.VS) +
		a.NVS + (1 - c.NVS)
}
