package core

import (
	"testing"
)

func TestIndicativeTermsSVM(t *testing.T) {
	snap := testSnapshot(t, 1)
	v, err := Train(snap, Options{Classifier: SVM, Terms: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	legit, illegit := v.IndicativeTerms(20)
	if len(legit) != 20 || len(illegit) != 20 {
		t.Fatalf("got %d/%d terms", len(legit), len(illegit))
	}
	// The paper's §6.3.1 signal words must surface on the illegitimate
	// side for our synthetic corpus as well.
	joined := map[string]bool{}
	for _, w := range illegit {
		joined[w] = true
	}
	found := 0
	for _, w := range []string{"viagra", "cialis", "cheap", "discount", "levitra", "rx", "overnight"} {
		if joined[w] {
			found++
		}
	}
	if found < 2 {
		t.Errorf("illegitimate indicative terms miss the signal words: %v", illegit)
	}
	// And the two lists must not overlap.
	for _, w := range legit {
		if joined[w] {
			t.Errorf("term %q in both lists", w)
		}
	}
}

func TestIndicativeTermsNBM(t *testing.T) {
	snap := testSnapshot(t, 1)
	v, err := Train(snap, Options{Classifier: NBM, Terms: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	legit, illegit := v.IndicativeTerms(10)
	if len(legit) != 10 || len(illegit) != 10 {
		t.Fatalf("got %d/%d terms", len(legit), len(illegit))
	}
}

func TestIndicativeTermsUnsupportedClassifier(t *testing.T) {
	snap := testSnapshot(t, 1)
	v, err := Train(snap, Options{Classifier: J48, Terms: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	legit, illegit := v.IndicativeTerms(5)
	if legit != nil || illegit != nil {
		t.Error("trees have no linear term weights; want nil slices")
	}
}
