package core

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"pharmaverify/internal/dataset"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/parallel"
)

// RankConfig parameterizes the Online Pharmacy Ranking experiment
// (Problem 2, §5 and §6.4).
type RankConfig struct {
	// Representation: TFIDF (default) or NGramGraphs (which uses the
	// Equation-3 similarity sum instead of a classifier probability).
	Representation Representation
	// Classifier computes textRank for the TFIDF representation
	// (default NBM). Per the paper, SVM contributes its hard 0/1 output.
	Classifier ClassifierKind
	// Sampling rebalances the text-classifier training set.
	Sampling SamplingKind
	// Terms, Folds, Seed as in TextConfig.
	Terms int
	Folds int
	Seed  int64
	// Network configures networkRank (TrustRank by default).
	Network NetworkConfig
}

func (c RankConfig) withDefaults() RankConfig {
	if c.Representation == "" {
		c.Representation = TFIDF
	}
	if c.Classifier == "" {
		c.Classifier = NBM
	}
	if c.Sampling == "" {
		c.Sampling = NoSampling
	}
	if c.Folds == 0 {
		c.Folds = 3
	}
	return c
}

// RankedPharmacy is one entry of the totally ordered set sought by
// Problem 2.
type RankedPharmacy struct {
	Domain      string
	Label       int
	Score       float64 // rank(p) = textRank(p) + networkRank(p)
	TextRank    float64
	NetworkRank float64
}

// RankResult is the outcome of a cross-validated ranking run.
type RankResult struct {
	// Ranking pools every pharmacy's held-out score, sorted by
	// decreasing legitimacy (index 0 is the most legitimate).
	Ranking []RankedPharmacy
	// PairwiseOrderedness is the pairord measure over the pooled
	// held-out scores.
	PairwiseOrderedness float64
	// FoldPairord holds the per-fold pairord values.
	FoldPairord []float64
}

// RankCV produces the paper's ranking evaluation: per cross-validation
// fold, textRank comes from a classifier (or Equation 3) trained on the
// fold's training data and networkRank from TrustRank seeded with the
// training legitimate pharmacies; scores for the held-out pharmacies
// are pooled into a full ranking.
func RankCV(snap *dataset.Snapshot, cfg RankConfig) (RankResult, error) {
	cfg = cfg.withDefaults()
	labels := snap.Labels()
	names := snap.Domains()

	labelDS := &ml.Dataset{Dim: 1, X: make([]ml.Vector, len(labels)), Y: labels}
	folds := eval.StratifiedKFold(labelDS, cfg.Folds, cfg.Seed)

	// Hold the shared training plane across the fold loop so the
	// per-fold nggTextRanks calls reuse one set of prebuilt document
	// graphs instead of rebuilding them fold by fold.
	if cfg.Representation == NGramGraphs {
		plane := trainingPlaneFor(snap, cfg.Terms, cfg.Seed)
		plane.acquire()
		defer plane.release()
	}

	var result RankResult
	for f := range folds {
		trainIdx, testIdx := folds.TrainTest(f)

		textRanks, err := cfg.textRanks(snap, trainIdx)
		if err != nil {
			return RankResult{}, err
		}
		seeds := seedMap(snap, trainIdx, cfg.Network.Variant)
		netScores, err := NetworkScores(snap, seeds, cfg.Network)
		if err != nil {
			return RankResult{}, err
		}

		var foldScores []float64
		var foldLabels []int
		for _, i := range testIdx {
			score := textRanks[i] + netScores[i]
			result.Ranking = append(result.Ranking, RankedPharmacy{
				Domain:      names[i],
				Label:       labels[i],
				Score:       score,
				TextRank:    textRanks[i],
				NetworkRank: netScores[i],
			})
			foldScores = append(foldScores, score)
			foldLabels = append(foldLabels, labels[i])
		}
		result.FoldPairord = append(result.FoldPairord, eval.PairwiseOrderedness(foldScores, foldLabels))
	}

	sort.SliceStable(result.Ranking, func(a, b int) bool {
		if result.Ranking[a].Score != result.Ranking[b].Score {
			return result.Ranking[a].Score > result.Ranking[b].Score
		}
		return result.Ranking[a].Domain < result.Ranking[b].Domain
	})
	scores := make([]float64, len(result.Ranking))
	ls := make([]int, len(result.Ranking))
	for i, r := range result.Ranking {
		scores[i] = r.Score
		ls[i] = r.Label
	}
	result.PairwiseOrderedness = eval.PairwiseOrderedness(scores, ls)
	return result, nil
}

// textRanks computes textRank(p) for every pharmacy using a model
// trained on trainIdx only.
func (cfg RankConfig) textRanks(snap *dataset.Snapshot, trainIdx []int) ([]float64, error) {
	if cfg.Representation == NGramGraphs {
		return cfg.nggTextRanks(snap, trainIdx)
	}
	ds := TFIDFDataset(snap, TextConfig{
		Classifier: cfg.Classifier,
		Terms:      cfg.Terms,
		Seed:       cfg.Seed,
	})
	clf, err := NewClassifier(cfg.Classifier, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// The paper's SVM textRank is the hard 0/1 class output.
	if s, ok := clf.(interface{ SetCalibrate(bool) }); ok {
		s.SetCalibrate(false)
	}
	train := ds.Subset(trainIdx)
	smp, err := Sampler(cfg.Sampling)
	if err != nil {
		return nil, err
	}
	if smp != nil {
		train = smp(train, rand.New(rand.NewSource(cfg.Seed+23)))
	}
	if err := clf.Fit(train); err != nil {
		return nil, err
	}
	out := make([]float64, ds.Len())
	for i, x := range ds.X {
		out[i] = clf.Prob(x)
	}
	return out, nil
}

// nggTextRanks computes Equation (3): the sum of similarities to the
// legitimate class graph plus complements of similarities to the
// illegitimate class graph, scaled to [0,1] so that textRank and
// networkRank contribute comparably.
func (cfg RankConfig) nggTextRanks(snap *dataset.Snapshot, trainIdx []int) ([]float64, error) {
	plane := trainingPlaneFor(snap, cfg.Terms, cfg.Seed)
	plane.acquire()
	defer plane.release()

	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	perm := rng.Perm(len(trainIdx))
	half := make([]int, 0, len(trainIdx)/2)
	for _, p := range perm[:len(trainIdx)/2] {
		half = append(half, trainIdx[p])
	}
	plan := parallel.PlanGrainFor("rank-text", 0, 1, len(plane.Docs))
	return plane.textRanks(half, plan.DocWorkers, plan.DocGrain), nil
}

// Outliers extracts the paper's §6.4 outlier sets from a ranking: the
// k illegitimate pharmacies ranked most legitimate (system foolers) and
// the k legitimate pharmacies ranked least legitimate.
func Outliers(ranking []RankedPharmacy, k int) (illegitHigh, legitLow []RankedPharmacy) {
	for _, r := range ranking {
		if r.Label == ml.Illegitimate && len(illegitHigh) < k {
			illegitHigh = append(illegitHigh, r)
		}
	}
	for i := len(ranking) - 1; i >= 0; i-- {
		if ranking[i].Label == ml.Legitimate && len(legitLow) < k {
			legitLow = append(legitLow, ranking[i])
		}
	}
	return illegitHigh, legitLow
}

// DescribeRanking formats the top and bottom of a ranking for human
// review (used by the CLI and examples).
func DescribeRanking(ranking []RankedPharmacy, k int) string {
	var b strings.Builder
	b.WriteString("top (most legitimate):\n")
	for i := 0; i < k && i < len(ranking); i++ {
		r := ranking[i]
		b.WriteString("  ")
		b.WriteString(r.Domain)
		b.WriteString(" score=")
		b.WriteString(formatFloat(r.Score))
		b.WriteString(" label=")
		b.WriteString(ml.ClassName(r.Label))
		b.WriteByte('\n')
	}
	b.WriteString("bottom (least legitimate):\n")
	for i := len(ranking) - k; i < len(ranking); i++ {
		if i < 0 {
			continue
		}
		r := ranking[i]
		b.WriteString("  ")
		b.WriteString(r.Domain)
		b.WriteString(" score=")
		b.WriteString(formatFloat(r.Score))
		b.WriteString(" label=")
		b.WriteString(ml.ClassName(r.Label))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', 4, 64)
}
