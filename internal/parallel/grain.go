package parallel

import (
	"fmt"
	"sort"
	"sync"
)

// GrainPlan describes how a two-level training loop — an outer pass
// over cross-validation folds, an inner pass over each fold's
// documents — splits a worker budget between the levels, and how the
// inner pass is chunked. It is produced by PlanGrain and consumed by
// the training kernels (ensemble CV, NGG fold featurization, webgen
// rendering uses the degenerate folds=1 case).
type GrainPlan struct {
	// FoldWorkers bounds the outer (fold-level) fan-out.
	FoldWorkers int
	// DocWorkers bounds the inner (document-level) fan-out of each
	// fold; 1 means the inner pass runs inline on the fold's worker.
	DocWorkers int
	// DocGrain is the contiguous chunk size handed to one inner worker
	// per dispatch (see ForGrain). Always >= 1.
	DocGrain int
	// Level names the chosen partitioning: "fold", "doc" or "hybrid".
	Level string
}

// String renders the plan compactly for bench legs and logs, e.g.
// "fold×3·doc×1·g40" — outer workers, inner workers, inner grain.
func (p GrainPlan) String() string {
	return fmt.Sprintf("%s fold×%d·doc×%d·g%d", p.Level, p.FoldWorkers, p.DocWorkers, p.DocGrain)
}

// Tuning constants of the grain cost model. Per-document work in the
// training kernels costs tens of microseconds against a ~1 µs
// goroutine handoff, so a worker should receive at least grainFloor
// documents per dispatch; chunksPerWorker extra chunks per worker keep
// the tail load-balanced when document costs are uneven.
const (
	chunksPerWorker = 4
	grainCeil       = 16 // matches the hand-tuned NGG document grain
)

// PlanGrain picks fold-level vs document-level partitioning for a
// training loop of `folds` outer tasks over `docsPerFold` inner items,
// given a resolved worker budget.
//
// The cost model: a fold's inner pass is a long contiguous run of
// fine-grained items, so parallelism at the fold level is free (no
// extra handoffs, perfect locality) while parallelism at the document
// level pays one handoff per chunk. Hence:
//
//   - workers <= folds: the outer level alone saturates the pool.
//     Each fold runs its inner pass inline in one maximal chunk —
//     zero extra dispatches ("fold").
//   - folds == 1 (or 0): all parallelism must come from the inner
//     level ("doc"). The inner grain splits the documents into about
//     chunksPerWorker chunks per worker, capped at grainCeil so the
//     tail stays balanced on uneven documents.
//   - otherwise: both levels share the budget ("hybrid"). Every fold
//     gets an outer slot and ceil(workers/folds) inner workers, so the
//     total concurrency stays within one fold of the budget.
//
// The plan never changes results — ForGrain's output is identical at
// any worker count and grain — only how the budget is spent; the
// chosen plan is recorded per call site (see PlanGrainFor) so the
// bench efficiency gate can attack bad choices.
func PlanGrain(workers, folds, docsPerFold int) GrainPlan {
	w := Workers(workers)
	if folds < 1 {
		folds = 1
	}
	if docsPerFold < 1 {
		docsPerFold = 1
	}
	grainFor := func(docWorkers int) int {
		g := docsPerFold / (chunksPerWorker * docWorkers)
		if g > grainCeil {
			g = grainCeil
		}
		if g < 1 {
			g = 1
		}
		return g
	}
	switch {
	case folds == 1:
		return GrainPlan{Level: "doc", FoldWorkers: 1, DocWorkers: w, DocGrain: grainFor(w)}
	case w <= folds:
		return GrainPlan{Level: "fold", FoldWorkers: w, DocWorkers: 1, DocGrain: docsPerFold}
	default:
		inner := (w + folds - 1) / folds
		return GrainPlan{Level: "hybrid", FoldWorkers: folds, DocWorkers: inner, DocGrain: grainFor(inner)}
	}
}

// grainLog records the most recent plan per named call site, so the
// bench harness can attach the autotuner's choices to each measured
// leg. Bounded implicitly by the number of distinct call sites.
var (
	grainMu  sync.Mutex
	grainLog = map[string]GrainPlan{}
)

// PlanGrainFor is PlanGrain with the decision recorded under a call
// site name (e.g. "ensemble-cv", "webgen-render") for bench reporting.
func PlanGrainFor(site string, workers, folds, docsPerFold int) GrainPlan {
	p := PlanGrain(workers, folds, docsPerFold)
	grainMu.Lock()
	grainLog[site] = p
	grainMu.Unlock()
	return p
}

// GrainDecisions returns the last recorded plan per call site since
// the previous ResetGrainDecisions, rendered as strings, with call
// sites in sorted order for stable output.
func GrainDecisions() map[string]string {
	grainMu.Lock()
	defer grainMu.Unlock()
	out := make(map[string]string, len(grainLog))
	for site, p := range grainLog {
		out[site] = p.String()
	}
	return out
}

// GrainSites lists the recorded call sites in sorted order.
func GrainSites() []string {
	grainMu.Lock()
	defer grainMu.Unlock()
	sites := make([]string, 0, len(grainLog))
	for s := range grainLog {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	return sites
}

// ResetGrainDecisions clears the recorded plans (the bench harness
// calls it before each measured leg).
func ResetGrainDecisions() {
	grainMu.Lock()
	grainLog = map[string]GrainPlan{}
	grainMu.Unlock()
}
