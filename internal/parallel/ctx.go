package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForCtx is For with cooperative cancellation: once ctx is cancelled no
// further indices are dispatched, the in-flight calls are drained (they
// are never interrupted mid-item), and the context's error is returned.
// A nil return means every index ran.
//
// Cancellation preserves the determinism contract in truncated form:
// the set of indices that ran is a scheduling-dependent subset, but
// every f(i) that did run observed exactly the inputs a sequential loop
// would have given it — cancellation may truncate work, never reorder
// or corrupt it. Callers that need to know which items completed must
// record that inside f.
func ForCtx(ctx context.Context, n, workers int, f func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			f(i)
		}
		return ctx.Err()
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicIdx = -1
		panicVal any
	)
	done := ctx.Done()
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicIdx < 0 || i < panicIdx {
								panicIdx, panicVal = i, r
							}
							panicMu.Unlock()
						}
					}()
					f(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicIdx >= 0 {
		panic(panicVal)
	}
	return ctx.Err()
}

// MapErrCtx is MapErr with cooperative cancellation. On cancellation
// the results are discarded and an error is returned: the error of the
// lowest index whose f failed before the cancel, if any (matching the
// sequential loop), otherwise ctx.Err(). Like MapErr, a non-nil error
// from any completed index also discards the results.
func MapErrCtx[T any](ctx context.Context, n, workers int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	cancelErr := ForCtx(ctx, n, workers, func(i int) {
		out[i], errs[i] = f(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return out, nil
}
