package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"pharmaverify/internal/core"
	"pharmaverify/internal/parallel"
)

// benchEpoch anchors the monotonic clock reads.
var benchEpoch = time.Now()

func monotonicNS() int64 { return int64(time.Since(benchEpoch)) }

// BenchEntry records the sequential-vs-parallel measurement of one
// artifact runner.
type BenchEntry struct {
	ID   string `json:"id"`
	Desc string `json:"desc"`
	// SequentialNS / ParallelNS are wall-clock times of the Workers=1
	// and Workers=N legs, in nanoseconds.
	SequentialNS int64 `json:"sequential_ns"`
	ParallelNS   int64 `json:"parallel_ns"`
	// SequentialAllocs / ParallelAllocs are heap allocation counts
	// (runtime.MemStats.Mallocs deltas) for each leg. They are
	// process-wide deltas, so background allocation adds noise; the
	// harness runs legs back-to-back in one goroutine to keep the
	// numbers comparable.
	SequentialAllocs uint64 `json:"sequential_allocs"`
	ParallelAllocs   uint64 `json:"parallel_allocs"`
	// SequentialBytes / ParallelBytes are TotalAlloc deltas.
	SequentialBytes uint64 `json:"sequential_bytes"`
	ParallelBytes   uint64 `json:"parallel_bytes"`
	// Speedup is SequentialNS / ParallelNS.
	Speedup float64 `json:"speedup"`
	// Identical is the determinism check: true when the rendered table
	// bytes of the parallel leg equal the sequential leg's exactly.
	Identical bool `json:"identical"`
}

// BenchReport is the machine-readable benchmark artifact emitted by
// `experiments -bench-json` (BENCH_evaluation.json).
type BenchReport struct {
	Scale      string       `json:"scale"`
	Seed       int64        `json:"seed"`
	Workers    int          `json:"workers"`
	GoMaxProcs int          `json:"gomaxprocs"`
	GoVersion  string       `json:"go_version"`
	Entries    []BenchEntry `json:"entries"`
	// Kernels are the single-pass feature-kernel micro-benchmarks
	// (naive reference vs optimized path); see kernel.go.
	Kernels []KernelEntry `json:"kernels"`
	// Totals across all measured entries.
	TotalSequentialNS int64   `json:"total_sequential_ns"`
	TotalParallelNS   int64   `json:"total_parallel_ns"`
	TotalSpeedup      float64 `json:"total_speedup"`
	// AllIdentical is true when every entry's parallel output matched
	// its sequential output byte for byte.
	AllIdentical bool `json:"all_identical"`
}

// nowNS is the monotonic clock used by the harness; a variable so tests
// can stub it.
var nowNS = monotonicNS

// benchLeg runs one runner once with the given process-wide default
// worker count on a fresh result cache, returning the rendered table
// bytes, wall time, and allocation deltas.
func benchLeg(base *Env, r Runner, workers int) (out []byte, ns int64, mallocs, bytesAlloc uint64, err error) {
	// Fresh caches so the leg measures real work, not memo hits; the
	// shared feature cache is cleared too since both legs would
	// otherwise reuse each other's featurizations.
	e := base.Fresh()
	core.ResetFeatureCache()

	prev := parallel.Default()
	parallel.SetDefault(workers)
	defer parallel.SetDefault(prev)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := nowNS()
	tab, err := r.Run(e)
	ns = nowNS() - start
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("%s: %w", r.ID, err)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		return nil, 0, 0, 0, err
	}
	return buf.Bytes(), ns, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, nil
}

// RunBenchmark measures every listed runner twice — once with the
// worker pool forced to 1 (the sequential baseline) and once with the
// given parallel worker count — and reports wall time, allocations,
// speedup, and whether the two rendered outputs are byte-identical,
// plus the feature-kernel micro-benchmarks (kernel.go).
// ids selects runner IDs; nil means every runner in the registry.
// workers <= 0 uses the machine's CPU count for the parallel leg, so
// the recorded numbers reflect an actually-parallel run even under a
// capped GOMAXPROCS.
func RunBenchmark(e *Env, ids []string, workers int) (*BenchReport, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var runners []Runner
	if ids == nil {
		runners = Runners
	} else {
		for _, id := range ids {
			r := FindRunner(id)
			if r == nil {
				return nil, fmt.Errorf("bench: unknown artifact %q", id)
			}
			runners = append(runners, *r)
		}
	}

	rep := &BenchReport{
		Scale:        e.Scale.Name,
		Seed:         e.Scale.Seed,
		Workers:      workers,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		GoVersion:    runtime.Version(),
		AllIdentical: true,
	}
	for _, r := range runners {
		seqOut, seqNS, seqAllocs, seqBytes, err := benchLeg(e, r, 1)
		if err != nil {
			return nil, err
		}
		parOut, parNS, parAllocs, parBytes, err := benchLeg(e, r, workers)
		if err != nil {
			return nil, err
		}
		entry := BenchEntry{
			ID:               r.ID,
			Desc:             r.Desc,
			SequentialNS:     seqNS,
			ParallelNS:       parNS,
			SequentialAllocs: seqAllocs,
			ParallelAllocs:   parAllocs,
			SequentialBytes:  seqBytes,
			ParallelBytes:    parBytes,
			Identical:        bytes.Equal(seqOut, parOut),
		}
		if parNS > 0 {
			entry.Speedup = float64(seqNS) / float64(parNS)
		}
		rep.Entries = append(rep.Entries, entry)
		rep.TotalSequentialNS += seqNS
		rep.TotalParallelNS += parNS
		if !entry.Identical {
			rep.AllIdentical = false
		}
	}
	if rep.TotalParallelNS > 0 {
		rep.TotalSpeedup = float64(rep.TotalSequentialNS) / float64(rep.TotalParallelNS)
	}
	rep.Kernels = RunKernelBenchmarks(DefaultKernelBenchtime)
	for _, k := range rep.Kernels {
		if !k.Identical {
			rep.AllIdentical = false
		}
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
