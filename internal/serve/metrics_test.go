package serve

import (
	"bufio"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestMetricsExposition(t *testing.T) {
	w, _, _ := testVerifier(t)
	_, ts := newTestServer(t, Config{Fetcher: w, Workers: 2})

	// Drive some traffic: one fresh verdict, one cache hit.
	domain := pickDomain(t, true)
	postVerify(t, ts.URL, VerifyRequest{Domain: domain})
	postVerify(t, ts.URL, VerifyRequest{Domain: domain})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want Prometheus text format", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)

	// Every metric family the acceptance criteria name must be present.
	for _, want := range []string{
		"pharmaverify_cache_hit_ratio ",
		"pharmaverify_cache_hits_total 1",
		"pharmaverify_queue_depth 0",
		"pharmaverify_crawls_total 1",
		`pharmaverify_requests_total{code="200"} 2`,
		`pharmaverify_domains_total{outcome="cache_hit"} 1`,
		`pharmaverify_domains_total{outcome="crawled"} 1`,
		"pharmaverify_crawl_duration_seconds_count 1",
		"pharmaverify_request_duration_seconds_count 2",
		// Evidence fusion: per-source contributions and latency (one
		// fresh verdict fused text + network; the unconfigured registry
		// abstained but was still timed), plus the link-graph telemetry.
		`pharmaverify_source_contributions_total{source="text"} 1`,
		`pharmaverify_source_contributions_total{source="network"} 1`,
		`pharmaverify_source_duration_seconds_count{source="text"} 1`,
		`pharmaverify_source_duration_seconds_count{source="registry"} 1`,
		"pharmaverify_linkgraph_folds_total 1",
		"pharmaverify_linkgraph_refreshes_total 1",
		"pharmaverify_linkgraph_dirty 0",
		"pharmaverify_linkgraph_nodes ",
		"pharmaverify_linkgraph_refresh_duration_seconds_count 1",
		// Shared feature cache: both accounting scopes always render,
		// even before any training or serving traffic touched them.
		`pharmaverify_featcache_hits_total{scope="serving"} `,
		`pharmaverify_featcache_hits_total{scope="training"} `,
		`pharmaverify_featcache_misses_total{scope="serving"} `,
		`pharmaverify_featcache_misses_total{scope="training"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// Structural sanity: every sample line belongs to a family that was
	// declared with # TYPE, and histogram buckets are cumulative within
	// each series (a labeled family restarts per label set).
	types := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	var (
		lastBucket uint64
		lastSeries string
	)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			types[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(base, suffix) && types[strings.TrimSuffix(base, suffix)] {
				base = strings.TrimSuffix(base, suffix)
			}
		}
		if !types[base] {
			t.Errorf("sample %q has no # TYPE declaration", name)
		}
		if i := strings.Index(line, "le="); strings.Contains(line, "_bucket{") && i >= 0 {
			// The series is the name plus every label before le (empty
			// for unlabeled histograms, source="x" for the vec).
			if series := line[:i]; series != lastSeries {
				lastSeries, lastBucket = series, 0
			}
			var v uint64
			if _, err := fmtSscan(line, &v); err == nil {
				if v < lastBucket {
					t.Errorf("histogram buckets not cumulative at %q", line)
				}
				lastBucket = v
			}
		}
	}
}

// fmtSscan parses the trailing integer of a sample line.
func fmtSscan(line string, v *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return 0, io.EOF
	}
	var n uint64
	for _, c := range line[i+1:] {
		if c < '0' || c > '9' {
			return 0, io.EOF
		}
		n = n*10 + uint64(c-'0')
	}
	*v = n
	return 1, nil
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.observe(v)
	}
	if h.count() != 5 {
		t.Errorf("n = %d, want 5", h.count())
	}
	want := []uint64{1, 2, 1, 1} // ≤0.1, ≤1, ≤10, +Inf
	for i := range want {
		if c := h.bucket(i); c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.sum() != 56.05 {
		t.Errorf("sum = %v, want 56.05", h.sum())
	}
}

// TestMetricsConcurrentObserve hammers every instrument kind from many
// goroutines (run with -race) and checks the totals reconcile: the
// observe path is lock-free, so this is where torn updates would show.
func TestMetricsConcurrentObserve(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	lc := &labelCounter{}
	hv := newHistogramVec([]float64{0.5})
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := []string{"text", "network", "registry"}[g%3]
			for i := 0; i < per; i++ {
				h.observe(0.25)
				lc.inc(label)
				hv.with(label).observe(2)
			}
		}(g)
	}
	wg.Wait()
	const total = goroutines * per
	if h.count() != total {
		t.Errorf("histogram count = %d, want %d", h.count(), total)
	}
	if got, want := h.sum(), 0.25*total; got != want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
	if h.bucket(1) != total {
		t.Errorf("bucket(≤1) = %d, want %d", h.bucket(1), total)
	}
	keys, counts := lc.snapshot()
	var lcTotal uint64
	for _, c := range counts {
		lcTotal += c
	}
	if len(keys) != 3 || lcTotal != total {
		t.Errorf("labelCounter: keys=%v total=%d, want 3 labels / %d", keys, lcTotal, total)
	}
	vkeys, hs := hv.snapshot()
	var hvTotal uint64
	for _, vh := range hs {
		hvTotal += vh.count()
	}
	if len(vkeys) != 3 || hvTotal != total {
		t.Errorf("histogramVec: keys=%v total=%d, want 3 labels / %d", vkeys, hvTotal, total)
	}
}

func TestLabelCounterDeterministicOrder(t *testing.T) {
	lc := &labelCounter{}
	lc.inc("zebra")
	lc.inc("alpha")
	lc.inc("alpha")
	keys, counts := lc.snapshot()
	if len(keys) != 2 || keys[0] != "alpha" || keys[1] != "zebra" {
		t.Fatalf("keys = %v, want sorted [alpha zebra]", keys)
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts = %v, want [2 1]", counts)
	}
}
