package core

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/trust"
	"pharmaverify/internal/vectorize"
)

// Options configures a Verifier (the user-facing system combining the
// classification and ranking pipelines).
type Options struct {
	// Classifier for the text model (default SVM, the paper's best
	// single text classifier).
	Classifier ClassifierKind
	// Terms subsamples summaries before vectorization (0 = all terms).
	Terms int
	// Sampling rebalances training (default NoSampling).
	Sampling SamplingKind
	// Seed drives all randomness.
	Seed int64
	// Network configures the trust computation.
	Network NetworkConfig
}

func (o Options) withDefaults() Options {
	if o.Classifier == "" {
		o.Classifier = SVM
	}
	if o.Sampling == "" {
		o.Sampling = NoSampling
	}
	return o
}

// Verifier is a trained internet-pharmacy verification system: a text
// classifier over the training vocabulary plus a TrustRank network
// model seeded with the known legitimate pharmacies. It solves OPC via
// Classify-style probabilities and OPR via Rank.
type Verifier struct {
	opts     Options
	vocab    *vectorize.Vocabulary
	weightng vectorize.Weighting
	text     ml.Classifier
	netClf   ml.Classifier
	// Training link structure and seeds, for scoring new pharmacies.
	trainOutbound map[string][]string
	seeds         map[string]float64
	// trainCrawl is the crawl telemetry of the training snapshot (nil
	// when the snapshot predates crawl stats), kept so a shipped model
	// records the health of the crawl it was trained on.
	trainCrawl *crawler.Stats
	// sketch is the training corpus's term/link distribution snapshot
	// (nil for models persisted before sketches existed), the baseline
	// the serving layer's drift monitor compares fresh crawls against.
	sketch *Sketch
	// fp is the model's identity: the hex SHA-256 digest of its
	// persisted (Save) form, set by Train and LoadVerifier.
	fp string
	// vecPool recycles sparse vectorizers (scratch buffers over the
	// frozen vocabulary) across Assess calls, so a serving request
	// allocates O(document terms), not O(vocabulary). The zero pool is
	// ready to use — Train and LoadVerifier need no extra setup.
	vecPool sync.Pool
}

// vectorizer returns a pooled vectorizer over the frozen vocabulary.
func (v *Verifier) vectorizer() *vectorize.Vectorizer {
	if z, ok := v.vecPool.Get().(*vectorize.Vectorizer); ok {
		return z
	}
	return vectorize.NewVectorizer(v.vocab)
}

// Fingerprint returns the hex SHA-256 digest of the verifier's
// persisted form — the model's identity. Train computes it over the
// bytes Save would write; LoadVerifier computes it over the bytes it
// read, so a model keeps the same fingerprint across save/load round
// trips. The serving layer keys verdict caches on it and surfaces it in
// /readyz, so a hot-reloaded model is distinguishable from the one it
// replaced.
func (v *Verifier) Fingerprint() string { return v.fp }

// Options returns the (defaulted) options the verifier was trained
// with — loaded models report the classifier that actually trained
// them, not whatever the caller's flags default to.
func (v *Verifier) Options() Options { return v.opts }

// Assessment is the verdict for one pharmacy.
type Assessment struct {
	Domain string
	// Legitimate is the OPC decision.
	Legitimate bool
	// TextProb is the text model's P(legitimate).
	TextProb float64
	// TrustScore is the TrustRank value (networkRank).
	TrustScore float64
	// NetworkProb is the network classifier's P(legitimate).
	NetworkProb float64
	// Rank is the OPR score: textRank + networkRank.
	Rank float64
}

// ErrNoTraining is returned when Train receives an empty snapshot.
var ErrNoTraining = errors.New("core: empty training snapshot")

// Train builds a Verifier from a labeled snapshot.
func Train(snap *dataset.Snapshot, opts Options) (*Verifier, error) {
	return TrainCtx(context.Background(), snap, opts)
}

// TrainCtx is Train with cooperative cancellation, checked between the
// training stages (vectorization, text-model fit, network scoring,
// network-model fit). Cancellation returns ctx's error and no verifier;
// the coarse stage granularity means the cancel latency is bounded by
// one classifier fit.
func TrainCtx(ctx context.Context, snap *dataset.Snapshot, opts Options) (*Verifier, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if snap.Len() == 0 {
		return nil, ErrNoTraining
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	docs := snap.SubsampledTerms(opts.Terms, opts.Seed)
	corpus := vectorize.NewCorpus(docs, snap.Labels(), snap.Domains())
	weighting := vectorize.WeightTFIDF
	if opts.Classifier == NBM {
		weighting = vectorize.WeightCounts
	}
	ds := corpus.Dataset(weighting)

	smp, err := Sampler(opts.Sampling)
	if err != nil {
		return nil, err
	}
	if smp != nil {
		ds = smp(ds, rand.New(rand.NewSource(opts.Seed+41)))
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	text, err := NewClassifier(opts.Classifier, opts.Seed)
	if err != nil {
		return nil, err
	}
	// The verifier wants graded textRank scores: give the SVM its Platt
	// calibration back (experiments keep Weka-parity discrete outputs).
	if s, ok := text.(interface{ SetCalibrate(bool) }); ok {
		s.SetCalibrate(true)
	}
	if err := text.Fit(ds); err != nil {
		return nil, err
	}

	v := &Verifier{
		opts:          opts,
		vocab:         corpus.Vocab,
		weightng:      weighting,
		text:          text,
		trainOutbound: snap.Outbound(),
		seeds:         make(map[string]float64),
		trainCrawl:    snap.CrawlStats,
		sketch:        BuildSketch(snap, 0, 0),
	}
	for _, p := range snap.Pharmacies {
		if p.Label == ml.Legitimate {
			v.seeds[p.Domain] = 1
		}
	}

	// Network classifier trained on the training pharmacies' own trust
	// scores.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	trainScores, err := NetworkScores(snap, v.seeds, opts.Network)
	if err != nil {
		return nil, err
	}
	netClf, err := NewClassifier(NB, opts.Seed)
	if err != nil {
		return nil, err
	}
	netDS := scoreDataset(trainScores, snap.Labels(), snap.Domains())
	if err := netClf.Fit(netDS); err != nil {
		return nil, err
	}
	v.netClf = netClf
	// Fingerprint the freshly trained model. Serializing once more at
	// train time is cheap next to the classifier fits, and it guarantees
	// Train and LoadVerifier agree on the model's identity.
	fp, err := fingerprint(v)
	if err != nil {
		return nil, err
	}
	v.fp = fp
	return v, nil
}

// Assess scores a batch of (typically unlabeled) pharmacies. The link
// graph is rebuilt over the training pharmacies plus the batch so that
// trust propagates through shared endpoints; text probabilities use the
// frozen training vocabulary and model.
func (v *Verifier) Assess(pharmacies []dataset.Pharmacy) []Assessment {
	out, _ := v.AssessTimed(pharmacies, nil)
	return out
}

// AssessTimings breaks an assessment into the two post-crawl serving
// stages: Featurize covers trust-graph construction, TrustRank and
// sparse text vectorization; Classify covers the model probability
// computations and verdict assembly.
type AssessTimings struct {
	Featurize time.Duration
	Classify  time.Duration
}

// AssessTimed is Assess with per-stage wall-time attribution. now is
// the clock to read (nil = time.Now); the serving layer passes its own
// injectable clock so stage histograms and request histograms agree.
func (v *Verifier) AssessTimed(pharmacies []dataset.Pharmacy, now func() time.Time) ([]Assessment, AssessTimings) {
	if now == nil {
		now = time.Now
	}
	t0 := now()

	// Featurize: link structure, trust propagation, and the sparse text
	// vectors (pooled scratch — O(doc terms) allocation per pharmacy).
	outbound := make(map[string][]string, len(v.trainOutbound)+len(pharmacies))
	for d, eps := range v.trainOutbound {
		outbound[d] = eps
	}
	for _, p := range pharmacies {
		outbound[p.Domain] = p.Outbound
	}
	g := trust.BuildGraph(outbound)
	cfgVariant := v.opts.Network.withDefaults().Variant
	var sg *trust.Graph
	if cfgVariant == TrustRankDirected {
		sg = g
	} else {
		sg = g.Undirected()
	}
	values := trust.TrustRank(sg, v.seeds, v.opts.Network.Trust)
	scores := trust.NewScores(sg, values)

	z := v.vectorizer()
	xs := make([]ml.Vector, len(pharmacies))
	for i, p := range pharmacies {
		xs[i] = z.Vector(p.Terms, v.weightng)
	}
	v.vecPool.Put(z)
	t1 := now()

	// Classify: model probabilities and verdicts.
	out := make([]Assessment, len(pharmacies))
	for i, p := range pharmacies {
		textProb := v.text.Prob(xs[i])
		ts := scores.Of(p.Domain)
		netProb := v.netClf.Prob(ml.NewVector([]float64{ts}))
		out[i] = Assessment{
			Domain:      p.Domain,
			Legitimate:  (textProb+netProb)/2 >= 0.5,
			TextProb:    textProb,
			TrustScore:  ts,
			NetworkProb: netProb,
			Rank:        textProb + ts,
		}
	}
	t2 := now()
	return out, AssessTimings{Featurize: t1.Sub(t0), Classify: t2.Sub(t1)}
}

// TextProb returns the text classifier's P(legitimate) for one
// preprocessed term list — the text half of an assessment, exposed on
// its own so serving-layer evidence sources can vote independently.
// It uses the pooled sparse vectorizer over the frozen vocabulary.
func (v *Verifier) TextProb(terms []string) float64 {
	z := v.vectorizer()
	x := z.Vector(terms, v.weightng)
	v.vecPool.Put(z)
	return v.text.Prob(x)
}

// NetworkProbFromTrust returns the network classifier's P(legitimate)
// for an externally computed trust score — the network half of an
// assessment, for callers that maintain their own link graph (the
// serving layer's incrementally refreshed TrustRank) instead of
// rebuilding one per call like Assess does.
func (v *Verifier) NetworkProbFromTrust(trustScore float64) float64 {
	return v.netClf.Prob(ml.NewVector([]float64{trustScore}))
}

// Seeds returns a copy of the TrustRank seed map (the training
// snapshot's known-legitimate pharmacies at value 1).
func (v *Verifier) Seeds() map[string]float64 {
	out := make(map[string]float64, len(v.seeds))
	for d, s := range v.seeds {
		out[d] = s
	}
	return out
}

// TrainingOutbound returns the training pharmacies' outbound endpoint
// lists — the static base of any link graph this model scores against.
// The returned map and its slices are the verifier's own state: callers
// must treat them as read-only (merge into a copy, never append in
// place).
func (v *Verifier) TrainingOutbound() map[string][]string { return v.trainOutbound }

// TrainingCrawlStats returns the crawl telemetry of the snapshot the
// verifier was trained on, or nil if unavailable. A training crawl with
// many lost pages or breaker trips yields a model whose text features
// under-represent the affected sites — surfacing this lets operators
// decide whether to re-crawl before shipping the model.
func (v *Verifier) TrainingCrawlStats() *crawler.Stats { return v.trainCrawl }

// RankAssessments sorts assessments by decreasing legitimacy score,
// producing the totally ordered set of Problem 2.
func RankAssessments(as []Assessment) []Assessment {
	out := append([]Assessment(nil), as...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank > out[j].Rank
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}
