package dataset

import (
	"bytes"
	"testing"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/webgen"
)

func TestBuildRecordsCrawlStats(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 9, NumLegit: 3, NumIllegit: 6, NetworkSize: 3})
	snap, err := Build("stats", w, w.Domains(), w.Labels(), crawler.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := snap.CrawlStats
	if st == nil {
		t.Fatal("Build left CrawlStats nil")
	}
	if st.Attempts != st.Successes+st.Failures {
		t.Errorf("stats do not reconcile: %+v", st)
	}
	var pages int
	for _, p := range snap.Pharmacies {
		pages += p.Pages
	}
	if st.Successes != pages {
		t.Errorf("successes = %d, but snapshot holds %d pages", st.Successes, pages)
	}
	if st.Bytes == 0 {
		t.Error("no bytes recorded")
	}

	// Round-trip: telemetry survives Save/Load.
	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CrawlStats == nil || *loaded.CrawlStats != *st {
		t.Errorf("CrawlStats did not survive the round-trip: %+v vs %+v", loaded.CrawlStats, st)
	}
}

func TestOutboundMemoizedAndStable(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 9, NumLegit: 3, NumIllegit: 6, NetworkSize: 3})
	snap, err := Build("memo", w, w.Domains(), w.Labels(), crawler.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := snap.Outbound()
	b := snap.Outbound()
	if len(a) != snap.Len() {
		t.Fatalf("outbound size = %d, want %d", len(a), snap.Len())
	}
	// Memoized: both calls must return the same underlying map (callers
	// treat it as read-only), observable by probing through one view.
	a["__probe__"] = nil
	if _, ok := b["__probe__"]; !ok {
		t.Error("Outbound() is not memoized: views diverge")
	}
	delete(a, "__probe__")
}
