// Package mlp implements the multilayer perceptron ("MLP" in the paper,
// Weka's MultilayerPerceptron) used on the N-Gram-Graph similarity
// features. The network has one sigmoid hidden layer and a single
// sigmoid output trained with mini-batch stochastic gradient descent on
// cross-entropy loss, with momentum — mirroring Weka's defaults
// (learning rate 0.3, momentum 0.2).
package mlp

import (
	"math"
	"math/rand"

	"pharmaverify/internal/ml"
)

// Network is a 1-hidden-layer perceptron for binary classification.
type Network struct {
	// Hidden is the hidden-layer width. When 0, Weka's heuristic
	// (attributes+classes)/2 is used, with a minimum of 2.
	Hidden int
	// LearningRate (default 0.3 when 0) and Momentum (default 0.2 when
	// negative; 0 is honored) follow Weka's defaults.
	LearningRate float64
	Momentum     float64
	// Epochs is the number of training passes (default 500 when 0).
	Epochs int
	// Seed drives weight initialization and shuffling.
	Seed int64
	// L2 is an optional weight-decay coefficient.
	L2 float64

	dim    int
	hidden int
	// Layer 1: w1[h][d], b1[h]. Layer 2: w2[h], b2.
	w1 [][]float64
	b1 []float64
	w2 []float64
	b2 float64
	// Feature standardization parameters (fit on training data).
	mean, scale []float64
	fitted      bool
}

// New returns an MLP with Weka-like defaults.
func New() *Network {
	return &Network{LearningRate: 0.3, Momentum: 0.2, Epochs: 500}
}

// Name implements ml.Named with the paper's abbreviation.
func (n *Network) Name() string { return "MLP" }

// Fit trains the network with SGD + momentum.
func (n *Network) Fit(ds *ml.Dataset) error {
	if ds.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	if ds.CountClass(0) == 0 || ds.CountClass(1) == 0 {
		return ml.ErrOneClass
	}
	n.dim = ds.Dim
	n.hidden = n.Hidden
	if n.hidden == 0 {
		n.hidden = (ds.Dim + 2) / 2
		if n.hidden < 2 {
			n.hidden = 2
		}
	}
	lr := n.LearningRate
	if lr == 0 {
		lr = 0.3
	}
	mom := n.Momentum
	epochs := n.Epochs
	if epochs == 0 {
		epochs = 500
	}

	// Standardize features: MLPs are scale-sensitive.
	n.fitScaler(ds)
	xs := make([][]float64, ds.Len())
	for i, x := range ds.X {
		xs[i] = n.transform(x)
	}

	rng := rand.New(rand.NewSource(n.Seed + 777))
	n.w1 = make([][]float64, n.hidden)
	n.b1 = make([]float64, n.hidden)
	n.w2 = make([]float64, n.hidden)
	init := 1 / math.Sqrt(float64(ds.Dim))
	for h := 0; h < n.hidden; h++ {
		n.w1[h] = make([]float64, ds.Dim)
		for d := 0; d < ds.Dim; d++ {
			n.w1[h][d] = (rng.Float64()*2 - 1) * init
		}
		n.w2[h] = (rng.Float64()*2 - 1) / math.Sqrt(float64(n.hidden))
	}

	// Momentum buffers.
	vw1 := make([][]float64, n.hidden)
	for h := range vw1 {
		vw1[h] = make([]float64, ds.Dim)
	}
	vb1 := make([]float64, n.hidden)
	vw2 := make([]float64, n.hidden)
	var vb2 float64

	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}
	hid := make([]float64, n.hidden)

	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			x := xs[i]
			// Forward.
			for h := 0; h < n.hidden; h++ {
				z := n.b1[h]
				w := n.w1[h]
				for d, xv := range x {
					z += w[d] * xv
				}
				hid[h] = ml.Sigmoid(z)
			}
			z2 := n.b2
			for h := 0; h < n.hidden; h++ {
				z2 += n.w2[h] * hid[h]
			}
			out := ml.Sigmoid(z2)

			// Backward (cross-entropy + sigmoid → delta = out - y).
			y := float64(ds.Y[i])
			dOut := out - y
			for h := 0; h < n.hidden; h++ {
				gw2 := dOut*hid[h] + n.L2*n.w2[h]
				vw2[h] = mom*vw2[h] - lr*gw2
				dHid := dOut * n.w2[h] * hid[h] * (1 - hid[h])
				w, vw := n.w1[h], vw1[h]
				for d, xv := range x {
					g := dHid*xv + n.L2*w[d]
					vw[d] = mom*vw[d] - lr*g
					w[d] += vw[d]
				}
				vb1[h] = mom*vb1[h] - lr*dHid
				n.b1[h] += vb1[h]
				n.w2[h] += vw2[h]
			}
			vb2 = mom*vb2 - lr*dOut
			n.b2 += vb2
		}
	}
	n.fitted = true
	return nil
}

func (n *Network) fitScaler(ds *ml.Dataset) {
	n.mean = make([]float64, ds.Dim)
	n.scale = make([]float64, ds.Dim)
	cnt := float64(ds.Len())
	for _, x := range ds.X {
		for k, i := range x.Ind {
			n.mean[i] += x.Val[k]
		}
	}
	for d := range n.mean {
		n.mean[d] /= cnt
	}
	for _, x := range ds.X {
		dense := x.Dense(ds.Dim)
		for d, v := range dense {
			diff := v - n.mean[d]
			n.scale[d] += diff * diff
		}
	}
	for d := range n.scale {
		s := math.Sqrt(n.scale[d] / cnt)
		if s < 1e-9 {
			s = 1
		}
		n.scale[d] = s
	}
}

func (n *Network) transform(x ml.Vector) []float64 {
	dense := x.Dense(n.dim)
	for d, v := range dense {
		dense[d] = (v - n.mean[d]) / n.scale[d]
	}
	return dense
}

// Prob returns the network output, interpreted as P(legitimate|x).
func (n *Network) Prob(x ml.Vector) float64 {
	if !n.fitted {
		return 0.5
	}
	in := n.transform(x)
	z2 := n.b2
	for h := 0; h < n.hidden; h++ {
		z := n.b1[h]
		w := n.w1[h]
		for d, xv := range in {
			z += w[d] * xv
		}
		z2 += n.w2[h] * ml.Sigmoid(z)
	}
	return ml.Sigmoid(z2)
}

// Predict thresholds Prob at 0.5.
func (n *Network) Predict(x ml.Vector) int { return ml.PredictFromProb(n.Prob(x)) }

var (
	_ ml.Classifier = (*Network)(nil)
	_ ml.Named      = (*Network)(nil)
)
