package vectorize

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomDocs builds random documents over a shared skewed vocabulary,
// with some out-of-vocabulary terms mixed in.
func randomDocs(rng *rand.Rand, nDocs, nTerms int) [][]string {
	vocab := make([]string, nTerms)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("term%04d", i)
	}
	docs := make([][]string, nDocs)
	for d := range docs {
		doc := make([]string, rng.Intn(120))
		for j := range doc {
			if rng.Intn(10) == 0 {
				doc[j] = fmt.Sprintf("oov%d", rng.Intn(50))
			} else {
				// Zipf-ish skew: low indices recur often.
				doc[j] = vocab[rng.Intn(1+rng.Intn(nTerms))]
			}
		}
		docs[d] = doc
	}
	return docs
}

func vectorsEqual(a, b []float64, ai, bi []int32) bool {
	if len(ai) != len(bi) || len(a) != len(b) {
		return false
	}
	for k := range ai {
		if ai[k] != bi[k] || a[k] != b[k] {
			return false
		}
	}
	return true
}

// Property: the scratch-buffer Vectorizer matches Vocabulary.Counts and
// Vocabulary.TFIDF bit for bit across many random documents, reusing
// one Vectorizer throughout (so stale-scratch bugs would surface).
func TestVectorizerMatchesVocabularyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	docs := randomDocs(rng, 200, 500)
	v := BuildVocabulary(docs[:100]) // half the docs stay partially OOV
	z := NewVectorizer(v)
	for i, doc := range docs {
		wantC, gotC := v.Counts(doc), z.Counts(doc)
		if !vectorsEqual(wantC.Val, gotC.Val, wantC.Ind, gotC.Ind) {
			t.Fatalf("doc %d: Counts mismatch:\n got %v %v\nwant %v %v", i, gotC.Ind, gotC.Val, wantC.Ind, wantC.Val)
		}
		wantT, gotT := v.TFIDF(doc), z.TFIDF(doc)
		if !vectorsEqual(wantT.Val, gotT.Val, wantT.Ind, gotT.Ind) {
			t.Fatalf("doc %d: TFIDF mismatch:\n got %v %v\nwant %v %v", i, gotT.Ind, gotT.Val, wantT.Ind, wantT.Val)
		}
	}
}

// The IDF vector is memoized per fitted vocabulary and invalidated when
// more documents are folded in.
func TestIDFVectorMemoized(t *testing.T) {
	docs := [][]string{{"a", "b"}, {"b", "c"}}
	v := BuildVocabulary(docs)
	idf1 := v.IDFVector()
	idf2 := v.IDFVector()
	if &idf1[0] != &idf2[0] {
		t.Error("IDFVector not memoized: distinct slices for an unchanged vocabulary")
	}
	for i := range idf1 {
		if idf1[i] != v.IDF(i) {
			t.Fatalf("IDFVector[%d] = %v, want IDF = %v", i, idf1[i], v.IDF(i))
		}
	}
	v.AddDocument([]string{"c", "d"})
	idf3 := v.IDFVector()
	if len(idf3) != v.Size() {
		t.Fatalf("stale IDF vector: %d entries for %d terms", len(idf3), v.Size())
	}
	for i := range idf3 {
		if idf3[i] != v.IDF(i) {
			t.Fatalf("post-growth IDFVector[%d] = %v, want %v", i, idf3[i], v.IDF(i))
		}
	}
}

// A Vectorizer built before vocabulary growth keeps working after it.
func TestVectorizerSurvivesVocabularyGrowth(t *testing.T) {
	v := BuildVocabulary([][]string{{"a", "b"}})
	z := NewVectorizer(v)
	z.TFIDF([]string{"a"})
	v.AddDocument([]string{"c", "d", "e"})
	doc := []string{"a", "c", "e", "e"}
	want, got := v.TFIDF(doc), z.TFIDF(doc)
	if !vectorsEqual(want.Val, got.Val, want.Ind, got.Ind) {
		t.Fatalf("post-growth mismatch: got %v %v, want %v %v", got.Ind, got.Val, want.Ind, want.Val)
	}
}

// Allocation regression: steady-state sparse vectorization allocates
// only the two result slices, independent of vocabulary size.
func TestVectorizerAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	docs := randomDocs(rng, 64, 2000)
	v := BuildVocabulary(docs)
	z := NewVectorizer(v)
	doc := docs[0]
	z.TFIDF(doc) // warm scratch
	if allocs := testing.AllocsPerRun(100, func() {
		z.TFIDF(doc)
	}); allocs > 2 {
		t.Errorf("Vectorizer.TFIDF allocates %.1f times per run, want <= 2 (Ind+Val)", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		z.Counts(doc)
	}); allocs > 2 {
		t.Errorf("Vectorizer.Counts allocates %.1f times per run, want <= 2 (Ind+Val)", allocs)
	}
}

// Corpus.Dataset (now Vectorizer-backed) must keep producing the exact
// per-document vectors of the method-per-document path.
func TestCorpusDatasetMatchesPerDocument(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	docs := randomDocs(rng, 50, 300)
	y := make([]int, len(docs))
	for i := range y {
		y[i] = i % 2
	}
	c := NewCorpus(docs, y, nil)
	for _, w := range []Weighting{WeightTFIDF, WeightCounts} {
		ds := c.Dataset(w)
		for i, doc := range docs {
			var want = c.Vocab.TFIDF(doc)
			if w == WeightCounts {
				want = c.Vocab.Counts(doc)
			}
			got := ds.X[i]
			if !vectorsEqual(want.Val, got.Val, want.Ind, got.Ind) {
				t.Fatalf("weighting %d doc %d: dataset vector differs from per-document path", w, i)
			}
		}
	}
}
