package core

import (
	"bytes"
	"testing"
)

func TestVerifierSaveLoadRoundTrip(t *testing.T) {
	snap := testSnapshot(t, 1)
	for _, kind := range []ClassifierKind{NBM, SVM, J48, MLP} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			if kind == MLP && testing.Short() {
				t.Skip("MLP training is slow; skipped in -short")
			}
			v, err := Train(snap, Options{Classifier: kind, Terms: 250, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := v.Save(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := LoadVerifier(&buf)
			if err != nil {
				t.Fatal(err)
			}

			orig := v.Assess(snap.Pharmacies)
			back := restored.Assess(snap.Pharmacies)
			for i := range orig {
				if orig[i].Legitimate != back[i].Legitimate {
					t.Fatalf("pharmacy %s: verdict changed after reload", orig[i].Domain)
				}
				if diff := orig[i].TextProb - back[i].TextProb; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("pharmacy %s: text prob drifted %v", orig[i].Domain, diff)
				}
				if diff := orig[i].TrustScore - back[i].TrustScore; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("pharmacy %s: trust drifted %v", orig[i].Domain, diff)
				}
			}
		})
	}
}

func TestFingerprintRoundTripStable(t *testing.T) {
	snap := testSnapshot(t, 1)
	v, err := Train(snap, Options{Classifier: SVM, Terms: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fp := v.Fingerprint()
	if len(fp) != 64 {
		t.Fatalf("Fingerprint() = %q, want 64 hex chars", fp)
	}

	// Load(Save(v)) must report the same identity Train computed…
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadVerifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Fingerprint(); got != fp {
		t.Errorf("fingerprint changed across save/load: %s → %s", fp, got)
	}

	// …and so must a second round trip (byte-idempotent Save).
	var buf2 bytes.Buffer
	if err := restored.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	again, err := LoadVerifier(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Fingerprint(); got != fp {
		t.Errorf("fingerprint drifted on second round trip: %s → %s", fp, got)
	}

	// A differently configured model is a different identity.
	v2, err := Train(snap, Options{Classifier: SVM, Terms: 250, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Fingerprint() == fp {
		t.Error("distinct models share a fingerprint")
	}
}

func TestLoadVerifierGarbage(t *testing.T) {
	if _, err := LoadVerifier(bytes.NewBufferString("{oops")); err == nil {
		t.Error("garbage must error")
	}
	if _, err := LoadVerifier(bytes.NewBufferString(`{"textKind":"NOPE","vocabulary":{},"text":{},"network":{}}`)); err == nil {
		t.Error("unknown classifier kind must error")
	}
}

func TestSaveUnfittedClassifiersRejected(t *testing.T) {
	// A verifier always holds fitted models, but the underlying
	// classifiers must refuse marshaling when unfitted — covered in
	// their packages; here we just ensure Save produces valid JSON that
	// LoadVerifier accepts repeatedly (idempotence).
	snap := testSnapshot(t, 1)
	v, err := Train(snap, Options{Classifier: SVM, Terms: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := v.Save(&a); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadVerifier(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("save→load→save is not idempotent")
	}
}
