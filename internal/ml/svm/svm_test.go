package svm

import (
	"math"
	"math/rand"
	"testing"

	"pharmaverify/internal/ml"
)

func linearlySeparable(n int, seed int64, margin float64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{Dim: 5}
	for i := 0; i < n; i++ {
		y := i % 2
		shift := -margin
		if y == ml.Legitimate {
			shift = margin
		}
		v := make([]float64, 5)
		v[0] = shift + rng.NormFloat64()*0.2
		v[1] = shift/2 + rng.NormFloat64()*0.2
		for j := 2; j < 5; j++ {
			v[j] = rng.NormFloat64()
		}
		ds.Add(ml.NewVector(v), y, "")
	}
	return ds
}

func trainAcc(clf ml.Classifier, ds *ml.Dataset) float64 {
	correct := 0
	for i, x := range ds.X {
		if clf.Predict(x) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func TestLinearSeparableData(t *testing.T) {
	ds := linearlySeparable(300, 1, 1.5)
	clf := NewLinear()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := trainAcc(clf, ds); acc < 0.98 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestLinearSparseTextLike(t *testing.T) {
	// High-dimensional sparse data: class decided by presence of a few
	// indicator terms.
	rng := rand.New(rand.NewSource(2))
	ds := &ml.Dataset{Dim: 1000}
	for i := 0; i < 400; i++ {
		y := i % 2
		m := map[int]float64{}
		for k := 0; k < 15; k++ {
			m[rng.Intn(1000)] = 1 + rng.Float64()
		}
		if y == ml.Legitimate {
			m[1] = 2
			m[2] = 1.5
		} else {
			m[3] = 2
			m[4] = 1.5
		}
		ds.Add(ml.FromMap(m), y, "")
	}
	clf := NewLinear()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := trainAcc(clf, ds); acc < 0.97 {
		t.Errorf("sparse accuracy = %v", acc)
	}
}

func TestLinearDeterministic(t *testing.T) {
	ds := linearlySeparable(200, 3, 1)
	a, b := NewLinear(), NewLinear()
	a.Seed, b.Seed = 9, 9
	if err := a.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for i := range a.w {
		if a.w[i] != b.w[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestLinearCalibratedProbMonotone(t *testing.T) {
	ds := linearlySeparable(300, 4, 1.5)
	clf := NewLinear()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// Probability must increase with the decision value.
	xLow := ml.NewVector([]float64{-3, -1.5, 0, 0, 0})
	xHigh := ml.NewVector([]float64{3, 1.5, 0, 0, 0})
	pl, ph := clf.Prob(xLow), clf.Prob(xHigh)
	if !(pl < 0.5 && ph > 0.5 && pl < ph) {
		t.Errorf("calibration not monotone: p(low)=%v p(high)=%v", pl, ph)
	}
}

func TestLinearUncalibratedHardProb(t *testing.T) {
	ds := linearlySeparable(200, 5, 1.5)
	clf := NewLinear()
	clf.Calibrate = false
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		p := clf.Prob(x)
		if p != 0 && p != 1 {
			t.Fatalf("uncalibrated Prob must be 0/1, got %v", p)
		}
		if ml.PredictFromProb(p) != clf.Predict(x) {
			t.Fatal("hard prob disagrees with Predict")
		}
	}
}

func TestLinearPredictMatchesDecisionSign(t *testing.T) {
	ds := linearlySeparable(200, 6, 0.5)
	clf := NewLinear()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		want := ml.Illegitimate
		if clf.Decision(x) >= 0 {
			want = ml.Legitimate
		}
		if clf.Predict(x) != want {
			t.Fatal("Predict inconsistent with Decision")
		}
	}
}

func TestLinearBiasLearned(t *testing.T) {
	// All-positive features, class depends on magnitude: needs a bias.
	rng := rand.New(rand.NewSource(7))
	ds := &ml.Dataset{Dim: 1}
	for i := 0; i < 200; i++ {
		y := i % 2
		v := 1 + rng.Float64()*0.5
		if y == ml.Legitimate {
			v = 3 + rng.Float64()*0.5
		}
		ds.Add(ml.NewVector([]float64{v}), y, "")
	}
	clf := NewLinear()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := trainAcc(clf, ds); acc < 0.99 {
		t.Errorf("accuracy = %v (bias not learned?)", acc)
	}
	if clf.Bias() == 0 {
		t.Error("bias is exactly zero on shifted data")
	}
}

func TestLinearErrors(t *testing.T) {
	if err := NewLinear().Fit(&ml.Dataset{Dim: 1}); err != ml.ErrEmptyDataset {
		t.Errorf("empty: %v", err)
	}
	one := &ml.Dataset{Dim: 1}
	one.Add(ml.NewVector([]float64{1}), ml.Legitimate, "")
	if err := NewLinear().Fit(one); err != ml.ErrOneClass {
		t.Errorf("one class: %v", err)
	}
}

func TestLinearUnfitted(t *testing.T) {
	clf := NewLinear()
	if p := clf.Prob(ml.NewVector([]float64{1})); p != 0.5 {
		t.Errorf("unfitted Prob = %v", p)
	}
	if w := clf.Weights(); w != nil {
		t.Error("unfitted Weights must be nil")
	}
}

func TestLinearWeightsCopied(t *testing.T) {
	ds := linearlySeparable(100, 8, 1)
	clf := NewLinear()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	w := clf.Weights()
	w[0] += 1000
	if clf.Weights()[0] == w[0] {
		t.Error("Weights returned internal slice")
	}
}

func TestLinearCBoundsAlpha(t *testing.T) {
	// Noisy, overlapping classes: small C must not blow up weights.
	rng := rand.New(rand.NewSource(9))
	ds := &ml.Dataset{Dim: 2}
	for i := 0; i < 200; i++ {
		y := i % 2
		mu := -0.1
		if y == ml.Legitimate {
			mu = 0.1
		}
		ds.Add(ml.NewVector([]float64{mu + rng.NormFloat64(), rng.NormFloat64()}), y, "")
	}
	small := &Linear{C: 0.01, Calibrate: true}
	if err := small.Fit(ds); err != nil {
		t.Fatal(err)
	}
	norm := 0.0
	for _, w := range small.Weights() {
		norm += w * w
	}
	if norm > 1 {
		t.Errorf("small-C weight norm = %v, expected heavily regularized", norm)
	}
}

func TestPlattFitSeparated(t *testing.T) {
	scores := []float64{-2, -1.5, -1, 1, 1.5, 2}
	labels := []int{0, 0, 0, 1, 1, 1}
	a, b := plattFit(scores, labels)
	// P(y=1|f) = sigmoid(-(a f + b)) must be increasing in f => a < 0.
	if a >= 0 {
		t.Errorf("Platt slope a = %v, want negative", a)
	}
	p := func(f float64) float64 { return ml.Sigmoid(-(a*f + b)) }
	if !(p(2) > 0.5 && p(-2) < 0.5) {
		t.Errorf("calibrated probs wrong: p(2)=%v p(-2)=%v", p(2), p(-2))
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		t.Error("NaN Platt parameters")
	}
}

func BenchmarkLinearFitSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	ds := &ml.Dataset{Dim: 2000}
	for i := 0; i < 500; i++ {
		m := map[int]float64{}
		for k := 0; k < 40; k++ {
			m[rng.Intn(2000)] = rng.Float64()
		}
		if i%2 == ml.Legitimate {
			m[0] = 2
		} else {
			m[1] = 2
		}
		ds.Add(ml.FromMap(m), i%2, "")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := NewLinear()
		clf.MaxIter = 100
		if err := clf.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}
