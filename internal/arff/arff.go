// Package arff reads and writes Weka ARFF files for the repository's
// datasets. The paper ran its classifiers in Weka 3; exporting our
// feature matrices in ARFF lets anyone replay an experiment inside
// Weka and cross-check this reimplementation against the original
// toolchain.
//
// The writer emits the sparse ARFF variant ({index value, ...}), which
// is the natural fit for TF-IDF term vectors; the reader accepts both
// sparse and dense instance lines. Only numeric attributes plus a final
// binary nominal class attribute are supported — exactly the shape of
// every dataset in this system.
package arff

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pharmaverify/internal/ml"
)

// classValues are the nominal values of the class attribute, indexed by
// ml label (0 = illegitimate, 1 = legitimate).
var classValues = [2]string{"illegitimate", "legitimate"}

// Write serializes a dataset as sparse ARFF. attrNames optionally
// provides attribute names (e.g. vocabulary terms); missing names fall
// back to "a<i>". The relation name is sanitized into a single token.
func Write(w io.Writer, relation string, ds *ml.Dataset, attrNames []string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "@relation %s\n\n", sanitizeToken(relation))
	for i := 0; i < ds.Dim; i++ {
		name := ""
		if i < len(attrNames) {
			name = attrNames[i]
		}
		if name == "" {
			name = "a" + strconv.Itoa(i)
		}
		fmt.Fprintf(bw, "@attribute %s numeric\n", sanitizeToken(name))
	}
	fmt.Fprintf(bw, "@attribute class {%s,%s}\n\n@data\n", classValues[0], classValues[1])

	for n, x := range ds.X {
		bw.WriteByte('{')
		for k, idx := range x.Ind {
			if k > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%d %s", idx, formatValue(x.Val[k]))
		}
		if x.Len() > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "%d %s}\n", ds.Dim, classValues[ds.Y[n]])
	}
	return bw.Flush()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeToken makes a string safe as an unquoted ARFF identifier.
func sanitizeToken(s string) string {
	if s == "" {
		return "unnamed"
	}
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Read parses an ARFF file written by Write (or a compatible file with
// numeric attributes and a trailing binary class). It returns the
// dataset and the attribute names.
func Read(r io.Reader) (*ml.Dataset, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var attrs []string
	var classAttr []string
	inData := false
	ds := &ml.Dataset{}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "@relation"):
			// ignored
		case strings.HasPrefix(lower, "@attribute"):
			if inData {
				return nil, nil, fmt.Errorf("arff: line %d: @attribute after @data", lineNo)
			}
			name, typ, err := parseAttribute(line)
			if err != nil {
				return nil, nil, fmt.Errorf("arff: line %d: %w", lineNo, err)
			}
			if strings.HasPrefix(typ, "{") {
				vals := strings.Trim(typ, "{}")
				for _, v := range strings.Split(vals, ",") {
					classAttr = append(classAttr, strings.TrimSpace(v))
				}
			} else {
				if classAttr != nil {
					return nil, nil, fmt.Errorf("arff: line %d: numeric attribute after class", lineNo)
				}
				attrs = append(attrs, name)
			}
		case strings.HasPrefix(lower, "@data"):
			if len(classAttr) != 2 {
				return nil, nil, fmt.Errorf("arff: need a binary class attribute, got %v", classAttr)
			}
			ds.Dim = len(attrs)
			inData = true
		case inData:
			x, y, err := parseInstance(line, len(attrs), classAttr)
			if err != nil {
				return nil, nil, fmt.Errorf("arff: line %d: %w", lineNo, err)
			}
			ds.Add(x, y, "")
		default:
			return nil, nil, fmt.Errorf("arff: line %d: unexpected content %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if !inData {
		return nil, nil, fmt.Errorf("arff: missing @data section")
	}
	return ds, attrs, nil
}

func parseAttribute(line string) (name, typ string, err error) {
	rest := strings.TrimSpace(line[len("@attribute"):])
	if rest == "" {
		return "", "", fmt.Errorf("empty attribute declaration")
	}
	if rest[0] == '\'' || rest[0] == '"' {
		q := rest[0]
		end := strings.IndexByte(rest[1:], q)
		if end < 0 {
			return "", "", fmt.Errorf("unterminated quoted attribute name")
		}
		name = rest[1 : 1+end]
		typ = strings.TrimSpace(rest[2+end:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", "", fmt.Errorf("attribute %q has no type", rest)
		}
		name = rest[:sp]
		typ = strings.TrimSpace(rest[sp+1:])
	}
	if typ == "" {
		return "", "", fmt.Errorf("attribute %q has no type", name)
	}
	if !strings.HasPrefix(typ, "{") && !strings.EqualFold(typ, "numeric") && !strings.EqualFold(typ, "real") {
		return "", "", fmt.Errorf("unsupported attribute type %q", typ)
	}
	return name, typ, nil
}

func parseInstance(line string, dim int, classAttr []string) (ml.Vector, int, error) {
	if strings.HasPrefix(line, "{") {
		return parseSparse(line, dim, classAttr)
	}
	return parseDense(line, dim, classAttr)
}

func parseSparse(line string, dim int, classAttr []string) (ml.Vector, int, error) {
	body := strings.TrimSpace(line)
	if !strings.HasSuffix(body, "}") {
		return ml.Vector{}, 0, fmt.Errorf("unterminated sparse instance")
	}
	body = strings.TrimSpace(body[1 : len(body)-1])
	m := map[int]float64{}
	y := -1
	if body != "" {
		for _, pair := range strings.Split(body, ",") {
			fields := strings.Fields(strings.TrimSpace(pair))
			if len(fields) != 2 {
				return ml.Vector{}, 0, fmt.Errorf("bad sparse entry %q", pair)
			}
			idx, err := strconv.Atoi(fields[0])
			if err != nil {
				return ml.Vector{}, 0, fmt.Errorf("bad sparse index %q", fields[0])
			}
			if idx == dim {
				var cerr error
				y, cerr = classIndex(fields[1], classAttr)
				if cerr != nil {
					return ml.Vector{}, 0, cerr
				}
				continue
			}
			if idx < 0 || idx > dim {
				return ml.Vector{}, 0, fmt.Errorf("sparse index %d out of range", idx)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return ml.Vector{}, 0, fmt.Errorf("bad sparse value %q", fields[1])
			}
			m[idx] = v
		}
	}
	if y < 0 {
		// Sparse ARFF omits the class when it equals the first nominal
		// value (Weka convention: index 0 is the "zero" value).
		y = 0
	}
	return ml.FromMap(m), y, nil
}

func parseDense(line string, dim int, classAttr []string) (ml.Vector, int, error) {
	parts := strings.Split(line, ",")
	if len(parts) != dim+1 {
		return ml.Vector{}, 0, fmt.Errorf("instance has %d fields, want %d", len(parts), dim+1)
	}
	m := map[int]float64{}
	for i := 0; i < dim; i++ {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
		if err != nil {
			return ml.Vector{}, 0, fmt.Errorf("bad value %q", parts[i])
		}
		if v != 0 {
			m[i] = v
		}
	}
	y, err := classIndex(strings.TrimSpace(parts[dim]), classAttr)
	if err != nil {
		return ml.Vector{}, 0, err
	}
	return ml.FromMap(m), y, nil
}

func classIndex(v string, classAttr []string) (int, error) {
	v = strings.Trim(v, "'\"")
	for i, c := range classAttr {
		if c == v {
			return i, nil
		}
	}
	return 0, fmt.Errorf("unknown class value %q (want one of %v)", v, classAttr)
}
