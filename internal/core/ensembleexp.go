package core

import (
	"context"
	"fmt"

	"pharmaverify/internal/dataset"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/featcache"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/ml/ensemble"
	"pharmaverify/internal/parallel"
)

// EnsembleConfig parameterizes the ensemble-selection experiment
// (§6.3.3), which combines the text and network model libraries.
type EnsembleConfig struct {
	// Terms is the TF-IDF subsample size (the paper reports the
	// 1000-word case; default 1000).
	Terms int
	// Folds and Seed as elsewhere.
	Folds int
	Seed  int64
	// MaxRounds bounds the greedy selection (default 20).
	MaxRounds int
	// Network configures the network library member.
	Network NetworkConfig
	// Workers bounds fold-level concurrency (0 = process default,
	// 1 = sequential). Results are identical at every worker count.
	Workers int
}

func (c EnsembleConfig) withDefaults() EnsembleConfig {
	if c.Terms == 0 {
		c.Terms = 1000
	}
	if c.Folds == 0 {
		c.Folds = 3
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 20
	}
	return c
}

// ensembleMember is one library model with its own feature view.
type ensembleMember struct {
	name string
	clf  ml.Classifier
	ds   *ml.Dataset // feature view aligned with snapshot order
}

// EnsembleCV runs cross-validated ensemble selection over a library of
// heterogeneous models: NBM on term counts, SVM and J48 on TF-IDF, MLP
// on N-Gram-Graph similarities, and Naïve Bayes on TrustRank scores.
// Within each fold the training split is divided into a build portion
// (model fitting) and a hillclimb portion (greedy selection), as in
// Caruana et al.
func EnsembleCV(snap *dataset.Snapshot, cfg EnsembleConfig) (eval.CVResult, error) {
	return EnsembleCVCtx(context.Background(), snap, cfg)
}

// EnsembleCVCtx is EnsembleCV with cooperative cancellation: the fold
// fan-out and the per-fold library training both stop dispatching once
// ctx is cancelled, drain, and surface ctx's error.
func EnsembleCVCtx(ctx context.Context, snap *dataset.Snapshot, cfg EnsembleConfig) (eval.CVResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	labels := snap.Labels()
	names := snap.Domains()

	labelDS := &ml.Dataset{Dim: 1, X: make([]ml.Vector, len(labels)), Y: labels}
	folds := eval.StratifiedKFold(labelDS, cfg.Folds, cfg.Seed)

	// Feature views shared across folds (text representations are fixed
	// over the corpus, like the Weka ARFF inputs of the paper).
	countsDS := TFIDFDataset(snap, TextConfig{Classifier: NBM, Terms: cfg.Terms, Seed: cfg.Seed})
	tfidfDS := TFIDFDataset(snap, TextConfig{Classifier: SVM, Terms: cfg.Terms, Seed: cfg.Seed})
	// NGG features come from the shared training plane: the rendered
	// documents and their prebuilt graphs are fold-independent; only the
	// class graphs (merged from each fold's build split) differ per
	// fold. One acquire spans every fold, so the graphs are built once
	// for the whole run.
	plane := trainingPlaneFor(snap, cfg.Terms, cfg.Seed)
	plane.acquire()
	defer plane.release()
	// The grain autotuner splits the worker budget between the fold
	// fan-out and each fold's document pass.
	plan := parallel.PlanGrainFor("ensemble-cv", parallel.Workers(cfg.Workers), len(folds), len(plane.Docs))

	// Folds are fully independent here — every random choice derives
	// from cfg.Seed+fold — so they fan out without a pre-draw phase.
	frs, err := parallel.MapErrCtx(ctx, len(folds), plan.FoldWorkers, func(f int) (eval.FoldResult, error) {
		trainIdx, testIdx := folds.TrainTest(f)

		// Split training into build (2/3) and hillclimb (1/3).
		trainLabels := &ml.Dataset{Dim: 1, X: make([]ml.Vector, len(trainIdx)), Y: pick(labels, trainIdx)}
		inner := eval.StratifiedKFold(trainLabels, 3, cfg.Seed+int64(f))
		buildRel, hillRel := inner.TrainTest(0)
		buildIdx := pick(trainIdx, buildRel)
		hillIdx := pick(trainIdx, hillRel)

		// Network features: TrustRank seeded with the build legitimate
		// pharmacies only, so hillclimb instances are held out.
		seeds := seedMap(snap, buildIdx, cfg.Network.Variant)
		netScores, err := NetworkScores(snap, seeds, cfg.Network)
		if err != nil {
			return eval.FoldResult{}, err
		}
		netDS := scoreDataset(netScores, labels, names)

		// NGG features: class graphs from half of the build split. The
		// fold's matrix is deterministic given (snapshot, terms, folds,
		// seed, fold), so it is memoized like the other feature views —
		// repeated ensemble runs (re-verification sweeps, the daemon's
		// retrain loop) reuse it outright.
		foldKey := fmt.Sprintf("nggfold|%s|%d|%d|%d|%d", snap.ContentHash(), cfg.Terms, cfg.Folds, cfg.Seed, f)
		v, _ := featureCache.DoScoped(featcache.ScopeTraining, foldKey, func() (any, error) {
			return plane.featureDataset(buildIdx[:len(buildIdx)/2], plan.DocWorkers, plan.DocGrain), nil
		})
		nggDS := v.(*ml.Dataset)

		members := []ensembleMember{
			{name: "NBM(text)", ds: countsDS},
			{name: "SVM(text)", ds: tfidfDS},
			{name: "J48(text)", ds: tfidfDS},
			{name: "MLP(ngg)", ds: nggDS},
			{name: "NB(network)", ds: netDS},
		}
		kinds := []ClassifierKind{NBM, SVM, J48, MLP, NB}
		// Library members are independent given the shared feature
		// views, so they train concurrently too.
		clfs, err := parallel.MapErrCtx(ctx, len(members), cfg.Workers, func(m int) (ml.Classifier, error) {
			clf, err := NewClassifier(kinds[m], cfg.Seed)
			if err != nil {
				return nil, err
			}
			if err := clf.Fit(members[m].ds.Subset(buildIdx)); err != nil {
				return nil, err
			}
			return clf, nil
		})
		if err != nil {
			return eval.FoldResult{}, err
		}
		for m := range members {
			members[m].clf = clfs[m]
		}

		// Greedy selection on the hillclimb split.
		probs := make([][]float64, len(members))
		hillLabels := pick(labels, hillIdx)
		for m := range members {
			p := make([]float64, len(hillIdx))
			for j, i := range hillIdx {
				p[j] = members[m].clf.Prob(members[m].ds.X[i])
			}
			probs[m] = p
		}
		selected := ensemble.SelectGreedy(probs, hillLabels, 2, cfg.MaxRounds, nil)

		// Evaluate the averaged bag on the test fold.
		fr := eval.FoldResult{TestIndex: testIdx}
		for _, i := range testIdx {
			modelProbs := make([]float64, len(members))
			for m := range members {
				modelProbs[m] = members[m].clf.Prob(members[m].ds.X[i])
			}
			p := ensemble.AverageSelected(selected, modelProbs)
			fr.Scores = append(fr.Scores, p)
			fr.Labels = append(fr.Labels, labels[i])
			fr.Confusion.Observe(labels[i], ml.PredictFromProb(p))
		}
		fr.AUC = eval.AUC(fr.Scores, fr.Labels)
		return fr, nil
	})
	if err != nil {
		return eval.CVResult{}, err
	}
	return eval.CVResult{Folds: frs}, nil
}

// CombinedFeaturesCV is the future-work ablation (§7b): a single
// classifier over the concatenation of TF-IDF text features and the
// TrustRank network score.
func CombinedFeaturesCV(snap *dataset.Snapshot, clf ClassifierKind, terms int, folds int, seed int64, net NetworkConfig) (eval.CVResult, error) {
	if folds == 0 {
		folds = 3
	}
	labels := snap.Labels()
	names := snap.Domains()
	text := TFIDFDataset(snap, TextConfig{Classifier: clf, Terms: terms, Seed: seed})

	labelDS := &ml.Dataset{Dim: 1, X: make([]ml.Vector, len(labels)), Y: labels}
	kf := eval.StratifiedKFold(labelDS, folds, seed)

	frs, err := parallel.MapErr(len(kf), 0, func(f int) (eval.FoldResult, error) {
		trainIdx, testIdx := kf.TrainTest(f)
		seeds := seedMap(snap, trainIdx, net.Variant)
		netScores, err := NetworkScores(snap, seeds, net)
		if err != nil {
			return eval.FoldResult{}, err
		}
		// Concatenate: text dims + 1 trust dim.
		ds := &ml.Dataset{Dim: text.Dim + 1}
		for i := range labels {
			x := text.X[i]
			ind := append(append([]int32{}, x.Ind...), int32(text.Dim))
			val := append(append([]float64{}, x.Val...), netScores[i])
			ds.Add(ml.Vector{Ind: ind, Val: val}, labels[i], names[i])
		}
		c, err := NewClassifier(clf, seed)
		if err != nil {
			return eval.FoldResult{}, err
		}
		if err := c.Fit(ds.Subset(trainIdx)); err != nil {
			return eval.FoldResult{}, err
		}
		fr := eval.FoldResult{TestIndex: testIdx}
		for _, i := range testIdx {
			p := c.Prob(ds.X[i])
			fr.Scores = append(fr.Scores, p)
			fr.Labels = append(fr.Labels, labels[i])
			fr.Confusion.Observe(labels[i], ml.PredictFromProb(p))
		}
		fr.AUC = eval.AUC(fr.Scores, fr.Labels)
		return fr, nil
	})
	if err != nil {
		return eval.CVResult{}, err
	}
	return eval.CVResult{Folds: frs}, nil
}

func pick(src []int, idx []int) []int {
	out := make([]int, len(idx))
	for j, i := range idx {
		out[j] = src[i]
	}
	return out
}
