package ml

import "testing"

func benchVector(n, stride, offset int) Vector {
	var v Vector
	for i := 0; i < n; i++ {
		v.Ind = append(v.Ind, int32(offset+i*stride))
		v.Val = append(v.Val, float64(i%7)+0.5)
	}
	return v
}

// BenchmarkLerp measures the SMOTE interpolation hot path. The linear
// merge replaces a per-call map build followed by a sort of its keys.
func BenchmarkLerp(b *testing.B) {
	a := benchVector(300, 3, 0)  // overlaps c on multiples of 6
	c := benchVector(300, 2, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Lerp(a, c, 0.37)
	}
}
