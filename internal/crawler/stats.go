package crawler

import "sync"

// Stats is the crawl telemetry for one domain (or, aggregated, for a
// whole snapshot build). The page-fetch counters reconcile exactly:
//
//	Attempts = Successes + Failures
//	Retries  = Attempts − (pages tried at least once)
//
// Robots.txt traffic is tracked separately so the page counters stay
// comparable to MaxPages.
type Stats struct {
	// Attempts counts page fetch attempts, including retries.
	Attempts int `json:"attempts"`
	// Retries counts attempts beyond the first per page.
	Retries int `json:"retries"`
	// Successes counts attempts that returned a document.
	Successes int `json:"successes"`
	// Failures counts attempts that returned an error.
	Failures int `json:"failures"`
	// PagesFailed counts pages lost for good: a permanent error or an
	// exhausted retry budget.
	PagesFailed int `json:"pagesFailed"`
	// Timeouts counts attempts cut off by Config.FetchTimeout.
	Timeouts int `json:"timeouts"`
	// Bytes sums the HTML bytes of successful fetches.
	Bytes int64 `json:"bytes"`
	// BreakerTrips is 1 when this domain's failure budget was exhausted
	// and the crawl degraded to the pages collected so far (aggregated:
	// the number of domains that tripped).
	BreakerTrips int `json:"breakerTrips"`
	// Cancels is 1 when this domain's crawl was interrupted by context
	// cancellation or deadline expiry before finishing, degrading to the
	// pages collected so far (aggregated: the number of interrupted
	// domains). Interrupted domains are excluded from snapshots and
	// checkpoints so a resumed run recomputes them from scratch.
	Cancels int `json:"cancels,omitempty"`
	// DomainsMissing is only set on aggregated stats: the number of
	// planned domains that a cancelled snapshot build could not finish
	// (interrupted mid-crawl or never started) — the shortfall of a
	// partial snapshot.
	DomainsMissing int `json:"domainsMissing,omitempty"`
	// RobotsAttempts and RobotsFailures count /robots.txt traffic.
	RobotsAttempts int `json:"robotsAttempts"`
	RobotsFailures int `json:"robotsFailures"`
	// RobotsUnreachable records that /robots.txt kept failing
	// transiently even after retries, so the crawl proceeded as if the
	// file were absent (allow-all). A permanent 404 does NOT set this —
	// a missing robots.txt legitimately allows everything.
	RobotsUnreachable bool `json:"robotsUnreachable,omitempty"`
}

// Add accumulates another domain's stats into s.
func (s *Stats) Add(o Stats) {
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.Successes += o.Successes
	s.Failures += o.Failures
	s.PagesFailed += o.PagesFailed
	s.Timeouts += o.Timeouts
	s.Bytes += o.Bytes
	s.BreakerTrips += o.BreakerTrips
	s.Cancels += o.Cancels
	s.DomainsMissing += o.DomainsMissing
	s.RobotsAttempts += o.RobotsAttempts
	s.RobotsFailures += o.RobotsFailures
	s.RobotsUnreachable = s.RobotsUnreachable || o.RobotsUnreachable
}

// Clone returns an independent copy of s, or nil for a nil receiver.
// Stats holds only value fields today, so the copy is deep; callers
// that hand per-crawl telemetry to long-lived consumers (the serving
// daemon's process-wide counters, cached verdicts) must use Clone
// rather than sharing the pointer, so later additions of reference
// fields cannot introduce aliasing.
func (s *Stats) Clone() *Stats {
	if s == nil {
		return nil
	}
	c := *s
	return &c
}

// Aggregator accumulates per-crawl telemetry into process-wide
// counters. It is safe for concurrent use: many requests can Add their
// crawl's Stats while others read a consistent Snapshot — the
// serving daemon's /metrics endpoint does exactly that.
type Aggregator struct {
	mu     sync.Mutex
	total  Stats
	crawls int
}

// Add accumulates one crawl's telemetry.
func (a *Aggregator) Add(o Stats) {
	a.mu.Lock()
	a.total.Add(o)
	a.crawls++
	a.mu.Unlock()
}

// Snapshot returns a copy of the accumulated totals and the number of
// crawls folded in so far.
func (a *Aggregator) Snapshot() (total Stats, crawls int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return *a.total.Clone(), a.crawls
}

// AggregateStats sums the telemetry of a CrawlAll result set.
func AggregateStats(results map[string]Result) Stats {
	var total Stats
	for _, r := range results {
		total.Add(r.Stats)
	}
	return total
}
