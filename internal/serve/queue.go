package serve

import (
	"context"
	"errors"
	"sync"
)

// errQueueFull is returned by admission.acquire when the bounded wait
// queue is already at capacity — the backpressure signal the HTTP layer
// turns into 429 + Retry-After. Shedding at admission time keeps the
// daemon's latency bounded under overload: a request either starts
// within the queue's worth of waiting or is rejected immediately,
// instead of piling up unboundedly behind slow crawls.
var errQueueFull = errors.New("serve: admission queue full")

// admission is the daemon's bounded admission control: `workers`
// requests execute concurrently, up to `depth` more wait for a slot,
// and everything beyond that is rejected. Exactness matters for the
// backpressure contract (the 429 threshold must be deterministic, not
// racy), so the waiting count is guarded by a mutex rather than
// maintained as an approximate atomic.
type admission struct {
	slots chan struct{}

	mu      sync.Mutex
	waiting int
	depth   int
}

func newAdmission(workers, depth int) *admission {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &admission{slots: make(chan struct{}, workers), depth: depth}
}

// acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. It fails fast with errQueueFull when the queue is at
// capacity, and with ctx's error when the caller's deadline expires
// while still queued.
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a free slot admits the request without queueing.
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}

	a.mu.Lock()
	if a.waiting >= a.depth {
		a.mu.Unlock()
		return errQueueFull
	}
	a.waiting++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()

	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot claimed by acquire.
func (a *admission) release() { <-a.slots }

// queued reports the number of requests currently waiting for a slot.
func (a *admission) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// inService reports the number of requests currently holding a slot.
func (a *admission) inService() int { return len(a.slots) }
