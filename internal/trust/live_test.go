package trust

import (
	"fmt"
	"sync"
	"testing"
)

func TestLiveGraphFoldReplacesAndVersions(t *testing.T) {
	g := NewLiveGraph(LiveConfig{})

	if !g.Fold("a.com", []string{"b.com", "c.com", "b.com", "a.com"}) {
		t.Fatal("first fold not admitted")
	}
	st := g.Stats()
	if st.Folds != 1 || st.Version != 1 {
		t.Fatalf("after first fold: %+v, want Folds=1 Version=1", st)
	}
	// Self-links and duplicates are dropped: a.com → {b.com, c.com}.
	if st.Nodes != 3 || st.Edges != 2 {
		t.Fatalf("after first fold: %d nodes %d edges, want 3/2", st.Nodes, st.Edges)
	}

	// Re-observing the identical endpoint set is free: no version bump.
	g.Fold("a.com", []string{"b.com", "c.com"})
	if st = g.Stats(); st.Version != 1 {
		t.Fatalf("identical refold bumped version: %+v", st)
	}

	// A changed endpoint set replaces the old one (freshest crawl wins).
	g.Fold("a.com", []string{"d.com"})
	st = g.Stats()
	if st.Version != 2 || st.Edges != 1 {
		t.Fatalf("replacing refold: %+v, want Version=2 Edges=1", st)
	}
	out, version := g.SnapshotOutbound()
	if version != 2 || len(out["a.com"]) != 1 || out["a.com"][0] != "d.com" {
		t.Fatalf("snapshot = %v (version %d), want a.com → [d.com] at version 2", out, version)
	}
	// b.com and c.com stay admitted as names even after the edge went.
	if !g.Contains("b.com") || !g.Contains("c.com") {
		t.Error("endpoint names evicted by a refold")
	}
}

func TestLiveGraphNodeBudget(t *testing.T) {
	g := NewLiveGraph(LiveConfig{MaxNodes: 3})

	if !g.Fold("a.com", []string{"b.com", "c.com", "d.com"}) {
		t.Fatal("source domain not admitted under budget")
	}
	st := g.Stats()
	// a, b, c admitted; d rejected by the bound.
	if st.Nodes != 3 || st.DroppedNames != 1 {
		t.Fatalf("stats %+v, want Nodes=3 DroppedNames=1", st)
	}
	if g.Contains("d.com") {
		t.Error("d.com admitted past the node budget")
	}

	// A never-seen source domain is rejected once the budget is gone…
	if g.Fold("e.com", []string{"a.com"}) {
		t.Error("new domain admitted past an exhausted node budget")
	}
	// …but an already-admitted domain keeps refining its edges.
	if !g.Fold("b.com", []string{"a.com", "c.com"}) {
		t.Error("admitted domain rejected on refold")
	}
	if st = g.Stats(); st.Edges != 4 {
		t.Errorf("edges = %d, want 4 (a→{b,c} plus b→{a,c})", st.Edges)
	}
}

func TestLiveGraphEndpointCap(t *testing.T) {
	g := NewLiveGraph(LiveConfig{MaxOutPerDomain: 2})
	eps := make([]string, 5)
	for i := range eps {
		eps[i] = fmt.Sprintf("ep%d.com", i)
	}
	g.Fold("farm.com", eps)
	st := g.Stats()
	if st.Edges != 2 || st.DroppedEndpoints != 3 {
		t.Fatalf("stats %+v, want Edges=2 DroppedEndpoints=3 (link farm capped)", st)
	}
}

func TestLiveGraphSnapshotIsolation(t *testing.T) {
	g := NewLiveGraph(LiveConfig{})
	g.Fold("a.com", []string{"b.com"})
	out, _ := g.SnapshotOutbound()

	// Mutating the snapshot map must not touch the live graph.
	delete(out, "a.com")
	out["x.com"] = []string{"y.com"}
	if fresh, _ := g.SnapshotOutbound(); len(fresh) != 1 || len(fresh["a.com"]) != 1 {
		t.Fatalf("snapshot mutation leaked into the graph: %v", fresh)
	}

	// Folding after the snapshot must not change the endpoint slice the
	// snapshot handed out (replace-on-fold, never mutate-in-place).
	out2, _ := g.SnapshotOutbound()
	held := out2["a.com"]
	g.Fold("a.com", []string{"c.com", "d.com"})
	if len(held) != 1 || held[0] != "b.com" {
		t.Fatalf("snapshot slice mutated by a later fold: %v", held)
	}
}

// TestLiveGraphConcurrentFolds exercises folds, reads and snapshots
// from many goroutines; it exists to run under -race (the serve/trust
// packages are on the CI race leg).
func TestLiveGraphConcurrentFolds(t *testing.T) {
	g := NewLiveGraph(LiveConfig{MaxNodes: 200, MaxOutPerDomain: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := fmt.Sprintf("d%d.com", (w*31+i)%40)
				g.Fold(d, []string{
					fmt.Sprintf("d%d.com", (i + 1) % 40),
					fmt.Sprintf("d%d.com", (i * 7) % 40),
				})
				g.Contains(d)
				if i%17 == 0 {
					out, _ := g.SnapshotOutbound()
					for _, eps := range out {
						_ = len(eps)
					}
				}
				_ = g.Version()
				_ = g.Stats()
			}
		}(w)
	}
	wg.Wait()
	st := g.Stats()
	if st.Folds != 8*200 {
		t.Errorf("folds = %d, want %d", st.Folds, 8*200)
	}
	if st.Nodes > 200 {
		t.Errorf("node budget exceeded: %d nodes", st.Nodes)
	}
}
