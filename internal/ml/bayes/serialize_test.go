package bayes

import (
	"encoding/json"
	"testing"
)

func TestMultinomialSerializeRoundTrip(t *testing.T) {
	ds := wordCountDataset(100, 50)
	clf := NewMultinomial()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(clf)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewMultinomial()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		if clf.Prob(x) != restored.Prob(x) {
			t.Fatal("probabilities changed after round trip")
		}
	}
}

func TestMultinomialMarshalUnfitted(t *testing.T) {
	if _, err := json.Marshal(NewMultinomial()); err == nil {
		t.Error("unfitted marshal must fail")
	}
}

func TestMultinomialUnmarshalBadShape(t *testing.T) {
	bad := `{"alpha":1,"dim":3,"logPrior":[0,0],"logCond":[[1],[1]]}`
	if err := json.Unmarshal([]byte(bad), NewMultinomial()); err == nil {
		t.Error("shape mismatch must fail")
	}
}

func TestGaussianSerializeRoundTrip(t *testing.T) {
	ds := gaussianDataset(100, 51)
	clf := NewGaussian()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(clf)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewGaussian()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		if clf.Prob(x) != restored.Prob(x) {
			t.Fatal("probabilities changed after round trip")
		}
	}
}

func TestGaussianMarshalUnfitted(t *testing.T) {
	if _, err := json.Marshal(NewGaussian()); err == nil {
		t.Error("unfitted marshal must fail")
	}
}

func TestGaussianUnmarshalNonPositiveVariance(t *testing.T) {
	bad := `{"varSmoothing":0,"dim":1,"logPrior":[0,0],"mean":[[0],[0]],"variance":[[0],[1]]}`
	if err := json.Unmarshal([]byte(bad), NewGaussian()); err == nil {
		t.Error("zero variance must be rejected")
	}
}
