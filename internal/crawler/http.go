package crawler

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTPFetcher fetches pages over live HTTP, for running the pipeline
// against the real web. Experiments in this repository use the
// synthetic webgen.World instead; this type exists so the crawler is a
// drop-in crawler4j replacement outside the simulation.
type HTTPFetcher struct {
	// Client is the HTTP client to use (default: 10 s timeout).
	Client *http.Client
	// Scheme is "http" or "https" (default "http", matching the
	// paper-era crawls).
	Scheme string
	// MaxBodyBytes caps each response body (default 1 MiB).
	MaxBodyBytes int64
	// UserAgent is sent with every request.
	UserAgent string
}

// Fetch implements Fetcher.
func (h *HTTPFetcher) Fetch(domain, path string) (string, error) {
	return h.FetchCtx(context.Background(), domain, path)
}

// FetchCtx implements CtxFetcher: the request carries ctx, so a
// cancelled crawl aborts the connection instead of waiting out the
// client timeout.
func (h *HTTPFetcher) FetchCtx(ctx context.Context, domain, path string) (string, error) {
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	scheme := h.Scheme
	if scheme == "" {
		scheme = "http"
	}
	maxBody := h.MaxBodyBytes
	if maxBody == 0 {
		maxBody = 1 << 20
	}
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, scheme+"://"+domain+path, nil)
	if err != nil {
		return "", fmt.Errorf("crawler: build request: %w", err)
	}
	if h.UserAgent != "" {
		req.Header.Set("User-Agent", h.UserAgent)
	}
	resp, err := client.Do(req)
	if err != nil {
		// Network-level failures (DNS, refused, timeouts) are left
		// unmarked, i.e. transient: the crawler retries them under its
		// Retry budget.
		return "", fmt.Errorf("crawler: fetch %s%s: %w", domain, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("crawler: fetch %s%s: status %d", domain, path, resp.StatusCode)
		// Client errors are final — the page will not appear on retry —
		// except 429 (rate limited), which backoff is made for. Server
		// errors (5xx) stay transient.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return "", Permanent(err)
		}
		return "", err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return "", fmt.Errorf("crawler: read %s%s: %w", domain, path, err)
	}
	return string(body), nil
}

var _ CtxFetcher = (*HTTPFetcher)(nil)
