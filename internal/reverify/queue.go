package reverify

import (
	"container/heap"
	"time"
)

// domainQueue is the sweep's priority queue: oldest verdict first (a
// never-verified domain sorts before every verified one), domain name
// as the deterministic tie-break. It is materialized from the corpus at
// each sweep boundary — the politeness ledger is only consulted once
// per domain per sweep, so the order is stable within a sweep.
type domainQueue struct {
	domains []string
	last    map[string]time.Time
}

func newDomainQueue(corpus []string, last map[string]time.Time) *domainQueue {
	q := &domainQueue{domains: append([]string(nil), corpus...), last: last}
	heap.Init(q)
	return q
}

func (q *domainQueue) Len() int { return len(q.domains) }

func (q *domainQueue) Less(i, j int) bool {
	ti, tj := q.last[q.domains[i]], q.last[q.domains[j]]
	if !ti.Equal(tj) {
		return ti.Before(tj) // zero time (never verified) sorts first
	}
	return q.domains[i] < q.domains[j]
}

func (q *domainQueue) Swap(i, j int) { q.domains[i], q.domains[j] = q.domains[j], q.domains[i] }

func (q *domainQueue) Push(x any) { q.domains = append(q.domains, x.(string)) }

func (q *domainQueue) Pop() any {
	d := q.domains[len(q.domains)-1]
	q.domains = q.domains[:len(q.domains)-1]
	return d
}

// pop removes and returns the highest-priority (stalest) domain.
func (q *domainQueue) pop() string { return heap.Pop(q).(string) }
