package pharmaverify

import (
	"bytes"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quick start does: generate a world, crawl it into a snapshot, train a
// verifier and assess the pharmacies.
func TestFacadeEndToEnd(t *testing.T) {
	world := GenerateWorld(WorldConfig{Seed: 5, NumLegit: 12, NumIllegit: 60, NetworkSize: 20})
	snap, err := BuildSnapshot("facade-test", world, world.Domains(), world.Labels())
	if err != nil {
		t.Fatal(err)
	}
	legit, illegit := snap.Counts()
	if legit != 12 || illegit != 60 {
		t.Fatalf("counts = %d/%d", legit, illegit)
	}

	v, err := Train(snap, Options{Classifier: SVM, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	as := v.Assess(snap.Pharmacies)
	if len(as) != snap.Len() {
		t.Fatalf("assessed %d of %d", len(as), snap.Len())
	}

	correct := 0
	for i, a := range as {
		want := snap.Pharmacies[i].Label == 1
		if a.Legitimate == want {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(as)); acc < 0.9 {
		t.Errorf("facade accuracy = %v", acc)
	}

	ranked := RankAssessments(as)
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Rank < ranked[i].Rank {
			t.Fatal("ranking not descending")
		}
	}
}

// TestFacadeModelPersistence ships a trained model through a buffer and
// verifies the restored verifier gives identical verdicts.
func TestFacadeModelPersistence(t *testing.T) {
	world := GenerateWorld(WorldConfig{Seed: 9, NumLegit: 8, NumIllegit: 40, NetworkSize: 20})
	snap, err := BuildSnapshot("persist", world, world.Domains(), world.Labels())
	if err != nil {
		t.Fatal(err)
	}
	v, err := Train(snap, Options{Classifier: NBM, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadVerifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := v.Assess(snap.Pharmacies), restored.Assess(snap.Pharmacies)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assessment %d changed after reload: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDatasetConfigs(t *testing.T) {
	c1, c2 := Dataset1(7), Dataset2(7)
	if c1.NumLegit != 167 || c1.NumIllegit != 1292 {
		t.Errorf("Dataset1 = %+v", c1)
	}
	if c2.NumLegit != 167 || c2.NumIllegit != 1275 || c2.IllegitOffset != 1292 {
		t.Errorf("Dataset2 = %+v", c2)
	}
}
