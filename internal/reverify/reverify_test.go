package reverify

import (
	"context"
	"crypto/sha256"
	"errors"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pharmaverify/internal/checkpoint"
	"pharmaverify/internal/core"
	"pharmaverify/internal/serve"
)

// fakeDeployment scripts the Deployment surface so scheduler, drift and
// promotion behavior are testable without crawls or trained models.
type fakeDeployment struct {
	mu          sync.Mutex
	corpus      []string
	calls       map[string]int
	totalCalls  int
	observe     func(domain string) (serve.Observation, error)
	sketch      *core.Sketch
	shadow      bool
	assessed    uint64
	flips       uint64
	promotions  []string
	demotions   int
	cancelAfter int // when > 0: cancelFn fires on reaching this many calls
	cancelFn    context.CancelFunc
}

func newFakeDeployment(corpus ...string) *fakeDeployment {
	return &fakeDeployment{
		corpus: corpus,
		calls:  make(map[string]int),
		observe: func(domain string) (serve.Observation, error) {
			return serve.Observation{
				Domain:   domain,
				Terms:    []string{"pharmacy", "refill"},
				Outbound: []string{"fda.gov"},
				Pages:    1,
			}, nil
		},
	}
}

func (f *fakeDeployment) Reverify(ctx context.Context, domain string) (serve.Observation, error) {
	f.mu.Lock()
	f.calls[domain]++
	f.totalCalls++
	if f.cancelAfter > 0 && f.totalCalls >= f.cancelAfter && f.cancelFn != nil {
		f.cancelFn()
	}
	obs := f.observe
	f.mu.Unlock()
	return obs(domain)
}

func (f *fakeDeployment) Corpus() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.corpus...)
}

func (f *fakeDeployment) TrainingSketch() *core.Sketch { return f.sketch }

func (f *fakeDeployment) ShadowActive() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shadow
}

func (f *fakeDeployment) ShadowStats() (uint64, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.assessed, f.flips
}

func (f *fakeDeployment) PromoteShadow() (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.shadow {
		return "", errors.New("no shadow")
	}
	f.shadow = false
	f.promotions = append(f.promotions, "cand-fp")
	return "cand-fp", nil
}

func (f *fakeDeployment) DemoteShadow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shadow = false
	f.demotions++
}

func (f *fakeDeployment) ModelFingerprint() string { return "live-fp" }

func (f *fakeDeployment) callCount(domain string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[domain]
}

func (f *fakeDeployment) total() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.totalCalls
}

// journalDigest maps every checkpoint file (relative path) to its
// SHA-256, the byte-level identity of a journal directory.
func journalDigest(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		sum := sha256.Sum256(data)
		out[rel] = string(sum[:])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestKillAndResumeByteIdentity pins the resumability acceptance
// criterion: a sweep killed mid-flight and restarted over the same
// journal finishes with the exact same completed-domain set and
// byte-identical journal files as an uninterrupted run — and no domain
// is re-verified twice.
func TestKillAndResumeByteIdentity(t *testing.T) {
	corpus := []string{"a.test", "b.test", "c.test", "d.test", "e.test"}

	// Reference: two uninterrupted sweeps.
	dirA := t.TempDir()
	storeA, err := checkpoint.Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	depA := newFakeDeployment(corpus...)
	if err := New(depA, Config{Checkpoint: storeA, MaxSweeps: 2, Logf: t.Logf}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Interrupted: the run dies (hard context cancel — checkpoint
	// atomicity makes this equivalent to SIGKILL for on-disk state)
	// after the third re-verification of sweep 1.
	dirB := t.TempDir()
	storeB, err := checkpoint.Open(dirB)
	if err != nil {
		t.Fatal(err)
	}
	depB := newFakeDeployment(corpus...)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	depB.cancelAfter, depB.cancelFn = 3, cancel
	err = New(depB, Config{Checkpoint: storeB, MaxSweeps: 2, Logf: t.Logf}).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if got := depB.total(); got >= 2*len(corpus) {
		t.Fatalf("kill landed after the work was already done (%d calls)", got)
	}

	// Restart: a fresh store over the surviving journal directory.
	depB.mu.Lock()
	depB.cancelAfter = 0
	depB.mu.Unlock()
	storeB2, err := checkpoint.Open(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if err := New(depB, Config{Checkpoint: storeB2, MaxSweeps: 2, Logf: t.Logf}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Exactly-once: the kill+resume pair did the same total work as the
	// uninterrupted run — every domain re-verified once per sweep.
	if got, want := depB.total(), depA.total(); got != want {
		t.Fatalf("resumed run cost %d re-verifications total, uninterrupted cost %d", got, want)
	}
	for _, d := range corpus {
		if got := depB.callCount(d); got != 2 {
			t.Fatalf("%s re-verified %d times across kill+resume, want 2", d, got)
		}
	}

	// Byte identity: same file set, same bytes.
	a, b := journalDigest(t, dirA), journalDigest(t, dirB)
	if len(a) != len(b) {
		t.Fatalf("journal file sets differ: %d vs %d files", len(a), len(b))
	}
	for rel, sum := range a {
		bsum, ok := b[rel]
		if !ok {
			t.Fatalf("resumed journal is missing %s", rel)
		}
		if bsum != sum {
			t.Fatalf("journal file %s differs between uninterrupted and resumed runs", rel)
		}
	}
}

func TestSchedulerOrdersOldestFirst(t *testing.T) {
	last := map[string]time.Time{
		"fresh.test": time.Unix(300, 0),
		"old.test":   time.Unix(100, 0),
		"mid.test":   time.Unix(200, 0),
	}
	q := newDomainQueue([]string{"fresh.test", "never2.test", "old.test", "mid.test", "never1.test"}, last)
	var got []string
	for q.Len() > 0 {
		got = append(got, q.pop())
	}
	want := []string{"never1.test", "never2.test", "old.test", "mid.test", "fresh.test"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep order = %v, want %v", got, want)
		}
	}
}

func TestPolitenessSkipsRecentDomains(t *testing.T) {
	dep := newFakeDeployment("a.test", "b.test")
	clock := time.Unix(1000, 0)
	p := New(dep, Config{Interval: time.Hour, MaxSweeps: 2, Logf: t.Logf})
	p.cfg.now = func() time.Time { return clock }
	p.cfg.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Sweep 1 verifies both; sweep 2 (same instant) skips both.
	if got := dep.total(); got != 2 {
		t.Fatalf("%d re-verifications across 2 same-instant sweeps, want 2", got)
	}
	if got := p.met.domainsSkipped.Load(); got != 2 {
		t.Fatalf("domainsSkipped = %d, want 2", got)
	}
}

func TestRateBudgetPacesCrawls(t *testing.T) {
	dep := newFakeDeployment("a.test", "b.test", "c.test")
	var paced []time.Duration
	p := New(dep, Config{Rate: 2, MaxSweeps: 1, Logf: t.Logf})
	p.cfg.sleep = func(ctx context.Context, d time.Duration) error {
		paced = append(paced, d)
		return nil
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(paced) != 3 {
		t.Fatalf("%d pacing sleeps for 3 crawls, want 3", len(paced))
	}
	for _, d := range paced {
		if d != 500*time.Millisecond {
			t.Fatalf("pacing sleep %v, want 500ms at 2 crawls/sec", d)
		}
	}
}

func TestRetrainTriggerFiresOncePerSweepAndArmsShadow(t *testing.T) {
	dep := newFakeDeployment("a.test")
	dep.sketch = &core.Sketch{Terms: map[string]float64{"licensed": 1}, Links: map[string]float64{"nabp.net": 1}, Domains: 1}
	retrains := 0
	p := New(dep, Config{
		MaxSweeps: 3,
		Drift:     DriftConfig{RetrainThreshold: 0.5, MinObservations: 1},
		Retrain: func(ctx context.Context) error {
			retrains++
			dep.mu.Lock()
			dep.shadow = true // the daemon's retrain hook arms the shadow
			dep.mu.Unlock()
			return nil
		},
		Logf: t.Logf,
	})
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The fake's observations share nothing with the sketch (TV = 1), so
	// sweep 1 triggers; sweeps 2 and 3 see an active shadow and hold.
	if retrains != 1 {
		t.Fatalf("retrain fired %d times, want 1 (shadow active suppresses re-firing)", retrains)
	}
	if p.RetrainTriggers() != 1 {
		t.Fatalf("RetrainTriggers = %d, want 1", p.RetrainTriggers())
	}
}

func TestRetrainTriggerRespectsMinObservationsAndBaseline(t *testing.T) {
	// Too few observations: no trigger even at threshold 0.
	dep := newFakeDeployment("a.test")
	dep.sketch = &core.Sketch{Terms: map[string]float64{"x": 1}, Domains: 1}
	fired := false
	p := New(dep, Config{
		MaxSweeps: 1,
		Drift:     DriftConfig{RetrainThreshold: 0, MinObservations: 5},
		Retrain:   func(ctx context.Context) error { fired = true; return nil },
		Logf:      t.Logf,
	})
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("trigger fired below MinObservations")
	}

	// No baseline (model predates sketches): drift is unmeasurable, the
	// trigger must never fire — not even at threshold 0.
	dep2 := newFakeDeployment("a.test")
	p2 := New(dep2, Config{
		MaxSweeps: 2,
		Drift:     DriftConfig{RetrainThreshold: 0, MinObservations: 1},
		Retrain:   func(ctx context.Context) error { fired = true; return nil },
		Logf:      t.Logf,
	})
	if err := p2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("trigger fired with no training sketch to measure against")
	}

	// Negative threshold: explicitly disabled.
	dep3 := newFakeDeployment("a.test")
	dep3.sketch = &core.Sketch{Terms: map[string]float64{"x": 1}, Domains: 1}
	p3 := New(dep3, Config{
		MaxSweeps: 1,
		Drift:     DriftConfig{RetrainThreshold: -1, MinObservations: 1},
		Retrain:   func(ctx context.Context) error { fired = true; return nil },
		Logf:      t.Logf,
	})
	if err := p3.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("trigger fired despite a negative (disabled) threshold")
	}
}

func TestPromotionGate(t *testing.T) {
	// Under the gate: promote, and re-baseline drift on the new model.
	dep := newFakeDeployment()
	dep.shadow, dep.assessed, dep.flips = true, 20, 1
	dep.sketch = &core.Sketch{Terms: map[string]float64{"fresh": 1}, Domains: 1}
	p := New(dep, Config{Promotion: PromotionConfig{Auto: true, MinAssessments: 16, MaxFlipRate: 0.1}, Logf: t.Logf})
	p.drift.observe([]string{"stale"}, nil) // pre-promotion drift window
	p.maybePromote()
	if len(dep.promotions) != 1 {
		t.Fatalf("promotions = %v, want one", dep.promotions)
	}
	if _, _, n, _ := p.drift.scores(); n != 0 {
		t.Fatalf("drift window not re-baselined after promotion (%d observations survive)", n)
	}

	// Over the gate: demote (the regression path).
	dep2 := newFakeDeployment()
	dep2.shadow, dep2.assessed, dep2.flips = true, 20, 10
	p2 := New(dep2, Config{Promotion: PromotionConfig{Auto: true, MinAssessments: 16, MaxFlipRate: 0.1}, Logf: t.Logf})
	p2.maybePromote()
	if dep2.demotions != 1 || len(dep2.promotions) != 0 {
		t.Fatalf("flip rate 0.5: demotions=%d promotions=%v, want 1, none", dep2.demotions, dep2.promotions)
	}

	// Below MinAssessments: the gate holds.
	dep3 := newFakeDeployment()
	dep3.shadow, dep3.assessed, dep3.flips = true, 5, 0
	p3 := New(dep3, Config{Promotion: PromotionConfig{Auto: true, MinAssessments: 16, MaxFlipRate: 0.1}, Logf: t.Logf})
	p3.maybePromote()
	if len(dep3.promotions) != 0 || dep3.demotions != 0 {
		t.Fatal("gate acted below MinAssessments")
	}

	// Auto off: measure only.
	dep4 := newFakeDeployment()
	dep4.shadow, dep4.assessed, dep4.flips = true, 100, 0
	p4 := New(dep4, Config{Promotion: PromotionConfig{Auto: false}, Logf: t.Logf})
	p4.maybePromote()
	if len(dep4.promotions) != 0 || dep4.demotions != 0 {
		t.Fatal("controller acted with Auto off")
	}
}

func TestDriftScores(t *testing.T) {
	base := &core.Sketch{
		Terms: map[string]float64{"a": 0.5, "b": 0.5},
		Links: map[string]float64{"x.com": 1},
	}
	m := newDriftMonitor(base)

	// Identical distribution: zero drift.
	m.observe([]string{"a", "b"}, []string{"x.com"})
	term, link, n, ok := m.scores()
	if !ok || n != 1 {
		t.Fatalf("scores: n=%d ok=%v", n, ok)
	}
	if term != 0 || link != 0 {
		t.Fatalf("identical distribution scored term=%v link=%v, want 0, 0", term, link)
	}

	// Disjoint vocabulary: full drift.
	m.reset(base)
	m.observe([]string{"c", "c"}, []string{"y.com"})
	term, link, _, _ = m.scores()
	if term != 1 || link != 1 {
		t.Fatalf("disjoint distribution scored term=%v link=%v, want 1, 1", term, link)
	}

	// Halfway: half the observed terms in-sketch, half out.
	m.reset(base)
	m.observe([]string{"a", "c"}, nil)
	term, _, _, _ = m.scores()
	if math.Abs(term-0.5) > 1e-12 {
		t.Fatalf("half-overlap scored %v, want 0.5", term)
	}

	// Determinism: same observations, bitwise-equal score.
	m2 := newDriftMonitor(base)
	m2.observe([]string{"a", "c"}, nil)
	term2, _, _, _ := m2.scores()
	if term != term2 {
		t.Fatal("drift score is not deterministic")
	}
}

func TestWriteMetricsRendersDriftAndSweeps(t *testing.T) {
	dep := newFakeDeployment("a.test")
	dep.sketch = &core.Sketch{Terms: map[string]float64{"licensed": 1}, Domains: 1}
	p := New(dep, Config{MaxSweeps: 1, Logf: t.Logf})
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	p.WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"pharmaverify_drift_term_score",
		"pharmaverify_drift_link_score",
		"pharmaverify_drift_baseline_available 1",
		"pharmaverify_retrain_triggers_total 0",
		"pharmaverify_reverify_sweeps_total 1",
		`pharmaverify_reverify_domains_total{outcome="ok"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
