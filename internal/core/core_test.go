package core

import (
	"testing"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/webgen"
)

// testSnapshot builds a small but class-faithful snapshot once per test
// binary run.
var snapCache = map[int64]*dataset.Snapshot{}

func testSnapshot(t testing.TB, seed int64) *dataset.Snapshot {
	t.Helper()
	if s, ok := snapCache[seed]; ok {
		return s
	}
	w := webgen.Generate(webgen.Config{
		Seed: seed, NumLegit: 30, NumIllegit: 180, NetworkSize: 30,
	})
	snap, err := dataset.Build("test", w, w.Domains(), w.Labels(), crawler.Config{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	snapCache[seed] = snap
	return snap
}

func TestNewClassifierKinds(t *testing.T) {
	for _, k := range []ClassifierKind{NBM, NB, SVM, J48, MLP} {
		if _, err := NewClassifier(k, 1); err != nil {
			t.Errorf("NewClassifier(%s) = %v", k, err)
		}
	}
	if _, err := NewClassifier("bogus", 1); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestSamplerKinds(t *testing.T) {
	for _, k := range []SamplingKind{NoSampling, Subsampling, SMOTE, ""} {
		if _, err := Sampler(k); err != nil {
			t.Errorf("Sampler(%q) = %v", k, err)
		}
	}
	if _, err := Sampler("bogus"); err == nil {
		t.Error("bogus sampling accepted")
	}
}

func TestMajorityBaseline(t *testing.T) {
	ds := &ml.Dataset{Dim: 1}
	for i := 0; i < 9; i++ {
		ds.Add(ml.Vector{}, ml.Illegitimate, "")
	}
	ds.Add(ml.Vector{}, ml.Legitimate, "")
	var m MajorityBaseline
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if m.Predict(ml.Vector{}) != ml.Illegitimate {
		t.Error("majority wrong")
	}
}

func TestTFIDFTextCVShape(t *testing.T) {
	snap := testSnapshot(t, 1)
	// SVM on TF-IDF must clearly beat the 180/210 ≈ 0.857 majority rate.
	res, err := TextCV(snap, TextConfig{Classifier: SVM, Terms: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Mean(eval.MetricAccuracy); acc < 0.95 {
		t.Errorf("SVM TF-IDF accuracy = %v", acc)
	}
	if auc := res.Mean(eval.MetricAUC); auc < 0.95 {
		t.Errorf("SVM TF-IDF AUC = %v", auc)
	}
}

func TestNBMTextCV(t *testing.T) {
	snap := testSnapshot(t, 1)
	res, err := TextCV(snap, TextConfig{Classifier: NBM, Terms: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if auc := res.Mean(eval.MetricAUC); auc < 0.95 {
		t.Errorf("NBM AUC = %v", auc)
	}
}

func TestJ48WithSMOTE(t *testing.T) {
	snap := testSnapshot(t, 1)
	res, err := TextCV(snap, TextConfig{Classifier: J48, Sampling: SMOTE, Terms: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Mean(eval.MetricAccuracy); acc < 0.85 {
		t.Errorf("J48+SMOTE accuracy = %v", acc)
	}
}

func TestNGGTextCV(t *testing.T) {
	if testing.Short() {
		t.Skip("slow model training; skipped in -short")
	}
	snap := testSnapshot(t, 1)
	res, err := TextCV(snap, TextConfig{
		Representation: NGramGraphs, Classifier: MLP, Terms: 250, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Mean(eval.MetricAccuracy); acc < 0.9 {
		t.Errorf("MLP NGG accuracy = %v", acc)
	}
}

func TestNetworkCVShape(t *testing.T) {
	snap := testSnapshot(t, 1)
	res, err := NetworkCV(snap, NetworkConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	acc := res.Mean(eval.MetricAccuracy)
	if acc < 0.85 {
		t.Errorf("network accuracy = %v", acc)
	}
	// The paper's key shape: network legit recall is mediocre (~0.73)
	// because isolated legitimate pharmacies receive no trust.
	rec := res.Mean(eval.MetricLegitRecall)
	if rec < 0.4 || rec > 0.98 {
		t.Errorf("network legit recall = %v, want mid-range", rec)
	}
	// Illegitimate precision and recall stay high.
	if ip := res.Mean(eval.MetricIllegitPrecision); ip < 0.9 {
		t.Errorf("network illegit precision = %v", ip)
	}
}

func TestNetworkVariants(t *testing.T) {
	snap := testSnapshot(t, 1)
	for _, v := range []NetworkVariant{TrustRankUndirected, TrustRankDirected, AntiTrust, PageRankBaseline} {
		if _, err := NetworkCV(snap, NetworkConfig{Variant: v, Seed: 7}); err != nil {
			t.Errorf("variant %s: %v", v, err)
		}
	}
	if _, err := NetworkCV(snap, NetworkConfig{Variant: "bogus", Seed: 7}); err == nil {
		t.Error("bogus variant accepted")
	}
}

func TestTextBeatsNetworkOnAUC(t *testing.T) {
	snap := testSnapshot(t, 1)
	textRes, err := TextCV(snap, TextConfig{Classifier: NBM, Terms: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	netRes, err := NetworkCV(snap, NetworkConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if textRes.Mean(eval.MetricAUC) <= netRes.Mean(eval.MetricAUC) {
		t.Errorf("paper shape violated: text AUC %v <= network AUC %v",
			textRes.Mean(eval.MetricAUC), netRes.Mean(eval.MetricAUC))
	}
}

func TestEnsembleCV(t *testing.T) {
	if testing.Short() {
		t.Skip("slow model training; skipped in -short")
	}
	snap := testSnapshot(t, 1)
	res, err := EnsembleCV(snap, EnsembleConfig{Terms: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if auc := res.Mean(eval.MetricAUC); auc < 0.95 {
		t.Errorf("ensemble AUC = %v", auc)
	}
}

func TestRankCV(t *testing.T) {
	snap := testSnapshot(t, 1)
	res, err := RankCV(snap, RankConfig{Classifier: NBM, Terms: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.PairwiseOrderedness < 0.9 {
		t.Errorf("pairord = %v", res.PairwiseOrderedness)
	}
	if len(res.Ranking) != snap.Len() {
		t.Errorf("ranking covers %d of %d", len(res.Ranking), snap.Len())
	}
	// The top of the list should be mostly legitimate.
	topLegit := 0
	for _, r := range res.Ranking[:10] {
		if r.Label == ml.Legitimate {
			topLegit++
		}
	}
	if topLegit < 6 {
		t.Errorf("only %d/10 top-ranked are legitimate", topLegit)
	}
}

func TestRankCVNGG(t *testing.T) {
	if testing.Short() {
		t.Skip("slow model training; skipped in -short")
	}
	snap := testSnapshot(t, 1)
	res, err := RankCV(snap, RankConfig{Representation: NGramGraphs, Terms: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.PairwiseOrderedness < 0.85 {
		t.Errorf("NGG pairord = %v", res.PairwiseOrderedness)
	}
}

func TestOutliers(t *testing.T) {
	ranking := []RankedPharmacy{
		{Domain: "a", Label: ml.Legitimate, Score: 5},
		{Domain: "b", Label: ml.Illegitimate, Score: 4},
		{Domain: "c", Label: ml.Legitimate, Score: 3},
		{Domain: "d", Label: ml.Illegitimate, Score: 2},
		{Domain: "e", Label: ml.Legitimate, Score: 1},
	}
	hi, lo := Outliers(ranking, 1)
	if len(hi) != 1 || hi[0].Domain != "b" {
		t.Errorf("illegit outliers = %v", hi)
	}
	if len(lo) != 1 || lo[0].Domain != "e" {
		t.Errorf("legit outliers = %v", lo)
	}
}

func TestDriftStudy(t *testing.T) {
	w1 := webgen.Generate(webgen.Config{Seed: 2, Snapshot: 1, NumLegit: 20, NumIllegit: 100, NetworkSize: 25})
	w2 := webgen.Generate(webgen.Config{Seed: 2, Snapshot: 2, NumLegit: 20, NumIllegit: 90, IllegitOffset: 100, NetworkSize: 25})
	s1, err := dataset.Build("d1", w1, w1.Domains(), w1.Labels(), crawler.Config{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := dataset.Build("d2", w2, w2.Domains(), w2.Labels(), crawler.Config{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DriftStudy(s1, s2, TextConfig{Classifier: NBM, Terms: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range []DriftCell{OldOld, NewNew, OldNew} {
		if res.AUC[cell] == 0 {
			t.Errorf("missing AUC for %s", cell)
		}
	}
	// Paper shape: AUC stays roughly stable across time...
	if res.AUC[OldNew] < res.AUC[OldOld]-0.15 {
		t.Errorf("Old-New AUC collapsed: %v vs %v", res.AUC[OldNew], res.AUC[OldOld])
	}
	// ...while stale models lose legitimate precision on new data.
	if res.LegitPrecision[OldNew] > res.LegitPrecision[OldOld]+0.02 {
		t.Errorf("legit precision should not improve on drifted data: %v vs %v",
			res.LegitPrecision[OldNew], res.LegitPrecision[OldOld])
	}
}

func TestVerifierTrainAssess(t *testing.T) {
	snap := testSnapshot(t, 1)
	v, err := Train(snap, Options{Classifier: SVM, Terms: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	as := v.Assess(snap.Pharmacies)
	if len(as) != snap.Len() {
		t.Fatalf("assessed %d of %d", len(as), snap.Len())
	}
	var correct int
	for i, a := range as {
		want := snap.Pharmacies[i].Label == ml.Legitimate
		if a.Legitimate == want {
			correct++
		}
		if a.Rank != a.TextProb+a.TrustScore {
			t.Fatal("rank must be textRank + networkRank")
		}
	}
	if acc := float64(correct) / float64(len(as)); acc < 0.9 {
		t.Errorf("verifier training-set accuracy = %v", acc)
	}

	ranked := RankAssessments(as)
	if ranked[0].Rank < ranked[len(ranked)-1].Rank {
		t.Error("RankAssessments not descending")
	}
}

func TestTrainEmptySnapshot(t *testing.T) {
	if _, err := Train(&dataset.Snapshot{}, Options{}); err != ErrNoTraining {
		t.Errorf("empty snapshot: %v", err)
	}
}

func TestCombinedFeaturesCV(t *testing.T) {
	snap := testSnapshot(t, 1)
	res, err := CombinedFeaturesCV(snap, SVM, 250, 3, 7, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Mean(eval.MetricAccuracy); acc < 0.9 {
		t.Errorf("combined accuracy = %v", acc)
	}
}
