package trust

import (
	"math"
	"math/rand"
	"testing"
)

// bigRandomGraph builds a graph large enough to take the parallel rank
// path, with parallel edges, dangling nodes and hub structure.
func bigRandomGraph(rng *rand.Rand, nodes, edges int) *Graph {
	g := NewGraph()
	names := make([]string, nodes)
	for i := range names {
		names[i] = "n" + itoa(i)
		g.Node(names[i])
	}
	for i := 0; i < edges; i++ {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes)
		if rng.Intn(4) == 0 {
			dst = rng.Intn(1 + nodes/20) // hub bias: heavy in-degree skew
		}
		g.AddEdge(names[src], names[dst])
	}
	return g
}

func bitsEqual(a, b []float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// Property: TrustRank is bit-identical between the serial reference
// (Workers=1) and the parallel path at several worker counts, on
// randomized graphs with dangling nodes, parallel edges and hubs.
func TestTrustRankParallelBitIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		n := minParallelNodes + rng.Intn(400)
		g := bigRandomGraph(rng, n, n*3)
		seeds := map[string]float64{}
		for i := 0; i < 1+rng.Intn(8); i++ {
			seeds["n"+itoa(rng.Intn(n))] = 1 + rng.Float64()
		}
		ref := TrustRank(g, seeds, Config{Workers: 1})
		for _, w := range []int{2, 3, 8, 64} {
			got := TrustRank(g, seeds, Config{Workers: w})
			if i, ok := bitsEqual(ref, got); !ok {
				t.Fatalf("trial %d workers=%d: score[%d] = %x, serial %x",
					trial, w, i, math.Float64bits(got[i]), math.Float64bits(ref[i]))
			}
		}
	}
}

// The same bit-identity must hold for the unseeded baseline and the
// reversed-edge variant (their bias vectors and graph shapes differ).
func TestPageRankAndAntiTrustParallelBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		n := minParallelNodes + rng.Intn(300)
		g := bigRandomGraph(rng, n, n*2)
		pr1 := PageRank(g, Config{Workers: 1})
		prN := PageRank(g, Config{Workers: 7})
		if i, ok := bitsEqual(pr1, prN); !ok {
			t.Fatalf("trial %d: PageRank diverges at node %d", trial, i)
		}
		seeds := map[string]float64{"n0": 1, "n3": 1}
		at1 := AntiTrustRank(g, seeds, Config{Workers: 1})
		atN := AntiTrustRank(g, seeds, Config{Workers: 5})
		if i, ok := bitsEqual(at1, atN); !ok {
			t.Fatalf("trial %d: AntiTrustRank diverges at node %d", trial, i)
		}
	}
}

// Bit-identity must survive non-default damping/tolerance (different
// iteration counts and rounding paths).
func TestTrustRankParallelBitIdentityNonDefaultConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := bigRandomGraph(rng, minParallelNodes+100, (minParallelNodes+100)*4)
	seeds := map[string]float64{"n1": 1}
	for _, cfg := range []Config{
		{Damping: 0.5, Tol: 1e-3},
		{Damping: 0.99, MaxIterations: 7},
		{Tol: 1e-14},
	} {
		serial, par := cfg, cfg
		serial.Workers, par.Workers = 1, 6
		a := TrustRank(g, seeds, serial)
		b := TrustRank(g, seeds, par)
		if i, ok := bitsEqual(a, b); !ok {
			t.Fatalf("cfg %+v: diverges at node %d", cfg, i)
		}
	}
}

// A graph that is entirely dangling (no edges at all) exercises the
// dangling-mass path alone.
func TestParallelRankAllDangling(t *testing.T) {
	g := NewGraph()
	for i := 0; i < minParallelNodes+50; i++ {
		g.Node("n" + itoa(i))
	}
	a := PageRank(g, Config{Workers: 1})
	b := PageRank(g, Config{Workers: 4})
	if i, ok := bitsEqual(a, b); !ok {
		t.Fatalf("all-dangling graph diverges at node %d", i)
	}
}

func TestConfigRejectsNegativeValues(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative damping", Config{Damping: -0.1}},
		{"damping one", Config{Damping: 1}},
		{"damping above one", Config{Damping: 1.5}},
		{"negative iterations", Config{MaxIterations: -1}},
		{"negative tol", Config{Tol: -1e-9}},
	}
	g := NewGraph()
	g.AddEdge("a", "b")
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			PageRank(g, tc.cfg)
		}()
	}
}

func TestConfigZeroSentinelsSelectDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Damping != 0.85 || c.MaxIterations != 100 || c.Tol != 1e-9 {
		t.Fatalf("defaults = %+v", c)
	}
	// Workers has no sentinel rewrite: 0 defers to the process default.
	if c.Workers != 0 {
		t.Fatalf("Workers = %d, want 0 (process default)", c.Workers)
	}
}
