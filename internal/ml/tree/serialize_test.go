package tree

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestC45SerializeRoundTrip(t *testing.T) {
	ds := andDataset(300, 70)
	clf := NewC45()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(clf)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewC45()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatal(err)
	}
	if restored.Size() != clf.Size() || restored.Depth() != clf.Depth() {
		t.Fatalf("tree shape changed: %d/%d vs %d/%d",
			restored.Size(), restored.Depth(), clf.Size(), clf.Depth())
	}
	for _, x := range ds.X {
		if clf.Predict(x) != restored.Predict(x) || clf.Prob(x) != restored.Prob(x) {
			t.Fatal("predictions changed after round trip")
		}
	}
}

func TestC45Render(t *testing.T) {
	ds := andDataset(300, 71)
	clf := NewC45()
	if err := clf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	out := clf.Render(func(f int) string { return []string{"alpha", "beta"}[f] })
	for _, want := range []string{"alpha", "legitimate", "illegitimate", "<="} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Default naming.
	if s := clf.String(); !strings.Contains(s, "a0") && !strings.Contains(s, "a1") {
		t.Errorf("String missing default names:\n%s", s)
	}
	if NewC45().String() != "C45(unfitted)" {
		t.Error("unfitted String wrong")
	}
}

func TestC45MarshalUnfitted(t *testing.T) {
	if _, err := json.Marshal(NewC45()); err == nil {
		t.Error("unfitted marshal must fail")
	}
}

func TestC45UnmarshalMalformedTree(t *testing.T) {
	// Internal node with a single child is structurally invalid.
	bad := `{"minLeaf":2,"cf":0.25,"dim":2,"root":{"leaf":false,"counts":[1,1],"left":{"leaf":true,"counts":[1,0]}}}`
	if err := json.Unmarshal([]byte(bad), NewC45()); err == nil {
		t.Error("one-child internal node must be rejected")
	}
	if err := json.Unmarshal([]byte(`{"dim":1}`), NewC45()); err == nil {
		t.Error("missing root must be rejected")
	}
}
