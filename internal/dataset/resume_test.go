package dataset

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pharmaverify/internal/checkpoint"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/webgen"
)

// snapshotBytes serializes a snapshot the way the CLI does, so
// "byte-identical artifacts" means exactly what an operator would
// compare with cmp(1).
func snapshotBytes(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// recordingFetcher counts the distinct domains actually fetched, to
// prove a resumed build replays checkpointed domains instead of
// re-crawling them.
type recordingFetcher struct {
	inner crawler.Fetcher
	mu    sync.Mutex
	seen  map[string]bool
}

func (r *recordingFetcher) Fetch(domain, path string) (string, error) {
	r.mu.Lock()
	if r.seen == nil {
		r.seen = map[string]bool{}
	}
	r.seen[domain] = true
	r.mu.Unlock()
	return r.inner.Fetch(domain, path)
}

func (r *recordingFetcher) domains() map[string]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]bool, len(r.seen))
	for d := range r.seen {
		out[d] = true
	}
	return out
}

// TestBuildInterruptResumeByteIdentical is the acceptance test for
// checkpointed resume: a build killed mid-crawl and restarted with the
// same inputs must produce a snapshot byte-identical to an
// uninterrupted build, re-fetching only the domains that had not
// finished.
func TestBuildInterruptResumeByteIdentical(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 21, NumLegit: 4, NumIllegit: 8, NetworkSize: 4})
	domains := w.Domains()
	labels := w.Labels()
	cfg := crawler.Config{}

	reference, err := Build("resume", w, domains, labels, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, reference)

	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := BuildOptions{Crawl: cfg, Workers: 2, Checkpoint: store}

	// First run: cancel the build the moment the crawl reaches a domain
	// in the middle of the input, leaving earlier domains checkpointed
	// and later ones untouched.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	target := domains[len(domains)/2]
	tripwire := crawler.FetcherFunc(func(d, p string) (string, error) {
		if d == target {
			once.Do(cancel)
		}
		return w.Fetch(d, p)
	})
	partial, err := BuildCtx(ctx, "resume", tripwire, domains, labels, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted build: err = %v, want context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("interrupted build returned no partial snapshot")
	}
	if partial.CrawlStats == nil || partial.CrawlStats.DomainsMissing == 0 {
		t.Fatal("interrupted build did not record its shortfall in CrawlStats.DomainsMissing")
	}
	if partial.Len() >= len(domains) {
		t.Fatalf("interrupted build has all %d domains; the cancel did not truncate it", len(domains))
	}
	done := store.Count(crawlCheckpointKind)
	if done == 0 || done >= len(domains) {
		t.Fatalf("checkpointed %d of %d domains; want a strict subset", done, len(domains))
	}

	// Second run, same flags: replay the journal, fetch only the rest.
	rec := &recordingFetcher{inner: w}
	resumed, err := BuildCtx(context.Background(), "resume", rec, domains, labels, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotBytes(t, resumed); !bytes.Equal(got, want) {
		t.Errorf("resumed snapshot differs from uninterrupted build:\nresumed: %s\nwant:    %s", got, want)
	}
	if fetched := rec.domains(); len(fetched) != len(domains)-done {
		t.Errorf("resume fetched %d domains, want only the %d unfinished ones (fetched: %v)",
			len(fetched), len(domains)-done, fetched)
	}
}

// TestBuildQuarantineRecompute corrupts checkpoint entries between two
// builds: the store must quarantine the damaged files, the build must
// transparently re-crawl exactly the affected domains, and the final
// snapshot must still be byte-identical.
func TestBuildQuarantineRecompute(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 22, NumLegit: 3, NumIllegit: 6, NetworkSize: 3})
	domains := w.Domains()
	labels := w.Labels()

	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := BuildOptions{Crawl: crawler.Config{}, Workers: 2, Checkpoint: store}

	first, err := BuildCtx(context.Background(), "quar", w, domains, labels, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, first)
	if store.Count(crawlCheckpointKind) != len(domains) {
		t.Fatalf("expected every domain checkpointed, got %d", store.Count(crawlCheckpointKind))
	}

	files, err := filepath.Glob(filepath.Join(dir, crawlCheckpointKind, "*.ckpt"))
	if err != nil || len(files) < 2 {
		t.Fatalf("checkpoint files: %v (err %v)", files, err)
	}
	// Damage one file with a bit flip and another by truncation.
	flip, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	flip[len(flip)/2] ^= 0x01
	if err := os.WriteFile(files[0], flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[1], 10); err != nil {
		t.Fatal(err)
	}

	rec := &recordingFetcher{inner: w}
	second, err := BuildCtx(context.Background(), "quar", rec, domains, labels, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotBytes(t, second); !bytes.Equal(got, want) {
		t.Error("snapshot differs after quarantine + recompute")
	}
	if q := store.Quarantined(); q != 2 {
		t.Errorf("Quarantined() = %d, want 2", q)
	}
	if fetched := rec.domains(); len(fetched) != 2 {
		t.Errorf("recompute fetched %d domains, want exactly the 2 corrupted ones (%v)", len(fetched), fetched)
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, crawlCheckpointKind, "*.quarantined"))
	if err != nil || len(quarantined) != 2 {
		t.Errorf("quarantined files on disk: %v (err %v), want 2", quarantined, err)
	}
	// The damaged entries were recomputed and re-journaled: a third
	// build replays everything from the repaired journal.
	rec2 := &recordingFetcher{inner: w}
	if _, err := BuildCtx(context.Background(), "quar", rec2, domains, labels, opts); err != nil {
		t.Fatal(err)
	}
	if fetched := rec2.domains(); len(fetched) != 0 {
		t.Errorf("post-repair build fetched %d domains, want 0 (%v)", len(fetched), fetched)
	}
}
