package dataset

import (
	"bytes"
	"reflect"
	"testing"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/webgen"
)

func buildSmall(t *testing.T, seed int64) (*Snapshot, *webgen.World) {
	t.Helper()
	w := webgen.Generate(webgen.Config{Seed: seed, NumLegit: 5, NumIllegit: 15, NetworkSize: 5})
	snap, err := Build("test", w, w.Domains(), w.Labels(), crawler.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return snap, w
}

func TestBuildCounts(t *testing.T) {
	snap, _ := buildSmall(t, 1)
	legit, illegit := snap.Counts()
	if legit != 5 || illegit != 15 {
		t.Errorf("counts = %d/%d", legit, illegit)
	}
	if snap.Len() != 20 {
		t.Errorf("len = %d", snap.Len())
	}
}

func TestBuildContent(t *testing.T) {
	snap, w := buildSmall(t, 2)
	for _, p := range snap.Pharmacies {
		if len(p.Terms) == 0 {
			t.Errorf("%s has no terms", p.Domain)
		}
		if p.Pages == 0 {
			t.Errorf("%s has no pages", p.Domain)
		}
		site := w.Site(p.Domain)
		if site == nil {
			t.Fatalf("unknown domain %s", p.Domain)
		}
		wantLabel := ml.Illegitimate
		if site.Legitimate {
			wantLabel = ml.Legitimate
		}
		if p.Label != wantLabel {
			t.Errorf("%s label mismatch", p.Domain)
		}
		// No stop words survive preprocessing.
		for _, term := range p.Terms[:min(len(p.Terms), 200)] {
			if term == "the" || term == "and" {
				t.Fatalf("%s: stop word %q survived", p.Domain, term)
			}
		}
	}
}

func TestBuildOutboundEndpoints(t *testing.T) {
	snap, w := buildSmall(t, 3)
	anyExternal := false
	for _, p := range snap.Pharmacies {
		for _, ep := range p.Outbound {
			anyExternal = true
			if ep == p.Domain {
				t.Errorf("%s lists itself as outbound", p.Domain)
			}
			if w.Site(ep) == nil {
				// Endpoint outside the generated pharmacy set is fine
				// (fda.gov etc.) — just check it looks like a domain.
				if len(ep) < 4 {
					t.Errorf("implausible endpoint %q", ep)
				}
			}
		}
	}
	if !anyExternal {
		t.Error("no outbound endpoints extracted at all")
	}
}

func TestBuildMissingLabel(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 4, NumLegit: 2, NumIllegit: 2, NetworkSize: 2})
	if _, err := Build("x", w, w.Domains(), map[string]int{}, crawler.Config{}, 2); err == nil {
		t.Error("missing labels must error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	snap, _ := buildSmall(t, 5)
	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Error("round trip changed snapshot")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{nope")); err == nil {
		t.Error("garbage must error")
	}
}

func TestSubsampledTerms(t *testing.T) {
	snap, _ := buildSmall(t, 6)
	sub := snap.SubsampledTerms(10, 42)
	if len(sub) != snap.Len() {
		t.Fatal("wrong length")
	}
	for i, terms := range sub {
		want := 10
		if len(snap.Pharmacies[i].Terms) < 10 {
			want = len(snap.Pharmacies[i].Terms)
		}
		if len(terms) != want {
			t.Errorf("pharmacy %d subsample len = %d, want %d", i, len(terms), want)
		}
	}
	// Determinism.
	again := snap.SubsampledTerms(10, 42)
	if !reflect.DeepEqual(sub, again) {
		t.Error("subsample not deterministic")
	}
	// k=0 keeps all.
	all := snap.SubsampledTerms(0, 42)
	for i := range all {
		if len(all[i]) != len(snap.Pharmacies[i].Terms) {
			t.Error("k=0 must keep all terms")
		}
	}
}

func TestSnapshotAccessors(t *testing.T) {
	snap, _ := buildSmall(t, 7)
	if len(snap.Labels()) != snap.Len() || len(snap.Domains()) != snap.Len() {
		t.Error("accessor lengths wrong")
	}
	ob := snap.Outbound()
	if len(ob) != snap.Len() {
		t.Error("outbound map wrong size")
	}
	ill := snap.IllegitDomainSet()
	_, illegit := snap.Counts()
	if len(ill) != illegit {
		t.Error("IllegitDomainSet size mismatch")
	}
}

func TestSnapshotsDisjointIllegitimate(t *testing.T) {
	w1 := webgen.Generate(webgen.Config{Seed: 8, Snapshot: 1, NumLegit: 4, NumIllegit: 10, NetworkSize: 5})
	w2 := webgen.Generate(webgen.Config{Seed: 8, Snapshot: 2, NumLegit: 4, NumIllegit: 8, IllegitOffset: 10, NetworkSize: 5})
	s1, err := Build("d1", w1, w1.Domains(), w1.Labels(), crawler.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Build("d2", w2, w2.Domains(), w2.Labels(), crawler.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ill1 := s1.IllegitDomainSet()
	for d := range s2.IllegitDomainSet() {
		if ill1[d] {
			t.Errorf("illegitimate domain %s shared between snapshots", d)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
