// Liveaudit: run the verification pipeline against real HTTP. The
// example boots a local web server hosting a handful of pharmacy
// storefronts (so it runs offline and is reproducible), then crawls
// them over the network with crawler.HTTPFetcher — exactly how you
// would audit live internet pharmacies with this library.
//
//	go run ./examples/liveaudit
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pharmaverify/internal/core"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/webgen"
)

func main() {
	// Ctrl-C stops the audit at the next clean boundary: an in-flight
	// fetch or training stage is abandoned, already-audited sites keep
	// their results.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Training data: a synthetic labeled corpus (in production this is
	// your manually-reviewed ground truth).
	trainWorld := webgen.Generate(webgen.Config{
		Seed: 21, NumLegit: 20, NumIllegit: 100, NetworkSize: 25,
	})
	train, err := dataset.BuildCtx(ctx, "train", trainWorld, trainWorld.Domains(), trainWorld.Labels(),
		dataset.BuildOptions{Workers: 16})
	if err != nil {
		log.Fatal(err)
	}
	verifier, err := core.TrainCtx(ctx, train, core.Options{Classifier: core.SVM, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	// The "live" web: an HTTP server hosting unseen pharmacy sites from
	// a different snapshot of the generator.
	liveWorld := webgen.Generate(webgen.Config{
		Seed: 21, Snapshot: 2, NumLegit: 4, NumIllegit: 8,
		IllegitOffset: 100, NetworkSize: 4,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		// Route by Host-style prefix: /<domain>/<path...>.
		parts := strings.SplitN(strings.TrimPrefix(r.URL.Path, "/"), "/", 2)
		domain, path := parts[0], "/"
		if len(parts) == 2 {
			path += parts[1]
		}
		html, err := liveWorld.Fetch(domain, path)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		// Rewrite internal links to stay under the domain prefix.
		html = strings.ReplaceAll(html, `href="/`, `href="/`+domain+`/`)
		fmt.Fprint(w, html)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")
	fmt.Printf("live server at %s hosting %d pharmacy sites\n\n", srv.URL, len(liveWorld.Domains()))

	// Crawl each live site over real HTTP. The fetcher maps a pharmacy
	// "domain" onto the local server's path space.
	fetcher := crawler.FetcherFunc(func(domain, path string) (string, error) {
		h := &crawler.HTTPFetcher{UserAgent: "pharmaverify-liveaudit/1.0"}
		return h.Fetch(host, "/"+domain+path)
	})

	// Live crawls get the resilient configuration: retries with backoff
	// for transient network failures, a per-attempt timeout, and a
	// circuit breaker so one dead site cannot stall the audit.
	liveCfg := crawler.Config{
		MaxPages: 50,
		Retry: crawler.RetryConfig{
			MaxAttempts: 4,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    2 * time.Second,
		},
		FetchTimeout:  5 * time.Second,
		FailureBudget: 8,
	}
	var audited []dataset.Pharmacy
	var crawlStats crawler.Stats
	labels := liveWorld.Labels()
	for _, domain := range liveWorld.Domains() {
		if ctx.Err() != nil {
			fmt.Printf("audit interrupted; reporting the %d sites crawled so far\n\n", len(audited))
			break
		}
		snap, err := dataset.BuildCtx(ctx, "live", crawlerAdapter{fetcher, domain}, []string{domain},
			map[string]int{domain: labels[domain]}, dataset.BuildOptions{Crawl: liveCfg, Workers: 1})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				continue // partial snapshot; the loop-top check reports and stops
			}
			log.Fatal(err)
		}
		audited = append(audited, snap.Pharmacies...)
		if snap.CrawlStats != nil {
			crawlStats.Add(*snap.CrawlStats)
		}
	}
	fmt.Printf("live crawl telemetry: %d attempts (%d retries), %d ok / %d failed, %d breaker trips\n\n",
		crawlStats.Attempts, crawlStats.Retries, crawlStats.Successes, crawlStats.Failures,
		crawlStats.BreakerTrips)

	// Assess the freshly crawled pharmacies with the trained system.
	fmt.Println("audit results (higher rank = more legitimate):")
	for _, a := range core.RankAssessments(verifier.Assess(audited)) {
		verdict := "ILLEGITIMATE"
		if a.Legitimate {
			verdict = "legitimate  "
		}
		truth := "illegitimate"
		if labels[a.Domain] == 1 {
			truth = "legitimate"
		}
		fmt.Printf("  %-38s %s  rank=%.3f  (ground truth: %s)\n", a.Domain, verdict, a.Rank, truth)
	}
}

// crawlerAdapter presents a path-rewriting fetcher for a single domain.
type crawlerAdapter struct {
	f      crawler.Fetcher
	domain string
}

func (c crawlerAdapter) Fetch(domain, path string) (string, error) {
	// The crawler asks for the pharmacy domain; the underlying fetcher
	// already routes through the live server.
	html, err := c.f.Fetch(domain, path)
	if err != nil {
		return "", err
	}
	// Undo the prefix rewriting so internal links look site-relative
	// again for the crawler's link resolution.
	return strings.ReplaceAll(html, `href="/`+c.domain+`/`, `href="/`), nil
}
