package arff

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pharmaverify/internal/ml"
)

func sampleDataset() *ml.Dataset {
	ds := &ml.Dataset{Dim: 4}
	ds.Add(ml.NewVector([]float64{0, 1.5, 0, 2}), ml.Legitimate, "a")
	ds.Add(ml.NewVector([]float64{3, 0, 0, 0}), ml.Illegitimate, "b")
	ds.Add(ml.NewVector([]float64{0, 0, 0, 0}), ml.Illegitimate, "c")
	return ds
}

func TestWriteFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "demo set", sampleDataset(), []string{"viagra", "health", "", "fda"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"@relation demo_set",
		"@attribute viagra numeric",
		"@attribute health numeric",
		"@attribute a2 numeric",
		"@attribute fda numeric",
		"@attribute class {illegitimate,legitimate}",
		"@data",
		"{1 1.5,3 2,4 legitimate}",
		"{0 3,4 illegitimate}",
		"{4 illegitimate}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	ds := sampleDataset()
	var buf bytes.Buffer
	if err := Write(&buf, "rt", ds, nil); err != nil {
		t.Fatal(err)
	}
	got, attrs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != ds.Dim {
		t.Fatalf("attrs = %d, want %d", len(attrs), ds.Dim)
	}
	if got.Len() != ds.Len() || got.Dim != ds.Dim {
		t.Fatalf("shape %dx%d, want %dx%d", got.Len(), got.Dim, ds.Len(), ds.Dim)
	}
	for i := range ds.X {
		if got.Y[i] != ds.Y[i] {
			t.Errorf("instance %d label mismatch", i)
		}
		if d := ml.SquaredDistance(got.X[i], ds.X[i]); d > 1e-18 {
			t.Errorf("instance %d differs by %v", i, d)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := &ml.Dataset{Dim: 30}
	for i := 0; i < 50; i++ {
		m := map[int]float64{}
		for k := 0; k < rng.Intn(10); k++ {
			m[rng.Intn(30)] = math.Round(rng.NormFloat64()*1e6) / 1e6
		}
		ds.Add(ml.FromMap(m), rng.Intn(2), "")
	}
	var buf bytes.Buffer
	if err := Write(&buf, "rand", ds, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.X {
		if got.Y[i] != ds.Y[i] || ml.SquaredDistance(got.X[i], ds.X[i]) > 1e-12 {
			t.Fatalf("instance %d corrupted", i)
		}
	}
}

func TestReadDenseInstances(t *testing.T) {
	src := `@relation dense
@attribute f0 numeric
@attribute f1 numeric
@attribute class {illegitimate,legitimate}
@data
1.0,0,legitimate
0,2.5,illegitimate
`
	ds, attrs, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 || ds.Len() != 2 {
		t.Fatalf("shape wrong: %d attrs, %d instances", len(attrs), ds.Len())
	}
	if ds.Y[0] != ml.Legitimate || ds.X[0].At(0) != 1.0 {
		t.Error("dense instance 0 wrong")
	}
	if ds.Y[1] != ml.Illegitimate || ds.X[1].At(1) != 2.5 {
		t.Error("dense instance 1 wrong")
	}
}

func TestReadQuotedAttributeNames(t *testing.T) {
	src := "@relation q\n@attribute 'term one' numeric\n@attribute class {illegitimate,legitimate}\n@data\n{1 legitimate}\n"
	ds, attrs, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if attrs[0] != "term one" {
		t.Errorf("attr = %q", attrs[0])
	}
	if ds.Y[0] != ml.Legitimate {
		t.Error("class wrong")
	}
}

func TestReadComments(t *testing.T) {
	src := "% header comment\n@relation c\n@attribute f numeric\n@attribute class {illegitimate,legitimate}\n@data\n% data comment\n{0 1, 1 legitimate}\n"
	ds, _, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1 {
		t.Errorf("len = %d", ds.Len())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no data":          "@relation x\n@attribute f numeric\n@attribute class {a,b}\n",
		"no class":         "@relation x\n@attribute f numeric\n@data\n1\n",
		"bad type":         "@relation x\n@attribute f string\n@attribute class {a,b}\n@data\n",
		"bad class value":  "@relation x\n@attribute f numeric\n@attribute class {a,b}\n@data\n1,c\n",
		"bad sparse":       "@relation x\n@attribute f numeric\n@attribute class {a,b}\n@data\n{0 1\n",
		"field mismatch":   "@relation x\n@attribute f numeric\n@attribute class {a,b}\n@data\n1,2,a\n",
		"attribute after":  "@relation x\n@attribute f numeric\n@attribute class {a,b}\n@data\n@attribute g numeric\n",
		"numeric after cl": "@relation x\n@attribute class {a,b}\n@attribute f numeric\n@data\n",
	}
	for name, src := range cases {
		if _, _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSparseClassOmittedMeansFirstValue(t *testing.T) {
	src := "@relation o\n@attribute f numeric\n@attribute class {illegitimate,legitimate}\n@data\n{0 5}\n"
	ds, _, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Y[0] != ml.Illegitimate {
		t.Error("omitted sparse class must decode to the first nominal value")
	}
}

func TestSanitizeToken(t *testing.T) {
	if got := sanitizeToken("hello world!"); got != "hello_world_" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitizeToken(""); got != "unnamed" {
		t.Errorf("empty = %q", got)
	}
}
