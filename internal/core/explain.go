package core

import (
	"sort"

	"pharmaverify/internal/ml/bayes"
	"pharmaverify/internal/ml/svm"
)

// IndicativeTerms reports the k vocabulary terms most indicative of
// each class under the trained text model — the explainability view a
// human reviewer uses to audit a verdict (the paper's §6.3.1 analysis
// found "viagra", "cialis" and "no prescription" dominating the
// illegitimate side). It is supported for the linear models (NBM via
// conditional log-odds, SVM via weights); other classifiers return nil
// slices.
func (v *Verifier) IndicativeTerms(k int) (legit, illegit []string) {
	var score []float64
	switch clf := v.text.(type) {
	case *bayes.Multinomial:
		score = clf.LogOdds()
	case *svm.Linear:
		score = clf.Weights()
	default:
		return nil, nil
	}
	if score == nil {
		return nil, nil
	}
	idx := make([]int, len(score))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return score[idx[a]] > score[idx[b]] })

	take := func(ids []int) []string {
		out := make([]string, 0, k)
		for _, i := range ids {
			if len(out) == k {
				break
			}
			out = append(out, v.vocab.Term(i))
		}
		return out
	}
	legit = take(idx)
	rev := make([]int, len(idx))
	for i, id := range idx {
		rev[len(idx)-1-i] = id
	}
	illegit = take(rev)
	return legit, illegit
}
