package svm

import (
	"encoding/json"
	"fmt"
)

// linearState is the JSON wire form of a trained Linear SVM.
type linearState struct {
	C         float64   `json:"c"`
	Calibrate bool      `json:"calibrate"`
	Dim       int       `json:"dim"`
	W         []float64 `json:"w"` // dim weights followed by the bias
	A         float64   `json:"plattA"`
	B         float64   `json:"plattB"`
}

// MarshalJSON serializes a fitted SVM (weights, bias and Platt
// calibration parameters).
func (s *Linear) MarshalJSON() ([]byte, error) {
	if !s.fit {
		return nil, fmt.Errorf("svm: cannot marshal unfitted Linear")
	}
	return json.Marshal(linearState{
		C:         s.C,
		Calibrate: s.Calibrate,
		Dim:       s.dim,
		W:         s.w,
		A:         s.a,
		B:         s.b,
	})
}

// UnmarshalJSON restores an SVM persisted with MarshalJSON.
func (s *Linear) UnmarshalJSON(data []byte) error {
	var st linearState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("svm: decode Linear: %w", err)
	}
	if len(st.W) != st.Dim+1 {
		return fmt.Errorf("svm: state has %d weights for dim %d", len(st.W), st.Dim)
	}
	s.C = st.C
	s.Calibrate = st.Calibrate
	s.dim = st.Dim
	s.w = st.W
	s.a = st.A
	s.b = st.B
	s.fit = true
	return nil
}
