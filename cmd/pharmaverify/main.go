// Command pharmaverify is the command-line interface to the
// internet-pharmacy verification system.
//
// Subcommands:
//
//	generate   generate a synthetic pharmacy web and save its crawled,
//	           labeled snapshot as JSON
//	classify   train on a labeled snapshot and classify another
//	rank       train on a labeled snapshot and print the legitimacy
//	           ranking of another (Problem 2, OPR)
//	stats      print dataset statistics for a snapshot
//
// Example session:
//
//	pharmaverify generate -seed 1 -out dataset1.json
//	pharmaverify generate -seed 1 -snapshot 2 -out dataset2.json
//	pharmaverify classify -train dataset1.json -test dataset2.json
//	pharmaverify rank -train dataset1.json -test dataset2.json -top 20
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"pharmaverify/internal/arff"
	"pharmaverify/internal/buildinfo"
	"pharmaverify/internal/checkpoint"
	"pharmaverify/internal/core"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/parallel"
	"pharmaverify/internal/prof"
	"pharmaverify/internal/vectorize"
	"pharmaverify/internal/webgen"
)

func main() {
	// SIGINT/SIGTERM cancel the context: long-running subcommands stop
	// claiming work, flush their checkpoints and return promptly, so an
	// interrupted run can resume instead of leaving torn state behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	args := os.Args[1:]
	if len(args) == 1 && (args[0] == "-version" || args[0] == "--version") {
		fmt.Println(buildinfo.String("pharmaverify"))
		return
	}
	// Global flags (before the subcommand): -workers bounds the shared
	// worker pool (results do not depend on the value); -timeout puts a
	// deadline on the whole invocation; -cpuprofile/-memprofile write
	// runtime/pprof profiles covering the subcommand's work.
	var cancelTimeout context.CancelFunc
	var cpuProfile, memProfile string
globals:
	for len(args) >= 2 {
		switch args[0] {
		case "-workers":
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "pharmaverify: -workers wants a positive integer, got %q\n", args[1])
				os.Exit(2)
			}
			parallel.SetDefault(n)
		case "-timeout":
			d, err := time.ParseDuration(args[1])
			if err != nil || d <= 0 {
				fmt.Fprintf(os.Stderr, "pharmaverify: -timeout wants a positive duration, got %q\n", args[1])
				os.Exit(2)
			}
			ctx, cancelTimeout = context.WithTimeout(ctx, d)
			defer cancelTimeout()
		case "-cpuprofile":
			cpuProfile = args[1]
		case "-memprofile":
			memProfile = args[1]
		default:
			break globals
		}
		args = args[2:]
	}
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pharmaverify:", err)
		os.Exit(1)
	}
	switch args[0] {
	case "generate":
		err = cmdGenerate(ctx, args[1:])
	case "classify":
		err = cmdClassify(ctx, args[1:])
	case "rank":
		err = cmdRank(ctx, args[1:])
	case "stats":
		err = cmdStats(args[1:])
	case "export":
		err = cmdExport(args[1:])
	case "train":
		err = cmdTrain(ctx, args[1:])
	case "inspect":
		err = cmdInspect(args[1:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pharmaverify: unknown subcommand %q\n", args[0])
		usage()
		os.Exit(2)
	}
	// Flush the profiles before the error-path exits below: a profiled
	// run that fails (or is cancelled) still leaves usable profiles.
	if perr := stopCPU(); perr != nil && err == nil {
		err = perr
	}
	if perr := prof.WriteHeap(memProfile); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pharmaverify:", err)
		if errors.Is(err, context.Canceled) {
			// Conventional exit status for SIGINT-style termination.
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pharmaverify [-workers N] [-timeout D] [-cpuprofile F] [-memprofile F] <generate|classify|rank|stats> [flags]
       pharmaverify -version
  generate  -seed N -snapshot 1|2 -legit N -illegit N -out FILE
            [-retries N] [-failure-budget N] [-flaky RATE]   (resilient-crawl knobs)
            [-delay D] [-checkpoint DIR]                     (politeness / crash-safe resume)
  train     -in FILE -out MODEL.json [-classifier SVM] [-terms N]
  classify  -train FILE | -model MODEL.json, -test FILE [-classifier SVM] [-terms N]
  rank      -train FILE -test FILE [-top N]
  stats     -in FILE
  inspect   -model MODEL.json [-top N]   (most indicative terms per class)
  export    -in FILE -out FILE.arff [-terms N] [-counts]   (Weka interop)`)
}

func cmdGenerate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "generation seed")
	snapshot := fs.Int("snapshot", 1, "crawl epoch: 1 (Dataset 1) or 2 (six months later)")
	legit := fs.Int("legit", 167, "number of legitimate pharmacies")
	illegit := fs.Int("illegit", 1292, "number of illegitimate pharmacies")
	offset := fs.Int("offset", 0, "illegitimate domain offset (use Dataset 1's -illegit for disjoint Dataset 2)")
	retries := fs.Int("retries", 1, "fetch attempts per page (retry budget)")
	budget := fs.Int("failure-budget", 0, "per-domain circuit breaker: consecutive lost pages before giving up (0 = off)")
	flaky := fs.Float64("flaky", 0, "inject seeded transient fetch failures at this rate (exercise the resilient crawl path)")
	delay := fs.Duration("delay", 0, "politeness delay before every fetch attempt (0 = none)")
	ckptDir := fs.String("checkpoint", "", "journal completed domain crawls in this directory; rerunning with the same flags resumes instead of recrawling")
	out := fs.String("out", "", "output snapshot file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := webgen.Config{
		Seed: *seed, Snapshot: *snapshot,
		NumLegit: *legit, NumIllegit: *illegit,
		IllegitOffset: *offset,
	}
	if *snapshot == 2 && *offset == 0 {
		cfg.IllegitOffset = *illegit
	}
	world := webgen.Generate(cfg)
	var fetcher crawler.Fetcher = world
	if *flaky > 0 {
		fetcher = crawler.NewFaultInjector(world, crawler.FaultConfig{Seed: *seed, TransientRate: *flaky})
	}
	opts := dataset.BuildOptions{
		Crawl: crawler.Config{
			Retry:         crawler.RetryConfig{MaxAttempts: *retries, Seed: *seed},
			FailureBudget: *budget,
			Delay:         *delay,
		},
		Workers: 16,
	}
	if *ckptDir != "" {
		store, err := checkpoint.Open(*ckptDir)
		if err != nil {
			return err
		}
		opts.Checkpoint = store
	}
	name := fmt.Sprintf("snapshot-%d-seed-%d", *snapshot, *seed)
	snap, err := dataset.BuildCtx(ctx, name, fetcher, world.Domains(), world.Labels(), opts)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		// Deadline expiry is an operator-chosen time budget: degrade
		// gracefully to the partial snapshot and say what is missing.
		fmt.Fprintf(os.Stderr, "generate: deadline expired; writing partial snapshot (%d of %d domains missing)\n",
			snap.CrawlStats.DomainsMissing, len(world.Domains()))
	case errors.Is(err, context.Canceled):
		// A signal means "stop now": flush nothing half-done (the
		// checkpoint store already holds every completed domain) and
		// tell the operator how to pick the run back up.
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "generate: interrupted with %d domains to go; re-run with the same flags to resume from %s\n",
				snap.CrawlStats.DomainsMissing, *ckptDir)
		} else {
			fmt.Fprintln(os.Stderr, "generate: interrupted; use -checkpoint DIR to make interrupted runs resumable")
		}
		return err
	case err != nil:
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := snap.Save(w); err != nil {
		return err
	}
	l, i := snap.Counts()
	fmt.Fprintf(os.Stderr, "wrote %s: %d pharmacies (%d legitimate, %d illegitimate)\n",
		name, snap.Len(), l, i)
	printCrawlStats(snap.CrawlStats)
	return nil
}

// printCrawlStats reports crawl telemetry on stderr.
func printCrawlStats(st *crawler.Stats) {
	if st == nil {
		return
	}
	fmt.Fprintf(os.Stderr,
		"crawl: %d attempts (%d retries), %d ok / %d failed, %d pages lost, %d breaker trips, %.1f KiB\n",
		st.Attempts, st.Retries, st.Successes, st.Failures, st.PagesFailed, st.BreakerTrips,
		float64(st.Bytes)/1024)
	if st.RobotsUnreachable {
		fmt.Fprintln(os.Stderr, "crawl: warning: robots.txt unreachable for at least one domain (proceeded as allow-all)")
	}
	if st.DomainsMissing > 0 {
		fmt.Fprintf(os.Stderr, "crawl: warning: %d domains missing (interrupted build) — this snapshot is partial\n", st.DomainsMissing)
	}
}

func loadSnapshot(path string) (*dataset.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.Load(f)
}

// cmdTrain trains a verifier on a labeled snapshot and persists it.
func cmdTrain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	in := fs.String("in", "", "labeled training snapshot (JSON)")
	out := fs.String("out", "", "output model file (default stdout)")
	clf := fs.String("classifier", "SVM", "text classifier: NBM, NB, SVM, J48, MLP")
	terms := fs.Int("terms", 0, "term subsample size (0 = all)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("train: -in is required")
	}
	snap, err := loadSnapshot(*in)
	if err != nil {
		return err
	}
	v, err := core.TrainCtx(ctx, snap, core.Options{
		Classifier: core.ClassifierKind(*clf), Terms: *terms, Seed: *seed,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := v.Save(w); err != nil {
		return err
	}
	l, i := snap.Counts()
	fmt.Fprintf(os.Stderr, "trained %s verifier on %d pharmacies (%d legit / %d illegit)\n",
		*clf, snap.Len(), l, i)
	printCrawlStats(v.TrainingCrawlStats())
	return nil
}

func cmdClassify(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	trainPath := fs.String("train", "", "labeled training snapshot (JSON)")
	modelPath := fs.String("model", "", "pre-trained model file (alternative to -train)")
	testPath := fs.String("test", "", "snapshot to classify (JSON)")
	clf := fs.String("classifier", "SVM", "text classifier: NBM, NB, SVM, J48, MLP")
	terms := fs.Int("terms", 0, "term subsample size (0 = all)")
	seed := fs.Int64("seed", 1, "random seed")
	verbose := fs.Bool("v", false, "print every verdict")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*trainPath == "" && *modelPath == "") || *testPath == "" {
		return fmt.Errorf("classify: -test and one of -train/-model are required")
	}

	test, err := loadSnapshot(*testPath)
	if err != nil {
		return err
	}
	var v *core.Verifier
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		v, err = core.LoadVerifier(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		train, err := loadSnapshot(*trainPath)
		if err != nil {
			return err
		}
		v, err = core.TrainCtx(ctx, train, core.Options{
			Classifier: core.ClassifierKind(*clf), Terms: *terms, Seed: *seed,
		})
		if err != nil {
			return err
		}
	}
	as := v.Assess(test.Pharmacies)

	var conf eval.Confusion
	for i, a := range as {
		pred := ml.Illegitimate
		if a.Legitimate {
			pred = ml.Legitimate
		}
		conf.Observe(test.Pharmacies[i].Label, pred)
		if *verbose {
			fmt.Printf("%-40s verdict=%-12s textProb=%.3f trust=%.3f\n",
				a.Domain, ml.ClassName(pred), a.TextProb, a.TrustScore)
		}
	}
	fmt.Printf("classified %d pharmacies with %s\n", len(as), v.Options().Classifier)
	fmt.Printf("accuracy=%.3f legitPrecision=%.3f legitRecall=%.3f illegitPrecision=%.3f illegitRecall=%.3f\n",
		conf.Accuracy(), conf.PrecisionLegitimate(), conf.RecallLegitimate(),
		conf.PrecisionIllegitimate(), conf.RecallIllegitimate())
	return nil
}

func cmdRank(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	trainPath := fs.String("train", "", "labeled training snapshot (JSON)")
	testPath := fs.String("test", "", "snapshot to rank (JSON)")
	top := fs.Int("top", 10, "entries to print from each end of the ranking")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trainPath == "" || *testPath == "" {
		return fmt.Errorf("rank: -train and -test are required")
	}

	train, err := loadSnapshot(*trainPath)
	if err != nil {
		return err
	}
	test, err := loadSnapshot(*testPath)
	if err != nil {
		return err
	}
	v, err := core.TrainCtx(ctx, train, core.Options{Classifier: core.NBM, Seed: *seed})
	if err != nil {
		return err
	}
	ranked := core.RankAssessments(v.Assess(test.Pharmacies))

	scores := make([]float64, len(ranked))
	labels := make([]int, len(ranked))
	byDomain := map[string]int{}
	for _, p := range test.Pharmacies {
		byDomain[p.Domain] = p.Label
	}
	for i, a := range ranked {
		scores[i] = a.Rank
		labels[i] = byDomain[a.Domain]
	}
	fmt.Printf("ranked %d pharmacies; pairwise orderedness vs labels: %.4f\n",
		len(ranked), eval.PairwiseOrderedness(scores, labels))

	fmt.Println("\nmost legitimate:")
	for i := 0; i < *top && i < len(ranked); i++ {
		a := ranked[i]
		fmt.Printf("%3d. %-40s rank=%.4f (%s)\n", i+1, a.Domain, a.Rank, ml.ClassName(byDomain[a.Domain]))
	}
	fmt.Println("\nleast legitimate:")
	for i := len(ranked) - *top; i < len(ranked); i++ {
		if i < 0 {
			continue
		}
		a := ranked[i]
		fmt.Printf("%3d. %-40s rank=%.4f (%s)\n", i+1, a.Domain, a.Rank, ml.ClassName(byDomain[a.Domain]))
	}
	return nil
}

// cmdInspect prints the terms a trained model finds most indicative of
// each class — the reviewer-facing explanation of what the verifier
// learned (the paper's §6.3.1 term analysis, automated).
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained model file (from `pharmaverify train`)")
	top := fs.Int("top", 15, "terms per class")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("inspect: -model is required")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	v, err := core.LoadVerifier(f)
	if err != nil {
		return err
	}
	legit, illegit := v.IndicativeTerms(*top)
	if legit == nil {
		return fmt.Errorf("inspect: the model's text classifier has no linear term weights (use NBM or SVM)")
	}
	fmt.Println("terms indicative of LEGITIMATE pharmacies:")
	for _, w := range legit {
		fmt.Println("  " + w)
	}
	fmt.Println("terms indicative of ILLEGITIMATE pharmacies:")
	for _, w := range illegit {
		fmt.Println("  " + w)
	}
	return nil
}

// cmdExport writes a snapshot's TF-IDF (or raw-count) feature matrix as
// a sparse Weka ARFF file, so the experiments can be replayed inside
// Weka — the toolchain the paper used.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file (JSON)")
	out := fs.String("out", "", "output ARFF file (default stdout)")
	terms := fs.Int("terms", 0, "term subsample size (0 = all)")
	counts := fs.Bool("counts", false, "raw term counts instead of TF-IDF")
	seed := fs.Int64("seed", 1, "subsampling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("export: -in is required")
	}
	snap, err := loadSnapshot(*in)
	if err != nil {
		return err
	}

	docs := snap.SubsampledTerms(*terms, *seed)
	corpus := vectorize.NewCorpus(docs, snap.Labels(), snap.Domains())
	weighting := vectorize.WeightTFIDF
	if *counts {
		weighting = vectorize.WeightCounts
	}
	ds := corpus.Dataset(weighting)
	names := make([]string, corpus.Vocab.Size())
	for i := range names {
		names[i] = corpus.Vocab.Term(i)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := arff.Write(w, snap.Name, ds, names); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exported %d instances × %d attributes\n", ds.Len(), ds.Dim)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file (JSON)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("stats: -in is required")
	}
	snap, err := loadSnapshot(*in)
	if err != nil {
		return err
	}
	l, i := snap.Counts()
	var terms, pages, endpoints int
	for _, p := range snap.Pharmacies {
		terms += len(p.Terms)
		pages += p.Pages
		endpoints += len(p.Outbound)
	}
	fmt.Printf("snapshot %q: %d pharmacies (%d legitimate / %d illegitimate)\n", snap.Name, snap.Len(), l, i)
	if n := snap.Len(); n > 0 {
		fmt.Printf("avg pages/site: %.1f  avg terms/summary: %.0f  avg outbound endpoints/site: %.1f\n",
			float64(pages)/float64(n), float64(terms)/float64(n), float64(endpoints)/float64(n))
	}
	if st := snap.CrawlStats; st != nil {
		fmt.Printf("crawl telemetry: %d attempts (%d retries), %d ok / %d failed, %d pages lost, %d breaker trips, %.1f KiB fetched\n",
			st.Attempts, st.Retries, st.Successes, st.Failures, st.PagesFailed, st.BreakerTrips,
			float64(st.Bytes)/1024)
		if st.DomainsMissing > 0 {
			fmt.Printf("warning: %d domains missing (interrupted build) — this snapshot is partial\n", st.DomainsMissing)
		}
	}
	return nil
}
