package core

import (
	"reflect"
	"strings"
	"testing"

	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/ml/ensemble"
)

// TestTextCVDeterministic: identical configs must produce identical
// results (the repository-wide reproducibility guarantee).
func TestTextCVDeterministic(t *testing.T) {
	snap := testSnapshot(t, 1)
	cfg := TextConfig{Classifier: SVM, Terms: 250, Seed: 11}
	a, err := TextCV(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TextCV(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f := range a.Folds {
		if a.Folds[f].Confusion != b.Folds[f].Confusion {
			t.Fatalf("fold %d confusion differs", f)
		}
		if a.Folds[f].AUC != b.Folds[f].AUC {
			t.Fatalf("fold %d AUC differs", f)
		}
	}
}

func TestNGGCVDeterministic(t *testing.T) {
	snap := testSnapshot(t, 1)
	cfg := TextConfig{Representation: NGramGraphs, Classifier: NB, Terms: 100, Seed: 11}
	a, err := TextCV(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TextCV(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean(eval.MetricAUC) != b.Mean(eval.MetricAUC) {
		t.Fatal("NGG CV not deterministic")
	}
}

func TestRankCVDeterministic(t *testing.T) {
	snap := testSnapshot(t, 1)
	cfg := RankConfig{Classifier: NBM, Terms: 100, Seed: 11}
	a, err := RankCV(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RankCV(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.PairwiseOrderedness != b.PairwiseOrderedness {
		t.Fatal("ranking not deterministic")
	}
	for i := range a.Ranking {
		if a.Ranking[i] != b.Ranking[i] {
			t.Fatalf("ranking entry %d differs", i)
		}
	}
}

// TestEnsembleSelectionOrderParallel: with a fixed seed, training the
// model library in parallel must yield the exact greedy selection
// sequence of the sequential run — the ensemble's behavior is defined
// by which models are picked in which order.
func TestEnsembleSelectionOrderParallel(t *testing.T) {
	snap := testSnapshot(t, 1)
	ds := TFIDFDataset(snap, TextConfig{Classifier: SVM, Terms: 100, Seed: 5})
	library := make([]ensemble.Factory, 0, 4)
	for _, k := range []ClassifierKind{NBM, NB, SVM, J48} {
		kind := k
		library = append(library, ensemble.Factory{
			Name: string(kind),
			New: func() ml.Classifier {
				clf, err := NewClassifier(kind, 5)
				if err != nil {
					panic(err)
				}
				return clf
			},
		})
	}
	run := func(workers int) []string {
		sel := ensemble.New(library...)
		sel.Seed = 5
		sel.Workers = workers
		if err := sel.Fit(ds); err != nil {
			t.Fatal(err)
		}
		return sel.SelectionOrder()
	}
	seq := run(1)
	if len(seq) == 0 {
		t.Fatal("no models selected")
	}
	if par := run(8); !reflect.DeepEqual(seq, par) {
		t.Errorf("selection sequence differs: Workers=1 %v vs Workers=8 %v", seq, par)
	}
}

func TestTextCVErrors(t *testing.T) {
	snap := testSnapshot(t, 1)
	if _, err := TextCV(snap, TextConfig{Classifier: "BOGUS"}); err == nil {
		t.Error("bogus classifier accepted (TF-IDF)")
	}
	if _, err := TextCV(snap, TextConfig{Representation: NGramGraphs, Classifier: "BOGUS"}); err == nil {
		t.Error("bogus classifier accepted (NGG)")
	}
	if _, err := TextCV(snap, TextConfig{Representation: "BOGUS"}); err == nil {
		t.Error("bogus representation accepted")
	}
	if _, err := TextCV(snap, TextConfig{Classifier: SVM, Sampling: "BOGUS"}); err == nil {
		t.Error("bogus sampling accepted")
	}
}

func TestRankCVErrors(t *testing.T) {
	snap := testSnapshot(t, 1)
	if _, err := RankCV(snap, RankConfig{Classifier: "BOGUS"}); err == nil {
		t.Error("bogus classifier accepted")
	}
	if _, err := RankCV(snap, RankConfig{Network: NetworkConfig{Variant: "BOGUS"}}); err == nil {
		t.Error("bogus network variant accepted")
	}
}

func TestDescribeRanking(t *testing.T) {
	ranking := []RankedPharmacy{
		{Domain: "good.example", Label: 1, Score: 1.9},
		{Domain: "mid.example", Label: 0, Score: 0.9},
		{Domain: "bad.example", Label: 0, Score: 0.1},
	}
	out := DescribeRanking(ranking, 1)
	for _, want := range []string{"good.example", "bad.example", "legitimate", "top", "bottom"} {
		if !strings.Contains(out, want) {
			t.Errorf("DescribeRanking missing %q:\n%s", want, out)
		}
	}
}

func TestNetworkScoresAlignment(t *testing.T) {
	snap := testSnapshot(t, 1)
	seeds := map[string]float64{}
	for _, p := range snap.Pharmacies {
		if p.Label == 1 {
			seeds[p.Domain] = 1
		}
	}
	scores, err := NetworkScores(snap, seeds, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != snap.Len() {
		t.Fatalf("scores = %d, want %d", len(scores), snap.Len())
	}
	for i, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v out of [0,1]", i, s)
		}
	}
	// Seeded legitimate pharmacies must hold the top of the range.
	var maxSeed float64
	for i, p := range snap.Pharmacies {
		if p.Label == 1 && scores[i] > maxSeed {
			maxSeed = scores[i]
		}
	}
	if maxSeed < 0.5 {
		t.Errorf("best seed score = %v, expected near 1", maxSeed)
	}
}
