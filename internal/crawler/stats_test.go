package crawler

import (
	"fmt"
	"sync"
	"testing"
)

func TestStatsCloneNil(t *testing.T) {
	var s *Stats
	if s.Clone() != nil {
		t.Error("Clone of nil Stats must be nil")
	}
}

func TestStatsCloneIndependent(t *testing.T) {
	s := &Stats{Attempts: 3, Bytes: 100, RobotsUnreachable: true}
	c := s.Clone()
	if *c != *s {
		t.Fatalf("Clone() = %+v, want %+v", *c, *s)
	}
	c.Attempts = 99
	c.Bytes = 0
	if s.Attempts != 3 || s.Bytes != 100 {
		t.Error("mutating the clone leaked into the original")
	}
}

// TestAggregatorConcurrent is the -race witness for the serving path's
// process-wide crawl counters: many goroutines fold per-request stats
// into one Aggregator while others take snapshots.
func TestAggregatorConcurrent(t *testing.T) {
	var agg Aggregator
	const (
		writers = 8
		perG    = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				agg.Add(Stats{Attempts: 2, Successes: 1, Failures: 1, Bytes: 10})
			}
		}()
	}
	// Concurrent readers: each snapshot must be internally consistent
	// (Attempts = Successes + Failures at every point).
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				st, _ := agg.Snapshot()
				if st.Attempts != st.Successes+st.Failures {
					t.Errorf("torn snapshot: %d attempts vs %d+%d", st.Attempts, st.Successes, st.Failures)
					return
				}
			}
		}()
	}
	wg.Wait()
	st, crawls := agg.Snapshot()
	if want := writers * perG; crawls != want {
		t.Errorf("crawls = %d, want %d", crawls, want)
	}
	if want := writers * perG * 2; st.Attempts != want {
		t.Errorf("attempts = %d, want %d", st.Attempts, want)
	}
	if want := int64(writers * perG * 10); st.Bytes != want {
		t.Errorf("bytes = %d, want %d", st.Bytes, want)
	}
}

func TestCrawlAttemptBudget(t *testing.T) {
	// A 50-page chain with an attempt budget of 5 and no retries: the
	// crawl must stop after exactly 5 fetch attempts (workers reserve
	// one attempt per in-flight page, so a single-attempt retry policy
	// cannot overshoot) and degrade to the pages it collected.
	f := mapFetcher{"x.com|/": `<a href="/p0">start</a>`}
	for i := 0; i < 50; i++ {
		f[fmt.Sprintf("x.com|/p%d", i)] = fmt.Sprintf(`<a href="/p%d">next</a><p>n</p>`, i+1)
	}
	for _, workers := range []int{1, 4} {
		r := Crawl(f, "x.com", Config{Workers: workers, AttemptBudget: 5})
		if r.Stats.Attempts > 5 {
			t.Errorf("workers=%d: %d attempts, budget 5", workers, r.Stats.Attempts)
		}
		if len(r.Pages) == 0 {
			t.Errorf("workers=%d: budgeted crawl collected no pages", workers)
		}
		if len(r.Pages) > 5 {
			t.Errorf("workers=%d: %d pages from at most 5 attempts", workers, len(r.Pages))
		}
	}
}

func TestCrawlAttemptBudgetZeroUnlimited(t *testing.T) {
	f := mapFetcher{"x.com|/": `<a href="/a">a</a><a href="/b">b</a>`,
		"x.com|/a": `<p>a</p>`, "x.com|/b": `<p>b</p>`}
	r := Crawl(f, "x.com", Config{Workers: 2})
	if len(r.Pages) != 3 {
		t.Errorf("unbudgeted crawl got %d pages, want 3", len(r.Pages))
	}
}
