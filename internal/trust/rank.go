package trust

import "math"

// Config parameterizes the rank computations.
type Config struct {
	// Damping is the decay factor α (default 0.85 when 0).
	Damping float64
	// MaxIterations bounds the power iteration (default 100 when 0).
	MaxIterations int
	// Tol is the L1 convergence threshold (default 1e-9 when 0).
	Tol float64
}

func (c Config) withDefaults() Config {
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 100
	}
	if c.Tol == 0 {
		c.Tol = 1e-9
	}
	return c
}

// PageRank computes the standard PageRank of every node (uniform
// teleport vector) — the unseeded baseline.
func PageRank(g *Graph, cfg Config) []float64 {
	n := g.Len()
	bias := make([]float64, n)
	for i := range bias {
		bias[i] = 1 / float64(n)
	}
	return biasedRank(g, bias, cfg)
}

// TrustRank computes trust scores by propagating from a seed of known
// pages (Gyöngyi et al.). seeds maps node names to their oracle values;
// in the paper's initialization legitimate pharmacies in P0 get 1 and
// everything else 0. Scores are normalized so the maximum is 1 (the
// relative ordering is what the classifier consumes).
func TrustRank(g *Graph, seeds map[string]float64, cfg Config) []float64 {
	n := g.Len()
	bias := make([]float64, n)
	var total float64
	for name, v := range seeds {
		if id := g.ID(name); id >= 0 && v > 0 {
			bias[id] = v
			total += v
		}
	}
	if total == 0 {
		// No usable seed: fall back to uniform (PageRank).
		for i := range bias {
			bias[i] = 1 / float64(n)
		}
	} else {
		for i := range bias {
			bias[i] /= total
		}
	}
	r := biasedRank(g, bias, cfg)
	normalizeMax(r)
	return r
}

// AntiTrustRank propagates *distrust* from known-bad seeds along
// reversed edges (Krishnan & Raj): pages that link to distrusted pages
// become distrusted. Higher scores mean less trustworthy.
func AntiTrustRank(g *Graph, badSeeds map[string]float64, cfg Config) []float64 {
	return TrustRank(g.Reverse(), badSeeds, cfg)
}

// biasedRank runs personalized PageRank with the given teleport vector.
// Dangling mass is redistributed to the bias vector.
func biasedRank(g *Graph, bias []float64, cfg Config) []float64 {
	cfg = cfg.withDefaults()
	n := g.Len()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	copy(rank, bias)

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			outs := g.out[u]
			if len(outs) == 0 {
				dangling += rank[u]
				continue
			}
			share := rank[u] / float64(len(outs))
			for _, v := range outs {
				next[v] += share
			}
		}
		var delta float64
		for i := 0; i < n; i++ {
			nv := (1-cfg.Damping)*bias[i] + cfg.Damping*(next[i]+dangling*bias[i])
			delta += math.Abs(nv - rank[i])
			rank[i] = nv
		}
		if delta < cfg.Tol {
			break
		}
	}
	return rank
}

func normalizeMax(r []float64) {
	var m float64
	for _, v := range r {
		if v > m {
			m = v
		}
	}
	if m > 0 {
		for i := range r {
			r[i] /= m
		}
	}
}

// Scores is a convenience wrapper pairing a graph with computed node
// scores for name-based lookup.
type Scores struct {
	g *Graph
	v []float64
}

// NewScores bundles a graph and a score vector.
func NewScores(g *Graph, v []float64) Scores { return Scores{g: g, v: v} }

// Of returns the score of a domain (0 when the domain is not a node).
func (s Scores) Of(domain string) float64 {
	id := s.g.ID(domain)
	if id < 0 {
		return 0
	}
	return s.v[id]
}
