// Package eval implements the evaluation machinery of the paper's
// Section 6.2: overall accuracy, per-class precision and recall, area
// under the ROC curve, confidence intervals over cross-validation folds,
// stratified k-fold cross-validation, and the pairwise-orderedness
// measure used for the ranking problem (OPR).
package eval

import (
	"fmt"
	"math"
	"sort"

	"pharmaverify/internal/ml"
)

// Confusion is a 2×2 confusion matrix following the paper's convention:
// "positive" is the legitimate class, "negative" the illegitimate class.
type Confusion struct {
	TP int // legitimate predicted legitimate
	FN int // legitimate predicted illegitimate
	FP int // illegitimate predicted legitimate
	TN int // illegitimate predicted illegitimate
}

// Observe records one (actual, predicted) pair.
func (c *Confusion) Observe(actual, predicted int) {
	switch {
	case actual == ml.Legitimate && predicted == ml.Legitimate:
		c.TP++
	case actual == ml.Legitimate && predicted == ml.Illegitimate:
		c.FN++
	case actual == ml.Illegitimate && predicted == ml.Legitimate:
		c.FP++
	default:
		c.TN++
	}
}

// Total reports the number of observed instances.
func (c Confusion) Total() int { return c.TP + c.FN + c.FP + c.TN }

// Accuracy is the overall correctness (TP+TN)/(TP+TN+FP+FN).
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// PrecisionLegitimate = TP / (TP + FP).
func (c Confusion) PrecisionLegitimate() float64 { return ratio(c.TP, c.TP+c.FP) }

// RecallLegitimate = TP / (TP + FN).
func (c Confusion) RecallLegitimate() float64 { return ratio(c.TP, c.TP+c.FN) }

// PrecisionIllegitimate = TN / (TN + FN).
func (c Confusion) PrecisionIllegitimate() float64 { return ratio(c.TN, c.TN+c.FN) }

// RecallIllegitimate = TN / (TN + FP).
func (c Confusion) RecallIllegitimate() float64 { return ratio(c.TN, c.TN+c.FP) }

// F1Legitimate is the harmonic mean of legitimate precision and recall.
func (c Confusion) F1Legitimate() float64 {
	p, r := c.PrecisionLegitimate(), c.RecallLegitimate()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// TruePositiveRate and FalsePositiveRate as used to draw ROC curves.
func (c Confusion) TruePositiveRate() float64  { return c.RecallLegitimate() }
func (c Confusion) FalsePositiveRate() float64 { return ratio(c.FP, c.FP+c.TN) }

func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FN=%d FP=%d TN=%d acc=%.3f", c.TP, c.FN, c.FP, c.TN, c.Accuracy())
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// AUC computes the area under the ROC curve from legitimate-class scores
// and true labels, using the rank-statistic (Mann-Whitney U) formulation
// with midrank tie handling. It returns 0.5 when either class is absent.
func AUC(scores []float64, labels []int) float64 {
	if len(scores) != len(labels) {
		panic("eval: scores and labels length mismatch")
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Midranks: equal scores share the average of their positions.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}

	var pos, neg int
	var sumPos float64
	for i, y := range labels {
		if y == ml.Legitimate {
			pos++
			sumPos += ranks[i]
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	u := sumPos - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROC computes the full ROC curve (sorted by decreasing threshold,
// starting at (0,0) and ending at (1,1)).
func ROC(scores []float64, labels []int) []ROCPoint {
	type sl struct {
		s float64
		y int
	}
	pts := make([]sl, len(scores))
	var pos, neg int
	for i := range scores {
		pts[i] = sl{scores[i], labels[i]}
		if labels[i] == ml.Legitimate {
			pos++
		} else {
			neg++
		}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].s > pts[b].s })

	curve := []ROCPoint{{Threshold: math.Inf(1)}}
	tp, fp := 0, 0
	for i := 0; i < len(pts); {
		j := i
		for j < len(pts) && pts[j].s == pts[i].s {
			if pts[j].y == ml.Legitimate {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, ROCPoint{
			Threshold: pts[i].s,
			FPR:       ratio(fp, neg),
			TPR:       ratio(tp, pos),
		})
		i = j
	}
	return curve
}

// AUCFromCurve integrates a ROC curve with the trapezoid rule; it agrees
// with AUC() up to floating-point error and exists mainly for testing.
func AUCFromCurve(curve []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// MeanStd returns the sample mean and (unbiased) standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)-1))
	return mean, std
}

// ConfidenceInterval95 returns the half-width of the 95% confidence
// interval for the mean of xs (normal approximation, as in the paper's
// α=0.05 analysis over cross-validation folds).
func ConfidenceInterval95(xs []float64) float64 {
	_, std := MeanStd(xs)
	if len(xs) == 0 {
		return 0
	}
	return 1.96 * std / math.Sqrt(float64(len(xs)))
}
