// Package featcache provides the bounded, content-keyed feature cache
// shared by the evaluation pipeline. It memoizes expensive derived
// artifacts (N-Gram-Graph fold features, TF-IDF vocabularies and
// datasets) under keys derived from a hash of the input snapshot's
// *contents* plus the experiment configuration.
//
// Content keys fix a subtle aliasing bug of pointer-formatted keys
// (`fmt.Sprintf("%p", snap)`): a garbage-collected snapshot's address
// can be reused by a different snapshot, silently serving another
// dataset's features. Hashing the contents makes the key collision-free
// for distinct inputs and additionally lets logically identical
// snapshots share entries.
//
// The cache is safe for concurrent use and deduplicates concurrent
// builds of the same key (singleflight): when several goroutines ask
// for a missing entry at once, exactly one executes the build function
// and the rest block until the value is ready. Eviction is LRU with a
// bounded entry count.
package featcache

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU cache with singleflight builds. The zero
// value is not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

// entry is one cache slot. The once gate makes concurrent builders of
// the same key cooperate: the first caller runs the build, the rest
// block on once.Do until val/err are set.
type entry struct {
	key  string
	once sync.Once
	val  any
	err  error
}

// New returns a cache bounded to max entries (values beyond the bound
// are evicted least-recently-used first). max <= 0 panics: an
// unbounded feature cache would pin every snapshot's features in
// memory for the life of the process.
func New(max int) *Cache {
	if max <= 0 {
		panic("featcache: max must be positive")
	}
	return &Cache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Do returns the value cached under key, building it with build on
// first use. Concurrent calls with the same key share a single build.
// Errors are cached alongside values (builds are assumed deterministic,
// so retrying an identical failing build would fail identically).
//
// The returned value is shared between all callers of the key: treat
// it as read-only.
func (c *Cache) Do(key string, build func() (any, error)) (any, error) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.order.MoveToFront(el)
		c.hits++
	} else {
		c.misses++
		el = c.order.PushFront(&entry{key: key})
		c.entries[key] = el
		for c.order.Len() > c.max {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*entry).key)
			c.evictions++
		}
	}
	e := el.Value.(*entry)
	c.mu.Unlock()

	// Outside the lock: a slow build must not serialize unrelated keys.
	// Evicted entries stay valid for goroutines already holding them.
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Contains reports whether key currently has an entry, without
// touching recency or stats.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Purge drops every entry (used by the benchmark harness to measure
// cold-cache runs) and resets the stats counters.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = make(map[string]*list.Element)
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// Stats reports cumulative hit/miss/eviction counts since the last
// Purge.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
