// Package svm implements the linear Support Vector Machine used by the
// paper for both text (TF-IDF) and N-Gram-Graph features. Training uses
// dual coordinate descent for L2-regularized L1-loss SVM (Hsieh et al.,
// ICML 2008), which converges quickly on sparse high-dimensional text
// data. An optional Platt sigmoid maps decision values to probabilities
// so that the classifier can participate in ROC/AUC evaluation and
// ensemble selection; hard predictions depend only on the margin sign.
package svm

import (
	"math"
	"math/rand"

	"pharmaverify/internal/ml"
)

// Linear is a binary linear SVM.
type Linear struct {
	// C is the misclassification penalty (default 1 when 0).
	C float64
	// MaxIter bounds the outer dual-coordinate-descent epochs
	// (default 1000 when 0).
	MaxIter int
	// Tol is the stopping tolerance on the projected gradient range
	// (default 1e-4 when 0).
	Tol float64
	// Seed drives the coordinate permutation (deterministic training).
	Seed int64
	// Calibrate enables Platt scaling of decision values into
	// probabilities (fit on the training decision values). When false,
	// Prob returns a hard 0/1 as in the paper's textRank for SVM.
	Calibrate bool

	w    []float64 // weight vector, last slot is the bias term
	dim  int
	a, b float64 // Platt parameters: p = sigmoid(-(a*f + b))
	fit  bool
}

// NewLinear returns an SVM with the defaults used in the experiments
// (C=1, calibrated probabilities).
func NewLinear() *Linear { return &Linear{C: 1, Calibrate: true} }

// Name implements ml.Named with the paper's abbreviation.
func (s *Linear) Name() string { return "SVM" }

// SetCalibrate toggles Platt scaling before Fit is called; with
// calibration off, Prob returns the paper's hard 0/1 textRank output.
func (s *Linear) SetCalibrate(on bool) { s.Calibrate = on }

// Fit trains the SVM with dual coordinate descent.
func (s *Linear) Fit(ds *ml.Dataset) error {
	if ds.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	if ds.CountClass(0) == 0 || ds.CountClass(1) == 0 {
		return ml.ErrOneClass
	}
	c := s.C
	if c == 0 {
		c = 1
	}
	maxIter := s.MaxIter
	if maxIter == 0 {
		maxIter = 1000
	}
	tol := s.Tol
	if tol == 0 {
		tol = 1e-4
	}

	n := ds.Len()
	s.dim = ds.Dim
	s.w = make([]float64, ds.Dim+1) // +1 bias feature (constant 1)

	y := make([]float64, n)
	qii := make([]float64, n)
	for i := 0; i < n; i++ {
		if ds.Y[i] == ml.Legitimate {
			y[i] = 1
		} else {
			y[i] = -1
		}
		qii[i] = ml.Norm2(ds.X[i]) + 1 // +1 for the bias feature
	}

	alpha := make([]float64, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(s.Seed + 12345))

	dot := func(i int) float64 {
		v := ml.DotDense(ds.X[i], s.w)
		return v + s.w[ds.Dim] // bias
	}
	axpy := func(i int, t float64) {
		x := ds.X[i]
		for k, idx := range x.Ind {
			s.w[idx] += t * x.Val[k]
		}
		s.w[ds.Dim] += t
	}

	for iter := 0; iter < maxIter; iter++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		maxPG, minPG := math.Inf(-1), math.Inf(1)
		for _, i := range order {
			g := y[i]*dot(i) - 1
			pg := g
			if alpha[i] == 0 {
				if g > 0 {
					pg = 0
				}
			} else if alpha[i] == c {
				if g < 0 {
					pg = 0
				}
			}
			if pg > maxPG {
				maxPG = pg
			}
			if pg < minPG {
				minPG = pg
			}
			if pg != 0 {
				old := alpha[i]
				alpha[i] = math.Min(math.Max(old-g/qii[i], 0), c)
				if d := alpha[i] - old; d != 0 {
					axpy(i, d*y[i])
				}
			}
		}
		if maxPG-minPG < tol {
			break
		}
	}

	s.fit = true
	if s.Calibrate {
		scores := make([]float64, n)
		for i := 0; i < n; i++ {
			scores[i] = dot(i)
		}
		s.a, s.b = plattFit(scores, ds.Y)
	}
	return nil
}

// Decision returns the signed margin w·x + b.
func (s *Linear) Decision(x ml.Vector) float64 {
	if !s.fit {
		return 0
	}
	return ml.DotDense(x, s.w[:s.dim]) + s.w[s.dim]
}

// Prob returns the calibrated P(legitimate|x) when Calibrate is set;
// otherwise the paper's hard 0/1 output.
func (s *Linear) Prob(x ml.Vector) float64 {
	if !s.fit {
		return 0.5
	}
	f := s.Decision(x)
	if !s.Calibrate {
		if f >= 0 {
			return 1
		}
		return 0
	}
	return ml.Sigmoid(-(s.a*f + s.b))
}

// Predict returns the margin-sign class (independent of calibration).
func (s *Linear) Predict(x ml.Vector) int {
	if s.Decision(x) >= 0 {
		return ml.Legitimate
	}
	return ml.Illegitimate
}

// Weights exposes a copy of the learned weight vector (without bias),
// useful for inspecting the most discriminative terms.
func (s *Linear) Weights() []float64 {
	if !s.fit {
		return nil
	}
	return append([]float64(nil), s.w[:s.dim]...)
}

// Bias returns the learned intercept.
func (s *Linear) Bias() float64 {
	if !s.fit {
		return 0
	}
	return s.w[s.dim]
}

// plattFit fits sigmoid parameters (A,B) such that
// P(y=1|f) = 1/(1+exp(A f + B)), following the robust Newton method of
// Lin, Lin & Weng (2007).
func plattFit(scores []float64, labels []int) (a, b float64) {
	var prior0, prior1 float64
	for _, y := range labels {
		if y == ml.Legitimate {
			prior1++
		} else {
			prior0++
		}
	}
	hiTarget := (prior1 + 1) / (prior1 + 2)
	loTarget := 1 / (prior0 + 2)
	n := len(scores)
	t := make([]float64, n)
	for i, y := range labels {
		if y == ml.Legitimate {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}

	a = 0
	b = math.Log((prior0 + 1) / (prior1 + 1))
	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12
		eps     = 1e-5
	)

	fval := 0.0
	for i := 0; i < n; i++ {
		fApB := scores[i]*a + b
		if fApB >= 0 {
			fval += t[i]*fApB + math.Log1p(math.Exp(-fApB))
		} else {
			fval += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
		}
	}

	for it := 0; it < maxIter; it++ {
		h11, h22 := sigma, sigma
		var h21, g1, g2 float64
		for i := 0; i < n; i++ {
			fApB := scores[i]*a + b
			var p, q float64
			if fApB >= 0 {
				e := math.Exp(-fApB)
				p = e / (1 + e)
				q = 1 / (1 + e)
			} else {
				e := math.Exp(fApB)
				p = 1 / (1 + e)
				q = e / (1 + e)
			}
			d2 := p * q
			h11 += scores[i] * scores[i] * d2
			h22 += d2
			h21 += scores[i] * d2
			d1 := t[i] - p
			g1 += scores[i] * d1
			g2 += d1
		}
		if math.Abs(g1) < eps && math.Abs(g2) < eps {
			break
		}
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB

		step := 1.0
		for step >= minStep {
			newA, newB := a+step*dA, b+step*dB
			newf := 0.0
			for i := 0; i < n; i++ {
				fApB := scores[i]*newA + newB
				if fApB >= 0 {
					newf += t[i]*fApB + math.Log1p(math.Exp(-fApB))
				} else {
					newf += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
				}
			}
			if newf < fval+1e-4*step*gd {
				a, b, fval = newA, newB, newf
				break
			}
			step /= 2
		}
		if step < minStep {
			break
		}
	}
	return a, b
}

var (
	_ ml.Classifier = (*Linear)(nil)
	_ ml.Named      = (*Linear)(nil)
)
