package core

import (
	"sort"

	"pharmaverify/internal/dataset"
)

// Sketch is a compact distributional snapshot of a training corpus: the
// relative frequencies of its most common summary terms and outbound
// link endpoints. A verifier computes one at train time and carries it
// in its persisted form, so a serving deployment can compare the
// distributions of *fresh* crawls against the world the model was
// trained on — the drift signal behind the continuous re-verification
// loop. The paper's model-evolution experiment (Dataset 1 vs Dataset 2,
// six months apart) shows exactly this shift: illegitimate vocabulary
// drifts toward legitimate language and link profiles churn, degrading
// stale models. The sketch turns that offline observation into an
// online measurement.
type Sketch struct {
	// Terms maps each kept term to its relative frequency among all
	// summary terms of the training snapshot. Only the MaxSketchTerms
	// most frequent terms are kept; the remaining probability mass
	// (1 - sum of values) belongs to an implicit "other" bucket.
	Terms map[string]float64 `json:"terms"`
	// Links maps each kept outbound endpoint domain to its relative
	// frequency among all outbound link observations (one observation
	// per (pharmacy, endpoint) pair). Top MaxSketchLinks kept, same
	// "other" bucket convention.
	Links map[string]float64 `json:"links"`
	// Domains is the number of pharmacies the sketch summarizes.
	Domains int `json:"domains"`
}

// Sketch size bounds: large enough that the kept mass dominates both
// distributions for paper-scale corpora, small enough that the sketch
// adds little to a persisted model.
const (
	MaxSketchTerms = 2048
	MaxSketchLinks = 512
)

// BuildSketch computes the distributional snapshot of a labeled
// training corpus. maxTerms/maxLinks bound the kept keys (<= 0 uses
// MaxSketchTerms/MaxSketchLinks). The top-K selection is deterministic:
// higher count first, lexicographically smaller key on ties.
func BuildSketch(snap *dataset.Snapshot, maxTerms, maxLinks int) *Sketch {
	if maxTerms <= 0 {
		maxTerms = MaxSketchTerms
	}
	if maxLinks <= 0 {
		maxLinks = MaxSketchLinks
	}
	termCounts := make(map[string]int)
	linkCounts := make(map[string]int)
	termTotal, linkTotal := 0, 0
	for i := range snap.Pharmacies {
		p := &snap.Pharmacies[i]
		for _, t := range p.Terms {
			termCounts[t]++
			termTotal++
		}
		for _, ep := range p.Outbound {
			linkCounts[ep]++
			linkTotal++
		}
	}
	return &Sketch{
		Terms:   topKFrequencies(termCounts, termTotal, maxTerms),
		Links:   topKFrequencies(linkCounts, linkTotal, maxLinks),
		Domains: snap.Len(),
	}
}

// topKFrequencies keeps the k most frequent keys as relative
// frequencies of total. Ties break lexicographically so the sketch is a
// pure function of the counts, never of map iteration order.
func topKFrequencies(counts map[string]int, total, k int) map[string]float64 {
	if total == 0 {
		return map[string]float64{}
	}
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if k > len(keys) {
		k = len(keys)
	}
	out := make(map[string]float64, k)
	for _, key := range keys[:k] {
		out[key] = float64(counts[key]) / float64(total)
	}
	return out
}

// KeptTermMass reports the probability mass the kept term keys cover
// (1 - mass is the implicit "other" bucket).
func (s *Sketch) KeptTermMass() float64 { return massOf(s.Terms) }

// KeptLinkMass reports the probability mass the kept link keys cover.
func (s *Sketch) KeptLinkMass() float64 { return massOf(s.Links) }

// massOf sums in sorted-key order so the reported mass is bitwise
// deterministic (float sums over Go map iteration order are not).
func massOf(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// TrainingSketch returns the distributional snapshot computed when the
// verifier was trained, or nil for models persisted by versions that
// predate sketches. The returned sketch is the verifier's own state —
// treat it as read-only.
func (v *Verifier) TrainingSketch() *Sketch { return v.sketch }
