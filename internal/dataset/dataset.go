// Package dataset defines the labeled pharmacy snapshots the
// experiments run on: for each pharmacy, the preprocessed terms of its
// summarized crawl and its outbound endpoint domains, plus the class
// label from the oracle (the paper's manually-labeled PharmaVerComp
// ground truth; here, the synthetic generator's labels).
//
// A Snapshot corresponds to one crawl epoch — the paper's Dataset 1 and
// Dataset 2, collected six months apart.
package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"pharmaverify/internal/crawler"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/textproc"
	"pharmaverify/internal/trust"
)

// Pharmacy is one labeled, crawled pharmacy website.
type Pharmacy struct {
	Domain string `json:"domain"`
	// Label is ml.Legitimate or ml.Illegitimate.
	Label int `json:"label"`
	// Terms is the stop-word-filtered token stream of the summary
	// document (all crawled pages merged).
	Terms []string `json:"terms"`
	// Outbound lists the distinct second-level endpoint domains the
	// site links to (Algorithm 1 input).
	Outbound []string `json:"outbound"`
	// Pages is the number of pages crawled.
	Pages int `json:"pages"`
}

// AuxSite is a crawled non-pharmacy website (e.g. a health portal or a
// review directory) whose outbound links point at pharmacies — the
// richer network input of the paper's future work (a). Auxiliary sites
// carry no class label and no text features; only their link structure
// participates in the network analysis.
type AuxSite struct {
	Domain   string   `json:"domain"`
	Outbound []string `json:"outbound"`
	Pages    int      `json:"pages"`
}

// Snapshot is a labeled crawl of many pharmacies at one point in time,
// optionally accompanied by auxiliary (non-pharmacy) link sources.
type Snapshot struct {
	Name       string     `json:"name"`
	Pharmacies []Pharmacy `json:"pharmacies"`
	Aux        []AuxSite  `json:"aux,omitempty"`
	// CrawlStats aggregates the crawl telemetry of the snapshot build
	// (pharmacies plus auxiliary sites): attempts, retries, failures,
	// breaker trips, bytes. Nil for snapshots saved by older versions
	// or assembled by hand.
	CrawlStats *crawler.Stats `json:"crawlStats,omitempty"`

	outboundOnce sync.Once
	outboundMap  map[string][]string

	hashOnce sync.Once
	hash     string
}

// Build crawls every domain through the fetcher, preprocesses the text
// (summarization + stop-word removal, no stemming) and extracts the
// outbound endpoints. labels must contain every domain.
func Build(name string, f crawler.Fetcher, domains []string, labels map[string]int, cfg crawler.Config, parallel int) (*Snapshot, error) {
	return BuildWithAux(name, f, domains, labels, nil, cfg, parallel)
}

// BuildWithAux is Build plus a set of auxiliary non-pharmacy domains
// whose outbound links are collected into Snapshot.Aux.
func BuildWithAux(name string, f crawler.Fetcher, domains []string, labels map[string]int, auxDomains []string, cfg crawler.Config, parallel int) (*Snapshot, error) {
	for _, d := range domains {
		if _, ok := labels[d]; !ok {
			return nil, fmt.Errorf("dataset: no label for domain %q", d)
		}
	}
	results := crawler.CrawlAll(f, domains, cfg, parallel)
	pre := textproc.NewPreprocessor()
	stats := crawler.AggregateStats(results)

	snap := &Snapshot{Name: name}
	for _, d := range domains {
		r := results[d]
		summary := textproc.Summarize(r.Text())
		snap.Pharmacies = append(snap.Pharmacies, Pharmacy{
			Domain:   d,
			Label:    labels[d],
			Terms:    pre.Terms(summary),
			Outbound: trust.OutboundEndpoints(r.External, d),
			Pages:    len(r.Pages),
		})
	}
	sort.Slice(snap.Pharmacies, func(i, j int) bool {
		return snap.Pharmacies[i].Domain < snap.Pharmacies[j].Domain
	})

	if len(auxDomains) > 0 {
		auxResults := crawler.CrawlAll(f, auxDomains, cfg, parallel)
		auxStats := crawler.AggregateStats(auxResults)
		stats.Add(auxStats)
		for _, d := range auxDomains {
			r := auxResults[d]
			snap.Aux = append(snap.Aux, AuxSite{
				Domain:   d,
				Outbound: trust.OutboundEndpoints(r.External, d),
				Pages:    len(r.Pages),
			})
		}
		sort.Slice(snap.Aux, func(i, j int) bool { return snap.Aux[i].Domain < snap.Aux[j].Domain })
	}
	snap.CrawlStats = &stats
	return snap, nil
}

// AuxOutbound returns auxiliary-domain → outbound endpoints.
func (s *Snapshot) AuxOutbound() map[string][]string {
	m := make(map[string][]string, len(s.Aux))
	for _, a := range s.Aux {
		m[a.Domain] = a.Outbound
	}
	return m
}

// Len reports the number of pharmacies.
func (s *Snapshot) Len() int { return len(s.Pharmacies) }

// Counts returns the number of legitimate and illegitimate pharmacies
// (the paper's Table 1 row).
func (s *Snapshot) Counts() (legit, illegit int) {
	for _, p := range s.Pharmacies {
		if p.Label == ml.Legitimate {
			legit++
		} else {
			illegit++
		}
	}
	return legit, illegit
}

// Labels returns the parallel label slice.
func (s *Snapshot) Labels() []int {
	y := make([]int, len(s.Pharmacies))
	for i, p := range s.Pharmacies {
		y[i] = p.Label
	}
	return y
}

// Domains returns the parallel domain slice.
func (s *Snapshot) Domains() []string {
	d := make([]string, len(s.Pharmacies))
	for i, p := range s.Pharmacies {
		d[i] = p.Domain
	}
	return d
}

// Outbound returns domain → outbound endpoints, the input of the
// network graph construction. The map is memoized and shared between
// callers: treat it as read-only (copy before merging anything into
// it), and do not mutate Pharmacies after the first call.
func (s *Snapshot) Outbound() map[string][]string {
	s.outboundOnce.Do(func() {
		m := make(map[string][]string, len(s.Pharmacies))
		for _, p := range s.Pharmacies {
			m[p.Domain] = p.Outbound
		}
		s.outboundMap = m
	})
	return s.outboundMap
}

// ContentHash returns a hex SHA-256 digest of the snapshot's contents
// (pharmacies, labels, terms, link structure and auxiliary sites) —
// everything the derived feature representations depend on. It is the
// cache key of the shared feature cache: unlike a pointer-formatted
// key, it can never alias two distinct snapshots, and logically
// identical snapshots (e.g. one reloaded from disk) share entries.
//
// The digest is memoized; like Outbound, it assumes the snapshot is
// not mutated after the first call.
func (s *Snapshot) ContentHash() string {
	s.hashOnce.Do(func() {
		h := sha256.New()
		var frame [8]byte
		num := func(n int) {
			binary.LittleEndian.PutUint64(frame[:], uint64(n))
			h.Write(frame[:])
		}
		// Length-prefix every string so concatenations can't collide
		// ("ab","c" vs "a","bc").
		str := func(v string) {
			num(len(v))
			io.WriteString(h, v)
		}
		num(len(s.Pharmacies))
		for _, p := range s.Pharmacies {
			str(p.Domain)
			num(p.Label)
			num(len(p.Terms))
			for _, t := range p.Terms {
				str(t)
			}
			num(len(p.Outbound))
			for _, o := range p.Outbound {
				str(o)
			}
			num(p.Pages)
		}
		num(len(s.Aux))
		for _, a := range s.Aux {
			str(a.Domain)
			num(len(a.Outbound))
			for _, o := range a.Outbound {
				str(o)
			}
			num(a.Pages)
		}
		s.hash = hex.EncodeToString(h.Sum(nil))
	})
	return s.hash
}

// SubsampledTerms returns each pharmacy's terms randomly subsampled to
// k terms (k=0 keeps everything), with a deterministic per-pharmacy
// stream derived from seed — the paper's 100/250/1000/2000-term
// experiment inputs.
func (s *Snapshot) SubsampledTerms(k int, seed int64) [][]string {
	out := make([][]string, len(s.Pharmacies))
	for i, p := range s.Pharmacies {
		rng := rand.New(rand.NewSource(seed + int64(i)*2654435761))
		out[i] = textproc.Subsample(p.Terms, k, rng)
	}
	return out
}

// IllegitDomainSet returns the set of illegitimate domains, used to
// check the paper's disjointness property between snapshots.
func (s *Snapshot) IllegitDomainSet() map[string]bool {
	m := make(map[string]bool)
	for _, p := range s.Pharmacies {
		if p.Label == ml.Illegitimate {
			m[p.Domain] = true
		}
	}
	return m
}

// Save serializes the snapshot as JSON.
func (s *Snapshot) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Load deserializes a snapshot saved with Save.
func Load(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("dataset: decode snapshot: %w", err)
	}
	return &s, nil
}
