package mlp

import (
	"math"
	"math/rand"
	"testing"

	"pharmaverify/internal/ml"
)

func xorDataset(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{Dim: 2}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		y := ml.Illegitimate
		if a != b {
			y = ml.Legitimate
		}
		ds.Add(ml.NewVector([]float64{
			float64(a) + rng.NormFloat64()*0.05,
			float64(b) + rng.NormFloat64()*0.05,
		}), y, "")
	}
	return ds
}

func trainAcc(clf ml.Classifier, ds *ml.Dataset) float64 {
	correct := 0
	for i, x := range ds.X {
		if clf.Predict(x) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func TestMLPLearnsXOR(t *testing.T) {
	// XOR requires a hidden layer — the defining test for an MLP.
	ds := xorDataset(400, 1)
	net := New()
	net.Hidden = 8
	net.Epochs = 300
	net.Seed = 4
	if err := net.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := trainAcc(net, ds); acc < 0.95 {
		t.Errorf("XOR accuracy = %v", acc)
	}
}

func TestMLPLinearlySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := &ml.Dataset{Dim: 4}
	for i := 0; i < 300; i++ {
		y := i % 2
		mu := -1.0
		if y == ml.Legitimate {
			mu = 1.0
		}
		v := []float64{mu + rng.NormFloat64()*0.3, rng.NormFloat64(), mu/2 + rng.NormFloat64()*0.3, rng.NormFloat64()}
		ds.Add(ml.NewVector(v), y, "")
	}
	net := New()
	net.Epochs = 100
	net.Seed = 1
	if err := net.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := trainAcc(net, ds); acc < 0.97 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestMLPProbRange(t *testing.T) {
	ds := xorDataset(100, 3)
	net := New()
	net.Epochs = 50
	if err := net.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		p := net.Prob(x)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("Prob = %v", p)
		}
	}
}

func TestMLPDeterministic(t *testing.T) {
	ds := xorDataset(100, 4)
	a, b := New(), New()
	a.Epochs, b.Epochs = 50, 50
	a.Seed, b.Seed = 11, 11
	if err := a.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		if a.Prob(x) != b.Prob(x) {
			t.Fatal("same seed, different networks")
		}
	}
}

func TestMLPScaleInvariance(t *testing.T) {
	// Internally standardized features: multiplying a feature by 1000
	// must not destroy learning.
	rng := rand.New(rand.NewSource(5))
	ds := &ml.Dataset{Dim: 2}
	for i := 0; i < 300; i++ {
		y := i % 2
		mu := -1.0
		if y == ml.Legitimate {
			mu = 1.0
		}
		ds.Add(ml.NewVector([]float64{(mu + rng.NormFloat64()*0.2) * 1000, rng.NormFloat64() * 0.001}), y, "")
	}
	net := New()
	net.Epochs = 100
	if err := net.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := trainAcc(net, ds); acc < 0.97 {
		t.Errorf("accuracy on badly-scaled data = %v", acc)
	}
}

func TestMLPDefaultHiddenHeuristic(t *testing.T) {
	ds := xorDataset(60, 6)
	net := New()
	net.Epochs = 10
	if err := net.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if net.hidden != 2 {
		t.Errorf("hidden = %d, want (2+2)/2 = 2", net.hidden)
	}
}

func TestMLPErrors(t *testing.T) {
	if err := New().Fit(&ml.Dataset{Dim: 1}); err != ml.ErrEmptyDataset {
		t.Errorf("empty: %v", err)
	}
	one := &ml.Dataset{Dim: 1}
	one.Add(ml.NewVector([]float64{1}), ml.Legitimate, "")
	if err := New().Fit(one); err != ml.ErrOneClass {
		t.Errorf("one class: %v", err)
	}
}

func TestMLPUnfittedNeutral(t *testing.T) {
	if p := New().Prob(ml.NewVector([]float64{1})); p != 0.5 {
		t.Errorf("unfitted Prob = %v", p)
	}
}

func TestMLPPredictConsistent(t *testing.T) {
	ds := xorDataset(100, 7)
	net := New()
	net.Epochs = 30
	if err := net.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		if net.Predict(x) != ml.PredictFromProb(net.Prob(x)) {
			t.Fatal("Predict inconsistent with Prob")
		}
	}
}

func BenchmarkMLPFit(b *testing.B) {
	ds := xorDataset(200, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := New()
		net.Epochs = 50
		if err := net.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}
