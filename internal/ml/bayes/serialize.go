package bayes

import (
	"encoding/json"
	"fmt"
)

// multinomialState is the JSON wire form of a trained Multinomial.
type multinomialState struct {
	Alpha    float64      `json:"alpha"`
	Dim      int          `json:"dim"`
	LogPrior [2]float64   `json:"logPrior"`
	LogCond  [2][]float64 `json:"logCond"`
}

// MarshalJSON serializes a fitted classifier; it fails on an unfitted
// one so that stale zero-valued models cannot be persisted silently.
func (m *Multinomial) MarshalJSON() ([]byte, error) {
	if !m.fitted {
		return nil, fmt.Errorf("bayes: cannot marshal unfitted Multinomial")
	}
	return json.Marshal(multinomialState{
		Alpha:    m.Alpha,
		Dim:      m.dim,
		LogPrior: m.logPrior,
		LogCond:  m.logCond,
	})
}

// UnmarshalJSON restores a classifier persisted with MarshalJSON.
func (m *Multinomial) UnmarshalJSON(data []byte) error {
	var s multinomialState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("bayes: decode Multinomial: %w", err)
	}
	if len(s.LogCond[0]) != s.Dim || len(s.LogCond[1]) != s.Dim {
		return fmt.Errorf("bayes: Multinomial state has %d/%d conditionals for dim %d",
			len(s.LogCond[0]), len(s.LogCond[1]), s.Dim)
	}
	m.Alpha = s.Alpha
	m.dim = s.Dim
	m.logPrior = s.LogPrior
	m.logCond = s.LogCond
	m.fitted = true
	return nil
}

// gaussianState is the JSON wire form of a trained Gaussian.
type gaussianState struct {
	VarSmoothing float64      `json:"varSmoothing"`
	Dim          int          `json:"dim"`
	LogPrior     [2]float64   `json:"logPrior"`
	Mean         [2][]float64 `json:"mean"`
	Variance     [2][]float64 `json:"variance"`
}

// MarshalJSON serializes a fitted classifier.
func (g *Gaussian) MarshalJSON() ([]byte, error) {
	if !g.fitted {
		return nil, fmt.Errorf("bayes: cannot marshal unfitted Gaussian")
	}
	return json.Marshal(gaussianState{
		VarSmoothing: g.VarSmoothing,
		Dim:          g.dim,
		LogPrior:     g.logPrior,
		Mean:         g.mean,
		Variance:     g.variance,
	})
}

// UnmarshalJSON restores a classifier persisted with MarshalJSON.
func (g *Gaussian) UnmarshalJSON(data []byte) error {
	var s gaussianState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("bayes: decode Gaussian: %w", err)
	}
	for c := 0; c < 2; c++ {
		if len(s.Mean[c]) != s.Dim || len(s.Variance[c]) != s.Dim {
			return fmt.Errorf("bayes: Gaussian state shape mismatch")
		}
		for _, v := range s.Variance[c] {
			if v <= 0 {
				return fmt.Errorf("bayes: Gaussian state has non-positive variance")
			}
		}
	}
	g.VarSmoothing = s.VarSmoothing
	g.dim = s.Dim
	g.logPrior = s.LogPrior
	g.mean = s.Mean
	g.variance = s.Variance
	g.fitted = true
	return nil
}
