package ngram

import (
	"math/rand"
	"testing"
)

// naiveCompare is the reference: the four standalone similarity
// functions, exactly as Compare composed them before the kernel.
func naiveCompare(doc, class *Graph) Similarity {
	return Similarity{
		CS:  ContainmentSimilarity(doc, class),
		SS:  SizeSimilarity(doc, class),
		VS:  ValueSimilarity(doc, class),
		NVS: NormalizedValueSimilarity(doc, class),
	}
}

// Property: the single-pass kernel (Compare, CompareBoth, DocFeatures,
// DocTextRank) matches the four naive similarity functions bit for bit
// on randomized documents and merged class graphs — including empty
// graphs and class graphs whose lazy scale factor is not 1.
func TestKernelMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		// Class graphs merged from a random number of documents; zero
		// merges leaves a class graph empty, exercising the empty cases.
		buildClass := func(nDocs int) *Graph {
			class := New()
			for i := 0; i < nDocs; i++ {
				class.Merge(FromDocument(randomText(rng, 1+rng.Intn(30))))
			}
			return class
		}
		legit := buildClass(rng.Intn(5))
		illegit := buildClass(rng.Intn(5))
		text := randomText(rng, rng.Intn(40))
		doc := FromDocument(text)

		wantL := naiveCompare(doc, legit)
		wantI := naiveCompare(doc, illegit)

		if got := Compare(doc, legit); got != wantL {
			t.Fatalf("trial %d: Compare(doc, legit) = %+v, naive %+v", trial, got, wantL)
		}
		if got := Compare(doc, illegit); got != wantI {
			t.Fatalf("trial %d: Compare(doc, illegit) = %+v, naive %+v", trial, got, wantI)
		}
		gotL, gotI := CompareBoth(doc, legit, illegit)
		if gotL != wantL || gotI != wantI {
			t.Fatalf("trial %d: CompareBoth = %+v/%+v, naive %+v/%+v", trial, gotL, gotI, wantL, wantI)
		}

		wantFeats := []float64{
			wantL.CS, wantL.SS, wantL.VS, wantL.NVS,
			wantI.CS, wantI.SS, wantI.VS, wantI.NVS,
		}
		gotFeats := DocFeatures(nil, text, legit, illegit)
		for k := range wantFeats {
			if gotFeats[k] != wantFeats[k] {
				t.Fatalf("trial %d: DocFeatures[%d] = %v, naive %v", trial, k, gotFeats[k], wantFeats[k])
			}
		}

		wantRank := wantL.CS + (1 - wantI.CS) +
			wantL.SS + (1 - wantI.SS) +
			wantL.VS + (1 - wantI.VS) +
			wantL.NVS + (1 - wantI.NVS)
		if got := DocTextRank(text, legit, illegit); got != wantRank {
			t.Fatalf("trial %d: DocTextRank = %v, naive %v", trial, got, wantRank)
		}
	}
}

// Property: a pooled Builder constructs graphs identical (edges,
// weights, order, similarities) to FromText across repeated reuse.
func TestBuilderMatchesFromTextProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	b := NewBuilder()
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		win := 1 + rng.Intn(5)
		text := randomText(rng, rng.Intn(30))
		want := FromText(text, n, win)
		got := b.Build(text, n, win)
		if got.Size() != want.Size() {
			t.Fatalf("trial %d: size %d, want %d", trial, got.Size(), want.Size())
		}
		if len(got.order) != len(want.order) {
			t.Fatalf("trial %d: order length %d, want %d", trial, len(got.order), len(want.order))
		}
		for i, e := range want.order {
			if got.order[i] != e {
				t.Fatalf("trial %d: order[%d] differs", trial, i)
			}
			if got.w[e] != want.w[e] {
				t.Fatalf("trial %d: weight of edge %d: %v, want %v", trial, i, got.w[e], want.w[e])
			}
		}
	}
}

// Allocation regression: the kernel Compare path over prebuilt graphs
// performs no heap allocation, and the pooled document-feature path
// stays within the slack left for sync.Pool refills.
func TestKernelAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	doc := FromDocument(randomText(rng, 120))
	legit := MergeAll([]*Graph{FromDocument(randomText(rng, 80)), FromDocument(randomText(rng, 80))})
	illegit := MergeAll([]*Graph{FromDocument(randomText(rng, 80)), FromDocument(randomText(rng, 80))})

	if allocs := testing.AllocsPerRun(100, func() {
		CompareBoth(doc, legit, illegit)
	}); allocs != 0 {
		t.Errorf("CompareBoth allocates %.1f times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		Compare(doc, legit)
	}); allocs != 0 {
		t.Errorf("Compare allocates %.1f times per run, want 0", allocs)
	}

	text := randomText(rng, 120)
	buf := make([]float64, 0, 8)
	// Warm the pool so the steady state is measured.
	DocFeatures(buf, text, legit, illegit)
	if allocs := testing.AllocsPerRun(100, func() {
		buf = DocFeatures(buf, text, legit, illegit)
	}); allocs > 1 {
		t.Errorf("DocFeatures allocates %.1f times per run, want <= 1 (pool refill slack)", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		DocTextRank(text, legit, illegit)
	}); allocs > 1 {
		t.Errorf("DocTextRank allocates %.1f times per run, want <= 1 (pool refill slack)", allocs)
	}
}

// The builder's graph must not leak state between documents: a large
// document followed by a tiny one must produce the tiny one's graph.
func TestBuilderResetsBetweenDocs(t *testing.T) {
	b := NewBuilder()
	b.Doc("a long pharmacy document with many characters in it")
	g := b.Doc("abcdefgh")
	want := FromDocument("abcdefgh")
	if g.Size() != want.Size() {
		t.Fatalf("stale state: size %d, want %d", g.Size(), want.Size())
	}
	s := Compare(g, want)
	if s.CS != 1 || s.SS != 1 || s.VS != 1 || s.NVS != 1 {
		t.Fatalf("rebuilt graph not identical to fresh one: %+v", s)
	}
}
