package htmlx_test

import (
	"fmt"

	"pharmaverify/internal/htmlx"
)

func ExampleParse() {
	page := htmlx.Parse(`<html><head><title>Acme Pharmacy</title></head>
<body><h1>Welcome</h1><p>Refill your prescription online.</p>
<a href="https://www.fda.gov/">FDA</a></body></html>`)
	fmt.Println(page.Title)
	fmt.Println(page.Text)
	fmt.Println(page.Links)
	// The title participates in the visible text: it is classification
	// signal like any other page content.
	// Output:
	// Acme Pharmacy
	// Acme Pharmacy Welcome Refill your prescription online. FDA
	// [https://www.fda.gov/]
}

func ExampleDecodeEntities() {
	fmt.Println(htmlx.DecodeEntities("Fish &amp; Chips &#8212; &quot;cheap&quot;"))
	// Output: Fish & Chips — "cheap"
}
