package buildinfo

import (
	"strings"
	"testing"
)

func TestInfoDefaults(t *testing.T) {
	b := Info()
	if b.Version == "" {
		t.Error("Version must never be empty (defaults to dev)")
	}
	if !strings.HasPrefix(b.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want a go toolchain version", b.GoVersion)
	}
}

func TestStringFormat(t *testing.T) {
	s := String("pharmaverifyd")
	if !strings.HasPrefix(s, "pharmaverifyd ") {
		t.Errorf("String() = %q, want binary-name prefix", s)
	}
	if !strings.Contains(s, Version) {
		t.Errorf("String() = %q, missing version %q", s, Version)
	}
}
