package bench

import (
	"math/rand"
	"time"

	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml/ensemble"
	"pharmaverify/internal/parallel"
	"pharmaverify/internal/webgen"
)

// This file holds the training-path kernel micro-benchmarks: the
// ensemble-selection hillclimb and webgen world generation, each
// measured against its retained naive reference exactly like the
// feature kernels in kernel.go. Both run single-threaded (the process
// worker default is pinned to 1 for the measurement) so the recorded
// Speedup is the kernel's algorithmic win, not parallelism — the
// worker-matrix entries already measure scaling.

// trainingSelectionWorkload is the synthetic selection problem: a
// library of probability columns over a labeled hillclimb set, shaped
// like the Table-8 ensemble experiment (a dozen-model library over a
// few hundred instances).
func trainingSelectionWorkload() (probs [][]float64, labels []int) {
	rng := rand.New(rand.NewSource(kernelSeed))
	const models, n = 28, 420
	labels = make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(2)
	}
	probs = make([][]float64, models)
	for m := range probs {
		probs[m] = make([]float64, n)
		skill := 0.1 + 0.8*rng.Float64() // models of varying quality
		for i := range probs[m] {
			p := rng.Float64()
			if rng.Float64() < skill {
				p = 0.5*p + 0.5*float64(labels[i])
			}
			probs[m][i] = p
		}
	}
	return probs, labels
}

// trainingWebgenConfig is the world the generation kernel is measured
// on: large enough that rendering dominates, small enough that one
// naive generation stays in the milliseconds.
var trainingWebgenConfig = webgen.Config{Seed: kernelSeed, Snapshot: 1, NumLegit: 12, NumIllegit: 60}

// worldsIdentical compares every site of two worlds page by page.
func worldsIdentical(a, b *webgen.World) bool {
	ad, bd := a.Domains(), b.Domains()
	if len(ad) != len(bd) {
		return false
	}
	for i, d := range ad {
		if bd[i] != d {
			return false
		}
		sa, sb := a.Site(d), b.Site(d)
		if len(sa.Paths) != len(sb.Paths) || len(sa.Pages) != len(sb.Pages) {
			return false
		}
		for j, p := range sa.Paths {
			if sb.Paths[j] != p || sa.Pages[p] != sb.Pages[p] {
				return false
			}
		}
	}
	return true
}

// RunTrainingBenchmarks measures the training-path kernels against
// their naive references on fixed synthetic workloads: the kernelized
// greedy ensemble selection vs SelectGreedyReference, and pooled
// parallel webgen generation vs GenerateReference. benchtime <= 0 uses
// DefaultKernelBenchtime per measurement. Entries land in the report's
// "training" section and are gated by the same floors/ratios as the
// feature kernels (see CheckKernelRegression).
func RunTrainingBenchmarks(benchtime time.Duration) []KernelEntry {
	if benchtime <= 0 {
		benchtime = DefaultKernelBenchtime
	}
	// Pin the process worker default to 1: the entries record
	// single-thread algorithmic wins (see file comment).
	prev := parallel.Default()
	parallel.SetDefault(1)
	defer parallel.SetDefault(prev)

	var entries []KernelEntry

	// Greedy ensemble selection: the hillclimb core.Train and EnsembleCV
	// run per fold. Naive = metric re-evaluated inside the sort
	// comparator and a fresh averaging slice per candidate bag; kernel =
	// precomputed single-model score table + shared scratch.
	{
		probs, labels := trainingSelectionWorkload()
		e := KernelEntry{
			ID:        "ensemble-selection",
			Desc:      "greedy ensemble selection over a 28-model library (score table + shared scratch vs per-comparison metric calls + per-bag slices)",
			Identical: true,
		}
		want := ensemble.SelectGreedyReference(probs, labels, 2, 20, eval.AUC)
		got := ensemble.SelectGreedy(probs, labels, 2, 20, eval.AUC)
		if len(got) != len(want) {
			e.Identical = false
		} else {
			for i := range got {
				if got[i] != want[i] {
					e.Identical = false
				}
			}
		}
		e.NaiveNSOp, e.NaiveAllocsOp = measureOp(benchtime, func() {
			sel := ensemble.SelectGreedyReference(probs, labels, 2, 20, eval.AUC)
			kernelSink += float64(len(sel))
		})
		e.KernelNSOp, e.KernelAllocsOp = measureOp(benchtime, func() {
			sel := ensemble.SelectGreedy(probs, labels, 2, 20, eval.AUC)
			kernelSink += float64(len(sel))
		})
		finishKernelEntry(&e)
		entries = append(entries, e)
	}

	// Webgen world generation: every evaluation Env and serving test
	// builds worlds; rendering dominates. Naive = strings.Builder + fmt
	// per page; kernel = pooled append-based render buffers.
	{
		e := KernelEntry{
			ID:        "webgen-world",
			Desc:      "synthetic world generation, 72 sites (pooled append render kernel vs strings.Builder+fmt reference)",
			Identical: worldsIdentical(webgen.Generate(trainingWebgenConfig), webgen.GenerateReference(trainingWebgenConfig)),
		}
		e.NaiveNSOp, e.NaiveAllocsOp = measureOp(benchtime, func() {
			w := webgen.GenerateReference(trainingWebgenConfig)
			kernelSink += float64(len(w.Domains()))
		})
		e.KernelNSOp, e.KernelAllocsOp = measureOp(benchtime, func() {
			w := webgen.Generate(trainingWebgenConfig)
			kernelSink += float64(len(w.Domains()))
		})
		finishKernelEntry(&e)
		entries = append(entries, e)
	}

	return entries
}
