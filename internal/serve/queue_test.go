package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(2, 0)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := a.inService(); got != 2 {
		t.Errorf("inService = %d, want 2", got)
	}
	// Both slots busy, zero queue depth: shed immediately.
	if err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Errorf("acquire on full pool = %v, want errQueueFull", err)
	}
	a.release()
	if err := a.acquire(context.Background()); err != nil {
		t.Errorf("acquire after release = %v", err)
	}
}

func TestAdmissionQueueThenAdmit(t *testing.T) {
	a := newAdmission(1, 1)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() { admitted <- a.acquire(context.Background()) }()
	// Wait for the waiter to register, then the queue is full.
	deadline := time.Now().Add(2 * time.Second)
	for a.queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Errorf("third acquire = %v, want errQueueFull", err)
	}
	a.release()
	if err := <-admitted; err != nil {
		t.Errorf("queued acquire = %v, want admission after release", err)
	}
}

func TestAdmissionQueuedCancel(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	admitted := make(chan error, 1)
	go func() { admitted <- a.acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for a.queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-admitted; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled queued acquire = %v, want context.Canceled", err)
	}
	if a.queued() != 0 {
		t.Errorf("queued = %d after cancel, want 0", a.queued())
	}
}
