package webgen

import (
	"fmt"
	"sort"
	"strings"
)

// Directory sites are non-pharmacy websites that point TO pharmacies —
// the richer network input of the paper's future work (a). Two kinds
// are generated:
//
//   - health portals ("healthportal<i>.org"): curated, trustworthy
//     listings that link to legitimate pharmacies (including the
//     network-isolated ones that the base TrustRank misses) and to
//     authoritative health sites;
//   - review directories ("pharma-reviews<i>.net"): paid-listing style
//     sites that mostly index illegitimate storefronts.
//
// Directories are not labeled instances (they are not pharmacies), but
// crawling them adds inbound edges to the link graph, which the A6
// ablation feeds to TrustRank.

// DirectoryKind distinguishes the two directory flavors.
type DirectoryKind int

const (
	// HealthPortal lists legitimate pharmacies.
	HealthPortal DirectoryKind = iota
	// ReviewDirectory lists mostly illegitimate pharmacies.
	ReviewDirectory
)

// Directory is one generated non-pharmacy site.
type Directory struct {
	Domain string
	Kind   DirectoryKind
	// Listed are the pharmacy domains the directory links to.
	Listed []string
	Pages  map[string]string
	Paths  []string
}

// GenerateDirectories builds nPortals health portals and nReviews
// review directories over the world's pharmacies. The result is
// deterministic in the world's seed.
func (w *World) GenerateDirectories(nPortals, nReviews int) []*Directory {
	var legit, illegit, isolated []string
	for _, d := range w.domains {
		s := w.sites[d]
		switch {
		case s.Legitimate && s.Isolated:
			isolated = append(isolated, d)
		case s.Legitimate:
			legit = append(legit, d)
		default:
			illegit = append(illegit, d)
		}
	}

	var dirs []*Directory
	for i := 0; i < nPortals; i++ {
		domain := fmt.Sprintf("healthportal%d.org", i)
		rng := siteRNG(w.cfg.Seed, w.cfg.Snapshot, domain, "directory")
		d := &Directory{Domain: domain, Kind: HealthPortal}
		// Portals curate a large share of the legitimate pharmacies —
		// importantly including the isolated ones, which have no other
		// connection to the trusted web.
		d.Listed = sampleDomains(rng, legit, 0.7)
		d.Listed = append(d.Listed, sampleDomains(rng, isolated, 0.7)...)
		sort.Strings(d.Listed)
		w.renderDirectory(d, rng)
		dirs = append(dirs, d)
	}
	for i := 0; i < nReviews; i++ {
		domain := fmt.Sprintf("pharma-reviews%d.net", i)
		rng := siteRNG(w.cfg.Seed, w.cfg.Snapshot, domain, "directory")
		d := &Directory{Domain: domain, Kind: ReviewDirectory}
		d.Listed = sampleDomains(rng, illegit, 0.25)
		d.Listed = append(d.Listed, sampleDomains(rng, legit, 0.05)...)
		sort.Strings(d.Listed)
		w.renderDirectory(d, rng)
		dirs = append(dirs, d)
	}
	return dirs
}

func sampleDomains(rng interface{ Float64() float64 }, pool []string, p float64) []string {
	var out []string
	for _, d := range pool {
		if rng.Float64() < p {
			out = append(out, d)
		}
	}
	return out
}

// renderDirectory produces listing pages, ~25 pharmacy links per page.
func (w *World) renderDirectory(d *Directory, rng interface{ Intn(int) int }) {
	const perPage = 25
	d.Pages = make(map[string]string)
	nPages := (len(d.Listed) + perPage - 1) / perPage
	if nPages == 0 {
		nPages = 1
	}

	var front strings.Builder
	title := strings.SplitN(d.Domain, ".", 2)[0]
	front.WriteString("<html><head><title>" + title + " directory</title></head><body>\n")
	front.WriteString("<h1>" + title + "</h1>\n")
	if d.Kind == HealthPortal {
		front.WriteString("<p>Curated list of licensed verified pharmacies. Consumer health information and safety resources.</p>\n")
		front.WriteString("<a href=\"http://www.fda.gov/\">FDA</a> <a href=\"http://www.nih.gov/\">NIH</a>\n")
	} else {
		front.WriteString("<p>Pharmacy reviews coupons discount codes best prices compare online drugstores.</p>\n")
	}
	for p := 0; p < nPages; p++ {
		fmt.Fprintf(&front, "<a href=\"/list/%d\">listings page %d</a>\n", p, p+1)
	}
	front.WriteString("</body></html>\n")
	d.Pages["/"] = front.String()
	d.Paths = []string{"/"}

	for p := 0; p < nPages; p++ {
		var b strings.Builder
		fmt.Fprintf(&b, "<html><head><title>%s listings %d</title></head><body>\n<a href=\"/\">home</a>\n", title, p+1)
		lo, hi := p*perPage, (p+1)*perPage
		if hi > len(d.Listed) {
			hi = len(d.Listed)
		}
		for _, pharm := range d.Listed[lo:hi] {
			fmt.Fprintf(&b, "<div class=\"entry\"><a href=\"http://%s/\">%s</a> rating %d/5</div>\n",
				pharm, strings.SplitN(pharm, ".", 2)[0], 1+rng.Intn(5))
		}
		b.WriteString("</body></html>\n")
		path := fmt.Sprintf("/list/%d", p)
		d.Pages[path] = b.String()
		d.Paths = append(d.Paths, path)
	}
}

// AttachDirectories registers directory sites as fetchable domains of
// the world (so the crawler can reach them) and returns their domains.
func (w *World) AttachDirectories(dirs []*Directory) []string {
	var domains []string
	for _, d := range dirs {
		s := &Site{
			Domain: d.Domain,
			Pages:  d.Pages,
			Paths:  d.Paths,
		}
		w.sites[d.Domain] = s
		domains = append(domains, d.Domain)
	}
	sort.Strings(domains)
	return domains
}
