package crawler

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// RetryConfig controls per-request retries with exponential backoff.
// The zero value means a single attempt per request (no retries), which
// preserves the historical crawler behavior; live crawls should enable
// retries so transient network failures are not recorded as missing
// pages.
type RetryConfig struct {
	// MaxAttempts is the total number of tries per request, including
	// the first (default 1; 4–6 is sensible for live crawls).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt multiplies it by Multiplier, capped at MaxDelay. Zero
	// disables backoff sleeps (retries fire immediately), which keeps
	// synthetic-web tests fast and deterministic.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 5s).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter spreads each backoff uniformly within ±Jitter fraction of
	// its nominal value (default 0.2; negative disables). The jitter is
	// a pure function of (Seed, domain, path, attempt), so crawls are
	// reproducible.
	Jitter float64
	// Seed drives the deterministic jitter.
	Seed int64
}

func (r RetryConfig) withDefaults() RetryConfig {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 1
	}
	if r.Multiplier <= 0 {
		r.Multiplier = 2
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 5 * time.Second
	}
	if r.Jitter == 0 {
		r.Jitter = 0.2
	} else if r.Jitter < 0 {
		r.Jitter = 0
	}
	return r
}

// backoff returns the sleep before attempt+1 (attempt counts completed
// tries, so the first retry passes attempt=1).
func (r RetryConfig) backoff(domain, path string, attempt int) time.Duration {
	if r.BaseDelay <= 0 {
		return 0
	}
	d := float64(r.BaseDelay) * math.Pow(r.Multiplier, float64(attempt-1))
	if d > float64(r.MaxDelay) {
		d = float64(r.MaxDelay)
	}
	if r.Jitter > 0 {
		u := hashDraw(r.Seed, "backoff", domain, path, fmt.Sprint(attempt))
		d *= 1 + r.Jitter*(2*u-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// hashDraw is a deterministic uniform draw in [0,1) keyed by the seed
// and the given strings, independent of goroutine scheduling.
func hashDraw(seed int64, parts ...string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", seed)
	for _, p := range parts {
		h.Write([]byte{'|'})
		h.Write([]byte(p))
	}
	return rand.New(rand.NewSource(int64(h.Sum64()))).Float64()
}

// permanenter marks errors that must not be retried. Any error in the
// Unwrap chain exposing Permanent() bool participates, so fetchers in
// other packages (e.g. webgen's unknown-page errors) can classify their
// failures without importing this package.
type permanenter interface{ Permanent() bool }

type permanentError struct{ err error }

func (e *permanentError) Error() string   { return e.err.Error() }
func (e *permanentError) Unwrap() error   { return e.err }
func (e *permanentError) Permanent() bool { return true }

// Permanent marks err as a hard failure the crawler must not retry
// (e.g. HTTP 404). A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// IsPermanent reports whether err (or anything it wraps) is marked
// permanent. Unmarked errors are treated as transient and retried when
// a retry budget is configured.
func IsPermanent(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if p, ok := e.(permanenter); ok {
			return p.Permanent()
		}
	}
	return false
}

// ErrFetchTimeout is the (transient) error recorded when a fetch
// attempt exceeds Config.FetchTimeout.
var ErrFetchTimeout = errors.New("crawler: fetch attempt timed out")

// fetchWithTimeout runs one Fetch, bounding it by timeout when positive.
// A timed-out fetch keeps running in its goroutine until the underlying
// fetcher returns (the Fetcher interface carries no context), but its
// result is discarded.
func fetchWithTimeout(f Fetcher, domain, path string, timeout time.Duration) (string, error) {
	if timeout <= 0 {
		return f.Fetch(domain, path)
	}
	type result struct {
		html string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		html, err := f.Fetch(domain, path)
		ch <- result{html, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.html, r.err
	case <-timer.C:
		return "", fmt.Errorf("%w: %s%s after %v", ErrFetchTimeout, domain, path, timeout)
	}
}
