package vectorize

import (
	"fmt"
	"testing"
)

// benchDocs builds a corpus with a realistic shape: many documents over
// a shared vocabulary, with repeated terms inside each document.
func benchDocs(nDocs, nTerms, docLen int) [][]string {
	vocab := make([]string, nTerms)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("term%04d", i)
	}
	docs := make([][]string, nDocs)
	for d := range docs {
		doc := make([]string, docLen)
		for j := range doc {
			// Deterministic skewed mix: low indices recur often, which
			// exercises the seen-before check on every repeat.
			doc[j] = vocab[(d*7+j*j)%nTerms]
		}
		docs[d] = doc
	}
	return docs
}

// BenchmarkAddDocument measures vocabulary construction. The
// generation-stamped seen slice removes the per-document map the old
// implementation allocated (one map + its buckets per call).
func BenchmarkAddDocument(b *testing.B) {
	docs := benchDocs(64, 2000, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := &Vocabulary{index: make(map[string]int)}
		for _, doc := range docs {
			v.AddDocument(doc)
		}
	}
}

// BenchmarkTFIDF measures per-document vectorization against a fixed
// vocabulary.
func BenchmarkTFIDF(b *testing.B) {
	docs := benchDocs(64, 2000, 400)
	v := BuildVocabulary(docs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.TFIDF(docs[i%len(docs)])
	}
}
