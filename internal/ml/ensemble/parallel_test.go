package ensemble

import (
	"reflect"
	"testing"
)

// TestFitParallelSelectionOrder: with a fixed seed, the greedy
// selection must pick the same models in the same order whether the
// library trains sequentially or on many workers.
func TestFitParallelSelectionOrder(t *testing.T) {
	train := noisyDataset(600, 1)
	run := func(workers int) []string {
		sel := New(library()...)
		sel.Seed = 3
		sel.Workers = workers
		if err := sel.Fit(train); err != nil {
			t.Fatal(err)
		}
		return sel.SelectionOrder()
	}
	seq := run(1)
	if len(seq) == 0 {
		t.Fatal("no models selected")
	}
	for _, w := range []int{2, 8} {
		if par := run(w); !reflect.DeepEqual(seq, par) {
			t.Errorf("selection order differs at Workers=%d: %v vs %v", w, seq, par)
		}
	}
}

// TestFitParallelProbIdentical: the fitted ensembles must score
// instances identically at every worker count.
func TestFitParallelProbIdentical(t *testing.T) {
	train := noisyDataset(600, 4)
	test := noisyDataset(120, 5)
	fit := func(workers int) *Selection {
		sel := New(library()...)
		sel.Seed = 9
		sel.Workers = workers
		if err := sel.Fit(train); err != nil {
			t.Fatal(err)
		}
		return sel
	}
	a, b := fit(1), fit(8)
	for i, x := range test.X {
		if a.Prob(x) != b.Prob(x) {
			t.Fatalf("instance %d: prob differs between worker counts", i)
		}
	}
}
