package eval

import (
	"errors"
	"math"
)

// PairedTTestResult reports a two-sided paired t-test between two
// classifiers' per-fold metrics.
type PairedTTestResult struct {
	// T is the t statistic of the mean difference (a - b).
	T float64
	// DF is the degrees of freedom (len-1).
	DF int
	// P is the two-sided p-value.
	P float64
	// MeanDiff is the mean of a[i] - b[i].
	MeanDiff float64
}

// ErrTTestInput is returned for mismatched or too-short inputs.
var ErrTTestInput = errors.New("eval: t-test needs two equal-length series with at least 2 entries")

// PairedTTest runs a two-sided paired Student t-test on two series of
// fold metrics (e.g. per-fold AUC of two classifiers over the same
// folds). With the paper's 3-fold protocol the test has 2 degrees of
// freedom — weak but honest; the repository reports it alongside the
// 95% confidence intervals of Section 6.3.
func PairedTTest(a, b []float64) (PairedTTestResult, error) {
	if len(a) != len(b) || len(a) < 2 {
		return PairedTTestResult{}, ErrTTestInput
	}
	n := len(a)
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	mean, std := MeanStd(diffs)
	res := PairedTTestResult{DF: n - 1, MeanDiff: mean}
	if std == 0 {
		// Identical differences: either exactly equal (p=1) or a
		// constant non-zero shift (p→0).
		if mean == 0 {
			res.P = 1
			return res, nil
		}
		res.T = math.Inf(sign(mean))
		res.P = 0
		return res, nil
	}
	res.T = mean / (std / math.Sqrt(float64(n)))
	res.P = 2 * studentTailCDF(math.Abs(res.T), float64(res.DF))
	return res, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTailCDF returns P(T > t) for Student's t with df degrees of
// freedom, t >= 0, via the regularized incomplete beta function:
// P(T > t) = I_{df/(df+t²)}(df/2, 1/2) / 2.
func studentTailCDF(t, df float64) float64 {
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x) / 2
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a,b) with the continued-fraction expansion (Numerical Recipes'
// betacf), accurate to ~1e-10 for the parameter ranges used here.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// CompareFolds is a convenience wrapper: it extracts the metric from
// two CV results over the same folds and t-tests the difference.
func CompareFolds(a, b CVResult, m Metric) (PairedTTestResult, error) {
	if len(a.Folds) != len(b.Folds) {
		return PairedTTestResult{}, ErrTTestInput
	}
	av := make([]float64, len(a.Folds))
	bv := make([]float64, len(b.Folds))
	for i := range a.Folds {
		av[i] = m(a.Folds[i])
		bv[i] = m(b.Folds[i])
	}
	return PairedTTest(av, bv)
}
