package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pharmaverify/internal/core"
	"pharmaverify/internal/dataset"
)

// The serving tier treats partial failure as the normal case: every
// evidence source is wrapped in a guardedSource that layers, in order,
// a circuit breaker (a source that keeps failing is fast-failed instead
// of re-probed on every request), a bulkhead (a slow source saturates
// its own concurrency slots, never the daemon's worker pool), and a
// per-source deadline (one assessment can hang without holding the
// whole fusion hostage). A source tripped out of the fusion degrades
// the verdict to the remaining sources; the quorum and stale-fallback
// policy in pipeline.go decides what happens when too few survive.

// errSourceOpen is returned without consulting the source while its
// circuit breaker is open: the source failed enough recent assessments
// that probing it on every request would only add latency.
var errSourceOpen = errors.New("serve: evidence source circuit breaker open")

// errSourceSaturated is returned when a source's bulkhead has no free
// slot: every allowed concurrent assessment of this source is already
// in flight (typically stuck behind a slow or hung backend).
var errSourceSaturated = errors.New("serve: evidence source bulkhead saturated")

// errInsufficientEvidence is returned by the fusion when fewer sources
// contributed than the configured quorum (MinEvidence) requires. It is
// the trigger for the stale-verdict fallback.
var errInsufficientEvidence = errors.New("serve: insufficient evidence for a verdict")

// breakerState is the classic three-state circuit-breaker lifecycle.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// breaker is a rolling-window circuit breaker. Closed, it records the
// last `window` assessment outcomes in a ring; once `failures` of them
// are failures it opens. Open, it fast-fails everything until
// `cooldown` has elapsed on the injected clock, then transitions to
// half-open and admits one probe at a time. `probes` consecutive probe
// successes close it again; any probe failure reopens it and restarts
// the cooldown. All transitions are functions of (recorded outcomes,
// injected clock), so tests pin the exact schedule deterministically.
type breaker struct {
	window   int
	failures int
	cooldown time.Duration
	probes   int
	now      func() time.Time
	// onTransition observes every state change (metrics hook); called
	// with the lock held, so it must not call back into the breaker.
	onTransition func(to breakerState)

	mu       sync.Mutex
	state    breakerState
	ring     []bool // true = failure; ring[head] is overwritten next
	head     int
	filled   int
	failing  int // failures currently inside the window
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	probeOK  int  // consecutive successful probes this half-open cycle
}

func newBreaker(window, failures int, cooldown time.Duration, probes int, now func() time.Time, onTransition func(breakerState)) *breaker {
	if failures > window {
		failures = window
	}
	return &breaker{
		window:       window,
		failures:     failures,
		cooldown:     cooldown,
		probes:       probes,
		now:          now,
		onTransition: onTransition,
		ring:         make([]bool, window),
	}
}

func (b *breaker) transition(to breakerState) {
	b.state = to
	if b.onTransition != nil {
		b.onTransition(to)
	}
}

// allow reports whether a request may consult the source right now, and
// whether it does so as a half-open probe. A denied request must not
// call record or cancel; an allowed one must call exactly one of them.
func (b *breaker) allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.transition(breakerHalfOpen)
		b.probeOK = 0
		b.probing = true
		return true, true
	default: // half-open: one probe at a time
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// record feeds one assessment outcome back.
func (b *breaker) record(failure, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if b.state != breakerHalfOpen {
			return
		}
		if failure {
			b.openedAt = b.now()
			b.transition(breakerOpen)
			return
		}
		b.probeOK++
		if b.probeOK >= b.probes {
			// Recovered: forget the failure history of the outage.
			b.ring = make([]bool, b.window)
			b.head, b.filled, b.failing = 0, 0, 0
			b.transition(breakerClosed)
		}
		return
	}
	if b.state != breakerClosed {
		return // a late outcome from before a transition carries no vote
	}
	if b.filled == b.window && b.ring[b.head] {
		b.failing-- // the outcome sliding out of the window was a failure
	}
	b.ring[b.head] = failure
	b.head = (b.head + 1) % b.window
	if b.filled < b.window {
		b.filled++
	}
	if failure {
		b.failing++
		if b.failing >= b.failures {
			b.openedAt = b.now()
			b.transition(breakerOpen)
		}
	}
}

// cancel releases an allowed call without recording an outcome — used
// when the caller went away (context cancelled) rather than the source
// failing: a disconnecting client must not trip a healthy source's
// breaker.
func (b *breaker) cancel(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// currentState reports the state for /readyz and /metrics. An open
// breaker whose cooldown has lapsed still reads "open" until the next
// request promotes it to half-open — state changes only on traffic.
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// bulkhead is a per-source concurrency cap: tryAcquire never blocks, so
// when every slot is stuck behind a slow backend the caller sheds
// immediately instead of queueing the daemon's worker pool behind it.
type bulkhead struct{ slots chan struct{} }

func newBulkhead(n int) *bulkhead {
	if n < 1 {
		n = 1
	}
	return &bulkhead{slots: make(chan struct{}, n)}
}

func (b *bulkhead) tryAcquire() bool {
	select {
	case b.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (b *bulkhead) release() { <-b.slots }

// inFlight reports the occupied slots (for tests and metrics).
func (b *bulkhead) inFlight() int { return len(b.slots) }

// guardedSource wraps one EvidenceSource with the full resilience
// stack. It implements EvidenceSource itself, so the fusion loop treats
// guarded and bare sources identically.
type guardedSource struct {
	inner   EvidenceSource
	brk     *breaker
	bh      *bulkhead
	timeout time.Duration // per-assessment deadline; <= 0 = unbounded
	met     *metrics
}

// newGuardedSource builds the resilience wrapper for one source from
// the server's config.
func newGuardedSource(src EvidenceSource, cfg Config, met *metrics) *guardedSource {
	name := src.Name()
	brk := newBreaker(cfg.BreakerWindow, cfg.BreakerFailures, cfg.BreakerCooldown, cfg.BreakerProbes, cfg.now,
		func(to breakerState) { met.breakerTransitions.inc(name + "|" + to.String()) })
	return &guardedSource{
		inner:   src,
		brk:     brk,
		bh:      newBulkhead(cfg.SourceConcurrency),
		timeout: cfg.SourceTimeout,
		met:     met,
	}
}

func (g *guardedSource) Name() string { return g.inner.Name() }

// Healthy reports readiness: the wrapped source's own health gated by
// the breaker — a tripped source is not ready even if it would answer.
func (g *guardedSource) Healthy() bool {
	return g.brk.currentState() == breakerClosed && g.inner.Healthy()
}

// BreakerState exposes the breaker's lifecycle state (for /readyz and
// the /metrics gauge).
func (g *guardedSource) BreakerState() string { return g.brk.currentState().String() }

// assessResult carries one inner assessment across the deadline select.
type assessResult struct {
	ev  Evidence
	err error
}

// Assess runs the wrapped source under the breaker, bulkhead and
// per-source deadline. The inner assessment runs in its own goroutine
// holding the bulkhead slot: if it outlives the deadline, the slot
// stays occupied until the source actually returns — which is exactly
// the signal that sheds further traffic off a hung backend instead of
// piling more goroutines onto it.
func (g *guardedSource) Assess(ctx context.Context, model *core.Verifier, p dataset.Pharmacy) (Evidence, error) {
	name := g.inner.Name()
	ok, probe := g.brk.allow()
	if !ok {
		g.met.breakerRejects.inc(name)
		return Evidence{}, fmt.Errorf("%s: %w", name, errSourceOpen)
	}
	if !g.bh.tryAcquire() {
		g.met.sourceSheds.inc(name)
		// Saturation is a failure signal: a source that cannot take the
		// offered load should trip toward open like one that errors.
		g.brk.record(true, probe)
		return Evidence{}, fmt.Errorf("%s: %w", name, errSourceSaturated)
	}

	actx := ctx
	var cancel context.CancelFunc
	if g.timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, g.timeout)
		defer cancel()
	}
	done := make(chan assessResult, 1)
	go func() {
		defer g.bh.release()
		ev, err := g.inner.Assess(actx, model, p)
		done <- assessResult{ev, err}
	}()

	select {
	case r := <-done:
		switch {
		case r.err == nil, errors.Is(r.err, errNoEvidence):
			// An abstention is a healthy answer, not a failure.
			g.brk.record(false, probe)
		case errors.Is(r.err, context.Canceled):
			// The caller went away; the source gets no vote either way.
			g.brk.cancel(probe)
		default:
			g.brk.record(true, probe)
		}
		return r.ev, r.err
	case <-actx.Done():
		if errors.Is(actx.Err(), context.Canceled) && ctx.Err() != nil {
			// Parent cancellation, not a source timeout.
			g.brk.cancel(probe)
			return Evidence{}, fmt.Errorf("%s assessment abandoned: %w", name, ctx.Err())
		}
		g.met.sourceTimeouts.inc(name)
		g.brk.record(true, probe)
		return Evidence{}, fmt.Errorf("%s assessment timed out after %v: %w", name, g.timeout, actx.Err())
	}
}

var _ EvidenceSource = (*guardedSource)(nil)
