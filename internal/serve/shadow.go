package serve

import (
	"errors"
	"sync/atomic"

	"pharmaverify/internal/core"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/ml/ensemble"
)

// Shadow deployment: a candidate model rides along with the live one,
// silently double-assessing every fresh observation — live traffic and
// background re-verification sweeps alike. The candidate sees exactly
// the evidence the live model saw (same crawled observation, same
// trust score from the shared link graph, same contributing source
// set), votes on its own text and network classifiers, and every
// verdict flip and per-source class disagreement is counted. A
// promotion controller (internal/reverify) watches the flip rate and,
// once the gate passes, promotes the candidate through the very same
// atomic.Pointer swap the SIGHUP hot-reload path uses — a promoted
// shadow is bit-identical to a manual reload of the same model file.
// The shadow never touches the served verdict: a crashing candidate
// degrades to "no shadow data", never to a bad answer.

// ErrShadowIdentical rejects a candidate whose fingerprint matches the
// live model — shadowing a model against itself can only ever measure
// zero flips and would auto-promote vacuously.
var ErrShadowIdentical = errors.New("serve: shadow candidate is identical to the live model")

// ErrNoShadow is returned by PromoteShadow when no candidate is loaded.
var ErrNoShadow = errors.New("serve: no shadow model loaded")

// shadowState is one candidate deployment: the model slot plus the
// per-candidate counters the promotion gate reads. The counters restart
// at zero for every SetShadow — a new candidate never inherits a
// predecessor's record.
type shadowState struct {
	slot     *modelSlot
	assessed atomic.Uint64
	flips    atomic.Uint64
}

// SetShadow loads a candidate model for shadow deployment, replacing
// any previous candidate and resetting the flip counters. A candidate
// identical to the live model is rejected with ErrShadowIdentical.
func (s *Server) SetShadow(v *core.Verifier) error {
	if v == nil {
		return errors.New("serve: nil shadow model")
	}
	fp := v.Fingerprint()
	if fp == s.model.Load().fingerprint {
		return ErrShadowIdentical
	}
	s.shadow.Store(&shadowState{slot: &modelSlot{v: v, fingerprint: fp, loaded: s.cfg.now()}})
	return nil
}

// ShadowActive reports whether a candidate is currently shadowing.
func (s *Server) ShadowActive() bool { return s.shadow.Load() != nil }

// ShadowFingerprint returns the candidate's identity, or "" when no
// candidate is loaded.
func (s *Server) ShadowFingerprint() string {
	if st := s.shadow.Load(); st != nil {
		return st.slot.fingerprint
	}
	return ""
}

// ShadowStats reports the current candidate's record: how many fresh
// verdicts it double-assessed and how many it would have flipped.
// (0, 0) when no candidate is loaded.
func (s *Server) ShadowStats() (assessed, flips uint64) {
	if st := s.shadow.Load(); st != nil {
		return st.assessed.Load(), st.flips.Load()
	}
	return 0, 0
}

// PromoteShadow atomically promotes the candidate to the live model —
// through SwapModel, the exact path a SIGHUP reload takes, so a
// promotion is indistinguishable from a manual reload of the same
// model file — and clears the shadow slot. It returns the promoted
// fingerprint. The promotion gate (flip rate, minimum assessments) is
// the caller's responsibility: the controller in internal/reverify
// enforces it, and operators may promote manually past it.
func (s *Server) PromoteShadow() (string, error) {
	st := s.shadow.Load()
	if st == nil {
		return "", ErrNoShadow
	}
	s.SwapModel(st.slot.v)
	s.shadow.Store(nil)
	s.met.shadowPromotions.inc()
	return st.slot.fingerprint, nil
}

// DemoteShadow drops the candidate without promoting it — the
// regression path of the promotion controller (flip rate over the
// gate) or an operator abandoning a bad candidate. A no-op without a
// candidate.
func (s *Server) DemoteShadow() {
	if s.shadow.Load() == nil {
		return
	}
	s.shadow.Store(nil)
	s.met.shadowDemotions.inc()
}

// shadowAssess silently re-judges one fresh observation under the
// candidate model, mirroring the live fusion: the candidate votes on
// exactly the sources that contributed to the live verdict — its own
// text classifier over the same terms, its own network classifier over
// the same shared-graph trust score, and model-independent evidence
// (registry) verbatim. Class disagreements are counted per source, and
// a fused-verdict flip feeds the promotion gate. It never mutates the
// live verdict.
func (s *Server) shadowAssess(st *shadowState, p dataset.Pharmacy, live *DomainVerdict) {
	sv := st.slot.v
	probs := make([]float64, 0, len(live.Sources))
	for _, c := range live.Sources {
		var sp float64
		switch c.Name {
		case "text":
			sp = sv.TextProb(p.Terms)
		case "network":
			sp = sv.NetworkProbFromTrust(live.TrustScore)
		default:
			// Model-independent evidence votes identically under any model.
			sp = c.Prob
		}
		if (sp >= 0.5) != (c.Prob >= 0.5) {
			s.met.shadowDisagreements.inc(c.Name)
		}
		probs = append(probs, sp)
	}
	if len(probs) == 0 {
		return
	}
	sel := make([]int, len(probs))
	for i := range sel {
		sel[i] = i
	}
	fused := ensemble.AverageSelected(sel, probs)
	st.assessed.Add(1)
	s.met.shadowAssessments.inc()
	if (fused >= 0.5) != live.Legitimate {
		st.flips.Add(1)
		s.met.shadowFlips.inc()
	}
}
