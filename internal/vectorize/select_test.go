package vectorize

import (
	"math"
	"math/rand"
	"testing"

	"pharmaverify/internal/ml"
)

// indicatorDataset: feature 0 perfectly predicts the class, feature 1
// is pure noise, feature 2 is constant.
func indicatorDataset(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{Dim: 3}
	for i := 0; i < n; i++ {
		y := i % 2
		m := map[int]float64{2: 1}
		if y == ml.Legitimate {
			m[0] = 1
		}
		if rng.Intn(2) == 0 {
			m[1] = 1
		}
		ds.Add(ml.FromMap(m), y, "")
	}
	return ds
}

func TestInformationGainOrdering(t *testing.T) {
	ds := indicatorDataset(200, 1)
	gains := InformationGain(ds)
	if len(gains) != 3 {
		t.Fatalf("len = %d", len(gains))
	}
	if math.Abs(gains[0]-1) > 1e-9 {
		t.Errorf("perfect indicator gain = %v, want 1", gains[0])
	}
	if gains[1] > 0.05 {
		t.Errorf("noise gain = %v, want ~0", gains[1])
	}
	if gains[2] != 0 {
		t.Errorf("constant feature gain = %v, want 0", gains[2])
	}
}

func TestInformationGainEmpty(t *testing.T) {
	gains := InformationGain(&ml.Dataset{Dim: 2})
	if gains[0] != 0 || gains[1] != 0 {
		t.Error("empty dataset must have zero gains")
	}
}

func TestTopFeaturesByGain(t *testing.T) {
	ds := indicatorDataset(200, 2)
	top := TopFeaturesByGain(ds, 1)
	if len(top) != 1 || top[0] != 0 {
		t.Errorf("top = %v, want [0]", top)
	}
	all := TopFeaturesByGain(ds, 0)
	if len(all) != 3 {
		t.Errorf("k=0 must return all, got %d", len(all))
	}
}

func TestProject(t *testing.T) {
	ds := &ml.Dataset{Dim: 4}
	ds.Add(ml.NewVector([]float64{1, 2, 3, 4}), ml.Legitimate, "x")
	ds.Add(ml.NewVector([]float64{0, 5, 0, 7}), ml.Illegitimate, "y")
	out, remap := Project(ds, []int{3, 1})
	if out.Dim != 2 {
		t.Fatalf("dim = %d", out.Dim)
	}
	// Sorted feature order: 1 → 0, 3 → 1.
	if remap[1] != 0 || remap[3] != 1 {
		t.Errorf("remap = %v", remap)
	}
	if out.X[0].At(0) != 2 || out.X[0].At(1) != 4 {
		t.Errorf("instance 0 projected wrong: %v", out.X[0])
	}
	if out.X[1].At(0) != 5 || out.X[1].At(1) != 7 {
		t.Errorf("instance 1 projected wrong: %v", out.X[1])
	}
	if out.Names[1] != "y" || out.Y[1] != ml.Illegitimate {
		t.Error("metadata lost")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: information gain is bounded by the class entropy and
// non-negative.
func TestInformationGainBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(100)
		dim := 1 + rng.Intn(8)
		ds := &ml.Dataset{Dim: dim}
		for i := 0; i < n; i++ {
			m := map[int]float64{}
			for f := 0; f < dim; f++ {
				if rng.Intn(2) == 0 {
					m[f] = rng.Float64()
				}
			}
			ds.Add(ml.FromMap(m), rng.Intn(2), "")
		}
		var pos int
		for _, y := range ds.Y {
			pos += y
		}
		classH := binEntropy(float64(pos) / float64(n))
		for f, g := range InformationGain(ds) {
			if g < 0 || g > classH+1e-9 {
				t.Fatalf("gain[%d] = %v outside [0, H=%v]", f, g, classH)
			}
		}
	}
}
