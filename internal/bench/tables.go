package bench

import (
	"fmt"

	"pharmaverify/internal/core"
	"pharmaverify/internal/eval"
	"pharmaverify/internal/ml"
	"pharmaverify/internal/parallel"
	"pharmaverify/internal/trust"
)

// tfidfRows lists the classifier/sampling combinations the paper
// reports for the TF-IDF representation (best sampling per classifier).
var tfidfRows = []struct {
	Clf core.ClassifierKind
	Smp core.SamplingKind
}{
	{core.NBM, core.NoSampling},
	{core.SVM, core.NoSampling},
	{core.J48, core.SMOTE},
}

// nggRows lists the classifiers of the N-Gram-Graph tables (no
// sampling, per the paper).
var nggRows = []core.ClassifierKind{core.NB, core.SVM, core.J48, core.MLP}

// Table1 reproduces the dataset statistics.
func Table1(e *Env) (*Table, error) {
	t := &Table{
		ID:     "Table 1",
		Title:  "Datasets",
		Header: []string{"", "Dataset 1 (Date 1)", "Dataset 2 (Date 2, 6 months later)"},
	}
	l1, i1 := e.Snap1.Counts()
	l2, i2 := e.Snap2.Counts()
	t.AddRow("# Examples", fmt.Sprintf("%d (100%%)", l1+i1), fmt.Sprintf("%d (100%%)", l2+i2))
	t.AddRow("# Legitimate Examples",
		fmt.Sprintf("%d (%d%%)", l1, percent(l1, l1+i1)),
		fmt.Sprintf("%d (%d%%)", l2, percent(l2, l2+i2)))
	t.AddRow("# Illegitimate Examples",
		fmt.Sprintf("%d (%d%%)", i1, percent(i1, l1+i1)),
		fmt.Sprintf("%d (%d%%)", i2, percent(i2, l2+i2)))

	// The paper's disjointness property.
	shared := 0
	ill1 := e.Snap1.IllegitDomainSet()
	for d := range e.Snap2.IllegitDomainSet() {
		if ill1[d] {
			shared++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("illegitimate-domain intersection between datasets: %d (paper: empty)", shared))
	return t, nil
}

func percent(a, b int) int {
	if b == 0 {
		return 0
	}
	return int(float64(a)/float64(b)*100 + 0.5)
}

// Table2 reproduces the abbreviations legend. Every entry corresponds
// to an implementation in this repository.
func Table2(e *Env) (*Table, error) {
	t := &Table{
		ID:     "Table 2",
		Title:  "Abbreviations",
		Header: []string{"Abbreviation", "Description", "Implementation"},
	}
	t.AddRow("NBM", "Naïve Bayesian Multinomial", "internal/ml/bayes.Multinomial")
	t.AddRow("NB", "Naïve Bayesian", "internal/ml/bayes.Gaussian")
	t.AddRow("SVM", "Support Vector Machines", "internal/ml/svm.Linear")
	t.AddRow("J48", "Java implementation of C4.5 algorithm", "internal/ml/tree.C45")
	t.AddRow("MLP", "Multilayer perceptron (Artificial Neural Networks)", "internal/ml/mlp.Network")
	t.AddRow("NO", "No sampling technique used", "nil eval.Sampler")
	t.AddRow("SUB", "Subsampling", "internal/ml/sampling.Undersample")
	t.AddRow("SMOTE", "Oversampling with SMOTE algorithm", "internal/ml/sampling.SMOTE")
	return t, nil
}

// textRow is one (classifier, sampling) row of a sweep table.
type textRow = struct {
	Clf core.ClassifierKind
	Smp core.SamplingKind
}

// prewarmText evaluates every (classifier, sampling) × term-size cell
// of a sweep concurrently. Cells are independent given the shared
// snapshot, and the Env memo deduplicates them (singleflight), so the
// sequential table fill afterwards is pure cache hits and the rendered
// rows are identical to a sequential sweep.
func (e *Env) prewarmText(rep core.Representation, rows []textRow, sizes []int) error {
	type cell struct {
		row textRow
		k   int
	}
	cells := make([]cell, 0, len(rows)*len(sizes))
	for _, r := range rows {
		for _, k := range sizes {
			cells = append(cells, cell{row: r, k: k})
		}
	}
	_, err := parallel.MapErr(len(cells), 0, func(i int) (struct{}, error) {
		_, err := e.TextResult(rep, cells[i].row.Clf, cells[i].row.Smp, cells[i].k)
		return struct{}{}, err
	})
	return err
}

// textSweep fills one metric across classifiers × term sizes.
func (e *Env) textSweep(t *Table, rep core.Representation, rows []textRow, metric eval.Metric) error {
	if err := e.prewarmText(rep, rows, e.Scale.TermSizes); err != nil {
		return err
	}
	for _, r := range rows {
		cells := []string{string(r.Clf), string(r.Smp)}
		for _, k := range e.Scale.TermSizes {
			res, err := e.TextResult(rep, r.Clf, r.Smp, k)
			if err != nil {
				return err
			}
			cells = append(cells, f2(res.Mean(metric)))
		}
		t.AddRow(cells...)
	}
	return nil
}

func (e *Env) termHeader(prefix ...string) []string {
	h := append([]string{}, prefix...)
	for _, k := range e.Scale.TermSizes {
		h = append(h, sizeLabel(k))
	}
	return h
}

// Table3 reproduces TF-IDF overall accuracy.
func Table3(e *Env) (*Table, error) {
	t := &Table{
		ID:     "Table 3",
		Title:  "TF-IDF — Overall Accuracy (3-fold CV, Dataset 1)",
		Header: e.termHeader("clf", "smp"),
		Notes:  []string{"paper shape: all ≥ 0.88; SVM best (≈0.99); J48 weakest on small term subsets"},
	}
	return t, e.textSweep(t, core.TFIDF, tfidfRows, eval.MetricAccuracy)
}

// prTable builds a recall+precision table for one class.
func (e *Env) prTable(id, title string, rep core.Representation, rows []textRow, recall, precision eval.Metric, notes ...string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: e.termHeader("metric", "clf", "smp"),
		Notes:  notes,
	}
	if err := e.prewarmText(rep, rows, e.Scale.TermSizes); err != nil {
		return nil, err
	}
	for _, r := range rows {
		cells := []string{"Recall", string(r.Clf), string(r.Smp)}
		for _, k := range e.Scale.TermSizes {
			res, err := e.TextResult(rep, r.Clf, r.Smp, k)
			if err != nil {
				return nil, err
			}
			cells = append(cells, f2(res.Mean(recall)))
		}
		t.AddRow(cells...)
	}
	for _, r := range rows {
		cells := []string{"Precision", string(r.Clf), string(r.Smp)}
		for _, k := range e.Scale.TermSizes {
			res, err := e.TextResult(rep, r.Clf, r.Smp, k)
			if err != nil {
				return nil, err
			}
			cells = append(cells, f2(res.Mean(precision)))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Table4 reproduces TF-IDF legitimate recall and precision.
func Table4(e *Env) (*Table, error) {
	return e.prTable("Table 4", "TF-IDF — legitimate recall and precision",
		core.TFIDF, tfidfRows, eval.MetricLegitRecall, eval.MetricLegitPrecision,
		"paper shape: SVM best precision; J48 low recall on small subsets")
}

// Table5 reproduces TF-IDF illegitimate recall and precision.
func Table5(e *Env) (*Table, error) {
	return e.prTable("Table 5", "TF-IDF — illegitimate recall and precision",
		core.TFIDF, tfidfRows, eval.MetricIllegitRecall, eval.MetricIllegitPrecision,
		"paper shape: all precision ≥ 0.93 (class imbalance); SVM best recall")
}

// Table6 reproduces TF-IDF AUC-ROC.
func Table6(e *Env) (*Table, error) {
	t := &Table{
		ID:     "Table 6",
		Title:  "TF-IDF — Area Under ROC Curve",
		Header: e.termHeader("clf", "smp"),
		Notes:  []string{"paper shape: NBM wins all sizes (≈0.99); J48 clearly last"},
	}
	return t, e.textSweep(t, core.TFIDF, tfidfRows, eval.MetricAUC)
}

func nggRowSpecs() []textRow {
	rows := make([]textRow, len(nggRows))
	for i, c := range nggRows {
		rows[i].Clf = c
		rows[i].Smp = core.NoSampling
	}
	return rows
}

// Table7 reproduces N-Gram-Graph classifier accuracy.
func Table7(e *Env) (*Table, error) {
	t := &Table{
		ID:     "Table 7",
		Title:  "N-Gram Graphs — Classifier Accuracy",
		Header: e.termHeader("clf", "smp"),
		Notes:  []string{"paper shape: MLP best (≈0.99); J48 second"},
	}
	return t, e.textSweep(t, core.NGramGraphs, nggRowSpecs(), eval.MetricAccuracy)
}

// Table8 reproduces N-Gram-Graph legitimate recall/precision.
func Table8(e *Env) (*Table, error) {
	return e.prTable("Table 8", "N-Gram Graphs — legitimate recall and precision",
		core.NGramGraphs, nggRowSpecs(), eval.MetricLegitRecall, eval.MetricLegitPrecision,
		"paper shape: MLP best recall; SVM best precision")
}

// Table9 reproduces N-Gram-Graph illegitimate recall/precision.
func Table9(e *Env) (*Table, error) {
	return e.prTable("Table 9", "N-Gram Graphs — illegitimate recall and precision",
		core.NGramGraphs, nggRowSpecs(), eval.MetricIllegitRecall, eval.MetricIllegitPrecision,
		"paper shape: uniformly high (≥0.92)")
}

// Table10 reproduces N-Gram-Graph AUC-ROC.
func Table10(e *Env) (*Table, error) {
	t := &Table{
		ID:     "Table 10",
		Title:  "N-Gram Graphs — Area Under ROC Curve",
		Header: e.termHeader("clf", "smp"),
		Notes:  []string{"paper shape: MLP ≈0.99 everywhere; SVM weakest"},
	}
	return t, e.textSweep(t, core.NGramGraphs, nggRowSpecs(), eval.MetricAUC)
}

// Table11 reproduces the ten most linked-to websites per class.
func Table11(e *Env) (*Table, error) {
	legitOut := map[string][]string{}
	illegitOut := map[string][]string{}
	for _, p := range e.Snap1.Pharmacies {
		if p.Label == ml.Legitimate {
			legitOut[p.Domain] = p.Outbound
		} else {
			illegitOut[p.Domain] = p.Outbound
		}
	}
	topLegit := trust.TopLinked(legitOut, 10)
	topIllegit := trust.TopLinked(illegitOut, 10)

	t := &Table{
		ID:     "Table 11",
		Title:  "Websites pointed to by legitimate and illegitimate pharmacies (top 10)",
		Header: []string{"#", "pointed by legitimate", "pointed by illegitimate"},
		Notes: []string{
			"paper: legit list led by facebook/twitter/fda.gov; illegit by wikipedia/wordpress, incl. pharmacy endpoints (rxwinners.com)",
		},
	}
	for i := 0; i < 10; i++ {
		l, r := "", ""
		if i < len(topLegit) {
			l = topLegit[i]
		}
		if i < len(topIllegit) {
			r = topIllegit[i]
		}
		t.AddRow(fmt.Sprintf("%d", i+1), l, r)
	}
	return t, nil
}

// Table12 reproduces the network classifier's accuracy and AUC.
func Table12(e *Env) (*Table, error) {
	res, err := e.NetworkResult(core.TrustRankUndirected)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Table 12",
		Title:  "Network — Overall Accuracy and AUC ROC (TrustRank scores → NB)",
		Header: []string{"Classifier", "Overall Accuracy", "AUC ROC"},
		Notes:  []string{"paper: 0.96 accuracy, 0.95 AUC — close to text accuracy, clearly worse AUC"},
	}
	t.AddRow("NB", f2(res.Mean(eval.MetricAccuracy)), f2(res.Mean(eval.MetricAUC)))
	return t, nil
}

// Table13 reproduces the network classifier's per-class precision and
// recall.
func Table13(e *Env) (*Table, error) {
	res, err := e.NetworkResult(core.TrustRankUndirected)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table 13",
		Title: "Network — precision and recall",
		Header: []string{"Classifier", "legit precision", "legit recall",
			"illegit precision", "illegit recall"},
		Notes: []string{"paper: legit recall ≈0.73 (isolated legitimate pharmacies receive no trust)"},
	}
	t.AddRow("NB",
		f3(res.Mean(eval.MetricLegitPrecision)),
		f3(res.Mean(eval.MetricLegitRecall)),
		f3(res.Mean(eval.MetricIllegitPrecision)),
		f3(res.Mean(eval.MetricIllegitRecall)))
	return t, nil
}

// Table14 reproduces the ensemble-selection comparison.
func Table14(e *Env) (*Table, error) {
	terms := 1000
	if !containsInt(e.Scale.TermSizes, 1000) {
		terms = e.Scale.TermSizes[len(e.Scale.TermSizes)-1]
		if terms == 0 && len(e.Scale.TermSizes) > 1 {
			terms = e.Scale.TermSizes[len(e.Scale.TermSizes)-2]
		}
	}
	ens, err := core.EnsembleCV(e.Snap1, core.EnsembleConfig{Terms: terms, Seed: e.Scale.Seed})
	if err != nil {
		return nil, err
	}
	text, err := e.TextResult(core.NGramGraphs, core.MLP, core.NoSampling, terms)
	if err != nil {
		return nil, err
	}
	net, err := e.NetworkResult(core.TrustRankUndirected)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "Table 14",
		Title: fmt.Sprintf("Ensemble Classification Results (%d-term subsamples)", terms),
		Header: []string{"model", "Acc.", "legit Rec.", "legit Prec.",
			"illegit Rec.", "illegit Prec.", "AUC ROC"},
		Notes: []string{"paper shape: ensemble ≥ best single text and network models on AUC"},
	}
	addRes := func(name string, r eval.CVResult) {
		t.AddRow(name,
			f2(r.Mean(eval.MetricAccuracy)),
			f2(r.Mean(eval.MetricLegitRecall)),
			f2(r.Mean(eval.MetricLegitPrecision)),
			f2(r.Mean(eval.MetricIllegitRecall)),
			f2(r.Mean(eval.MetricIllegitPrecision)),
			f2(r.Mean(eval.MetricAUC)))
	}
	addRes("Ensem. Sel.", ens)
	addRes("Neural (Text)", text)
	addRes("NB (Network)", net)
	return t, nil
}

// Table15 reproduces the ranking pairwise-orderedness results.
func Table15(e *Env) (*Table, error) {
	t := &Table{
		ID:     "Table 15",
		Title:  "Ranking (rank = textRank + networkRank) — pairwise orderedness",
		Header: []string{"text model", "smp", "pairord"},
		Notes:  []string{"paper: all ≥ 0.994, SVM best at 0.999"},
	}
	terms := pickTerms(e, 1000)
	cases := []struct {
		rep core.Representation
		clf core.ClassifierKind
		smp core.SamplingKind
	}{
		{core.TFIDF, core.NBM, core.NoSampling},
		{core.TFIDF, core.SVM, core.NoSampling},
		{core.TFIDF, core.J48, core.SMOTE},
		{core.NGramGraphs, "", core.NoSampling},
	}
	for _, c := range cases {
		res, err := core.RankCV(e.Snap1, core.RankConfig{
			Representation: c.rep, Classifier: c.clf, Sampling: c.smp,
			Terms: terms, Seed: e.Scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		name := string(c.clf)
		if c.rep == core.NGramGraphs {
			name = "N-Gram Graph"
		} else {
			name = "TF-IDF " + name
		}
		t.AddRow(name, string(c.smp), f3(res.PairwiseOrderedness))
	}
	return t, nil
}

// driftSpecs lists the classifier rows of Tables 16/17.
var driftSpecs = []textRow{
	{core.NBM, core.NoSampling},
	{core.SVM, core.NoSampling},
	{core.J48, core.SMOTE},
}

func driftSizes(e *Env) []int {
	out := []int{}
	for _, k := range []int{250, 1000} {
		if containsInt(e.Scale.TermSizes, k) {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		out = []int{e.Scale.TermSizes[0]}
	}
	return out
}

// driftTable renders Table 16 (AUC) or Table 17 (legit precision).
func driftTable(e *Env, id, title string, pick func(core.DriftResult, core.DriftCell) float64, notes ...string) (*Table, error) {
	sizes := driftSizes(e)
	header := []string{"clf", "smp"}
	for _, cell := range []core.DriftCell{core.OldOld, core.NewNew, core.OldNew} {
		for _, k := range sizes {
			header = append(header, fmt.Sprintf("%s/%s", cell, sizeLabel(k)))
		}
	}
	t := &Table{ID: id, Title: title, Header: header, Notes: notes}

	// Every (classifier, term-size) drift study is independent, so the
	// grid fans out; rows render sequentially from the ordered results.
	type job struct {
		spec textRow
		k    int
	}
	jobs := make([]job, 0, len(driftSpecs)*len(sizes))
	for _, spec := range driftSpecs {
		for _, k := range sizes {
			jobs = append(jobs, job{spec: spec, k: k})
		}
	}
	res, err := parallel.MapErr(len(jobs), 0, func(i int) (core.DriftResult, error) {
		j := jobs[i]
		return core.DriftStudy(e.Snap1, e.Snap2, core.TextConfig{
			Classifier: j.spec.Clf, Sampling: j.spec.Smp, Terms: j.k, Seed: e.Scale.Seed,
		})
	})
	if err != nil {
		return nil, err
	}

	for s, spec := range driftSpecs {
		cells := []string{string(spec.Clf), string(spec.Smp)}
		results := map[int]core.DriftResult{}
		for j, k := range sizes {
			results[k] = res[s*len(sizes)+j]
		}
		for _, cell := range []core.DriftCell{core.OldOld, core.NewNew, core.OldNew} {
			for _, k := range sizes {
				cells = append(cells, f2(pick(results[k], cell)))
			}
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Table16 reproduces the model-over-time AUC comparison.
func Table16(e *Env) (*Table, error) {
	return driftTable(e, "Table 16", "TF-IDF — Model over Time — Area Under ROC Curve",
		func(r core.DriftResult, c core.DriftCell) float64 { return r.AUC[c] },
		"paper shape: AUC nearly unchanged from Old-Old to Old-New")
}

// Table17 reproduces the model-over-time legitimate-precision
// comparison.
func Table17(e *Env) (*Table, error) {
	return driftTable(e, "Table 17", "TF-IDF — Model over Time — legitimate Precision",
		func(r core.DriftResult, c core.DriftCell) float64 { return r.LegitPrecision[c] },
		"paper shape: visible precision drop in the Old-New column (stale models)")
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func pickTerms(e *Env, preferred int) int {
	if containsInt(e.Scale.TermSizes, preferred) {
		return preferred
	}
	return e.Scale.TermSizes[len(e.Scale.TermSizes)-1]
}
