package crawler

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig parameterizes deterministic fault injection. Every
// decision is a pure function of (Seed, domain, path, attempt number),
// so a faulty crawl is exactly reproducible: two injectors with the
// same configuration fail the same attempts in the same way regardless
// of worker scheduling.
type FaultConfig struct {
	// Seed drives all fault decisions.
	Seed int64
	// TransientRate is the per-attempt probability of a retryable
	// failure (e.g. 0.3 for the 30%-flaky synthetic web).
	TransientRate float64
	// PermanentRate is the per-page probability that a (domain, path)
	// is permanently broken: every attempt fails with a Permanent error.
	PermanentRate float64
	// MaxTransientPerPage caps the consecutive injected transient
	// failures for one page (0 = uncapped). Setting it below the
	// crawler's retry budget guarantees eventual recovery.
	MaxTransientPerPage int
	// LatencySpike, when positive, adds that much latency to SpikeRate
	// of the attempts (deterministically chosen). Under FetchCtx the
	// added latency is cancellation-aware: an expiring context cuts the
	// sleep short and the attempt returns ctx.Err().
	LatencySpike time.Duration
	// SpikeRate is the per-attempt probability of a latency spike.
	SpikeRate float64
	// HangRate is the per-attempt probability that the fetch hangs —
	// the pathological peer that neither answers nor closes. A hung
	// FetchCtx attempt blocks until its context is cancelled (or
	// HangFor elapses, whichever is first) and returns the context
	// error; a hung context-free Fetch blocks for HangFor and then
	// fails transiently. With HangFor zero, hangs are only injected on
	// context-aware fetches (a plain Fetch would block forever).
	HangRate float64
	// HangFor bounds one injected hang (0 = until context
	// cancellation).
	HangFor time.Duration
}

// FaultStats counts what the injector actually did.
type FaultStats struct {
	Attempts  int64
	Transient int64
	Permanent int64
	Spikes    int64
	Hangs     int64
}

// FaultInjector wraps a Fetcher with seeded transient/permanent
// failures, latency spikes and hangs — the flaky-world harness used by
// tests, examples and the serving chaos soak to exercise retry,
// backoff, circuit-breaker and deadline machinery deterministically.
type FaultInjector struct {
	inner Fetcher
	cfg   FaultConfig

	mu       sync.Mutex
	attempts map[string]int // per domain|path attempt counter

	attemptsN, transientN, permanentN, spikesN, hangsN atomic.Int64
}

// NewFaultInjector wraps inner with the given fault model.
func NewFaultInjector(inner Fetcher, cfg FaultConfig) *FaultInjector {
	return &FaultInjector{inner: inner, cfg: cfg, attempts: make(map[string]int)}
}

// Fetch implements Fetcher, injecting faults ahead of the wrapped
// fetcher. Injected latency and hangs are uninterruptible here; use
// FetchCtx for cancellation-aware injection.
func (fi *FaultInjector) Fetch(domain, path string) (string, error) {
	return fi.fetch(context.Background(), domain, path, false)
}

// FetchCtx implements CtxFetcher: injected latency spikes and hangs
// select on ctx, so a cancelled crawl (or an expiring per-attempt
// deadline) aborts the injected delay instead of sleeping through it.
// The wrapped fetcher's own FetchCtx is used when it has one.
func (fi *FaultInjector) FetchCtx(ctx context.Context, domain, path string) (string, error) {
	return fi.fetch(ctx, domain, path, true)
}

func (fi *FaultInjector) fetch(ctx context.Context, domain, path string, haveCtx bool) (string, error) {
	key := domain + "|" + path
	fi.mu.Lock()
	n := fi.attempts[key] // 0-based attempt index for this page
	fi.attempts[key] = n + 1
	fi.mu.Unlock()
	fi.attemptsN.Add(1)

	attempt := fmt.Sprint(n)
	if fi.cfg.HangRate > 0 && (haveCtx || fi.cfg.HangFor > 0) &&
		hashDraw(fi.cfg.Seed, "hang", key, attempt) < fi.cfg.HangRate {
		fi.hangsN.Add(1)
		if fi.cfg.HangFor <= 0 {
			<-ctx.Done() // unbounded hang: only the context ends it
			return "", ctx.Err()
		}
		if err := sleepCtx(ctx, fi.cfg.HangFor); err != nil {
			return "", err
		}
		return "", fmt.Errorf("fault: %s%s hung for %v (attempt %d)", domain, path, fi.cfg.HangFor, n+1)
	}
	if fi.cfg.LatencySpike > 0 && fi.cfg.SpikeRate > 0 &&
		hashDraw(fi.cfg.Seed, "spike", key, attempt) < fi.cfg.SpikeRate {
		fi.spikesN.Add(1)
		if err := sleepCtx(ctx, fi.cfg.LatencySpike); err != nil {
			return "", err
		}
	}
	if fi.cfg.PermanentRate > 0 && hashDraw(fi.cfg.Seed, "permanent", key) < fi.cfg.PermanentRate {
		fi.permanentN.Add(1)
		return "", Permanent(fmt.Errorf("fault: %s%s is permanently broken", domain, path))
	}
	if fi.cfg.TransientRate > 0 &&
		(fi.cfg.MaxTransientPerPage == 0 || n < fi.cfg.MaxTransientPerPage) &&
		hashDraw(fi.cfg.Seed, "transient", key, attempt) < fi.cfg.TransientRate {
		fi.transientN.Add(1)
		return "", fmt.Errorf("fault: transient failure for %s%s (attempt %d)", domain, path, n+1)
	}
	if haveCtx {
		if cf, ok := fi.inner.(CtxFetcher); ok {
			return cf.FetchCtx(ctx, domain, path)
		}
	}
	return fi.inner.Fetch(domain, path)
}

// Stats returns a snapshot of the injected-fault counters.
func (fi *FaultInjector) Stats() FaultStats {
	return FaultStats{
		Attempts:  fi.attemptsN.Load(),
		Transient: fi.transientN.Load(),
		Permanent: fi.permanentN.Load(),
		Spikes:    fi.spikesN.Load(),
		Hangs:     fi.hangsN.Load(),
	}
}

var (
	_ Fetcher    = (*FaultInjector)(nil)
	_ CtxFetcher = (*FaultInjector)(nil)
)
