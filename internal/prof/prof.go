// Package prof gates the runtime/pprof CPU and heap profilers behind
// CLI flags (-cpuprofile / -memprofile on pharmaverify and
// experiments). Profiling is strictly opt-in: with empty paths every
// function is a no-op, so the hot paths carry no profiling cost unless
// asked to.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins writing a CPU profile to path and returns the stop
// function that ends the profile and closes the file. An empty path is
// a no-op (the returned stop is still safe to call).
func StartCPU(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeap writes a heap profile to path after a GC (so the profile
// reflects live objects, not collectable garbage). An empty path is a
// no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: create mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("prof: write mem profile: %w", err)
	}
	return nil
}
