// Package bayes implements the two Naïve Bayes variants used by the
// paper: the Naïve Bayesian Multinomial classifier (NBM) applied to
// TF-IDF term vectors, and the Gaussian Naïve Bayes classifier (NB)
// applied to the dense similarity/trust features of the N-Gram-Graph and
// network pipelines.
package bayes

import (
	"math"

	"pharmaverify/internal/ml"
)

// Multinomial is the Naïve Bayesian Multinomial text classifier. Feature
// values are treated as (possibly fractional) event counts; class
// priors and per-term conditionals use Laplace smoothing:
//
//	P(c|d) ∝ P(c) · Π_k P(t_k|c)^{tf_k}
//
// matching the formulation in Section 5 of the paper.
type Multinomial struct {
	// Alpha is the additive smoothing constant (default 1.0 when 0).
	Alpha float64

	dim      int
	logPrior [2]float64
	// logCond[c][t] = log P(t|c)
	logCond [2][]float64
	fitted  bool
}

// NewMultinomial returns an NBM classifier with Laplace smoothing.
func NewMultinomial() *Multinomial { return &Multinomial{Alpha: 1} }

// Name implements ml.Named with the paper's abbreviation.
func (m *Multinomial) Name() string { return "NBM" }

// Fit estimates priors and term conditionals from the dataset.
func (m *Multinomial) Fit(ds *ml.Dataset) error {
	if ds.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	alpha := m.Alpha
	if alpha == 0 {
		alpha = 1
	}
	m.dim = ds.Dim

	var classCount [2]float64
	var termTotal [2]float64
	var termCount [2][]float64
	termCount[0] = make([]float64, ds.Dim)
	termCount[1] = make([]float64, ds.Dim)

	for n, x := range ds.X {
		c := ds.Y[n]
		classCount[c]++
		for k, i := range x.Ind {
			v := x.Val[k]
			if v < 0 {
				v = 0 // counts cannot be negative
			}
			termCount[c][i] += v
			termTotal[c] += v
		}
	}
	if classCount[0] == 0 || classCount[1] == 0 {
		return ml.ErrOneClass
	}

	total := classCount[0] + classCount[1]
	for c := 0; c < 2; c++ {
		m.logPrior[c] = math.Log(classCount[c] / total)
		m.logCond[c] = make([]float64, ds.Dim)
		den := termTotal[c] + alpha*float64(ds.Dim)
		for t := 0; t < ds.Dim; t++ {
			m.logCond[c][t] = math.Log((termCount[c][t] + alpha) / den)
		}
	}
	m.fitted = true
	return nil
}

// logPosterior returns the unnormalized log posterior of class c.
func (m *Multinomial) logPosterior(x ml.Vector, c int) float64 {
	s := m.logPrior[c]
	for k, i := range x.Ind {
		if int(i) >= m.dim {
			continue
		}
		v := x.Val[k]
		if v < 0 {
			v = 0
		}
		s += v * m.logCond[c][i]
	}
	return s
}

// Prob returns P(legitimate | x).
func (m *Multinomial) Prob(x ml.Vector) float64 {
	if !m.fitted {
		return 0.5
	}
	l0 := m.logPosterior(x, ml.Illegitimate)
	l1 := m.logPosterior(x, ml.Legitimate)
	// Normalize in log space: p1 = 1 / (1 + exp(l0-l1)).
	return ml.Sigmoid(l1 - l0)
}

// Predict returns the MAP class.
func (m *Multinomial) Predict(x ml.Vector) int { return ml.PredictFromProb(m.Prob(x)) }

// LogOdds returns, per feature, log P(t|legitimate) − log P(t|illegitimate):
// positive values mark terms indicative of legitimate pharmacies,
// negative of illegitimate ones. It returns nil before Fit.
func (m *Multinomial) LogOdds() []float64 {
	if !m.fitted {
		return nil
	}
	out := make([]float64, m.dim)
	for t := 0; t < m.dim; t++ {
		out[t] = m.logCond[ml.Legitimate][t] - m.logCond[ml.Illegitimate][t]
	}
	return out
}

var (
	_ ml.Classifier = (*Multinomial)(nil)
	_ ml.Named      = (*Multinomial)(nil)
)
