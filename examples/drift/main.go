// Drift study: the paper's "model evolution over time" experiment
// (§6.5). Two snapshots of the pharmacy web are generated six months
// apart — the same legitimate pharmacies re-crawled, the illegitimate
// population fully replaced — and we ask the paper's two questions:
//
//  1. does a model trained on new data perform like one trained on old
//     data? (robustness)
//
//  2. is a model trained on old data still valid on new data, or must
//     it be re-trained? (staleness)
//
//     go run ./examples/drift
package main

import (
	"fmt"
	"log"

	"pharmaverify/internal/core"
	"pharmaverify/internal/crawler"
	"pharmaverify/internal/dataset"
	"pharmaverify/internal/webgen"
)

func main() {
	const seed = 99
	w1 := webgen.Generate(webgen.Config{
		Seed: seed, Snapshot: 1, NumLegit: 30, NumIllegit: 170, NetworkSize: 34,
	})
	w2 := webgen.Generate(webgen.Config{
		Seed: seed, Snapshot: 2, NumLegit: 30, NumIllegit: 160,
		IllegitOffset: 170, NetworkSize: 34,
	})
	old, err := dataset.Build("Dataset 1", w1, w1.Domains(), w1.Labels(), crawler.Config{}, 16)
	if err != nil {
		log.Fatal(err)
	}
	new_, err := dataset.Build("Dataset 2", w2, w2.Domains(), w2.Labels(), crawler.Config{}, 16)
	if err != nil {
		log.Fatal(err)
	}

	// Sanity: the paper's Table 1 properties.
	shared := 0
	ill1 := old.IllegitDomainSet()
	for d := range new_.IllegitDomainSet() {
		if ill1[d] {
			shared++
		}
	}
	fmt.Printf("old: %d pharmacies, new: %d; shared illegitimate domains: %d (paper: 0)\n\n",
		old.Len(), new_.Len(), shared)

	fmt.Println("classifier      AUC  old-old  new-new  old-new | legit precision  old-old  new-new  old-new")
	for _, spec := range []struct {
		clf core.ClassifierKind
		smp core.SamplingKind
	}{
		{core.NBM, core.NoSampling},
		{core.SVM, core.NoSampling},
		{core.J48, core.SMOTE},
	} {
		res, err := core.DriftStudy(old, new_, core.TextConfig{
			Classifier: spec.clf, Sampling: spec.smp, Terms: 500, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s %-6s          %.2f     %.2f     %.2f |                     %.2f     %.2f     %.2f\n",
			spec.clf, spec.smp,
			res.AUC[core.OldOld], res.AUC[core.NewNew], res.AUC[core.OldNew],
			res.LegitPrecision[core.OldOld], res.LegitPrecision[core.NewNew], res.LegitPrecision[core.OldNew])
	}

	fmt.Println(`
reading the table (the paper's conclusions):
  * old-old ≈ new-new: the approach is robust — models built on either
    epoch perform alike on their own data;
  * AUC old-new ≈ old-old: rankings stay usable even with a stale model;
  * legitimate precision drops in old-new: drifting illegitimate sites
    start to pass as legitimate, so periodic re-training is required —
    though not frequently.`)
}
